package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"odh/internal/model"
	"odh/internal/pagestore"
	"odh/internal/retry"
	"odh/internal/sqlexec"
)

// refNode builds a single-node historian with the same storage knobs as
// newReplicatedCluster's copies: the ground truth a distributed
// aggregation must match byte-for-byte.
func refNode(t *testing.T) *Node {
	t.Helper()
	n, _, err := newNodeWithFiles(pagestore.NewMemFile(), nil, NodeOptions{BatchSize: 8, GroupSize: 4, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// seedGatherPair writes an identical skewed workload into the cluster
// and the reference node: per-source point counts differ (so aggregate
// ORDER BY has no ties), source 9 exists but has zero points (empty
// group), and values vary per source and per point.
func seedGatherPair(t *testing.T, c *Cluster, ref *Node) {
	t.Helper()
	st := model.SchemaType{
		Name: "vehicle",
		Tags: []model.TagDef{{Name: "speed"}, {Name: "fuel"}},
	}
	if err := c.CreateSchema(st); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateVirtualTable("vehicle_v", "vehicle"); err != nil {
		t.Fatal(err)
	}
	schema, _ := ref.Cat.CreateSchema(st)
	if err := ref.Cat.CreateVirtualTable("vehicle_v", schema.ID); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		ds := model.DataSource{ID: int64(i), SchemaID: schema.ID, Regular: true, IntervalMs: 100}
		if err := c.RegisterSource(ds); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Cat.RegisterSource(ds); err != nil {
			t.Fatal(err)
		}
		if i == 9 {
			continue // registered, never written: the empty group
		}
		for j := 0; j < 2+3*i; j++ {
			p := model.Point{
				Source: int64(i), TS: int64(1000 + j*100),
				Values: []float64{float64(j + i), float64(i)},
			}
			if err := c.Write(p); err != nil {
				t.Fatal(err)
			}
			if err := ref.TS.Write(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ref.TS.Flush(); err != nil {
		t.Fatal(err)
	}
}

// renderSorted renders rows one-per-line and sorts the lines: cluster
// folds emit group-key order while the single node emits first-arrival
// order, so only membership (and, under ORDER BY+LIMIT, the selected
// set) is compared — with total-order ORDER BY keys that is exact.
func renderSorted(rows []sqlexec.Row) string {
	lines := strings.Split(strings.TrimRight(renderRows(rows), "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestAggGatherComposesVsSingleNode is the deterministic gather suite:
// every composable shape — AVG with zero-row shards, HAVING that
// eliminates every group, ORDER BY on the aggregate with LIMIT under
// and over the group count, single- and multi-bucket TIME_BUCKET —
// answered by an R=2 cluster must match the single-node answer.
func TestAggGatherComposesVsSingleNode(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2, 1)
	ref := refNode(t)
	seedGatherPair(t, c, ref)

	queries := []string{
		`SELECT id, AVG(speed) FROM vehicle_v GROUP BY id`,
		// WHERE narrows to two sources: every other shard's partials are
		// empty, and their NULL SUM / zero COUNT must not poison AVG.
		`SELECT id, AVG(speed), COUNT(*) FROM vehicle_v WHERE id <= 2 GROUP BY id`,
		// Grand total over zero rows: exactly one row, NULL AVG, COUNT 0.
		`SELECT COUNT(*), AVG(speed), MIN(speed) FROM vehicle_v WHERE id = 9`,
		// HAVING that eliminates every group.
		`SELECT id, COUNT(*) FROM vehicle_v GROUP BY id HAVING COUNT(*) > 1000`,
		// HAVING keeping a strict subset.
		`SELECT id, COUNT(*), SUM(speed) FROM vehicle_v GROUP BY id HAVING COUNT(*) > 10`,
		// ORDER BY the aggregate, LIMIT below the group count (ties are
		// impossible: per-source counts all differ).
		`SELECT id, SUM(speed) FROM vehicle_v GROUP BY id ORDER BY SUM(speed) DESC, id LIMIT 3`,
		// LIMIT above the group count.
		`SELECT id, SUM(speed) FROM vehicle_v GROUP BY id ORDER BY SUM(speed) DESC, id LIMIT 100`,
		// Single-bucket TIME_BUCKET: every timestamp folds into one group.
		`SELECT TIME_BUCKET(1000000, timestamp), COUNT(*), AVG(speed) FROM vehicle_v GROUP BY TIME_BUCKET(1000000, timestamp)`,
		// Multi-bucket TIME_BUCKET with ORDER BY and LIMIT on the bucket.
		`SELECT TIME_BUCKET(300, timestamp), COUNT(*), SUM(fuel), AVG(speed) FROM vehicle_v GROUP BY TIME_BUCKET(300, timestamp) ORDER BY TIME_BUCKET(300, timestamp) LIMIT 4`,
		// Hidden group key: id defines groups but is projected away.
		`SELECT COUNT(*), SUM(speed) FROM vehicle_v GROUP BY id ORDER BY COUNT(*) DESC LIMIT 2`,
		// MIN/MAX fold plus HAVING on a key-ordered subset.
		`SELECT id, MIN(speed), MAX(speed) FROM vehicle_v GROUP BY id HAVING MIN(speed) > 3 ORDER BY id`,
	}
	for _, q := range queries {
		want := refFetch(t, ref, q)
		res, err := c.Query(q)
		if err != nil {
			t.Fatalf("cluster %q: %v", q, err)
		}
		if got := renderSorted(res.Rows); got != want {
			t.Fatalf("gather differs for %q\ncluster:\n%s\nsingle node:\n%s", q, got, want)
		}
	}

	// The per-shard partial queries keep the aggregate-only shape, so
	// they ride the storage summary pushdown — visible cluster-wide.
	ts := c.TotalTSStats()
	if ts.SummaryHits == 0 || ts.BytesNotDecoded == 0 {
		t.Fatalf("aggregate scatter did not ride the summary pushdown: %+v", ts)
	}
	if c.Stats().AggGathers == 0 {
		t.Fatal("no aggregate gathers counted")
	}
}

func refFetch(t *testing.T, ref *Node, q string) string {
	t.Helper()
	res, err := ref.Engine.Query(q)
	if err != nil {
		t.Fatalf("single node %q: %v", q, err)
	}
	rows, err := res.FetchAll()
	if err != nil {
		t.Fatalf("single node fetch %q: %v", q, err)
	}
	return renderSorted(rows)
}

// TestAggGatherSurvivesKillRecover runs the composable shapes through a
// kill/recover drill on R=2: answers stay byte-identical to the healthy
// cluster while a node is down and after it catches back up.
func TestAggGatherSurvivesKillRecover(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2, 1)
	ref := refNode(t)
	seedGatherPair(t, c, ref)
	queries := []string{
		`SELECT id, AVG(speed) FROM vehicle_v GROUP BY id`,
		`SELECT id, COUNT(*), AVG(speed) FROM vehicle_v GROUP BY id HAVING COUNT(*) > 10 ORDER BY AVG(speed) DESC, id LIMIT 3`,
		`SELECT TIME_BUCKET(300, timestamp), SUM(speed) FROM vehicle_v GROUP BY TIME_BUCKET(300, timestamp) ORDER BY TIME_BUCKET(300, timestamp)`,
	}
	healthy := make([]string, len(queries))
	for i, q := range queries {
		res, err := c.Query(q)
		if err != nil {
			t.Fatalf("healthy %q: %v", q, err)
		}
		healthy[i] = renderSorted(res.Rows)
		if want := refFetch(t, ref, q); healthy[i] != want {
			t.Fatalf("healthy gather differs for %q\ncluster:\n%s\nsingle:\n%s", q, healthy[i], want)
		}
	}
	for _, stage := range []string{"degraded", "recovered"} {
		if stage == "degraded" {
			if err := c.KillNode(1); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := c.RestartNode(1); err != nil {
				t.Fatal(err)
			}
			if err := c.CatchUp(1); err != nil {
				t.Fatal(err)
			}
		}
		for i, q := range queries {
			res, err := c.Query(q)
			if err != nil {
				t.Fatalf("%s %q: %v", stage, q, err)
			}
			if got := renderSorted(res.Rows); got != healthy[i] {
				t.Fatalf("%s gather differs for %q\ngot:\n%s\nwant:\n%s", stage, q, got, healthy[i])
			}
		}
	}
	if c.Stats().Failovers == 0 {
		t.Fatal("degraded queries recorded no failovers")
	}
}

// TestAggregatePartialWithholdsRows is the R=1 regression: an aggregate
// over a shard with no live copy must return a PartialResultError with
// NO rows — a fold over the survivors is a wrong total, not a partial
// answer. Plain row queries keep the survivors' rows alongside the
// error, and relational queries fall through to another shard entirely.
func TestAggregatePartialWithholdsRows(t *testing.T) {
	c := newReplicatedCluster(t, 3, 1, 1)
	seedReplicated(t, c, 6, 4)
	if err := c.ExecAll(`CREATE TABLE fleet (id BIGINT, miles BIGINT)`); err != nil {
		t.Fatal(err)
	}
	if err := c.ExecAll(`INSERT INTO fleet VALUES (1, 100)`); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT id, COUNT(*), AVG(speed) FROM vehicle_v GROUP BY id`,
		`SELECT COUNT(*) FROM vehicle_v`,
		`SELECT id, SUM(speed) FROM vehicle_v GROUP BY id ORDER BY SUM(speed) LIMIT 2`,
	} {
		res, err := c.Query(q)
		var pre *sqlexec.PartialResultError
		if !errors.As(err, &pre) {
			t.Fatalf("aggregate %q over dead shard: err = %v, want PartialResultError", q, err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("aggregate %q over dead shard leaked %d folded rows:\n%s", q, len(res.Rows), renderRows(res.Rows))
		}
		if len(res.Unavailable) == 0 {
			t.Fatalf("aggregate %q: no unavailable shards named", q)
		}
	}
	// Plain row scatter keeps the surviving shards' rows.
	res, err := c.Query(`SELECT * FROM vehicle_v`)
	var pre *sqlexec.PartialResultError
	if !errors.As(err, &pre) {
		t.Fatalf("row query over dead shard: err = %v, want PartialResultError", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("row query over dead shard dropped the surviving shards' rows")
	}
	// Relational data is replicated on every copy: the dead first shard
	// must not degrade the answer — another shard serves it completely.
	res, err = c.Query(`SELECT COUNT(*), SUM(miles) FROM fleet`)
	if err != nil {
		t.Fatalf("relational query with dead node: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1 || res.Rows[0][1].AsInt() != 100 {
		t.Fatalf("relational fallthrough answer wrong: %s", renderRows(res.Rows))
	}
}

// TestScatterContextCancellation pins the ctx plumbing: a stalled node
// must not hold a cancelled query past its deadline, Options.QueryTimeout
// bounds deadline-less queries, and the goroutine-per-replica path
// drains after cancellation (no leaks under -race).
func TestScatterContextCancellation(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2, 1)
	seedReplicated(t, c, 6, 4)

	// Synchronous path (ReplicaTimeout < 0): the stall gate itself must
	// observe ctx.
	if err := c.StallNode(0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Heal before the cluster's Close cleanup even when an assertion
	// fails: Close flushes through the stalled fault files.
	t.Cleanup(func() { c.HealNode(0) })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.QueryContext(ctx, `SELECT id, COUNT(*) FROM vehicle_v GROUP BY id`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled scatter: err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled query held for %v by a stalled node", elapsed)
	}
	if err := c.HealNode(0); err != nil {
		t.Fatal(err)
	}
	res, err := c.QueryContext(context.Background(), `SELECT id, COUNT(*) FROM vehicle_v GROUP BY id`)
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("healed scatter: rows=%d err=%v", len(res.Rows), err)
	}
}

func TestQueryTimeoutOptionBoundsScatter(t *testing.T) {
	c, err := NewReplicated(Options{
		Nodes: 3, Replicas: 2, WriteQuorum: 1,
		ReplicaTimeout: -1,
		Retry:          retry.Policy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		Seed:           42,
		QueryTimeout:   50 * time.Millisecond,
		Node:           NodeOptions{BatchSize: 8, GroupSize: 4, PoolPages: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	seedReplicated(t, c, 6, 4)
	if err := c.StallNode(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.HealNode(1) })
	start := time.Now()
	_, qerr := c.Query(`SELECT id, AVG(speed) FROM vehicle_v GROUP BY id`)
	if !errors.Is(qerr, context.DeadlineExceeded) {
		t.Fatalf("QueryTimeout: err = %v, want DeadlineExceeded", qerr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("QueryTimeout query held for %v", elapsed)
	}
}

// TestScatterCancelNoGoroutineLeak exercises the goroutine-per-replica
// timeout path (ReplicaTimeout > 0) against a stalled node and checks
// the abandoned workers drain: they run under a cancelled child context,
// so the stall gate and the engine both release them promptly.
func TestScatterCancelNoGoroutineLeak(t *testing.T) {
	c, err := NewReplicated(Options{
		Nodes: 3, Replicas: 2, WriteQuorum: 1,
		ReplicaTimeout: 20 * time.Millisecond,
		Retry:          retry.Policy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		Seed:           42,
		Node:           NodeOptions{BatchSize: 8, GroupSize: 4, PoolPages: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	seedReplicated(t, c, 6, 4)
	if err := c.StallNode(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.HealNode(0) })
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		// Deadline below ReplicaTimeout: shard 0's stalled copy cannot
		// even fail over before ctx dies, so every query must abort
		// (and abandon a worker goroutine blocked in the stall gate).
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, qerr := c.QueryContext(ctx, fmt.Sprintf(`SELECT id, SUM(speed) FROM vehicle_v WHERE id <= %d GROUP BY id`, i+1))
		cancel()
		if qerr == nil {
			t.Fatalf("query %d against a 10s stall finished inside its 10ms deadline", i)
		}
	}
	// The workers wake as soon as their child contexts die; give the
	// scheduler a grace window rather than a fixed sleep.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
