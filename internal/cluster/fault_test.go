package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"odh/internal/fault"
	"odh/internal/model"
	"odh/internal/pagestore"
	"odh/internal/retry"
	"odh/internal/sqlexec"
)

// newFaultCluster builds a 3-node cluster whose nodes run on fault-
// injectable files, with a pool small enough that flushes must touch them.
func newFaultCluster(t *testing.T) (*Cluster, []*fault.File) {
	t.Helper()
	ffs := make([]*fault.File, 3)
	files := make([]pagestore.File, 3)
	for i := range ffs {
		ffs[i] = fault.Wrap(pagestore.NewMemFile())
		files[i] = ffs[i]
	}
	c, err := NewWithFiles(files, NodeOptions{BatchSize: 8, GroupSize: 4, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	return c, ffs
}

func TestFlushDegradesPastFailingNode(t *testing.T) {
	c, ffs := newFaultCluster(t)
	if err := c.CreateSchema(model.SchemaType{
		Name: "vehicle",
		Tags: []model.TagDef{{Name: "speed"}, {Name: "fuel"}},
	}); err != nil {
		t.Fatal(err)
	}
	schema, _ := c.Node(0).Cat.SchemaByName("vehicle")
	// Register sources across all nodes and leave points buffered (batch
	// size 8, 5 points each) so Flush has real work on every node.
	victim := -1
	for id := int64(1); id <= 24; id++ {
		if err := c.RegisterSource(model.DataSource{ID: id, SchemaID: schema.ID, Regular: true, IntervalMs: 10}); err != nil {
			t.Fatal(err)
		}
		for j := int64(0); j < 5; j++ {
			if err := c.Write(model.Point{Source: id, TS: j * 10, Values: []float64{float64(j), 1}}); err != nil {
				t.Fatal(err)
			}
		}
		if victim == -1 {
			for i := 0; i < c.Nodes(); i++ {
				if c.Node(i) == c.homeNode(id) {
					victim = i
				}
			}
		}
	}
	before := make([]int64, c.Nodes())
	for i := range before {
		before[i] = c.Node(i).TS.Stats().BatchesFlushed
	}
	ffs[victim].FailWritesAfter(0)
	err := c.Flush()
	if err == nil {
		t.Fatal("expected the failing node to surface an error")
	}
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != victim {
		t.Fatalf("Flush error = %v, want NodeError for node %d", err, victim)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("aggregate error %v does not unwrap to the injected fault", err)
	}
	if agg, ok := err.(interface{ Unwrap() []error }); !ok || len(agg.Unwrap()) != 1 {
		t.Fatalf("want exactly one node failure in aggregate, got %v", err)
	}
	// The healthy nodes must have flushed their buffers despite the
	// failure: degradation, not abort.
	for i := 0; i < c.Nodes(); i++ {
		if i == victim {
			continue
		}
		if got := c.Node(i).TS.Stats().BatchesFlushed; got <= before[i] {
			t.Fatalf("healthy node %d did not flush (batches %d -> %d)", i, before[i], got)
		}
	}
}

func TestExecAllDegradesPastFailingNode(t *testing.T) {
	c, _ := newFaultCluster(t)
	// Diverge node 1 so the replicated DDL fails there and only there.
	if _, err := c.Node(1).Engine.Query(`CREATE TABLE fleet (id BIGINT, depot VARCHAR(8))`); err != nil {
		t.Fatal(err)
	}
	err := c.ExecAll(`CREATE TABLE fleet (id BIGINT, depot VARCHAR(8))`)
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != 1 {
		t.Fatalf("ExecAll error = %v, want NodeError for node 1", err)
	}
	// Nodes 0 and 2 must have applied the statement anyway.
	for _, i := range []int{0, 2} {
		if err := func() error {
			_, qerr := c.Node(i).Engine.Query(fmt.Sprintf(`INSERT INTO fleet VALUES (%d, 'north')`, i))
			return qerr
		}(); err != nil {
			t.Fatalf("node %d missing replicated table: %v", i, err)
		}
	}
}

// --- replication, failover, and degraded-operation tests ---

// newReplicatedCluster builds a replicated in-memory cluster tuned for
// deterministic tests: timeouts disabled (no goroutine hand-off), tiny
// backoff so failover rounds are instant.
func newReplicatedCluster(t *testing.T, nodes, replicas, quorum int) *Cluster {
	t.Helper()
	c, err := NewReplicated(Options{
		Nodes:          nodes,
		Replicas:       replicas,
		WriteQuorum:    quorum,
		ReplicaTimeout: -1,
		Retry:          retry.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		Seed:           42,
		Node:           NodeOptions{BatchSize: 8, GroupSize: 4, PoolPages: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// seedReplicated registers the vehicle schema and nSources sources and
// writes pointsPer points to each (timestamps 1000, 1100, ...).
func seedReplicated(t *testing.T, c *Cluster, nSources, pointsPer int) {
	t.Helper()
	if err := c.CreateSchema(model.SchemaType{
		Name: "vehicle",
		Tags: []model.TagDef{{Name: "speed"}, {Name: "fuel"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateVirtualTable("vehicle_v", "vehicle"); err != nil {
		t.Fatal(err)
	}
	schema, _ := c.Node(0).Cat.SchemaByName("vehicle")
	for i := 1; i <= nSources; i++ {
		if err := c.RegisterSource(model.DataSource{
			ID: int64(i), SchemaID: schema.ID, Regular: true, IntervalMs: 100,
		}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < pointsPer; j++ {
			if err := c.Write(model.Point{
				Source: int64(i), TS: int64(1000 + j*100),
				Values: []float64{float64(j), float64(i)},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// renderRows flattens a result to one comparable string, row order
// included.
func renderRows(rows []sqlexec.Row) string {
	var b strings.Builder
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFailoverByteIdentical kills a node mid-workload and checks that a
// replicated cluster answers scatter queries byte-identically to its
// healthy self, for both plain scans and the cross-shard aggregate
// gather.
func TestFailoverByteIdentical(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2, 1)
	seedReplicated(t, c, 12, 10)
	queries := []string{
		`SELECT * FROM vehicle_v WHERE timestamp BETWEEN 1000 AND 1500`,
		`SELECT * FROM vehicle_v WHERE id = 7`,
		`SELECT id, COUNT(*), SUM(speed), MIN(fuel), MAX(fuel) FROM vehicle_v GROUP BY id`,
	}
	healthy := make([]string, len(queries))
	for i, q := range queries {
		res, err := c.Query(q)
		if err != nil {
			t.Fatalf("healthy %q: %v", q, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("healthy %q returned no rows", q)
		}
		healthy[i] = renderRows(res.Rows)
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res, err := c.Query(q)
		if err != nil {
			t.Fatalf("degraded %q: %v", q, err)
		}
		if got := renderRows(res.Rows); got != healthy[i] {
			t.Fatalf("failover answer differs for %q:\nhealthy:\n%sdegraded:\n%s", q, healthy[i], got)
		}
		if len(res.Unavailable) != 0 {
			t.Fatalf("failover marked shards unavailable: %v", res.Unavailable)
		}
	}
	if c.Stats().Failovers == 0 {
		t.Fatal("no failovers recorded despite a dead node")
	}
}

// TestPartialResultNamesDeadShards checks graceful degradation without
// replication: losing a node yields the surviving shards' rows plus a
// PartialResultError naming exactly the dead shards — never a silent
// short answer.
func TestPartialResultNamesDeadShards(t *testing.T) {
	c := newReplicatedCluster(t, 3, 1, 1)
	seedReplicated(t, c, 12, 5)
	liveRows := 0
	for src := int64(1); src <= 12; src++ {
		if c.shardOf(src) != 1 {
			liveRows += 5
		}
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`SELECT * FROM vehicle_v WHERE timestamp BETWEEN 1000 AND 2000`)
	if err == nil {
		t.Fatal("expected a partial-result error with a dead unreplicated shard")
	}
	var pe *sqlexec.PartialResultError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a PartialResultError", err)
	}
	if len(pe.Shards) != 1 || pe.Shards[0] != 1 {
		t.Fatalf("partial error names shards %v, want [1]", pe.Shards)
	}
	if len(res.Unavailable) != 1 || res.Unavailable[0] != 1 {
		t.Fatalf("result marks shards %v unavailable, want [1]", res.Unavailable)
	}
	if len(res.Rows) != liveRows {
		t.Fatalf("partial result has %d rows, want %d from surviving shards", len(res.Rows), liveRows)
	}
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("partial error %v does not unwrap to ErrNodeDown", err)
	}
	if c.Stats().PartialQueries != 1 {
		t.Fatalf("PartialQueries = %d, want 1", c.Stats().PartialQueries)
	}
}

// TestWriteQuorumFailure checks that writes below quorum fail with a
// retryable ErrNoQuorum and recover once the node returns.
func TestWriteQuorumFailure(t *testing.T) {
	c := newReplicatedCluster(t, 2, 2, 2)
	seedReplicated(t, c, 2, 1)
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	err := c.Write(model.Point{Source: 1, TS: 5000, Values: []float64{1, 1}})
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("write with dead quorum member = %v, want ErrNoQuorum", err)
	}
	if !Retryable(err) {
		t.Fatalf("quorum failure %v is not classified retryable", err)
	}
	if c.Stats().WriteQuorumFailures == 0 {
		t.Fatal("quorum failure not counted")
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.CatchUp(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(model.Point{Source: 1, TS: 5100, Values: []float64{1, 1}}); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestHintedHandoffRoundTrip kills a node, keeps writing (quorum 1),
// restarts it, and checks that hint replay converges the replicas to
// byte-identical contents with the staleness window enforced in between.
func TestHintedHandoffRoundTrip(t *testing.T) {
	c := newReplicatedCluster(t, 2, 2, 1)
	seedReplicated(t, c, 4, 5)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	for src := int64(1); src <= 4; src++ {
		for j := 0; j < 5; j++ {
			if err := c.Write(model.Point{
				Source: src, TS: int64(3000 + j*100), Values: []float64{9, float64(src)},
			}); err != nil {
				t.Fatalf("write during outage: %v", err)
			}
		}
	}
	if c.Stats().HintsQueued == 0 {
		t.Fatal("no hints queued for the dead node's copies")
	}
	// Queries during the outage still see everything (failover to the
	// surviving copies).
	res, err := c.Query(`SELECT * FROM vehicle_v WHERE timestamp BETWEEN 1000 AND 4000`)
	if err != nil {
		t.Fatalf("query during outage: %v", err)
	}
	if len(res.Rows) != 4*10 {
		t.Fatalf("outage query rows = %d, want 40", len(res.Rows))
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	// Restarted copies with pending hints must be excluded from reads.
	stale := 0
	c.forEachCopy(func(cp *shardCopy) error {
		if cp.host == 1 && errors.Is(c.readable(cp), ErrReplicaStale) {
			stale++
		}
		return nil
	})
	if stale == 0 {
		t.Fatal("no restarted copy is marked stale despite pending hints")
	}
	if err := c.CatchUp(1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.HintsReplayed+st.HintsDeduped != st.HintsQueued {
		t.Fatalf("hints queued %d != replayed %d + deduped %d", st.HintsQueued, st.HintsReplayed, st.HintsDeduped)
	}
	divergent, notes, err := c.VerifyReplicas()
	if err != nil {
		t.Fatal(err)
	}
	if len(divergent) != 0 {
		t.Fatalf("replicas diverged after catch-up: %v", divergent)
	}
	if len(notes) != 0 {
		t.Fatalf("copies still skipped after catch-up: %v", notes)
	}
}

// TestNodeLossMidQuery makes a scatter read die partway through one
// copy's scan: the node is restarted so its blob pages are out of the
// buffer pool, then a read fault is armed so the scan starts cleanly and
// dies at its first blob-page load. The shard must fail over to the
// other replica and the answer must match the healthy one byte for byte.
func TestNodeLossMidQuery(t *testing.T) {
	c := newReplicatedCluster(t, 3, 2, 1)
	seedReplicated(t, c, 12, 40)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT * FROM vehicle_v WHERE timestamp BETWEEN 1000 AND 5000`
	res, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	healthy := renderRows(res.Rows)
	// Cold-start node 0 so shard 0's preferred copy must hit the file,
	// then let the first few reads through: the scan starts, then dies.
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	// Restart installed a fresh fault wrapper; every read from here on
	// fails. Planning and catalog lookups ride the warmed pool, so the
	// query begins normally and dies at the first blob-page load —
	// genuinely mid-scan.
	cp := c.shards[0][0]
	cp.pageF.FailReadsAfter(0)
	res, err = c.Query(q)
	if err != nil {
		t.Fatalf("mid-query fault not failed over: %v", err)
	}
	if got := renderRows(res.Rows); got != healthy {
		t.Fatalf("mid-query failover differs:\nhealthy:\n%sgot:\n%s", healthy, got)
	}
	if c.Stats().Failovers == 0 {
		t.Fatal("no failover recorded for the faulted copy")
	}
}

// TestAggGatherRejectsNonComposable pins the error surface of the
// aggregate gather: shapes the single-node engine itself rejects (a
// select item that is neither an aggregate nor a GROUP BY key, HAVING
// referencing an aggregate outside the select list) must fail with the
// engine's own non-retryable error rather than silently mis-merging.
func TestAggGatherRejectsNonComposable(t *testing.T) {
	c := newReplicatedCluster(t, 2, 1, 1)
	seedReplicated(t, c, 4, 3)
	for _, q := range []string{
		`SELECT speed, COUNT(*) FROM vehicle_v GROUP BY id`,
		`SELECT id FROM vehicle_v GROUP BY id HAVING COUNT(*) > 1`,
		`SELECT id, COUNT(*) FROM vehicle_v GROUP BY id ORDER BY SUM(speed)`,
	} {
		if _, err := c.Query(q); err == nil {
			t.Fatalf("non-composable %q accepted", q)
		} else if Retryable(err) {
			t.Fatalf("plan rejection %q misclassified as retryable: %v", q, err)
		}
	}
	// Aggregates over replicated relational tables route to one shard and
	// need no decomposition — ORDER BY and AVG are fine there.
	if err := c.ExecAll(`CREATE TABLE fleet (id BIGINT, miles BIGINT)`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := c.ExecAll(fmt.Sprintf(`INSERT INTO fleet VALUES (%d, %d)`, i, i*100)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Query(`SELECT AVG(miles) FROM fleet`)
	if err != nil {
		t.Fatalf("relational aggregate: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsFloat() != 250 {
		t.Fatalf("relational AVG = %v, want 250", res.Rows)
	}
}
