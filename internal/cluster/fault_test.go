package cluster

import (
	"errors"
	"fmt"
	"testing"

	"odh/internal/fault"
	"odh/internal/model"
	"odh/internal/pagestore"
)

// newFaultCluster builds a 3-node cluster whose nodes run on fault-
// injectable files, with a pool small enough that flushes must touch them.
func newFaultCluster(t *testing.T) (*Cluster, []*fault.File) {
	t.Helper()
	ffs := make([]*fault.File, 3)
	files := make([]pagestore.File, 3)
	for i := range ffs {
		ffs[i] = fault.Wrap(pagestore.NewMemFile())
		files[i] = ffs[i]
	}
	c, err := NewWithFiles(files, NodeOptions{BatchSize: 8, GroupSize: 4, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	return c, ffs
}

func TestFlushDegradesPastFailingNode(t *testing.T) {
	c, ffs := newFaultCluster(t)
	if err := c.CreateSchema(model.SchemaType{
		Name: "vehicle",
		Tags: []model.TagDef{{Name: "speed"}, {Name: "fuel"}},
	}); err != nil {
		t.Fatal(err)
	}
	schema, _ := c.Node(0).Cat.SchemaByName("vehicle")
	// Register sources across all nodes and leave points buffered (batch
	// size 8, 5 points each) so Flush has real work on every node.
	victim := -1
	for id := int64(1); id <= 24; id++ {
		if err := c.RegisterSource(model.DataSource{ID: id, SchemaID: schema.ID, Regular: true, IntervalMs: 10}); err != nil {
			t.Fatal(err)
		}
		for j := int64(0); j < 5; j++ {
			if err := c.Write(model.Point{Source: id, TS: j * 10, Values: []float64{float64(j), 1}}); err != nil {
				t.Fatal(err)
			}
		}
		if victim == -1 {
			for i := 0; i < c.Nodes(); i++ {
				if c.Node(i) == c.homeNode(id) {
					victim = i
				}
			}
		}
	}
	before := make([]int64, c.Nodes())
	for i := range before {
		before[i] = c.Node(i).TS.Stats().BatchesFlushed
	}
	ffs[victim].FailWritesAfter(0)
	err := c.Flush()
	if err == nil {
		t.Fatal("expected the failing node to surface an error")
	}
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != victim {
		t.Fatalf("Flush error = %v, want NodeError for node %d", err, victim)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("aggregate error %v does not unwrap to the injected fault", err)
	}
	if agg, ok := err.(interface{ Unwrap() []error }); !ok || len(agg.Unwrap()) != 1 {
		t.Fatalf("want exactly one node failure in aggregate, got %v", err)
	}
	// The healthy nodes must have flushed their buffers despite the
	// failure: degradation, not abort.
	for i := 0; i < c.Nodes(); i++ {
		if i == victim {
			continue
		}
		if got := c.Node(i).TS.Stats().BatchesFlushed; got <= before[i] {
			t.Fatalf("healthy node %d did not flush (batches %d -> %d)", i, before[i], got)
		}
	}
}

func TestExecAllDegradesPastFailingNode(t *testing.T) {
	c, _ := newFaultCluster(t)
	// Diverge node 1 so the replicated DDL fails there and only there.
	if _, err := c.Node(1).Engine.Query(`CREATE TABLE fleet (id BIGINT, depot VARCHAR(8))`); err != nil {
		t.Fatal(err)
	}
	err := c.ExecAll(`CREATE TABLE fleet (id BIGINT, depot VARCHAR(8))`)
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != 1 {
		t.Fatalf("ExecAll error = %v, want NodeError for node 1", err)
	}
	// Nodes 0 and 2 must have applied the statement anyway.
	for _, i := range []int{0, 2} {
		if err := func() error {
			_, qerr := c.Node(i).Engine.Query(fmt.Sprintf(`INSERT INTO fleet VALUES (%d, 'north')`, i))
			return qerr
		}(); err != nil {
			t.Fatalf("node %d missing replicated table: %v", i, err)
		}
	}
}
