// Shard-copy lifecycle: construction, quorum-write plumbing, hinted
// handoff, crash (KillNode) / recovery (RestartNode + CatchUp), stall
// injection, and the cross-replica integrity check.
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"odh/internal/fault"
	"odh/internal/model"
	"odh/internal/pagestore"
	"odh/internal/tsstore"
	"odh/internal/walog"
)

// shardCopy is one replica of one shard: a full storage stack over
// fault-injectable files whose inner backings survive simulated crashes.
type shardCopy struct {
	shard   int // shard index
	replica int // replica ordinal; 0 is the preferred read copy
	host    int // node hosting this copy

	pageBack pagestore.File // inner backing; survives kill/restart
	walBack  walog.File     // inner backing of the recovery log; nil in legacy mode

	mu    sync.Mutex // serializes kill / restart
	pageF *fault.File
	walF  *fault.File

	n   atomic.Pointer[Node]
	wal atomic.Pointer[walog.Log]

	// hints is the coordinator-side hinted-handoff log for this copy:
	// WAL-point-encoded records the copy missed, in walog framing. A copy
	// with pending hints is stale — excluded from reads — until CatchUp
	// replays them.
	hints        *walog.Log
	hintMu       sync.Mutex
	pendingHints atomic.Int64
	catchingUp   atomic.Bool

	// inflight counts writes handed to timeout goroutines that have not
	// finished. Catch-up waits for it to reach zero so an abandoned slow
	// write can never land after the hint-replay dedup checked for it.
	inflight atomic.Int64
}

// newReplicatedCopy builds copy k of shard s on the given host node, with
// fresh in-memory backings wrapped in fault files and an attached
// recovery log.
func (c *Cluster) newReplicatedCopy(s, k, host int) (*shardCopy, error) {
	cp := &shardCopy{
		shard:    s,
		replica:  k,
		host:     host,
		pageBack: pagestore.NewMemFile(),
		walBack:  pagestore.NewMemFile(),
	}
	cp.pageF = fault.Wrap(cp.pageBack.(*pagestore.MemFile))
	cp.walF = fault.Wrap(cp.walBack.(*pagestore.MemFile))
	n, wal, err := newNodeWithFiles(cp.pageF, cp.walF, c.opts.Node)
	if err != nil {
		return nil, err
	}
	hints, err := walog.OpenFile(pagestore.NewMemFile(), walog.Options{})
	if err != nil {
		return nil, err
	}
	cp.hints = hints
	cp.n.Store(n)
	cp.wal.Store(wal)
	return cp, nil
}

// writeCopy applies one point to a copy, observing liveness, injected
// stall, and the per-replica timeout. The point's value slice is cloned
// before any goroutine hand-off so a timed-out write can never race the
// caller's buffer reuse.
func (c *Cluster) writeCopy(cp *shardCopy, p model.Point) error {
	ns := c.nodes[cp.host]
	if ns.down.Load() {
		return ErrNodeDown
	}
	if cp.pendingHints.Load() > 0 || cp.catchingUp.Load() {
		// A stale copy takes new writes as hints, not directly: hints
		// replay in arrival order, so per-source ordering survives the
		// outage instead of interleaving old hinted points after new ones.
		return ErrReplicaStale
	}
	n := cp.n.Load()
	if n == nil {
		return ErrNodeDown
	}
	if c.opts.ReplicaTimeout <= 0 {
		c.stallGate(ns)
		return n.TS.Write(p)
	}
	q := p
	q.Values = append([]float64(nil), p.Values...)
	cp.inflight.Add(1)
	return c.withTimeout(func() error {
		defer cp.inflight.Add(-1)
		c.stallGate(ns)
		return n.TS.Write(q)
	})
}

// stallGate sleeps for the node's injected stall, modeling a hung data
// server even for operations that never touch its files.
func (c *Cluster) stallGate(ns *nodeState) {
	if d := ns.stallNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// stallGateCtx is stallGate for the read path: a cancelled query must
// not sit out a hung node's stall, so the sleep races ctx.
func (c *Cluster) stallGateCtx(ctx context.Context, ns *nodeState) error {
	if d := ns.stallNs.Load(); d > 0 {
		return sleepCtx(ctx, time.Duration(d))
	}
	return ctx.Err()
}

// withTimeout bounds op by ReplicaTimeout. On timeout the operation keeps
// running in its abandoned goroutine (its effect, if any, is handled by
// hint dedup); the caller gets ErrReplicaTimeout.
func (c *Cluster) withTimeout(op func() error) error {
	d := c.opts.ReplicaTimeout
	if d <= 0 {
		return op()
	}
	done := make(chan error, 1)
	go func() { done <- op() }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return ErrReplicaTimeout
	}
}

// hint queues a hinted-handoff record for a copy that missed a write. A
// timed-out write is hinted too — it may have landed, and catch-up dedups
// reapplication — so "hinted" is conservative: the copy is stale until
// proven caught-up, never silently short.
func (c *Cluster) hint(cp *shardCopy, p model.Point) {
	if cp.hints == nil {
		return
	}
	cp.hintMu.Lock()
	defer cp.hintMu.Unlock()
	if err := cp.hints.Append(tsstore.EncodePointWAL(p)); err == nil {
		cp.pendingHints.Add(1)
		c.stats.hintsQueued.Add(1)
	}
}

// readable reports whether a copy may answer reads: its node is up, its
// stack is open, and it has no pending hints (a stale copy could silently
// miss acked writes). The returned error explains exclusion.
func (c *Cluster) readable(cp *shardCopy) error {
	if c.nodes[cp.host].down.Load() || cp.n.Load() == nil {
		return ErrNodeDown
	}
	if cp.pendingHints.Load() > 0 || cp.catchingUp.Load() {
		return ErrReplicaStale
	}
	return nil
}

// KillNode simulates a crash of node i: every fault on its copies' files
// is armed so in-flight I/O fails and nothing reaches the backing after
// the crash point, the recovery logs' writer goroutines stop, and the
// stacks are dropped. Data durability follows the single-node model: last
// page-store checkpoint plus recovery-log replay.
func (c *Cluster) KillNode(i int) error {
	if c.legacy {
		return fmt.Errorf("cluster: kill/restart requires a replicated cluster")
	}
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	ns := c.nodes[i]
	if ns.down.Swap(true) {
		return nil // already down
	}
	c.stats.kills.Add(1)
	c.forEachCopy(func(cp *shardCopy) error {
		if cp.host != i {
			return nil
		}
		cp.mu.Lock()
		defer cp.mu.Unlock()
		if cp.pageF != nil {
			cp.pageF.FailWritesAfter(0)
			cp.pageF.FailReadsAfter(0)
			cp.pageF.FailSyncsAfter(0)
		}
		if cp.walF != nil {
			cp.walF.FailWritesAfter(0)
			cp.walF.FailReadsAfter(0)
			cp.walF.FailSyncsAfter(0)
		}
		if wal := cp.wal.Load(); wal != nil {
			wal.Close() // in-flight appends fail against the armed file
		}
		cp.n.Store(nil)
		cp.wal.Store(nil)
		return nil
	})
	return nil
}

// RestartNode recovers node i after a kill: each hosted copy gets fresh
// fault wrappers over the surviving backings and a reopened stack (the
// page store recovers its last checkpoint, the recovery log truncates any
// torn tail), then replays its recovery log with dedup — a record whose
// point already reached a committed batch is skipped. Copies that missed
// writes while down stay stale until CatchUp drains their hints.
func (c *Cluster) RestartNode(i int) error {
	if c.legacy {
		return fmt.Errorf("cluster: kill/restart requires a replicated cluster")
	}
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	ns := c.nodes[i]
	if !ns.down.Load() {
		return nil
	}
	var firstErr error
	c.forEachCopy(func(cp *shardCopy) error {
		if cp.host != i {
			return nil
		}
		if err := c.reopenCopy(cp); err != nil && firstErr == nil {
			firstErr = err
		}
		return nil
	})
	if firstErr != nil {
		return firstErr
	}
	ns.down.Store(false)
	c.stats.restarts.Add(1)
	return nil
}

// reopenCopy rebuilds one copy's stack from its backing files after a
// simulated crash.
func (c *Cluster) reopenCopy(cp *shardCopy) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.pendingHints.Load() > 0 {
		cp.catchingUp.Store(true)
	}
	pageF := fault.Wrap(cp.pageBack.(*pagestore.MemFile))
	walF := fault.Wrap(cp.walBack.(*pagestore.MemFile))
	n, wal, err := newNodeWithFiles(pageF, walF, c.opts.Node)
	if err != nil {
		return fmt.Errorf("cluster: restart shard %d copy %d: %w", cp.shard, cp.replica, err)
	}
	if _, _, err := n.TS.RecoverFromLogDedup(wal); err != nil {
		return fmt.Errorf("cluster: replay shard %d copy %d: %w", cp.shard, cp.replica, err)
	}
	cp.pageF, cp.walF = pageF, walF
	cp.wal.Store(wal)
	cp.n.Store(n)
	return nil
}

// StallNode injects latency d into node i: every file operation of its
// copies sleeps d, and so does every cluster-dispatched operation — a
// hung node, which per-replica timeouts then turn into failover instead
// of a hung cluster. HealNode removes the stall.
func (c *Cluster) StallNode(i int, d time.Duration) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	c.nodes[i].stallNs.Store(int64(d))
	c.forEachCopy(func(cp *shardCopy) error {
		if cp.host != i {
			return nil
		}
		cp.mu.Lock()
		defer cp.mu.Unlock()
		if cp.pageF != nil {
			cp.pageF.SetLatency(d)
		}
		if cp.walF != nil {
			cp.walF.SetLatency(d)
		}
		return nil
	})
	return nil
}

// HealNode removes node i's injected stall.
func (c *Cluster) HealNode(i int) error { return c.StallNode(i, 0) }

// CatchUp replays the hinted-handoff records of every copy hosted on
// node i, deduplicating against points the copy already has (applied
// before a crash, or by a write that timed out at the coordinator but
// finished anyway). Once a copy's hints drain it becomes readable again.
func (c *Cluster) CatchUp(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	var firstErr error
	c.forEachCopy(func(cp *shardCopy) error {
		if cp.host != i {
			return nil
		}
		if err := c.catchUpCopy(cp); err != nil && firstErr == nil {
			firstErr = err
		}
		return nil
	})
	return firstErr
}

func (c *Cluster) catchUpCopy(cp *shardCopy) error {
	if cp.hints == nil {
		return nil
	}
	if c.nodes[cp.host].down.Load() {
		return ErrNodeDown
	}
	n := cp.n.Load()
	if n == nil {
		return ErrNodeDown
	}
	cp.hintMu.Lock()
	defer cp.hintMu.Unlock()
	if cp.pendingHints.Load() == 0 && !cp.catchingUp.Load() {
		return nil
	}
	// Wait out abandoned timed-out writes: one could otherwise apply its
	// point after the dedup below checked for it, duplicating the point.
	deadline := time.Now().Add(4 * c.opts.ReplicaTimeout)
	for cp.inflight.Load() > 0 {
		if c.opts.ReplicaTimeout > 0 && time.Now().After(deadline) {
			return fmt.Errorf("%w: writes still in flight", ErrReplicaTimeout)
		}
		time.Sleep(time.Millisecond)
	}
	// Replay through the normal write path so replayed hints are
	// themselves protected by the copy's recovery log.
	err := cp.hints.Replay(func(payload []byte) error {
		p, derr := tsstore.DecodePointWAL(payload)
		if derr != nil {
			return derr
		}
		has, herr := n.TS.HasPoint(p.Source, p.TS)
		if herr != nil {
			return herr
		}
		if has {
			c.stats.hintsDeduped.Add(1)
			return nil
		}
		c.stats.hintsReplayed.Add(1)
		return n.TS.Write(p)
	})
	if err != nil {
		return err // copy stays stale; CatchUp can be retried
	}
	if err := cp.hints.Reset(); err != nil {
		return err
	}
	cp.pendingHints.Store(0)
	cp.catchingUp.Store(false)
	return nil
}

// ShardDivergence reports replicas of one shard whose full-scan contents
// disagree.
type ShardDivergence struct {
	Shard  int
	Detail string
}

// VerifyReplicas compares every shard's copies by scanning each virtual
// table's full contents on each readable copy and fingerprinting the
// rows. Copies of the same shard must agree byte-for-byte (same points,
// same per-source order); stale or down copies are reported as notes, not
// divergence — they are expected to lag until catch-up.
func (c *Cluster) VerifyReplicas() (divergent []ShardDivergence, notes []string, err error) {
	for s, copies := range c.shards {
		if len(copies) < 2 {
			continue
		}
		type fp struct {
			replica int
			sum     uint64
			rows    int
		}
		var fps []fp
		for _, cp := range copies {
			if rerr := c.readable(cp); rerr != nil {
				notes = append(notes, fmt.Sprintf("shard %d copy %d on node %d skipped: %v", s, cp.replica, cp.host, rerr))
				continue
			}
			sum, rows, ferr := c.fingerprintCopy(cp)
			if ferr != nil {
				return nil, notes, fmt.Errorf("cluster: fingerprint shard %d copy %d: %w", s, cp.replica, ferr)
			}
			fps = append(fps, fp{replica: cp.replica, sum: sum, rows: rows})
		}
		for i := 1; i < len(fps); i++ {
			if fps[i].sum != fps[0].sum {
				divergent = append(divergent, ShardDivergence{
					Shard: s,
					Detail: fmt.Sprintf("copy %d (%d rows, %016x) != copy %d (%d rows, %016x)",
						fps[i].replica, fps[i].rows, fps[i].sum, fps[0].replica, fps[0].rows, fps[0].sum),
				})
				break
			}
		}
	}
	return divergent, notes, nil
}

// fingerprintCopy hashes the full contents of every virtual table on one
// copy, row order included.
func (c *Cluster) fingerprintCopy(cp *shardCopy) (uint64, int, error) {
	n := cp.n.Load()
	if n == nil {
		return 0, 0, ErrNodeDown
	}
	h := fnv.New64a()
	rows := 0
	tables := n.Cat.VirtualTables()
	sort.Strings(tables)
	for _, table := range tables {
		// The TS column name is per-schema (TSName overrides "timestamp").
		st, ok := n.Cat.VirtualTable(table)
		if !ok {
			return 0, 0, fmt.Errorf("fingerprint: virtual table %q vanished", table)
		}
		res, err := n.Engine.Query(fmt.Sprintf(
			"SELECT * FROM %s WHERE %s >= %d AND %s <= %d",
			table, st.TSColumn(), -int64(1)<<62, st.TSColumn(), int64(1)<<62))
		if err != nil {
			return 0, 0, err
		}
		all, err := res.FetchAll()
		if err != nil {
			return 0, 0, err
		}
		for _, row := range all {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(h, table, strings.Join(cells, "|"))
			rows++
		}
	}
	return h.Sum64(), rows, nil
}

// VerifyCopies runs the storage-level integrity checks (page graph, blob
// decode) on every readable copy, returning the number of copies checked
// and any problems found.
func (c *Cluster) VerifyCopies() (checked int, problems []string, err error) {
	cerr := c.forEachCopy(func(cp *shardCopy) error {
		n := cp.n.Load()
		if n == nil || c.nodes[cp.host].down.Load() {
			problems = append(problems, fmt.Sprintf("shard %d copy %d on node %d: down", cp.shard, cp.replica, cp.host))
			return nil
		}
		if err := n.TS.Flush(); err != nil {
			problems = append(problems, fmt.Sprintf("shard %d copy %d: flush: %v", cp.shard, cp.replica, err))
			return nil
		}
		if err := n.Page.Flush(); err != nil {
			problems = append(problems, fmt.Sprintf("shard %d copy %d: page flush: %v", cp.shard, cp.replica, err))
			return nil
		}
		if _, corruptPages, perr := n.Page.VerifyPages(); perr != nil {
			problems = append(problems, fmt.Sprintf("shard %d copy %d: page walk: %v", cp.shard, cp.replica, perr))
		} else {
			for _, pid := range corruptPages {
				problems = append(problems, fmt.Sprintf("shard %d copy %d: corrupt page %v", cp.shard, cp.replica, pid))
			}
		}
		nblobs, corrupt, berr := n.TS.VerifyBlobs()
		if berr != nil {
			problems = append(problems, fmt.Sprintf("shard %d copy %d: blob walk: %v", cp.shard, cp.replica, berr))
		}
		for _, ref := range corrupt {
			problems = append(problems, fmt.Sprintf("shard %d copy %d: corrupt blob %v", cp.shard, cp.replica, ref))
		}
		_ = nblobs
		checked++
		return nil
	})
	if cerr != nil {
		return checked, problems, cerr
	}
	return checked, problems, nil
}
