// Package cluster implements the multi-data-server deployment of the
// paper's Figure 2: operational data is hash-partitioned by data source
// across N storage nodes, relational (business) data is replicated to
// every node, and queries scatter to all shards and gather their rows.
// The coordinator's routing table is the same catalog metadata the data
// router consults per query.
//
// The unit of placement is the shard copy: shard s has R copies, copy k
// living on node (s+k) mod N, each a full storage stack (page store,
// recovery log, catalog, time-series store, relational DB, SQL engine)
// over its own fault-injectable files. Writes go to every copy of the
// home shard and acknowledge on a configurable quorum with per-replica
// timeouts; a copy that misses a write accumulates a hinted-handoff
// record (WAL point encoding, walog framing) at the coordinator and is
// excluded from reads until CatchUp replays its hints. Reads fail over
// across copies with bounded jittered exponential backoff and degrade to
// a *sqlexec.PartialResultError naming the shards with zero live fresh
// copies. KillNode / RestartNode / StallNode are the chaos surface: a
// kill arms every fault on the copy's files (in-flight I/O fails, nothing
// lands after the crash point) and a restart reopens the stacks from the
// surviving backing files with deduplicating WAL replay.
//
// Known degraded-mode limits: relational DML and metadata changes
// (ExecAll, CreateSchema, RegisterSource) have no hinted handoff — a
// statement that fails on a down copy stays missing there and surfaces in
// the aggregate NodeError; issue them while the cluster is healthy.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"odh/internal/catalog"
	"odh/internal/fault"
	"odh/internal/model"
	"odh/internal/pagestore"
	"odh/internal/relational"
	"odh/internal/retry"
	"odh/internal/sqlexec"
	"odh/internal/tsstore"
	"odh/internal/walog"
)

// NodeError tags an error with the index of the node it came from, so a
// scatter operation's aggregate error pinpoints the failing data servers.
type NodeError struct {
	Node int
	Err  error
}

func (e *NodeError) Error() string { return fmt.Sprintf("cluster: node %d: %v", e.Node, e.Err) }
func (e *NodeError) Unwrap() error { return e.Err }

// joinNodeErrors aggregates per-node failures (nil when none). The result
// supports errors.Is/As traversal into each NodeError.
func joinNodeErrors(errs []error) error {
	return errors.Join(errs...)
}

// Sentinel errors of the replication layer. All of them are Retryable.
var (
	// ErrNodeDown reports an operation routed to a killed node.
	ErrNodeDown = errors.New("cluster: node is down")
	// ErrReplicaTimeout reports a per-replica operation that exceeded
	// ReplicaTimeout (a hung node).
	ErrReplicaTimeout = errors.New("cluster: replica operation timed out")
	// ErrReplicaStale reports a read routed to a copy with pending
	// hinted-handoff records; reading it could silently miss acked data.
	ErrReplicaStale = errors.New("cluster: replica is stale (pending hinted handoff)")
	// ErrNoQuorum reports a write acknowledged by fewer copies than
	// WriteQuorum. The write may exist on some copies and is queued as a
	// hint for the rest, but it was NOT acked.
	ErrNoQuorum = errors.New("cluster: write quorum not reached")
)

// Retryable classifies an error as transient: the same operation against
// the cluster may succeed later (after failover, restart, or catch-up).
// Non-retryable errors (parse errors, unknown tables, arity mismatches)
// fail identically on every replica.
func Retryable(err error) bool {
	return err != nil && (errors.Is(err, ErrNodeDown) ||
		errors.Is(err, ErrReplicaTimeout) ||
		errors.Is(err, ErrReplicaStale) ||
		errors.Is(err, ErrNoQuorum) ||
		errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, pagestore.ErrClosed) ||
		errors.Is(err, walog.ErrClosed) ||
		errors.Is(err, context.DeadlineExceeded))
}

// NodeOptions configures each node's storage stack.
type NodeOptions struct {
	BatchSize int
	GroupSize int
	PoolPages int
}

// Node is one shard copy's data server: a full storage stack plus a SQL
// engine.
type Node struct {
	Page   *pagestore.Store
	Cat    *catalog.Catalog
	TS     *tsstore.Store
	Rel    *relational.DB
	Engine *sqlexec.Engine
}

// newNodeWithFiles builds a stack over explicit backing files. wal may be
// nil (legacy single-copy mode: no recovery log, no crash restart).
func newNodeWithFiles(f pagestore.File, wal walog.File, opts NodeOptions) (*Node, *walog.Log, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 4096
	}
	page, err := pagestore.Open(f, pagestore.Options{PoolPages: opts.PoolPages})
	if err != nil {
		return nil, nil, err
	}
	cat, err := catalog.Open(page, opts.GroupSize)
	if err != nil {
		return nil, nil, err
	}
	var l *walog.Log
	if wal != nil {
		l, err = walog.OpenFile(wal, walog.Options{})
		if err != nil {
			return nil, nil, err
		}
	}
	ts, err := tsstore.Open(page, cat, tsstore.Config{BatchSize: opts.BatchSize, Log: l})
	if err != nil {
		return nil, nil, err
	}
	rel, err := relational.Open(page, relational.ProfileRDB)
	if err != nil {
		return nil, nil, err
	}
	return &Node{Page: page, Cat: cat, TS: ts, Rel: rel, Engine: sqlexec.New(rel, ts)}, l, nil
}

// Options configures a replicated cluster.
type Options struct {
	// Nodes is the data-server count.
	Nodes int
	// Replicas is the copy count per shard, capped at Nodes. 0 means 1.
	Replicas int
	// WriteQuorum is the number of copies that must apply a write before
	// it is acknowledged. 0 means majority (Replicas/2 + 1).
	WriteQuorum int
	// ReplicaTimeout bounds each per-replica operation (write or shard
	// read); a hung node turns into ErrReplicaTimeout instead of a hung
	// cluster. 0 means 2s; negative disables.
	ReplicaTimeout time.Duration
	// Retry bounds shard-read failover: attempts cycle the shard's
	// copies with jittered exponential backoff between rounds. Zero
	// value means retry.Policy{MaxAttempts: 3, BaseDelay: 5ms,
	// MaxDelay: 100ms}.
	Retry retry.Policy
	// Seed seeds the backoff jitter (0 picks an arbitrary seed).
	Seed int64
	// QueryTimeout bounds a whole scattered query (all shards, all
	// failover rounds) when the caller's context carries no deadline of
	// its own. 0 disables.
	QueryTimeout time.Duration
	// Node configures each copy's storage stack.
	Node NodeOptions
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.Replicas > o.Nodes {
		o.Replicas = o.Nodes
	}
	if o.WriteQuorum <= 0 {
		o.WriteQuorum = o.Replicas/2 + 1
	}
	if o.WriteQuorum > o.Replicas {
		o.WriteQuorum = o.Replicas
	}
	if o.ReplicaTimeout == 0 {
		o.ReplicaTimeout = 2 * time.Second
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry = retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Stats counts replication and failover activity since the cluster was
// built.
type Stats struct {
	WritesAcked         int64 // writes that reached quorum
	WriteQuorumFailures int64 // writes that did not
	ReplicaWriteErrors  int64 // per-copy write failures (each queues a hint)
	HintsQueued         int64
	HintsReplayed       int64 // hints applied during catch-up
	HintsDeduped        int64 // hints skipped: the copy already had the point
	Failovers           int64 // shard reads answered by a non-first choice
	Backoffs            int64 // jittered sleeps between failover rounds
	Queries             int64
	PartialQueries      int64 // queries that returned a PartialResultError
	AggGathers          int64 // scatter queries merged by the aggregate gather
	Kills               int64
	Restarts            int64
}

type statsCounters struct {
	writesAcked, writeQuorumFailures, replicaWriteErrors atomic.Int64
	hintsQueued, hintsReplayed, hintsDeduped             atomic.Int64
	failovers, backoffs                                  atomic.Int64
	queries, partialQueries, aggGathers                  atomic.Int64
	kills, restarts                                      atomic.Int64
}

// Cluster is a set of shard copies with a source-hash router.
type Cluster struct {
	opts   Options
	legacy bool // NewWithFiles: external files, no WAL, no kill/restart

	nodes  []*nodeState
	shards [][]*shardCopy // [shard][replica]

	rngMu sync.Mutex
	rng   *rand.Rand

	stats statsCounters
}

// nodeState is the liveness view of one data server.
type nodeState struct {
	down    atomic.Bool
	stallNs atomic.Int64
}

// New builds an n-node in-process cluster with one copy per shard (no
// replication) — the pre-replication constructor, kept for single-copy
// deployments and tests.
func New(n int, opts NodeOptions) (*Cluster, error) {
	return NewReplicated(Options{Nodes: n, Node: opts})
}

// NewReplicated builds a cluster with opts.Replicas copies per shard.
func NewReplicated(opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	opts = opts.withDefaults()
	c := &Cluster{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	for i := 0; i < opts.Nodes; i++ {
		c.nodes = append(c.nodes, &nodeState{})
	}
	for s := 0; s < opts.Nodes; s++ {
		copies := make([]*shardCopy, opts.Replicas)
		for k := 0; k < opts.Replicas; k++ {
			cp, err := c.newReplicatedCopy(s, k, (s+k)%opts.Nodes)
			if err != nil {
				c.Close()
				return nil, err
			}
			copies[k] = cp
		}
		c.shards = append(c.shards, copies)
	}
	return c, nil
}

// NewWithFiles builds a single-copy cluster with one node per backing
// file, so tests can inject faults into individual data servers. Copies
// built this way carry no recovery log and cannot be killed/restarted.
func NewWithFiles(files []pagestore.File, opts NodeOptions) (*Cluster, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	o := Options{Nodes: len(files), Node: opts, ReplicaTimeout: -1}.withDefaults()
	c := &Cluster{opts: o, legacy: true, rng: rand.New(rand.NewSource(o.Seed))}
	for range files {
		c.nodes = append(c.nodes, &nodeState{})
	}
	for s, f := range files {
		n, _, err := newNodeWithFiles(f, nil, opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		cp := &shardCopy{shard: s, replica: 0, host: s, pageBack: f}
		cp.n.Store(n)
		c.shards = append(c.shards, []*shardCopy{cp})
	}
	return c, nil
}

// Close flushes and releases every live copy.
func (c *Cluster) Close() error {
	var first error
	for _, copies := range c.shards {
		for _, cp := range copies {
			if cp == nil {
				continue
			}
			n := cp.n.Load()
			if n == nil || c.nodes[cp.host].down.Load() {
				continue
			}
			if err := n.TS.Flush(); err != nil && first == nil {
				first = err
			}
			if err := n.Page.Close(); err != nil && first == nil {
				first = err
			}
			if wal := cp.wal.Load(); wal != nil {
				wal.Close()
			}
		}
	}
	return first
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Replicas returns the copy count per shard.
func (c *Cluster) Replicas() int { return c.opts.Replicas }

// Quorum returns the effective write quorum after defaulting (majority
// of Replicas unless configured).
func (c *Cluster) Quorum() int { return c.opts.WriteQuorum }

// Node returns node i's primary stack — the first copy of shard i, which
// lives on node i (for inspection in tests).
func (c *Cluster) Node(i int) *Node { return c.shards[i][0].n.Load() }

// shardOf routes a data source to its home shard.
func (c *Cluster) shardOf(source int64) int {
	h := uint64(source) * 0x9E3779B97F4A7C15 // Fibonacci hashing
	return int(h % uint64(len(c.shards)))
}

// homeNode routes a data source to its home shard's primary stack.
func (c *Cluster) homeNode(source int64) *Node {
	return c.shards[c.shardOf(source)][0].n.Load()
}

// forEachCopy visits every copy in shard-then-replica order.
func (c *Cluster) forEachCopy(fn func(cp *shardCopy) error) error {
	for _, copies := range c.shards {
		for _, cp := range copies {
			if err := fn(cp); err != nil {
				return err
			}
		}
	}
	return nil
}

// CreateSchema registers a schema type on every copy (metadata is
// replicated so any node can answer any query shape). Issue while
// healthy: metadata changes have no hinted handoff.
func (c *Cluster) CreateSchema(st model.SchemaType) error {
	return c.forEachCopy(func(cp *shardCopy) error {
		n := cp.n.Load()
		if n == nil {
			return &NodeError{Node: cp.host, Err: ErrNodeDown}
		}
		if _, err := n.Cat.CreateSchema(st); err != nil {
			return err
		}
		return c.checkpointMeta(cp, n)
	})
}

// checkpointMeta commits a copy's page store after a metadata change.
// Metadata is not covered by the point WAL, so a crash before the next
// flush would otherwise leave the copy's recovery log referencing
// sources its reopened catalog has never heard of. Metadata changes are
// rare; the synchronous checkpoint is the price of making them durable.
func (c *Cluster) checkpointMeta(cp *shardCopy, n *Node) error {
	if cp.walBack == nil {
		return nil // legacy copies have no crash/restart path
	}
	return n.Page.Flush()
}

// CreateVirtualTable registers the virtual table on every copy.
func (c *Cluster) CreateVirtualTable(table, schemaName string) error {
	return c.forEachCopy(func(cp *shardCopy) error {
		n := cp.n.Load()
		if n == nil {
			return &NodeError{Node: cp.host, Err: ErrNodeDown}
		}
		s, ok := n.Cat.SchemaByName(schemaName)
		if !ok {
			return fmt.Errorf("cluster: unknown schema %q", schemaName)
		}
		if err := n.Cat.CreateVirtualTable(table, s.ID); err != nil {
			return err
		}
		return c.checkpointMeta(cp, n)
	})
}

// RegisterSource registers the source's metadata on every copy; only the
// home shard's copies will ever hold its data. Explicit IDs are required
// so routing is stable across nodes.
func (c *Cluster) RegisterSource(ds model.DataSource) error {
	if ds.ID == 0 {
		return fmt.Errorf("cluster: sources must carry explicit ids")
	}
	return c.forEachCopy(func(cp *shardCopy) error {
		n := cp.n.Load()
		if n == nil {
			return &NodeError{Node: cp.host, Err: ErrNodeDown}
		}
		if _, ok := n.Cat.SchemaByID(ds.SchemaID); !ok {
			return fmt.Errorf("cluster: unknown schema %d", ds.SchemaID)
		}
		if _, err := n.Cat.RegisterSource(ds); err != nil {
			return err
		}
		return c.checkpointMeta(cp, n)
	})
}

// Write routes one point to every copy of its source's home shard and
// acknowledges once WriteQuorum copies applied it. A copy that fails or
// times out gets a hinted-handoff record and is excluded from reads until
// it catches up; the write itself still acks as long as quorum holds, so
// a dead replica degrades redundancy, not availability. Below quorum the
// error wraps ErrNoQuorum (retryable) — the point is NOT acked, though
// surviving copies may hold it and the hints will converge the rest.
func (c *Cluster) Write(p model.Point) error {
	copies := c.shards[c.shardOf(p.Source)]
	acks := 0
	var errs []error
	for _, cp := range copies {
		if err := c.writeCopy(cp, p); err != nil {
			c.stats.replicaWriteErrors.Add(1)
			errs = append(errs, &NodeError{Node: cp.host, Err: err})
			c.hint(cp, p)
			continue
		}
		acks++
	}
	if acks >= c.opts.WriteQuorum {
		c.stats.writesAcked.Add(1)
		return nil
	}
	c.stats.writeQuorumFailures.Add(1)
	return fmt.Errorf("%w: %d/%d acks: %w", ErrNoQuorum, acks, c.opts.WriteQuorum, joinNodeErrors(errs))
}

// Flush flushes every copy's ingest buffers and commits its page store
// before recycling its recovery log. A failing copy does not abort the
// sweep: healthy copies still flush, and the per-copy failures come back
// aggregated as NodeErrors — one dead data server degrades the cluster
// instead of wedging it.
func (c *Cluster) Flush() error {
	var errs []error
	c.forEachCopy(func(cp *shardCopy) error {
		n := cp.n.Load()
		if n == nil || c.nodes[cp.host].down.Load() {
			errs = append(errs, &NodeError{Node: cp.host, Err: ErrNodeDown})
			return nil
		}
		if err := n.TS.FlushWith(n.Page.Flush); err != nil {
			errs = append(errs, &NodeError{Node: cp.host, Err: err})
		}
		return nil
	})
	return joinNodeErrors(errs)
}

// ExecAll runs a DDL or DML statement on every copy (relational tables
// and their contents are replicated). Like Flush, it continues past
// failing copies and aggregates their errors, so replicas that can apply
// the statement do. There is no relational hinted handoff: a copy that
// misses a statement stays diverged until rebuilt.
func (c *Cluster) ExecAll(sql string) error {
	var errs []error
	c.forEachCopy(func(cp *shardCopy) error {
		n := cp.n.Load()
		if n == nil || c.nodes[cp.host].down.Load() {
			errs = append(errs, &NodeError{Node: cp.host, Err: ErrNodeDown})
			return nil
		}
		if _, err := n.Engine.Query(sql); err != nil {
			errs = append(errs, &NodeError{Node: cp.host, Err: err})
		}
		return nil
	})
	return joinNodeErrors(errs)
}

// Stats returns a snapshot of replication and failover counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		WritesAcked:         c.stats.writesAcked.Load(),
		WriteQuorumFailures: c.stats.writeQuorumFailures.Load(),
		ReplicaWriteErrors:  c.stats.replicaWriteErrors.Load(),
		HintsQueued:         c.stats.hintsQueued.Load(),
		HintsReplayed:       c.stats.hintsReplayed.Load(),
		HintsDeduped:        c.stats.hintsDeduped.Load(),
		Failovers:           c.stats.failovers.Load(),
		Backoffs:            c.stats.backoffs.Load(),
		Queries:             c.stats.queries.Load(),
		PartialQueries:      c.stats.partialQueries.Load(),
		AggGathers:          c.stats.aggGathers.Load(),
		Kills:               c.stats.kills.Load(),
		Restarts:            c.stats.restarts.Load(),
	}
}

// TotalTSStats sums the time-series store counters across every live
// copy — the cluster-wide view of ingest volume and of the summary-level
// aggregate pushdown (SummaryHits / BytesNotDecoded) working per shard.
// Down copies contribute nothing; their counters return after restart.
func (c *Cluster) TotalTSStats() tsstore.Stats {
	var total tsstore.Stats
	c.forEachCopy(func(cp *shardCopy) error {
		if n := cp.n.Load(); n != nil {
			s := n.TS.Stats()
			total.Add(&s)
		}
		return nil
	})
	return total
}

// SetAggPushdown toggles the storage-level aggregate pushdown on every
// live copy's engine (operator/bench knob; default on).
func (c *Cluster) SetAggPushdown(on bool) {
	c.forEachCopy(func(cp *shardCopy) error {
		if n := cp.n.Load(); n != nil {
			n.Engine.SetAggPushdown(on)
		}
		return nil
	})
}

// CopyStatus is the liveness view of one shard copy.
type CopyStatus struct {
	Shard        int
	Replica      int
	Host         int
	Up           bool
	PendingHints int64
	CatchingUp   bool
}

// NodeStatus is the liveness view of one data server.
type NodeStatus struct {
	Node    int
	Down    bool
	Stalled bool
	Copies  []CopyStatus // copies hosted on this node
}

// Status reports per-node liveness and per-copy staleness for operator
// tooling (.cluster in odh-cli).
func (c *Cluster) Status() []NodeStatus {
	out := make([]NodeStatus, len(c.nodes))
	for i, ns := range c.nodes {
		out[i] = NodeStatus{Node: i, Down: ns.down.Load(), Stalled: ns.stallNs.Load() > 0}
	}
	c.forEachCopy(func(cp *shardCopy) error {
		out[cp.host].Copies = append(out[cp.host].Copies, CopyStatus{
			Shard:        cp.shard,
			Replica:      cp.replica,
			Host:         cp.host,
			Up:           cp.n.Load() != nil && !c.nodes[cp.host].down.Load(),
			PendingHints: cp.pendingHints.Load(),
			CatchingUp:   cp.catchingUp.Load(),
		})
		return nil
	})
	return out
}
