// Package cluster implements the multi-data-server deployment of the
// paper's Figure 2: operational data is hash-partitioned by data source
// across N storage nodes, relational (business) data is replicated to
// every node, and queries scatter to all nodes and gather their rows. The
// coordinator's routing table is the same catalog metadata the data
// router consults per query.
package cluster

import (
	"errors"
	"fmt"

	"odh/internal/catalog"
	"odh/internal/model"
	"odh/internal/pagestore"
	"odh/internal/relational"
	"odh/internal/sqlexec"
	"odh/internal/tsstore"
)

// NodeError tags an error with the index of the node it came from, so a
// scatter operation's aggregate error pinpoints the failing data servers.
type NodeError struct {
	Node int
	Err  error
}

func (e *NodeError) Error() string { return fmt.Sprintf("cluster: node %d: %v", e.Node, e.Err) }
func (e *NodeError) Unwrap() error { return e.Err }

// joinNodeErrors aggregates per-node failures (nil when none). The result
// supports errors.Is/As traversal into each NodeError.
func joinNodeErrors(errs []error) error {
	return errors.Join(errs...)
}

// NodeOptions configures each node's storage stack.
type NodeOptions struct {
	BatchSize int
	GroupSize int
	PoolPages int
}

// Node is one data server: a full storage stack plus a SQL engine.
type Node struct {
	Page   *pagestore.Store
	Cat    *catalog.Catalog
	TS     *tsstore.Store
	Rel    *relational.DB
	Engine *sqlexec.Engine
}

func newNode(opts NodeOptions) (*Node, error) {
	return newNodeWithFile(pagestore.NewMemFile(), opts)
}

// newNodeWithFile builds a node's stack over an explicit backing file
// (crash tests inject fault wrappers here).
func newNodeWithFile(f pagestore.File, opts NodeOptions) (*Node, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 4096
	}
	page, err := pagestore.Open(f, pagestore.Options{PoolPages: opts.PoolPages})
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Open(page, opts.GroupSize)
	if err != nil {
		return nil, err
	}
	ts, err := tsstore.Open(page, cat, tsstore.Config{BatchSize: opts.BatchSize})
	if err != nil {
		return nil, err
	}
	rel, err := relational.Open(page, relational.ProfileRDB)
	if err != nil {
		return nil, err
	}
	return &Node{Page: page, Cat: cat, TS: ts, Rel: rel, Engine: sqlexec.New(rel, ts)}, nil
}

// Cluster is a set of nodes with a source-hash router.
type Cluster struct {
	nodes []*Node
}

// New builds an n-node in-process cluster.
func New(n int, opts NodeOptions) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		node, err := newNode(opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// NewWithFiles builds a cluster with one node per backing file, so tests
// can inject faults into individual data servers.
func NewWithFiles(files []pagestore.File, opts NodeOptions) (*Cluster, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	c := &Cluster{}
	for _, f := range files {
		node, err := newNodeWithFile(f, opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Close releases every node.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		if err := n.TS.Flush(); err != nil && first == nil {
			first = err
		}
		if err := n.Page.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns node i (for inspection in tests).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// homeNode routes a data source to its owning node.
func (c *Cluster) homeNode(source int64) *Node {
	h := uint64(source) * 0x9E3779B97F4A7C15 // Fibonacci hashing
	return c.nodes[h%uint64(len(c.nodes))]
}

// CreateSchema registers a schema type on every node (metadata is
// replicated so any node can answer any query shape).
func (c *Cluster) CreateSchema(st model.SchemaType) error {
	for _, n := range c.nodes {
		if _, err := n.Cat.CreateSchema(st); err != nil {
			return err
		}
	}
	return nil
}

// CreateVirtualTable registers the virtual table on every node.
func (c *Cluster) CreateVirtualTable(table, schemaName string) error {
	for _, n := range c.nodes {
		s, ok := n.Cat.SchemaByName(schemaName)
		if !ok {
			return fmt.Errorf("cluster: unknown schema %q", schemaName)
		}
		if err := n.Cat.CreateVirtualTable(table, s.ID); err != nil {
			return err
		}
	}
	return nil
}

// RegisterSource registers the source's metadata on every node; only the
// home node will ever hold its data. Explicit IDs are required so routing
// is stable across nodes.
func (c *Cluster) RegisterSource(ds model.DataSource) error {
	if ds.ID == 0 {
		return fmt.Errorf("cluster: sources must carry explicit ids")
	}
	for _, n := range c.nodes {
		schema, ok := n.Cat.SchemaByID(ds.SchemaID)
		if !ok {
			return fmt.Errorf("cluster: unknown schema %d", ds.SchemaID)
		}
		_ = schema
		if _, err := n.Cat.RegisterSource(ds); err != nil {
			return err
		}
	}
	return nil
}

// Write routes one point to its source's home node.
func (c *Cluster) Write(p model.Point) error {
	return c.homeNode(p.Source).TS.Write(p)
}

// Flush flushes every node's ingest buffers. A failing node does not
// abort the sweep: healthy nodes still flush, and the per-node failures
// come back aggregated as NodeErrors — one dead data server degrades the
// cluster instead of wedging it.
func (c *Cluster) Flush() error {
	var errs []error
	for i, n := range c.nodes {
		if err := n.TS.Flush(); err != nil {
			errs = append(errs, &NodeError{Node: i, Err: err})
		}
	}
	return joinNodeErrors(errs)
}

// ExecAll runs a DDL or DML statement on every node (relational tables and
// their contents are replicated). Like Flush, it continues past failing
// nodes and aggregates their errors, so replicas that can apply the
// statement do.
func (c *Cluster) ExecAll(sql string) error {
	var errs []error
	for i, n := range c.nodes {
		if _, err := n.Engine.Query(sql); err != nil {
			errs = append(errs, &NodeError{Node: i, Err: err})
		}
	}
	return joinNodeErrors(errs)
}

// QueryResult gathers rows from a scattered query.
type QueryResult struct {
	Columns    []string
	Rows       []sqlexec.Row
	DataPoints int64
	BlobBytes  int64
}

// Query scatters a SELECT to every node and concatenates the results.
// Aggregates and ORDER BY are evaluated per node, so only plain
// selections and joins (the IoT-X templates) compose correctly across the
// cluster; aggregate scatter-gather would need a combining coordinator.
func (c *Cluster) Query(sql string) (*QueryResult, error) {
	out := &QueryResult{}
	for i, n := range c.nodes {
		res, err := n.Engine.Query(sql)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		rows, err := res.FetchAll()
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		if out.Columns == nil {
			out.Columns = res.Columns
		}
		out.Rows = append(out.Rows, rows...)
		out.DataPoints += res.DataPoints
		out.BlobBytes += res.BlobBytes()
	}
	return out, nil
}
