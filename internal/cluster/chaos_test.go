package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"odh/internal/model"
	"odh/internal/retry"
	"odh/internal/sqlexec"
)

// TestChaosSoak runs concurrent writers and queriers against a
// replicated cluster while a chaos goroutine kills, restarts, stalls,
// heals, and catches up nodes, then verifies the two invariants the
// replication layer promises:
//
//  1. No acked write is lost: after every node is recovered and caught
//     up, a full scan holds every point the writers saw acknowledged.
//  2. No silent partial answers: every query during the chaos either
//     succeeded, failed with an explicit *sqlexec.PartialResultError
//     naming the unavailable shards, or failed with a Retryable error.
//     Aggregate queries (GROUP BY folds with AVG/HAVING/ORDER BY/LIMIT)
//     additionally carry ZERO rows when partial — a fold missing a
//     shard must never surface as a smaller-but-plausible total — and
//     complete folds must satisfy the algebraic invariants the payload
//     formula implies.
//
// The run length comes from ODH_CHAOS_BUDGET (default 2s; CI uses a
// longer budget); the schedule itself is seeded and the chaos actions
// serialize through one goroutine, so a failure reproduces under the
// same budget on the same build.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	budget := 2 * time.Second
	if env := os.Getenv("ODH_CHAOS_BUDGET"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("bad ODH_CHAOS_BUDGET %q: %v", env, err)
		}
		budget = d
	}
	const (
		nodes    = 3
		replicas = 2
		quorum   = 1
		nSources = 12
		nWriters = 4
		nQueries = 2
	)
	c, err := NewReplicated(Options{
		Nodes:          nodes,
		Replicas:       replicas,
		WriteQuorum:    quorum,
		ReplicaTimeout: time.Second,
		Retry:          retry.Policy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		Seed:           7,
		Node:           NodeOptions{BatchSize: 16, GroupSize: 4, PoolPages: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.CreateSchema(model.SchemaType{
		Name: "meter",
		Tags: []model.TagDef{{Name: "reading"}, {Name: "station"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateVirtualTable("meter_v", "meter"); err != nil {
		t.Fatal(err)
	}
	schema, _ := c.Node(0).Cat.SchemaByName("meter")
	for i := 1; i <= nSources; i++ {
		if err := c.RegisterSource(model.DataSource{
			ID: int64(i), SchemaID: schema.ID, Regular: true, IntervalMs: 10,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// chaosValue is the deterministic payload formula; queriers check
	// every row they receive against it, so a torn or misrouted write
	// shows up as a corrupt value, not just a missing one.
	chaosValue := func(src, ts int64) (float64, float64) {
		return float64(ts % 997), float64(src)
	}

	deadline := time.Now().Add(budget)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: each owns a disjoint set of sources and writes strictly
	// increasing timestamps, recording which points were acked (quorum
	// reached). An un-acked point may or may not survive; an acked one
	// must.
	type ackSet struct {
		mu    sync.Mutex
		acked map[int64][]int64 // source -> acked timestamps
	}
	acks := &ackSet{acked: make(map[int64][]int64)}
	var attempted, ackedCount, quorumFailures int64
	var cntMu sync.Mutex
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ts := int64(1000)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := w; i < nSources; i += nWriters {
					src := int64(i + 1)
					r, s := chaosValue(src, ts)
					err := c.Write(model.Point{Source: src, TS: ts, Values: []float64{r, s}})
					cntMu.Lock()
					attempted++
					cntMu.Unlock()
					if err == nil {
						acks.mu.Lock()
						acks.acked[src] = append(acks.acked[src], ts)
						acks.mu.Unlock()
						cntMu.Lock()
						ackedCount++
						cntMu.Unlock()
						continue
					}
					if !Retryable(err) {
						t.Errorf("writer %d: non-retryable write failure: %v", w, err)
						return
					}
					cntMu.Lock()
					quorumFailures++
					cntMu.Unlock()
				}
				ts += 10
				// Throttle: the soak exercises fault paths, not peak
				// ingest; unbounded writing makes the final verification
				// scan dominate the budget.
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// Queriers: scatter queries must come back complete, explicitly
	// partial, or retryable — and every row they do return must satisfy
	// the value formula.
	var queriesRun, partials, retryables int64
	for q := 0; q < nQueries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + q)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				src := int64(rng.Intn(nSources) + 1)
				res, err := c.Query(fmt.Sprintf(`SELECT * FROM meter_v WHERE id = %d`, src))
				cntMu.Lock()
				queriesRun++
				cntMu.Unlock()
				if err != nil {
					var pe *sqlexec.PartialResultError
					switch {
					case errors.As(err, &pe):
						if len(pe.Shards) == 0 {
							t.Errorf("querier %d: partial error names no shards: %v", q, err)
							return
						}
						cntMu.Lock()
						partials++
						cntMu.Unlock()
					case Retryable(err):
						cntMu.Lock()
						retryables++
						cntMu.Unlock()
					default:
						t.Errorf("querier %d: silent failure class: %v", q, err)
						return
					}
					continue
				}
				for _, row := range res.Rows {
					// meter_v columns: id, timestamp, reading, station.
					id, ts := row[0].AsInt(), row[1].AsInt()
					wantR, wantS := chaosValue(id, ts)
					if row[2].AsFloat() != wantR || row[3].AsFloat() != wantS {
						t.Errorf("querier %d: corrupt row for source %d ts %d: %v", q, id, ts, row)
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(q)
	}

	// Aggregate querier: distributed folds under fire. Every answer must
	// be complete, explicitly partial (with ZERO rows — a fold missing a
	// shard is a wrong total, never a "partial" one), or retryable; and
	// complete answers must satisfy the algebraic invariants the payload
	// formula implies (station == source id for every point, so
	// MIN == MAX == AVG == id and SUM == COUNT×id, exactly — the values
	// are small integers, so cross-shard float folds are exact).
	var aggQueriesRun, aggPartials, aggRetryables int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(200))
		for {
			select {
			case <-stop:
				return
			default:
			}
			kind := rng.Intn(3)
			src := int64(rng.Intn(nSources) + 1)
			var q string
			switch kind {
			case 0:
				q = `SELECT id, COUNT(*), MIN(station), MAX(station), AVG(station), SUM(station) FROM meter_v GROUP BY id`
			case 1:
				q = `SELECT id, COUNT(*), AVG(station) FROM meter_v GROUP BY id HAVING COUNT(*) > 2 ORDER BY AVG(station) DESC, id LIMIT 5`
			default:
				q = fmt.Sprintf(`SELECT TIME_BUCKET(1000, timestamp), COUNT(*), SUM(station) FROM meter_v WHERE id = %d GROUP BY TIME_BUCKET(1000, timestamp) ORDER BY TIME_BUCKET(1000, timestamp) LIMIT 8`, src)
			}
			res, err := c.Query(q)
			cntMu.Lock()
			aggQueriesRun++
			cntMu.Unlock()
			if err != nil {
				var pe *sqlexec.PartialResultError
				switch {
				case errors.As(err, &pe):
					if len(pe.Shards) == 0 {
						t.Errorf("agg querier: partial error names no shards: %v", err)
						return
					}
					if res != nil && len(res.Rows) != 0 {
						t.Errorf("agg querier: partial aggregate leaked %d folded rows for %q", len(res.Rows), q)
						return
					}
					cntMu.Lock()
					aggPartials++
					cntMu.Unlock()
				case Retryable(err):
					cntMu.Lock()
					aggRetryables++
					cntMu.Unlock()
				default:
					t.Errorf("agg querier: silent failure class: %v", err)
					return
				}
				continue
			}
			switch kind {
			case 0:
				for _, row := range res.Rows {
					id, cnt := row[0].AsInt(), row[1].AsInt()
					if cnt <= 0 {
						t.Errorf("agg querier: group %d with count %d", id, cnt)
						return
					}
					fid := float64(id)
					if row[2].AsFloat() != fid || row[3].AsFloat() != fid || row[4].AsFloat() != fid {
						t.Errorf("agg querier: mis-folded MIN/MAX/AVG for source %d: %v", id, row)
						return
					}
					if row[5].AsFloat() != float64(cnt)*fid {
						t.Errorf("agg querier: SUM != COUNT*id for source %d: %v", id, row)
						return
					}
				}
			case 1:
				if len(res.Rows) > 5 {
					t.Errorf("agg querier: LIMIT 5 returned %d rows", len(res.Rows))
					return
				}
				prev := int64(1) << 62
				for _, row := range res.Rows {
					id, cnt := row[0].AsInt(), row[1].AsInt()
					if cnt <= 2 {
						t.Errorf("agg querier: HAVING COUNT(*) > 2 leaked count %d for source %d", cnt, id)
						return
					}
					if row[2].AsFloat() != float64(id) {
						t.Errorf("agg querier: mis-folded AVG for source %d: %v", id, row)
						return
					}
					// AVG(station) == id and ids are unique, so AVG DESC
					// means strictly descending ids.
					if id >= prev {
						t.Errorf("agg querier: ORDER BY AVG DESC violated: id %d after %d", id, prev)
						return
					}
					prev = id
				}
			default:
				if len(res.Rows) > 8 {
					t.Errorf("agg querier: LIMIT 8 returned %d rows", len(res.Rows))
					return
				}
				prev := int64(-1) << 62
				for _, row := range res.Rows {
					bucket, cnt := row[0].AsInt(), row[1].AsInt()
					if cnt <= 0 {
						t.Errorf("agg querier: bucket %d with count %d", bucket, cnt)
						return
					}
					if row[2].AsFloat() != float64(cnt)*float64(src) {
						t.Errorf("agg querier: bucket SUM != COUNT*id for source %d: %v", src, row)
						return
					}
					if bucket <= prev {
						t.Errorf("agg querier: ORDER BY bucket violated: %d after %d", bucket, prev)
						return
					}
					prev = bucket
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Chaos: one goroutine serializes the fault schedule. At most one
	// node is down or stalled at a time, so every shard keeps a live
	// copy; queries still degrade transiently when both copies of a
	// shard are mid-failover.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop) // release writers/queriers even on an early error
		rng := rand.New(rand.NewSource(7))
		downNode := -1
		stalled := -1
		for time.Now().Before(deadline) {
			select {
			case <-stop:
				return
			default:
			}
			switch rng.Intn(6) {
			case 0: // kill one node (restart the previous victim first)
				if downNode == -1 {
					downNode = rng.Intn(nodes)
					if err := c.KillNode(downNode); err != nil {
						t.Errorf("kill %d: %v", downNode, err)
						return
					}
				}
			case 1: // restart + catch up
				if downNode != -1 {
					if err := c.RestartNode(downNode); err != nil {
						t.Errorf("restart %d: %v", downNode, err)
						return
					}
					// Catch-up may be transiently busy; retried below and
					// in the final sweep.
					if err := c.CatchUp(downNode); err != nil && !Retryable(err) {
						t.Errorf("catch up %d: %v", downNode, err)
						return
					}
					downNode = -1
				}
			case 2: // hang a node
				if stalled == -1 {
					stalled = rng.Intn(nodes)
					if err := c.StallNode(stalled, 3*time.Millisecond); err != nil {
						t.Errorf("stall %d: %v", stalled, err)
						return
					}
				}
			case 3: // heal it
				if stalled != -1 {
					if err := c.HealNode(stalled); err != nil {
						t.Errorf("heal %d: %v", stalled, err)
						return
					}
					stalled = -1
				}
			case 4: // opportunistic catch-up of whatever lags
				for i := 0; i < nodes; i++ {
					if i != downNode {
						if err := c.CatchUp(i); err != nil && !Retryable(err) {
							t.Errorf("catch up %d: %v", i, err)
							return
						}
					}
				}
			default: // checkpoint under fire; degraded flushes are expected
				_ = c.Flush()
			}
			time.Sleep(time.Duration(2+rng.Intn(8)) * time.Millisecond)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Recovery sweep: bring everything back, drain all hints, flush.
	for i := 0; i < nodes; i++ {
		if err := c.RestartNode(i); err != nil {
			t.Fatalf("final restart %d: %v", i, err)
		}
		if err := c.HealNode(i); err != nil {
			t.Fatalf("final heal %d: %v", i, err)
		}
	}
	for i := 0; i < nodes; i++ {
		for attempt := 0; ; attempt++ {
			err := c.CatchUp(i)
			if err == nil {
				break
			}
			if !Retryable(err) || attempt > 50 {
				t.Fatalf("final catch-up %d: %v", i, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}

	// Invariant 1: every acked point is present with the right values.
	lost := 0
	for src := int64(1); src <= nSources; src++ {
		var res *QueryResult
		// The recovery sweep left everything healthy, but under the race
		// detector a big scan can transiently trip the replica timeout;
		// retry retryable outcomes rather than calling them data loss.
		for attempt := 0; ; attempt++ {
			var qerr error
			res, qerr = c.Query(fmt.Sprintf(`SELECT * FROM meter_v WHERE id = %d`, src))
			if qerr == nil {
				break
			}
			if attempt >= 20 || !Retryable(qerr) {
				t.Fatalf("final scan source %d: %v", src, qerr)
			}
			time.Sleep(50 * time.Millisecond)
		}
		have := make(map[int64][2]float64, len(res.Rows))
		for _, row := range res.Rows {
			have[row[1].AsInt()] = [2]float64{row[2].AsFloat(), row[3].AsFloat()}
		}
		acks.mu.Lock()
		ackedTS := acks.acked[src]
		acks.mu.Unlock()
		for _, ts := range ackedTS {
			vals, ok := have[ts]
			if !ok {
				lost++
				t.Errorf("acked point lost: source %d ts %d", src, ts)
				continue
			}
			wantR, wantS := chaosValue(src, ts)
			if vals[0] != wantR || vals[1] != wantS {
				t.Errorf("acked point corrupted: source %d ts %d got %v", src, ts, vals)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d acked writes lost", lost)
	}

	// Invariant 2 (post-hoc): the replicas converged and the storage
	// underneath them is intact.
	divergent, notes, err := c.VerifyReplicas()
	if err != nil {
		t.Fatalf("verify replicas: %v", err)
	}
	if len(divergent) != 0 {
		t.Fatalf("replicas diverged after recovery: %v", divergent)
	}
	if len(notes) != 0 {
		t.Fatalf("copies still stale after full catch-up: %v", notes)
	}
	checked, problems, err := c.VerifyCopies()
	if err != nil {
		t.Fatalf("verify copies: %v", err)
	}
	if len(problems) != 0 {
		t.Fatalf("storage problems after chaos: %v", problems)
	}
	if checked != nodes*replicas {
		t.Fatalf("verified %d copies, want %d", checked, nodes*replicas)
	}

	st := c.Stats()
	t.Logf("soak: %d writes attempted, %d acked, %d quorum failures; %d queries (%d partial, %d retryable); %d agg queries (%d partial, %d retryable); stats %+v",
		attempted, ackedCount, quorumFailures, queriesRun, partials, retryables, aggQueriesRun, aggPartials, aggRetryables, st)
	if ackedCount == 0 || queriesRun == 0 || aggQueriesRun == 0 {
		t.Fatal("soak did no work")
	}
	if st.Kills == 0 {
		t.Log("note: budget too short for a kill cycle; raise ODH_CHAOS_BUDGET")
	}
}
