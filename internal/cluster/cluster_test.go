package cluster

import (
	"fmt"
	"testing"

	"odh/internal/model"
)

func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(n, NodeOptions{BatchSize: 8, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func setup(t *testing.T, c *Cluster, nSources int) {
	t.Helper()
	if err := c.CreateSchema(model.SchemaType{
		Name: "vehicle",
		Tags: []model.TagDef{{Name: "speed"}, {Name: "fuel"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateVirtualTable("vehicle_v", "vehicle"); err != nil {
		t.Fatal(err)
	}
	if err := c.ExecAll(`CREATE TABLE fleet (id BIGINT, depot VARCHAR(8))`); err != nil {
		t.Fatal(err)
	}
	schema, _ := c.Node(0).Cat.SchemaByName("vehicle")
	for i := 1; i <= nSources; i++ {
		if err := c.RegisterSource(model.DataSource{
			ID: int64(i), SchemaID: schema.ID, Regular: true, IntervalMs: 100,
		}); err != nil {
			t.Fatal(err)
		}
		depot := "north"
		if i%2 == 0 {
			depot = "south"
		}
		if err := c.ExecAll(fmt.Sprintf(`INSERT INTO fleet VALUES (%d, '%s')`, i, depot)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteRoutingAndScatterQuery(t *testing.T) {
	c := newCluster(t, 3)
	setup(t, c, 12)
	for src := int64(1); src <= 12; src++ {
		for j := 0; j < 20; j++ {
			if err := c.Write(model.Point{Source: src, TS: int64(1000 + j*100), Values: []float64{float64(j), 50}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Data must be spread over more than one node.
	withData := 0
	for i := 0; i < c.Nodes(); i++ {
		if c.Node(i).TS.Stats().PointsWritten > 0 {
			withData++
		}
	}
	if withData < 2 {
		t.Fatalf("data on %d nodes, want >= 2", withData)
	}
	// Scatter-gather: historical query for one source.
	res, err := c.Query(`SELECT * FROM vehicle_v WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("historical rows = %d, want 20", len(res.Rows))
	}
	// Slice query across all sources.
	res, err = c.Query(`SELECT * FROM vehicle_v WHERE timestamp BETWEEN 1000 AND 1500`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12*6 {
		t.Fatalf("slice rows = %d, want 72", len(res.Rows))
	}
}

func TestFusedQueryAcrossCluster(t *testing.T) {
	c := newCluster(t, 2)
	setup(t, c, 8)
	for src := int64(1); src <= 8; src++ {
		for j := 0; j < 10; j++ {
			c.Write(model.Point{Source: src, TS: int64(j * 100), Values: []float64{float64(src), 1}})
		}
	}
	c.Flush()
	res, err := c.Query(`SELECT speed FROM vehicle_v v, fleet f WHERE v.id = f.id AND f.depot = 'north'`)
	if err != nil {
		t.Fatal(err)
	}
	// 4 north vehicles x 10 points.
	if len(res.Rows) != 40 {
		t.Fatalf("fused rows = %d, want 40", len(res.Rows))
	}
	for _, r := range res.Rows {
		if int(r[0].AsFloat())%2 == 0 {
			t.Fatalf("south vehicle leaked: %v", r[0])
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(0, NodeOptions{}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	c := newCluster(t, 2)
	c.CreateSchema(model.SchemaType{Name: "s", Tags: []model.TagDef{{Name: "a"}}})
	schema, _ := c.Node(0).Cat.SchemaByName("s")
	if err := c.RegisterSource(model.DataSource{SchemaID: schema.ID}); err == nil {
		t.Fatal("auto-id source accepted in cluster mode")
	}
}

func TestRoutingIsStable(t *testing.T) {
	c := newCluster(t, 4)
	for src := int64(1); src < 100; src++ {
		a := c.homeNode(src)
		b := c.homeNode(src)
		if a != b {
			t.Fatal("routing not deterministic")
		}
	}
	// Reasonably balanced.
	counts := map[*Node]int{}
	for src := int64(1); src <= 1000; src++ {
		counts[c.homeNode(src)]++
	}
	for _, n := range counts {
		if n < 150 || n > 350 {
			t.Fatalf("unbalanced routing: %v", counts)
		}
	}
}

// BenchmarkClusterScaling measures write fan-out across node counts.
func BenchmarkClusterScaling(b *testing.B) {
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes-%d", nodes), func(b *testing.B) {
			c, err := New(nodes, NodeOptions{BatchSize: 64})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.CreateSchema(model.SchemaType{Name: "s", Tags: []model.TagDef{{Name: "v"}}}); err != nil {
				b.Fatal(err)
			}
			schema, _ := c.Node(0).Cat.SchemaByName("s")
			for i := 1; i <= 64; i++ {
				if err := c.RegisterSource(model.DataSource{ID: int64(i), SchemaID: schema.ID, Regular: true, IntervalMs: 10}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := int64(i%64 + 1)
				if err := c.Write(model.Point{Source: src, TS: int64(i) * 10, Values: []float64{1}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
