// Scatter-query failover and the cross-shard aggregate gather. A query
// scatters per shard (not per node): each shard is answered by its first
// readable, caught-up copy, retrying the remaining copies with bounded
// jittered exponential backoff on retryable errors. A shard with zero
// live fresh copies degrades the query to an explicit partial result; a
// non-retryable error (parse error, unknown table) fails the query
// outright, since every replica would reject it identically.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"odh/internal/relational"
	"odh/internal/sqlexec"
	"odh/internal/sqlparse"
)

// QueryResult gathers rows from a scattered query.
type QueryResult struct {
	Columns    []string
	Rows       []sqlexec.Row
	DataPoints int64
	BlobBytes  int64
	// Unavailable lists shards that contributed nothing, ascending; set
	// exactly when Query also returned a *sqlexec.PartialResultError.
	Unavailable []int
}

// copyResult is one copy's answer to a shard sub-query.
type copyResult struct {
	cols []string
	rows []sqlexec.Row
	dp   int64
	bb   int64
}

// Query scatters a SELECT across the shards and gathers the results.
// Plain selections and joins concatenate; COUNT/SUM/MIN/MAX aggregates
// (optionally grouped by plain columns or TIME_BUCKET) are re-folded at
// the coordinator from the per-shard partials, composing with the
// storage-level aggregate pushdown. AVG does not decompose into
// per-shard partials and is rejected with a clear error.
//
// On node failure the shard fails over to another replica; a shard with
// no live fresh replica is dropped from the answer and reported in a
// *sqlexec.PartialResultError alongside the rows that ARE complete —
// degraded, never silently short. Queries over purely relational tables
// (replicated everywhere) are answered by a single shard.
func (c *Cluster) Query(sql string) (*QueryResult, error) {
	c.stats.queries.Add(1)
	plan, err := c.classifyScatter(sql)
	if err != nil {
		return nil, err
	}
	targets := make([]int, 0, len(c.shards))
	if plan != nil && plan.relationalOnly {
		// Replicated data: any one shard answers; scattering would count
		// every row once per shard.
		targets = append(targets, 0)
	} else {
		for s := range c.shards {
			targets = append(targets, s)
		}
	}
	out := &QueryResult{}
	var acc *aggAccum
	if plan != nil && plan.agg != nil {
		acc = newAggAccum(plan.agg)
		c.stats.aggGathers.Add(1)
	}
	var unavailable []int
	var shardErrs []error
	for _, s := range targets {
		res, err := c.queryShard(s, sql)
		if err != nil {
			if !Retryable(err) {
				return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
			}
			unavailable = append(unavailable, s)
			shardErrs = append(shardErrs, err)
			continue
		}
		if out.Columns == nil {
			out.Columns = res.cols
		}
		out.DataPoints += res.dp
		out.BlobBytes += res.bb
		if acc != nil {
			if err := acc.fold(res.rows); err != nil {
				return nil, err
			}
			continue
		}
		out.Rows = append(out.Rows, res.rows...)
	}
	if acc != nil {
		out.Rows = acc.result()
	}
	if len(unavailable) > 0 {
		sort.Ints(unavailable)
		out.Unavailable = unavailable
		c.stats.partialQueries.Add(1)
		return out, &sqlexec.PartialResultError{Shards: unavailable, Errs: shardErrs}
	}
	return out, nil
}

// queryShard answers one shard's sub-query from its first readable copy,
// cycling the copies with jittered backoff between rounds. It returns a
// retryable error only after exhausting every copy in every round.
func (c *Cluster) queryShard(s int, sql string) (*copyResult, error) {
	copies := c.shards[s]
	attempts := c.opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for round := 0; round < attempts; round++ {
		if round > 0 {
			c.rngMu.Lock()
			d := c.opts.Retry.Delay(round, c.rng)
			c.rngMu.Unlock()
			c.stats.backoffs.Add(1)
			if d > 0 {
				sleep(d)
			}
		}
		for k, cp := range copies {
			if rerr := c.readable(cp); rerr != nil {
				lastErr = &NodeError{Node: cp.host, Err: rerr}
				continue
			}
			res, err := c.execOnCopy(cp, sql)
			if err == nil {
				if k > 0 || round > 0 {
					c.stats.failovers.Add(1)
				}
				return res, nil
			}
			if !Retryable(err) {
				return nil, err
			}
			lastErr = &NodeError{Node: cp.host, Err: err}
		}
	}
	if lastErr == nil {
		lastErr = &NodeError{Node: copies[0].host, Err: ErrNodeDown}
	}
	return nil, lastErr
}

// sleep is swappable in tests.
var sleep = time.Sleep

// execOnCopy runs the sub-query on one copy under the stall gate and the
// per-replica timeout. Results cross the timeout boundary through a
// channel, so an abandoned slow query can never race its caller.
func (c *Cluster) execOnCopy(cp *shardCopy, sql string) (*copyResult, error) {
	ns := c.nodes[cp.host]
	n := cp.n.Load()
	if n == nil {
		return nil, ErrNodeDown
	}
	run := func() (*copyResult, error) {
		c.stallGate(ns)
		res, err := n.Engine.Query(sql)
		if err != nil {
			return nil, err
		}
		rows, err := res.FetchAll()
		if err != nil {
			return nil, err
		}
		return &copyResult{cols: res.Columns, rows: rows, dp: res.DataPoints, bb: res.BlobBytes()}, nil
	}
	if c.opts.ReplicaTimeout <= 0 {
		return run()
	}
	type outcome struct {
		r   *copyResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := run()
		done <- outcome{r, err}
	}()
	t := time.NewTimer(c.opts.ReplicaTimeout)
	defer t.Stop()
	select {
	case o := <-done:
		return o.r, o.err
	case <-t.C:
		return nil, ErrReplicaTimeout
	}
}

// --- aggregate gather ---

type aggKind int

const (
	aggKey aggKind = iota // group key column
	aggCount
	aggSum
	aggMin
	aggMax
)

// aggPlan describes how to re-fold per-shard rows at the coordinator.
type aggPlan struct {
	kinds  []aggKind
	keyIdx []int
}

// scatterPlan classifies a scatter query: nil means plain concatenation.
type scatterPlan struct {
	agg            *aggPlan
	relationalOnly bool
}

// classifyScatter decides how a SELECT composes across shards. Parse
// failures return a nil plan — the engines surface the identical error.
func (c *Cluster) classifyScatter(sql string) (*scatterPlan, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok || sel.Explain {
		return nil, nil
	}
	relOnly := true
	for _, tr := range sel.From {
		if c.isVirtualTable(tr.Name) {
			relOnly = false
			break
		}
	}
	hasAgg := false
	for _, item := range sel.Items {
		if fe, ok := item.Expr.(*sqlparse.FuncExpr); ok && fe.IsAggregate() {
			hasAgg = true
			break
		}
	}
	if !hasAgg {
		if relOnly {
			return &scatterPlan{relationalOnly: true}, nil
		}
		return nil, nil
	}
	if relOnly {
		// Aggregates over replicated tables: one shard has the full
		// answer; no re-fold needed.
		return &scatterPlan{relationalOnly: true}, nil
	}
	if sel.Having != nil || len(sel.OrderBy) > 0 || sel.Limit >= 0 {
		return nil, fmt.Errorf("cluster: HAVING/ORDER BY/LIMIT do not compose across shards; apply them client-side")
	}
	groupKeys := make(map[string]bool, len(sel.GroupBy))
	for _, g := range sel.GroupBy {
		groupKeys[g.String()] = true
	}
	plan := &aggPlan{kinds: make([]aggKind, len(sel.Items))}
	for i, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("cluster: SELECT * does not mix with aggregates across shards")
		}
		if fe, ok := item.Expr.(*sqlparse.FuncExpr); ok && fe.IsAggregate() {
			switch fe.Name {
			case "COUNT":
				plan.kinds[i] = aggCount
			case "SUM":
				plan.kinds[i] = aggSum
			case "MIN":
				plan.kinds[i] = aggMin
			case "MAX":
				plan.kinds[i] = aggMax
			default: // AVG
				return nil, fmt.Errorf("cluster: AVG does not compose across shards; gather SUM and COUNT and divide client-side")
			}
			continue
		}
		if !groupKeys[item.Expr.String()] {
			return nil, fmt.Errorf("cluster: select item %q is neither an aggregate nor a GROUP BY key", item.Expr)
		}
		plan.kinds[i] = aggKey
		plan.keyIdx = append(plan.keyIdx, i)
	}
	return &scatterPlan{agg: plan}, nil
}

// isVirtualTable checks the name against any live copy's catalog.
func (c *Cluster) isVirtualTable(name string) bool {
	found := false
	c.forEachCopy(func(cp *shardCopy) error {
		if found {
			return nil
		}
		if n := cp.n.Load(); n != nil {
			if _, ok := n.Cat.VirtualTable(name); ok {
				found = true
			}
		}
		return nil
	})
	return found
}

// aggAccum merges per-shard partial aggregate rows by group key.
type aggAccum struct {
	plan   *aggPlan
	groups map[string]*aggGroup
}

type aggGroup struct {
	keys  []relational.Value // the full row's key cells (for ordering)
	cells []relational.Value
}

func newAggAccum(plan *aggPlan) *aggAccum {
	return &aggAccum{plan: plan, groups: map[string]*aggGroup{}}
}

func (a *aggAccum) fold(rows []sqlexec.Row) error {
	for _, row := range rows {
		if len(row) != len(a.plan.kinds) {
			return fmt.Errorf("cluster: aggregate gather: shard row has %d columns, plan has %d", len(row), len(a.plan.kinds))
		}
		var kb strings.Builder
		for _, i := range a.plan.keyIdx {
			kb.WriteString(row[i].String())
			kb.WriteByte('\x00')
		}
		key := kb.String()
		g, ok := a.groups[key]
		if !ok {
			g = &aggGroup{cells: make([]relational.Value, len(row))}
			copy(g.cells, row)
			for _, i := range a.plan.keyIdx {
				g.keys = append(g.keys, row[i])
			}
			a.groups[key] = g
			continue
		}
		for i, kind := range a.plan.kinds {
			g.cells[i] = mergeCell(kind, g.cells[i], row[i])
		}
	}
	return nil
}

// mergeCell folds one shard's partial aggregate cell into the running
// one. NULL partials (an aggregate over an empty shard subset) are
// skipped; COUNT partials sum, SUM partials add kind-aware, MIN/MAX
// compare with the relational ordering.
func mergeCell(kind aggKind, acc, next relational.Value) relational.Value {
	switch kind {
	case aggKey:
		return acc
	case aggCount:
		return relational.Int(acc.AsInt() + next.AsInt())
	case aggSum:
		if next.IsNull() {
			return acc
		}
		if acc.IsNull() {
			return next
		}
		if acc.Kind == relational.KindFloat || next.Kind == relational.KindFloat {
			return relational.Float(acc.AsFloat() + next.AsFloat())
		}
		return relational.Int(acc.AsInt() + next.AsInt())
	case aggMin:
		if next.IsNull() {
			return acc
		}
		if acc.IsNull() || relational.Compare(next, acc) < 0 {
			return next
		}
		return acc
	default: // aggMax
		if next.IsNull() {
			return acc
		}
		if acc.IsNull() || relational.Compare(next, acc) > 0 {
			return next
		}
		return acc
	}
}

// result emits the merged rows ordered by group key (deterministic across
// shard arrival order).
func (a *aggAccum) result() []sqlexec.Row {
	groups := make([]*aggGroup, 0, len(a.groups))
	for _, g := range a.groups {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		gi, gj := groups[i], groups[j]
		for k := range gi.keys {
			if cmp := relational.Compare(gi.keys[k], gj.keys[k]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	out := make([]sqlexec.Row, len(groups))
	for i, g := range groups {
		out[i] = g.cells
	}
	return out
}
