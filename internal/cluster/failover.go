// Scatter-query failover and the cross-shard gather. A query scatters
// per shard (not per node): each shard is answered by its first
// readable, caught-up copy, retrying the remaining copies with bounded
// jittered exponential backoff on retryable errors. A shard with zero
// live fresh copies degrades the query to an explicit partial result; a
// non-retryable error (parse error, unknown table) fails the query
// outright, since every replica would reject it identically.
//
// Aggregation composes through a sqlexec.GatherPlan: each shard runs a
// partial-aggregate rewrite (AVG decomposed into SUM+COUNT) that still
// rides the storage-level summary pushdown, and the coordinator re-folds
// the partials, applies HAVING over the folded groups, and runs ORDER
// BY/LIMIT through a bounded top-k merge. Cancellation and deadlines
// flow from QueryContext through every shard sub-query.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"odh/internal/sqlexec"
	"odh/internal/sqlparse"
)

// QueryResult gathers rows from a scattered query.
type QueryResult struct {
	Columns    []string
	Rows       []sqlexec.Row
	DataPoints int64
	BlobBytes  int64
	// Unavailable lists shards that contributed nothing, ascending; set
	// exactly when Query also returned a *sqlexec.PartialResultError.
	Unavailable []int
}

// copyResult is one copy's answer to a shard sub-query.
type copyResult struct {
	cols []string
	rows []sqlexec.Row
	dp   int64
	bb   int64
}

// Query scatters a SELECT across the shards and gathers the results
// with no cancellation beyond Options.QueryTimeout.
func (c *Cluster) Query(sql string) (*QueryResult, error) {
	return c.QueryContext(context.Background(), sql)
}

// QueryContext scatters a SELECT across the shards and gathers the
// results. Plain selections and joins concatenate; aggregates
// (COUNT/SUM/MIN/MAX/AVG, optionally grouped by plain columns or
// TIME_BUCKET, with HAVING/ORDER BY/LIMIT) are re-folded at the
// coordinator from per-shard partials; non-aggregate ORDER BY/LIMIT
// re-sorts the concatenated rows so the global order and bound hold.
//
// On node failure the shard fails over to another replica; a shard with
// no live fresh replica degrades the query to a
// *sqlexec.PartialResultError. For row queries the surviving shards'
// rows accompany the error (complete for every shard not listed); for
// aggregate queries Rows is nil — a fold over the survivors would be a
// wrong total presented as the answer, so it is withheld. Queries over
// purely relational tables (replicated everywhere) are answered by the
// first shard that responds.
//
// Cancelling ctx aborts the scatter: in-flight shard queries stop at the
// engine's next cancellation check and QueryContext returns ctx's error.
// When ctx carries no deadline and Options.QueryTimeout is set, the
// scatter runs under that timeout.
func (c *Cluster) QueryContext(ctx context.Context, sql string) (*QueryResult, error) {
	c.stats.queries.Add(1)
	if d := c.opts.QueryTimeout; d > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}
	plan, err := c.classifyScatter(sql)
	if err != nil {
		return nil, err
	}
	if plan != nil && plan.relationalOnly {
		return c.queryRelational(ctx, sql)
	}

	out := &QueryResult{}
	var acc *sqlexec.GatherAccum
	shardSQL := sql
	if plan != nil && plan.gather != nil {
		acc = sqlexec.NewGatherAccum(plan.gather)
		if plan.gather.Aggregate() {
			c.stats.aggGathers.Add(1)
			shardSQL = plan.gather.ShardSQL
			out.Columns = plan.gather.Columns
		}
	}
	var unavailable []int
	var shardErrs []error
	for s := range c.shards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := c.queryShard(ctx, s, shardSQL)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			if !Retryable(err) {
				return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
			}
			unavailable = append(unavailable, s)
			shardErrs = append(shardErrs, err)
			continue
		}
		if out.Columns == nil {
			out.Columns = res.cols
		}
		out.DataPoints += res.dp
		out.BlobBytes += res.bb
		if acc != nil {
			if err := acc.Fold(res.cols, res.rows); err != nil {
				return nil, err
			}
			continue
		}
		out.Rows = append(out.Rows, res.rows...)
	}
	if acc != nil {
		rows, err := acc.Result()
		if err != nil {
			return nil, err
		}
		out.Rows = rows
	}
	if len(unavailable) > 0 {
		sort.Ints(unavailable)
		out.Unavailable = unavailable
		c.stats.partialQueries.Add(1)
		if plan != nil && plan.gather != nil && plan.gather.Aggregate() {
			// A fold missing a shard's partials is a plausible-looking
			// wrong answer, not a partial one. Withhold it.
			out.Rows = nil
		}
		return out, &sqlexec.PartialResultError{Shards: unavailable, Errs: shardErrs}
	}
	return out, nil
}

// queryRelational answers a query over fully replicated relational
// tables: every shard holds the complete data, so the first shard that
// responds has the whole answer, and a retryable failure falls through
// to the next shard instead of degrading to a partial result.
func (c *Cluster) queryRelational(ctx context.Context, sql string) (*QueryResult, error) {
	var lastErr error
	for s := range c.shards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := c.queryShard(ctx, s, sql)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			if !Retryable(err) {
				return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
			}
			lastErr = err
			continue
		}
		return &QueryResult{Columns: res.cols, Rows: res.rows, DataPoints: res.dp, BlobBytes: res.bb}, nil
	}
	return nil, lastErr
}

// queryShard answers one shard's sub-query from its first readable copy,
// cycling the copies with jittered backoff between rounds. It returns a
// retryable error only after exhausting every copy in every round, or
// ctx's error as soon as the deadline expires.
func (c *Cluster) queryShard(ctx context.Context, s int, sql string) (*copyResult, error) {
	copies := c.shards[s]
	attempts := c.opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for round := 0; round < attempts; round++ {
		if round > 0 {
			c.rngMu.Lock()
			d := c.opts.Retry.Delay(round, c.rng)
			c.rngMu.Unlock()
			c.stats.backoffs.Add(1)
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
		}
		for k, cp := range copies {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if rerr := c.readable(cp); rerr != nil {
				lastErr = &NodeError{Node: cp.host, Err: rerr}
				continue
			}
			res, err := c.execOnCopy(ctx, cp, sql)
			if err == nil {
				if k > 0 || round > 0 {
					c.stats.failovers.Add(1)
				}
				return res, nil
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			if !Retryable(err) {
				return nil, err
			}
			lastErr = &NodeError{Node: cp.host, Err: err}
		}
	}
	if lastErr == nil {
		lastErr = &NodeError{Node: copies[0].host, Err: ErrNodeDown}
	}
	return nil, lastErr
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// execOnCopy runs the sub-query on one copy under the stall gate, the
// per-replica timeout, and the caller's ctx. Results cross the timeout
// boundary through a channel, so an abandoned slow query can never race
// its caller — and the abandoned engine query itself runs under a
// cancelled context, so it stops at its next cancellation check instead
// of scanning to completion.
func (c *Cluster) execOnCopy(ctx context.Context, cp *shardCopy, sql string) (*copyResult, error) {
	ns := c.nodes[cp.host]
	n := cp.n.Load()
	if n == nil {
		return nil, ErrNodeDown
	}
	var runCtx context.Context
	var cancel context.CancelFunc
	if c.opts.ReplicaTimeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, c.opts.ReplicaTimeout)
	} else {
		runCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	run := func() (*copyResult, error) {
		if err := c.stallGateCtx(runCtx, ns); err != nil {
			return nil, err
		}
		res, err := n.Engine.QueryCtx(runCtx, sql)
		if err != nil {
			return nil, err
		}
		rows, err := res.FetchAll()
		if err != nil {
			return nil, err
		}
		return &copyResult{cols: res.Columns, rows: rows, dp: res.DataPoints, bb: res.BlobBytes()}, nil
	}
	if c.opts.ReplicaTimeout <= 0 {
		return run()
	}
	type outcome struct {
		r   *copyResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := run()
		done <- outcome{r, err}
	}()
	select {
	case o := <-done:
		return o.r, o.err
	case <-runCtx.Done():
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, ErrReplicaTimeout
	}
}

// scatterPlan classifies a scatter query: nil means plain concatenation.
type scatterPlan struct {
	gather         *sqlexec.GatherPlan
	relationalOnly bool
}

// classifyScatter decides how a SELECT composes across shards. Parse
// failures return a nil plan — the engines surface the identical error.
// Gather planning (and its rejections, which mirror the single-node
// engine's) is delegated to sqlexec.PlanGather.
func (c *Cluster) classifyScatter(sql string) (*scatterPlan, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok || sel.Explain {
		return nil, nil
	}
	relOnly := true
	for _, tr := range sel.From {
		if c.isVirtualTable(tr.Name) {
			relOnly = false
			break
		}
	}
	if relOnly {
		// Replicated data: any one shard computes the complete answer,
		// post-aggregate clauses included; scattering would count every
		// row once per shard.
		return &scatterPlan{relationalOnly: true}, nil
	}
	gather, err := sqlexec.PlanGather(sel)
	if err != nil {
		return nil, err
	}
	if gather == nil {
		return nil, nil
	}
	return &scatterPlan{gather: gather}, nil
}

// isVirtualTable checks the name against any live copy's catalog.
func (c *Cluster) isVirtualTable(name string) bool {
	found := false
	c.forEachCopy(func(cp *shardCopy) error {
		if found {
			return nil
		}
		if n := cp.n.Load(); n != nil {
			if _, ok := n.Cat.VirtualTable(name); ok {
				found = true
			}
		}
		return nil
	})
	return found
}
