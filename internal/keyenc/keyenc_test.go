package keyenc

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestUint64Ordering(t *testing.T) {
	if err := quick.Check(func(a, b uint64) bool {
		ka := AppendUint64(nil, a)
		kb := AppendUint64(nil, b)
		return cmpMatches(bytes.Compare(ka, kb), a < b, a == b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64Ordering(t *testing.T) {
	if err := quick.Check(func(a, b int64) bool {
		ka := AppendInt64(nil, a)
		kb := AppendInt64(nil, b)
		return cmpMatches(bytes.Compare(ka, kb), a < b, a == b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Ordering(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := AppendFloat64(nil, a)
		kb := AppendFloat64(nil, b)
		return cmpMatches(bytes.Compare(ka, kb), a < b, a == b || (a == 0 && b == 0))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatSpecials(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -math.SmallestNonzeroFloat64, 0, math.SmallestNonzeroFloat64, 1, 1e300, math.Inf(1)}
	var prev []byte
	for i, v := range vals {
		k := AppendFloat64(nil, v)
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("ordering broken at %d (%v)", i, v)
		}
		got, _, err := Float64(k)
		if err != nil || got != v {
			t.Fatalf("roundtrip %v: got %v err %v", v, got, err)
		}
		prev = k
	}
}

func TestInt64Roundtrip(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		got, rest, err := Int64(AppendInt64(nil, v))
		return err == nil && got == v && len(rest) == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundtripAndOrdering(t *testing.T) {
	if err := quick.Check(func(a, b string) bool {
		ka := AppendString(nil, a)
		kb := AppendString(nil, b)
		ra, _, err := String(ka)
		if err != nil || ra != a {
			return false
		}
		return cmpMatches(bytes.Compare(ka, kb), a < b, a == b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringEmbeddedNUL(t *testing.T) {
	cases := []string{"", "a", "a\x00b", "\x00", "\x00\x00", "ab\x00", "a\xffb"}
	sort.Strings(cases)
	var prev []byte
	for i, s := range cases {
		k := AppendString(nil, s)
		got, rest, err := String(k)
		if err != nil || got != s || len(rest) != 0 {
			t.Fatalf("roundtrip %q: got %q rest %d err %v", s, got, len(rest), err)
		}
		if i > 0 && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("ordering broken between %q and %q", cases[i-1], s)
		}
		prev = k
	}
}

func TestStringSelfDelimiting(t *testing.T) {
	k := AppendString(nil, "ab")
	k = AppendInt64(k, 42)
	s, rest, err := String(k)
	if err != nil || s != "ab" {
		t.Fatalf("String: %q %v", s, err)
	}
	v, _, err := Int64(rest)
	if err != nil || v != 42 {
		t.Fatalf("trailing Int64: %d %v", v, err)
	}
}

func TestCompositeSourceTime(t *testing.T) {
	// Composite ordering: primary by source, secondary by timestamp.
	k1 := SourceTime(1, 999999)
	k2 := SourceTime(2, -5)
	if bytes.Compare(k1, k2) >= 0 {
		t.Fatal("source must dominate timestamp in ordering")
	}
	k3 := SourceTime(2, -4)
	if bytes.Compare(k2, k3) >= 0 {
		t.Fatal("timestamp must break ties")
	}
	s, ts, err := DecodeSourceTime(k2)
	if err != nil || s != 2 || ts != -5 {
		t.Fatalf("decode: %d %d %v", s, ts, err)
	}
}

func TestCompositeTimeSource(t *testing.T) {
	k1 := TimeSource(10, 900)
	k2 := TimeSource(11, 1)
	if bytes.Compare(k1, k2) >= 0 {
		t.Fatal("timestamp must dominate source in ordering")
	}
	ts, s, err := DecodeTimeSource(k1)
	if err != nil || ts != 10 || s != 900 {
		t.Fatalf("decode: %d %d %v", ts, s, err)
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{0x00, 0x00}, []byte{0x00, 0x01}},
	}
	for _, c := range cases {
		got := PrefixSuccessor(c.in)
		if !bytes.Equal(got, c.want) {
			t.Fatalf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
	// Every key with prefix p is < PrefixSuccessor(p).
	p := PrefixInt64(7)
	succ := PrefixSuccessor(p)
	ext := append(append([]byte(nil), p...), 0xFF, 0xFF, 0xFF)
	if bytes.Compare(ext, succ) >= 0 {
		t.Fatal("extension of prefix not below successor")
	}
}

func TestShortKeyErrors(t *testing.T) {
	if _, _, err := Int64([]byte{1, 2}); err == nil {
		t.Fatal("short Int64 accepted")
	}
	if _, _, err := Uint64(nil); err == nil {
		t.Fatal("short Uint64 accepted")
	}
	if _, _, err := Float64([]byte{1}); err == nil {
		t.Fatal("short Float64 accepted")
	}
	if _, _, err := String([]byte{'a'}); err == nil {
		t.Fatal("unterminated String accepted")
	}
	if _, _, err := String([]byte{0x00, 0x42}); err == nil {
		t.Fatal("corrupt escape accepted")
	}
}

func cmpMatches(cmp int, less, eq bool) bool {
	switch {
	case less:
		return cmp < 0
	case eq:
		return cmp == 0
	default:
		return cmp > 0
	}
}
