// Package keyenc provides order-preserving binary encodings for composite
// B-tree keys. All encodings compare with bytes.Compare in the same order as
// the source values, so the B-tree layer can stay type-agnostic. The batch
// stores key their records by (source id, timestamp) and (group id,
// timestamp) tuples built with this package; relational indexes use the
// typed single-column encoders.
package keyenc

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShortKey is returned when decoding runs past the end of a key.
var ErrShortKey = errors.New("keyenc: key too short")

// AppendUint64 appends an order-preserving encoding of v.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// Uint64 decodes a value written by AppendUint64 and returns the rest.
func Uint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrShortKey
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// AppendInt64 appends an order-preserving encoding of v: the sign bit is
// flipped so negative values sort before positive ones.
func AppendInt64(dst []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(v)^(1<<63))
}

// Int64 decodes a value written by AppendInt64 and returns the rest.
func Int64(b []byte) (int64, []byte, error) {
	u, rest, err := Uint64(b)
	if err != nil {
		return 0, nil, err
	}
	return int64(u ^ (1 << 63)), rest, nil
}

// AppendFloat64 appends an order-preserving encoding of v. Positive floats
// have the sign bit set; negative floats have all bits flipped, which
// reverses their (descending) natural bit order. NaN sorts after +Inf.
func AppendFloat64(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return binary.BigEndian.AppendUint64(dst, bits)
}

// Float64 decodes a value written by AppendFloat64 and returns the rest.
func Float64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrShortKey
	}
	bits := binary.BigEndian.Uint64(b)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), b[8:], nil
}

// AppendString appends an order-preserving, self-delimiting encoding of s.
// Bytes 0x00 are escaped as 0x00 0xFF and the string is terminated with
// 0x00 0x00, so "a" < "aa" and embedded NULs stay ordered.
func AppendString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x00)
}

// String decodes a value written by AppendString and returns the rest.
func String(b []byte) (string, []byte, error) {
	var out []byte
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c != 0x00 {
			out = append(out, c)
			continue
		}
		if i+1 >= len(b) {
			return "", nil, ErrShortKey
		}
		switch b[i+1] {
		case 0x00:
			return string(out), b[i+2:], nil
		case 0xFF:
			out = append(out, 0x00)
			i++
		default:
			return "", nil, errors.New("keyenc: corrupt string escape")
		}
	}
	return "", nil, ErrShortKey
}

// SourceTime builds the composite (source id, timestamp) key used by the
// RTS and IRTS batch stores and by relational (id, ts) indexes.
func SourceTime(source int64, ts int64) []byte {
	k := make([]byte, 0, 16)
	k = AppendInt64(k, source)
	k = AppendInt64(k, ts)
	return k
}

// DecodeSourceTime splits a key built by SourceTime.
func DecodeSourceTime(k []byte) (source, ts int64, err error) {
	source, rest, err := Int64(k)
	if err != nil {
		return 0, 0, err
	}
	ts, _, err = Int64(rest)
	return source, ts, err
}

// TimeSource builds the composite (timestamp, source id) key used by
// time-major indexes (the MG store and relational timestamp indexes).
func TimeSource(ts int64, source int64) []byte {
	k := make([]byte, 0, 16)
	k = AppendInt64(k, ts)
	k = AppendInt64(k, source)
	return k
}

// DecodeTimeSource splits a key built by TimeSource.
func DecodeTimeSource(k []byte) (ts, source int64, err error) {
	ts, rest, err := Int64(k)
	if err != nil {
		return 0, 0, err
	}
	source, _, err = Int64(rest)
	return ts, source, err
}

// PrefixInt64 returns the 8-byte prefix that all keys starting with v share,
// for building range-scan bounds.
func PrefixInt64(v int64) []byte {
	return AppendInt64(nil, v)
}

// PrefixSuccessor returns the smallest key strictly greater than every key
// having prefix p, or nil if p is all 0xFF (no successor).
func PrefixSuccessor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}
