package sqlexec

import (
	"context"
	"fmt"
	"math"
	"sort"

	"odh/internal/model"
	"odh/internal/relational"
	"odh/internal/tsstore"
)

// Operator is a pull-based plan node.
type Operator interface {
	// Columns describes the output layout.
	Columns() []ColMeta
	// Next produces the next row; ok is false when exhausted.
	Next() (row Row, ok bool, err error)
	// BlobBytes reports the ValueBlob bytes this subtree read.
	BlobBytes() int64
	// Describe renders the node (and children, indented) for EXPLAIN.
	Describe(indent string) string
}

// --- relational sequential scan ---

type relSeqScan struct {
	table   *relational.Table
	binding string
	cols    []ColMeta
	cur     *relational.RowCursor
}

func newRelSeqScan(t *relational.Table, binding string) *relSeqScan {
	cols := make([]ColMeta, len(t.Columns()))
	for i, c := range t.Columns() {
		cols[i] = ColMeta{Table: binding, Name: c.Name, Kind: c.Type}
	}
	return &relSeqScan{table: t, binding: binding, cols: cols}
}

func (s *relSeqScan) Columns() []ColMeta { return s.cols }
func (s *relSeqScan) BlobBytes() int64   { return 0 }

func (s *relSeqScan) Next() (Row, bool, error) {
	if s.cur == nil {
		s.cur = s.table.Cursor()
	}
	_, vals, ok := s.cur.Next()
	if !ok {
		return nil, false, s.cur.Err()
	}
	return vals, true, nil
}

func (s *relSeqScan) Describe(indent string) string {
	return fmt.Sprintf("%sSeqScan(%s) rows=%d\n", indent, s.table.Name(), s.table.RowCount())
}

// --- relational index scan ---

type relIndexScan struct {
	table   *relational.Table
	index   *relational.Index
	binding string
	cols    []ColMeta
	lo, hi  relational.Value // inclusive range on the first indexed column
	prefix  []relational.Value
	cur     *relational.IndexCursor
}

func newRelIndexRange(t *relational.Table, idx *relational.Index, binding string, lo, hi relational.Value) *relIndexScan {
	cols := make([]ColMeta, len(t.Columns()))
	for i, c := range t.Columns() {
		cols[i] = ColMeta{Table: binding, Name: c.Name, Kind: c.Type}
	}
	return &relIndexScan{table: t, index: idx, binding: binding, cols: cols, lo: lo, hi: hi}
}

func newRelIndexPrefix(t *relational.Table, idx *relational.Index, binding string, prefix []relational.Value) *relIndexScan {
	s := newRelIndexRange(t, idx, binding, relational.Null, relational.Null)
	s.prefix = prefix
	return s
}

func (s *relIndexScan) Columns() []ColMeta { return s.cols }
func (s *relIndexScan) BlobBytes() int64   { return 0 }

func (s *relIndexScan) Next() (Row, bool, error) {
	if s.cur == nil {
		if s.prefix != nil {
			s.cur = s.index.CursorPrefix(s.prefix)
		} else {
			s.cur = s.index.Cursor(s.lo, s.hi)
		}
	}
	_, vals, ok := s.cur.Next()
	if !ok {
		return nil, false, s.cur.Err()
	}
	return vals, true, nil
}

func (s *relIndexScan) Describe(indent string) string {
	if s.prefix != nil {
		return fmt.Sprintf("%sIndexScan(%s.%s, prefix)\n", indent, s.table.Name(), s.index.Name())
	}
	return fmt.Sprintf("%sIndexScan(%s.%s, range [%s, %s])\n", indent, s.table.Name(), s.index.Name(), s.lo, s.hi)
}

// --- virtual table scan (the VTI role) ---

// virtualScan assembles relational rows (id, timestamp, tags...) from the
// batch stores. mode selects the access path the planner chose.
type virtualScan struct {
	store    *tsstore.Store
	schema   *model.SchemaType
	binding  string
	cols     []ColMeta
	wantTags []int // tag ordinals to decode; nil = all

	// historical mode: one source; multi mode: a pushed IN-list of
	// sources; slice mode: all sources of the schema.
	historical bool
	source     int64
	sources    []int64
	t1, t2     int64
	tagRanges  []tsstore.TagRange
	// workers is the parallel degree the planner chose from the blob-bytes
	// cost estimate; <= 1 scans serially.
	workers int
	// ctx cancels the scan (threaded into ScanOptions.Ctx).
	ctx context.Context

	iter       tsstore.Iterator
	routerDone bool
	routerCost int64 // number of router metadata lookups performed
}

func newVirtualScan(store *tsstore.Store, schema *model.SchemaType, binding string, wantTags []int) *virtualScan {
	cols := make([]ColMeta, 0, len(schema.Tags)+2)
	cols = append(cols,
		ColMeta{Table: binding, Name: schema.IDColumn(), Kind: relational.KindInt},
		ColMeta{Table: binding, Name: schema.TSColumn(), Kind: relational.KindTime},
	)
	for _, tag := range schema.Tags {
		cols = append(cols, ColMeta{Table: binding, Name: tag.Name, Kind: relational.KindFloat})
	}
	return &virtualScan{
		store:    store,
		schema:   schema,
		binding:  binding,
		cols:     cols,
		wantTags: wantTags,
		t1:       math.MinInt64,
		t2:       math.MaxInt64,
	}
}

func (s *virtualScan) Columns() []ColMeta { return s.cols }

func (s *virtualScan) BlobBytes() int64 {
	if s.iter == nil {
		return 0
	}
	return s.iter.BlobBytes()
}

// open runs the data-router metadata lookup (the paper's per-query
// overhead) and builds the underlying iterator.
func (s *virtualScan) open() error {
	if !s.routerDone {
		// The router resolves the placement of every source the scan will
		// touch by reading catalog metadata, exactly the overhead the
		// paper profiles on LQ1.
		if s.historical {
			s.store.Catalog().RouterLookup([]int64{s.source})
			s.routerCost = 1
		} else if len(s.sources) > 0 {
			s.store.Catalog().RouterLookup(s.sources)
			s.routerCost = int64(len(s.sources))
		} else {
			sources := s.store.Catalog().SourcesBySchema(s.schema.ID)
			s.store.Catalog().RouterLookup(sources)
			s.routerCost = int64(len(sources))
		}
		s.routerDone = true
	}
	var err error
	opts := tsstore.ScanOptions{Workers: s.workers, Ctx: s.ctx}
	if s.historical {
		s.iter, err = s.store.HistoricalScanOpts(s.source, s.t1, s.t2, s.wantTags, opts, s.tagRanges...)
	} else if len(s.sources) > 0 {
		s.iter, err = s.store.MultiHistoricalScanOpts(s.sources, s.t1, s.t2, s.wantTags, opts, s.tagRanges...)
	} else {
		s.iter, err = s.store.SliceScanOpts(s.schema.ID, s.t1, s.t2, s.wantTags, opts, s.tagRanges...)
	}
	return err
}

// BlobsSkipped reports zone-map skips for EXPLAIN ANALYZE-style tests.
func (s *virtualScan) BlobsSkipped() int64 {
	if s.iter == nil {
		return 0
	}
	return s.iter.BlobsSkipped()
}

func (s *virtualScan) Next() (Row, bool, error) {
	if s.iter == nil {
		if err := s.open(); err != nil {
			return nil, false, err
		}
	}
	p, ok := s.iter.Next()
	if !ok {
		return nil, false, s.iter.Err()
	}
	// Row assembly: decoded columns become relational values — the VTI
	// overhead the paper measures at >80% of extraction time.
	row := make(Row, len(s.cols))
	row[0] = relational.Int(p.Source)
	row[1] = relational.Time(p.TS)
	for i, v := range p.Values {
		if model.IsNull(v) {
			row[2+i] = relational.Null
		} else {
			row[2+i] = relational.Float(v)
		}
	}
	return row, true, nil
}

func (s *virtualScan) Describe(indent string) string {
	par := ""
	if s.workers > 1 {
		par = fmt.Sprintf(", parallel=%d", s.workers)
	}
	if s.historical {
		return fmt.Sprintf("%sVirtualHistoricalScan(%s, id=%d, ts=[%d,%d)%s)\n", indent, s.schema.Name, s.source, s.t1, s.t2, par)
	}
	if len(s.sources) > 0 {
		return fmt.Sprintf("%sVirtualMultiScan(%s, %d ids, ts=[%d,%d)%s)\n", indent, s.schema.Name, len(s.sources), s.t1, s.t2, par)
	}
	return fmt.Sprintf("%sVirtualSliceScan(%s, ts=[%d,%d)%s)\n", indent, s.schema.Name, s.t1, s.t2, par)
}

// --- filter ---

type filterOp struct {
	child Operator
	pred  boundExpr
	desc  string
}

func (f *filterOp) Columns() []ColMeta { return f.child.Columns() }
func (f *filterOp) BlobBytes() int64   { return f.child.BlobBytes() }

func (f *filterOp) Next() (Row, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		v, err := f.pred.eval(row)
		if err != nil {
			return nil, false, err
		}
		if truthy(v) {
			return row, true, nil
		}
	}
}

func (f *filterOp) Describe(indent string) string {
	return fmt.Sprintf("%sFilter(%s)\n%s", indent, f.desc, f.child.Describe(indent+"  "))
}

// --- projection ---

type projectOp struct {
	child Operator
	exprs []boundExpr
	cols  []ColMeta
}

func (p *projectOp) Columns() []ColMeta { return p.cols }
func (p *projectOp) BlobBytes() int64   { return p.child.BlobBytes() }

func (p *projectOp) Next() (Row, bool, error) {
	row, ok, err := p.child.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	out := make(Row, len(p.exprs))
	for i, e := range p.exprs {
		out[i], err = e.eval(row)
		if err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

func (p *projectOp) Describe(indent string) string {
	names := make([]string, len(p.cols))
	for i, c := range p.cols {
		names[i] = c.Name
	}
	return fmt.Sprintf("%sProject(%v)\n%s", indent, names, p.child.Describe(indent+"  "))
}

// --- limit ---

type limitOp struct {
	child Operator
	n     int
	seen  int
}

func (l *limitOp) Columns() []ColMeta { return l.child.Columns() }
func (l *limitOp) BlobBytes() int64   { return l.child.BlobBytes() }

func (l *limitOp) Next() (Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

func (l *limitOp) Describe(indent string) string {
	return fmt.Sprintf("%sLimit(%d)\n%s", indent, l.n, l.child.Describe(indent+"  "))
}

// --- hash join ---

// hashJoin builds a table on the right child's key and probes with the
// left child (inner equijoin). The paper's "operational-first" plan is a
// virtual slice scan on the left hash-joined against the relational table.
type hashJoin struct {
	left, right       Operator
	leftKey, rightKey int
	cols              []ColMeta
	built             bool
	table             map[joinKey][]Row
	pendingLeft       Row
	pendingMatches    []Row
	pi                int
}

type joinKey struct {
	f float64
	s string
	k uint8
}

func keyOf(v relational.Value) (joinKey, bool) {
	switch v.Kind {
	case relational.KindNull:
		return joinKey{}, false
	case relational.KindString:
		return joinKey{s: v.S, k: 2}, true
	default:
		return joinKey{f: v.AsFloat(), k: 1}, true
	}
}

func newHashJoin(left, right Operator, leftKey, rightKey int) *hashJoin {
	cols := append(append([]ColMeta{}, left.Columns()...), right.Columns()...)
	return &hashJoin{left: left, right: right, leftKey: leftKey, rightKey: rightKey, cols: cols}
}

func (j *hashJoin) Columns() []ColMeta { return j.cols }
func (j *hashJoin) BlobBytes() int64   { return j.left.BlobBytes() + j.right.BlobBytes() }

func (j *hashJoin) build() error {
	j.table = make(map[joinKey][]Row)
	for {
		row, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if k, ok := keyOf(row[j.rightKey]); ok {
			j.table[k] = append(j.table[k], row)
		}
	}
	j.built = true
	return nil
}

func (j *hashJoin) Next() (Row, bool, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, false, err
		}
	}
	for {
		if j.pi < len(j.pendingMatches) {
			right := j.pendingMatches[j.pi]
			j.pi++
			out := make(Row, 0, len(j.cols))
			out = append(out, j.pendingLeft...)
			out = append(out, right...)
			return out, true, nil
		}
		row, ok, err := j.left.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		k, valid := keyOf(row[j.leftKey])
		if !valid {
			continue
		}
		j.pendingLeft = row
		j.pendingMatches = j.table[k]
		j.pi = 0
	}
}

func (j *hashJoin) Describe(indent string) string {
	return fmt.Sprintf("%sHashJoin(left[%d] = right[%d])\n%s%s",
		indent, j.leftKey, j.rightKey,
		j.left.Describe(indent+"  "), j.right.Describe(indent+"  "))
}

// --- index nested-loop join with a virtual inner ---

// nlVirtualJoin drives historical scans of the virtual table from outer
// rows — the paper's "relational-first" plan: extract matching sensors,
// then extract the operational records for each sensor id.
type nlVirtualJoin struct {
	outer         Operator
	store         *tsstore.Store
	schema        *model.SchemaType
	binding       string
	wantTags      []int
	tagRanges     []tsstore.TagRange
	outerKey      int   // ordinal of the join key (sensor id) in outer rows
	t1, t2        int64 // pushed time bounds for the inner scans
	ctx           context.Context
	cols          []ColMeta
	inner         tsstore.Iterator
	innerCols     int
	cur           Row
	blobBytes     int64
	routerLookups int64
}

func newNLVirtualJoin(outer Operator, store *tsstore.Store, schema *model.SchemaType, binding string, wantTags []int, outerKey int, t1, t2 int64) *nlVirtualJoin {
	vcols := make([]ColMeta, 0, len(schema.Tags)+2)
	vcols = append(vcols,
		ColMeta{Table: binding, Name: schema.IDColumn(), Kind: relational.KindInt},
		ColMeta{Table: binding, Name: schema.TSColumn(), Kind: relational.KindTime},
	)
	for _, tag := range schema.Tags {
		vcols = append(vcols, ColMeta{Table: binding, Name: tag.Name, Kind: relational.KindFloat})
	}
	cols := append(append([]ColMeta{}, outer.Columns()...), vcols...)
	return &nlVirtualJoin{
		outer: outer, store: store, schema: schema, binding: binding,
		wantTags: wantTags, outerKey: outerKey, t1: t1, t2: t2,
		cols: cols, innerCols: len(vcols),
	}
}

func (j *nlVirtualJoin) Columns() []ColMeta { return j.cols }
func (j *nlVirtualJoin) BlobBytes() int64   { return j.blobBytes }

func (j *nlVirtualJoin) Next() (Row, bool, error) {
	for {
		if j.inner != nil {
			p, ok := j.inner.Next()
			if ok {
				out := make(Row, 0, len(j.cols))
				out = append(out, j.cur...)
				out = append(out, relational.Int(p.Source), relational.Time(p.TS))
				for _, v := range p.Values {
					if model.IsNull(v) {
						out = append(out, relational.Null)
					} else {
						out = append(out, relational.Float(v))
					}
				}
				return out, true, nil
			}
			if err := j.inner.Err(); err != nil {
				return nil, false, err
			}
			j.blobBytes += j.inner.BlobBytes()
			j.inner = nil
		}
		row, ok, err := j.outer.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		key := row[j.outerKey]
		if key.IsNull() {
			continue
		}
		source := key.AsInt()
		// Router lookup per driven source (metadata before data access).
		j.store.Catalog().RouterLookup([]int64{source})
		j.routerLookups++
		iter, err := j.store.HistoricalScanOpts(source, j.t1, j.t2, j.wantTags, tsstore.ScanOptions{Ctx: j.ctx}, j.tagRanges...)
		if err != nil {
			// Sensors present in the relational table but never registered
			// as data sources contribute no rows (inner join semantics).
			continue
		}
		j.cur = row
		j.inner = iter
	}
}

func (j *nlVirtualJoin) Describe(indent string) string {
	return fmt.Sprintf("%sNLJoin->VirtualHistorical(%s, ts=[%d,%d))\n%s",
		indent, j.schema.Name, j.t1, j.t2, j.outer.Describe(indent+"  "))
}

// --- index nested-loop join with a relational inner ---

// nlRelJoin drives relational index lookups from outer rows (e.g. TQ1's
// trades-by-account via the T_CA_ID index).
type nlRelJoin struct {
	outer    Operator
	table    *relational.Table
	index    *relational.Index
	binding  string
	outerKey int
	cols     []ColMeta
	cur      Row
	inner    *relational.IndexCursor
}

func newNLRelJoin(outer Operator, t *relational.Table, idx *relational.Index, binding string, outerKey int) *nlRelJoin {
	icols := make([]ColMeta, len(t.Columns()))
	for i, c := range t.Columns() {
		icols[i] = ColMeta{Table: binding, Name: c.Name, Kind: c.Type}
	}
	cols := append(append([]ColMeta{}, outer.Columns()...), icols...)
	return &nlRelJoin{outer: outer, table: t, index: idx, binding: binding, outerKey: outerKey, cols: cols}
}

func (j *nlRelJoin) Columns() []ColMeta { return j.cols }
func (j *nlRelJoin) BlobBytes() int64   { return j.outer.BlobBytes() }

func (j *nlRelJoin) Next() (Row, bool, error) {
	for {
		if j.inner != nil {
			_, vals, ok := j.inner.Next()
			if ok {
				out := make(Row, 0, len(j.cols))
				out = append(out, j.cur...)
				out = append(out, vals...)
				return out, true, nil
			}
			if err := j.inner.Err(); err != nil {
				return nil, false, err
			}
			j.inner = nil
		}
		row, ok, err := j.outer.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		key := row[j.outerKey]
		if key.IsNull() {
			continue
		}
		j.cur = row
		j.inner = j.index.CursorPrefix([]relational.Value{key})
	}
}

func (j *nlRelJoin) Describe(indent string) string {
	return fmt.Sprintf("%sNLJoin->Index(%s.%s)\n%s",
		indent, j.table.Name(), j.index.Name(), j.outer.Describe(indent+"  "))
}

// --- sort ---

type sortOp struct {
	child Operator
	keys  []boundExpr
	desc  []bool
	rows  []Row
	done  bool
	i     int
}

func (s *sortOp) Columns() []ColMeta { return s.child.Columns() }
func (s *sortOp) BlobBytes() int64   { return s.child.BlobBytes() }

func (s *sortOp) Next() (Row, bool, error) {
	if !s.done {
		for {
			row, ok, err := s.child.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			s.rows = append(s.rows, row)
		}
		var evalErr error
		sort.SliceStable(s.rows, func(a, b int) bool {
			for k, key := range s.keys {
				va, err := key.eval(s.rows[a])
				if err != nil {
					evalErr = err
					return false
				}
				vb, err := key.eval(s.rows[b])
				if err != nil {
					evalErr = err
					return false
				}
				cmp := compareCoerced(va, vb)
				if cmp == 0 {
					continue
				}
				if s.desc[k] {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		if evalErr != nil {
			return nil, false, evalErr
		}
		s.done = true
	}
	if s.i >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.i]
	s.i++
	return row, true, nil
}

func (s *sortOp) Describe(indent string) string {
	return fmt.Sprintf("%sSort(%d keys)\n%s", indent, len(s.keys), s.child.Describe(indent+"  "))
}
