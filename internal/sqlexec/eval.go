// Package sqlexec implements the ODH query component: name resolution
// over relational and virtual tables, a cost-based planner whose cost unit
// is expected ValueBlob bytes (paper §3), and a pull-based executor with
// scan, filter, join, aggregate, sort, and limit operators. Virtual tables
// are served by the tsstore batch structures through scan operators that
// assemble relational rows from decoded blobs — the role Informix VTI
// plays in the paper.
package sqlexec

import (
	"fmt"
	"math"
	"strings"
	"time"

	"odh/internal/model"
	"odh/internal/relational"
	"odh/internal/sqlparse"
)

// ColMeta describes one output column of an operator.
type ColMeta struct {
	// Table is the binding (alias or table name) the column came from;
	// empty for computed columns.
	Table string
	// Name is the column name.
	Name string
	// Kind is the column's type.
	Kind relational.Kind
}

// Row is one tuple.
type Row = []relational.Value

// boundExpr is an expression compiled against an operator's column layout:
// column references become ordinals.
type boundExpr interface {
	eval(row Row) (relational.Value, error)
}

type boundCol struct{ ord int }

func (b boundCol) eval(row Row) (relational.Value, error) { return row[b.ord], nil }

type boundLit struct{ v relational.Value }

func (b boundLit) eval(Row) (relational.Value, error) { return b.v, nil }

type boundBinary struct {
	op   string
	l, r boundExpr
}

func (b boundBinary) eval(row Row) (relational.Value, error) {
	lv, err := b.l.eval(row)
	if err != nil {
		return relational.Null, err
	}
	switch b.op {
	case "AND":
		if !truthy(lv) {
			return relational.Int(0), nil
		}
		rv, err := b.r.eval(row)
		if err != nil {
			return relational.Null, err
		}
		return boolVal(truthy(rv)), nil
	case "OR":
		if truthy(lv) {
			return relational.Int(1), nil
		}
		rv, err := b.r.eval(row)
		if err != nil {
			return relational.Null, err
		}
		return boolVal(truthy(rv)), nil
	}
	rv, err := b.r.eval(row)
	if err != nil {
		return relational.Null, err
	}
	switch b.op {
	case "=", "!=", "<", "<=", ">", ">=":
		if lv.IsNull() || rv.IsNull() {
			return relational.Null, nil // SQL three-valued logic
		}
		cmp := compareCoerced(lv, rv)
		var ok bool
		switch b.op {
		case "=":
			ok = cmp == 0
		case "!=":
			ok = cmp != 0
		case "<":
			ok = cmp < 0
		case "<=":
			ok = cmp <= 0
		case ">":
			ok = cmp > 0
		case ">=":
			ok = cmp >= 0
		}
		return boolVal(ok), nil
	case "+", "-", "*", "/":
		if lv.IsNull() || rv.IsNull() {
			return relational.Null, nil
		}
		lf, rf := lv.AsFloat(), rv.AsFloat()
		if math.IsNaN(lf) || math.IsNaN(rf) {
			return relational.Null, fmt.Errorf("sqlexec: arithmetic on non-numeric value")
		}
		var out float64
		switch b.op {
		case "+":
			out = lf + rf
		case "-":
			out = lf - rf
		case "*":
			out = lf * rf
		case "/":
			if rf == 0 {
				return relational.Null, nil
			}
			out = lf / rf
		}
		// Keep integer arithmetic integral.
		if b.op != "/" && lv.Kind != relational.KindFloat && rv.Kind != relational.KindFloat {
			return relational.Int(int64(out)), nil
		}
		return relational.Float(out), nil
	}
	return relational.Null, fmt.Errorf("sqlexec: unknown operator %q", b.op)
}

type boundBetween struct {
	target, lo, hi boundExpr
}

func (b boundBetween) eval(row Row) (relational.Value, error) {
	tv, err := b.target.eval(row)
	if err != nil {
		return relational.Null, err
	}
	lv, err := b.lo.eval(row)
	if err != nil {
		return relational.Null, err
	}
	hv, err := b.hi.eval(row)
	if err != nil {
		return relational.Null, err
	}
	if tv.IsNull() || lv.IsNull() || hv.IsNull() {
		return relational.Null, nil
	}
	return boolVal(compareCoerced(tv, lv) >= 0 && compareCoerced(tv, hv) <= 0), nil
}

type boundNot struct{ inner boundExpr }

func (b boundNot) eval(row Row) (relational.Value, error) {
	v, err := b.inner.eval(row)
	if err != nil || v.IsNull() {
		return relational.Null, err
	}
	return boolVal(!truthy(v)), nil
}

type boundIsNull struct {
	target boundExpr
	negate bool
}

func (b boundIsNull) eval(row Row) (relational.Value, error) {
	v, err := b.target.eval(row)
	if err != nil {
		return relational.Null, err
	}
	return boolVal(v.IsNull() != b.negate), nil
}

type boundIn struct {
	target boundExpr
	list   []boundExpr
}

func (b boundIn) eval(row Row) (relational.Value, error) {
	tv, err := b.target.eval(row)
	if err != nil || tv.IsNull() {
		return relational.Null, err
	}
	for _, item := range b.list {
		iv, err := item.eval(row)
		if err != nil {
			return relational.Null, err
		}
		if !iv.IsNull() && compareCoerced(tv, iv) == 0 {
			return relational.Int(1), nil
		}
	}
	return relational.Int(0), nil
}

func boolVal(b bool) relational.Value {
	if b {
		return relational.Int(1)
	}
	return relational.Int(0)
}

func truthy(v relational.Value) bool {
	return !v.IsNull() && v.AsFloat() != 0
}

// timestampLayouts are accepted for string → timestamp coercion, matching
// the paper's example literal '2013-11-18 00:00:00'.
var timestampLayouts = []string{
	"2006-01-02 15:04:05.000",
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
	time.RFC3339,
}

// ParseTimestamp converts a SQL timestamp literal to Unix milliseconds.
func ParseTimestamp(s string) (int64, bool) {
	for _, layout := range timestampLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UnixMilli(), true
		}
	}
	return 0, false
}

// FormatTimestamp renders Unix milliseconds in the canonical literal form.
func FormatTimestamp(ms int64) string {
	return time.UnixMilli(ms).UTC().Format("2006-01-02 15:04:05")
}

// compareCoerced compares values, coercing string literals against
// timestamps ('2013-11-18 00:00:00' BETWEEN on a TIMESTAMP column).
func compareCoerced(a, b relational.Value) int {
	if a.Kind == relational.KindTime && b.Kind == relational.KindString {
		if ms, ok := ParseTimestamp(b.S); ok {
			b = relational.Time(ms)
		}
	}
	if b.Kind == relational.KindTime && a.Kind == relational.KindString {
		if ms, ok := ParseTimestamp(a.S); ok {
			a = relational.Time(ms)
		}
	}
	return relational.Compare(a, b)
}

// bind compiles e against the column layout, resolving column references
// case-insensitively (SQL identifiers are case-insensitive in this
// dialect).
func bind(e sqlparse.Expr, cols []ColMeta) (boundExpr, error) {
	switch x := e.(type) {
	case *sqlparse.ColumnRef:
		ord, err := resolveColumn(x, cols)
		if err != nil {
			return nil, err
		}
		return boundCol{ord}, nil
	case *sqlparse.Literal:
		return boundLit{x.Val}, nil
	case *sqlparse.BinaryExpr:
		l, err := bind(x.L, cols)
		if err != nil {
			return nil, err
		}
		r, err := bind(x.R, cols)
		if err != nil {
			return nil, err
		}
		return boundBinary{x.Op, l, r}, nil
	case *sqlparse.BetweenExpr:
		t, err := bind(x.Target, cols)
		if err != nil {
			return nil, err
		}
		lo, err := bind(x.Lo, cols)
		if err != nil {
			return nil, err
		}
		hi, err := bind(x.Hi, cols)
		if err != nil {
			return nil, err
		}
		return boundBetween{t, lo, hi}, nil
	case *sqlparse.NotExpr:
		inner, err := bind(x.Inner, cols)
		if err != nil {
			return nil, err
		}
		return boundNot{inner}, nil
	case *sqlparse.IsNullExpr:
		t, err := bind(x.Target, cols)
		if err != nil {
			return nil, err
		}
		return boundIsNull{t, x.Negate}, nil
	case *sqlparse.InExpr:
		t, err := bind(x.Target, cols)
		if err != nil {
			return nil, err
		}
		list := make([]boundExpr, len(x.List))
		for i, item := range x.List {
			b, err := bind(item, cols)
			if err != nil {
				return nil, err
			}
			list[i] = b
		}
		return boundIn{t, list}, nil
	case *sqlparse.FuncExpr:
		if x.IsAggregate() {
			return nil, fmt.Errorf("sqlexec: aggregate %s used outside an aggregation context", x.Name)
		}
		return bindScalarFunc(x, cols)
	}
	return nil, fmt.Errorf("sqlexec: cannot bind %T", e)
}

// boundScalar evaluates a scalar function over bound arguments.
type boundScalar struct {
	name string
	args []boundExpr
}

func (b boundScalar) eval(row Row) (relational.Value, error) {
	vals := make([]relational.Value, len(b.args))
	for i, a := range b.args {
		v, err := a.eval(row)
		if err != nil {
			return relational.Null, err
		}
		vals[i] = v
	}
	switch b.name {
	case "TIME_BUCKET":
		// TIME_BUCKET(width_ms, ts): floor-align ts to the bucket grid,
		// the downsampling primitive for historian roll-ups.
		if vals[0].IsNull() || vals[1].IsNull() {
			return relational.Null, nil
		}
		width := vals[0].AsInt()
		if width <= 0 {
			return relational.Null, fmt.Errorf("sqlexec: TIME_BUCKET width must be positive")
		}
		ts := vals[1].AsInt()
		return relational.Time(model.BucketFloor(ts, width)), nil
	case "ABS":
		if vals[0].IsNull() {
			return relational.Null, nil
		}
		return relational.Float(math.Abs(vals[0].AsFloat())), nil
	case "FLOOR":
		if vals[0].IsNull() {
			return relational.Null, nil
		}
		return relational.Float(math.Floor(vals[0].AsFloat())), nil
	case "CEIL":
		if vals[0].IsNull() {
			return relational.Null, nil
		}
		return relational.Float(math.Ceil(vals[0].AsFloat())), nil
	case "ROUND":
		if vals[0].IsNull() {
			return relational.Null, nil
		}
		return relational.Float(math.Round(vals[0].AsFloat())), nil
	}
	return relational.Null, fmt.Errorf("sqlexec: unknown function %q", b.name)
}

// scalarArity maps supported scalar functions to their argument counts.
var scalarArity = map[string]int{
	"TIME_BUCKET": 2, "ABS": 1, "FLOOR": 1, "CEIL": 1, "ROUND": 1,
}

func bindScalarFunc(x *sqlparse.FuncExpr, cols []ColMeta) (boundExpr, error) {
	want, ok := scalarArity[x.Name]
	if !ok {
		return nil, fmt.Errorf("sqlexec: unknown function %q", x.Name)
	}
	if len(x.Args) != want {
		return nil, fmt.Errorf("sqlexec: %s takes %d arguments, got %d", x.Name, want, len(x.Args))
	}
	args := make([]boundExpr, len(x.Args))
	for i, a := range x.Args {
		b, err := bind(a, cols)
		if err != nil {
			return nil, err
		}
		args[i] = b
	}
	return boundScalar{name: x.Name, args: args}, nil
}

// resolveColumn finds the ordinal of a column reference in a layout.
func resolveColumn(ref *sqlparse.ColumnRef, cols []ColMeta) (int, error) {
	found := -1
	for i, c := range cols {
		if !strings.EqualFold(c.Name, ref.Name) {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(c.Table, ref.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sqlexec: ambiguous column %q", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sqlexec: unknown column %q", ref)
	}
	return found, nil
}

// exprKind infers the result type of a bound-able expression for output
// column metadata.
func exprKind(e sqlparse.Expr, cols []ColMeta) relational.Kind {
	switch x := e.(type) {
	case *sqlparse.ColumnRef:
		if ord, err := resolveColumn(x, cols); err == nil {
			return cols[ord].Kind
		}
	case *sqlparse.Literal:
		return x.Val.Kind
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case "+", "-", "*", "/":
			return relational.KindFloat
		default:
			return relational.KindInt
		}
	case *sqlparse.FuncExpr:
		switch x.Name {
		case "COUNT":
			return relational.KindInt
		case "TIME_BUCKET":
			return relational.KindTime
		}
		return relational.KindFloat
	}
	return relational.KindNull
}
