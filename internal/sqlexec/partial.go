// Partial-result surfacing for degraded distributed queries. The engine
// itself always answers over one complete store; when the cluster router
// scatters a query and a shard has zero live replicas it cannot answer
// all-or-nothing without throwing away the healthy shards' work. Instead
// it returns the rows it has alongside a *PartialResultError naming the
// missing shards — callers distinguish "complete", "explicitly partial",
// and "failed" and never mistake a degraded answer for a full one.
package sqlexec

import (
	"fmt"
	"strings"
)

// PartialResultError reports that a distributed query's answer covers
// only part of the data: every shard listed in Shards was unavailable
// (zero live, caught-up replicas after retries). For plain row queries
// the rows accompanying the error are complete for every shard NOT
// listed; for aggregate queries no rows accompany it at all — a fold
// over the surviving shards would be a wrong total masquerading as the
// answer, so the router withholds it. It unwraps to the per-shard
// causes so errors.Is/As see through it.
type PartialResultError struct {
	// Shards lists the unavailable shard indices, ascending.
	Shards []int
	// Errs holds the final error from each unavailable shard, parallel
	// to Shards.
	Errs []error
}

func (e *PartialResultError) Error() string {
	var b strings.Builder
	b.WriteString("partial result: ")
	if len(e.Shards) == 1 {
		fmt.Fprintf(&b, "shard %d unavailable", e.Shards[0])
	} else {
		fmt.Fprintf(&b, "%d shards unavailable (", len(e.Shards))
		for i, s := range e.Shards {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", s)
		}
		b.WriteString(")")
	}
	if len(e.Errs) > 0 && e.Errs[0] != nil {
		fmt.Fprintf(&b, ": %v", e.Errs[0])
	}
	return b.String()
}

// Unwrap exposes the per-shard causes to errors.Is and errors.As.
func (e *PartialResultError) Unwrap() []error { return e.Errs }
