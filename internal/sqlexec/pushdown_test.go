package sqlexec

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"odh/internal/model"
	"odh/internal/relational"
)

// rowKey canonicalizes a row for multiset comparison, bit-exact for
// floats (GROUP BY output order is not defined without ORDER BY, so the
// two plans may emit groups in different orders).
func rowKey(r Row) string {
	var b strings.Builder
	for _, v := range r {
		fmt.Fprintf(&b, "%d:", v.Kind)
		switch v.Kind {
		case relational.KindFloat:
			fmt.Fprintf(&b, "%016x", math.Float64bits(v.F))
		case relational.KindString:
			b.WriteString(v.S)
		default:
			fmt.Fprintf(&b, "%d", v.I)
		}
		b.WriteByte('|')
	}
	return b.String()
}

func sortedKeys(rows []Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = rowKey(r)
	}
	sort.Strings(keys)
	return keys
}

// runBoth executes sql with the pushdown enabled and disabled and asserts
// the result multisets are bit-identical. It returns the two Results for
// counter assertions.
func runBoth(t *testing.T, e *Engine, sql string) (*Result, *Result) {
	t.Helper()
	e.SetAggPushdown(true)
	pushRows, pushRes := fetchAll(t, e, sql)
	e.SetAggPushdown(false)
	refRows, refRes := fetchAll(t, e, sql)
	e.SetAggPushdown(true)
	pk, rk := sortedKeys(pushRows), sortedKeys(refRows)
	if len(pk) != len(rk) {
		t.Fatalf("%s: pushdown %d rows, fallback %d rows", sql, len(pk), len(rk))
	}
	for i := range pk {
		if pk[i] != rk[i] {
			t.Fatalf("%s: row %d differs:\n  pushdown %s\n  fallback %s", sql, i, pk[i], rk[i])
		}
	}
	return pushRes, refRes
}

// planFor returns the EXPLAIN text with the pushdown enabled.
func planFor(t *testing.T, e *Engine, sql string) string {
	t.Helper()
	e.SetAggPushdown(true)
	plan, err := e.Plan(sql)
	if err != nil {
		t.Fatalf("Plan(%q): %v", sql, err)
	}
	return plan
}

func TestAggPushdownMatchesFallback(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)

	// Integer-valued T_TRADE_PRICE and the exactly-representable T_CHRG
	// (0.5) keep float sums association-independent, so per-blob subtotal
	// folding is bit-identical to row-order accumulation.
	eligible := []string{
		`SELECT COUNT(*) FROM TRADE`,
		`SELECT COUNT(*), COUNT(T_TRADE_PRICE), SUM(T_TRADE_PRICE), AVG(T_TRADE_PRICE), MIN(T_TRADE_PRICE), MAX(T_TRADE_PRICE) FROM TRADE`,
		`SELECT SUM(T_CHRG), MAX(T_COMM) FROM TRADE WHERE T_DTS >= 1000500 AND T_DTS < 1001800`,
		`SELECT COUNT(*) FROM TRADE WHERE T_DTS BETWEEN 1000500 AND 1001800`,
		`SELECT COUNT(*), AVG(T_TRADE_PRICE) FROM TRADE WHERE T_CA_ID = 3`,
		`SELECT COUNT(*), MIN(T_TRADE_PRICE) FROM TRADE WHERE T_CA_ID IN (2, 4, 6)`,
		`SELECT T_CA_ID, COUNT(*), SUM(T_TRADE_PRICE) FROM TRADE GROUP BY T_CA_ID`,
		`SELECT TIME_BUCKET(500, T_DTS), COUNT(*), MAX(T_TRADE_PRICE) FROM TRADE GROUP BY TIME_BUCKET(500, T_DTS)`,
		`SELECT T_CA_ID, TIME_BUCKET(700, T_DTS), COUNT(*), AVG(T_CHRG) FROM TRADE GROUP BY T_CA_ID, TIME_BUCKET(700, T_DTS)`,
		`SELECT COUNT(*), MAX(T_TRADE_PRICE) FROM TRADE WHERE T_TRADE_PRICE > 120`,
		`SELECT COUNT(*) FROM TRADE WHERE T_TRADE_PRICE BETWEEN 110 AND 130 AND T_CHRG = 0.5`,
		`SELECT T_CA_ID, COUNT(*) FROM TRADE GROUP BY T_CA_ID HAVING COUNT(*) > 10 ORDER BY T_CA_ID DESC LIMIT 4`,
		`SELECT COUNT(*), SUM(T_TRADE_PRICE), MIN(T_TRADE_PRICE) FROM TRADE WHERE T_DTS < 0`,
		`SELECT T_CA_ID FROM TRADE GROUP BY T_CA_ID`,
	}
	for _, sql := range eligible {
		runBoth(t, e, sql)
		if plan := planFor(t, e, sql); !strings.Contains(plan, "agg-pushdown") || !strings.Contains(plan, "AggPushdown") {
			t.Fatalf("expected pushdown for %q, plan:\n%s", sql, plan)
		}
	}

	// Shapes the rewrite must refuse (lossy or unsupported): they still
	// run, on the generic plan.
	ineligible := []string{
		`SELECT COUNT(*) FROM TRADE WHERE T_DTS >= 1000000.5`,
		`SELECT COUNT(*) FROM TRADE WHERE T_TRADE_PRICE IS NULL`,
		`SELECT COUNT(*) FROM TRADE WHERE NOT T_TRADE_PRICE > 120`,
		`SELECT COUNT(*) FROM TRADE WHERE T_TRADE_PRICE > 120 OR T_CHRG > 1`,
		`SELECT T_CHRG, COUNT(*) FROM TRADE GROUP BY T_CHRG`,
		`SELECT MIN(T_DTS) FROM TRADE`,
		`SELECT COUNT(T_CA_ID) FROM TRADE`,
	}
	for _, sql := range ineligible {
		runBoth(t, e, sql)
		if plan := planFor(t, e, sql); strings.Contains(plan, "AggPushdown") {
			t.Fatalf("pushdown must not fire for %q, plan:\n%s", sql, plan)
		}
	}
}

func TestAggPushdownWithBufferedRows(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	// Unflushed points must contribute through the buffer part.
	for i := 0; i < 7; i++ {
		if err := e.ts.Write(model.Point{Source: 3, TS: int64(2000000 + i*50),
			Values: []float64{200 + float64(i), 0.5, 0.25, 0.1}}); err != nil {
			t.Fatal(err)
		}
	}
	runBoth(t, e, `SELECT COUNT(*), SUM(T_TRADE_PRICE), MAX(T_TRADE_PRICE) FROM TRADE WHERE T_CA_ID = 3`)
	runBoth(t, e, `SELECT T_CA_ID, COUNT(*) FROM TRADE GROUP BY T_CA_ID`)
}

func TestAggPushdownMGSchema(t *testing.T) {
	e := newEngine(t)
	ldFixture(t, e)
	for _, sql := range []string{
		`SELECT COUNT(*), AVG(AirTemperature) FROM Observation`,
		`SELECT SensorId, COUNT(AirTemperature), COUNT(WindSpeed) FROM Observation GROUP BY SensorId`,
		`SELECT TIME_BUCKET(10000000, Timestamp), COUNT(*) FROM Observation GROUP BY TIME_BUCKET(10000000, Timestamp)`,
	} {
		runBoth(t, e, sql)
	}
}

// TestAggPushdownNearEquality covers non-associative float sums (0.1 is
// not exactly representable): per-blob folding may differ from row-order
// accumulation only by rounding.
func TestAggPushdownNearEquality(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	sql := `SELECT SUM(T_TAX), AVG(T_TAX) FROM TRADE`
	e.SetAggPushdown(true)
	push, _ := fetchAll(t, e, sql)
	e.SetAggPushdown(false)
	ref, _ := fetchAll(t, e, sql)
	for i := range push[0] {
		p, r := push[0][i].AsFloat(), ref[0][i].AsFloat()
		if math.Abs(p-r) > 1e-9*math.Max(math.Abs(p), 1) {
			t.Fatalf("column %d: pushdown %v vs fallback %v", i, p, r)
		}
	}
}

// TestAggPushdownBlobBytes pins the accounting fix: the pushdown reports
// only the bytes it decoded, not the bytes it folded from summaries.
func TestAggPushdownBlobBytes(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	sql := `SELECT COUNT(*), SUM(T_TRADE_PRICE) FROM TRADE`
	push, ref := runBoth(t, e, sql)
	if push.BlobBytes() != 0 {
		t.Fatalf("full-window pushdown decoded %d bytes, want 0 (all summary folds)", push.BlobBytes())
	}
	if ref.BlobBytes() == 0 {
		t.Fatalf("fallback read no blob bytes; fixture not flushed?")
	}
	st := e.ts.Stats()
	if st.SummaryHits == 0 || st.BytesNotDecoded == 0 {
		t.Fatalf("summary counters not plumbed: %+v", st)
	}
}
