package sqlexec

import (
	"errors"
	"strings"
	"testing"
)

func TestPartialResultErrorUnwraps(t *testing.T) {
	cause := errors.New("node 2 down")
	e := &PartialResultError{Shards: []int{2, 5}, Errs: []error{cause, errors.New("timeout")}}
	if !errors.Is(e, cause) {
		t.Fatal("errors.Is does not see through PartialResultError to the shard cause")
	}
	var pe *PartialResultError
	wrapped := errors.Join(errors.New("query degraded"), e)
	if !errors.As(wrapped, &pe) {
		t.Fatal("errors.As cannot extract PartialResultError from a join")
	}
	if len(pe.Shards) != 2 || pe.Shards[0] != 2 || pe.Shards[1] != 5 {
		t.Fatalf("extracted shards = %v", pe.Shards)
	}
	msg := e.Error()
	if !strings.Contains(msg, "2 shards unavailable") || !strings.Contains(msg, "node 2 down") {
		t.Fatalf("message = %q", msg)
	}
	one := &PartialResultError{Shards: []int{3}, Errs: []error{cause}}
	if got := one.Error(); !strings.Contains(got, "shard 3 unavailable") {
		t.Fatalf("single-shard message = %q", got)
	}
}
