package sqlexec

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"odh/internal/catalog"
	"odh/internal/model"
	"odh/internal/pagestore"
	"odh/internal/relational"
	"odh/internal/tsstore"
)

// newEngine builds an empty engine over an in-memory page store.
func newEngine(t testing.TB) *Engine {
	t.Helper()
	page, err := pagestore.Open(pagestore.NewMemFile(), pagestore.Options{PoolPages: 16384})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { page.Close() })
	cat, err := catalog.Open(page, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tsstore.Open(page, cat, tsstore.Config{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := relational.Open(page, relational.ProfileRDB)
	if err != nil {
		t.Fatal(err)
	}
	return New(rel, ts)
}

// tdFixture loads a miniature TD dataset: virtual TRADE plus relational
// ACCOUNT and CUSTOMER, mirroring the paper's simplified TPC-E schema.
func tdFixture(t testing.TB, e *Engine) (accounts []int64) {
	t.Helper()
	cat := e.cat
	schema, err := cat.CreateSchema(model.SchemaType{
		Name:   "trade",
		IDName: "T_CA_ID",
		TSName: "T_DTS",
		Tags: []model.TagDef{
			{Name: "T_TRADE_PRICE"}, {Name: "T_CHRG"}, {Name: "T_COMM"}, {Name: "T_TAX"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateVirtualTable("TRADE", schema.ID); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE TABLE ACCOUNT (CA_ID BIGINT, CA_C_ID BIGINT, CA_NAME VARCHAR(32), CA_BAL DOUBLE)`)
	mustExec(t, e, `CREATE INDEX acct_by_id ON ACCOUNT (CA_ID)`)
	mustExec(t, e, `CREATE INDEX acct_by_name ON ACCOUNT (CA_NAME)`)
	mustExec(t, e, `CREATE TABLE CUSTOMER (C_ID BIGINT, C_L_NAME VARCHAR(32), C_F_NAME VARCHAR(32), C_TIER INT, C_DOB TIMESTAMP)`)
	mustExec(t, e, `CREATE INDEX cust_by_id ON CUSTOMER (C_ID)`)

	// 10 accounts over 2 customers; 50 trades each at ~20 Hz.
	rng := rand.New(rand.NewSource(77))
	for acct := int64(1); acct <= 10; acct++ {
		ds, err := cat.RegisterSource(model.DataSource{
			ID: acct, SchemaID: schema.ID, Regular: false, IntervalMs: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		accounts = append(accounts, ds.ID)
		custID := (acct-1)/5 + 1
		mustExec(t, e, fmt.Sprintf(
			`INSERT INTO ACCOUNT VALUES (%d, %d, 'acct_%d', %f)`, acct, custID, acct, float64(acct)*100))
		ts := int64(1000000)
		for i := 0; i < 50; i++ {
			ts += int64(40 + rng.Intn(20))
			if err := e.ts.Write(model.Point{
				Source: acct, TS: ts,
				Values: []float64{100 + float64(i), 0.5, 0.25, 0.1},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	mustExec(t, e, `INSERT INTO CUSTOMER VALUES (1, 'Smith', 'Al', 1, '1980-01-01'), (2, 'Jones', 'Bo', 2, '1990-06-15')`)
	if err := e.ts.Flush(); err != nil {
		t.Fatal(err)
	}
	return accounts
}

// ldFixture loads a miniature LD dataset: virtual Observation (sparse
// weather schema subset) plus relational LinkedSensor.
func ldFixture(t testing.TB, e *Engine) (sensors []int64) {
	t.Helper()
	cat := e.cat
	schema, err := cat.CreateSchema(model.SchemaType{
		Name:   "observation",
		IDName: "SensorId",
		TSName: "Timestamp",
		Tags: []model.TagDef{
			{Name: "AirTemperature"}, {Name: "WindSpeed"}, {Name: "RelativeHumidity"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateVirtualTable("Observation", schema.ID); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE TABLE LinkedSensor (SensorId BIGINT, SensorName VARCHAR(16), Latitude DOUBLE, Longitude DOUBLE)`)
	mustExec(t, e, `CREATE INDEX sensor_by_name ON LinkedSensor (SensorName)`)
	mustExec(t, e, `CREATE INDEX sensor_by_lat ON LinkedSensor (Latitude)`)
	mustExec(t, e, `CREATE INDEX sensor_by_lon ON LinkedSensor (Longitude)`)

	// 16 low-frequency sensors (~23 min interval -> MG), clustered in two
	// geographic areas.
	for i := int64(1); i <= 16; i++ {
		ds, err := cat.RegisterSource(model.DataSource{
			ID: 1000 + i, SchemaID: schema.ID, Regular: false, IntervalMs: 1380000,
		})
		if err != nil {
			t.Fatal(err)
		}
		sensors = append(sensors, ds.ID)
		lat, lon := 36.8+float64(i)*0.001, -115.98+float64(i)*0.001
		if i > 8 {
			lat, lon = 40.0+float64(i)*0.001, -100.0+float64(i)*0.001
		}
		mustExec(t, e, fmt.Sprintf(
			`INSERT INTO LinkedSensor VALUES (%d, 'S%02d', %f, %f)`, ds.ID, i, lat, lon))
	}
	// 12 rounds of observations; each sensor reports a sparse subset.
	for round := 0; round < 12; round++ {
		ts := int64(2000000 + round*1380000)
		for i, src := range sensors {
			vals := []float64{model.NullValue, model.NullValue, model.NullValue}
			vals[0] = 15 + float64(round) // AirTemperature always present
			if i%2 == 0 {
				vals[1] = float64(i)
			}
			if err := e.ts.Write(model.Point{Source: src, TS: ts, Values: vals}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.ts.Flush(); err != nil {
		t.Fatal(err)
	}
	return sensors
}

func mustExec(t testing.TB, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

func fetchAll(t testing.TB, e *Engine, sql string) ([]Row, *Result) {
	t.Helper()
	res := mustExec(t, e, sql)
	rows, err := res.FetchAll()
	if err != nil {
		t.Fatalf("FetchAll(%q): %v", sql, err)
	}
	return rows, res
}

func TestTQ1HistoricalQuery(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	rows, res := fetchAll(t, e, `SELECT * FROM TRADE WHERE T_CA_ID = 3`)
	if len(rows) != 50 {
		t.Fatalf("TQ1 returned %d rows, want 50", len(rows))
	}
	for _, r := range rows {
		if r[0].AsInt() != 3 {
			t.Fatalf("wrong account: %v", r[0])
		}
	}
	if len(res.Columns) != 6 { // id, ts, 4 tags
		t.Fatalf("columns: %v", res.Columns)
	}
	if res.BlobBytes() == 0 {
		t.Fatal("no blob bytes accounted")
	}
	// Historical plan must not scan other sources.
	plan, err := e.Plan(`SELECT * FROM TRADE WHERE T_CA_ID = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "VirtualHistoricalScan") {
		t.Fatalf("plan:\n%s", plan)
	}
}

func TestTQ2SliceQuery(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	// All trades fall in [1000000, 1003500]; slice a sub-window.
	rows, _ := fetchAll(t, e, `SELECT * FROM TRADE WHERE T_DTS BETWEEN 1000500 AND 1001500`)
	if len(rows) == 0 || len(rows) >= 500 {
		t.Fatalf("TQ2 returned %d rows", len(rows))
	}
	for _, r := range rows {
		ts := r[1].AsInt()
		if ts < 1000500 || ts > 1001500 {
			t.Fatalf("row outside window: %d", ts)
		}
	}
	plan, _ := e.Plan(`SELECT * FROM TRADE WHERE T_DTS BETWEEN 1000500 AND 1001500`)
	if !strings.Contains(plan, "VirtualSliceScan") {
		t.Fatalf("plan:\n%s", plan)
	}
}

func TestTQ3FusedSingleSource(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT T_DTS, T_CHRG FROM TRADE t, ACCOUNT a WHERE a.CA_ID = t.T_CA_ID AND a.CA_NAME = 'acct_7'`)
	if len(rows) != 50 {
		t.Fatalf("TQ3 returned %d rows, want 50", len(rows))
	}
	for _, r := range rows {
		if r[1].AsFloat() != 0.5 {
			t.Fatalf("wrong T_CHRG: %v", r[1])
		}
	}
	// Single selective account: the optimizer must drive from the
	// relational side.
	plan, _ := e.Plan(`SELECT T_DTS, T_CHRG FROM TRADE t, ACCOUNT a WHERE a.CA_ID = t.T_CA_ID AND a.CA_NAME = 'acct_7'`)
	if !strings.Contains(plan, "relational-first") {
		t.Fatalf("plan:\n%s", plan)
	}
}

func TestTQ4ThreeWayFusion(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT CA_NAME, T_DTS, T_CHRG FROM TRADE t, ACCOUNT a, CUSTOMER c
		WHERE a.CA_ID = t.T_CA_ID AND a.CA_C_ID = c.C_ID AND C_DOB BETWEEN '1975-01-01' AND '1985-01-01'`)
	// Customer 1 (dob 1980) owns accounts 1..5: 5 accounts x 50 trades.
	if len(rows) != 250 {
		t.Fatalf("TQ4 returned %d rows, want 250", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r[0].S] = true
	}
	for acct := 1; acct <= 5; acct++ {
		if !names[fmt.Sprintf("acct_%d", acct)] {
			t.Fatalf("missing account %d in %v", acct, names)
		}
	}
	if names["acct_6"] {
		t.Fatal("customer filter leaked account 6")
	}
}

func TestLQ1HistoricalLowFrequency(t *testing.T) {
	e := newEngine(t)
	sensors := ldFixture(t, e)
	rows, _ := fetchAll(t, e, fmt.Sprintf(`SELECT * FROM Observation WHERE SensorId = %d`, sensors[4]))
	if len(rows) != 12 {
		t.Fatalf("LQ1 returned %d rows, want 12", len(rows))
	}
}

func TestLQ2SliceProjection(t *testing.T) {
	e := newEngine(t)
	ldFixture(t, e)
	rows, res := fetchAll(t, e, `SELECT Timestamp, SensorId, AirTemperature FROM Observation WHERE Timestamp BETWEEN 2000000 AND 3380000`)
	// Rounds 0 and 1 inclusive: 2 x 16 sensors.
	if len(rows) != 32 {
		t.Fatalf("LQ2 returned %d rows, want 32", len(rows))
	}
	if res.Columns[2] != "AirTemperature" {
		t.Fatalf("columns: %v", res.Columns)
	}
	for _, r := range rows {
		if r[2].IsNull() {
			t.Fatal("AirTemperature must be present for every row")
		}
	}
}

func TestLQ3FusedByName(t *testing.T) {
	e := newEngine(t)
	ldFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT Timestamp, o.SensorId, AirTemperature FROM Observation o, LinkedSensor l
		WHERE l.SensorId = o.SensorId AND SensorName = 'S03'`)
	if len(rows) != 12 {
		t.Fatalf("LQ3 returned %d rows, want 12", len(rows))
	}
}

func TestLQ4GeographicFusion(t *testing.T) {
	e := newEngine(t)
	ldFixture(t, e)
	// Area covering sensors 1..8 (lat 36.80x).
	sql := `SELECT Timestamp, o.SensorId, AirTemperature FROM Observation o, LinkedSensor l
		WHERE l.SensorId = o.SensorId AND Latitude < 37.0 AND Latitude > 36.0 AND Longitude < -115.0 AND Longitude > -116.0`
	rows, _ := fetchAll(t, e, sql)
	if len(rows) != 8*12 {
		t.Fatalf("LQ4 returned %d rows, want 96", len(rows))
	}
}

func TestOptimizerLQ4PlanChoice(t *testing.T) {
	e := newEngine(t)
	ldFixture(t, e)
	// Tiny box: one sensor -> relational-first (paper §5.3 plan study).
	small := `SELECT Timestamp, o.SensorId, AirTemperature FROM Observation o, LinkedSensor l
		WHERE l.SensorId = o.SensorId AND Latitude < 36.8015 AND Latitude > 36.8005 AND Longitude < -115.0 AND Longitude > -116.0`
	planSmall, err := e.Plan(small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planSmall, "relational-first") {
		t.Fatalf("small-area plan:\n%s", planSmall)
	}
	// Huge box: every sensor -> operational-first.
	big := `SELECT Timestamp, o.SensorId, AirTemperature FROM Observation o, LinkedSensor l
		WHERE l.SensorId = o.SensorId AND Latitude < 80.0 AND Latitude > 10.0 AND Longitude < -50.0 AND Longitude > -150.0`
	planBig, err := e.Plan(big)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planBig, "operational-first") {
		t.Fatalf("large-area plan:\n%s", planBig)
	}
	// Both plans must return identical results.
	rowsSmall, _ := fetchAll(t, e, small)
	if len(rowsSmall) != 12 {
		t.Fatalf("small area rows = %d, want 12", len(rowsSmall))
	}
	rowsBig, _ := fetchAll(t, e, big)
	if len(rowsBig) != 16*12 {
		t.Fatalf("big area rows = %d, want 192", len(rowsBig))
	}
}

func TestTimestampStringLiterals(t *testing.T) {
	e := newEngine(t)
	cat := e.cat
	schema, _ := cat.CreateSchema(model.SchemaType{Name: "env", Tags: []model.TagDef{{Name: "temperature"}, {Name: "wind"}}})
	cat.CreateVirtualTable("environ_data_v", schema.ID)
	mustExec(t, e, `CREATE TABLE sensor_info (id BIGINT, area VARCHAR(8))`)
	base, ok := ParseTimestamp("2013-11-18 00:00:00")
	if !ok {
		t.Fatal("ParseTimestamp")
	}
	for i := int64(1); i <= 4; i++ {
		cat.RegisterSource(model.DataSource{ID: i, SchemaID: schema.ID, Regular: true, IntervalMs: 60000})
		area := "S1"
		if i > 2 {
			area = "S2"
		}
		mustExec(t, e, fmt.Sprintf(`INSERT INTO sensor_info VALUES (%d, '%s')`, i, area))
		for j := 0; j < 30; j++ {
			e.ts.Write(model.Point{Source: i, TS: base + int64(j)*60000, Values: []float64{20, 3}})
		}
	}
	e.ts.Flush()
	// The paper's §3 example query, verbatim shape.
	rows, _ := fetchAll(t, e, `SELECT timestamp, temperature, wind FROM environ_data_v a, sensor_info b
		WHERE a.id = b.id AND b.area = 'S1'
		AND timestamp BETWEEN '2013-11-18 00:00:00' AND '2013-11-18 00:10:00'`)
	if len(rows) != 2*11 {
		t.Fatalf("returned %d rows, want 22", len(rows))
	}
	for _, r := range rows {
		if r[1].AsFloat() != 20 || r[2].AsFloat() != 3 {
			t.Fatalf("row: %v", r)
		}
	}
}

func TestAggregates(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT COUNT(*), AVG(T_TRADE_PRICE), MIN(T_TRADE_PRICE), MAX(T_TRADE_PRICE), SUM(T_CHRG) FROM TRADE WHERE T_CA_ID = 1`)
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r[0].AsInt() != 50 {
		t.Fatalf("COUNT = %v", r[0])
	}
	if r[2].AsFloat() != 100 || r[3].AsFloat() != 149 {
		t.Fatalf("MIN/MAX = %v/%v", r[2], r[3])
	}
	if math.Abs(r[4].AsFloat()-25) > 1e-9 {
		t.Fatalf("SUM = %v", r[4])
	}
	if math.Abs(r[1].AsFloat()-124.5) > 1e-9 {
		t.Fatalf("AVG = %v", r[1])
	}
}

func TestGroupBy(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT T_CA_ID, COUNT(*) FROM TRADE GROUP BY T_CA_ID ORDER BY T_CA_ID`)
	if len(rows) != 10 {
		t.Fatalf("%d groups, want 10", len(rows))
	}
	for i, r := range rows {
		if r[0].AsInt() != int64(i+1) || r[1].AsInt() != 50 {
			t.Fatalf("group %d: %v", i, r)
		}
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT T_DTS, T_TRADE_PRICE FROM TRADE WHERE T_CA_ID = 2 ORDER BY T_TRADE_PRICE DESC LIMIT 5`)
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	prev := math.Inf(1)
	for _, r := range rows {
		if r[1].AsFloat() > prev {
			t.Fatal("not descending")
		}
		prev = r[1].AsFloat()
	}
	if rows[0][1].AsFloat() != 149 {
		t.Fatalf("top price = %v", rows[0][1])
	}
}

func TestDirtyReadSeesBufferedPoints(t *testing.T) {
	e := newEngine(t)
	accounts := tdFixture(t, e)
	// Write points that stay in the ingest buffer (no flush).
	for i := 0; i < 5; i++ {
		e.ts.Write(model.Point{Source: accounts[0], TS: int64(2000000 + i*50), Values: []float64{999, 0, 0, 0}})
	}
	rows, _ := fetchAll(t, e, `SELECT * FROM TRADE WHERE T_CA_ID = 1 AND T_DTS >= 2000000`)
	if len(rows) != 5 {
		t.Fatalf("dirty read returned %d rows, want 5", len(rows))
	}
}

func TestArithmeticProjection(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT T_TRADE_PRICE * 2 AS dbl FROM TRADE WHERE T_CA_ID = 1 LIMIT 1`)
	if rows[0][0].AsFloat() != 200 {
		t.Fatalf("computed column = %v", rows[0][0])
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := newEngine(t)
	ldFixture(t, e)
	// WindSpeed is NULL for odd sensors; NULL comparisons must not match.
	rows, _ := fetchAll(t, e, `SELECT SensorId, WindSpeed FROM Observation WHERE WindSpeed >= 0`)
	for _, r := range rows {
		if r[1].IsNull() {
			t.Fatal("NULL passed a comparison filter")
		}
	}
	rowsNull, _ := fetchAll(t, e, `SELECT SensorId FROM Observation WHERE WindSpeed IS NULL`)
	if len(rowsNull) != 8*12 {
		t.Fatalf("IS NULL returned %d rows, want 96", len(rowsNull))
	}
}

func TestSQLDDLAndInsertRoundtrip(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, `CREATE TABLE t (a BIGINT, b VARCHAR(8), c TIMESTAMP)`)
	res := mustExec(t, e, `INSERT INTO t VALUES (1, 'x', '2020-01-01 00:00:00'), (2, 'y', '2021-01-01 00:00:00')`)
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}
	rows, _ := fetchAll(t, e, `SELECT * FROM t WHERE c >= '2020-06-01 00:00:00'`)
	if len(rows) != 1 || rows[0][1].S != "y" {
		t.Fatalf("rows: %v", rows)
	}
}

func TestCreateVirtualTableSQL(t *testing.T) {
	e := newEngine(t)
	e.cat.CreateSchemaType("env", []model.TagDef{{Name: "temp"}})
	mustExec(t, e, `CREATE VIRTUAL TABLE env_v SCHEMA env`)
	if _, ok := e.cat.VirtualTable("env_v"); !ok {
		t.Fatal("virtual table not registered")
	}
	if _, err := e.Query(`CREATE VIRTUAL TABLE bad_v SCHEMA missing`); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestErrorCases(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	for _, sql := range []string{
		`SELECT * FROM missing_table`,
		`SELECT nope FROM TRADE`,
		`SELECT * FROM TRADE x, TRADE y WHERE x.T_CA_ID = y.T_CA_ID`, // two virtual tables
		`SELECT * FROM TRADE, CUSTOMER`,                              // no join predicate
		`SELECT T_CA_ID, COUNT(*) FROM TRADE`,                        // non-grouped column
	} {
		res, err := e.Query(sql)
		if err == nil {
			if _, err = res.FetchAll(); err == nil {
				t.Fatalf("Query(%q) succeeded", sql)
			}
		}
	}
}

func TestExplainOutput(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	res := mustExec(t, e, `EXPLAIN SELECT * FROM TRADE WHERE T_CA_ID = 1`)
	if !strings.Contains(res.PlanText, "VirtualHistoricalScan") {
		t.Fatalf("explain:\n%s", res.PlanText)
	}
}

func TestDataPointAccounting(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	_, res := fetchAll(t, e, `SELECT T_TRADE_PRICE, T_CHRG FROM TRADE WHERE T_CA_ID = 1`)
	if res.RowCount != 50 {
		t.Fatalf("RowCount = %d", res.RowCount)
	}
	if res.DataPoints != 100 { // 2 non-null values per row
		t.Fatalf("DataPoints = %d", res.DataPoints)
	}
}
