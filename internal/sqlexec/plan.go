package sqlexec

import (
	"context"
	"fmt"
	"math"
	"strings"

	"odh/internal/model"
	"odh/internal/relational"
	"odh/internal/sqlparse"
	"odh/internal/tsstore"
)

// Cost model constants (units: bytes, the paper's cost currency — "we
// approximate the cost of extracting the requested operational data as the
// expected size, in bytes, of the ValueBlobs that need to be accessed").
const (
	// costPerSeek charges one page per per-source seek (B-tree descent).
	costPerSeek = 4096.0
	// costPerRouterLookup charges the catalog metadata probe the data
	// router performs per source.
	costPerRouterLookup = 256.0
	// defaultSelectivity estimates un-indexed predicate selectivity.
	defaultSelectivity = 0.1
)

// tableSource resolves one FROM entry.
type tableSource struct {
	ref    sqlparse.TableRef
	rel    *relational.Table
	schema *model.SchemaType // non-nil for virtual tables
}

func (t *tableSource) binding() string { return t.ref.Binding() }
func (t *tableSource) isVirtual() bool { return t.schema != nil }

// columns returns the source's column layout under its binding.
func (e *Engine) sourceColumns(src *tableSource) []ColMeta {
	if src.isVirtual() {
		cols := []ColMeta{
			{Table: src.binding(), Name: src.schema.IDColumn(), Kind: relational.KindInt},
			{Table: src.binding(), Name: src.schema.TSColumn(), Kind: relational.KindTime},
		}
		for _, tag := range src.schema.Tags {
			cols = append(cols, ColMeta{Table: src.binding(), Name: tag.Name, Kind: relational.KindFloat})
		}
		return cols
	}
	cols := make([]ColMeta, len(src.rel.Columns()))
	for i, c := range src.rel.Columns() {
		cols[i] = ColMeta{Table: src.binding(), Name: c.Name, Kind: c.Type}
	}
	return cols
}

// joinPred is an equijoin between two bindings.
type joinPred struct {
	leftBind, leftCol   string
	rightBind, rightCol string
	expr                sqlparse.Expr
}

// tableAccess carries the chosen access path for one table.
type tableAccess struct {
	src       *tableSource
	conjuncts []sqlparse.Expr // single-table predicates (applied as filter)

	// Virtual pushdowns.
	t1, t2    int64
	idEq      *int64
	idList    []int64 // id IN (...) pushdown
	tagRanges []tsstore.TagRange

	// Relational access path.
	index      *relational.Index
	prefixVals []relational.Value
	rangeLo    relational.Value
	rangeHi    relational.Value

	estRows float64
	estCost float64
}

// planContext accumulates per-query planning state.
type planContext struct {
	e        *Engine
	ctx      context.Context // cancels the query's scans
	stmt     *sqlparse.SelectStmt
	sources  []*tableSource
	byBind   map[string]*tableSource
	access   map[string]*tableAccess
	joins    []joinPred
	residual []sqlparse.Expr // multi-table non-equijoin predicates
	wantTags map[string][]int
	// planNote records optimizer decisions for EXPLAIN / the LQ4 study.
	planNote string
}

// resolveTable maps a FROM name to a source (virtual tables first, then
// relational; both case-insensitive).
func (e *Engine) resolveTable(ref sqlparse.TableRef) (*tableSource, error) {
	if schema, ok := e.cat.VirtualTable(ref.Name); ok {
		return &tableSource{ref: ref, schema: schema}, nil
	}
	for _, name := range e.cat.VirtualTables() {
		if strings.EqualFold(name, ref.Name) {
			schema, _ := e.cat.VirtualTable(name)
			return &tableSource{ref: ref, schema: schema}, nil
		}
	}
	if t, ok := e.rel.Table(ref.Name); ok {
		return &tableSource{ref: ref, rel: t}, nil
	}
	for _, name := range e.rel.Tables() {
		if strings.EqualFold(name, ref.Name) {
			t, _ := e.rel.Table(name)
			return &tableSource{ref: ref, rel: t}, nil
		}
	}
	return nil, fmt.Errorf("sqlexec: unknown table %q", ref.Name)
}

// classify splits WHERE conjuncts into per-table, join, and residual sets.
func (pc *planContext) classify() error {
	for _, conj := range sqlparse.SplitConjuncts(pc.stmt.Where) {
		binds := map[string]bool{}
		ok := collectBindings(conj, pc, binds)
		if !ok {
			return fmt.Errorf("sqlexec: cannot resolve columns in %s", conj)
		}
		switch len(binds) {
		case 0, 1:
			var bind string
			for b := range binds {
				bind = b
			}
			if bind == "" {
				bind = pc.sources[0].binding()
			}
			pc.access[bind].conjuncts = append(pc.access[bind].conjuncts, conj)
		case 2:
			if jp, ok := asJoinPred(conj, pc); ok {
				pc.joins = append(pc.joins, jp)
			} else {
				pc.residual = append(pc.residual, conj)
			}
		default:
			pc.residual = append(pc.residual, conj)
		}
	}
	return nil
}

// collectBindings gathers the table bindings an expression references,
// resolving unqualified columns against the FROM sources.
func collectBindings(e sqlparse.Expr, pc *planContext, out map[string]bool) bool {
	switch x := e.(type) {
	case *sqlparse.ColumnRef:
		bind, ok := pc.bindingOf(x)
		if !ok {
			return false
		}
		out[bind] = true
		return true
	case *sqlparse.Literal:
		return true
	case *sqlparse.BinaryExpr:
		return collectBindings(x.L, pc, out) && collectBindings(x.R, pc, out)
	case *sqlparse.BetweenExpr:
		return collectBindings(x.Target, pc, out) && collectBindings(x.Lo, pc, out) && collectBindings(x.Hi, pc, out)
	case *sqlparse.NotExpr:
		return collectBindings(x.Inner, pc, out)
	case *sqlparse.IsNullExpr:
		return collectBindings(x.Target, pc, out)
	case *sqlparse.InExpr:
		if !collectBindings(x.Target, pc, out) {
			return false
		}
		for _, item := range x.List {
			if !collectBindings(item, pc, out) {
				return false
			}
		}
		return true
	case *sqlparse.FuncExpr:
		for _, a := range x.Args {
			if !collectBindings(a, pc, out) {
				return false
			}
		}
		return true
	}
	return false
}

// bindingOf resolves a column reference to its table binding.
func (pc *planContext) bindingOf(ref *sqlparse.ColumnRef) (string, bool) {
	if ref.Table != "" {
		for _, src := range pc.sources {
			if strings.EqualFold(src.binding(), ref.Table) {
				return src.binding(), true
			}
		}
		return "", false
	}
	found := ""
	for _, src := range pc.sources {
		for _, col := range pc.e.sourceColumns(src) {
			if strings.EqualFold(col.Name, ref.Name) {
				if found != "" && found != src.binding() {
					return "", false // ambiguous
				}
				found = src.binding()
			}
		}
	}
	return found, found != ""
}

// asJoinPred recognizes `a.x = b.y` between two different tables.
func asJoinPred(e sqlparse.Expr, pc *planContext) (joinPred, bool) {
	b, ok := e.(*sqlparse.BinaryExpr)
	if !ok || b.Op != "=" {
		return joinPred{}, false
	}
	lc, lok := b.L.(*sqlparse.ColumnRef)
	rc, rok := b.R.(*sqlparse.ColumnRef)
	if !lok || !rok {
		return joinPred{}, false
	}
	lb, ok1 := pc.bindingOf(lc)
	rb, ok2 := pc.bindingOf(rc)
	if !ok1 || !ok2 || lb == rb {
		return joinPred{}, false
	}
	return joinPred{leftBind: lb, leftCol: lc.Name, rightBind: rb, rightCol: rc.Name, expr: e}, true
}

// analyzeAccess derives pushdowns and cost for each table.
func (pc *planContext) analyzeAccess() {
	for _, src := range pc.sources {
		acc := pc.access[src.binding()]
		if src.isVirtual() {
			pc.analyzeVirtual(acc)
		} else {
			pc.analyzeRelational(acc)
		}
	}
}

// literalValue extracts a literal (or nil).
func literalValue(e sqlparse.Expr) *relational.Value {
	if lit, ok := e.(*sqlparse.Literal); ok {
		v := lit.Val
		return &v
	}
	return nil
}

// asTimeMs coerces a literal to Unix milliseconds.
func asTimeMs(v relational.Value) (int64, bool) {
	switch v.Kind {
	case relational.KindTime, relational.KindInt:
		return v.I, true
	case relational.KindFloat:
		return int64(v.F), true
	case relational.KindString:
		return 0, false
	}
	return 0, false
}

func asTimeBound(v relational.Value) (int64, bool) {
	if v.Kind == relational.KindString {
		if ms, ok := ParseTimestamp(v.S); ok {
			return ms, true
		}
		return 0, false
	}
	return asTimeMs(v)
}

// analyzeVirtual extracts time bounds and id equality for a virtual table
// and estimates the slice-scan cost.
func (pc *planContext) analyzeVirtual(acc *tableAccess) {
	acc.t1, acc.t2 = math.MinInt64, math.MaxInt64
	for _, conj := range acc.conjuncts {
		switch x := conj.(type) {
		case *sqlparse.BetweenExpr:
			if col, ok := x.Target.(*sqlparse.ColumnRef); ok && strings.EqualFold(col.Name, acc.src.schema.TSColumn()) {
				if lo := literalValue(x.Lo); lo != nil {
					if ms, ok := asTimeBound(*lo); ok && ms > acc.t1 {
						acc.t1 = ms
					}
				}
				if hi := literalValue(x.Hi); hi != nil {
					if ms, ok := asTimeBound(*hi); ok && ms+1 < acc.t2 {
						acc.t2 = ms + 1 // BETWEEN is inclusive
					}
				}
			}
		case *sqlparse.InExpr:
			// id IN (...) restricts the scan to the listed sources.
			col, ok := x.Target.(*sqlparse.ColumnRef)
			if !ok || !strings.EqualFold(col.Name, acc.src.schema.IDColumn()) {
				continue
			}
			ids := make([]int64, 0, len(x.List))
			seen := make(map[int64]bool, len(x.List))
			for _, item := range x.List {
				lit := literalValue(item)
				if lit == nil {
					ids = nil
					break
				}
				if id, okID := asTimeMs(*lit); okID {
					// IN is a membership test: a duplicate literal must not
					// scan (and return) its source twice.
					if !seen[id] {
						seen[id] = true
						ids = append(ids, id)
					}
				} else {
					ids = nil
					break
				}
			}
			if len(ids) > 0 {
				acc.idList = ids
			}
		case *sqlparse.BinaryExpr:
			col, ok := x.L.(*sqlparse.ColumnRef)
			lit := literalValue(x.R)
			op := x.Op
			if !ok || lit == nil {
				// Allow literal-on-left comparisons by mirroring.
				if colR, okR := x.R.(*sqlparse.ColumnRef); okR {
					if litL := literalValue(x.L); litL != nil {
						col, lit, ok = colR, litL, true
						op = mirrorOp(op)
					}
				}
			}
			if !ok || lit == nil {
				continue
			}
			if strings.EqualFold(col.Name, acc.src.schema.TSColumn()) {
				ms, convertible := asTimeBound(*lit)
				if !convertible {
					continue
				}
				switch op {
				case ">=":
					if ms > acc.t1 {
						acc.t1 = ms
					}
				case ">":
					if ms+1 > acc.t1 {
						acc.t1 = ms + 1
					}
				case "<=":
					if ms+1 < acc.t2 {
						acc.t2 = ms + 1
					}
				case "<":
					if ms < acc.t2 {
						acc.t2 = ms
					}
				case "=":
					if ms > acc.t1 {
						acc.t1 = ms
					}
					if ms+1 < acc.t2 {
						acc.t2 = ms + 1
					}
				}
			} else if strings.EqualFold(col.Name, acc.src.schema.IDColumn()) && op == "=" {
				if id, okID := asTimeMs(*lit); okID {
					v := id
					acc.idEq = &v
				}
			}
		}
	}
	// Tag predicates become zone-map pushdowns: a blob whose per-tag
	// min/max range excludes the predicate is skipped without decoding.
	tagBounds := collectColumnBounds(acc.conjuncts, func(col string) (relational.Kind, bool) {
		if acc.src.schema.TagIndex(matchTagName(acc.src.schema, col)) >= 0 {
			return relational.KindFloat, true
		}
		return relational.KindNull, false
	})
	for col, b := range tagBounds {
		idx := acc.src.schema.TagIndex(matchTagName(acc.src.schema, col))
		if idx < 0 {
			continue
		}
		r := tsstore.TagRange{Tag: idx, Lo: math.Inf(-1), Hi: math.Inf(1)}
		if !b.lo.IsNull() {
			r.Lo = b.lo.AsFloat()
		}
		if !b.hi.IsNull() {
			r.Hi = b.hi.AsFloat()
		}
		if !math.IsInf(r.Lo, -1) || !math.IsInf(r.Hi, 1) {
			acc.tagRanges = append(acc.tagRanges, r)
		}
	}

	stats := pc.e.cat.SchemaStats(acc.src.schema.ID)
	frac := windowFraction(stats, acc.t1, acc.t2)
	nSources := float64(pc.e.cat.SourceCount(acc.src.schema.ID))
	if acc.idEq != nil {
		perSource := 0.0
		if nSources > 0 {
			perSource = float64(stats.BlobBytes) / nSources
		}
		acc.estCost = perSource*frac + costPerSeek + costPerRouterLookup
		acc.estRows = float64(stats.PointCount) / math.Max(nSources, 1) * frac
	} else if len(acc.idList) > 0 {
		perSource := 0.0
		if nSources > 0 {
			perSource = float64(stats.BlobBytes) / nSources
		}
		n := float64(len(acc.idList))
		acc.estCost = n * (perSource*frac + costPerSeek + costPerRouterLookup)
		acc.estRows = float64(stats.PointCount) / math.Max(nSources, 1) * frac * n
	} else {
		// Slice scans over MG groups seek once per group record stream,
		// not once per source — the MG structure's advantage for slice
		// queries (paper Table 1).
		seekStreams := nSources
		if groups := pc.e.cat.GroupsBySchema(acc.src.schema.ID); len(groups) > 0 {
			seekStreams = float64(len(groups))
		}
		acc.estCost = float64(stats.BlobBytes)*frac + seekStreams*costPerSeek*frac + nSources*costPerRouterLookup
		acc.estRows = float64(stats.PointCount) * frac
	}
}

func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op
}

// windowFraction estimates the fraction of stored data inside [t1, t2).
func windowFraction(stats model.SourceStats, t1, t2 int64) float64 {
	if stats.PointCount == 0 {
		return 1
	}
	span := float64(stats.LastTS - stats.FirstTS)
	if span <= 0 {
		return 1
	}
	lo := math.Max(float64(t1), float64(stats.FirstTS))
	hi := math.Min(float64(t2), float64(stats.LastTS))
	if hi <= lo {
		return 0.001 // off-range queries still touch boundary batches
	}
	frac := (hi - lo) / span
	if frac > 1 {
		frac = 1
	}
	return frac
}

// colBounds accumulates the literal range a table's conjuncts pin one
// column into.
type colBounds struct {
	lo, hi relational.Value // inclusive; Null = open
	eq     bool             // exact equality (lo == hi from '=')
}

// collectColumnBounds derives per-column ranges from a table's conjuncts:
// '=', '<', '<=', '>', '>=' comparisons against literals and BETWEEN.
// Exclusive bounds are treated as inclusive — the scan re-checks the exact
// predicate, so this only loosens the range.
func collectColumnBounds(conjuncts []sqlparse.Expr, kindOf func(col string) (relational.Kind, bool)) map[string]*colBounds {
	bounds := map[string]*colBounds{}
	get := func(name string) *colBounds {
		key := strings.ToLower(name)
		b, ok := bounds[key]
		if !ok {
			b = &colBounds{lo: relational.Null, hi: relational.Null}
			bounds[key] = b
		}
		return b
	}
	tightenLo := func(b *colBounds, v relational.Value) {
		if b.lo.IsNull() || relational.Compare(v, b.lo) > 0 {
			b.lo = v
		}
	}
	tightenHi := func(b *colBounds, v relational.Value) {
		if b.hi.IsNull() || relational.Compare(v, b.hi) < 0 {
			b.hi = v
		}
	}
	for _, conj := range conjuncts {
		switch x := conj.(type) {
		case *sqlparse.BetweenExpr:
			col, ok := x.Target.(*sqlparse.ColumnRef)
			if !ok {
				continue
			}
			kind, known := kindOf(col.Name)
			if !known {
				continue
			}
			if lo := literalValue(x.Lo); lo != nil {
				tightenLo(get(col.Name), coerceLiteral(*lo, kind))
			}
			if hi := literalValue(x.Hi); hi != nil {
				tightenHi(get(col.Name), coerceLiteral(*hi, kind))
			}
		case *sqlparse.BinaryExpr:
			col, ok := x.L.(*sqlparse.ColumnRef)
			lit := literalValue(x.R)
			op := x.Op
			if !ok || lit == nil {
				if colR, okR := x.R.(*sqlparse.ColumnRef); okR {
					if litL := literalValue(x.L); litL != nil {
						col, lit, ok = colR, litL, true
						op = mirrorOp(op)
					}
				}
			}
			if !ok || lit == nil {
				continue
			}
			kind, known := kindOf(col.Name)
			if !known {
				continue
			}
			v := coerceLiteral(*lit, kind)
			b := get(col.Name)
			switch op {
			case "=":
				tightenLo(b, v)
				tightenHi(b, v)
				b.eq = true
			case "<", "<=":
				tightenHi(b, v)
			case ">", ">=":
				tightenLo(b, v)
			}
		}
	}
	return bounds
}

// analyzeRelational picks the best index for a relational table.
func (pc *planContext) analyzeRelational(acc *tableAccess) {
	t := acc.src.rel
	rows := float64(t.RowCount())
	avgRow := 64.0
	if t.RowCount() > 0 {
		avgRow = float64(t.StorageBytes()) / rows
	}
	// Default: sequential scan.
	acc.estRows = rows
	acc.estCost = rows * avgRow
	bounds := collectColumnBounds(acc.conjuncts, func(col string) (relational.Kind, bool) {
		for _, c := range t.Columns() {
			if strings.EqualFold(c.Name, col) {
				return c.Type, true
			}
		}
		return relational.KindNull, false
	})
	// Probe each bounded column's index for its match count; the probes
	// double as histogram statistics (per-column selectivities compose
	// multiplicatively, independence assumed).
	type colEst struct {
		n   int
		idx *relational.Index
		b   *colBounds
	}
	var ests []colEst
	estimated := map[string]bool{}
	for _, idx := range t.Indexes() {
		firstCol := strings.ToLower(t.Columns()[idx.ColumnOrdinals()[0]].Name)
		b, ok := bounds[firstCol]
		if !ok || (b.lo.IsNull() && b.hi.IsNull()) || estimated[firstCol] {
			continue
		}
		n, err := idx.CountRange(b.lo, b.hi)
		if err != nil {
			continue
		}
		ests = append(ests, colEst{n, idx, b})
		estimated[firstCol] = true
	}
	if len(bounds) > 0 && rows > 0 {
		sel := 1.0
		for col := range bounds {
			if !estimated[col] {
				sel *= defaultSelectivity // no statistics for this column
			}
		}
		for _, e := range ests {
			sel *= float64(e.n) / rows
		}
		acc.estRows = math.Max(rows*sel, 1)
	}
	// Access path: the cheapest selective index, else the sequential scan.
	for _, e := range ests {
		cost := float64(e.n)*(avgRow+costPerSeek/8) + costPerSeek
		if cost < acc.estCost {
			acc.estCost = cost
			acc.index = e.idx
			if e.b.eq && !e.b.lo.IsNull() {
				acc.prefixVals = []relational.Value{e.b.lo}
				acc.rangeLo, acc.rangeHi = relational.Null, relational.Null
			} else {
				acc.prefixVals = nil
				acc.rangeLo, acc.rangeHi = e.b.lo, e.b.hi
			}
		}
	}
}

// coerceLiteral converts a literal to a column's kind (notably timestamp
// strings).
func coerceLiteral(v relational.Value, kind relational.Kind) relational.Value {
	if kind == relational.KindTime {
		switch v.Kind {
		case relational.KindString:
			if ms, ok := ParseTimestamp(v.S); ok {
				return relational.Time(ms)
			}
		case relational.KindInt, relational.KindFloat:
			return relational.Time(v.AsInt())
		}
	}
	if kind == relational.KindFloat && v.Kind == relational.KindInt {
		return relational.Float(float64(v.I))
	}
	return v
}

// collectWantTags finds, for each virtual table, the tag ordinals the
// query references — the tag-oriented projection pushdown.
func (pc *planContext) collectWantTags() {
	pc.wantTags = map[string][]int{}
	for _, src := range pc.sources {
		if !src.isVirtual() {
			continue
		}
		// Star selection (unqualified or for this table) requires all tags.
		needAll := false
		for _, item := range pc.stmt.Items {
			if item.Star && (item.StarTable == "" || strings.EqualFold(item.StarTable, src.binding())) {
				needAll = true
			}
		}
		if needAll {
			pc.wantTags[src.binding()] = nil
			continue
		}
		tagSet := map[int]bool{}
		var visit func(e sqlparse.Expr)
		visit = func(e sqlparse.Expr) {
			switch x := e.(type) {
			case *sqlparse.ColumnRef:
				bind, ok := pc.bindingOf(x)
				if !ok || bind != src.binding() {
					return
				}
				if idx := src.schema.TagIndex(matchTagName(src.schema, x.Name)); idx >= 0 {
					tagSet[idx] = true
				}
			case *sqlparse.BinaryExpr:
				visit(x.L)
				visit(x.R)
			case *sqlparse.BetweenExpr:
				visit(x.Target)
				visit(x.Lo)
				visit(x.Hi)
			case *sqlparse.NotExpr:
				visit(x.Inner)
			case *sqlparse.IsNullExpr:
				visit(x.Target)
			case *sqlparse.InExpr:
				visit(x.Target)
				for _, item := range x.List {
					visit(item)
				}
			case *sqlparse.FuncExpr:
				for _, a := range x.Args {
					visit(a)
				}
			}
		}
		for _, item := range pc.stmt.Items {
			if item.Expr != nil {
				visit(item.Expr)
			}
		}
		if pc.stmt.Where != nil {
			visit(pc.stmt.Where)
		}
		for _, g := range pc.stmt.GroupBy {
			visit(g)
		}
		for _, o := range pc.stmt.OrderBy {
			visit(o.Expr)
		}
		tags := make([]int, 0, len(tagSet))
		for idx := range tagSet {
			tags = append(tags, idx)
		}
		pc.wantTags[src.binding()] = tags
	}
}

// matchTagName resolves a case-insensitive tag reference to the schema's
// spelling.
func matchTagName(schema *model.SchemaType, name string) string {
	for _, t := range schema.Tags {
		if strings.EqualFold(t.Name, name) {
			return t.Name
		}
	}
	return name
}
