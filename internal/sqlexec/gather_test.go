package sqlexec

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"odh/internal/relational"
	"odh/internal/sqlparse"
)

func mustPlan(t testing.TB, sql string) *GatherPlan {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	plan, err := PlanGather(stmt.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatalf("PlanGather %q: %v", sql, err)
	}
	return plan
}

// TestPlanGatherShapes pins the plan surface: which queries concatenate,
// which re-fold, how AVG decomposes, and where hidden keys appear.
func TestPlanGatherShapes(t *testing.T) {
	stmt, err := sqlparse.Parse(`SELECT a, b FROM t WHERE a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanGather(stmt.(*sqlparse.SelectStmt))
	if err != nil || plan != nil {
		t.Fatalf("plain select: plan=%v err=%v, want nil/nil", plan, err)
	}

	plan = mustPlan(t, `SELECT a, b FROM t ORDER BY b DESC LIMIT 3`)
	if plan.Aggregate() || plan.ShardSQL != "" || !plan.Sorted() {
		t.Fatalf("concat-resort plan wrong: %+v", plan)
	}

	plan = mustPlan(t, `SELECT id, AVG(x) FROM t WHERE x > 0 GROUP BY id`)
	if !plan.Aggregate() {
		t.Fatal("AVG plan not aggregate")
	}
	want := `SELECT id, SUM(x), COUNT(x) FROM t WHERE (x > 0) GROUP BY id`
	if plan.ShardSQL != want {
		t.Fatalf("AVG shard SQL = %q, want %q", plan.ShardSQL, want)
	}
	if len(plan.Columns) != 2 || plan.Columns[0] != "id" || plan.Columns[1] != "AVG(x)" {
		t.Fatalf("AVG columns = %v", plan.Columns)
	}
	if _, err := sqlparse.Parse(plan.ShardSQL); err != nil {
		t.Fatalf("shard SQL does not re-parse: %v", err)
	}

	// A GROUP BY key missing from the select list ships as a hidden
	// scatter column so distinct groups stay distinct at the fold.
	plan = mustPlan(t, `SELECT COUNT(*) FROM t GROUP BY id`)
	if want := `SELECT COUNT(*), id FROM t GROUP BY id`; plan.ShardSQL != want {
		t.Fatalf("hidden-key shard SQL = %q, want %q", plan.ShardSQL, want)
	}
	if len(plan.Columns) != 1 || plan.visible != 1 || len(plan.finals) != 2 {
		t.Fatalf("hidden-key plan: cols=%v visible=%d finals=%d", plan.Columns, plan.visible, len(plan.finals))
	}

	// Shapes the single-node engine rejects are rejected at plan time
	// with the engine's own errors.
	for _, q := range []string{
		`SELECT x, COUNT(*) FROM t GROUP BY id`,
		`SELECT id FROM t GROUP BY id HAVING SUM(x) > 1`,
		`SELECT id, COUNT(*) FROM t GROUP BY id ORDER BY SUM(x)`,
		`SELECT *, COUNT(*) FROM t`,
	} {
		stmt, err := sqlparse.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := PlanGather(stmt.(*sqlparse.SelectStmt)); err == nil {
			t.Fatalf("PlanGather accepted %q", q)
		}
	}
}

// TestGatherFoldGrandTotalEmpty pins the SQL zero-row answer: a
// grand-total aggregate over shards that all returned nothing still
// yields one row (COUNT 0, everything else NULL).
func TestGatherFoldGrandTotalEmpty(t *testing.T) {
	plan := mustPlan(t, `SELECT COUNT(*), SUM(x), MIN(x), AVG(x) FROM t`)
	acc := NewGatherAccum(plan)
	if err := acc.Fold(nil, nil); err != nil {
		t.Fatal(err)
	}
	rows, err := acc.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("empty grand total: %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r[0].Kind != relational.KindInt || r[0].AsInt() != 0 {
		t.Fatalf("COUNT over nothing = %v, want 0", r[0])
	}
	for i := 1; i < 4; i++ {
		if !r[i].IsNull() {
			t.Fatalf("cell %d over nothing = %v, want NULL", i, r[i])
		}
	}
}

// --- fuzz scenario machinery ---

// fuzzSrc is a deterministic byte cursor; exhausted input yields zeros.
type fuzzSrc struct {
	data []byte
	i    int
}

func (s *fuzzSrc) next() byte {
	if s.i >= len(s.data) {
		return 0
	}
	v := s.data[s.i]
	s.i++
	return v
}

const (
	fzCountStar = iota
	fzCountV
	fzSumV
	fzMinV
	fzMaxV
	fzAvgV
	fzAggKinds
)

// fuzzScenario is a randomized-but-valid distributed aggregation: the
// SQL shape, the scatter column layout it implies, and domain-valid
// per-shard partial rows (NULL partials, NaN sums, empty shards,
// duplicate group keys across shards all reachable).
type fuzzScenario struct {
	nKeys   int  // selected group keys k0..k{n-1}
	hidden  bool // extra GROUP BY key kh not in the select list
	aggs    []int
	having  bool // HAVING COUNT(*) > havingN (aggs[0] is COUNT(*))
	havingN int
	order   int // 0 none, 1 ORDER BY first key, 2 ORDER BY COUNT(*) DESC
	limit   int // -1 none
	shards  [][]Row
}

func decodeScenario(s *fuzzSrc) *fuzzScenario {
	sc := &fuzzScenario{
		nKeys:  int(s.next()) % 3,
		hidden: s.next()%2 == 1,
	}
	nAggs := 1 + int(s.next())%3
	sc.aggs = append(sc.aggs, fzCountStar) // anchor for HAVING
	for i := 1; i < nAggs; i++ {
		// Never a second COUNT(*): duplicate output names make
		// HAVING/ORDER BY references ambiguous (on single node too).
		sc.aggs = append(sc.aggs, 1+int(s.next())%(fzAggKinds-1))
	}
	sc.having = s.next()%2 == 1
	sc.havingN = int(s.next()) % 4
	sc.order = int(s.next()) % 3
	if sc.order == 1 && sc.nKeys == 0 {
		sc.order = 2
	}
	sc.limit = -1
	if s.next()%2 == 1 {
		sc.limit = int(s.next()) % 5
	}

	// scatter layout: keys, then per-agg cells (AVG = sum+count pair),
	// then the hidden key.
	nShards := 1 + int(s.next())%4
	for sh := 0; sh < nShards; sh++ {
		nRows := int(s.next()) % 5
		var rows []Row
		for r := 0; r < nRows; r++ {
			var row Row
			for k := 0; k < sc.nKeys; k++ {
				row = append(row, relational.Int(int64(s.next()%3)))
			}
			for _, a := range sc.aggs {
				switch a {
				case fzCountStar, fzCountV:
					row = append(row, relational.Int(int64(s.next()%4)))
				case fzSumV, fzMinV, fzMaxV:
					row = append(row, fuzzPartialValue(s))
				default: // fzAvgV: SUM(v), COUNT(v) pair
					cnt := int64(s.next() % 4)
					if cnt == 0 {
						row = append(row, relational.Null, relational.Int(0))
					} else {
						row = append(row, fuzzNonNull(s), relational.Int(cnt))
					}
				}
			}
			if sc.hidden {
				row = append(row, relational.Int(int64(s.next()%2)))
			}
			rows = append(rows, row)
		}
		sc.shards = append(sc.shards, rows)
	}
	return sc
}

func fuzzPartialValue(s *fuzzSrc) relational.Value {
	switch s.next() % 5 {
	case 0:
		return relational.Null
	case 1:
		return relational.Float(math.NaN())
	case 2:
		return relational.Int(int64(s.next()) - 128)
	default:
		return relational.Float(float64(int64(s.next()) - 128))
	}
}

func fuzzNonNull(s *fuzzSrc) relational.Value {
	if s.next()%5 == 0 {
		return relational.Float(math.NaN())
	}
	return relational.Float(float64(int64(s.next()) - 128))
}

func (sc *fuzzScenario) sql() string {
	var items []string
	for k := 0; k < sc.nKeys; k++ {
		items = append(items, fmt.Sprintf("k%d", k))
	}
	for i, a := range sc.aggs {
		switch a {
		case fzCountStar:
			items = append(items, "COUNT(*)")
		case fzCountV:
			items = append(items, fmt.Sprintf("COUNT(v%d)", i))
		case fzSumV:
			items = append(items, fmt.Sprintf("SUM(v%d)", i))
		case fzMinV:
			items = append(items, fmt.Sprintf("MIN(v%d)", i))
		case fzMaxV:
			items = append(items, fmt.Sprintf("MAX(v%d)", i))
		default:
			items = append(items, fmt.Sprintf("AVG(v%d)", i))
		}
	}
	var group []string
	for k := 0; k < sc.nKeys; k++ {
		group = append(group, fmt.Sprintf("k%d", k))
	}
	if sc.hidden {
		group = append(group, "kh")
	}
	q := "SELECT " + strings.Join(items, ", ") + " FROM t"
	if len(group) > 0 {
		q += " GROUP BY " + strings.Join(group, ", ")
	}
	if sc.having {
		q += fmt.Sprintf(" HAVING COUNT(*) > %d", sc.havingN)
	}
	switch sc.order {
	case 1:
		q += " ORDER BY k0"
	case 2:
		q += " ORDER BY COUNT(*) DESC"
	}
	if sc.limit >= 0 {
		q += fmt.Sprintf(" LIMIT %d", sc.limit)
	}
	return q
}

// scatterWidth is the per-shard row arity the scenario's layout implies.
func (sc *fuzzScenario) scatterWidth() int {
	w := sc.nKeys
	for _, a := range sc.aggs {
		if a == fzAvgV {
			w += 2
		} else {
			w++
		}
	}
	if sc.hidden {
		w++
	}
	return w
}

// referenceFold is the decode-and-group oracle: flatten every shard's
// partial rows in shard order, group by the full key tuple, fold each
// group's cells positionally with SQL NULL semantics, finalize AVG,
// apply HAVING, sort fully (ORDER BY keys then group-key tiebreak) and
// truncate to LIMIT. Deliberately naive — no incremental map merge, no
// top-k — so it cannot share a bug with GatherAccum's structure.
func (sc *fuzzScenario) referenceFold() []Row {
	nKeysTotal := sc.nKeys
	if sc.hidden {
		nKeysTotal++
	}
	width := sc.scatterWidth()
	hiddenIdx := width - 1 // only valid when sc.hidden

	type group struct {
		keys []relational.Value
		rows []Row
	}
	var order []string
	groups := map[string]*group{}
	for _, shard := range sc.shards {
		for _, row := range shard {
			var kb strings.Builder
			var keys []relational.Value
			for k := 0; k < sc.nKeys; k++ {
				keys = append(keys, row[k])
			}
			if sc.hidden {
				keys = append(keys, row[hiddenIdx])
			}
			for _, kv := range keys {
				fmt.Fprintf(&kb, "%v|%s\x00", kv.Kind, kv.String())
			}
			g, ok := groups[kb.String()]
			if !ok {
				g = &group{keys: keys}
				groups[kb.String()] = g
				order = append(order, kb.String())
			}
			g.rows = append(g.rows, row)
		}
	}
	if nKeysTotal == 0 && len(groups) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	type out struct {
		keys []relational.Value
		row  Row
		cnt  int64 // aggs[0] = COUNT(*), for HAVING
	}
	var outs []*out
	for _, gk := range order {
		g := groups[gk]
		o := &out{keys: g.keys}
		for k := 0; k < sc.nKeys; k++ {
			o.row = append(o.row, g.keys[k])
		}
		col := sc.nKeys
		for ai, a := range sc.aggs {
			switch a {
			case fzCountStar, fzCountV:
				var n int64
				for _, r := range g.rows {
					n += r[col].AsInt()
				}
				if ai == 0 {
					o.cnt = n
				}
				o.row = append(o.row, relational.Int(n))
				col++
			case fzSumV:
				o.row = append(o.row, refSum(g.rows, col))
				col++
			case fzMinV, fzMaxV:
				acc := relational.Null
				for _, r := range g.rows {
					v := r[col]
					if v.IsNull() {
						continue
					}
					if acc.IsNull() {
						acc = v
						continue
					}
					cmp := relational.Compare(v, acc)
					if (a == fzMinV && cmp < 0) || (a == fzMaxV && cmp > 0) {
						acc = v
					}
				}
				o.row = append(o.row, acc)
				col++
			default: // fzAvgV
				sum := refSum(g.rows, col)
				var cnt int64
				for _, r := range g.rows {
					cnt += r[col+1].AsInt()
				}
				if cnt <= 0 || sum.IsNull() {
					o.row = append(o.row, relational.Null)
				} else {
					o.row = append(o.row, relational.Float(sum.AsFloat()/float64(cnt)))
				}
				col += 2
			}
		}
		if sc.having && o.cnt <= int64(sc.havingN) {
			continue
		}
		outs = append(outs, o)
	}

	countIdx := sc.nKeys // first agg column = COUNT(*)
	sort.SliceStable(outs, func(i, j int) bool {
		x, y := outs[i], outs[j]
		switch sc.order {
		case 1:
			if cmp := relational.Compare(x.row[0], y.row[0]); cmp != 0 {
				return cmp < 0
			}
		case 2:
			if cmp := relational.Compare(x.row[countIdx], y.row[countIdx]); cmp != 0 {
				return cmp > 0
			}
		}
		for k := range x.keys {
			if cmp := relational.Compare(x.keys[k], y.keys[k]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	rows := make([]Row, len(outs))
	for i, o := range outs {
		rows[i] = o.row
	}
	if sc.limit >= 0 && sc.limit < len(rows) {
		rows = rows[:sc.limit]
	}
	return rows
}

// refSum folds one column's SUM partials with the coordinator's
// promotion rule: NULLs skipped, any float partial makes the total a
// float, an all-int fold stays integral.
func refSum(rows []Row, col int) relational.Value {
	acc := relational.Null
	for _, r := range rows {
		v := r[col]
		if v.IsNull() {
			continue
		}
		if acc.IsNull() {
			acc = v
			continue
		}
		if acc.Kind == relational.KindFloat || v.Kind == relational.KindFloat {
			acc = relational.Float(acc.AsFloat() + v.AsFloat())
		} else {
			acc = relational.Int(acc.AsInt() + v.AsInt())
		}
	}
	return acc
}

func renderGatherRows(rows []Row) string {
	var b strings.Builder
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%v:%s", v.Kind, v.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FuzzGatherFold drives GatherAccum with randomized domain-valid
// partial rows — NULL partials, NaN sums, empty shards, duplicate group
// keys (dup TIME_BUCKETs across shards fold the same way), hidden keys,
// HAVING, ORDER BY, LIMIT — and checks the fold byte-for-byte against
// the decode-and-group reference.
func FuzzGatherFold(f *testing.F) {
	f.Add([]byte{})                                  // degenerate: grand total over zero shards
	f.Add([]byte{1, 1, 2, 3, 0, 1, 0, 1, 3, 2, 3})   // keys + HAVING + limit
	f.Add([]byte{0, 0, 3, 5, 1, 2, 2, 1, 2, 4, 2, 0, // AVG with zero-count pairs
		3, 1, 0, 1, 1, 0, 0, 2})
	f.Add([]byte{2, 1, 3, 5, 3, 4, 0, 0, 2, 1, 1, 4, // NaN-heavy, dup keys
		4, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{1, 0, 1, 0, 0, 0, 2, 1, 0, 4, 0, 4, 4, // empty shards then data
		0, 0, 0, 0, 3, 2, 2, 2, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := decodeScenario(&fuzzSrc{data: data})
		sql := sc.sql()
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("generated SQL %q does not parse: %v", sql, err)
		}
		plan, err := PlanGather(stmt.(*sqlparse.SelectStmt))
		if err != nil {
			t.Fatalf("PlanGather(%q): %v", sql, err)
		}
		if plan == nil || !plan.Aggregate() {
			t.Fatalf("PlanGather(%q): not an aggregate plan", sql)
		}
		if len(plan.kinds) != sc.scatterWidth() {
			t.Fatalf("scatter layout drifted: plan has %d columns, scenario %d (%q)",
				len(plan.kinds), sc.scatterWidth(), sql)
		}
		if _, err := sqlparse.Parse(plan.ShardSQL); err != nil {
			t.Fatalf("shard SQL %q does not re-parse: %v", plan.ShardSQL, err)
		}

		acc := NewGatherAccum(plan)
		for _, shard := range sc.shards {
			if err := acc.Fold(nil, shard); err != nil {
				t.Fatalf("fold(%q): %v", sql, err)
			}
		}
		got, err := acc.Result()
		if err != nil {
			t.Fatalf("result(%q): %v", sql, err)
		}
		// The reference emits exactly the visible columns (hidden keys
		// never enter its output rows).
		want := sc.referenceFold()
		if g, w := renderGatherRows(got), renderGatherRows(want); g != w {
			t.Fatalf("fold mismatch for %q\nshards: %v\ngot:\n%s\nwant:\n%s", sql, sc.shards, g, w)
		}
	})
}
