package sqlexec

import (
	"fmt"

	"odh/internal/relational"
	"odh/internal/sqlparse"
)

// aggState accumulates one aggregate function over one group.
type aggState struct {
	fn    string // COUNT, SUM, AVG, MIN, MAX
	star  bool
	count int64
	sum   float64
	min   relational.Value
	max   relational.Value
	any   bool
}

func (a *aggState) add(v relational.Value) {
	if a.star {
		a.count++
		return
	}
	if v.IsNull() {
		return // SQL aggregates skip NULLs
	}
	a.count++
	a.sum += v.AsFloat()
	if !a.any || relational.Compare(v, a.min) < 0 {
		a.min = v
	}
	if !a.any || relational.Compare(v, a.max) > 0 {
		a.max = v
	}
	a.any = true
}

func (a *aggState) result() relational.Value {
	switch a.fn {
	case "COUNT":
		return relational.Int(a.count)
	case "SUM":
		if a.count == 0 {
			return relational.Null
		}
		return relational.Float(a.sum)
	case "AVG":
		if a.count == 0 {
			return relational.Null
		}
		return relational.Float(a.sum / float64(a.count))
	case "MIN":
		if !a.any {
			return relational.Null
		}
		return a.min
	case "MAX":
		if !a.any {
			return relational.Null
		}
		return a.max
	}
	return relational.Null
}

// aggItem is one output column of an aggregation: either a group-by key
// (keyIdx >= 0) or an aggregate over an input expression.
type aggItem struct {
	keyIdx int // index into group keys; -1 for aggregates
	fn     string
	star   bool
	arg    boundExpr
	name   string
	kind   relational.Kind
}

// aggregateOp hash-groups its input and emits one row per group.
type aggregateOp struct {
	child Operator
	keys  []boundExpr // group-by key expressions
	items []aggItem
	cols  []ColMeta
	done  bool
	out   []Row
	i     int
}

func (a *aggregateOp) Columns() []ColMeta { return a.cols }
func (a *aggregateOp) BlobBytes() int64   { return a.child.BlobBytes() }

type groupEntry struct {
	keyVals []relational.Value
	states  []*aggState
}

func (a *aggregateOp) run() error {
	groups := make(map[string]*groupEntry)
	var order []string
	for {
		row, ok, err := a.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		keyVals := make([]relational.Value, len(a.keys))
		keyStr := ""
		for i, k := range a.keys {
			v, err := k.eval(row)
			if err != nil {
				return err
			}
			keyVals[i] = v
			keyStr += v.String() + "\x00" + fmt.Sprint(v.Kind) + "\x01"
		}
		g, ok := groups[keyStr]
		if !ok {
			g = &groupEntry{keyVals: keyVals}
			for _, item := range a.items {
				if item.keyIdx >= 0 {
					g.states = append(g.states, nil)
				} else {
					g.states = append(g.states, &aggState{fn: item.fn, star: item.star})
				}
			}
			groups[keyStr] = g
			order = append(order, keyStr)
		}
		for i, item := range a.items {
			if item.keyIdx >= 0 {
				continue
			}
			if item.star {
				g.states[i].add(relational.Null)
				continue
			}
			v, err := item.arg.eval(row)
			if err != nil {
				return err
			}
			g.states[i].add(v)
		}
	}
	// Grand-total aggregation with no keys yields one row even for empty
	// input.
	if len(a.keys) == 0 && len(order) == 0 {
		g := &groupEntry{}
		for _, item := range a.items {
			g.states = append(g.states, &aggState{fn: item.fn, star: item.star})
		}
		groups[""] = g
		order = append(order, "")
	}
	for _, key := range order {
		g := groups[key]
		row := make(Row, len(a.items))
		for i, item := range a.items {
			if item.keyIdx >= 0 {
				row[i] = g.keyVals[item.keyIdx]
			} else {
				row[i] = g.states[i].result()
			}
		}
		a.out = append(a.out, row)
	}
	a.done = true
	return nil
}

func (a *aggregateOp) Next() (Row, bool, error) {
	if !a.done {
		if err := a.run(); err != nil {
			return nil, false, err
		}
	}
	if a.i >= len(a.out) {
		return nil, false, nil
	}
	row := a.out[a.i]
	a.i++
	return row, true, nil
}

func (a *aggregateOp) Describe(indent string) string {
	return fmt.Sprintf("%sAggregate(%d keys, %d columns)\n%s",
		indent, len(a.keys), len(a.items), a.child.Describe(indent+"  "))
}

// hasAggregates reports whether any select item contains an aggregate call.
func hasAggregates(items []sqlparse.SelectItem) bool {
	for _, item := range items {
		if item.Expr != nil && containsAgg(item.Expr) {
			return true
		}
	}
	return false
}

func containsAgg(e sqlparse.Expr) bool {
	switch x := e.(type) {
	case *sqlparse.FuncExpr:
		if x.IsAggregate() {
			return true
		}
		for _, a := range x.Args {
			if containsAgg(a) {
				return true
			}
		}
		return false
	case *sqlparse.BinaryExpr:
		return containsAgg(x.L) || containsAgg(x.R)
	case *sqlparse.BetweenExpr:
		return containsAgg(x.Target) || containsAgg(x.Lo) || containsAgg(x.Hi)
	case *sqlparse.NotExpr:
		return containsAgg(x.Inner)
	}
	return false
}
