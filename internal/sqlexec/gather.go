// Distributed-aggregation planning and folding for scatter/gather
// queries. The cluster router hands PlanGather a parsed SELECT; the plan
// rewrites it into a per-shard partial-aggregate query (AVG decomposes
// into a SUM+COUNT pair so it composes exactly), and GatherAccum re-folds
// the shards' partial rows at the coordinator with SQL-parity NULL
// semantics, applies HAVING over the folded groups, and runs ORDER BY /
// LIMIT through a bounded top-k merge. It lives in this package so the
// coordinator binds HAVING and ORDER BY with the exact same resolver the
// single-node engine uses — a query that errors on one node errors
// identically on the cluster, and one that answers answers identically.
package sqlexec

import (
	"fmt"
	"sort"
	"strings"

	"odh/internal/relational"
	"odh/internal/sqlparse"
)

// foldKind says how one scatter column folds across shards.
type foldKind int

const (
	foldKey   foldKind = iota // group-by key: defines the group
	foldCount                 // partial counts sum
	foldSum                   // partial sums add, NULL partials skipped
	foldMin                   // relational minimum, NULL partials skipped
	foldMax                   // relational maximum, NULL partials skipped
)

// finalItem produces one output column of the gathered result from the
// folded scatter columns.
type finalItem struct {
	name string
	kind relational.Kind
	// src is the scatter column this item passes through; avg items use
	// the avgSum/avgCount pair instead and finalize as ΣSUM / ΣCOUNT.
	src              int
	avg              bool
	avgSum, avgCount int
}

// GatherPlan is a compiled scatter/gather strategy for one SELECT.
//
// Aggregate queries scatter ShardSQL — the original query stripped of
// HAVING/ORDER BY/LIMIT, its AVG items decomposed into SUM+COUNT
// partials, and every GROUP BY key included as a (possibly hidden)
// select column so the coordinator never collapses distinct groups. The
// per-shard query keeps the aggregate-only shape, so it still rides the
// storage-level summary pushdown on each node.
//
// Non-aggregate queries with ORDER BY/LIMIT keep their original text
// (ShardSQL == ""): each shard returns its local top rows, which always
// contain the global top-k, and the coordinator re-sorts and truncates.
type GatherPlan struct {
	// ShardSQL is the rewritten per-shard query; empty means "send the
	// original query text" (concatenate-and-resort mode).
	ShardSQL string
	// Columns names the final (visible) output columns.
	Columns []string

	aggregate bool
	kinds     []foldKind // per scatter column
	keyIdx    []int      // scatter columns that are group keys
	finals    []finalItem
	visible   int // finals[:visible] are the query's output columns

	having    boundExpr // bound against the visible output columns
	orderKeys []boundExpr
	orderDesc []bool
	limit     int // -1 when absent

	// concat-mode ORDER BY: bound lazily against the shard-reported
	// column names at first fold.
	orderItems []sqlparse.OrderItem
}

// Aggregate reports whether the plan re-folds partial aggregates (as
// opposed to concatenating and re-sorting complete rows).
func (p *GatherPlan) Aggregate() bool { return p.aggregate }

// Sorted reports whether the coordinator applies ORDER BY or LIMIT.
func (p *GatherPlan) Sorted() bool {
	return len(p.orderKeys) > 0 || len(p.orderItems) > 0 || p.limit >= 0
}

// PlanGather decides how sel composes across shards. A nil plan (with
// nil error) means plain row concatenation is already correct. An error
// means the shape does not compose and must be rejected — the message
// mirrors the single-node engine's own rejection wherever one exists, so
// cluster and single node fail identically.
func PlanGather(sel *sqlparse.SelectStmt) (*GatherPlan, error) {
	aggregated := hasAggregates(sel.Items) || len(sel.GroupBy) > 0
	if !aggregated {
		if len(sel.OrderBy) == 0 && sel.Limit < 0 {
			return nil, nil
		}
		// Complete rows concatenate; only the global ordering and bound
		// need coordinator work.
		return &GatherPlan{limit: sel.Limit, orderItems: sel.OrderBy}, nil
	}

	p := &GatherPlan{aggregate: true, limit: sel.Limit}
	groupStrs := make([]string, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		groupStrs[i] = strings.ToUpper(g.String())
	}
	keyCols := map[string]bool{} // uppercase group exprs present as scatter keys
	var scatterItems []string

	addScatter := func(item string, kind foldKind) int {
		scatterItems = append(scatterItems, item)
		p.kinds = append(p.kinds, kind)
		idx := len(p.kinds) - 1
		if kind == foldKey {
			p.keyIdx = append(p.keyIdx, idx)
		}
		return idx
	}

	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("sqlexec: SELECT * cannot be combined with aggregation")
		}
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
		}
		if fe, ok := item.Expr.(*sqlparse.FuncExpr); ok && fe.IsAggregate() {
			switch fe.Name {
			case "COUNT":
				src := addScatter(fe.String(), foldCount)
				p.finals = append(p.finals, finalItem{name: name, kind: relational.KindInt, src: src})
			case "SUM":
				src := addScatter(fe.String(), foldSum)
				p.finals = append(p.finals, finalItem{name: name, kind: relational.KindFloat, src: src})
			case "MIN":
				src := addScatter(fe.String(), foldMin)
				p.finals = append(p.finals, finalItem{name: name, kind: relational.KindFloat, src: src})
			case "MAX":
				src := addScatter(fe.String(), foldMax)
				p.finals = append(p.finals, finalItem{name: name, kind: relational.KindFloat, src: src})
			default: // AVG
				if fe.Star {
					return nil, fmt.Errorf("cluster: AVG(*) does not compose across shards")
				}
				arg := fe.Args[0].String()
				sumIdx := addScatter("SUM("+arg+")", foldSum)
				cntIdx := addScatter("COUNT("+arg+")", foldCount)
				p.finals = append(p.finals, finalItem{
					name: name, kind: relational.KindFloat,
					avg: true, avgSum: sumIdx, avgCount: cntIdx,
				})
			}
			continue
		}
		// Non-aggregate item must match a GROUP BY expression — the same
		// rule (and message) the single-node aggregate builder enforces.
		upper := strings.ToUpper(item.Expr.String())
		matched := false
		for _, gs := range groupStrs {
			if upper == gs {
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("sqlexec: %s must appear in GROUP BY or an aggregate", item.Expr)
		}
		src := addScatter(item.Expr.String(), foldKey)
		keyCols[upper] = true
		kind := relational.KindNull
		if fe, ok := item.Expr.(*sqlparse.FuncExpr); ok && fe.Name == "TIME_BUCKET" {
			kind = relational.KindTime
		}
		p.finals = append(p.finals, finalItem{name: name, kind: kind, src: src})
	}
	p.visible = len(p.finals)

	// GROUP BY keys absent from the select list still define groups: ship
	// them as hidden scatter columns so the fold keeps distinct groups
	// distinct, then project them away at the end.
	for i, g := range sel.GroupBy {
		if keyCols[groupStrs[i]] {
			continue
		}
		src := addScatter(g.String(), foldKey)
		p.finals = append(p.finals, finalItem{name: g.String(), src: src})
	}

	visibleCols := make([]ColMeta, p.visible)
	p.Columns = make([]string, p.visible)
	for i, fi := range p.finals[:p.visible] {
		visibleCols[i] = ColMeta{Name: fi.name, Kind: fi.kind}
		p.Columns[i] = fi.name
	}

	// HAVING and ORDER BY bind against the visible output columns with
	// the single-node resolver: a reference the engine would reject (an
	// aggregate not in the select list, an unknown column) is rejected
	// here with the same error instead of silently widening the dialect.
	if sel.Having != nil {
		bound, err := bind(rewriteAggRefs(sel.Having, visibleCols), visibleCols)
		if err != nil {
			return nil, err
		}
		p.having = bound
	}
	for _, o := range sel.OrderBy {
		bound, err := bind(rewriteAggRefs(o.Expr, visibleCols), visibleCols)
		if err != nil {
			return nil, err
		}
		p.orderKeys = append(p.orderKeys, bound)
		p.orderDesc = append(p.orderDesc, o.Desc)
	}

	p.ShardSQL = renderShardSQL(sel, scatterItems)
	return p, nil
}

// renderShardSQL renders the per-shard partial-aggregate query: the
// rewritten select list over the original FROM/WHERE/GROUP BY, with the
// post-aggregate clauses stripped (they apply to folded groups only).
func renderShardSQL(sel *sqlparse.SelectStmt, items []string) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(strings.Join(items, ", "))
	sb.WriteString(" FROM ")
	for i, tr := range sel.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(tr.Name)
		if tr.Alias != "" {
			sb.WriteString(" ")
			sb.WriteString(tr.Alias)
		}
	}
	if sel.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(sel.Where.String())
	}
	if len(sel.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range sel.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	return sb.String()
}

// gatherGroup is one group's folded state at the coordinator.
type gatherGroup struct {
	keys  []relational.Value
	cells []relational.Value
}

// GatherAccum folds per-shard partial rows under a GatherPlan. Fold may
// be called once per shard in any order; Result finalizes.
type GatherAccum struct {
	plan   *GatherPlan
	groups map[string]*gatherGroup
	order  []string // group keys in first-arrival order (for determinism)

	// concat mode
	rows        []Row
	concatKeys  []boundExpr
	concatDesc  []bool
	concatBound bool
}

// NewGatherAccum builds an accumulator for plan.
func NewGatherAccum(plan *GatherPlan) *GatherAccum {
	return &GatherAccum{plan: plan, groups: map[string]*gatherGroup{}}
}

// Fold merges one shard's rows. cols is the shard-reported column list;
// aggregate plans fold positionally and ignore it, concat plans use it
// to bind ORDER BY once.
func (a *GatherAccum) Fold(cols []string, rows []Row) error {
	if !a.plan.aggregate {
		return a.foldConcat(cols, rows)
	}
	for _, row := range rows {
		if len(row) != len(a.plan.kinds) {
			return fmt.Errorf("cluster: aggregate gather: shard row has %d columns, plan has %d", len(row), len(a.plan.kinds))
		}
		var kb strings.Builder
		for _, i := range a.plan.keyIdx {
			kb.WriteString(row[i].String())
			kb.WriteByte('\x00')
			fmt.Fprint(&kb, row[i].Kind)
			kb.WriteByte('\x01')
		}
		key := kb.String()
		g, ok := a.groups[key]
		if !ok {
			g = &gatherGroup{cells: make([]relational.Value, len(row))}
			copy(g.cells, row)
			for _, i := range a.plan.keyIdx {
				g.keys = append(g.keys, row[i])
			}
			a.groups[key] = g
			a.order = append(a.order, key)
			continue
		}
		for i, kind := range a.plan.kinds {
			g.cells[i] = mergeCell(kind, g.cells[i], row[i])
		}
	}
	return nil
}

func (a *GatherAccum) foldConcat(cols []string, rows []Row) error {
	if !a.concatBound && len(a.plan.orderItems) > 0 {
		meta := make([]ColMeta, len(cols))
		for i, c := range cols {
			meta[i] = ColMeta{Name: c}
		}
		for _, o := range a.plan.orderItems {
			b, err := bind(o.Expr, meta)
			if err != nil {
				return fmt.Errorf("cluster: ORDER BY %s does not compose across shards: %w", o.Expr, err)
			}
			a.concatKeys = append(a.concatKeys, b)
			a.concatDesc = append(a.concatDesc, o.Desc)
		}
		a.concatBound = true
	}
	a.rows = append(a.rows, rows...)
	return nil
}

// mergeCell folds one shard's partial aggregate cell into the running
// one. NULL partials (an aggregate over an empty shard subset) are
// skipped; COUNT partials sum, SUM partials add kind-aware, MIN/MAX
// compare with the relational ordering.
func mergeCell(kind foldKind, acc, next relational.Value) relational.Value {
	switch kind {
	case foldKey:
		return acc
	case foldCount:
		return relational.Int(acc.AsInt() + next.AsInt())
	case foldSum:
		if next.IsNull() {
			return acc
		}
		if acc.IsNull() {
			return next
		}
		if acc.Kind == relational.KindFloat || next.Kind == relational.KindFloat {
			return relational.Float(acc.AsFloat() + next.AsFloat())
		}
		return relational.Int(acc.AsInt() + next.AsInt())
	case foldMin:
		if next.IsNull() {
			return acc
		}
		if acc.IsNull() || relational.Compare(next, acc) < 0 {
			return next
		}
		return acc
	default: // foldMax
		if next.IsNull() {
			return acc
		}
		if acc.IsNull() || relational.Compare(next, acc) > 0 {
			return next
		}
		return acc
	}
}

// defaultCell is the SQL zero-shard answer for one scatter column: COUNT
// of nothing is 0, every other aggregate of nothing is NULL.
func defaultCell(kind foldKind) relational.Value {
	if kind == foldCount {
		return relational.Int(0)
	}
	return relational.Null
}

// Result finalizes the gather: AVG pairs divide (NULL when the fold saw
// zero non-NULL values), HAVING filters the folded groups, ORDER BY runs
// over the final values with a bounded top-k merge when LIMIT is set,
// and hidden columns are projected away.
func (a *GatherAccum) Result() ([]Row, error) {
	if !a.plan.aggregate {
		return a.resultConcat()
	}
	// Grand-total aggregation yields one row even when no shard
	// contributed one (every shard empty, or all unavailable rows were
	// withheld by the caller before folding).
	if len(a.plan.keyIdx) == 0 && len(a.groups) == 0 {
		cells := make([]relational.Value, len(a.plan.kinds))
		for i, k := range a.plan.kinds {
			cells[i] = defaultCell(k)
		}
		a.groups[""] = &gatherGroup{cells: cells}
		a.order = append(a.order, "")
	}

	type finalRow struct {
		keys []relational.Value
		row  Row
		sort []relational.Value // pre-evaluated ORDER BY key values
	}
	finals := make([]*finalRow, 0, len(a.groups))
	for _, key := range a.order {
		g := a.groups[key]
		row := make(Row, len(a.plan.finals))
		for i, fi := range a.plan.finals {
			if !fi.avg {
				row[i] = g.cells[fi.src]
				continue
			}
			cnt := g.cells[fi.avgCount].AsInt()
			sum := g.cells[fi.avgSum]
			if cnt <= 0 || sum.IsNull() {
				row[i] = relational.Null
			} else {
				row[i] = relational.Float(sum.AsFloat() / float64(cnt))
			}
		}
		if a.plan.having != nil {
			v, err := a.plan.having.eval(row)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		fr := &finalRow{keys: g.keys, row: row}
		for _, k := range a.plan.orderKeys {
			v, err := k.eval(row)
			if err != nil {
				return nil, err
			}
			fr.sort = append(fr.sort, v)
		}
		finals = append(finals, fr)
	}

	// Total order: the ORDER BY keys, then the group key as tiebreak (so
	// ties at a LIMIT cutoff resolve deterministically regardless of
	// shard arrival order). Without ORDER BY, group-key order alone.
	less := func(x, y *finalRow) bool {
		for k := range a.plan.orderKeys {
			cmp := compareCoerced(x.sort[k], y.sort[k])
			if cmp == 0 {
				continue
			}
			if a.plan.orderDesc[k] {
				return cmp > 0
			}
			return cmp < 0
		}
		for k := range x.keys {
			if cmp := relational.Compare(x.keys[k], y.keys[k]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	}

	if a.plan.limit >= 0 && a.plan.limit < len(finals) && len(a.plan.orderKeys) > 0 {
		finals = topK(finals, a.plan.limit, less)
	} else {
		sort.SliceStable(finals, func(i, j int) bool { return less(finals[i], finals[j]) })
		if a.plan.limit >= 0 && a.plan.limit < len(finals) {
			finals = finals[:a.plan.limit]
		}
	}

	out := make([]Row, len(finals))
	for i, fr := range finals {
		out[i] = fr.row[:a.plan.visible]
	}
	return out, nil
}

func (a *GatherAccum) resultConcat() ([]Row, error) {
	rows := a.rows
	if len(a.concatKeys) > 0 {
		var evalErr error
		sortVals := make([][]relational.Value, len(rows))
		for i, row := range rows {
			sortVals[i] = make([]relational.Value, len(a.concatKeys))
			for k, key := range a.concatKeys {
				v, err := key.eval(row)
				if err != nil {
					return nil, err
				}
				sortVals[i][k] = v
			}
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool {
			for k := range a.concatKeys {
				cmp := compareCoerced(sortVals[idx[x]][k], sortVals[idx[y]][k])
				if cmp == 0 {
					continue
				}
				if a.concatDesc[k] {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		if evalErr != nil {
			return nil, evalErr
		}
		sorted := make([]Row, len(rows))
		for i, j := range idx {
			sorted[i] = rows[j]
		}
		rows = sorted
	}
	if a.plan.limit >= 0 && a.plan.limit < len(rows) {
		rows = rows[:a.plan.limit]
	}
	return rows, nil
}

// topK keeps the k least rows under less without sorting the full set: a
// max-heap of the current survivors whose root is the worst kept row.
// The result comes back fully sorted.
func topK[T any](items []*T, k int, less func(x, y *T) bool) []*T {
	if k <= 0 {
		return nil
	}
	heap := make([]*T, 0, k)
	// heap property: heap[parent] is NOT less than heap[child] (max-heap
	// under less), so heap[0] is the worst survivor.
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heap[parent], heap[i]) {
				return
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && less(heap[big], heap[l]) {
				big = l
			}
			if r < len(heap) && less(heap[big], heap[r]) {
				big = r
			}
			if big == i {
				return
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	for _, it := range items {
		if len(heap) < k {
			heap = append(heap, it)
			siftUp(len(heap) - 1)
			continue
		}
		if less(it, heap[0]) {
			heap[0] = it
			siftDown()
		}
	}
	sort.SliceStable(heap, func(i, j int) bool { return less(heap[i], heap[j]) })
	return heap
}
