package sqlexec

import (
	"fmt"
	"math"
	"strings"

	"odh/internal/model"
	"odh/internal/relational"
	"odh/internal/sqlparse"
	"odh/internal/tsstore"
)

// Aggregate pushdown rewrites COUNT/SUM/AVG/MIN/MAX over a single virtual
// table into a tsstore summary scan: blobs fully inside the window whose
// header summary proves every predicate fold from the header alone, so
// only boundary blobs are column-decoded. The rewrite fires only when it
// is exactly equivalent to the scan + filter + hash-aggregate plan —
// every WHERE conjunct must be absorbed losslessly into the AggSpec, and
// every select item must be a supported aggregate or a group key.

// aggPushKind enumerates how one output column is materialized from an
// AggGroup.
type aggPushKind uint8

const (
	pushKeyID aggPushKind = iota
	pushKeyBucket
	pushCountStar
	pushCount // COUNT(tag)
	pushSum
	pushAvg
	pushMin
	pushMax
)

type aggPushItem struct {
	kind aggPushKind
	tag  int // tag ordinal for per-tag aggregates
}

// groupKeyKind classifies a GROUP BY expression the pushdown supports.
type groupKeyKind uint8

const (
	keyNone groupKeyKind = iota
	keyID                // GROUP BY <id column>
	keyBucket            // GROUP BY TIME_BUCKET(w, <ts column>)
)

// tryAggPushdown attempts the rewrite; ok is false when the query shape
// is not exactly expressible as an AggSpec (the caller falls back to the
// generic plan, which also surfaces any semantic errors).
func (pc *planContext) tryAggPushdown() (Operator, bool) {
	if pc.e.aggPushdownOff.Load() {
		return nil, false
	}
	if len(pc.sources) != 1 || !pc.sources[0].isVirtual() {
		return nil, false
	}
	src := pc.sources[0]
	schema := src.schema
	acc := pc.access[src.binding()]

	spec := tsstore.AggSpec{
		T1:    math.MinInt64,
		T2:    math.MaxInt64,
		NTags: len(schema.Tags),
	}
	var idEq *int64
	var idList []int64
	for _, conj := range acc.conjuncts {
		if !pc.absorbConjunct(conj, schema, &spec, &idEq, &idList) {
			return nil, false
		}
	}
	if idEq != nil && idList != nil {
		return nil, false // combined id pushdowns: let the generic plan sort it out
	}

	// GROUP BY: only the id column and one TIME_BUCKET grid are liftable.
	keyKinds := make([]groupKeyKind, len(pc.stmt.GroupBy))
	for i, g := range pc.stmt.GroupBy {
		k := pc.classifyGroupKey(g, schema)
		if k == keyNone {
			return nil, false
		}
		if k == keyBucket {
			w, ok := bucketWidth(g)
			if !ok || (spec.BucketMs != 0 && spec.BucketMs != w) {
				return nil, false
			}
			spec.BucketMs = w
		} else {
			spec.ByID = true
		}
		keyKinds[i] = k
	}

	// Select items: group keys or direct aggregate calls over tags.
	groupStrs := make([]string, len(pc.stmt.GroupBy))
	for i, g := range pc.stmt.GroupBy {
		groupStrs[i] = strings.ToUpper(g.String())
	}
	inCols := pc.e.sourceColumns(src)
	var items []aggPushItem
	var cols []ColMeta
	for _, item := range pc.stmt.Items {
		if item.Star {
			return nil, false
		}
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
		}
		push, ok := pc.classifyAggItem(item.Expr, schema, groupStrs, keyKinds)
		if !ok {
			return nil, false
		}
		items = append(items, push)
		cols = append(cols, ColMeta{Name: name, Kind: exprKind(item.Expr, inCols)})
	}

	spec.WantTags = pc.wantTags[src.binding()]

	// Cost: only boundary blobs (a window edge cuts at most one blob per
	// record stream, two edges per stream) are decoded; everything else
	// folds from summaries. The parallel degree follows the decoded bytes,
	// not the swept bytes — fanning out a fold-only scan buys nothing.
	stats := pc.e.cat.SchemaStats(schema.ID)
	frac := windowFraction(stats, spec.T1, spec.T2)
	nSources := math.Max(float64(pc.e.cat.SourceCount(schema.ID)), 1)
	avgBlob := 0.0
	if stats.BatchCount > 0 {
		avgBlob = float64(stats.BlobBytes) / float64(stats.BatchCount)
	}
	var estSwept, streams float64
	switch {
	case idEq != nil:
		estSwept = float64(stats.BlobBytes) / nSources * frac
		streams = 1
	case idList != nil:
		estSwept = float64(stats.BlobBytes) / nSources * frac * float64(len(idList))
		streams = float64(len(idList))
	default:
		estSwept = float64(stats.BlobBytes) * frac
		streams = nSources
	}
	estDecoded := math.Min(estSwept, 2*streams*avgBlob)
	subNote := ""
	if spec.BucketMs > 0 {
		// A TIME_BUCKET grid adds an interior bucket edge every BucketMs
		// across the effective window, and every edge cuts one straddling
		// blob per stream that must be decoded — unless the store writes
		// sub-bucket summaries at a base this width is a multiple of, in
		// which case straddlers fold from the mini-summaries and only the
		// two window edges remain decoded.
		if base := pc.e.ts.SubBucketMs(); base > 0 && spec.BucketMs%base == 0 {
			subNote = fmt.Sprintf(", sub-bucket foldable @%dms", base)
		} else if stats.PointCount > 0 {
			lo := math.Max(float64(spec.T1), float64(stats.FirstTS))
			hi := math.Min(float64(spec.T2), float64(stats.LastTS))
			if hi > lo {
				edges := (hi - lo) / float64(spec.BucketMs)
				estDecoded = math.Min(estSwept, estDecoded+edges*streams*avgBlob)
			}
		}
	}
	pct := 0.0
	if estSwept > 0 {
		pct = 100 * (1 - estDecoded/estSwept)
	}
	note := fmt.Sprintf("agg-pushdown est-decoded=%.0fB of %.0fB swept blob bytes (%.0f%% summary-folded%s)",
		estDecoded, estSwept, pct, subNote)
	if pc.planNote == "" {
		pc.planNote = note
	} else {
		pc.planNote += "\n" + note
	}
	spec.Opts = tsstore.ScanOptions{Workers: pc.e.parallelDegree(estDecoded), Ctx: pc.ctx}

	op := &aggPushdownOp{
		store:  pc.e.ts,
		schema: schema,
		spec:   spec,
		items:  items,
		cols:   cols,
	}
	if idEq != nil {
		op.source = *idEq
		op.historical = true
	}
	op.sources = idList
	return op, true
}

// absorbConjunct translates one WHERE conjunct into AggSpec fields. It
// must be exact: if the conjunct cannot be represented without loosening
// (e.g. a fractional time literal that asTimeMs would truncate), it
// reports false and the pushdown is abandoned.
func (pc *planContext) absorbConjunct(conj sqlparse.Expr, schema *model.SchemaType, spec *tsstore.AggSpec, idEq **int64, idList *[]int64) bool {
	switch x := conj.(type) {
	case *sqlparse.BetweenExpr:
		col, ok := x.Target.(*sqlparse.ColumnRef)
		if !ok {
			return false
		}
		loLit, hiLit := literalValue(x.Lo), literalValue(x.Hi)
		if loLit == nil || hiLit == nil {
			return false
		}
		if strings.EqualFold(col.Name, schema.TSColumn()) {
			lo, ok1 := exactTimeMs(*loLit)
			hi, ok2 := exactTimeMs(*hiLit)
			if !ok1 || !ok2 || hi == math.MaxInt64 {
				return false
			}
			tightenWindow(spec, lo, hi+1)
			return true
		}
		if tag := schema.TagIndex(matchTagName(schema, col.Name)); tag >= 0 {
			lo, ok1 := exactTagLit(*loLit)
			hi, ok2 := exactTagLit(*hiLit)
			if !ok1 || !ok2 {
				return false
			}
			spec.Preds = append(spec.Preds, tsstore.TagPred{Tag: tag, Lo: lo, Hi: hi})
			return true
		}
		return false
	case *sqlparse.InExpr:
		col, ok := x.Target.(*sqlparse.ColumnRef)
		if !ok || !strings.EqualFold(col.Name, schema.IDColumn()) {
			return false
		}
		seen := make(map[int64]bool, len(x.List))
		ids := make([]int64, 0, len(x.List))
		for _, item := range x.List {
			lit := literalValue(item)
			if lit == nil {
				return false
			}
			id, okID := exactTimeMs(*lit)
			if !okID {
				return false
			}
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 || *idList != nil {
			return false
		}
		*idList = ids
		return true
	case *sqlparse.BinaryExpr:
		col, okCol := x.L.(*sqlparse.ColumnRef)
		lit := literalValue(x.R)
		op := x.Op
		if !okCol || lit == nil {
			if colR, okR := x.R.(*sqlparse.ColumnRef); okR {
				if litL := literalValue(x.L); litL != nil {
					col, lit, okCol = colR, litL, true
					op = mirrorOp(op)
				}
			}
		}
		if !okCol || lit == nil {
			return false
		}
		switch {
		case strings.EqualFold(col.Name, schema.TSColumn()):
			ms, convertible := exactTimeMs(*lit)
			if !convertible {
				return false
			}
			switch op {
			case ">=":
				tightenWindow(spec, ms, math.MaxInt64)
			case ">":
				if ms == math.MaxInt64 {
					return false
				}
				tightenWindow(spec, ms+1, math.MaxInt64)
			case "<=":
				if ms == math.MaxInt64 {
					return false
				}
				tightenWindow(spec, math.MinInt64, ms+1)
			case "<":
				tightenWindow(spec, math.MinInt64, ms)
			case "=":
				if ms == math.MaxInt64 {
					return false
				}
				tightenWindow(spec, ms, ms+1)
			default:
				return false
			}
			return true
		case strings.EqualFold(col.Name, schema.IDColumn()):
			if op != "=" {
				return false
			}
			id, okID := exactTimeMs(*lit)
			if !okID || (*idEq != nil && **idEq != id) {
				return false
			}
			*idEq = &id
			return true
		default:
			tag := schema.TagIndex(matchTagName(schema, col.Name))
			if tag < 0 {
				return false
			}
			v, okV := exactTagLit(*lit)
			if !okV {
				return false
			}
			p := tsstore.TagPred{Tag: tag, Lo: math.Inf(-1), Hi: math.Inf(1)}
			switch op {
			case "=":
				p.Lo, p.Hi = v, v
			case "<":
				p.Hi, p.HiStrict = v, true
			case "<=":
				p.Hi = v
			case ">":
				p.Lo, p.LoStrict = v, true
			case ">=":
				p.Lo = v
			default:
				return false
			}
			spec.Preds = append(spec.Preds, p)
			return true
		}
	}
	return false
}

func tightenWindow(spec *tsstore.AggSpec, t1, t2 int64) {
	if t1 > spec.T1 {
		spec.T1 = t1
	}
	if t2 < spec.T2 {
		spec.T2 = t2
	}
}

// exactTimeMs converts a literal to milliseconds only when the conversion
// is lossless — unlike asTimeMs, a fractional float is rejected rather
// than truncated, because the absorbed bound replaces the re-checking
// filter.
func exactTimeMs(v relational.Value) (int64, bool) {
	switch v.Kind {
	case relational.KindTime, relational.KindInt:
		return v.I, true
	case relational.KindFloat:
		if v.F != math.Trunc(v.F) || v.F < -9.2e18 || v.F > 9.2e18 {
			return 0, false
		}
		return int64(v.F), true
	case relational.KindString:
		if ms, ok := ParseTimestamp(v.S); ok {
			return ms, true
		}
	}
	return 0, false
}

// exactTagLit converts a literal to the float64 a tag comparison would
// see. Integers beyond 2^53 lose precision in the conversion, so they are
// rejected.
func exactTagLit(v relational.Value) (float64, bool) {
	switch v.Kind {
	case relational.KindInt:
		if v.I > 1<<53 || v.I < -(1<<53) {
			return 0, false
		}
		return float64(v.I), true
	case relational.KindFloat:
		if math.IsNaN(v.F) {
			return 0, false
		}
		return v.F, true
	}
	return 0, false
}

// classifyGroupKey recognizes the two liftable GROUP BY shapes.
func (pc *planContext) classifyGroupKey(g sqlparse.Expr, schema *model.SchemaType) groupKeyKind {
	switch x := g.(type) {
	case *sqlparse.ColumnRef:
		if strings.EqualFold(x.Name, schema.IDColumn()) {
			return keyID
		}
	case *sqlparse.FuncExpr:
		if x.Name != "TIME_BUCKET" || x.Star || len(x.Args) != 2 {
			return keyNone
		}
		if _, ok := bucketWidth(x); !ok {
			return keyNone
		}
		if col, ok := x.Args[1].(*sqlparse.ColumnRef); ok && strings.EqualFold(col.Name, schema.TSColumn()) {
			return keyBucket
		}
	}
	return keyNone
}

// bucketWidth extracts a positive integral TIME_BUCKET width literal.
func bucketWidth(g sqlparse.Expr) (int64, bool) {
	fe, ok := g.(*sqlparse.FuncExpr)
	if !ok || len(fe.Args) != 2 {
		return 0, false
	}
	lit := literalValue(fe.Args[0])
	if lit == nil {
		return 0, false
	}
	w, ok := exactTimeMs(*lit)
	if !ok || w <= 0 {
		return 0, false
	}
	return w, true
}

// classifyAggItem maps one select item onto an AggGroup field.
func (pc *planContext) classifyAggItem(e sqlparse.Expr, schema *model.SchemaType, groupStrs []string, keyKinds []groupKeyKind) (aggPushItem, bool) {
	if fe, ok := e.(*sqlparse.FuncExpr); ok && fe.IsAggregate() {
		if fe.Star {
			if fe.Name != "COUNT" {
				return aggPushItem{}, false
			}
			return aggPushItem{kind: pushCountStar}, true
		}
		col, ok := fe.Args[0].(*sqlparse.ColumnRef)
		if !ok {
			return aggPushItem{}, false
		}
		tag := schema.TagIndex(matchTagName(schema, col.Name))
		if tag < 0 {
			return aggPushItem{}, false // id/ts aggregates stay on the generic path
		}
		switch fe.Name {
		case "COUNT":
			return aggPushItem{kind: pushCount, tag: tag}, true
		case "SUM":
			return aggPushItem{kind: pushSum, tag: tag}, true
		case "AVG":
			return aggPushItem{kind: pushAvg, tag: tag}, true
		case "MIN":
			return aggPushItem{kind: pushMin, tag: tag}, true
		case "MAX":
			return aggPushItem{kind: pushMax, tag: tag}, true
		}
		return aggPushItem{}, false
	}
	// Non-aggregate items must name a GROUP BY key (buildAggregate's rule).
	str := strings.ToUpper(e.String())
	for i, gs := range groupStrs {
		if str == gs {
			if keyKinds[i] == keyID {
				return aggPushItem{kind: pushKeyID}, true
			}
			return aggPushItem{kind: pushKeyBucket}, true
		}
	}
	return aggPushItem{}, false
}

// aggPushdownOp runs one tsstore aggregate scan and emits its groups as
// rows. It replaces the scan + filter + hash-aggregate subtree.
type aggPushdownOp struct {
	store  *tsstore.Store
	schema *model.SchemaType
	spec   tsstore.AggSpec
	items  []aggPushItem
	cols   []ColMeta

	historical bool
	source     int64
	sources    []int64 // id IN (...) mode; empty + !historical = slice mode

	res  *tsstore.AggResult
	rows []Row
	i    int
}

func (a *aggPushdownOp) Columns() []ColMeta { return a.cols }

// BlobBytes reports only the bytes the scan actually decoded (boundary
// blobs + buffered rows). The bytes answered from summaries are the whole
// point of the pushdown and must not be claimed as read — EXPLAIN cost
// comparisons and Table 8-style per-byte throughput would otherwise see
// the folded bytes twice.
func (a *aggPushdownOp) BlobBytes() int64 {
	if a.res == nil {
		return 0
	}
	return a.res.BlobBytesRead
}

func (a *aggPushdownOp) run() error {
	// Router metadata lookups mirror the scan path it replaces.
	cat := a.store.Catalog()
	var err error
	switch {
	case a.historical:
		cat.RouterLookup([]int64{a.source})
		a.res, err = a.store.AggregateHistorical(a.source, a.spec)
	case len(a.sources) > 0:
		cat.RouterLookup(a.sources)
		a.res, err = a.store.AggregateMulti(a.sources, a.spec)
	default:
		cat.RouterLookup(cat.SourcesBySchema(a.schema.ID))
		a.res, err = a.store.AggregateSlice(a.schema.ID, a.spec)
	}
	if err != nil {
		return err
	}
	for gi := range a.res.Groups {
		a.rows = append(a.rows, a.materialize(&a.res.Groups[gi]))
	}
	// Grand-total aggregation yields one row even for empty input.
	if !a.spec.ByID && a.spec.BucketMs == 0 && len(a.rows) == 0 {
		empty := tsstore.AggGroup{
			NonNull: make([]int64, a.spec.NTags),
			Sum:     make([]float64, a.spec.NTags),
			Min:     make([]float64, a.spec.NTags),
			Max:     make([]float64, a.spec.NTags),
		}
		for t := range empty.Min {
			empty.Min[t] = math.Inf(1)
			empty.Max[t] = math.Inf(-1)
		}
		a.rows = append(a.rows, a.materialize(&empty))
	}
	return nil
}

// materialize renders one group with the executor's SQL semantics:
// aggregates over zero non-NULL values are NULL (COUNT is 0).
func (a *aggPushdownOp) materialize(g *tsstore.AggGroup) Row {
	row := make(Row, len(a.items))
	for i, item := range a.items {
		switch item.kind {
		case pushKeyID:
			row[i] = relational.Int(g.ID)
		case pushKeyBucket:
			row[i] = relational.Time(g.Bucket)
		case pushCountStar:
			row[i] = relational.Int(g.Rows)
		case pushCount:
			row[i] = relational.Int(g.NonNull[item.tag])
		case pushSum:
			if g.NonNull[item.tag] == 0 {
				row[i] = relational.Null
			} else {
				row[i] = relational.Float(g.Sum[item.tag])
			}
		case pushAvg:
			if g.NonNull[item.tag] == 0 {
				row[i] = relational.Null
			} else {
				row[i] = relational.Float(g.Sum[item.tag] / float64(g.NonNull[item.tag]))
			}
		case pushMin:
			if g.NonNull[item.tag] == 0 {
				row[i] = relational.Null
			} else {
				row[i] = relational.Float(g.Min[item.tag])
			}
		case pushMax:
			if g.NonNull[item.tag] == 0 {
				row[i] = relational.Null
			} else {
				row[i] = relational.Float(g.Max[item.tag])
			}
		}
	}
	return row
}

func (a *aggPushdownOp) Next() (Row, bool, error) {
	if a.res == nil {
		if err := a.run(); err != nil {
			return nil, false, err
		}
	}
	if a.i >= len(a.rows) {
		return nil, false, nil
	}
	row := a.rows[a.i]
	a.i++
	return row, true, nil
}

func (a *aggPushdownOp) Describe(indent string) string {
	mode := "slice"
	target := a.schema.Name
	if a.historical {
		mode = "historical"
		target = fmt.Sprintf("%s, id=%d", a.schema.Name, a.source)
	} else if len(a.sources) > 0 {
		mode = "multi"
		target = fmt.Sprintf("%s, %d ids", a.schema.Name, len(a.sources))
	}
	par := ""
	if a.spec.Opts.Workers > 1 {
		par = fmt.Sprintf(", parallel=%d", a.spec.Opts.Workers)
	}
	grp := ""
	if a.spec.ByID {
		grp += ", by-id"
	}
	if a.spec.BucketMs > 0 {
		grp += fmt.Sprintf(", bucket=%dms", a.spec.BucketMs)
	}
	return fmt.Sprintf("%sAggPushdown(%s, %s, ts=[%d,%d), %d preds%s%s)\n",
		indent, target, mode, a.spec.T1, a.spec.T2, len(a.spec.Preds), grp, par)
}
