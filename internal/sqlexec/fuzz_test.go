package sqlexec

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzQueryPipeline pushes arbitrary SQL through sqlparse and the
// executor over a populated historian with parallel scans and the blob
// cache enabled. Two invariants: the pipeline never panics (errors are
// fine), and when the input happens to be a well-formed virtual-table
// range query, every returned timestamp stays inside the window.
func FuzzQueryPipeline(f *testing.F) {
	e := newEngine(f)
	e.SetQueryWorkers(4)
	tdFixture(f, e)

	f.Add(`SELECT T_DTS, T_TRADE_PRICE FROM TRADE WHERE T_CA_ID = 3 AND T_DTS >= 1000000 AND T_DTS < 1002000`)
	f.Add(`SELECT * FROM TRADE WHERE T_CA_ID IN (1, 2, 9)`)
	f.Add(`SELECT CA_NAME, COUNT(*) FROM ACCOUNT GROUP BY CA_NAME`)
	f.Add(`SELECT C_L_NAME, SUM(T_TRADE_PRICE) FROM TRADE, ACCOUNT, CUSTOMER WHERE T_CA_ID = CA_ID AND CA_C_ID = C_ID GROUP BY C_L_NAME`)
	f.Add(`EXPLAIN SELECT * FROM TRADE WHERE T_CA_ID = 1`)
	f.Add(`SELECT MIN(T_DTS), MAX(T_CHRG) FROM TRADE WHERE T_CA_ID = 5 AND T_DTS < 1001000`)
	f.Add(`INSERT INTO ACCOUNT VALUES (99, 1, 'x', 0)`)
	f.Add(`SELECT T_DTS FROM TRADE WHERE T_CA_ID = 1 ORDER BY T_DTS DESC LIMIT 3`)
	f.Add(`SELECT`)
	f.Add(`)(][;;`)

	f.Fuzz(func(t *testing.T, sql string) {
		res, err := e.Query(sql)
		if err != nil {
			return // rejected input; only panics are bugs
		}
		rows, _ := res.FetchAll() // execution errors are fine too
		_ = rows
	})
}

// TestQueryPipelineRangeInvariant drives the fuzzer's range invariant
// deterministically: constructed window queries, executed serial and
// parallel, must only return timestamps inside [t1, t2) and must agree
// with each other row for row.
func TestQueryPipelineRangeInvariant(t *testing.T) {
	e := newEngine(t)
	accounts := tdFixture(t, e)
	windows := [][2]int64{{1000000, 1000500}, {1000400, 1002000}, {999000, 1000001}, {1001000, 1001000}}
	for _, acct := range accounts {
		for _, w := range windows {
			q := fmt.Sprintf(`SELECT T_DTS, T_TRADE_PRICE FROM TRADE WHERE T_CA_ID = %d AND T_DTS >= %d AND T_DTS < %d`, acct, w[0], w[1])
			run := func(workers int) []string {
				e.SetQueryWorkers(workers)
				res, err := e.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := res.FetchAll()
				if err != nil {
					t.Fatal(err)
				}
				var out []string
				for _, row := range rows {
					ts := row[0].AsInt()
					if row[0].IsNull() || ts < w[0] || ts >= w[1] {
						t.Fatalf("workers=%d: timestamp %s outside [%d,%d)", workers, row[0], w[0], w[1])
					}
					cells := make([]string, len(row))
					for i, v := range row {
						cells[i] = v.String()
					}
					out = append(out, strings.Join(cells, "|"))
				}
				return out
			}
			serial := run(0)
			parallel := run(4)
			if len(serial) != len(parallel) {
				t.Fatalf("row counts diverged: %d vs %d", len(serial), len(parallel))
			}
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("row %d diverged: %q vs %q", i, serial[i], parallel[i])
				}
			}
		}
	}
}
