package sqlexec

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestQueryCtxCanceled verifies a canceled context aborts row pulls with
// the context's error, visible through errors.Is.
func TestQueryCtxCanceled(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)

	ctx, cancel := context.WithCancel(context.Background())
	res, err := e.QueryCtx(ctx, `SELECT T_DTS, T_TRADE_PRICE FROM TRADE WHERE T_CA_ID = 1 AND T_DTS BETWEEN 0 AND 10000000`)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	cancel()
	_, err = res.FetchAll()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestQueryTimeoutEngineDefault verifies SetQueryTimeout bounds queries
// submitted without their own deadline.
func TestQueryTimeoutEngineDefault(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	e.SetQueryTimeout(time.Nanosecond)

	res, err := e.Query(`SELECT T_DTS, T_TRADE_PRICE FROM TRADE WHERE T_CA_ID = 1 AND T_DTS BETWEEN 0 AND 10000000`)
	if err != nil {
		// Planning itself may observe the expired deadline via the scan.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want DeadlineExceeded, got %v", err)
		}
		return
	}
	defer res.Close()
	time.Sleep(time.Millisecond) // ensure the 1ns deadline has passed
	_, err = res.FetchAll()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}

	// Removing the bound restores unbounded queries.
	e.SetQueryTimeout(0)
	res2, err := e.Query(`SELECT COUNT(*) FROM TRADE WHERE T_CA_ID = 1 AND T_DTS BETWEEN 0 AND 10000000`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res2.FetchAll(); err != nil {
		t.Fatalf("unbounded query failed: %v", err)
	}
}

// TestQueryCtxCallerDeadlineWins verifies the engine default applies only
// when the caller's context carries no deadline: a generous caller deadline
// lets the query complete even under a tiny SetQueryTimeout.
func TestQueryCtxCallerDeadlineWins(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	e.SetQueryTimeout(time.Nanosecond)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := e.QueryCtx(ctx, `SELECT COUNT(*) FROM TRADE WHERE T_CA_ID = 1 AND T_DTS BETWEEN 0 AND 10000000`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.FetchAll()
	if err != nil {
		t.Fatalf("query with generous caller deadline failed: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(rows))
	}
}

// TestResultCloseIdempotent exercises Close before, between, and after
// Next calls.
func TestResultCloseIdempotent(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	e.SetQueryTimeout(time.Minute)

	res, err := e.Query(`SELECT T_DTS FROM TRADE WHERE T_CA_ID = 2 AND T_DTS BETWEEN 0 AND 10000000`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := res.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	res.Close()
	res.Close() // idempotent
}
