package sqlexec

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"odh/internal/catalog"
	"odh/internal/relational"
	"odh/internal/sqlparse"
	"odh/internal/tsstore"
)

// Engine executes SQL over one relational database and one batch store
// sharing a catalog — the unified access layer ("both relational data and
// operational data are stored in one database. The unified data access
// interface of SQL supports data extraction and fusion from both").
type Engine struct {
	rel *relational.DB
	ts  *tsstore.Store
	cat *catalog.Catalog
	// queryWorkers caps the parallel degree of virtual-table scans;
	// <= 1 keeps every scan serial. Atomic: SetQueryWorkers may be
	// called while other goroutines are planning queries.
	queryWorkers atomic.Int64
	// aggPushdownOff disables the summary-aggregate rewrite (zero value =
	// enabled). Atomic for the same live-reconfiguration reason.
	aggPushdownOff atomic.Bool
	// queryTimeout (nanoseconds) bounds each query that arrives without
	// its own deadline; 0 = unbounded. Atomic for live reconfiguration.
	queryTimeout atomic.Int64
}

// New builds an engine over the two stores.
func New(rel *relational.DB, ts *tsstore.Store) *Engine {
	return &Engine{rel: rel, ts: ts, cat: ts.Catalog()}
}

// SetQueryWorkers caps the parallel degree virtual-table scans may use.
// The planner picks each scan's degree from its blob-bytes cost estimate,
// never exceeding n; n <= 1 disables parallel scans. Safe to call on a
// live engine; queries planned afterwards use the new cap.
func (e *Engine) SetQueryWorkers(n int) { e.queryWorkers.Store(int64(n)) }

// SetAggPushdown enables or disables rewriting aggregates over a virtual
// table into ValueBlob summary folds (enabled by default). Disabling it
// forces the decode-and-group plan — the escape hatch for comparing the
// two paths and for the benchmark's fallback arm.
func (e *Engine) SetAggPushdown(on bool) { e.aggPushdownOff.Store(!on) }

// SetQueryTimeout bounds every query submitted without its own context
// deadline: execution (including row pulls from Result.Next) fails with
// context.DeadlineExceeded once d elapses. d <= 0 removes the bound.
// Safe to call on a live engine.
func (e *Engine) SetQueryTimeout(d time.Duration) { e.queryTimeout.Store(int64(d)) }

// parallelCostUnit is the estimated blob-bytes of work that justifies one
// additional scan worker: fanning out cheaper scans costs more in
// goroutine and channel overhead than the decode work it spreads.
const parallelCostUnit = 64 << 10

// parallelDegree converts a scan's blob-bytes cost estimate into a worker
// count in [1, queryWorkers].
func (e *Engine) parallelDegree(estCost float64) int {
	limit := int(e.queryWorkers.Load())
	if limit <= 1 || estCost < 2*parallelCostUnit {
		return 1
	}
	deg := int(estCost / parallelCostUnit)
	if deg > limit {
		deg = limit
	}
	return deg
}

// Rel exposes the relational database (for loaders and tests).
func (e *Engine) Rel() *relational.DB { return e.rel }

// TS exposes the batch store.
func (e *Engine) TS() *tsstore.Store { return e.ts }

// Result is the outcome of one statement.
type Result struct {
	// Columns names the output columns of a SELECT (nil for DDL/DML).
	Columns []string
	// RowsAffected counts DDL/DML effects.
	RowsAffected int64
	// PlanText carries the EXPLAIN rendering when requested.
	PlanText string

	root Operator
	err  error
	// ctx cancels the query; Next observes it between rows, and the scan
	// iterators underneath observe it between blob loads. cancel releases
	// the deadline timer when the engine attached one.
	ctx       context.Context
	cancel    context.CancelFunc
	ctxChecks int
	// DataPoints counts the operational values pulled so far (non-NULL
	// values from virtual tables; for relational-only queries, non-NULL
	// values in the result). It is the unit Table 8's throughput uses.
	DataPoints int64
	// RowCount counts rows pulled so far.
	RowCount int64
}

// ctxCheckRows is how many result rows Next pulls between context
// checks; the scan layer checks per blob, this is a backstop for
// relational-heavy plans.
const ctxCheckRows = 64

// Close releases the query's cancellation resources (the deadline timer
// when a query timeout applied). Next calls it automatically when the
// result is exhausted or fails; callers abandoning a result mid-stream
// should call it themselves. Idempotent.
func (r *Result) Close() {
	if r.cancel != nil {
		r.cancel()
		r.cancel = nil
	}
}

// Next pulls the next result row of a SELECT.
func (r *Result) Next() (Row, bool, error) {
	if r.root == nil {
		return nil, false, r.err
	}
	if r.ctx != nil {
		if r.ctxChecks++; r.ctxChecks >= ctxCheckRows || r.RowCount == 0 {
			r.ctxChecks = 0
			if err := r.ctx.Err(); err != nil {
				r.err = fmt.Errorf("sqlexec: query canceled: %w", err)
				r.Close()
				return nil, false, r.err
			}
		}
	}
	row, ok, err := r.root.Next()
	if err != nil {
		r.err = err
		r.Close()
		return nil, false, err
	}
	if !ok {
		r.Close()
		return nil, false, nil
	}
	r.RowCount++
	for _, v := range row {
		if !v.IsNull() {
			r.DataPoints++
		}
	}
	return row, true, nil
}

// FetchAll drains the result.
func (r *Result) FetchAll() ([]Row, error) {
	var out []Row
	for {
		row, ok, err := r.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// BlobBytes reports the ValueBlob bytes the query read so far.
func (r *Result) BlobBytes() int64 {
	if r.root == nil {
		return 0
	}
	return r.root.BlobBytes()
}

// Query parses and executes one statement without a caller deadline
// (the engine's query timeout, when set, still applies).
func (e *Engine) Query(sql string) (*Result, error) {
	return e.QueryCtx(context.Background(), sql)
}

// QueryCtx parses and executes one statement under ctx: canceling it (or
// exceeding its deadline, or the engine's SetQueryTimeout default when
// ctx carries no deadline) aborts planning, the scan workers, and row
// pulls with the context's error.
func (e *Engine) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if d := time.Duration(e.queryTimeout.Load()); d > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancel = context.WithTimeout(ctx, d)
		}
	}
	res, err := e.queryCtx(ctx, sql)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	if res.root == nil {
		// DDL/DML/EXPLAIN complete inside queryCtx; nothing left to cancel.
		if cancel != nil {
			cancel()
		}
		return res, nil
	}
	res.ctx = ctx
	res.cancel = cancel
	return res, nil
}

func (e *Engine) queryCtx(ctx context.Context, sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		root, pc, err := e.buildSelectCtx(ctx, s)
		if err != nil {
			return nil, err
		}
		cols := make([]string, len(root.Columns()))
		for i, c := range root.Columns() {
			cols[i] = c.Name
		}
		res := &Result{Columns: cols, root: root}
		if s.Explain {
			res.PlanText = e.explainText(root, pc)
			res.root = nil
			res.Columns = []string{"plan"}
		}
		return res, nil
	case *sqlparse.CreateTableStmt:
		cols := make([]relational.Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = relational.Column{Name: c.Name, Type: c.Type}
		}
		if _, err := e.rel.CreateTable(s.Name, cols); err != nil {
			return nil, err
		}
		return &Result{RowsAffected: 0}, nil
	case *sqlparse.CreateIndexStmt:
		t, ok := e.rel.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("sqlexec: unknown table %q", s.Table)
		}
		if _, err := t.CreateIndex(s.Name, s.Columns...); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparse.CreateVirtualTableStmt:
		schema, ok := e.cat.SchemaByName(s.Schema)
		if !ok {
			return nil, fmt.Errorf("sqlexec: unknown schema type %q", s.Schema)
		}
		if err := e.cat.CreateVirtualTable(s.Name, schema.ID); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparse.InsertStmt:
		return e.execInsert(s)
	}
	return nil, fmt.Errorf("sqlexec: unsupported statement %T", stmt)
}

// Plan returns the physical plan text for a SELECT without executing it.
func (e *Engine) Plan(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return "", fmt.Errorf("sqlexec: Plan requires a SELECT")
	}
	root, pc, err := e.buildSelectCtx(context.Background(), sel)
	if err != nil {
		return "", err
	}
	return e.explainText(root, pc), nil
}

func (e *Engine) explainText(root Operator, pc *planContext) string {
	var sb strings.Builder
	if pc.planNote != "" {
		sb.WriteString(pc.planNote)
		sb.WriteString("\n")
	}
	sb.WriteString(root.Describe(""))
	return sb.String()
}

// execInsert evaluates literal rows and inserts them, coercing to column
// types (timestamp strings in particular).
func (e *Engine) execInsert(s *sqlparse.InsertStmt) (*Result, error) {
	t, ok := e.rel.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("sqlexec: unknown table %q", s.Table)
	}
	cols := t.Columns()
	ordinals := make([]int, 0, len(cols))
	if s.Columns == nil {
		for i := range cols {
			ordinals = append(ordinals, i)
		}
	} else {
		for _, name := range s.Columns {
			ord := t.ColumnIndex(name)
			if ord < 0 {
				// Case-insensitive fallback.
				for i, c := range cols {
					if strings.EqualFold(c.Name, name) {
						ord = i
						break
					}
				}
			}
			if ord < 0 {
				return nil, fmt.Errorf("sqlexec: unknown column %q in INSERT", name)
			}
			ordinals = append(ordinals, ord)
		}
	}
	var batch [][]relational.Value
	for _, rowExprs := range s.Rows {
		if len(rowExprs) != len(ordinals) {
			return nil, fmt.Errorf("sqlexec: INSERT row has %d values for %d columns", len(rowExprs), len(ordinals))
		}
		row := make([]relational.Value, len(cols))
		for i := range row {
			row[i] = relational.Null
		}
		for i, expr := range rowExprs {
			b, err := bind(expr, nil)
			if err != nil {
				return nil, err
			}
			v, err := b.eval(nil)
			if err != nil {
				return nil, err
			}
			row[ordinals[i]] = coerceLiteral(v, cols[ordinals[i]].Type)
		}
		batch = append(batch, row)
	}
	if err := t.InsertBatch(batch); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: int64(len(batch))}, nil
}
