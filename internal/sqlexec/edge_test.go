package sqlexec

import (
	"fmt"
	"strings"
	"testing"

	"odh/internal/model"
	"odh/internal/relational"
)

// relFixture creates a small relational-only database for operator edge
// cases.
func relFixture(t testing.TB, e *Engine) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE items (id BIGINT, grp VARCHAR(4), price DOUBLE)`)
	mustExec(t, e, `CREATE TABLE grps (grp VARCHAR(4), label VARCHAR(16))`)
	rows := []string{
		`(1, 'a', 10.0)`, `(2, 'a', 20.0)`, `(3, 'b', 30.0)`,
		`(4, NULL, 40.0)`, `(5, 'c', NULL)`,
	}
	for _, r := range rows {
		mustExec(t, e, `INSERT INTO items VALUES `+r)
	}
	mustExec(t, e, `INSERT INTO grps VALUES ('a', 'alpha'), ('b', 'beta'), ('d', 'delta')`)
}

func TestHashJoinSkipsNullKeys(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT id, label FROM items i, grps g WHERE i.grp = g.grp ORDER BY id`)
	// Items 1,2 (alpha) and 3 (beta); item 4 has NULL grp and must not
	// match anything; item 5's 'c' has no group row.
	if len(rows) != 3 {
		t.Fatalf("join returned %d rows: %v", len(rows), rows)
	}
	if rows[0][0].AsInt() != 1 || rows[2][1].S != "beta" {
		t.Fatalf("rows: %v", rows)
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT id, price * 2, price / 0 FROM items ORDER BY id`)
	// price NULL (item 5) -> NULL product; division by zero -> NULL.
	if !rows[4][1].IsNull() {
		t.Fatalf("NULL * 2 = %v", rows[4][1])
	}
	for _, r := range rows {
		if !r[2].IsNull() {
			t.Fatalf("x / 0 = %v, want NULL", r[2])
		}
	}
	if rows[0][1].AsFloat() != 20 {
		t.Fatalf("10 * 2 = %v", rows[0][1])
	}
}

func TestComparisonWithNullIsUnknown(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	// NULL price fails both predicates; NOT(unknown) is still not true.
	rows, _ := fetchAll(t, e, `SELECT id FROM items WHERE price > 0`)
	if len(rows) != 4 {
		t.Fatalf("price > 0 matched %d", len(rows))
	}
	rows, _ = fetchAll(t, e, `SELECT id FROM items WHERE NOT price > 0`)
	if len(rows) != 0 {
		t.Fatalf("NOT price > 0 matched %d", len(rows))
	}
}

func TestInListAndOr(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT id FROM items WHERE id IN (1, 3, 99) OR price = 40.0 ORDER BY id`)
	if len(rows) != 3 || rows[0][0].AsInt() != 1 || rows[1][0].AsInt() != 3 || rows[2][0].AsInt() != 4 {
		t.Fatalf("rows: %v", rows)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT COUNT(*), SUM(price), AVG(price), MIN(price) FROM items WHERE id > 100`)
	if len(rows) != 1 {
		t.Fatalf("grand total must emit one row, got %d", len(rows))
	}
	r := rows[0]
	if r[0].AsInt() != 0 || !r[1].IsNull() || !r[2].IsNull() || !r[3].IsNull() {
		t.Fatalf("empty aggregates: %v", r)
	}
	// GROUP BY over empty input emits no rows.
	rows, _ = fetchAll(t, e, `SELECT grp, COUNT(*) FROM items WHERE id > 100 GROUP BY grp`)
	if len(rows) != 0 {
		t.Fatalf("grouped empty input: %v", rows)
	}
}

func TestAggregatesSkipNulls(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT COUNT(*), COUNT(price), AVG(price) FROM items`)
	r := rows[0]
	if r[0].AsInt() != 5 || r[1].AsInt() != 4 {
		t.Fatalf("COUNT(*)=%v COUNT(price)=%v", r[0], r[1])
	}
	if r[2].AsFloat() != 25 { // (10+20+30+40)/4
		t.Fatalf("AVG = %v", r[2])
	}
}

func TestLimitZeroAndBeyond(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT id FROM items LIMIT 0`)
	if len(rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d", len(rows))
	}
	rows, _ = fetchAll(t, e, `SELECT id FROM items LIMIT 100`)
	if len(rows) != 5 {
		t.Fatalf("LIMIT 100 returned %d", len(rows))
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT grp, id FROM items ORDER BY grp DESC, id ASC`)
	// NULL group sorts first overall, so DESC puts it last.
	if rows[len(rows)-1][0].Kind != relational.KindNull {
		t.Fatalf("NULL not last under DESC: %v", rows)
	}
	if rows[0][0].S != "c" {
		t.Fatalf("first group: %v", rows[0])
	}
}

func TestSelectExpressionNaming(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	res := mustExec(t, e, `SELECT price + 1, price * 2 AS dbl FROM items LIMIT 1`)
	if res.Columns[0] != "(price + 1)" || res.Columns[1] != "dbl" {
		t.Fatalf("columns: %v", res.Columns)
	}
	res.FetchAll()
}

func TestAmbiguousColumnRejected(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	// "grp" exists in both tables; unqualified use in a join must error.
	if _, err := e.Query(`SELECT grp FROM items i, grps g WHERE i.grp = g.grp`); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	// Qualified use works.
	rows, _ := fetchAll(t, e, `SELECT i.grp FROM items i, grps g WHERE i.grp = g.grp`)
	if len(rows) != 3 {
		t.Fatalf("qualified join: %d rows", len(rows))
	}
}

func TestZoneMapPushdownAtSQLLevel(t *testing.T) {
	e := newEngine(t)
	cat := e.cat
	schema, _ := cat.CreateSchemaType("zm", []model.TagDef{{Name: "v"}, {Name: "w"}})
	cat.CreateVirtualTable("zm_v", schema.ID)
	ds, _ := cat.RegisterSource(model.DataSource{SchemaID: schema.ID, Regular: true, IntervalMs: 10})
	for i := 0; i < 160; i++ {
		e.ts.Write(model.Point{Source: ds.ID, TS: int64(i * 10),
			Values: []float64{float64(i), float64(i % 3)}})
	}
	e.ts.Flush()
	// Batch size 16 -> 10 batches; values 100..119 live in batches 6-7.
	rows, res := fetchAll(t, e, fmt.Sprintf(`SELECT v FROM zm_v WHERE id = %d AND v BETWEEN 100 AND 119`, ds.ID))
	if len(rows) != 20 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The scan must have decoded only the overlapping blobs: blob bytes
	// read is well below the full history.
	full, fullRes := fetchAll(t, e, fmt.Sprintf(`SELECT v FROM zm_v WHERE id = %d`, ds.ID))
	if len(full) != 160 {
		t.Fatalf("full = %d", len(full))
	}
	if res.BlobBytes()*3 > fullRes.BlobBytes() {
		t.Fatalf("zone maps did not reduce blob reads: %d vs %d", res.BlobBytes(), fullRes.BlobBytes())
	}
}

func TestVirtualAggregateOverSlice(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT COUNT(*) FROM TRADE`)
	if rows[0][0].AsInt() != 500 {
		t.Fatalf("COUNT(*) = %v", rows[0][0])
	}
}

func TestExplainFusedPlansNameBothCosts(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	plan, err := e.Plan(`SELECT T_DTS FROM TRADE t, ACCOUNT a WHERE a.CA_ID = t.T_CA_ID AND a.CA_NAME = 'acct_3'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "cost=") || !strings.Contains(plan, "alternative") {
		t.Fatalf("plan lacks cost annotations:\n%s", plan)
	}
}

func BenchmarkTQ1Historical(b *testing.B) {
	e := newEngine(b)
	tdFixture(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query(`SELECT * FROM TRADE WHERE T_CA_ID = 3`)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.FetchAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusedTQ3(b *testing.B) {
	e := newEngine(b)
	tdFixture(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query(`SELECT T_DTS, T_CHRG FROM TRADE t, ACCOUNT a WHERE a.CA_ID = t.T_CA_ID AND a.CA_NAME = 'acct_7'`)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.FetchAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTimeBucketDownsampling(t *testing.T) {
	e := newEngine(t)
	cat := e.cat
	schema, _ := cat.CreateSchemaType("ts", []model.TagDef{{Name: "v"}})
	cat.CreateVirtualTable("ts_v", schema.ID)
	ds, _ := cat.RegisterSource(model.DataSource{SchemaID: schema.ID, Regular: true, IntervalMs: 100})
	// 10 Hz for 60 s: 600 points; bucket to 10 s -> 6 buckets of 100.
	for i := 0; i < 600; i++ {
		e.ts.Write(model.Point{Source: ds.ID, TS: int64(i * 100), Values: []float64{float64(i)}})
	}
	e.ts.Flush()
	rows, _ := fetchAll(t, e, `SELECT time_bucket(10000, timestamp) AS bucket, COUNT(*), AVG(v)
		FROM ts_v GROUP BY time_bucket(10000, timestamp) ORDER BY bucket`)
	if len(rows) != 6 {
		t.Fatalf("buckets = %d, want 6", len(rows))
	}
	for b, r := range rows {
		if r[0].AsInt() != int64(b*10000) {
			t.Fatalf("bucket %d start = %v", b, r[0])
		}
		if r[1].AsInt() != 100 {
			t.Fatalf("bucket %d count = %v", b, r[1])
		}
		wantAvg := float64(b*100) + 49.5
		if r[2].AsFloat() != wantAvg {
			t.Fatalf("bucket %d avg = %v, want %v", b, r[2], wantAvg)
		}
	}
}

func TestScalarFunctions(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT ABS(0 - price), FLOOR(price / 3), CEIL(price / 3), ROUND(price / 3) FROM items WHERE id = 1`)
	r := rows[0]
	if r[0].AsFloat() != 10 || r[1].AsFloat() != 3 || r[2].AsFloat() != 4 || r[3].AsFloat() != 3 {
		t.Fatalf("scalar funcs: %v", r)
	}
	if _, err := e.Query(`SELECT NOPE(price) FROM items`); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := e.Query(`SELECT ABS(price, price) FROM items`); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestIDInListPushdown(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	sql := `SELECT * FROM TRADE WHERE T_CA_ID IN (2, 5, 9)`
	plan, err := e.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "VirtualMultiScan") || !strings.Contains(plan, "3 ids") {
		t.Fatalf("IN list not pushed down:\n%s", plan)
	}
	rows, _ := fetchAll(t, e, sql)
	if len(rows) != 150 {
		t.Fatalf("rows = %d, want 150", len(rows))
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		seen[r[0].AsInt()] = true
	}
	if len(seen) != 3 || !seen[2] || !seen[5] || !seen[9] {
		t.Fatalf("sources: %v", seen)
	}
	// Unknown ids contribute nothing but do not fail.
	rows, _ = fetchAll(t, e, `SELECT * FROM TRADE WHERE T_CA_ID IN (2, 9999)`)
	if len(rows) != 50 {
		t.Fatalf("rows with unknown id = %d", len(rows))
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	e := newEngine(t)
	relFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT grp, COUNT(*) FROM items GROUP BY grp HAVING COUNT(*) > 1`)
	if len(rows) != 1 || rows[0][0].S != "a" || rows[0][1].AsInt() != 2 {
		t.Fatalf("HAVING rows: %v", rows)
	}
	// HAVING with alias.
	rows, _ = fetchAll(t, e, `SELECT grp, COUNT(*) AS n FROM items GROUP BY grp HAVING n >= 1 ORDER BY n DESC, grp`)
	if len(rows) != 4 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[0][0].S != "a" { // group 'a' has the highest count
		t.Fatalf("ORDER BY aggregate: %v", rows)
	}
	if _, err := e.Query(`SELECT id FROM items HAVING id > 1`); err == nil {
		t.Fatal("HAVING without aggregation accepted")
	}
}

func TestOrderByAggregateExpression(t *testing.T) {
	e := newEngine(t)
	tdFixture(t, e)
	rows, _ := fetchAll(t, e, `SELECT T_CA_ID, AVG(T_TRADE_PRICE) FROM TRADE GROUP BY T_CA_ID ORDER BY AVG(T_TRADE_PRICE) DESC LIMIT 3`)
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0][1].AsFloat() < rows[2][1].AsFloat() {
		t.Fatal("not descending by aggregate")
	}
}
