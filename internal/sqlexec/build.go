package sqlexec

import (
	"context"
	"fmt"
	"math"
	"strings"

	"odh/internal/relational"
	"odh/internal/sqlparse"
)

// buildScan constructs the access operator for one table plus its filter.
func (pc *planContext) buildScan(acc *tableAccess) (Operator, error) {
	var op Operator
	if acc.src.isVirtual() {
		vs := newVirtualScan(pc.e.ts, acc.src.schema, acc.src.binding(), pc.wantTags[acc.src.binding()])
		vs.t1, vs.t2 = acc.t1, acc.t2
		vs.tagRanges = acc.tagRanges
		if acc.idEq != nil {
			vs.historical = true
			vs.source = *acc.idEq
		} else if len(acc.idList) > 0 {
			vs.sources = acc.idList
		}
		vs.workers = pc.e.parallelDegree(acc.estCost)
		vs.ctx = pc.ctx
		op = vs
	} else if acc.index != nil {
		if acc.prefixVals != nil {
			op = newRelIndexPrefix(acc.src.rel, acc.index, acc.src.binding(), acc.prefixVals)
		} else {
			op = newRelIndexRange(acc.src.rel, acc.index, acc.src.binding(), acc.rangeLo, acc.rangeHi)
		}
	} else {
		op = newRelSeqScan(acc.src.rel, acc.src.binding())
	}
	return pc.applyFilter(op, acc.conjuncts)
}

// applyFilter wraps op with the given conjuncts (no-op for none).
func (pc *planContext) applyFilter(op Operator, conjuncts []sqlparse.Expr) (Operator, error) {
	if len(conjuncts) == 0 {
		return op, nil
	}
	pred := sqlparse.JoinConjuncts(conjuncts)
	bound, err := bind(pred, op.Columns())
	if err != nil {
		return nil, err
	}
	return &filterOp{child: op, pred: bound, desc: pred.String()}, nil
}

// buildJoinTree picks a join order and operators for the FROM set. At most
// one virtual table may participate (the paper's fused queries join one
// virtual table with relational dimension tables).
func (pc *planContext) buildJoinTree() (Operator, error) {
	var virtual *tableSource
	for _, src := range pc.sources {
		if src.isVirtual() {
			if virtual != nil {
				return nil, fmt.Errorf("sqlexec: at most one virtual table per query is supported")
			}
			virtual = src
		}
	}
	if len(pc.sources) == 1 {
		return pc.buildScan(pc.access[pc.sources[0].binding()])
	}
	if virtual == nil {
		return pc.buildRelationalJoins(pc.sources)
	}
	return pc.buildFusedJoins(virtual)
}

// buildRelationalJoins greedily joins relational tables: cheapest table
// first, then connected tables via index nested-loop (when the inner has a
// matching index) or hash join.
func (pc *planContext) buildRelationalJoins(sources []*tableSource) (Operator, error) {
	remaining := map[string]*tableSource{}
	for _, src := range sources {
		remaining[src.binding()] = src
	}
	// Seed with the cheapest access.
	var seed *tableSource
	for _, src := range sources {
		if seed == nil || pc.access[src.binding()].estCost < pc.access[seed.binding()].estCost {
			seed = src
		}
	}
	cur, err := pc.buildScan(pc.access[seed.binding()])
	if err != nil {
		return nil, err
	}
	delete(remaining, seed.binding())
	joined := map[string]bool{seed.binding(): true}

	for len(remaining) > 0 {
		jp, next, flipped := pc.nextJoin(joined, remaining)
		if next == nil {
			// Disconnected table: cross-join via hash join on a constant
			// is not supported; reject clearly.
			return nil, fmt.Errorf("sqlexec: no join predicate connects table %q", anyKey(remaining))
		}
		outerCol, innerCol := jp.leftCol, jp.rightCol
		if flipped {
			outerCol, innerCol = jp.rightCol, jp.leftCol
		}
		outerOrd, err := resolveColumn(&sqlparse.ColumnRef{Name: outerCol}, cur.Columns())
		if err != nil {
			// The column may need qualification when names collide.
			outerOrd, err = resolveColumn(&sqlparse.ColumnRef{Table: jpBind(jp, !flipped), Name: outerCol}, cur.Columns())
			if err != nil {
				return nil, err
			}
		}
		acc := pc.access[next.binding()]
		// Prefer an index nested-loop when the inner table has an index
		// whose first column is the join column and no cheaper pushdown.
		var innerIdx *relational.Index
		for _, idx := range next.rel.Indexes() {
			if strings.EqualFold(next.rel.Columns()[idx.ColumnOrdinals()[0]].Name, innerCol) {
				innerIdx = idx
				break
			}
		}
		if innerIdx != nil && len(acc.conjuncts) == 0 {
			cur = newNLRelJoin(cur, next.rel, innerIdx, next.binding(), outerOrd)
		} else {
			innerScan, err := pc.buildScan(acc)
			if err != nil {
				return nil, err
			}
			innerOrd, err := resolveColumn(&sqlparse.ColumnRef{Table: next.binding(), Name: innerCol}, innerScan.Columns())
			if err != nil {
				return nil, err
			}
			cur = newHashJoin(cur, innerScan, outerOrd, innerOrd)
		}
		joined[next.binding()] = true
		delete(remaining, next.binding())
	}
	return cur, nil
}

func jpBind(jp joinPred, left bool) string {
	if left {
		return jp.leftBind
	}
	return jp.rightBind
}

func anyKey(m map[string]*tableSource) string {
	for k := range m {
		return k
	}
	return ""
}

// nextJoin finds a join predicate connecting the joined set to a remaining
// table. flipped reports that the predicate's right side is in the joined
// set.
func (pc *planContext) nextJoin(joined map[string]bool, remaining map[string]*tableSource) (joinPred, *tableSource, bool) {
	for _, jp := range pc.joins {
		if joined[jp.leftBind] {
			if src, ok := remaining[jp.rightBind]; ok {
				return jp, src, false
			}
		}
		if joined[jp.rightBind] {
			if src, ok := remaining[jp.leftBind]; ok {
				return jp, src, true
			}
		}
	}
	return joinPred{}, nil, false
}

// buildFusedJoins plans a query joining one virtual table with relational
// tables. It costs the paper's two plan families and picks the cheaper:
//
//	relational-first: filter the relational side, then drive per-source
//	historical scans of the virtual table through the id join key;
//	operational-first: slice-scan the virtual table for the time window,
//	then hash-join the relational side onto it.
func (pc *planContext) buildFusedJoins(virtual *tableSource) (Operator, error) {
	vAcc := pc.access[virtual.binding()]
	// Find the join predicate binding the virtual table's id.
	var vJoin *joinPred
	for i := range pc.joins {
		jp := &pc.joins[i]
		if jp.leftBind == virtual.binding() && strings.EqualFold(jp.leftCol, virtual.schema.IDColumn()) {
			vJoin = jp
			break
		}
		if jp.rightBind == virtual.binding() && strings.EqualFold(jp.rightCol, virtual.schema.IDColumn()) {
			// Normalize: left side is the virtual id.
			jp.leftBind, jp.rightBind = jp.rightBind, jp.leftBind
			jp.leftCol, jp.rightCol = jp.rightCol, jp.leftCol
			vJoin = jp
			break
		}
	}
	if vJoin == nil {
		return nil, fmt.Errorf("sqlexec: fused query must join the virtual table on its id column")
	}

	var relSources []*tableSource
	for _, src := range pc.sources {
		if !src.isVirtual() {
			relSources = append(relSources, src)
		}
	}

	// Estimate driving rows: the relational table joined to the virtual
	// id, scaled by the selectivity of every other relational table in
	// the join chain (a filter on CUSTOMER thins the ACCOUNT rows that
	// reach the virtual join — TQ4's shape).
	driver := pc.byBind[vJoin.rightBind]
	driverAcc := pc.access[driver.binding()]
	drivingRows := driverAcc.estRows
	for _, src := range pc.sources {
		if src.isVirtual() || src == driver {
			continue
		}
		acc := pc.access[src.binding()]
		if rows := float64(src.rel.RowCount()); rows > 0 && acc.estRows < rows {
			drivingRows *= acc.estRows / rows
		}
	}
	if drivingRows < 1 {
		drivingRows = 1
	}

	stats := pc.e.cat.SchemaStats(virtual.schema.ID)
	nSources := math.Max(float64(pc.e.cat.SourceCount(virtual.schema.ID)), 1)
	frac := windowFraction(stats, vAcc.t1, vAcc.t2)
	perSource := float64(stats.BlobBytes) / nSources

	costRelFirst := driverAcc.estCost +
		drivingRows*(perSource*frac+costPerSeek+costPerRouterLookup)
	costOpFirst := vAcc.estCost + float64(driver.rel.RowCount())*8

	if costRelFirst <= costOpFirst {
		pc.planNote = fmt.Sprintf("plan=relational-first cost=%.0f (alternative operational-first=%.0f)", costRelFirst, costOpFirst)
		rel, err := pc.buildRelationalJoins(relSources)
		if err != nil {
			return nil, err
		}
		outerOrd, err := resolveColumn(&sqlparse.ColumnRef{Table: vJoin.rightBind, Name: vJoin.rightCol}, rel.Columns())
		if err != nil {
			return nil, err
		}
		join := newNLVirtualJoin(rel, pc.e.ts, virtual.schema, virtual.binding(),
			pc.wantTags[virtual.binding()], outerOrd, vAcc.t1, vAcc.t2)
		join.tagRanges = vAcc.tagRanges
		join.ctx = pc.ctx
		// Virtual-side single-table predicates still apply (time bounds
		// were pushed, but re-checking is exact and cheap).
		return pc.applyFilter(join, vAcc.conjuncts)
	}

	pc.planNote = fmt.Sprintf("plan=operational-first cost=%.0f (alternative relational-first=%.0f)", costOpFirst, costRelFirst)
	vScan, err := pc.buildScan(vAcc)
	if err != nil {
		return nil, err
	}
	leftOrd, err := resolveColumn(&sqlparse.ColumnRef{Table: virtual.binding(), Name: virtual.schema.IDColumn()}, vScan.Columns())
	if err != nil {
		return nil, err
	}
	// Hash-join each relational table onto the stream; the driver first.
	cur := vScan
	done := map[string]bool{virtual.binding(): true}
	leftKeyOrd := leftOrd
	// Join the driver on the virtual id.
	driverScan, err := pc.buildScan(driverAcc)
	if err != nil {
		return nil, err
	}
	innerOrd, err := resolveColumn(&sqlparse.ColumnRef{Table: driver.binding(), Name: vJoin.rightCol}, driverScan.Columns())
	if err != nil {
		return nil, err
	}
	cur = newHashJoin(cur, driverScan, leftKeyOrd, innerOrd)
	done[driver.binding()] = true
	// Then the remaining relational tables by their join predicates.
	for {
		remaining := map[string]*tableSource{}
		for _, src := range relSources {
			if !done[src.binding()] {
				remaining[src.binding()] = src
			}
		}
		if len(remaining) == 0 {
			break
		}
		jp, next, flipped := pc.nextJoin(done, remaining)
		if next == nil {
			return nil, fmt.Errorf("sqlexec: no join predicate connects table %q", anyKey(remaining))
		}
		outerCol, innerCol := jp.leftCol, jp.rightCol
		outerBind, _ := jp.leftBind, jp.rightBind
		if flipped {
			outerCol, innerCol = jp.rightCol, jp.leftCol
			outerBind = jp.rightBind
		}
		outerOrd, err := resolveColumn(&sqlparse.ColumnRef{Table: outerBind, Name: outerCol}, cur.Columns())
		if err != nil {
			return nil, err
		}
		innerScan, err := pc.buildScan(pc.access[next.binding()])
		if err != nil {
			return nil, err
		}
		innerOrd, err := resolveColumn(&sqlparse.ColumnRef{Table: next.binding(), Name: innerCol}, innerScan.Columns())
		if err != nil {
			return nil, err
		}
		cur = newHashJoin(cur, innerScan, outerOrd, innerOrd)
		done[next.binding()] = true
	}
	return cur, nil
}

// buildSelectCtx compiles a full SELECT into an operator tree. ctx is
// threaded into every virtual-table scan the plan contains, so canceling
// it stops the tsstore workers mid-scan.
func (e *Engine) buildSelectCtx(ctx context.Context, stmt *sqlparse.SelectStmt) (Operator, *planContext, error) {
	if len(stmt.From) == 0 {
		return nil, nil, fmt.Errorf("sqlexec: SELECT requires FROM")
	}
	pc := &planContext{
		e:      e,
		ctx:    ctx,
		stmt:   stmt,
		byBind: map[string]*tableSource{},
		access: map[string]*tableAccess{},
	}
	for _, ref := range stmt.From {
		src, err := e.resolveTable(ref)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := pc.byBind[src.binding()]; dup {
			return nil, nil, fmt.Errorf("sqlexec: duplicate table binding %q", src.binding())
		}
		pc.sources = append(pc.sources, src)
		pc.byBind[src.binding()] = src
		pc.access[src.binding()] = &tableAccess{src: src}
	}
	if err := pc.classify(); err != nil {
		return nil, nil, err
	}
	pc.collectWantTags()
	pc.analyzeAccess()

	// Aggregation over a single virtual table may fold from ValueBlob
	// header summaries instead of decoding columns; the rewrite replaces
	// the scan + filter + aggregate subtree when it is exactly equivalent.
	aggregated := hasAggregates(stmt.Items) || len(stmt.GroupBy) > 0
	var root Operator
	var err error
	pushed := false
	if aggregated {
		root, pushed = pc.tryAggPushdown()
	}
	if !pushed {
		root, err = pc.buildJoinTree()
		if err != nil {
			return nil, nil, err
		}
		// Residual multi-table predicates.
		root, err = pc.applyFilter(root, pc.residual)
		if err != nil {
			return nil, nil, err
		}
	}

	// Aggregation or plain projection.
	if aggregated {
		if !pushed {
			root, err = pc.buildAggregate(root)
			if err != nil {
				return nil, nil, err
			}
		}
		if stmt.Having != nil {
			// HAVING (and ORDER BY below) may name aggregate expressions;
			// rewrite matching subexpressions into references to the
			// aggregate's output columns.
			having := rewriteAggRefs(stmt.Having, root.Columns())
			bound, err := bind(having, root.Columns())
			if err != nil {
				return nil, nil, err
			}
			root = &filterOp{child: root, pred: bound, desc: "HAVING " + stmt.Having.String()}
		}
	} else if stmt.Having != nil {
		return nil, nil, fmt.Errorf("sqlexec: HAVING requires aggregation")
	} else {
		root, err = pc.buildProjection(root)
		if err != nil {
			return nil, nil, err
		}
	}

	if len(stmt.OrderBy) > 0 {
		keys := make([]boundExpr, len(stmt.OrderBy))
		desc := make([]bool, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			// ORDER BY may reference output aliases, aggregate
			// expressions, or input columns; try output first.
			expr := o.Expr
			if aggregated {
				expr = rewriteAggRefs(expr, root.Columns())
			}
			b, err := bind(expr, root.Columns())
			if err != nil {
				return nil, nil, err
			}
			keys[i] = b
			desc[i] = o.Desc
		}
		root = &sortOp{child: root, keys: keys, desc: desc}
	}
	if stmt.Limit >= 0 {
		root = &limitOp{child: root, n: stmt.Limit}
	}
	return root, pc, nil
}

// rewriteAggRefs replaces subexpressions whose rendering matches an
// output column's name with a reference to that column, so HAVING
// COUNT(*) > 5 and ORDER BY AVG(x) resolve against the aggregate output.
func rewriteAggRefs(e sqlparse.Expr, cols []ColMeta) sqlparse.Expr {
	if e == nil {
		return nil
	}
	str := strings.ToUpper(e.String())
	for _, c := range cols {
		if strings.ToUpper(c.Name) == str {
			return &sqlparse.ColumnRef{Name: c.Name}
		}
	}
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		return &sqlparse.BinaryExpr{Op: x.Op, L: rewriteAggRefs(x.L, cols), R: rewriteAggRefs(x.R, cols)}
	case *sqlparse.BetweenExpr:
		return &sqlparse.BetweenExpr{
			Target: rewriteAggRefs(x.Target, cols),
			Lo:     rewriteAggRefs(x.Lo, cols),
			Hi:     rewriteAggRefs(x.Hi, cols),
		}
	case *sqlparse.NotExpr:
		return &sqlparse.NotExpr{Inner: rewriteAggRefs(x.Inner, cols)}
	}
	return e
}

// buildProjection expands stars and binds select expressions.
func (pc *planContext) buildProjection(child Operator) (Operator, error) {
	inCols := child.Columns()
	var exprs []boundExpr
	var outCols []ColMeta
	for _, item := range pc.stmt.Items {
		if item.Star {
			for ord, c := range inCols {
				if item.StarTable != "" && !strings.EqualFold(c.Table, item.StarTable) {
					continue
				}
				exprs = append(exprs, boundCol{ord})
				outCols = append(outCols, c)
			}
			continue
		}
		b, err := bind(item.Expr, inCols)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
				name = cr.Name
			} else {
				name = item.Expr.String()
			}
		}
		exprs = append(exprs, b)
		outCols = append(outCols, ColMeta{Name: name, Kind: exprKind(item.Expr, inCols)})
	}
	return &projectOp{child: child, exprs: exprs, cols: outCols}, nil
}

// buildAggregate compiles GROUP BY + aggregate select items.
func (pc *planContext) buildAggregate(child Operator) (Operator, error) {
	inCols := child.Columns()
	agg := &aggregateOp{child: child}
	groupStrs := make([]string, len(pc.stmt.GroupBy))
	for i, g := range pc.stmt.GroupBy {
		b, err := bind(g, inCols)
		if err != nil {
			return nil, err
		}
		agg.keys = append(agg.keys, b)
		groupStrs[i] = strings.ToUpper(g.String())
	}
	for _, item := range pc.stmt.Items {
		if item.Star {
			return nil, fmt.Errorf("sqlexec: SELECT * cannot be combined with aggregation")
		}
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
		}
		if fe, ok := item.Expr.(*sqlparse.FuncExpr); ok && fe.IsAggregate() {
			it := aggItem{keyIdx: -1, fn: fe.Name, star: fe.Star, name: name, kind: exprKind(item.Expr, inCols)}
			if !fe.Star {
				b, err := bind(fe.Args[0], inCols)
				if err != nil {
					return nil, err
				}
				it.arg = b
			}
			agg.items = append(agg.items, it)
			agg.cols = append(agg.cols, ColMeta{Name: name, Kind: it.kind})
			continue
		}
		// Non-aggregate item must match a GROUP BY expression.
		keyIdx := -1
		for i, gs := range groupStrs {
			if strings.ToUpper(item.Expr.String()) == gs {
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			return nil, fmt.Errorf("sqlexec: %s must appear in GROUP BY or an aggregate", item.Expr)
		}
		agg.items = append(agg.items, aggItem{keyIdx: keyIdx, name: name, kind: exprKind(item.Expr, inCols)})
		agg.cols = append(agg.cols, ColMeta{Name: name, Kind: exprKind(item.Expr, inCols)})
	}
	return agg, nil
}
