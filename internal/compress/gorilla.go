package compress

import (
	"encoding/binary"
	"math"
	"math/bits"
)

// Lossless XOR float compression (Gorilla-style). The paper requires that
// "both of the algorithms support lossless compression"; this codec is the
// lossless path the tsstore uses when a tag is configured with a zero error
// bound but its values are not linear enough for swinging-door to win.
//
// Each value is XORed with its predecessor. A zero XOR emits a single 0
// bit. Otherwise a 1 bit is followed by either a 0 bit (the meaningful bits
// fit the previous leading/trailing window) and the window's bits, or a 1
// bit and a new 5-bit leading-zero count, 6-bit bit length, and the bits.

// CompressXOR losslessly encodes values.
func CompressXOR(dst []byte, values []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	if len(values) == 0 {
		return dst
	}
	w := NewBitWriter(dst)
	first := math.Float64bits(values[0])
	w.WriteBits(first, 64)
	prev := first
	prevLead, prevTrail := uint(65), uint(0)
	for _, v := range values[1:] {
		cur := math.Float64bits(v)
		x := cur ^ prev
		prev = cur
		if x == 0 {
			w.WriteBit(false)
			continue
		}
		w.WriteBit(true)
		lead := uint(bits.LeadingZeros64(x))
		trail := uint(bits.TrailingZeros64(x))
		if lead > 31 {
			lead = 31
		}
		if prevLead <= lead && trail >= prevTrail && prevLead != 65 {
			// Fits inside the previous window.
			w.WriteBit(false)
			width := 64 - prevLead - prevTrail
			w.WriteBits(x>>prevTrail, width)
			continue
		}
		w.WriteBit(true)
		width := 64 - lead - trail
		w.WriteBits(uint64(lead), 5)
		w.WriteBits(uint64(width-1), 6) // 1..64 stored as 0..63
		w.WriteBits(x>>trail, width)
		prevLead, prevTrail = lead, trail
	}
	return w.Bytes()
}

// DecompressXOR reconstructs values written by CompressXOR. Like the
// quantization codec, it consumes the whole framed block.
func DecompressXOR(b []byte) ([]float64, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<24 {
		return nil, ErrCorrupt
	}
	b = b[k:]
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	r := NewBitReader(b)
	first, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	out[0] = math.Float64frombits(first)
	prev := first
	var lead, width uint
	for i := 1; i < int(n); i++ {
		same, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if !same {
			out[i] = math.Float64frombits(prev)
			continue
		}
		newWindow, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if newWindow {
			l, err := r.ReadBits(5)
			if err != nil {
				return nil, err
			}
			wdt, err := r.ReadBits(6)
			if err != nil {
				return nil, err
			}
			lead = uint(l)
			width = uint(wdt) + 1
		}
		if width == 0 || lead+width > 64 {
			return nil, ErrCorrupt
		}
		bits, err := r.ReadBits(width)
		if err != nil {
			return nil, err
		}
		trail := 64 - lead - width
		prev ^= bits << trail
		out[i] = math.Float64frombits(prev)
	}
	return out, nil
}
