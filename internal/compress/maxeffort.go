package compress

import (
	"encoding/binary"
	"math"
)

// Maximum-effort column encoding for the cold storage tier. Hot-path
// encodes pick one codec from cheap heuristics; cold compaction runs once
// per blob lifetime, so it can afford to try every lossless candidate,
// verify each by decoding, and keep the smallest.

// CodecDelta is the bit-packed integral delta-of-delta codec (value 4 in
// the column codec byte). It applies only to columns whose values are all
// integral float64s: the sequence is converted to int64, delta-of-delta
// transformed, and packed with Gorilla-timestamp-style variable-width
// buckets. Counters, ramps, and sawtooths — the dominant shapes in
// operational telemetry — collapse to about one bit per value.
const CodecDelta Codec = 4

// appendIntDelta encodes ints as CodecDelta payload (codec byte included).
func appendIntDelta(dst []byte, ints []int64) []byte {
	dst = append(dst, byte(CodecDelta))
	dst = binary.AppendUvarint(dst, uint64(len(ints)))
	if len(ints) == 0 {
		return dst
	}
	dst = AppendVarint(dst, ints[0])
	if len(ints) == 1 {
		return dst
	}
	prevDelta := ints[1] - ints[0]
	dst = AppendVarint(dst, prevDelta)
	w := NewBitWriter(dst)
	prev := ints[1]
	for _, v := range ints[2:] {
		d := v - prev
		dod := Zigzag(d - prevDelta)
		switch {
		case dod == 0:
			w.WriteBit(false)
		case dod < 1<<7:
			w.WriteBits(0b10, 2)
			w.WriteBits(dod, 7)
		case dod < 1<<10:
			w.WriteBits(0b110, 3)
			w.WriteBits(dod, 10)
		case dod < 1<<16:
			w.WriteBits(0b1110, 4)
			w.WriteBits(dod, 16)
		case dod < 1<<32:
			w.WriteBits(0b11110, 5)
			w.WriteBits(dod, 32)
		default:
			w.WriteBits(0b11111, 5)
			w.WriteBits(dod, 64)
		}
		prevDelta = d
		prev = v
	}
	return w.Bytes()
}

// decodeIntDelta decodes a CodecDelta payload (codec byte stripped) back
// into float64s.
func decodeIntDelta(b []byte) ([]float64, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<24 {
		return nil, ErrCorrupt
	}
	b = b[k:]
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	v0, b, err := Varint(b)
	if err != nil {
		return nil, err
	}
	out[0] = float64(v0)
	if n == 1 {
		return out, nil
	}
	delta, b, err := Varint(b)
	if err != nil {
		return nil, err
	}
	prev := v0 + delta
	out[1] = float64(prev)
	r := NewBitReader(b)
	for i := 2; i < int(n); i++ {
		var width uint
		zero, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if !zero {
			// control bit 0: delta repeats
			prev += delta
			out[i] = float64(prev)
			continue
		}
		for _, w := range []uint{7, 10, 16, 32} {
			more, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			if !more {
				width = w
				break
			}
		}
		if width == 0 {
			width = 64
		}
		dod, err := r.ReadBits(width)
		if err != nil {
			return nil, err
		}
		delta += Unzigzag(dod)
		prev += delta
		out[i] = float64(prev)
	}
	return out, nil
}

// integralColumn converts values to int64 when every value is an integer
// that round-trips exactly through the conversion (rejects NaN, ±Inf,
// fractions, -0, and magnitudes beyond the float64 integer range).
func integralColumn(values []float64) ([]int64, bool) {
	const maxExact = 1 << 53
	ints := make([]int64, len(values))
	for i, v := range values {
		if v != math.Trunc(v) || v < -maxExact || v > maxExact {
			return nil, false
		}
		n := int64(v)
		if math.Float64bits(float64(n)) != math.Float64bits(v) {
			return nil, false
		}
		ints[i] = n
	}
	return ints, true
}

// EncodeColumnMaxEffort appends the smallest encoding of values that
// reconstructs bit-exactly. It tries every lossless candidate — swinging
// door at zero deviation (collapses exactly-collinear runs), bit-packed
// integral delta-of-delta, XOR, raw — and verifies each by decoding and
// comparing bit patterns before it may win, so codec bugs or rounding in
// a candidate can cost size but never correctness. The cold compaction
// tier uses this; the ingest path keeps the cheap single-codec picks.
func EncodeColumnMaxEffort(dst []byte, values []float64) []byte {
	best := appendRaw(nil, values)
	consider := func(cand []byte) {
		if len(cand) >= len(best) {
			return
		}
		dec, err := DecodeColumn(cand)
		if err != nil || len(dec) != len(values) {
			return
		}
		for i := range dec {
			if math.Float64bits(dec[i]) != math.Float64bits(values[i]) {
				return
			}
		}
		best = cand
	}
	consider(CompressLinear([]byte{byte(CodecLinear)}, values, 0))
	if ints, ok := integralColumn(values); ok {
		consider(appendIntDelta(nil, ints))
	}
	consider(CompressXOR([]byte{byte(CodecXOR)}, values))
	return append(dst, best...)
}
