package compress

// BitWriter packs integers of arbitrary bit width into a byte slice,
// most-significant bit first. The quantization codec uses it to store
// b-bit symbols.
type BitWriter struct {
	buf  []byte
	cur  uint64 // bits accumulated, left-aligned in the low `n` bits
	nCur uint   // number of valid bits in cur
}

// NewBitWriter returns a writer appending to buf (may be nil).
func NewBitWriter(buf []byte) *BitWriter { return &BitWriter{buf: buf} }

// WriteBits appends the low `width` bits of v. width must be 0..64.
func (w *BitWriter) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width > 32 {
		// Split to keep the accumulator within 64 bits.
		w.WriteBits(v>>32, width-32)
		w.WriteBits(v&0xFFFFFFFF, 32)
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	w.cur = w.cur<<width | v
	w.nCur += width
	for w.nCur >= 8 {
		w.nCur -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nCur))
	}
	// Keep only the unflushed low bits to avoid overflow on the next shift.
	if w.nCur > 0 {
		w.cur &= (1 << w.nCur) - 1
	} else {
		w.cur = 0
	}
}

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Bytes flushes any partial byte (zero padded) and returns the buffer.
func (w *BitWriter) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nCur)))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// BitReader reads back bit sequences written by BitWriter.
type BitReader struct {
	buf  []byte
	pos  int // next byte index
	cur  uint64
	nCur uint
}

// NewBitReader reads from buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits returns the next `width` bits. It reports ErrCorrupt when the
// stream is exhausted.
func (r *BitReader) ReadBits(width uint) (uint64, error) {
	if width == 0 {
		return 0, nil
	}
	if width > 32 {
		hi, err := r.ReadBits(width - 32)
		if err != nil {
			return 0, err
		}
		lo, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return hi<<32 | lo, nil
	}
	for r.nCur < width {
		if r.pos >= len(r.buf) {
			return 0, ErrCorrupt
		}
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.nCur += 8
	}
	r.nCur -= width
	v := r.cur >> r.nCur
	if width < 64 {
		v &= (1 << width) - 1
	}
	if r.nCur > 0 {
		r.cur &= (1 << r.nCur) - 1
	} else {
		r.cur = 0
	}
	return v, nil
}

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}
