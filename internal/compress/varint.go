// Package compress implements the ODH compression pipeline from §3 of the
// paper: delta/varint timestamp compression, swinging-door linear
// compression for smooth low-frequency tags, quantization for fluctuating
// high-frequency tags, and a lossless XOR (Gorilla-style) float codec. The
// tsstore layer picks a codec per tag column based on data variability
// ("data variability-aware compression strategy") and frames the result
// into ValueBlobs.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt reports undecodable compressed data.
var ErrCorrupt = errors.New("compress: corrupt data")

// Zigzag maps signed integers to unsigned so small magnitudes (of either
// sign) encode in few varint bytes.
func Zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendVarint appends the zigzag varint encoding of v.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, Zigzag(v))
}

// Varint decodes a value written by AppendVarint.
func Varint(b []byte) (int64, []byte, error) {
	u, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	return Unzigzag(u), b[n:], nil
}

// AppendDeltas encodes vals as first value + zigzag-varint deltas. It is
// the paper's "timestamps stored as delta values to their previous values,
// which requires fewer bits".
func AppendDeltas(dst []byte, vals []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	if len(vals) == 0 {
		return dst
	}
	dst = AppendVarint(dst, vals[0])
	prev := vals[0]
	for _, v := range vals[1:] {
		dst = AppendVarint(dst, v-prev)
		prev = v
	}
	return dst
}

// Deltas decodes a slice written by AppendDeltas and returns the rest of b.
func Deltas(b []byte) ([]int64, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, nil, ErrCorrupt
	}
	b = b[k:]
	if n > 1<<24 {
		return nil, nil, fmt.Errorf("%w: implausible count %d", ErrCorrupt, n)
	}
	out := make([]int64, n)
	if n == 0 {
		return out, b, nil
	}
	var err error
	out[0], b, err = Varint(b)
	if err != nil {
		return nil, nil, err
	}
	for i := 1; i < int(n); i++ {
		var d int64
		d, b, err = Varint(b)
		if err != nil {
			return nil, nil, err
		}
		out[i] = out[i-1] + d
	}
	return out, b, nil
}

// AppendDeltaOfDeltas encodes vals as first value, first delta, then
// second-order deltas; regular time series collapse to near-zero bytes per
// timestamp.
func AppendDeltaOfDeltas(dst []byte, vals []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	if len(vals) == 0 {
		return dst
	}
	dst = AppendVarint(dst, vals[0])
	if len(vals) == 1 {
		return dst
	}
	prevDelta := vals[1] - vals[0]
	dst = AppendVarint(dst, prevDelta)
	prev := vals[1]
	for _, v := range vals[2:] {
		d := v - prev
		dst = AppendVarint(dst, d-prevDelta)
		prevDelta = d
		prev = v
	}
	return dst
}

// DeltaOfDeltas decodes a slice written by AppendDeltaOfDeltas.
func DeltaOfDeltas(b []byte) ([]int64, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, nil, ErrCorrupt
	}
	b = b[k:]
	if n > 1<<24 {
		return nil, nil, fmt.Errorf("%w: implausible count %d", ErrCorrupt, n)
	}
	out := make([]int64, n)
	if n == 0 {
		return out, b, nil
	}
	var err error
	out[0], b, err = Varint(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 1 {
		return out, b, nil
	}
	delta, b, err := Varint(b)
	if err != nil {
		return nil, nil, err
	}
	out[1] = out[0] + delta
	for i := 2; i < int(n); i++ {
		var dd int64
		dd, b, err = Varint(b)
		if err != nil {
			return nil, nil, err
		}
		delta += dd
		out[i] = out[i-1] + delta
	}
	return out, b, nil
}
