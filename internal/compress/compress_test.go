package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZigzagRoundtrip(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		return Unzigzag(Zigzag(v)) == v
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Small magnitudes map to small codes.
	for _, c := range []struct {
		in   int64
		want uint64
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}} {
		if got := Zigzag(c.in); got != c.want {
			t.Fatalf("Zigzag(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDeltasRoundtrip(t *testing.T) {
	if err := quick.Check(func(vals []int64) bool {
		enc := AppendDeltas(nil, vals)
		dec, rest, err := Deltas(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			if dec[i] != vals[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaOfDeltasRoundtrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{42},
		{1, 2},
		{0, 1000, 2000, 3000, 4000}, // perfectly regular
		{-5, 10, -20, 40, 81, 163},
	}
	for _, vals := range cases {
		enc := AppendDeltaOfDeltas(nil, vals)
		dec, rest, err := DeltaOfDeltas(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%v: %v", vals, err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("%v: len %d", vals, len(dec))
		}
		for i := range vals {
			if dec[i] != vals[i] {
				t.Fatalf("%v: idx %d", vals, i)
			}
		}
	}
}

func TestDeltaOfDeltasRegularIsTiny(t *testing.T) {
	// A regular 15-minute interval series: after the first two values, each
	// timestamp costs one byte (the zero second-order delta).
	ts := make([]int64, 1000)
	for i := range ts {
		ts[i] = 1386000000000 + int64(i)*900000
	}
	enc := AppendDeltaOfDeltas(nil, ts)
	if len(enc) > 2+10+10+len(ts) {
		t.Fatalf("regular series encoded to %d bytes, want ~%d", len(enc), len(ts))
	}
	plain := len(ts) * 8
	if len(enc)*7 > plain {
		t.Fatalf("compression ratio too low: %d vs %d raw", len(enc), plain)
	}
}

func TestVarintCorruption(t *testing.T) {
	if _, _, err := Varint(nil); err == nil {
		t.Fatal("empty varint accepted")
	}
	if _, _, err := Deltas([]byte{0xFF}); err == nil {
		t.Fatal("truncated deltas accepted")
	}
	// Implausible count is rejected rather than allocating gigabytes.
	huge := AppendVarint(nil, 0)
	huge[0] = 0xFF
	big := append([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, 0)
	if _, _, err := Deltas(big); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestBitpackRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewBitWriter(nil)
	type item struct {
		v     uint64
		width uint
	}
	var items []item
	for i := 0; i < 1000; i++ {
		width := uint(1 + rng.Intn(64))
		v := rng.Uint64()
		if width < 64 {
			v &= (1 << width) - 1
		}
		items = append(items, item{v, width})
		w.WriteBits(v, width)
	}
	r := NewBitReader(w.Bytes())
	for i, it := range items {
		got, err := r.ReadBits(it.width)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d: got %x want %x (width %d)", i, got, it.v, it.width)
		}
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err == nil {
		t.Fatal("read past end accepted")
	}
}

func TestLinearLosslessOnLine(t *testing.T) {
	// Exactly collinear data compresses to two spike points and decodes
	// exactly, even at maxDev 0.
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = 3 + 0.25*float64(i)
	}
	enc := CompressLinear(nil, vals, 0)
	if len(enc) > 64 {
		t.Fatalf("collinear run encoded to %d bytes", len(enc))
	}
	dec, _, err := DecompressLinear(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(dec[i]-vals[i]) > 1e-9 {
			t.Fatalf("lossless linear mismatch at %d: %v != %v", i, dec[i], vals[i])
		}
	}
}

func TestLinearErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(500)
		vals := make([]float64, n)
		v := 100.0
		for i := range vals {
			v += rng.NormFloat64() * 0.05 // smooth random walk
			vals[i] = v
		}
		for _, maxDev := range []float64{0, 0.01, 0.1, 1.0} {
			if worst := MaxLinearError(vals, maxDev); worst > maxDev+1e-9 {
				t.Fatalf("trial %d maxDev %v: worst error %v", trial, maxDev, worst)
			}
		}
	}
}

func TestLinearCompressesSmoothData(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 20 + 0.001*float64(i) + 0.02*math.Sin(float64(i)/200)
	}
	enc := CompressLinear(nil, vals, 0.1)
	raw := len(vals) * 8
	if len(enc)*10 > raw {
		t.Fatalf("smooth data: %d bytes vs %d raw (want >=10x)", len(enc), raw)
	}
}

func TestLinearEdgeCases(t *testing.T) {
	for _, vals := range [][]float64{nil, {7}, {7, 7}, {7, 8}} {
		enc := CompressLinear(nil, vals, 0.5)
		dec, _, err := DecompressLinear(enc)
		if err != nil {
			t.Fatalf("%v: %v", vals, err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("%v: len %d", vals, len(dec))
		}
		for i := range vals {
			if math.Abs(dec[i]-vals[i]) > 0.5 {
				t.Fatalf("%v: idx %d", vals, i)
			}
		}
	}
}

func TestQuantRoundtripWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 777)
	for i := range vals {
		vals[i] = rng.Float64()*200 - 100
	}
	for _, bits := range []uint{1, 4, 8, 12, 16, 32} {
		enc := CompressQuant(nil, vals, bits)
		dec, err := DecompressQuant(enc)
		if err != nil {
			t.Fatalf("bits %d: %v", bits, err)
		}
		bound := QuantErrorBound(-100, 100, bits) * 1.01
		for i := range vals {
			if math.Abs(dec[i]-vals[i]) > bound {
				t.Fatalf("bits %d idx %d: err %v > bound %v", bits, i, math.Abs(dec[i]-vals[i]), bound)
			}
		}
	}
}

func TestQuantRatio(t *testing.T) {
	// The paper's 4-to-16-fold claim: 8-bit quantization of float64 is 8x
	// minus the block header.
	vals := make([]float64, 4096)
	rng := rand.New(rand.NewSource(9))
	for i := range vals {
		vals[i] = rng.Float64()
	}
	enc := CompressQuant(nil, vals, 8)
	ratio := float64(len(vals)*8) / float64(len(enc))
	if ratio < 7 || ratio > 8.5 {
		t.Fatalf("8-bit quantization ratio %.2f, want ~8", ratio)
	}
	enc4 := CompressQuant(nil, vals, 4)
	ratio4 := float64(len(vals)*8) / float64(len(enc4))
	if ratio4 < 14 {
		t.Fatalf("4-bit quantization ratio %.2f, want ~16", ratio4)
	}
}

func TestQuantDegenerate(t *testing.T) {
	vals := []float64{5, 5, 5, 5}
	dec, err := DecompressQuant(CompressQuant(nil, vals, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dec {
		if v != 5 {
			t.Fatalf("constant block decoded to %v", v)
		}
	}
	if _, err := DecompressQuant(CompressQuant(nil, nil, 8)); err != nil {
		t.Fatalf("empty block: %v", err)
	}
}

func TestXORLossless(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		enc := CompressXOR(nil, vals)
		dec, err := DecompressXOR(enc)
		if err != nil || len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(dec[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestXORCompressesStableData(t *testing.T) {
	// Slowly changing values share exponent and mantissa prefixes.
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 220 + float64(i%4)
	}
	enc := CompressXOR(nil, vals)
	if len(enc)*3 > len(vals)*8 {
		t.Fatalf("stable data: %d bytes vs %d raw", len(enc), len(vals)*8)
	}
}

func TestEncodeColumnPolicyDispatch(t *testing.T) {
	smooth := make([]float64, 256)
	for i := range smooth {
		smooth[i] = float64(i) * 0.5
	}
	noisy := make([]float64, 256)
	rng := rand.New(rand.NewSource(2))
	for i := range noisy {
		noisy[i] = rng.Float64() * 1000
	}

	if c := ColumnCodec(EncodeColumn(nil, smooth, Policy{MaxDev: 0.1})); c != CodecLinear {
		t.Fatalf("smooth lossy chose %v, want linear", c)
	}
	if c := ColumnCodec(EncodeColumn(nil, noisy, Policy{MaxDev: 0.1})); c != CodecQuant {
		t.Fatalf("noisy lossy chose %v, want quant", c)
	}
	if c := ColumnCodec(EncodeColumn(nil, noisy, Policy{Disable: true})); c != CodecRaw {
		t.Fatalf("disabled chose %v, want raw", c)
	}
	lossless := EncodeColumn(nil, noisy, Policy{})
	dec, err := DecodeColumn(lossless)
	if err != nil {
		t.Fatal(err)
	}
	for i := range noisy {
		if dec[i] != noisy[i] {
			t.Fatalf("lossless roundtrip mismatch at %d", i)
		}
	}
}

func TestEncodeColumnLossyBound(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(300)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()*100 - 50
		}
		const maxDev = 0.25
		dec, err := DecodeColumn(EncodeColumn(nil, vals, Policy{MaxDev: maxDev}))
		if err != nil || len(dec) != n {
			return false
		}
		for i := range vals {
			if math.Abs(dec[i]-vals[i]) > maxDev*1.01 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeColumnCorrupt(t *testing.T) {
	if _, err := DecodeColumn(nil); err == nil {
		t.Fatal("empty column accepted")
	}
	if _, err := DecodeColumn([]byte{99, 1, 2, 3}); err == nil {
		t.Fatal("unknown codec accepted")
	}
	good := EncodeColumn(nil, []float64{1, 2, 3, 4, 5, 6, 7, 8}, Policy{})
	if _, err := DecodeColumn(good[:len(good)/2]); err == nil {
		t.Fatal("truncated column accepted")
	}
}

func BenchmarkLinearCompress(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = 20 + 0.01*float64(i) + 0.05*math.Sin(float64(i)/40)
	}
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		CompressLinear(nil, vals, 0.1)
	}
}

func BenchmarkQuantCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		CompressQuant(nil, vals, 10)
	}
}

func BenchmarkXORCompress(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = 220 + float64(i%16)*0.25
	}
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		CompressXOR(nil, vals)
	}
}

func BenchmarkXORDecompress(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = 220 + float64(i%16)*0.25
	}
	enc := CompressXOR(nil, vals)
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecompressXOR(enc)
	}
}
