package compress

import (
	"encoding/binary"
	"math"
)

// Linear compression (the paper's reference [7], Hale & Sellars' historical
// data recording, widely known as swinging-door trending): successive
// values that fit on a straight line within maxDev are replaced by the
// line's two "spike" endpoints. Decompression reconstructs every original
// sample position by linear interpolation, guaranteeing
// |reconstructed - original| <= maxDev.
//
// With maxDev == 0 the algorithm is lossless: only exactly collinear runs
// collapse (common for constant tags such as status codes or stable meter
// readings).

// linearSegment is one retained spike point: the sample index (within the
// batch) and its exact value.
type linearSegment struct {
	idx int
	val float64
}

// CompressLinear encodes values (sampled at positions 0..n-1) with
// swinging-door trending under the given maximum deviation. The positions
// are batch-local sample indexes; the caller stores timestamps separately.
func CompressLinear(dst []byte, values []float64, maxDev float64) []byte {
	segs := swingingDoor(values, maxDev)
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	dst = binary.AppendUvarint(dst, uint64(len(segs)))
	prevIdx := 0
	for i, s := range segs {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(s.idx))
		} else {
			dst = binary.AppendUvarint(dst, uint64(s.idx-prevIdx))
		}
		prevIdx = s.idx
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.val))
	}
	return dst
}

// DecompressLinear reconstructs the full value slice written by
// CompressLinear and returns the remaining bytes.
func DecompressLinear(b []byte) ([]float64, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<24 {
		return nil, nil, ErrCorrupt
	}
	b = b[k:]
	nseg, k := binary.Uvarint(b)
	if k <= 0 || nseg > n+1 {
		return nil, nil, ErrCorrupt
	}
	b = b[k:]
	segs := make([]linearSegment, nseg)
	prevIdx := 0
	for i := range segs {
		d, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, nil, ErrCorrupt
		}
		b = b[k:]
		if i == 0 {
			segs[i].idx = int(d)
		} else {
			segs[i].idx = prevIdx + int(d)
		}
		prevIdx = segs[i].idx
		if len(b) < 8 {
			return nil, nil, ErrCorrupt
		}
		segs[i].val = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	out := make([]float64, n)
	if n == 0 {
		return out, b, nil
	}
	if len(segs) == 0 {
		return nil, nil, ErrCorrupt
	}
	// Interpolate between consecutive spike points.
	for s := 0; s+1 < len(segs); s++ {
		a, c := segs[s], segs[s+1]
		if a.idx < 0 || c.idx >= int(n) || c.idx <= a.idx {
			return nil, nil, ErrCorrupt
		}
		span := float64(c.idx - a.idx)
		out[a.idx] = a.val
		for i := a.idx + 1; i < c.idx; i++ {
			t := float64(i-a.idx) / span
			out[i] = a.val + t*(c.val-a.val)
		}
		out[c.idx] = c.val
	}
	// A single segment means a constant run.
	if len(segs) == 1 {
		for i := range out {
			out[i] = segs[0].val
		}
	}
	return out, b, nil
}

// swingingDoor returns the retained spike points for values under maxDev.
// Segment endpoints are placed on a slope consistent with every door
// constraint collected since the anchor, which is what guarantees the
// maxDev bound for all interior samples (emitting the raw data value
// instead would break the bound). At maxDev == 0 the doors only stay open
// for exactly collinear runs, so reconstruction is exact up to
// floating-point rounding.
func swingingDoor(values []float64, maxDev float64) []linearSegment {
	n := len(values)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []linearSegment{{0, values[0]}}
	}
	segs := []linearSegment{{0, values[0]}}
	anchor := 0
	anchorVal := values[0]
	// Door slopes measured from the (possibly approximated) anchor point.
	slopeHi := math.Inf(1)
	slopeLo := math.Inf(-1)
	for i := 1; i < n; i++ {
		dx := float64(i - anchor)
		hi := (values[i] + maxDev - anchorVal) / dx
		lo := (values[i] - maxDev - anchorVal) / dx
		newHi := math.Min(slopeHi, hi)
		newLo := math.Max(slopeLo, lo)
		if newLo <= newHi {
			slopeHi, slopeLo = newHi, newLo
			continue
		}
		// The door closed: end the segment at i-1 on a consistent slope;
		// that point anchors the next segment. The door cannot close on
		// the first point after an anchor (a single point's constraints
		// are always consistent), so i-1 > anchor here.
		s := midSlope(slopeLo, slopeHi)
		endVal := anchorVal + s*float64(i-1-anchor)
		segs = append(segs, linearSegment{i - 1, endVal})
		anchor, anchorVal = i-1, endVal
		dx = float64(i - anchor)
		slopeHi = (values[i] + maxDev - anchorVal) / dx
		slopeLo = (values[i] - maxDev - anchorVal) / dx
	}
	s := midSlope(slopeLo, slopeHi)
	segs = append(segs, linearSegment{n - 1, anchorVal + s*float64(n-1-anchor)})
	return segs
}

// midSlope picks a slope inside the open door, preferring the middle.
func midSlope(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return lo + (hi-lo)/2
	}
}

// MaxLinearError returns the maximum absolute reconstruction error of
// swinging-door compression at maxDev over values, for verification and
// the EXPERIMENTS error-bound report.
func MaxLinearError(values []float64, maxDev float64) float64 {
	enc := CompressLinear(nil, values, maxDev)
	dec, _, err := DecompressLinear(enc)
	if err != nil || len(dec) != len(values) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range values {
		if e := math.Abs(dec[i] - values[i]); e > worst {
			worst = e
		}
	}
	return worst
}
