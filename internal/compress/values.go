package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec identifies the per-column value encoding inside a ValueBlob.
type Codec uint8

// Column codecs. The leading byte of every encoded column names its codec,
// so mixed blobs decode without external metadata.
const (
	CodecRaw    Codec = 0 // 8 bytes per value, no transform
	CodecLinear Codec = 1 // swinging-door linear (paper ref [7])
	CodecQuant  Codec = 2 // uniform quantization (paper ref [8])
	CodecXOR    Codec = 3 // lossless XOR float compression
	// CodecDelta = 4 (maxeffort.go): bit-packed integral delta-of-delta,
	// written only by the cold-tier EncodeColumnMaxEffort path.
)

// String names the codec for logs and EXPERIMENTS reports.
func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecLinear:
		return "linear"
	case CodecQuant:
		return "quant"
	case CodecXOR:
		return "xor"
	case CodecDelta:
		return "delta"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// Policy is the per-tag compression configuration. The zero value asks for
// lossless storage.
type Policy struct {
	// MaxDev is the tolerated absolute reconstruction error. Zero means
	// lossless.
	MaxDev float64
	// Disable turns compression off entirely (raw storage); used by the
	// compression on/off ablation.
	Disable bool
}

// Lossless reports whether the policy requires exact reconstruction.
func (p Policy) Lossless() bool { return p.MaxDev == 0 }

// EncodeColumn appends one encoded value column to dst using the
// variability-aware strategy from §3 of the paper: smooth series go to
// linear compression, fluctuating series go to quantization (lossy) or XOR
// (lossless). Values must be NaN-free; NULL handling lives in the blob
// framing's presence bitmap.
func EncodeColumn(dst []byte, values []float64, pol Policy) []byte {
	if pol.Disable {
		return appendRaw(dst, values)
	}
	if pol.Lossless() {
		// Constant runs collapse under linear with bitwise exactness; for
		// everything else XOR is the only codec that guarantees bit-exact
		// reconstruction (linear interpolation can round).
		if isConstant(values) {
			dst = append(dst, byte(CodecLinear))
			return CompressLinear(dst, values, 0)
		}
		dst = append(dst, byte(CodecXOR))
		return CompressXOR(dst, values)
	}
	// Lossy: smoothness decides, mirroring "for smooth values ... linear
	// compression ... for non-linear high-frequency tag values ...
	// quantization".
	if isSmooth(values, pol.MaxDev) {
		dst = append(dst, byte(CodecLinear))
		return CompressLinear(dst, values, pol.MaxDev)
	}
	bits := quantBitsFor(values, pol.MaxDev)
	dst = append(dst, byte(CodecQuant))
	return CompressQuant(dst, values, bits)
}

// DecodeColumn decodes one column produced by EncodeColumn. b must contain
// exactly the column's bytes (the blob framing stores lengths).
func DecodeColumn(b []byte) ([]float64, error) {
	if len(b) == 0 {
		return nil, ErrCorrupt
	}
	codec, payload := Codec(b[0]), b[1:]
	switch codec {
	case CodecRaw:
		return decodeRaw(payload)
	case CodecLinear:
		vals, _, err := DecompressLinear(payload)
		return vals, err
	case CodecQuant:
		return DecompressQuant(payload)
	case CodecXOR:
		return DecompressXOR(payload)
	case CodecDelta:
		return decodeIntDelta(payload)
	}
	return nil, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, b[0])
}

// ColumnCodec peeks at the codec byte of an encoded column.
func ColumnCodec(b []byte) Codec {
	if len(b) == 0 {
		return CodecRaw
	}
	return Codec(b[0])
}

func appendRaw(dst []byte, values []float64) []byte {
	dst = append(dst, byte(CodecRaw))
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	for _, v := range values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func decodeRaw(b []byte) ([]float64, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<24 {
		return nil, ErrCorrupt
	}
	b = b[k:]
	if len(b) < int(n)*8 {
		return nil, ErrCorrupt
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// isConstant reports whether all values are bitwise identical.
func isConstant(values []float64) bool {
	for i := 1; i < len(values); i++ {
		if math.Float64bits(values[i]) != math.Float64bits(values[0]) {
			return false
		}
	}
	return true
}

// isSmooth reports whether swinging-door would retain fewer than a quarter
// of the samples, i.e. the series is "smooth" in the paper's sense.
func isSmooth(values []float64, maxDev float64) bool {
	if len(values) < 4 {
		return true
	}
	segs := swingingDoor(values, maxDev)
	return len(segs)*4 < len(values)
}

// quantBitsFor picks the smallest bit width whose quantization error bound
// satisfies maxDev for this block's range.
func quantBitsFor(values []float64, maxDev float64) uint {
	if len(values) == 0 {
		return 1
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for bits := uint(1); bits <= 32; bits++ {
		if QuantErrorBound(lo, hi, bits) <= maxDev {
			return bits
		}
	}
	return 32
}
