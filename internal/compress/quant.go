package compress

import (
	"encoding/binary"
	"math"
)

// Quantization (the paper's reference [8]): a many-to-few mapping of the
// value range onto 2^bits levels, so each sample needs only `bits` bits
// instead of 64. The paper cites a 4-to-16-fold ratio depending on the
// bits per point; the error bound is half a quantization step. The encoder
// stores min/max of the block so the decoder can reconstruct level centers.

// CompressQuant encodes values with `bits`-bit uniform quantization
// (1 <= bits <= 32). The maximum reconstruction error is
// (max-min) / 2^bits / 2 for the block.
func CompressQuant(dst []byte, values []float64, bits uint) []byte {
	if bits < 1 {
		bits = 1
	}
	if bits > 32 {
		bits = 32
	}
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	dst = append(dst, byte(bits))
	if len(values) == 0 {
		return dst
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(lo))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(hi))
	levels := uint64(1) << bits
	w := NewBitWriter(dst)
	if hi == lo {
		// Degenerate range: all symbols are zero; BitWriter still emits
		// them so the layout stays uniform.
		for range values {
			w.WriteBits(0, bits)
		}
		return w.Bytes()
	}
	step := (hi - lo) / float64(levels)
	for _, v := range values {
		sym := uint64((v - lo) / step)
		if sym >= levels {
			sym = levels - 1
		}
		w.WriteBits(sym, bits)
	}
	return w.Bytes()
}

// DecompressQuant reconstructs a block written by CompressQuant. Each value
// is the center of its quantization level. Because the bit stream is
// zero-padded to a byte boundary, DecompressQuant consumes the entire
// remaining slice belonging to the block; callers must frame blocks
// externally (the ValueBlob framing stores per-column lengths).
func DecompressQuant(b []byte) ([]float64, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<24 {
		return nil, ErrCorrupt
	}
	b = b[k:]
	if len(b) < 1 {
		return nil, ErrCorrupt
	}
	bits := uint(b[0])
	b = b[1:]
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	if len(b) < 16 {
		return nil, ErrCorrupt
	}
	lo := math.Float64frombits(binary.LittleEndian.Uint64(b))
	hi := math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	b = b[16:]
	if hi == lo {
		for i := range out {
			out[i] = lo
		}
		return out, nil
	}
	levels := uint64(1) << bits
	step := (hi - lo) / float64(levels)
	r := NewBitReader(b)
	for i := range out {
		sym, err := r.ReadBits(bits)
		if err != nil {
			return nil, err
		}
		out[i] = lo + (float64(sym)+0.5)*step
	}
	return out, nil
}

// QuantErrorBound returns the worst-case reconstruction error for a block
// with the given range and bit width.
func QuantErrorBound(lo, hi float64, bits uint) float64 {
	if bits < 1 {
		bits = 1
	}
	if bits > 32 {
		bits = 32
	}
	return (hi - lo) / float64(uint64(1)<<bits) / 2
}
