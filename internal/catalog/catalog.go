// Package catalog implements the ODH configuration component (paper §3):
// it manages schema types, data sources, virtual-table registrations, MG
// group assignment, and the per-source statistics that feed the query
// optimizer's cost model. Metadata persists in B-trees inside the same
// page store as the data, so a reopened historian recovers its full
// configuration.
package catalog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"odh/internal/btree"
	"odh/internal/keyenc"
	"odh/internal/model"
	"odh/internal/pagestore"
)

// DefaultGroupSize is the number of low-frequency sources packed into one
// MG group when the historian does not override it (it normally uses the
// configured batch size b, mirroring "the MG structure packs b operational
// points by timestamp from a group of data sources").
const DefaultGroupSize = 64

// Catalog is the metadata store. All methods are safe for concurrent use.
type Catalog struct {
	mu sync.RWMutex

	schemas   *btree.Tree // schema id -> JSON SchemaType
	sources   *btree.Tree // source id -> encoded DataSource
	stats     *btree.Tree // source id -> encoded SourceStats
	vtables   *btree.Tree // name -> schema id
	counters  *btree.Tree // name -> next id
	groupSize int

	bySchemaName map[string]*model.SchemaType
	bySchemaID   map[int64]*model.SchemaType
	srcCache     map[int64]*model.DataSource
	groupMembers map[int64][]int64 // group id -> ordered member source ids
	openGroup    map[int64]int64   // schema id -> group currently filling
	vtableCache  map[string]int64
	schemaAgg    map[int64]model.SourceStats // aggregated stats per schema
	sourceCount  map[int64]int64             // sources per schema
}

// Open loads (or initializes) the catalog inside store.
func Open(store *pagestore.Store, groupSize int) (*Catalog, error) {
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	c := &Catalog{
		groupSize:    groupSize,
		bySchemaName: make(map[string]*model.SchemaType),
		bySchemaID:   make(map[int64]*model.SchemaType),
		srcCache:     make(map[int64]*model.DataSource),
		groupMembers: make(map[int64][]int64),
		openGroup:    make(map[int64]int64),
		vtableCache:  make(map[string]int64),
		schemaAgg:    make(map[int64]model.SourceStats),
		sourceCount:  make(map[int64]int64),
	}
	var err error
	if c.schemas, err = btree.Open(store, "cat.schemas"); err != nil {
		return nil, err
	}
	if c.sources, err = btree.Open(store, "cat.sources"); err != nil {
		return nil, err
	}
	if c.stats, err = btree.Open(store, "cat.stats"); err != nil {
		return nil, err
	}
	if c.vtables, err = btree.Open(store, "cat.vtables"); err != nil {
		return nil, err
	}
	if c.counters, err = btree.Open(store, "cat.counters"); err != nil {
		return nil, err
	}
	if err := c.load(); err != nil {
		return nil, err
	}
	return c, nil
}

// load rebuilds the in-memory caches from the persistent trees.
func (c *Catalog) load() error {
	if err := c.schemas.Scan(nil, nil, func(k, v []byte) bool {
		var s model.SchemaType
		if json.Unmarshal(v, &s) == nil {
			c.bySchemaID[s.ID] = &s
			c.bySchemaName[s.Name] = &s
		}
		return true
	}); err != nil {
		return err
	}
	if err := c.sources.Scan(nil, nil, func(k, v []byte) bool {
		ds, err := decodeSource(v)
		if err != nil {
			return true
		}
		c.srcCache[ds.ID] = ds
		c.sourceCount[ds.SchemaID]++
		if ds.Group != 0 {
			c.groupMembers[ds.Group] = append(c.groupMembers[ds.Group], ds.ID)
		}
		return true
	}); err != nil {
		return err
	}
	// Group member lists must be in slot order; sources were scanned in id
	// order which may differ.
	for g, members := range c.groupMembers {
		sort.Slice(members, func(i, j int) bool {
			return c.srcCache[members[i]].GroupSlot < c.srcCache[members[j]].GroupSlot
		})
		c.groupMembers[g] = members
		// Reopen the group for filling if it has free slots.
		if len(members) < c.groupSize {
			c.openGroup[c.srcCache[members[0]].SchemaID] = g
		}
	}
	if err := c.vtables.Scan(nil, nil, func(k, v []byte) bool {
		name, _, err := keyenc.String(k)
		if err == nil && len(v) == 8 {
			c.vtableCache[name] = int64(binary.LittleEndian.Uint64(v))
		}
		return true
	}); err != nil {
		return err
	}
	return c.stats.Scan(nil, nil, func(k, v []byte) bool {
		id, _, err := keyenc.Int64(k)
		if err != nil {
			return true
		}
		st, err := decodeStats(v)
		if err != nil {
			return true
		}
		var schemaID int64
		if id < 0 {
			// Group stats live under the negated group id.
			members := c.groupMembers[-id]
			if len(members) == 0 {
				return true
			}
			schemaID = c.srcCache[members[0]].SchemaID
		} else {
			ds, ok := c.srcCache[id]
			if !ok {
				return true
			}
			schemaID = ds.SchemaID
		}
		agg := c.schemaAgg[schemaID]
		agg.Merge(st)
		c.schemaAgg[schemaID] = agg
		return true
	})
}

// nextID allocates a monotonically increasing id for the named counter.
// Caller holds c.mu for writing.
func (c *Catalog) nextID(name string) (int64, error) {
	key := keyenc.AppendString(nil, name)
	var next int64 = 1
	if v, err := c.counters.Get(key); err == nil {
		next = int64(binary.LittleEndian.Uint64(v)) + 1
	} else if err != btree.ErrNotFound {
		return 0, err
	}
	if err := c.counters.Put(key, binary.LittleEndian.AppendUint64(nil, uint64(next))); err != nil {
		return 0, err
	}
	return next, nil
}

// CreateSchemaType registers a schema type with default id/timestamp
// column names and returns it.
func (c *Catalog) CreateSchemaType(name string, tags []model.TagDef) (*model.SchemaType, error) {
	return c.CreateSchema(model.SchemaType{Name: name, Tags: tags})
}

// CreateSchema registers a fully specified schema type (custom id and
// timestamp column names included). The ID field is assigned by the
// catalog.
func (c *Catalog) CreateSchema(st model.SchemaType) (*model.SchemaType, error) {
	if st.Name == "" {
		return nil, fmt.Errorf("catalog: empty schema type name")
	}
	if len(st.Tags) == 0 {
		return nil, fmt.Errorf("catalog: schema type %q has no tags", st.Name)
	}
	seen := map[string]bool{st.IDColumn(): true, st.TSColumn(): true}
	for _, t := range st.Tags {
		if t.Name == "" || seen[t.Name] {
			return nil, fmt.Errorf("catalog: schema type %q: empty, duplicate, or reserved tag %q", st.Name, t.Name)
		}
		seen[t.Name] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.bySchemaName[st.Name]; ok {
		return nil, fmt.Errorf("catalog: schema type %q already exists", st.Name)
	}
	id, err := c.nextID("schema")
	if err != nil {
		return nil, err
	}
	st.ID = id
	s := &st
	buf, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	if err := c.schemas.Put(keyenc.AppendInt64(nil, id), buf); err != nil {
		return nil, err
	}
	c.bySchemaID[id] = s
	c.bySchemaName[st.Name] = s
	return s, nil
}

// SchemaByName looks up a schema type by name.
func (c *Catalog) SchemaByName(name string) (*model.SchemaType, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.bySchemaName[name]
	return s, ok
}

// SchemaByID looks up a schema type by id.
func (c *Catalog) SchemaByID(id int64) (*model.SchemaType, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.bySchemaID[id]
	return s, ok
}

// Schemas returns all schema types.
func (c *Catalog) Schemas() []*model.SchemaType {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*model.SchemaType, 0, len(c.bySchemaID))
	for _, s := range c.bySchemaID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RegisterSource adds a data source. Low-frequency sources are assigned to
// an MG group (filling groups up to the configured group size). The stored
// source (with group assignment) is returned.
func (c *Catalog) RegisterSource(ds model.DataSource) (*model.DataSource, error) {
	out, err := c.RegisterSources([]model.DataSource{ds})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// RegisterSources batch-registers sources, amortizing the persistent
// writes. This is the path the paper's "massive amount of sensors"
// scenarios use (millions of smart meters register at provisioning time).
func (c *Catalog) RegisterSources(list []model.DataSource) ([]*model.DataSource, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*model.DataSource, 0, len(list))
	for _, ds := range list {
		if _, ok := c.bySchemaID[ds.SchemaID]; !ok {
			return nil, fmt.Errorf("catalog: source %d: unknown schema %d", ds.ID, ds.SchemaID)
		}
		if ds.ID == 0 {
			id, err := c.nextID("source")
			if err != nil {
				return nil, err
			}
			ds.ID = id
		}
		if _, dup := c.srcCache[ds.ID]; dup {
			return nil, fmt.Errorf("catalog: source %d already registered", ds.ID)
		}
		if ds.IngestStructure() == model.MG {
			if err := c.assignGroup(&ds); err != nil {
				return nil, err
			}
		} else {
			ds.Group, ds.GroupSlot = 0, 0
		}
		stored := ds
		if err := c.sources.Put(keyenc.AppendInt64(nil, ds.ID), encodeSource(&stored)); err != nil {
			return nil, err
		}
		c.srcCache[stored.ID] = &stored
		c.sourceCount[stored.SchemaID]++
		out = append(out, &stored)
	}
	return out, nil
}

// assignGroup places ds into the schema's currently filling MG group,
// opening a new group when full. Caller holds c.mu.
func (c *Catalog) assignGroup(ds *model.DataSource) error {
	g, ok := c.openGroup[ds.SchemaID]
	if ok && len(c.groupMembers[g]) >= c.groupSize {
		ok = false
	}
	if !ok {
		id, err := c.nextID("group")
		if err != nil {
			return err
		}
		g = id
		c.openGroup[ds.SchemaID] = g
	}
	ds.Group = g
	ds.GroupSlot = len(c.groupMembers[g])
	c.groupMembers[g] = append(c.groupMembers[g], ds.ID)
	return nil
}

// Source looks up a data source.
func (c *Catalog) Source(id int64) (*model.DataSource, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ds, ok := c.srcCache[id]
	return ds, ok
}

// SourcesBySchema returns the ids of every source of a schema type, in
// ascending order.
func (c *Catalog) SourcesBySchema(schemaID int64) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int64
	for id, ds := range c.srcCache {
		if ds.SchemaID == schemaID {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SourceCount returns the number of sources registered for a schema.
func (c *Catalog) SourceCount(schemaID int64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sourceCount[schemaID]
}

// GroupMembers returns the ordered member sources of an MG group.
func (c *Catalog) GroupMembers(group int64) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	members := c.groupMembers[group]
	out := make([]int64, len(members))
	copy(out, members)
	return out
}

// GroupsBySchema returns all MG group ids containing sources of schemaID.
func (c *Catalog) GroupsBySchema(schemaID int64) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int64
	for g, members := range c.groupMembers {
		if len(members) > 0 && c.srcCache[members[0]].SchemaID == schemaID {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GroupSize returns the configured MG group capacity.
func (c *Catalog) GroupSize() int { return c.groupSize }

// CreateVirtualTable exposes a schema type under a table name for SQL.
func (c *Catalog) CreateVirtualTable(name string, schemaID int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.bySchemaID[schemaID]; !ok {
		return fmt.Errorf("catalog: unknown schema %d", schemaID)
	}
	if _, dup := c.vtableCache[name]; dup {
		return fmt.Errorf("catalog: virtual table %q already exists", name)
	}
	if err := c.vtables.Put(keyenc.AppendString(nil, name),
		binary.LittleEndian.AppendUint64(nil, uint64(schemaID))); err != nil {
		return err
	}
	c.vtableCache[name] = schemaID
	return nil
}

// VirtualTable resolves a virtual table name to its schema type.
func (c *Catalog) VirtualTable(name string) (*model.SchemaType, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.vtableCache[name]
	if !ok {
		return nil, false
	}
	s, ok := c.bySchemaID[id]
	return s, ok
}

// VirtualTables returns the registered virtual table names.
func (c *Catalog) VirtualTables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.vtableCache))
	for name := range c.vtableCache {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns the persisted statistics for a source (zero value when the
// source has no persisted batches yet).
func (c *Catalog) Stats(source int64) model.SourceStats {
	v, err := c.stats.Get(keyenc.AppendInt64(nil, source))
	if err != nil {
		return model.SourceStats{}
	}
	st, err := decodeStats(v)
	if err != nil {
		return model.SourceStats{}
	}
	return st
}

// UpdateStats merges delta into a source's persisted statistics and the
// schema-level aggregate used by the cost model.
func (c *Catalog) UpdateStats(source int64, delta model.SourceStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := keyenc.AppendInt64(nil, source)
	st := model.SourceStats{}
	if v, err := c.stats.Get(key); err == nil {
		if dec, err := decodeStats(v); err == nil {
			st = dec
		}
	}
	st.Merge(delta)
	if err := c.stats.Put(key, encodeStats(st)); err != nil {
		return err
	}
	if ds, ok := c.srcCache[source]; ok {
		agg := c.schemaAgg[ds.SchemaID]
		agg.Merge(delta)
		c.schemaAgg[ds.SchemaID] = agg
	}
	return nil
}

// UpdateGroupStats merges delta into an MG group's statistics (stored
// under the negated group id so groups and sources share one tree without
// colliding) and the schema-level aggregate. Per-member statistics are not
// maintained on the MG path — one MG record carries up to groupSize
// sources, and the reorganizer establishes per-source stats when it
// converts MG data to RTS/IRTS.
func (c *Catalog) UpdateGroupStats(group int64, delta model.SourceStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := keyenc.AppendInt64(nil, -group)
	st := model.SourceStats{}
	if v, err := c.stats.Get(key); err == nil {
		if dec, err := decodeStats(v); err == nil {
			st = dec
		}
	}
	st.Merge(delta)
	if err := c.stats.Put(key, encodeStats(st)); err != nil {
		return err
	}
	if members := c.groupMembers[group]; len(members) > 0 {
		if ds, ok := c.srcCache[members[0]]; ok {
			agg := c.schemaAgg[ds.SchemaID]
			agg.Merge(delta)
			c.schemaAgg[ds.SchemaID] = agg
		}
	}
	return nil
}

// GroupStats returns the persisted statistics of an MG group.
func (c *Catalog) GroupStats(group int64) model.SourceStats {
	v, err := c.stats.Get(keyenc.AppendInt64(nil, -group))
	if err != nil {
		return model.SourceStats{}
	}
	st, err := decodeStats(v)
	if err != nil {
		return model.SourceStats{}
	}
	return st
}

// SchemaStats returns the aggregate statistics of all sources of a schema,
// the primary input to the planner's ValueBlob-bytes cost model.
func (c *Catalog) SchemaStats(schemaID int64) model.SourceStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.schemaAgg[schemaID]
}

// RouterLookup models the paper's data-router metadata access: every ODH
// query resolves its sources' placement through catalog reads before data
// access ("for each query, the data router looks up the metadata to locate
// the required data ... currently completed by SQL statements"). It
// returns the stats rows it read, so the caller observes real I/O cost.
func (c *Catalog) RouterLookup(sources []int64) []model.SourceStats {
	out := make([]model.SourceStats, 0, len(sources))
	for _, id := range sources {
		out = append(out, c.Stats(id))
	}
	return out
}

// --- binary codecs ---

func encodeSource(ds *model.DataSource) []byte {
	b := binary.AppendVarint(nil, ds.ID)
	b = binary.AppendVarint(b, ds.SchemaID)
	if ds.Regular {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, ds.IntervalMs)
	b = binary.AppendVarint(b, ds.Group)
	b = binary.AppendVarint(b, int64(ds.GroupSlot))
	b = binary.AppendUvarint(b, uint64(len(ds.Name)))
	return append(b, ds.Name...)
}

func decodeSource(b []byte) (*model.DataSource, error) {
	var ds model.DataSource
	var n int
	if ds.ID, n = binary.Varint(b); n <= 0 {
		return nil, fmt.Errorf("catalog: corrupt source record")
	}
	b = b[n:]
	if ds.SchemaID, n = binary.Varint(b); n <= 0 {
		return nil, fmt.Errorf("catalog: corrupt source record")
	}
	b = b[n:]
	if len(b) < 1 {
		return nil, fmt.Errorf("catalog: corrupt source record")
	}
	ds.Regular = b[0] == 1
	b = b[1:]
	if ds.IntervalMs, n = binary.Varint(b); n <= 0 {
		return nil, fmt.Errorf("catalog: corrupt source record")
	}
	b = b[n:]
	if ds.Group, n = binary.Varint(b); n <= 0 {
		return nil, fmt.Errorf("catalog: corrupt source record")
	}
	b = b[n:]
	slot, n := binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("catalog: corrupt source record")
	}
	ds.GroupSlot = int(slot)
	b = b[n:]
	nameLen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b[n:])) < nameLen {
		return nil, fmt.Errorf("catalog: corrupt source record")
	}
	ds.Name = string(b[n : n+int(nameLen)])
	return &ds, nil
}

func encodeStats(st model.SourceStats) []byte {
	b := binary.AppendVarint(nil, st.BatchCount)
	b = binary.AppendVarint(b, st.PointCount)
	b = binary.AppendVarint(b, st.BlobBytes)
	b = binary.AppendVarint(b, st.FirstTS)
	b = binary.AppendVarint(b, st.LastTS)
	return binary.AppendVarint(b, st.MaxSpanMs)
}

func decodeStats(b []byte) (model.SourceStats, error) {
	var st model.SourceStats
	for _, dst := range []*int64{&st.BatchCount, &st.PointCount, &st.BlobBytes, &st.FirstTS, &st.LastTS, &st.MaxSpanMs} {
		v, n := binary.Varint(b)
		if n <= 0 {
			return st, fmt.Errorf("catalog: corrupt stats record")
		}
		*dst = v
		b = b[n:]
	}
	return st, nil
}
