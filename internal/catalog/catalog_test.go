package catalog

import (
	"fmt"
	"testing"

	"odh/internal/model"
	"odh/internal/pagestore"
)

func openCatalog(t *testing.T, groupSize int) (*Catalog, *pagestore.MemFile) {
	t.Helper()
	f := pagestore.NewMemFile()
	store, err := pagestore.Open(f, pagestore.Options{PoolPages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	c, err := Open(store, groupSize)
	if err != nil {
		t.Fatal(err)
	}
	return c, f
}

func envTags() []model.TagDef {
	return []model.TagDef{{Name: "temperature"}, {Name: "wind"}}
}

func TestCreateSchemaType(t *testing.T) {
	c, _ := openCatalog(t, 0)
	s, err := c.CreateSchemaType("environ", envTags())
	if err != nil {
		t.Fatal(err)
	}
	if s.ID == 0 {
		t.Fatal("no id assigned")
	}
	got, ok := c.SchemaByName("environ")
	if !ok || got.ID != s.ID || len(got.Tags) != 2 {
		t.Fatalf("lookup failed: %+v", got)
	}
	if got.TagIndex("wind") != 1 || got.TagIndex("nope") != -1 {
		t.Fatal("TagIndex wrong")
	}
	if _, err := c.CreateSchemaType("environ", envTags()); err == nil {
		t.Fatal("duplicate schema accepted")
	}
	if _, err := c.CreateSchemaType("", envTags()); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.CreateSchemaType("x", nil); err == nil {
		t.Fatal("empty tags accepted")
	}
	if _, err := c.CreateSchemaType("y", []model.TagDef{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate tag accepted")
	}
}

func TestRegisterHighFrequencySource(t *testing.T) {
	c, _ := openCatalog(t, 0)
	s, _ := c.CreateSchemaType("pmu", envTags())
	ds, err := c.RegisterSource(model.DataSource{SchemaID: s.ID, Regular: true, IntervalMs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Group != 0 {
		t.Fatal("high-frequency source got an MG group")
	}
	if ds.IngestStructure() != model.RTS {
		t.Fatalf("structure = %v, want RTS", ds.IngestStructure())
	}
	irr, _ := c.RegisterSource(model.DataSource{SchemaID: s.ID, Regular: false, IntervalMs: 100})
	if irr.IngestStructure() != model.IRTS {
		t.Fatalf("structure = %v, want IRTS", irr.IngestStructure())
	}
}

func TestGroupAssignment(t *testing.T) {
	c, _ := openCatalog(t, 4)
	s, _ := c.CreateSchemaType("meter", envTags())
	var groups []int64
	for i := 0; i < 10; i++ {
		// 15-minute interval: low frequency, must go to MG.
		ds, err := c.RegisterSource(model.DataSource{SchemaID: s.ID, Regular: true, IntervalMs: 900000})
		if err != nil {
			t.Fatal(err)
		}
		if ds.IngestStructure() != model.MG {
			t.Fatalf("low-frequency source structure = %v", ds.IngestStructure())
		}
		if ds.Group == 0 {
			t.Fatal("no group assigned")
		}
		groups = append(groups, ds.Group)
		if ds.GroupSlot != i%4 {
			t.Fatalf("source %d slot = %d, want %d", i, ds.GroupSlot, i%4)
		}
	}
	// 10 sources at group size 4 -> 3 groups.
	distinct := map[int64]bool{}
	for _, g := range groups {
		distinct[g] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("got %d groups, want 3", len(distinct))
	}
	members := c.GroupMembers(groups[0])
	if len(members) != 4 {
		t.Fatalf("first group has %d members", len(members))
	}
	if got := c.GroupsBySchema(s.ID); len(got) != 3 {
		t.Fatalf("GroupsBySchema = %v", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	c, _ := openCatalog(t, 0)
	if _, err := c.RegisterSource(model.DataSource{SchemaID: 999}); err == nil {
		t.Fatal("unknown schema accepted")
	}
	s, _ := c.CreateSchemaType("t", envTags())
	ds, err := c.RegisterSource(model.DataSource{ID: 7, SchemaID: s.ID, IntervalMs: 10})
	if err != nil || ds.ID != 7 {
		t.Fatalf("explicit id: %v", err)
	}
	if _, err := c.RegisterSource(model.DataSource{ID: 7, SchemaID: s.ID, IntervalMs: 10}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	auto, err := c.RegisterSource(model.DataSource{SchemaID: s.ID, IntervalMs: 10})
	if err != nil || auto.ID == 0 || auto.ID == 7 {
		t.Fatalf("auto id: %d %v", auto.ID, err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	f := pagestore.NewMemFile()
	store, err := pagestore.Open(f, pagestore.Options{PoolPages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(store, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := c.CreateSchemaType("environ", envTags())
	c.CreateVirtualTable("environ_data_v", s.ID)
	var lastGroup int64
	for i := 0; i < 6; i++ {
		ds, _ := c.RegisterSource(model.DataSource{SchemaID: s.ID, Regular: true, IntervalMs: 900000})
		lastGroup = ds.Group
	}
	c.UpdateStats(1, model.SourceStats{BatchCount: 2, PointCount: 100, BlobBytes: 4000, FirstTS: 10, LastTS: 500, MaxSpanMs: 490})
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := pagestore.Open(f, pagestore.Options{PoolPages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	c2, err := Open(store2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.SchemaByName("environ"); !ok {
		t.Fatal("schema lost")
	}
	vt, ok := c2.VirtualTable("environ_data_v")
	if !ok || vt.Name != "environ" {
		t.Fatal("virtual table lost")
	}
	if got := c2.SourceCount(s.ID); got != 6 {
		t.Fatalf("SourceCount = %d", got)
	}
	// The half-full second group must keep filling after reopen.
	ds, _ := c2.RegisterSource(model.DataSource{SchemaID: s.ID, Regular: true, IntervalMs: 900000})
	if ds.Group != lastGroup {
		t.Fatalf("reopened catalog started group %d, want to continue %d", ds.Group, lastGroup)
	}
	if ds.GroupSlot != 2 {
		t.Fatalf("slot = %d, want 2", ds.GroupSlot)
	}
	st := c2.Stats(1)
	if st.PointCount != 100 || st.BlobBytes != 4000 {
		t.Fatalf("stats lost: %+v", st)
	}
	agg := c2.SchemaStats(s.ID)
	if agg.PointCount != 100 {
		t.Fatalf("schema aggregate not rebuilt: %+v", agg)
	}
}

func TestStatsMerge(t *testing.T) {
	c, _ := openCatalog(t, 0)
	s, _ := c.CreateSchemaType("t", envTags())
	ds, _ := c.RegisterSource(model.DataSource{SchemaID: s.ID, IntervalMs: 10})
	c.UpdateStats(ds.ID, model.SourceStats{BatchCount: 1, PointCount: 50, BlobBytes: 100, FirstTS: 1000, LastTS: 1500, MaxSpanMs: 500})
	c.UpdateStats(ds.ID, model.SourceStats{BatchCount: 1, PointCount: 50, BlobBytes: 120, FirstTS: 1500, LastTS: 2200, MaxSpanMs: 700})
	st := c.Stats(ds.ID)
	if st.BatchCount != 2 || st.PointCount != 100 || st.BlobBytes != 220 {
		t.Fatalf("merge wrong: %+v", st)
	}
	if st.FirstTS != 1000 || st.LastTS != 2200 || st.MaxSpanMs != 700 {
		t.Fatalf("bounds wrong: %+v", st)
	}
	agg := c.SchemaStats(s.ID)
	if agg.PointCount != 100 {
		t.Fatalf("aggregate: %+v", agg)
	}
}

func TestVirtualTables(t *testing.T) {
	c, _ := openCatalog(t, 0)
	s, _ := c.CreateSchemaType("environ", envTags())
	if err := c.CreateVirtualTable("environ_data_v", s.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateVirtualTable("environ_data_v", s.ID); err == nil {
		t.Fatal("duplicate vtable accepted")
	}
	if err := c.CreateVirtualTable("bad", 12345); err == nil {
		t.Fatal("vtable on unknown schema accepted")
	}
	if names := c.VirtualTables(); len(names) != 1 || names[0] != "environ_data_v" {
		t.Fatalf("VirtualTables = %v", names)
	}
}

func TestSourcesBySchema(t *testing.T) {
	c, _ := openCatalog(t, 0)
	a, _ := c.CreateSchemaType("a", envTags())
	b, _ := c.CreateSchemaType("b", envTags())
	for i := 0; i < 5; i++ {
		c.RegisterSource(model.DataSource{SchemaID: a.ID, IntervalMs: 10})
	}
	c.RegisterSource(model.DataSource{SchemaID: b.ID, IntervalMs: 10})
	if got := c.SourcesBySchema(a.ID); len(got) != 5 {
		t.Fatalf("schema a sources = %v", got)
	}
	if got := c.SourcesBySchema(b.ID); len(got) != 1 {
		t.Fatalf("schema b sources = %v", got)
	}
}

func TestRouterLookup(t *testing.T) {
	c, _ := openCatalog(t, 0)
	s, _ := c.CreateSchemaType("t", envTags())
	var ids []int64
	for i := 0; i < 10; i++ {
		ds, _ := c.RegisterSource(model.DataSource{SchemaID: s.ID, IntervalMs: 10})
		c.UpdateStats(ds.ID, model.SourceStats{PointCount: int64(i)})
		ids = append(ids, ds.ID)
	}
	stats := c.RouterLookup(ids)
	if len(stats) != 10 {
		t.Fatalf("lookup returned %d rows", len(stats))
	}
	if stats[3].PointCount != 3 {
		t.Fatalf("router stats wrong: %+v", stats[3])
	}
}

func TestBatchRegisterMany(t *testing.T) {
	c, _ := openCatalog(t, 8)
	s, _ := c.CreateSchemaType("meters", envTags())
	batch := make([]model.DataSource, 1000)
	for i := range batch {
		batch[i] = model.DataSource{SchemaID: s.ID, Regular: true, IntervalMs: 900000, Name: fmt.Sprintf("meter-%d", i)}
	}
	out, err := c.RegisterSources(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 {
		t.Fatalf("registered %d", len(out))
	}
	if got := c.SourceCount(s.ID); got != 1000 {
		t.Fatalf("SourceCount = %d", got)
	}
	if groups := c.GroupsBySchema(s.ID); len(groups) != 125 {
		t.Fatalf("groups = %d, want 125", len(groups))
	}
}

func TestReservedTagNamesRejected(t *testing.T) {
	c, _ := openCatalog(t, 0)
	// A tag may not collide with the schema's id or timestamp column.
	if _, err := c.CreateSchema(model.SchemaType{
		Name: "bad", Tags: []model.TagDef{{Name: "id"}},
	}); err == nil {
		t.Fatal("tag named 'id' accepted")
	}
	if _, err := c.CreateSchema(model.SchemaType{
		Name: "bad2", IDName: "T_CA_ID",
		Tags: []model.TagDef{{Name: "T_CA_ID"}},
	}); err == nil {
		t.Fatal("tag colliding with custom id column accepted")
	}
	// With a custom id name, a tag named "id" is fine.
	if _, err := c.CreateSchema(model.SchemaType{
		Name: "ok", IDName: "vin",
		Tags: []model.TagDef{{Name: "id"}},
	}); err != nil {
		t.Fatalf("non-colliding tag rejected: %v", err)
	}
}

func TestGroupStats(t *testing.T) {
	c, _ := openCatalog(t, 2)
	s, _ := c.CreateSchemaType("g", envTags())
	ds, _ := c.RegisterSource(model.DataSource{SchemaID: s.ID, Regular: true, IntervalMs: 900000})
	if err := c.UpdateGroupStats(ds.Group, model.SourceStats{BatchCount: 3, PointCount: 6, BlobBytes: 90}); err != nil {
		t.Fatal(err)
	}
	st := c.GroupStats(ds.Group)
	if st.BatchCount != 3 || st.BlobBytes != 90 {
		t.Fatalf("group stats: %+v", st)
	}
	// Negative deltas (reorg reclaiming records) subtract.
	c.UpdateGroupStats(ds.Group, model.SourceStats{BatchCount: -1, PointCount: -2, BlobBytes: -30})
	st = c.GroupStats(ds.Group)
	if st.BatchCount != 2 || st.PointCount != 4 || st.BlobBytes != 60 {
		t.Fatalf("after negative merge: %+v", st)
	}
	// Group stats never collide with a source of the same numeric id.
	if src := c.Stats(ds.Group); src.BatchCount == 2 && src.BlobBytes == 60 {
		t.Fatal("group stats leaked into source stats keyspace")
	}
	if empty := c.GroupStats(9999); empty.BatchCount != 0 {
		t.Fatalf("phantom group stats: %+v", empty)
	}
}

func TestSchemasOrderedByID(t *testing.T) {
	c, _ := openCatalog(t, 0)
	c.CreateSchemaType("zzz", envTags())
	c.CreateSchemaType("aaa", envTags())
	list := c.Schemas()
	if len(list) != 2 || list[0].Name != "zzz" || list[1].Name != "aaa" {
		t.Fatalf("Schemas() = %v (want creation order by id)", list)
	}
	if c.GroupSize() != DefaultGroupSize {
		t.Fatalf("GroupSize = %d", c.GroupSize())
	}
}
