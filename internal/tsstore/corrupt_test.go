package tsstore

import (
	"testing"

	"odh/internal/keyenc"
	"odh/internal/model"
)

// writeRTSRun ingests n regular points for src starting at t0.
func writeRTSRun(t *testing.T, f *fixture, src *model.DataSource, t0 int64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p := model.Point{Source: src.ID, TS: t0 + int64(i)*src.IntervalMs, Values: []float64{float64(i), float64(i) * 2}}
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
	}
}

// corruptOneBlob replaces the stored record at (src, ts) with garbage that
// fails decode, simulating blob-level rot below the page checksums.
func corruptOneBlob(t *testing.T, f *fixture, src, ts int64) {
	t.Helper()
	key := keyenc.SourceTime(src, ts)
	if _, err := f.store.rts.Get(key); err != nil {
		t.Fatalf("expected record at ts=%d: %v", ts, err)
	}
	if err := f.store.rts.Put(key, []byte{0xFF, 0xEE, 0xDD}); err != nil {
		t.Fatal(err)
	}
}

func TestStrictScanFailsOnCorruptBlob(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8}, 0)
	sch := f.schema(t, "pmu", 2)
	src := f.source(t, sch.ID, true, 10)
	writeRTSRun(t, f, src, 0, 32) // 4 full batches at ts 0, 80, 160, 240
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptOneBlob(t, f, src.ID, 80)
	it, err := f.store.HistoricalScan(src.ID, 0, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if it.Err() == nil {
		t.Fatal("strict scan over a corrupt blob reported no error")
	}
}

func TestLenientScanQuarantinesCorruptBlob(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8, LenientScan: true}, 0)
	sch := f.schema(t, "pmu", 2)
	src := f.source(t, sch.ID, true, 10)
	writeRTSRun(t, f, src, 0, 32)
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptOneBlob(t, f, src.ID, 80)
	it, err := f.store.HistoricalScan(src.ID, 0, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it) // collect fails the test on iterator error
	// The corrupt batch held ts 80..150; everything else must survive.
	if len(got) != 24 {
		t.Fatalf("lenient scan yielded %d points, want 24", len(got))
	}
	for _, p := range got {
		if p.TS >= 80 && p.TS < 160 {
			t.Fatalf("point ts=%d from the quarantined batch leaked through", p.TS)
		}
	}
	if n := f.store.Stats().CorruptBlobsSkipped; n != 1 {
		t.Fatalf("CorruptBlobsSkipped = %d, want 1", n)
	}
}

func TestLenientScanQuarantinesCorruptMGBlob(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8, LenientScan: true}, 2)
	sch := f.schema(t, "env", 1)
	a := f.source(t, sch.ID, true, 1000)
	b := f.source(t, sch.ID, true, 1000)
	if a.Group != b.Group {
		t.Fatalf("sources not grouped: %d vs %d", a.Group, b.Group)
	}
	for i := int64(0); i < 4; i++ {
		for _, src := range []*model.DataSource{a, b} {
			if err := f.store.Write(model.Point{Source: src.ID, TS: i * 1000, Values: []float64{float64(i)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the MG record at window 2000.
	key := keyenc.SourceTime(a.Group, 2000)
	if _, err := f.store.mg.Get(key); err != nil {
		t.Fatalf("expected MG record: %v", err)
	}
	if err := f.store.mg.Put(key, []byte{0x03}); err != nil { // truncated MG header
		t.Fatal(err)
	}
	it, err := f.store.HistoricalScan(a.ID, 0, 10_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it)
	if len(got) != 3 {
		t.Fatalf("lenient MG scan yielded %d points, want 3", len(got))
	}
	if n := f.store.Stats().CorruptBlobsSkipped; n == 0 {
		t.Fatal("CorruptBlobsSkipped not incremented for MG record")
	}
}

func TestVerifyBlobs(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8}, 0)
	sch := f.schema(t, "pmu", 2)
	src := f.source(t, sch.ID, true, 10)
	writeRTSRun(t, f, src, 0, 32)
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	checked, corrupt, err := f.store.VerifyBlobs()
	if err != nil {
		t.Fatal(err)
	}
	if checked != 4 || len(corrupt) != 0 {
		t.Fatalf("clean store: checked=%d corrupt=%v, want 4 clean", checked, corrupt)
	}
	corruptOneBlob(t, f, src.ID, 160)
	checked, corrupt, err = f.store.VerifyBlobs()
	if err != nil {
		t.Fatal(err)
	}
	if checked != 4 || len(corrupt) != 1 {
		t.Fatalf("checked=%d corrupt=%v, want exactly 1 corrupt of 4", checked, corrupt)
	}
	if corrupt[0].Tree != "ts.rts" || corrupt[0].Source != src.ID || corrupt[0].TS != 160 {
		t.Fatalf("corrupt ref = %+v, want ts.rts/%d/160", corrupt[0], src.ID)
	}
}

func TestWALPointDecodeRejectsHugeCount(t *testing.T) {
	// A varint count near 2^61 makes count*8 wrap; the decoder must reject
	// it instead of passing the length check and blowing up on allocation.
	b := []byte{
		0x02,                                                       // source
		0x02,                                                       // ts
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x1F, // count
	}
	if _, err := DecodePointWAL(b); err == nil {
		t.Fatal("huge count accepted")
	}
}
