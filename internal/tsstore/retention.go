package tsstore

import (
	"odh/internal/btree"
	"odh/internal/keyenc"
	"odh/internal/model"
)

// DropResult summarizes a retention pass.
type DropResult struct {
	// RecordsDropped counts deleted batch records across structures.
	RecordsDropped int
	// BytesReclaimed is the ValueBlob payload removed.
	BytesReclaimed int64
}

// DropBefore deletes all persisted batches of a schema whose data lies
// entirely before the cutoff — the retention pass an operational
// historian runs to age out data past its lifecycle. Batches straddling
// the cutoff are kept whole (retention is batch-granular, like the
// paper's storage model). In-memory buffers are untouched: they only hold
// recent data.
func (s *Store) DropBefore(schemaID int64, cutoff int64) (DropResult, error) {
	res := DropResult{}
	// Per-source RTS/IRTS batches.
	for _, src := range s.cat.SourcesBySchema(schemaID) {
		ds, ok := s.cat.Source(src)
		if !ok {
			continue
		}
		for _, structure := range []model.Structure{model.RTS, model.IRTS} {
			tree := s.treeFor(structure)
			n, bytes, err := s.dropSourceRange(tree, src, cutoff)
			if err != nil {
				return res, err
			}
			if n > 0 {
				res.RecordsDropped += n
				res.BytesReclaimed += bytes
				if err := s.cat.UpdateStats(src, model.SourceStats{
					BatchCount: -int64(n),
					BlobBytes:  -bytes,
				}); err != nil {
					return res, err
				}
			}
		}
		_ = ds
	}
	// MG records per group; a record's window must end before the cutoff.
	for _, g := range s.cat.GroupsBySchema(schemaID) {
		window := s.groupWindow(g)
		effective := cutoff - window
		if effective <= 0 {
			continue
		}
		n, bytes, err := s.dropSourceRange(s.mg, g, effective)
		if err != nil {
			return res, err
		}
		if n > 0 {
			res.RecordsDropped += n
			res.BytesReclaimed += bytes
			if err := s.cat.UpdateGroupStats(g, model.SourceStats{
				BatchCount: -int64(n),
				BlobBytes:  -bytes,
			}); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// dropSourceRange deletes records of one key prefix whose batch data ends
// before the cutoff: a batch is dropped only when its last timestamp is
// below the cutoff. The last timestamp comes straight from the v2 summary
// header — no payload decode; only legacy (pre-summary) blobs pay for a
// full decode. Summary-only stubs qualify like any other blob: retention
// is the tier lifecycle's final stage.
func (s *Store) dropSourceRange(tree *btree.Tree, prefix int64, cutoff int64) (int, int64, error) {
	lo := keyenc.SourceTime(prefix, -1<<62)
	hi := keyenc.SourceTime(prefix, cutoff)
	var keys [][]byte
	var sizes []int64
	err := tree.Scan(lo, hi, func(k, v []byte) bool {
		_, baseTS, err := keyenc.DecodeSourceTime(k)
		if err != nil {
			return true
		}
		last, ok := blobLastTS(v, baseTS)
		if !ok {
			batch, err := DecodeBlob(v, baseTS, []int{})
			if err != nil {
				return true
			}
			last = baseTS
			// MG offsets are stored in slot order, so take the maximum
			// rather than trusting the final entry.
			for _, ts := range batch.Timestamps {
				if ts > last {
					last = ts
				}
			}
		}
		if last >= cutoff {
			return true // straddles the cutoff; keep whole
		}
		keys = append(keys, append([]byte(nil), k...))
		sizes = append(sizes, int64(len(v)))
		return true
	})
	if err != nil {
		return 0, 0, err
	}
	treeID := s.treeID(tree)
	deleted := 0
	var deletedBytes int64
	for i, k := range keys {
		err := tree.Delete(k)
		if _, ts, derr := keyenc.DecodeSourceTime(k); derr == nil {
			s.invalidateBlob(treeID, prefix, ts)
		}
		if err != nil {
			// Count only what actually came out of the tree: a failed
			// Delete must not inflate DropResult or drive catalog stats
			// negative for records that are still there.
			return deleted, deletedBytes, err
		}
		deleted++
		deletedBytes += sizes[i]
	}
	return deleted, deletedBytes, nil
}
