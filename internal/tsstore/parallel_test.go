package tsstore

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"odh/internal/catalog"
	"odh/internal/fault"
	"odh/internal/model"
	"odh/internal/pagestore"
)

// TestClampWorkers pins the worker clamp.
func TestClampWorkers(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {4, 4}, {maxScanWorkers, maxScanWorkers}, {maxScanWorkers + 100, maxScanWorkers},
	} {
		if got := clampWorkers(tc.in); got != tc.want {
			t.Fatalf("clampWorkers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestParallelScanAbandonedEarly makes sure abandoning a fanned-out scan
// after one row leaks no goroutine sends: every part goroutine's single
// buffered send completes even when never drained.
func TestParallelScanAbandonedEarly(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, BlobCacheBytes: 1 << 20}, 0)
	s := f.schema(t, "abandon", 2)
	ds := f.source(t, s.ID, true, 10)
	fillSource(t, f, ds, 2000)
	for i := 0; i < 50; i++ {
		it, err := f.store.HistoricalScanOpts(ds.ID, math.MinInt64, math.MaxInt64, nil, ScanOptions{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := it.Next(); !ok {
			t.Fatal("no rows")
		}
		// Walk away mid-scan (LIMIT 1 shape). Workers must not block.
	}
}

// TestDrainPartsBoundedHandoff pins the scheduler's memory bound: a part
// whose decoded size exceeds the per-part budget is buffered only up to
// the budget and handed back live, and the consumer's serial continuation
// reproduces the full part — points, error state, and byte accounting.
func TestDrainPartsBoundedHandoff(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	mkPoints := func(n int, src int64) []model.Point {
		pts := make([]model.Point, n)
		for i := range pts {
			pts[i] = model.Point{Source: src, TS: int64(i + 1), Values: []float64{float64(i), 1}}
		}
		return pts
	}
	big, small := mkPoints(1000, 1), mkPoints(5, 2)
	wantBytes := newSliceIter(big).perPoint * int64(len(big))

	// Budget covers ~10 points of the big part: it must be handed back.
	parts := f.store.drainPartsBounded(nil, []Iterator{newSliceIter(big), newSliceIter(small)}, 2, 10*pointBlobBytes(2))
	gotBig := collect(t, parts[0])
	gotSmall := collect(t, parts[1])
	if !pointsEqual(gotBig, big) || !pointsEqual(gotSmall, small) {
		t.Fatalf("bounded drain lost rows: %d/%d and %d/%d", len(gotBig), len(big), len(gotSmall), len(small))
	}
	pi := parts[0].(*partIter)
	if pi.res.rest == nil {
		t.Fatal("oversized part was fully materialized instead of handed back")
	}
	if got := int64(len(pi.res.points)) * pointBlobBytes(2); got > 11*pointBlobBytes(2) {
		t.Fatalf("worker buffered %d bytes past its budget", got)
	}
	if parts[1].(*partIter).res.rest != nil {
		t.Fatal("small part should have been fully materialized")
	}
	// Accounting spans prefix + tail once drained.
	if got := parts[0].BlobBytes(); got != wantBytes {
		t.Fatalf("handed-back part BlobBytes = %d, want %d", got, wantBytes)
	}
}

// TestConcurrentParallelQueries runs parallel fanned-out readers against
// live ingest, background flushes, and retention with the decode cache
// enabled. Under -race this covers the cache's concurrent get/put/
// invalidate paths and the scheduler's channel protocol. While racing,
// readers only assert weak invariants (rows in window, timestamps
// sorted); after quiescing, cached and uncached scans must agree
// exactly.
func TestConcurrentParallelQueries(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, MaxOpenMGRows: 4, BlobCacheBytes: 256 << 10}, 4)
	s := f.schema(t, "race", 2)
	rts := f.source(t, s.ID, true, 10)
	irts := f.source(t, s.ID, false, 10)
	var mgs []*model.DataSource
	for i := 0; i < 4; i++ {
		mgs = append(mgs, f.source(t, s.ID, true, 10_000))
	}
	sources := append([]*model.DataSource{rts, irts}, mgs...)

	const perSource = 1500
	var wg, writers sync.WaitGroup
	var stop atomic.Bool

	// Writers: one per source.
	for _, ds := range sources {
		ds := ds
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perSource; i++ {
				p := model.Point{Source: ds.ID, TS: int64(i+1)*ds.IntervalMs + int64(ds.GroupSlot), Values: []float64{float64(i % 7), float64(ds.ID)}}
				if err := f.store.Write(p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Background flusher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := f.store.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Periodic retention on a prefix that writers have long passed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20 && !stop.Load(); i++ {
			if _, err := f.store.DropBefore(s.ID, 50); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Readers: fanned-out single-source scans and schema slices.
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				ds := sources[(r+i)%len(sources)]
				t1, t2 := int64(100), int64(1+perSource)*ds.IntervalMs
				it, err := f.store.HistoricalScanOpts(ds.ID, t1, t2, nil, ScanOptions{Workers: 4, NoCache: i%2 == 0})
				if err != nil {
					t.Error(err)
					return
				}
				last := int64(math.MinInt64)
				for {
					p, ok := it.Next()
					if !ok {
						break
					}
					if p.TS < t1 || p.TS >= t2 {
						t.Errorf("row %d outside [%d,%d)", p.TS, t1, t2)
						return
					}
					if p.TS < last {
						t.Errorf("timestamps regressed: %d after %d", p.TS, last)
						return
					}
					last = p.TS
				}
				if err := it.Err(); err != nil {
					t.Error(err)
					return
				}
				if i%8 == 0 {
					sl, err := f.store.SliceScanOpts(s.ID, t1, t2, nil, ScanOptions{Workers: 4})
					if err != nil {
						t.Error(err)
						return
					}
					for {
						p, ok := sl.Next()
						if !ok {
							break
						}
						if p.TS < t1 || p.TS >= t2 {
							t.Errorf("slice row %d outside [%d,%d)", p.TS, t1, t2)
							return
						}
					}
					if err := sl.Err(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	stop.Store(true)
	wg.Wait()

	// Quiesced: cached, parallel, and raw serial scans must agree exactly.
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, ds := range sources {
		raw := scanAll(t, f.store, ds.ID, ScanOptions{NoCache: true})
		cached := scanAll(t, f.store, ds.ID, ScanOptions{})
		par := scanAll(t, f.store, ds.ID, ScanOptions{Workers: 4})
		if !pointsEqual(raw, cached) || !pointsEqual(raw, par) {
			t.Fatalf("source %d: post-quiesce scans diverged (raw=%d cached=%d par=%d rows)", ds.ID, len(raw), len(cached), len(par))
		}
	}
}

// TestBlobCacheSurvivesFailedMaintenance injects write failures midway
// through retention and reorganization. Whatever prefix of the operation
// landed, the cache must not serve decodes for blobs the failed pass
// already touched: a cached scan of the resulting state must equal an
// uncached one. This is why invalidation fires even when the tree
// mutation itself errors.
func TestBlobCacheSurvivesFailedMaintenance(t *testing.T) {
	for _, failAfter := range []int{0, 1, 3, 7} {
		ff := fault.Wrap(pagestore.NewMemFile())
		// A tiny pool forces evictions, so tree mutations reach the
		// backing file (and its armed failure) mid-operation.
		page, err := pagestore.Open(ff, pagestore.Options{PoolPages: 16})
		if err != nil {
			t.Fatal(err)
		}
		cat, err := catalog.Open(page, 4)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Open(page, cat, Config{BatchSize: 8, MaxOpenMGRows: 2, BlobCacheBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		f := &fixture{store: st, cat: cat, page: page}
		s := f.schema(t, "faulty", 2)
		ds := f.source(t, s.ID, true, 10)
		var mgs []*model.DataSource
		for i := 0; i < 4; i++ {
			mgs = append(mgs, f.source(t, s.ID, true, 10_000))
		}
		fillSource(t, f, ds, 300)
		for w := 1; w <= 8; w++ {
			for _, mg := range mgs {
				if err := st.Write(model.Point{Source: mg.ID, TS: int64(w)*10_000 + int64(mg.GroupSlot), Values: []float64{float64(w), 1}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		// Warm the cache over every source.
		scanAll(t, st, ds.ID, ScanOptions{})
		for _, mg := range mgs {
			scanAll(t, st, mg.ID, ScanOptions{})
		}

		ff.FailWritesAfter(failAfter)
		_, dropErr := st.DropBefore(s.ID, 1500)
		_, reorgErr := st.Reorganize(s.ID, 5*10_000)
		if dropErr == nil && reorgErr == nil {
			t.Logf("failAfter=%d: maintenance survived (writes stayed in pool)", failAfter)
		}
		// Disarm so comparison reads (which may evict dirty pages) work.
		ff.FailWritesAfter(-1)

		// Whatever state the failed pass left behind, cached and raw
		// scans of it must be identical.
		for _, src := range append([]*model.DataSource{ds}, mgs...) {
			it, err := st.HistoricalScanOpts(src.ID, math.MinInt64, math.MaxInt64, nil, ScanOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cached, cachedErr := drainPoints(it)
			it, err = st.HistoricalScanOpts(src.ID, math.MinInt64, math.MaxInt64, nil, ScanOptions{NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			raw, rawErr := drainPoints(it)
			if (cachedErr == nil) != (rawErr == nil) {
				t.Fatalf("failAfter=%d source %d: cached err=%v raw err=%v", failAfter, src.ID, cachedErr, rawErr)
			}
			if !pointsEqual(cached, raw) {
				t.Fatalf("failAfter=%d source %d: cached scan diverged after failed maintenance (%d vs %d rows)", failAfter, src.ID, len(cached), len(raw))
			}
		}
		page.Close()
	}
}

func drainPoints(it Iterator) ([]model.Point, error) {
	var out []model.Point
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out, it.Err()
}
