package tsstore

import (
	"container/list"
	"sort"
	"strconv"
	"sync"
)

// The decoded-ValueBlob cache sits between the scan iterators and the
// pagestore: a blob that was read and column-decoded once is kept in its
// decoded form, so repeated scans over the same history skip both the
// B+tree value fetch and DecodeBlob — the row-assembly overhead the paper
// measures as the VTI blocker (Table 8). Entries are keyed by the blob's
// B+tree identity (tree, source/group id, base timestamp) plus the decode
// variant (which tags were materialized), and invalidated whenever a
// writer Puts or Deletes that key — flush, MG row merge, reorganization,
// retention, and coalescing all go through Store.invalidateBlob.

// Cache tree ids, one per batch tree a blob key can live in.
const (
	cacheTreeRTS  uint8 = 1
	cacheTreeIRTS uint8 = 2
	cacheTreeMG   uint8 = 3
)

// blobKey identifies one blob record: every batch tree keys records by
// keyenc.SourceTime(source-or-group, baseTS), so the decoded triple is a
// complete identity.
type blobKey struct {
	tree   uint8
	source int64
	ts     int64
}

// cacheVerSlots is the size of the key-hashed version array used to close
// the read/insert race (see blobCache.snapshotAll).
const cacheVerSlots = 256

func (k blobKey) slot() int {
	h := uint64(k.source)*0x9E3779B97F4A7C15 ^ uint64(k.ts)*0xC2B2AE3D27D4EB4F ^ uint64(k.tree)
	return int((h >> 32) % cacheVerSlots)
}

// tagsSig canonicalizes a wantTags selection into a cache variant key.
// nil (decode everything) and an explicit list are distinct variants, and
// two lists selecting the same set map to the same signature.
func tagsSig(wantTags []int) string {
	if wantTags == nil {
		return "*"
	}
	sorted := make([]int, len(wantTags))
	copy(sorted, wantTags)
	sort.Ints(sorted)
	var b []byte
	prev := -1
	for _, t := range sorted {
		if t == prev {
			continue
		}
		prev = t
		b = strconv.AppendInt(b, int64(t), 10)
		b = append(b, ',')
	}
	return string(b)
}

// cacheEntry is one decoded blob variant. The DecodedBatch is shared by
// every reader that hits the entry and must be treated as immutable.
type cacheEntry struct {
	bk       blobKey
	sig      string
	batch    *DecodedBatch
	zones    []zoneMap // parsed header zone maps; nil when the blob had none
	hasZones bool
	// summary lets aggregate scans fold the record without touching the
	// batch: parsed from the header for summary-format blobs, computed
	// from the decoded batch for legacy blobs (the lazy upgrade path).
	// Like the batch, it is only valid for the tags sig selects.
	summary *blobSummary
	// sub holds the per-sub-bucket mini-summaries at the store's base
	// width: parsed from v3 headers, computed from the decoded batch for
	// v1/v2 blobs on their first aggregate decode (the same lazy upgrade
	// as summary). nil when unavailable (MG batches, plain row scans,
	// sub-buckets disabled). Valid only for the tags sig selects.
	sub     *subSummaries
	blobLen int64 // encoded size: the bytes a hit saves
	size    int64 // decoded memory footprint charged against the budget
	elem    *list.Element
}

// CacheStats is a point-in-time snapshot of blob cache counters.
type CacheStats struct {
	Hits          int64
	Misses        int64
	BytesSaved    int64 // encoded bytes of hits actually served (zone-skipped hits excluded)
	Evictions     int64
	Invalidations int64
	SizeBytes     int64 // current decoded bytes held
	Entries       int64
}

// blobCache is a byte-budgeted LRU over decoded blobs. All methods are
// safe for concurrent use; the mutex is only ever held alone, so it has
// no ordering relationship with shard latches or tree locks.
type blobCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	lru      *list.List // front = most recently used; values are *cacheEntry
	entries  map[blobKey]map[string]*cacheEntry
	// vers closes the stale-insert race: a reader snapshots the version
	// array (snapshotAll) at the moment its btree cursor copies a leaf —
	// i.e. no later than the raw blob bytes are captured — and put drops
	// the insert when an invalidation bumped the key's slot after that
	// snapshot, so a decode of the old blob can never be cached over the
	// new one. Snapshotting any later (e.g. just before decoding) reopens
	// the race: a writer could overwrite the key and invalidate between
	// the leaf copy and the snapshot, and the stale decode would pass the
	// version check.
	vers [cacheVerSlots]uint64

	hits, misses, bytesSaved, evictions, invalidations int64
}

func newBlobCache(maxBytes int64) *blobCache {
	return &blobCache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  make(map[blobKey]map[string]*cacheEntry),
	}
}

// get returns the cached decode of (bk, sig), promoting it in the LRU.
// Bytes saved are not credited here: a hit may still be zone-skipped by
// the caller, in which case the raw path would not have read the blob
// either — the caller credits served hits via noteSaved.
func (c *blobCache) get(bk blobKey, sig string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	variants, ok := c.entries[bk]
	if !ok {
		c.misses++
		return nil, false
	}
	e, ok := variants[sig]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(e.elem)
	return e, true
}

// noteSaved credits the encoded bytes a served hit avoided re-reading.
// Called after the hit survived the zone-map skip check.
func (c *blobCache) noteSaved(n int64) {
	c.mu.Lock()
	c.bytesSaved += n
	c.mu.Unlock()
}

// snapshotAll copies the full version array into dst. Scan iterators call
// this from the cursor's leaf-load hook, so every key's version is pinned
// at (or before) the moment that key's value bytes were copied out of the
// tree; the per-key version passed to put comes from this snapshot.
func (c *blobCache) snapshotAll(dst *[cacheVerSlots]uint64) {
	c.mu.Lock()
	*dst = c.vers
	c.mu.Unlock()
}

// put caches a decoded blob unless the key was invalidated since ver was
// snapshotted. The batch becomes shared and must not be mutated.
func (c *blobCache) put(bk blobKey, sig string, ver uint64, batch *DecodedBatch, zones []zoneMap, hasZones bool, blobLen int64, summary *blobSummary, sub *subSummaries) {
	size := decodedSize(batch, zones)
	if size > c.maxBytes {
		return // larger than the whole budget: not cacheable
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.vers[bk.slot()] != ver {
		return // raced with an invalidation; the decode may be stale
	}
	variants, ok := c.entries[bk]
	if !ok {
		variants = make(map[string]*cacheEntry, 1)
		c.entries[bk] = variants
	}
	if old, ok := variants[sig]; ok {
		c.removeLocked(old)
	}
	e := &cacheEntry{bk: bk, sig: sig, batch: batch, zones: zones, hasZones: hasZones, summary: summary, sub: sub, blobLen: blobLen, size: size}
	e.elem = c.lru.PushFront(e)
	variants[sig] = e
	c.curBytes += size
	for c.curBytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.removeLocked(victim)
		c.evictions++
	}
}

// invalidateKey drops every variant of a blob key and bumps its version
// slot so in-flight decodes of the old value cannot be inserted.
func (c *blobCache) invalidateKey(bk blobKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vers[bk.slot()]++
	c.invalidations++
	if variants, ok := c.entries[bk]; ok {
		for _, e := range variants {
			c.removeLocked(e)
		}
	}
}

// removeLocked unlinks an entry from the LRU and the variant map.
func (c *blobCache) removeLocked(e *cacheEntry) {
	c.lru.Remove(e.elem)
	c.curBytes -= e.size
	if variants, ok := c.entries[e.bk]; ok {
		delete(variants, e.sig)
		if len(variants) == 0 {
			delete(c.entries, e.bk)
		}
	}
}

// overlaps applies the same skip decision BlobOverlaps would have made on
// the raw blob, using the zone maps captured at decode time.
func (e *cacheEntry) overlaps(ranges []TagRange) bool {
	if len(ranges) == 0 || !e.hasZones {
		return true
	}
	return zonesOverlap(e.zones, ranges)
}

// decodedSize estimates the in-memory footprint of a cached decode.
func decodedSize(batch *DecodedBatch, zones []zoneMap) int64 {
	n := int64(len(batch.Timestamps))
	var cells int64
	for _, row := range batch.Rows {
		cells += int64(len(row))
	}
	const entryOverhead = 128 // entry struct, map cell, list element
	return entryOverhead + n*8 /* timestamps */ + int64(len(batch.Slots))*8 +
		cells*8 + n*24 /* row headers */ + int64(len(zones))*16
}

// stats snapshots the cache counters.
func (c *blobCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		BytesSaved:    c.bytesSaved,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		SizeBytes:     c.curBytes,
		Entries:       int64(c.lru.Len()),
	}
}
