package tsstore

import (
	"odh/internal/keyenc"
	"odh/internal/model"
)

// CoalesceResult summarizes one compaction pass.
type CoalesceResult struct {
	// BatchesBefore and BatchesAfter count the source's records around
	// the pass.
	BatchesBefore, BatchesAfter int
	// BytesBefore and BytesAfter measure the blob payload.
	BytesBefore, BytesAfter int64
}

// CoalesceSource rewrites a source's persisted RTS/IRTS history so runs of
// undersized batches merge into full ones. Out-of-order ingest splits and
// the MG duplicate-overflow path leave single-point batches behind; this
// maintenance pass restores the b-points-per-record invariant that the
// data model's I/O amortization depends on. Only batches below
// batchSize/2 trigger a rewrite; the pass is a no-op on healthy history.
func (s *Store) CoalesceSource(source int64) (CoalesceResult, error) {
	res := CoalesceResult{}
	ds, ok := s.cat.Source(source)
	if !ok {
		return res, nil
	}
	schema, ok := s.cat.SchemaByID(ds.SchemaID)
	if !ok {
		return res, nil
	}
	structure := ds.IngestStructure()
	if structure == model.MG {
		structure = ds.HistoricalStructure()
	}
	tree := s.treeFor(structure)

	// Collect the source's batches and find undersized ones.
	lo := keyenc.SourceTime(source, -1<<62)
	hi := keyenc.PrefixSuccessor(keyenc.PrefixInt64(source))
	type rec struct {
		key    []byte
		count  int
		bytes  int
		points []model.Point
	}
	var recs []rec
	small := 0
	err := tree.Scan(lo, hi, func(k, v []byte) bool {
		_, baseTS, err := keyenc.DecodeSourceTime(k)
		if err != nil {
			return true
		}
		if BlobTier(v) != TierHot {
			// Cold blobs were already compacted at a larger granularity and
			// stubs have no payload; both stay where the tier pass put them.
			return true
		}
		batch, err := DecodeBlob(v, baseTS, nil)
		if err != nil {
			return true
		}
		pts := make([]model.Point, len(batch.Timestamps))
		for i := range pts {
			pts[i] = model.Point{Source: source, TS: batch.Timestamps[i], Values: batch.Rows[i]}
		}
		recs = append(recs, rec{
			key:    append([]byte(nil), k...),
			count:  len(pts),
			bytes:  len(v),
			points: pts,
		})
		if len(pts)*2 < s.cfg.BatchSize {
			small++
		}
		return true
	})
	if err != nil {
		return res, err
	}
	res.BatchesBefore = len(recs)
	for _, r := range recs {
		res.BytesBefore += int64(r.bytes)
	}
	res.BatchesAfter = res.BatchesBefore
	res.BytesAfter = res.BytesBefore
	if small == 0 || len(recs) < 2 {
		return res, nil
	}

	// Rebuild the full history: merge all points in timestamp order (a
	// source's total history fits the maintenance window by assumption;
	// callers with huge histories run DropBefore first or coalesce after
	// retention).
	var all []model.Point
	for _, r := range recs {
		all = append(all, r.points...)
	}
	// Batches can overlap after out-of-order ingest; restore global order
	// with a stable merge (mostly-sorted input).
	insertionSortPoints(all)
	treeID := s.treeID(tree)
	for _, r := range recs {
		err := tree.Delete(r.key)
		if _, ts, derr := keyenc.DecodeSourceTime(r.key); derr == nil {
			s.invalidateBlob(treeID, source, ts)
		}
		if err != nil {
			return res, err
		}
	}
	// Reset stats contributions from the deleted batches.
	if err := s.cat.UpdateStats(source, model.SourceStats{
		BatchCount: -int64(len(recs)),
		PointCount: -int64(len(all)),
		BlobBytes:  -res.BytesBefore,
	}); err != nil {
		return res, err
	}
	n, err := s.writeHistoricalBatches(ds, schema, all)
	if err != nil {
		return res, err
	}
	res.BatchesAfter = n
	res.BytesAfter = 0
	err = tree.Scan(lo, hi, func(k, v []byte) bool {
		res.BytesAfter += int64(len(v))
		return true
	})
	return res, err
}

// insertionSortPoints sorts nearly-sorted point slices in place.
func insertionSortPoints(pts []model.Point) {
	for i := 1; i < len(pts); i++ {
		j := i
		for j > 0 && pts[j].TS < pts[j-1].TS {
			pts[j], pts[j-1] = pts[j-1], pts[j]
			j--
		}
	}
}

// Coalesce runs CoalesceSource over every source of a schema.
func (s *Store) Coalesce(schemaID int64) (CoalesceResult, error) {
	total := CoalesceResult{}
	for _, src := range s.cat.SourcesBySchema(schemaID) {
		res, err := s.CoalesceSource(src)
		if err != nil {
			return total, err
		}
		total.BatchesBefore += res.BatchesBefore
		total.BatchesAfter += res.BatchesAfter
		total.BytesBefore += res.BytesBefore
		total.BytesAfter += res.BytesAfter
	}
	return total, nil
}
