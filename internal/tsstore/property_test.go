package tsstore

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"odh/internal/model"
)

// refPoint mirrors a written point in the reference model.
type refPoint struct {
	source int64
	ts     int64
	values []float64
}

// TestRandomizedAgainstReferenceModel drives the store with a random mix
// of RTS, IRTS, and MG sources, random flushes and reorganizations, then
// checks every historical scan and a set of slice scans against a plain
// in-memory reference.
func TestRandomizedAgainstReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(string(rune('a'+seed)), func(t *testing.T) {
			runReferenceTrial(t, seed)
		})
	}
}

func runReferenceTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	f := newFixture(t, Config{BatchSize: 4 + rng.Intn(12), MaxOpenMGRows: 1 + rng.Intn(4)}, 2+rng.Intn(4))
	ntags := 1 + rng.Intn(3)
	schema := f.schema(t, "ref", ntags)

	// A mixed fleet: fast regular, fast irregular, slow (MG) sources.
	type srcState struct {
		ds     *model.DataSource
		nextTS int64
	}
	var sources []*srcState
	for i := 0; i < 6; i++ {
		var ds *model.DataSource
		switch i % 3 {
		case 0:
			ds = f.source(t, schema.ID, true, 10) // RTS
		case 1:
			ds = f.source(t, schema.ID, false, 25) // IRTS
		default:
			ds = f.source(t, schema.ID, true, 5000) // MG
		}
		sources = append(sources, &srcState{ds: ds, nextTS: 1_000_000})
	}

	type refKey struct{ src, ts int64 }
	ref := map[refKey]refPoint{} // latest point per (source, ts)
	var maxTS int64
	for op := 0; op < 600; op++ {
		switch rng.Intn(20) {
		case 0:
			if err := f.store.Flush(); err != nil {
				t.Fatal(err)
			}
			continue
		case 1:
			if maxTS > 0 {
				cut := 1_000_000 + rng.Int63n(maxTS-1_000_000+1)
				if _, err := f.store.Reorganize(schema.ID, cut); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		st := sources[rng.Intn(len(sources))]
		vals := make([]float64, ntags)
		for j := range vals {
			if rng.Intn(4) == 0 {
				vals[j] = model.NullValue
			} else {
				vals[j] = math.Round(rng.Float64()*1000) / 4 // exact in float64
			}
		}
		p := model.Point{Source: st.ds.ID, TS: st.nextTS, Values: vals}
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
		ref[refKey{p.Source, p.TS}] = refPoint{p.Source, p.TS, vals}
		if p.TS > maxTS {
			maxTS = p.TS
		}
		if st.ds.Regular && st.ds.IngestStructure() == model.RTS {
			st.nextTS += st.ds.IntervalMs
		} else {
			st.nextTS += st.ds.IntervalMs/2 + rng.Int63n(st.ds.IntervalMs)
		}
	}

	// Historical scans per source over random windows (including open).
	for _, st := range sources {
		for trial := 0; trial < 3; trial++ {
			t1 := int64(1_000_000) + rng.Int63n(maxTS-999_999)
			t2 := t1 + rng.Int63n(maxTS-t1+2)
			if trial == 0 {
				t1, t2 = math.MinInt64, math.MaxInt64
			}
			it, err := f.store.HistoricalScan(st.ds.ID, t1, t2, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := collect(t, it)
			var want []refPoint
			for _, rp := range ref {
				if rp.source == st.ds.ID && rp.ts >= t1 && rp.ts < t2 {
					want = append(want, rp)
				}
			}
			sort.Slice(want, func(a, b int) bool { return want[a].ts < want[b].ts })
			if len(got) != len(want) {
				t.Fatalf("source %d window [%d,%d): got %d points, want %d",
					st.ds.ID, t1, t2, len(got), len(want))
			}
			for i := range want {
				if got[i].TS != want[i].ts {
					t.Fatalf("source %d: ts[%d] = %d, want %d", st.ds.ID, i, got[i].TS, want[i].ts)
				}
				for j := range want[i].values {
					a, b := want[i].values[j], got[i].Values[j]
					if model.IsNull(a) != model.IsNull(b) || (!model.IsNull(a) && a != b) {
						t.Fatalf("source %d ts %d tag %d: got %v, want %v",
							st.ds.ID, got[i].TS, j, b, a)
					}
				}
			}
		}
	}

	// Slice scans across the schema.
	for trial := 0; trial < 4; trial++ {
		t1 := int64(1_000_000) + rng.Int63n(maxTS-999_999)
		t2 := t1 + rng.Int63n(maxTS-t1+2)
		it, err := f.store.SliceScan(schema.ID, t1, t2, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, it)
		wantCount := 0
		for _, rp := range ref {
			if rp.ts >= t1 && rp.ts < t2 {
				wantCount++
			}
		}
		if len(got) != wantCount {
			t.Fatalf("slice [%d,%d): got %d, want %d", t1, t2, len(got), wantCount)
		}
	}
}
