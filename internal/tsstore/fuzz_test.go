package tsstore

import (
	"testing"

	"odh/internal/model"
)

// FuzzValueBlobDecode asserts DecodeBlob never panics or over-allocates on
// adversarial bytes — every outcome must be a decoded batch or an error.
// Seeds cover all three structures plus both layouts so mutations explore
// deep decode paths, not just header rejection.
func FuzzValueBlobDecode(f *testing.F) {
	pts := make([]model.Point, 12)
	for i := range pts {
		pts[i] = model.Point{
			Source: 7,
			TS:     int64(1000 + i*50 + i%3), // slightly irregular
			Values: []float64{float64(i), 20.5 - float64(i), model.NullValue}[:3],
		}
	}
	f.Add(EncodeRTS(pts, 3, 50, encodeOpts{}))
	f.Add(EncodeRTS(pts, 3, 50, encodeOpts{layout: layoutRowOriented}))
	f.Add(EncodeRTS(pts, 3, 50, encodeOpts{disable: true}))
	f.Add(EncodeIRTS(pts, 3, encodeOpts{}))
	// v3 frames: sub-bucket blocks at several base widths, so mutations
	// explore truncated/corrupt sub arrays, not just the v2 header shapes.
	f.Add(EncodeRTS(pts, 3, 50, encodeOpts{subBucketMs: 100}))
	f.Add(EncodeRTS(pts, 3, 50, encodeOpts{subBucketMs: 25}))
	f.Add(EncodeIRTS(pts, 3, encodeOpts{subBucketMs: 200}))
	present := []bool{true, false, true, true}
	rows := [][]float64{{1.5}, nil, {2.5}, {model.NullValue}}
	offsets := []int64{3, 0, 7, 12}
	f.Add(EncodeMG(present, rows, offsets, 1, encodeOpts{}))
	f.Add([]byte{})
	f.Add([]byte{0xFF})

	f.Fuzz(func(t *testing.T, blob []byte) {
		batch, err := DecodeBlob(blob, 1000, nil)
		if err != nil {
			return
		}
		// Structural postconditions on anything that decodes cleanly.
		if len(batch.Timestamps) != len(batch.Rows) {
			t.Fatalf("%d timestamps for %d rows", len(batch.Timestamps), len(batch.Rows))
		}
		if batch.Slots != nil && len(batch.Slots) != len(batch.Rows) {
			t.Fatalf("%d slots for %d rows", len(batch.Slots), len(batch.Rows))
		}
		// Partial-column decode must be consistent too.
		if _, err := DecodeBlob(blob, 1000, []int{0}); err != nil {
			t.Fatalf("full decode succeeded but wantTags decode failed: %v", err)
		}
		// Zone-map peeking must never panic either.
		_ = BlobOverlaps(blob, []TagRange{{Tag: 0, Lo: -1, Hi: 1}})
		// v3 frames: the sub-bucket parser must reject corrupt blocks
		// typed (ok=false), never panic, and anything it accepts must
		// satisfy the fold invariants the aggregate path relies on.
		if len(blob) > 0 && blob[0]&flagSubBuckets != 0 {
			sub, ok := parseBlobSubSummaries(blob, 1000)
			if !ok {
				return
			}
			if sub.base <= 0 || len(sub.buckets) == 0 || len(sub.buckets) > maxSubBucketsRead {
				t.Fatalf("accepted sub block with base=%d buckets=%d", sub.base, len(sub.buckets))
			}
			sum, okSum := parseBlobSummary(blob, 1000)
			if !okSum {
				t.Fatal("sub block parsed but summary did not")
			}
			var rows int64
			for _, b := range sub.buckets {
				rows += b.rows
				for _, nn := range b.nonNull {
					if nn < 0 || nn > b.rows {
						t.Fatalf("accepted sub bucket with nonNull=%d rows=%d", nn, b.rows)
					}
				}
			}
			if rows != sum.rows {
				t.Fatalf("accepted sub block totaling %d rows against a %d-row summary", rows, sum.rows)
			}
		}
	})
}

// FuzzWALPointDecode asserts the WAL point codec rejects corrupt records
// without panicking (replay feeds it checksummed but possibly torn bytes).
func FuzzWALPointDecode(f *testing.F) {
	f.Add(EncodePointWAL(model.Point{Source: 3, TS: 12345, Values: []float64{1, 2, 3}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := DecodePointWAL(b)
		if err == nil && len(p.Values) > 1<<20 {
			t.Fatalf("accepted %d values from a %d-byte record", len(p.Values), len(b))
		}
	})
}
