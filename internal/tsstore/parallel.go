package tsstore

import (
	"context"
	"math"

	"odh/internal/model"
)

// The parallel scan scheduler fans the independent parts of a scan —
// disjoint sources, and ts-disjoint sub-ranges of one source's batch
// walk — across a bounded worker pool. Each worker drains its part
// iterator up to a per-part byte budget and delivers one result over a
// capacity-1 channel, so an abandoned scan (e.g. a LIMIT that stops
// early) never strands a blocked goroutine and never holds more than
// parts × maxPartBufferBytes of decoded points. A part larger than the
// budget is handed back still live: the consumer replays the buffered
// prefix, then continues the same iterator serially on its own
// goroutine — the fan-out covers the first maxPartBufferBytes of every
// part, the oversized tails stream like a serial scan. Results are
// consumed in the original part order and fed to the same
// mergeIter/concatIter the serial path uses, which keeps the output
// byte-identical to a serial scan.

// ScanOptions tunes one scan; the zero value is the serial, cached
// behavior of the plain scan methods.
type ScanOptions struct {
	// Workers bounds how many scan parts are drained concurrently.
	// Values <= 1 keep the scan on the calling goroutine.
	Workers int
	// NoCache bypasses the decoded-blob cache for this scan (reads and
	// inserts); used to cross-check cached results and by verification.
	NoCache bool
	// Ctx, when non-nil, cancels the scan: serial iterators observe it
	// before each blob load, pool workers observe it between drained
	// points and between parts, and aggregate parts observe it between
	// records. A canceled scan stops decoding and reports ctx.Err()
	// through Iterator.Err (or the aggregate call's error).
	Ctx context.Context
}

// ctxErr is a nil-safe ctx.Err for the scan paths (nil ctx = no
// cancellation, the historical behavior).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ctxCheckInterval is how many drained points a pool worker buffers
// between cancellation checks; cheap enough to keep aborts prompt without
// a per-point atomic load.
const ctxCheckInterval = 256

// maxScanWorkers caps the per-scan fan-out regardless of options.
const maxScanWorkers = 64

func clampWorkers(n int) int {
	if n > maxScanWorkers {
		return maxScanWorkers
	}
	if n < 1 {
		return 1
	}
	return n
}

// scanCache resolves the cache a scan should use (nil = bypass).
func (s *Store) scanCache(opts ScanOptions) *blobCache {
	if opts.NoCache {
		return nil
	}
	return s.cache
}

// scanRange is one ts-disjoint slice of a scan window.
type scanRange struct{ t1, t2 int64 }

// splitScanRange partitions [t1, t2) into up to k ts-disjoint sub-ranges
// that cover exactly the same window. Boundaries are spread over the
// source's recorded data range so the split lands where batches actually
// are; a window (or data range) too small to split returns one range.
// Because the sub-ranges partition by timestamp, concatenating their
// scans yields exactly the rows of the full-range scan, in the same
// order: equal-timestamp points always land in the same sub-range.
func splitScanRange(t1, t2 int64, stats model.SourceStats, k int) []scanRange {
	if k <= 1 || stats.PointCount == 0 {
		return []scanRange{{t1, t2}}
	}
	lo, hi := stats.FirstTS, stats.LastTS
	if hi < math.MaxInt64 {
		hi++ // cover LastTS itself; ranges are half-open
	}
	if lo < t1 {
		lo = t1
	}
	if hi > t2 {
		hi = t2
	}
	if hi <= lo {
		return []scanRange{{t1, t2}}
	}
	span := uint64(hi) - uint64(lo)
	if span < uint64(k)*2 || span > 1<<62 {
		return []scanRange{{t1, t2}}
	}
	step := span / uint64(k)
	out := make([]scanRange, 0, k)
	prev := t1
	for i := 1; i < k; i++ {
		b := lo + int64(step*uint64(i))
		out = append(out, scanRange{prev, b})
		prev = b
	}
	return append(out, scanRange{prev, t2})
}

// maxPartBufferBytes bounds the decoded point bytes one worker may
// materialize ahead of the consumer. The planner sizes parts near
// parallelCostUnit (64 KiB of blob bytes), so ordinary parts fit whole;
// the bound only bites when skewed stats mis-split a window, keeping a
// scan's worst-case buffered memory at parts × this budget instead of
// the full decoded result.
const maxPartBufferBytes = 4 << 20

// partResult is the drained output of one scan part. When the part
// out-sized the buffer budget, rest is the same iterator, still live and
// positioned after the buffered prefix; the channel handoff orders the
// worker's Next calls before the consumer's.
type partResult struct {
	points       []model.Point
	rest         Iterator
	err          error
	blobBytes    int64
	blobsSkipped int64
}

// partIter replays one materialized part, then continues any unbuffered
// tail inline. The worker's single send is received lazily on first use,
// so parts later in a concat keep loading in the background while
// earlier parts stream out.
type partIter struct {
	ch  <-chan partResult
	res *partResult
	i   int
}

func (it *partIter) fetch() {
	if it.res == nil {
		r := <-it.ch
		it.res = &r
	}
}

// Next yields the points drained before any error, then stops — the same
// shape a serial iterator has when a scan fails mid-way.
func (it *partIter) Next() (model.Point, bool) {
	it.fetch()
	if it.i < len(it.res.points) {
		p := it.res.points[it.i]
		it.i++
		return p, true
	}
	if it.res.rest != nil {
		return it.res.rest.Next()
	}
	return model.Point{}, false
}

func (it *partIter) Err() error {
	it.fetch()
	if it.res.rest != nil {
		return it.res.rest.Err()
	}
	return it.res.err
}

// BlobBytes reports the part's cost once its result arrived; an
// un-fetched part contributes nothing yet rather than blocking. A
// handed-back iterator keeps accumulating, prefix included.
func (it *partIter) BlobBytes() int64 {
	if it.res == nil {
		return 0
	}
	if it.res.rest != nil {
		return it.res.rest.BlobBytes()
	}
	return it.res.blobBytes
}

func (it *partIter) BlobsSkipped() int64 {
	if it.res == nil {
		return 0
	}
	if it.res.rest != nil {
		return it.res.rest.BlobsSkipped()
	}
	return it.res.blobsSkipped
}

// drainParts drains every part on the worker pool and returns one
// order-preserving partIter per input part.
func (s *Store) drainParts(ctx context.Context, parts []Iterator, workers int) []Iterator {
	return s.drainPartsBounded(ctx, parts, workers, maxPartBufferBytes)
}

// drainPartsBounded is drainParts with an explicit per-part buffer
// budget (separated for tests). Workers observe ctx before starting
// their part and every ctxCheckInterval drained points, so an abandoned
// or timed-out query stops decoding blobs instead of racing the pool to
// completion.
func (s *Store) drainPartsBounded(ctx context.Context, parts []Iterator, workers int, budget int64) []Iterator {
	if workers > len(parts) {
		workers = len(parts)
	}
	sem := make(chan struct{}, workers)
	out := make([]Iterator, len(parts))
	for i, p := range parts {
		ch := make(chan partResult, 1)
		out[i] = &partIter{ch: ch}
		go func(p Iterator, ch chan<- partResult) {
			sem <- struct{}{}
			defer func() { <-sem }()
			var res partResult
			if err := ctxErr(ctx); err != nil {
				res.err = err
				ch <- res
				return
			}
			var buffered int64
			var sinceCheck int
			for buffered < budget {
				pt, ok := p.Next()
				if !ok {
					break
				}
				res.points = append(res.points, pt)
				buffered += pointBlobBytes(len(pt.Values))
				if sinceCheck++; sinceCheck >= ctxCheckInterval {
					sinceCheck = 0
					if err := ctxErr(ctx); err != nil {
						res.err = err
						ch <- res
						return
					}
				}
			}
			if buffered >= budget {
				// Budget hit: hand the live iterator back; the consumer
				// continues it serially after replaying the prefix.
				res.rest = p
			} else {
				res.err = p.Err()
				res.blobBytes = p.BlobBytes()
				res.blobsSkipped = p.BlobsSkipped()
			}
			ch <- res
		}(p, ch)
	}
	s.parallelScans.Add(1)
	s.parallelParts.Add(int64(len(parts)))
	return out
}
