package tsstore

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"odh/internal/compress"
	"odh/internal/keyenc"
	"odh/internal/model"
)

// writeRegular ingests n gap-free points for an RTS source starting at
// start and flushes, so everything lands in persisted batches.
func writeRegular(t testing.TB, f *fixture, ds *model.DataSource, start int64, n int, ntags int) {
	t.Helper()
	for i := 0; i < n; i++ {
		vals := make([]float64, ntags)
		for j := range vals {
			vals[j] = float64(i%97) + float64(j)
		}
		if err := f.store.Write(model.Point{Source: ds.ID, TS: start + int64(i)*ds.IntervalMs, Values: vals}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
}

func tierScanAll(t testing.TB, s *Store, source, t1, t2 int64) []model.Point {
	t.Helper()
	it, err := s.HistoricalScan(source, t1, t2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return collect(t, it)
}

func TestTierColdCompaction(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	s := f.schema(t, "env", 2)
	ds := f.source(t, s.ID, true, 10)
	writeRegular(t, f, ds, 0, 400, 2)

	before := tierScanAll(t, f.store, ds.ID, 0, math.MaxInt64)
	statsBefore := f.cat.Stats(ds.ID)
	now := statsBefore.LastTS + 1
	cutoff := now - 1000 // everything with lastTS < cutoff goes cold

	res, err := f.store.TierSchema(s.ID, TierPolicy{ColdAfterMs: 1000}, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdCompacted == 0 || res.ColdWritten == 0 {
		t.Fatalf("cold pass did nothing: %+v", res)
	}
	if res.ColdWritten >= res.ColdCompacted {
		t.Fatalf("cold pass did not coalesce: %d records -> %d", res.ColdCompacted, res.ColdWritten)
	}
	if res.BytesAfter >= res.BytesBefore {
		t.Fatalf("cold pass grew bytes: %d -> %d", res.BytesBefore, res.BytesAfter)
	}

	// Every record below the cutoff is now cold; data is bit-identical.
	if err := f.store.rts.Scan(nil, nil, func(k, v []byte) bool {
		if tier := BlobTier(v); tier == TierHot {
			_, baseTS, kerr := keyenc.DecodeSourceTime(k)
			if kerr != nil {
				t.Error(kerr)
				return false
			}
			if last, ok := blobLastTS(v, baseTS); ok && last < cutoff {
				t.Errorf("hot record with lastTS=%d survived below cutoff %d", last, cutoff)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	after := tierScanAll(t, f.store, ds.ID, 0, math.MaxInt64)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("cold compaction changed scan results: %d vs %d points", len(before), len(after))
	}

	// Catalog stats stay coherent through the delete/rewrite cycle.
	statsAfter := f.cat.Stats(ds.ID)
	if statsAfter.PointCount != statsBefore.PointCount {
		t.Fatalf("point count drifted: %d -> %d", statsBefore.PointCount, statsAfter.PointCount)
	}

	// A second pass is a no-op: cold records never re-compact.
	res2, err := f.store.TierSchema(s.ID, TierPolicy{ColdAfterMs: 1000}, now)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ColdCompacted != 0 || res2.Stubbed != 0 {
		t.Fatalf("tier pass is not idempotent: %+v", res2)
	}

	ts, err := f.store.TierStats()
	if err != nil {
		t.Fatal(err)
	}
	if ts.ColdBlobs != int64(res.ColdWritten) {
		t.Fatalf("TierStats cold count = %d, want %d", ts.ColdBlobs, res.ColdWritten)
	}
	if got := f.store.Stats(); got.ColdCompactions != int64(res.ColdCompacted) || got.TierBytesReclaimed != res.BytesReclaimed {
		t.Fatalf("stats counters = %+v, want cold=%d reclaimed=%d", got, res.ColdCompacted, res.BytesReclaimed)
	}
}

func TestTierColdLossyPolicyBitIdentical(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	tags := []model.TagDef{
		{Name: "a", Compression: compress.Policy{MaxDev: 0.5}},
		{Name: "b"},
	}
	s, err := f.cat.CreateSchemaType("lossy", tags)
	if err != nil {
		t.Fatal(err)
	}
	ds := f.source(t, s.ID, true, 10)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		if werr := f.store.Write(model.Point{Source: ds.ID, TS: int64(i) * 10, Values: []float64{rng.Float64() * 100, rng.Float64()}}); werr != nil {
			t.Fatal(werr)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	before := tierScanAll(t, f.store, ds.ID, 0, math.MaxInt64)
	if _, err := f.store.TierSchema(s.ID, TierPolicy{ColdAfterMs: 1}, f.cat.Stats(ds.ID).LastTS+2); err != nil {
		t.Fatal(err)
	}
	after := tierScanAll(t, f.store, ds.ID, 0, math.MaxInt64)
	if len(before) != len(after) {
		t.Fatalf("point count changed: %d -> %d", len(before), len(after))
	}
	// The cold tier must preserve the lossy round-trip bit-for-bit — it
	// re-encodes the already-degraded values losslessly, it never loses
	// again.
	for i := range before {
		for j := range before[i].Values {
			if math.Float64bits(before[i].Values[j]) != math.Float64bits(after[i].Values[j]) {
				t.Fatalf("point %d tag %d: %v -> %v", i, j, before[i].Values[j], after[i].Values[j])
			}
		}
	}
}

func TestTierStubAggregatesAndScanError(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	s := f.schema(t, "env", 2)
	ds := f.source(t, s.ID, true, 10)
	writeRegular(t, f, ds, 0, 640, 2)
	last := f.cat.Stats(ds.ID).LastTS
	now := last + 1

	spec := AggSpec{T1: 0, T2: math.MaxInt64, NTags: 2}
	aggBefore, err := f.store.AggregateHistorical(ds.ID, spec)
	if err != nil {
		t.Fatal(err)
	}

	// The cold pass coalesces at 8x batch granularity (128 points =
	// 1280ms spans here), so the stub cutoff must clear at least one
	// whole cold blob; straddlers keep their rows.
	res, err := f.store.TierSchema(s.ID, TierPolicy{ColdAfterMs: 1000, StubAfterMs: 3000}, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stubbed == 0 {
		t.Fatalf("stub pass did nothing: %+v", res)
	}

	// Aggregates over the stubbed history stay bit-identical: the stub
	// keeps the exact summary the hot record carried.
	aggAfter, err := f.store.AggregateHistorical(ds.ID, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggBefore.Groups) != len(aggAfter.Groups) {
		t.Fatalf("group count changed: %d -> %d", len(aggBefore.Groups), len(aggAfter.Groups))
	}
	for i := range aggBefore.Groups {
		b, a := aggBefore.Groups[i], aggAfter.Groups[i]
		if b.Rows != a.Rows || !reflect.DeepEqual(b.NonNull, a.NonNull) {
			t.Fatalf("group %d count drifted: %+v vs %+v", i, b, a)
		}
		for tg := range b.Sum {
			if math.Float64bits(b.Sum[tg]) != math.Float64bits(a.Sum[tg]) ||
				math.Float64bits(b.Min[tg]) != math.Float64bits(a.Min[tg]) ||
				math.Float64bits(b.Max[tg]) != math.Float64bits(a.Max[tg]) {
				t.Fatalf("group %d tag %d aggregate drifted", i, tg)
			}
		}
	}

	// A raw-row scan over the stubbed range fails with the typed error.
	it, err := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	serr := it.Err()
	if serr == nil {
		t.Fatal("raw scan over stubbed range succeeded")
	}
	if !errors.Is(serr, ErrStubbedBlob) {
		t.Fatalf("scan error %v is not ErrStubbedBlob", serr)
	}
	var sre *StubbedRangeError
	if !errors.As(serr, &sre) || sre.Tree != "ts.rts" || sre.Source != ds.ID {
		t.Fatalf("scan error %v lacks record identity", serr)
	}

	// A scan restricted to the still-hot tail succeeds: stubs outside the
	// window skip silently.
	tail := tierScanAll(t, f.store, ds.ID, now-900, math.MaxInt64)
	if len(tail) == 0 {
		t.Fatal("tail scan over hot range returned nothing")
	}

	// Boundary aggregates that need rows inside a stub fail loudly too.
	if _, err := f.store.AggregateHistorical(ds.ID, AggSpec{T1: 5, T2: 25, NTags: 2}); !errors.Is(err, ErrStubbedBlob) {
		t.Fatalf("boundary aggregate over stub: err = %v, want ErrStubbedBlob", err)
	}

	// fsck accepts stubs: the payload is gone by policy, not corruption.
	checked, corrupt, err := f.store.VerifyBlobs()
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 || len(corrupt) != 0 {
		t.Fatalf("VerifyBlobs checked=%d corrupt=%v", checked, corrupt)
	}

	ts, err := f.store.TierStats()
	if err != nil {
		t.Fatal(err)
	}
	if ts.StubBlobs != int64(res.Stubbed) {
		t.Fatalf("TierStats stub count = %d, want %d", ts.StubBlobs, res.Stubbed)
	}
	if ts.StubBytes >= ts.HotBytes {
		t.Fatalf("stub bytes %d not smaller than hot bytes %d", ts.StubBytes, ts.HotBytes)
	}
}

func TestTierStubNotQuarantinedByLenientScan(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, LenientScan: true}, 0)
	s := f.schema(t, "env", 1)
	ds := f.source(t, s.ID, true, 10)
	writeRegular(t, f, ds, 0, 64, 1)
	now := f.cat.Stats(ds.ID).LastTS + 1
	if _, err := f.store.TierSchema(s.ID, TierPolicy{StubAfterMs: 100}, now); err != nil {
		t.Fatal(err)
	}
	it, err := f.store.HistoricalScan(ds.ID, 0, now-200, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	// Lenient mode quarantines corruption; a stub is policy and must
	// still surface as the typed error, never as a silent skip.
	if !errors.Is(it.Err(), ErrStubbedBlob) {
		t.Fatalf("lenient scan err = %v, want ErrStubbedBlob", it.Err())
	}
	if got := f.store.Stats().CorruptBlobsSkipped; got != 0 {
		t.Fatalf("lenient scan quarantined %d stubs as corrupt", got)
	}
}

func TestTierLegacyBlobUpgrade(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, LegacyBlobFormat: true}, 0)
	s := f.schema(t, "env", 2)
	ds := f.source(t, s.ID, true, 10)
	dsStub := f.source(t, s.ID, true, 10)
	writeRegular(t, f, ds, 0, 160, 2)
	writeRegular(t, f, dsStub, 0, 160, 2)
	before := tierScanAll(t, f.store, ds.ID, 0, math.MaxInt64)
	now := f.cat.Stats(ds.ID).LastTS + 1

	// Cold pass reads legacy (pre-summary) blobs through the decode
	// fallback and writes summary-format cold blobs.
	res, err := f.store.TierSchema(s.ID, TierPolicy{ColdAfterMs: 1}, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdCompacted == 0 {
		t.Fatal("cold pass skipped legacy blobs")
	}
	after := tierScanAll(t, f.store, ds.ID, 0, math.MaxInt64)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("legacy cold upgrade changed scan results")
	}

	// Stubbing straight from legacy re-encodes the header first; the
	// summary then answers aggregates.
	agg, err := f.store.AggregateHistorical(dsStub.ID, AggSpec{T1: 0, T2: math.MaxInt64, NTags: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.store.TierSchema(s.ID, TierPolicy{StubAfterMs: 1}, now); err != nil {
		t.Fatal(err)
	}
	agg2, err := f.store.AggregateHistorical(dsStub.ID, AggSpec{T1: 0, T2: math.MaxInt64, NTags: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Groups) != 1 || len(agg2.Groups) != 1 || agg.Groups[0].Rows != agg2.Groups[0].Rows {
		t.Fatalf("legacy stub aggregate drifted: %+v vs %+v", agg.Groups, agg2.Groups)
	}
	for tg := range agg.Groups[0].Sum {
		if math.Float64bits(agg.Groups[0].Sum[tg]) != math.Float64bits(agg2.Groups[0].Sum[tg]) {
			t.Fatalf("legacy stub sum drifted on tag %d", tg)
		}
	}
}

func TestTierRetentionDropsStubs(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	s := f.schema(t, "env", 1)
	ds := f.source(t, s.ID, true, 10)
	writeRegular(t, f, ds, 0, 160, 1)
	now := f.cat.Stats(ds.ID).LastTS + 1
	res, err := f.store.TierSchema(s.ID, TierPolicy{StubAfterMs: 500}, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stubbed == 0 {
		t.Fatal("no stubs created")
	}
	// Retention is the lifecycle's final stage: stubs age out like any
	// other record, via their summary timestamps.
	drop, err := f.store.DropBefore(s.ID, now-500)
	if err != nil {
		t.Fatal(err)
	}
	if drop.RecordsDropped < res.Stubbed {
		t.Fatalf("retention dropped %d records, want >= %d stubs", drop.RecordsDropped, res.Stubbed)
	}
	ts, err := f.store.TierStats()
	if err != nil {
		t.Fatal(err)
	}
	if ts.StubBlobs != 0 {
		t.Fatalf("%d stubs survived retention", ts.StubBlobs)
	}
}

// TestTierConcurrentWithScans exercises tier passes racing reads and
// ingest on other sources — the CI race-detector target for the tier
// lifecycle's lock and cache-invalidation protocol.
func TestTierConcurrentWithScans(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, BlobCacheBytes: 1 << 20}, 0)
	s := f.schema(t, "env", 2)
	tiered := f.source(t, s.ID, true, 10)
	hot := f.source(t, s.ID, true, 10)
	writeRegular(t, f, tiered, 0, 320, 2)
	writeRegular(t, f, hot, 0, 320, 2)
	now := f.cat.Stats(tiered.ID).LastTS + 1

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Scans of the hot source must never see tier errors; scans of
			// the tiered source may see ErrStubbedBlob but nothing else.
			it, err := f.store.HistoricalScan(hot.ID, 0, math.MaxInt64, nil)
			if err != nil {
				t.Error(err)
				return
			}
			n := 0
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				n++
			}
			if it.Err() != nil || n != 320 {
				t.Errorf("hot scan: n=%d err=%v", n, it.Err())
				return
			}
			it2, err := f.store.HistoricalScan(tiered.ID, 0, math.MaxInt64, nil)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				if _, ok := it2.Next(); !ok {
					break
				}
			}
			if err := it2.Err(); err != nil && !errors.Is(err, ErrStubbedBlob) {
				t.Errorf("tiered scan: %v", err)
				return
			}
		}
	}()
	for round := 0; round < 6; round++ {
		pol := TierPolicy{ColdAfterMs: int64(2000 - round*300)}
		if round >= 3 {
			pol.StubAfterMs = int64(3000 - round*400)
		}
		if _, err := f.store.TierSchema(s.ID, pol, now); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if _, corrupt, err := f.store.VerifyBlobs(); err != nil || len(corrupt) != 0 {
		t.Fatalf("post-race fsck: corrupt=%v err=%v", corrupt, err)
	}
}

func TestMakeStubBlobRoundTrip(t *testing.T) {
	pts := make([]model.Point, 40)
	for i := range pts {
		pts[i] = model.Point{TS: int64(i) * 10, Values: []float64{float64(i), float64(i % 3)}}
	}
	blob := EncodeRTS(pts, 2, 10, encodeOpts{policies: []compress.Policy{{}, {}}})
	sumFull, ok := parseBlobSummary(blob, 0)
	if !ok {
		t.Fatal("full blob has no summary")
	}
	stub, ok := makeStubBlob(blob)
	if !ok {
		t.Fatal("makeStubBlob failed")
	}
	if len(stub) >= len(blob) {
		t.Fatalf("stub (%d bytes) not smaller than blob (%d bytes)", len(stub), len(blob))
	}
	if BlobTier(stub) != TierStub || !IsStubBlob(stub) {
		t.Fatal("stub tier bit missing")
	}
	sumStub, ok := parseBlobSummary(stub, 0)
	if !ok {
		t.Fatal("stub summary unreadable")
	}
	if !reflect.DeepEqual(sumFull, sumStub) {
		t.Fatalf("stub summary drifted: %+v vs %+v", sumFull, sumStub)
	}
	if _, err := DecodeBlob(stub, 0, nil); !errors.Is(err, ErrStubbedBlob) {
		t.Fatalf("DecodeBlob(stub) err = %v, want ErrStubbedBlob", err)
	}
	if _, ok := makeStubBlob(stub); ok {
		t.Fatal("re-stubbing a stub must fail")
	}
	if zones, ok := blobZoneMaps(stub); !ok || len(zones) != 2 {
		t.Fatal("stub zone maps unreadable")
	}
}
