package tsstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"odh/internal/btree"
	"odh/internal/catalog"
	"odh/internal/compress"
	"odh/internal/keyenc"
	"odh/internal/model"
	"odh/internal/pagestore"
	"odh/internal/walog"
)

// DefaultBatchSize is the number of points packed per ValueBlob when the
// caller does not configure b.
const DefaultBatchSize = 128

// Config tunes the store. The zero value gives defaults.
type Config struct {
	// BatchSize is b, the number of operational points packed into one
	// batch record (paper §2).
	BatchSize int
	// DisableCompression stores raw columns (compression ablation).
	DisableCompression bool
	// RowOrientedBlobs stores row-major blobs instead of tag-oriented
	// columns (layout ablation; single-tag queries must decode everything).
	RowOrientedBlobs bool
	// MaxOpenMGRows bounds how many distinct timestamps an MG group buffer
	// may hold before the oldest row is flushed partially filled.
	MaxOpenMGRows int
	// Log, when non-nil, records buffered points for bounded-loss recovery.
	Log *walog.Log
	// LenientScan makes scans quarantine unreadable batch records (skip
	// them and count Stats.CorruptBlobsSkipped) instead of aborting the
	// query. The default is strict: a corrupt blob fails the scan with the
	// underlying error so callers cannot silently miss data.
	LenientScan bool
	// Shards overrides the ingest-lock shard count (rounded to a power of
	// two). Zero sizes it from GOMAXPROCS; 1 gives a single global lock.
	Shards int
	// BlobCacheBytes budgets the decoded-ValueBlob cache (decoded bytes
	// held). Zero disables caching: every scan decodes from the pagestore.
	BlobCacheBytes int64
	// LegacyBlobFormat writes blobs in the pre-summary format (no header
	// aggregate block). Test hook for the backward-compatibility suite;
	// readers handle both formats regardless.
	LegacyBlobFormat bool
	// SubBucketMs is the base width of the per-sub-bucket mini-summaries
	// written into v3 blobs (format flag 0x04): TIME_BUCKET grids that are
	// positive integral multiples of this width fold straddling blobs
	// without decoding. Zero picks DefaultSubBucketMs; negative disables
	// sub-bucket blocks (v2 write format). Readers handle every format
	// regardless.
	SubBucketMs int64
}

// DefaultSubBucketMs is the sub-bucket base width when the caller does not
// configure one: one minute, the finest grid of the operational roll-up
// widths (1m/5m/1h) the historian workloads query.
const DefaultSubBucketMs = 60_000

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.MaxOpenMGRows <= 0 {
		c.MaxOpenMGRows = 4
	}
	switch {
	case c.SubBucketMs == 0:
		c.SubBucketMs = DefaultSubBucketMs
	case c.SubBucketMs < 0:
		c.SubBucketMs = 0 // disabled: write the v2 (whole-blob summary) format
	}
	return c
}

// Stats counts store activity for the benchmark harness.
type Stats struct {
	PointsWritten  int64
	BatchesFlushed int64
	BlobBytes      int64
	MGPartialRows  int64 // MG rows flushed before every member reported
	// CorruptBlobsSkipped counts batch records that lenient scans could
	// not read or decode and therefore quarantined.
	CorruptBlobsSkipped int64
	// ParallelScans counts scans that fanned parts onto the worker pool;
	// ParallelParts counts the parts they dispatched.
	ParallelScans int64
	ParallelParts int64
	// SummaryHits counts blob records an aggregate scan folded from their
	// header summary without decoding columns; BytesNotDecoded totals the
	// encoded blob bytes those folds avoided reading.
	SummaryHits     int64
	BytesNotDecoded int64
	// SubBucketFolds counts blob records that straddled the query's bucket
	// grid (or its window edges) and folded from per-sub-bucket
	// mini-summaries instead of a boundary decode;
	// SubBucketBytesNotDecoded totals the encoded bytes those folds
	// avoided reading.
	SubBucketFolds           int64
	SubBucketBytesNotDecoded int64
	// ColdCompactions counts hot records consumed by cold-tier passes;
	// StubTransitions counts records truncated to summary-only stubs;
	// TierBytesReclaimed is the net encoded bytes tier passes removed.
	ColdCompactions    int64
	StubTransitions    int64
	TierBytesReclaimed int64
}

// Stats.add accumulates other into st (shard aggregation).
func (st *Stats) add(other Stats) {
	st.PointsWritten += other.PointsWritten
	st.BatchesFlushed += other.BatchesFlushed
	st.BlobBytes += other.BlobBytes
	st.MGPartialRows += other.MGPartialRows
	st.CorruptBlobsSkipped += other.CorruptBlobsSkipped
}

// Add accumulates every counter of other into st — multi-store
// aggregation, e.g. a cluster summing its shard copies' snapshots.
func (st *Stats) Add(other *Stats) {
	st.add(*other)
	st.ParallelScans += other.ParallelScans
	st.ParallelParts += other.ParallelParts
	st.SummaryHits += other.SummaryHits
	st.BytesNotDecoded += other.BytesNotDecoded
	st.SubBucketFolds += other.SubBucketFolds
	st.SubBucketBytesNotDecoded += other.SubBucketBytesNotDecoded
	st.ColdCompactions += other.ColdCompactions
	st.StubTransitions += other.StubTransitions
	st.TierBytesReclaimed += other.TierBytesReclaimed
}

// maxShards caps the ingest shard count.
const maxShards = 64

// shard is one latch domain of the ingest path: RTS/IRTS source buffers
// hash here by source id and MG group buffers by group id, so writers of
// different sources (or groups) never contend. The two maps are disjoint
// namespaces — a source id colliding numerically with a group id is
// harmless. The B-trees and the catalog have their own internal locks
// and never call back into the shard, so holding a shard lock across a
// batch flush cannot deadlock.
type shard struct {
	mu      sync.RWMutex
	buffers map[int64]*sourceBuffer
	groups  map[int64]*groupBuffer
	stats   Stats
}

// Store is the ODH storage component over one page store. Writes for
// different sources proceed in parallel on separate shards; writes for
// the same source (or MG group) serialize on its shard, preserving
// per-source arrival order.
type Store struct {
	cfg Config
	cat *catalog.Catalog

	rts, irts, mg *btree.Tree
	watermarks    *btree.Tree // group id -> reorg watermark ts

	shards    []*shard
	shardMask uint32

	// logMu orders WAL appends against log recycling when a recovery log
	// is attached: writers hold it shared across append + buffer insert,
	// Flush holds it exclusively across drain + reset. Without it a flush
	// racing a writer could truncate an appended record whose point had
	// not yet reached a buffer — an acked write lost without any crash.
	logMu sync.RWMutex

	// corruptBlobs is kept outside the shards: scans quarantine records
	// without knowing (or locking) a shard.
	corruptBlobs atomic.Int64

	// cache holds decoded ValueBlobs for the read path; nil when
	// Config.BlobCacheBytes is zero.
	cache *blobCache

	// parallelScans/parallelParts count worker-pool dispatches.
	parallelScans atomic.Int64
	parallelParts atomic.Int64

	// summaryHits/bytesNotDecoded count aggregate-pushdown folds that
	// skipped a blob decode and the encoded bytes they avoided;
	// subBucketFolds/subBucketBytesNotDecoded count the same for blobs
	// folded at sub-bucket granularity.
	summaryHits              atomic.Int64
	bytesNotDecoded          atomic.Int64
	subBucketFolds           atomic.Int64
	subBucketBytesNotDecoded atomic.Int64

	// Tier lifecycle counters (cumulative; see tier.go).
	coldCompactions    atomic.Int64
	stubTransitions    atomic.Int64
	tierBytesReclaimed atomic.Int64
}

// shardCount picks the ingest shard count: a power of two sized from
// GOMAXPROCS (or the override), capped at maxShards.
func shardCount(override int) int {
	n := override
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// shardFor returns the shard owning key (a source id for RTS/IRTS, a
// group id for MG).
func (s *Store) shardFor(key int64) *shard {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return s.shards[uint32(h>>32)&s.shardMask]
}

// Shards returns the ingest shard count.
func (s *Store) Shards() int { return len(s.shards) }

// sourceBuffer accumulates points for one RTS/IRTS source.
type sourceBuffer struct {
	ds     *model.DataSource
	schema *model.SchemaType
	points []model.Point
}

// groupBuffer accumulates per-window rows for one MG group. Timestamps
// bucket into windows of the group's sampling interval so jittered
// low-frequency sources still pack together; each member's exact
// timestamp is kept as an offset from the window base.
type groupBuffer struct {
	group    int64
	schema   *model.SchemaType
	members  []int64       // slot -> source id
	slots    map[int64]int // source id -> slot
	windowMs int64
	rows     map[int64]*mgRow // window base -> row
	order    []int64          // window bases in arrival order
}

type mgRow struct {
	present  []bool
	values   [][]float64
	tss      []int64 // per slot: the member's exact timestamp
	reported int
}

// windowBase floor-aligns ts to the window grid (correct for negatives).
func windowBase(ts, window int64) int64 {
	if window <= 1 {
		return ts
	}
	b := ts % window
	if b < 0 {
		b += window
	}
	return ts - b
}

// Open opens the batch stores inside store using cat for metadata.
func Open(store *pagestore.Store, cat *catalog.Catalog, cfg Config) (*Store, error) {
	s := &Store{
		cfg: cfg.withDefaults(),
		cat: cat,
	}
	n := shardCount(s.cfg.Shards)
	s.shards = make([]*shard, n)
	s.shardMask = uint32(n - 1)
	for i := range s.shards {
		s.shards[i] = &shard{
			buffers: make(map[int64]*sourceBuffer),
			groups:  make(map[int64]*groupBuffer),
		}
	}
	var err error
	if s.rts, err = btree.Open(store, "ts.rts"); err != nil {
		return nil, err
	}
	if s.irts, err = btree.Open(store, "ts.irts"); err != nil {
		return nil, err
	}
	if s.mg, err = btree.Open(store, "ts.mg"); err != nil {
		return nil, err
	}
	if s.watermarks, err = btree.Open(store, "ts.wm"); err != nil {
		return nil, err
	}
	if s.cfg.BlobCacheBytes > 0 {
		s.cache = newBlobCache(s.cfg.BlobCacheBytes)
	}
	return s, nil
}

// invalidateBlob drops any cached decode of the blob record at
// (tree, source-or-group, baseTS). It must be called for every Put or
// Delete on a batch tree — flush, MG row merge, reorganization,
// retention, and coalescing — and is called even when the tree operation
// failed, since a failed operation may still have dirtied pages.
func (s *Store) invalidateBlob(tree uint8, source, ts int64) {
	if s.cache != nil {
		s.cache.invalidateKey(blobKey{tree: tree, source: source, ts: ts})
	}
}

// BlobCacheStats snapshots the decoded-blob cache counters; all zeros
// when the cache is disabled.
func (s *Store) BlobCacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.stats()
}

// Catalog returns the metadata catalog the store writes through.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// BatchSize returns the configured b.
func (s *Store) BatchSize() int { return s.cfg.BatchSize }

// Stats returns a snapshot of activity counters aggregated across shards.
func (s *Store) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		sh.mu.RLock()
		st.add(sh.stats)
		sh.mu.RUnlock()
	}
	st.CorruptBlobsSkipped += s.corruptBlobs.Load()
	st.ParallelScans = s.parallelScans.Load()
	st.ParallelParts = s.parallelParts.Load()
	st.SummaryHits = s.summaryHits.Load()
	st.BytesNotDecoded = s.bytesNotDecoded.Load()
	st.SubBucketFolds = s.subBucketFolds.Load()
	st.SubBucketBytesNotDecoded = s.subBucketBytesNotDecoded.Load()
	st.ColdCompactions = s.coldCompactions.Load()
	st.StubTransitions = s.stubTransitions.Load()
	st.TierBytesReclaimed = s.tierBytesReclaimed.Load()
	return st
}

// SubBucketMs returns the resolved sub-bucket base width (0 = disabled).
func (s *Store) SubBucketMs() int64 { return s.cfg.SubBucketMs }

// encodeOptsFor builds the blob codec options for a schema.
func (s *Store) encodeOptsFor(schema *model.SchemaType) encodeOpts {
	opts := encodeOpts{
		disable:     s.cfg.DisableCompression,
		legacy:      s.cfg.LegacyBlobFormat,
		subBucketMs: s.cfg.SubBucketMs,
	}
	if s.cfg.RowOrientedBlobs {
		opts.layout = layoutRowOriented
	}
	opts.policies = make([]compress.Policy, len(schema.Tags))
	for i, t := range schema.Tags {
		opts.policies[i] = t.Compression
	}
	return opts
}

// resolved is a point whose source and schema were validated against the
// catalog — ready to enter a shard.
type resolved struct {
	ds     *model.DataSource
	schema *model.SchemaType
	p      model.Point
}

// resolve validates one point against the catalog.
func (s *Store) resolve(p model.Point) (resolved, error) {
	ds, ok := s.cat.Source(p.Source)
	if !ok {
		return resolved{}, fmt.Errorf("tsstore: unknown data source %d", p.Source)
	}
	schema, ok := s.cat.SchemaByID(ds.SchemaID)
	if !ok {
		return resolved{}, fmt.Errorf("tsstore: source %d has unknown schema %d", p.Source, ds.SchemaID)
	}
	if len(p.Values) != len(schema.Tags) {
		return resolved{}, fmt.Errorf("tsstore: source %d: %d values for %d tags", p.Source, len(p.Values), len(schema.Tags))
	}
	return resolved{ds: ds, schema: schema, p: p}, nil
}

// writeResolved routes a validated point into its shard: RTS/IRTS shard by
// source id, MG by group id (every member of a group serializes on one
// shard, which the windowed row merge requires).
func (s *Store) writeResolved(r resolved) error {
	switch r.ds.IngestStructure() {
	case model.RTS, model.IRTS:
		sh := s.shardFor(r.ds.ID)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		sh.stats.PointsWritten++
		return s.writeBuffered(sh, r.ds, r.schema, r.p)
	default:
		sh := s.shardFor(r.ds.Group)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		sh.stats.PointsWritten++
		return s.writeMG(sh, r.ds, r.schema, r.p)
	}
}

// Write ingests one operational record through the writer API. It is the
// paper's non-transactional insert path: the point lands in an in-memory
// buffer and becomes a persisted batch when b points accumulate. Writes
// for different sources proceed in parallel.
func (s *Store) Write(p model.Point) error {
	r, err := s.resolve(p)
	if err != nil {
		return err
	}
	if s.cfg.Log != nil {
		s.logMu.RLock()
		defer s.logMu.RUnlock()
		if err := s.cfg.Log.Append(EncodePointWAL(p)); err != nil {
			return err
		}
	}
	return s.writeResolved(r)
}

// WriteRecovered ingests one point without appending it to the attached
// recovery log — the replay path. Routing recovery through Write would
// re-append every replayed record to the log it was just read from, so a
// second crash before the next flush would apply them twice.
func (s *Store) WriteRecovered(p model.Point) error {
	r, err := s.resolve(p)
	if err != nil {
		return err
	}
	return s.writeResolved(r)
}

// WriteBatch ingests a slice of points. The whole batch is validated
// first and logged with a single group commit before any point enters a
// buffer, so the WAL-before-buffer ordering of Write holds batch-wide.
func (s *Store) WriteBatch(points []model.Point) error {
	if s.cfg.Log != nil {
		s.logMu.RLock()
		defer s.logMu.RUnlock()
	}
	rs, err := s.resolveBatch(points)
	if err != nil {
		return err
	}
	for _, r := range rs {
		if err := s.writeResolved(r); err != nil {
			return err
		}
	}
	return nil
}

// resolveBatch validates every point and appends the batch to the WAL.
func (s *Store) resolveBatch(points []model.Point) ([]resolved, error) {
	if len(points) == 0 {
		return nil, nil
	}
	rs := make([]resolved, len(points))
	for i, p := range points {
		r, err := s.resolve(p)
		if err != nil {
			return nil, err
		}
		rs[i] = r
	}
	if s.cfg.Log != nil {
		recs := make([][]byte, len(points))
		for i, p := range points {
			recs[i] = EncodePointWAL(p)
		}
		if err := s.cfg.Log.AppendBatch(recs); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// WriteBatchParallel ingests a batch using up to workers goroutines, one
// per ingest shard bucket, so sources living on different shards are
// buffered concurrently. Per-source point order is preserved (a source's
// points all land in one bucket, processed in order). workers <= 1 falls
// back to the sequential path. On error the batch may be partially
// buffered — the same non-transactional contract as sequential ingest.
func (s *Store) WriteBatchParallel(points []model.Point, workers int) error {
	if workers <= 1 || len(points) < 2 || len(s.shards) == 1 {
		return s.WriteBatch(points)
	}
	if s.cfg.Log != nil {
		s.logMu.RLock()
		defer s.logMu.RUnlock()
	}
	rs, err := s.resolveBatch(points)
	if err != nil {
		return err
	}
	buckets := make([][]resolved, len(s.shards))
	for _, r := range rs {
		key := r.ds.ID
		if r.ds.IngestStructure() == model.MG {
			key = r.ds.Group
		}
		h := uint64(key) * 0x9E3779B97F4A7C15
		idx := uint32(h>>32) & s.shardMask
		buckets[idx] = append(buckets[idx], r)
	}
	work := make(chan []resolved, len(buckets))
	nonEmpty := 0
	for _, b := range buckets {
		if len(b) > 0 {
			work <- b
			nonEmpty++
		}
	}
	close(work)
	if workers > nonEmpty {
		workers = nonEmpty
	}
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bucket := range work {
				for _, r := range bucket {
					if err := s.writeResolved(r); err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// writeBuffered handles the RTS/IRTS per-source path. Caller holds sh.mu.
func (s *Store) writeBuffered(sh *shard, ds *model.DataSource, schema *model.SchemaType, p model.Point) error {
	buf, ok := sh.buffers[ds.ID]
	if !ok {
		buf = &sourceBuffer{ds: ds, schema: schema, points: make([]model.Point, 0, s.cfg.BatchSize)}
		sh.buffers[ds.ID] = buf
	}
	if len(buf.points) > 0 {
		last := buf.points[len(buf.points)-1].TS
		switch ds.IngestStructure() {
		case model.RTS:
			// A gap or drift breaks the implicit-timestamp contract; close
			// the batch and start a new run.
			if p.TS != last+ds.IntervalMs {
				if err := s.flushSourceLocked(sh, buf); err != nil {
					return err
				}
			}
		case model.IRTS:
			if p.TS < last {
				// Out-of-order point: close the batch so each blob's
				// timestamps stay monotonic.
				if err := s.flushSourceLocked(sh, buf); err != nil {
					return err
				}
			}
		}
	}
	buf.points = append(buf.points, p.Clone())
	if len(buf.points) >= s.cfg.BatchSize {
		return s.flushSourceLocked(sh, buf)
	}
	return nil
}

// writeMG handles the MG per-group path. Caller holds sh.mu.
func (s *Store) writeMG(sh *shard, ds *model.DataSource, schema *model.SchemaType, p model.Point) error {
	gb, ok := sh.groups[ds.Group]
	if !ok {
		members := s.cat.GroupMembers(ds.Group)
		window := ds.IntervalMs
		if window <= 0 {
			window = 1
		}
		gb = &groupBuffer{
			group:    ds.Group,
			schema:   schema,
			members:  members,
			slots:    make(map[int64]int, len(members)),
			windowMs: window,
			rows:     make(map[int64]*mgRow),
		}
		for slot, id := range members {
			gb.slots[id] = slot
		}
		sh.groups[ds.Group] = gb
	}
	slot, ok := gb.slots[ds.ID]
	if !ok {
		// The group grew since this buffer was built (new member
		// registered); rebuild the membership view.
		gb.members = s.cat.GroupMembers(ds.Group)
		for sl, id := range gb.members {
			gb.slots[id] = sl
		}
		slot, ok = gb.slots[ds.ID]
		if !ok {
			return fmt.Errorf("tsstore: source %d not in group %d", ds.ID, ds.Group)
		}
	}
	bucket := windowBase(p.TS, gb.windowMs)
	row, ok := gb.rows[bucket]
	if !ok {
		row = &mgRow{
			present: make([]bool, len(gb.members)),
			values:  make([][]float64, len(gb.members)),
			tss:     make([]int64, len(gb.members)),
		}
		gb.rows[bucket] = row
		gb.order = append(gb.order, bucket)
	} else if len(row.present) < len(gb.members) {
		// Membership grew after the row was created.
		grownPresent := make([]bool, len(gb.members))
		copy(grownPresent, row.present)
		row.present = grownPresent
		grownValues := make([][]float64, len(gb.members))
		copy(grownValues, row.values)
		row.values = grownValues
		grownTss := make([]int64, len(gb.members))
		copy(grownTss, row.tss)
		row.tss = grownTss
	}
	if row.present[slot] {
		// A second sample from the same member inside one window cannot
		// share the MG record (one point per member per record). Jittered
		// low-frequency sources occasionally do this; the extra point goes
		// straight to the member's per-source historical structure, which
		// every scan already merges with MG.
		return s.writeHistoricalPoint(ds, schema, p)
	}
	row.reported++
	row.present[slot] = true
	row.tss[slot] = p.TS
	vals := make([]float64, len(p.Values))
	copy(vals, p.Values)
	row.values[slot] = vals
	if row.reported >= len(gb.members) {
		return s.flushMGRowLocked(sh, gb, bucket)
	}
	if len(gb.order) > s.cfg.MaxOpenMGRows {
		oldest := gb.order[0]
		sh.stats.MGPartialRows++
		return s.flushMGRowLocked(sh, gb, oldest)
	}
	return nil
}

// flushSourceLocked persists and clears one source buffer. Caller holds
// the buffer's shard lock.
func (s *Store) flushSourceLocked(sh *shard, buf *sourceBuffer) error {
	if len(buf.points) == 0 {
		return nil
	}
	pts := buf.points
	ntags := len(buf.schema.Tags)
	opts := s.encodeOptsFor(buf.schema)
	var blob []byte
	var tree *btree.Tree
	switch buf.ds.IngestStructure() {
	case model.RTS:
		blob = EncodeRTS(pts, ntags, buf.ds.IntervalMs, opts)
		tree = s.rts
	default:
		blob = EncodeIRTS(pts, ntags, opts)
		tree = s.irts
	}
	key := keyenc.SourceTime(buf.ds.ID, pts[0].TS)
	err := tree.Put(key, blob)
	s.invalidateBlob(s.treeID(tree), buf.ds.ID, pts[0].TS)
	if err != nil {
		return err
	}
	first, last := pts[0].TS, pts[len(pts)-1].TS
	if err := s.cat.UpdateStats(buf.ds.ID, model.SourceStats{
		BatchCount: 1,
		PointCount: int64(len(pts)),
		BlobBytes:  int64(len(blob)),
		FirstTS:    first,
		LastTS:     last,
		MaxSpanMs:  last - first,
	}); err != nil {
		return err
	}
	sh.stats.BatchesFlushed++
	sh.stats.BlobBytes += int64(len(blob))
	buf.points = buf.points[:0]
	return nil
}

// flushMGRowLocked persists and removes one group row, merging with any
// record already stored at (group, ts): a partially filled row may have
// been flushed earlier (open-row cap) and late members must not clobber
// it. Caller holds the group's shard lock.
func (s *Store) flushMGRowLocked(sh *shard, gb *groupBuffer, ts int64) error {
	row, ok := gb.rows[ts]
	if !ok {
		return nil
	}
	key := keyenc.SourceTime(gb.group, ts)
	var oldBytes, oldPoints int64
	if existing, err := s.mg.Get(key); err == nil {
		if batch, derr := DecodeBlob(existing, ts, nil); derr == nil {
			for i, slot := range batch.Slots {
				if slot >= len(row.present) {
					continue
				}
				if !row.present[slot] {
					row.present[slot] = true
					row.values[slot] = batch.Rows[i]
					row.tss[slot] = batch.Timestamps[i]
					row.reported++
					oldPoints++
					continue
				}
				// Both the stored record and the new row carry a point for
				// this member (a partial flush raced a late arrival). Keep
				// the new one in the record and preserve the old one
				// through the per-source overflow path, unless it is a
				// true duplicate.
				if batch.Timestamps[i] == row.tss[slot] {
					oldPoints++ // replaced in place
					continue
				}
				src := gb.members[slot]
				if ds, ok := s.cat.Source(src); ok {
					if err := s.writeHistoricalPoint(ds, gb.schema, model.Point{
						Source: src, TS: batch.Timestamps[i], Values: batch.Rows[i],
					}); err != nil {
						return err
					}
				}
				oldPoints++
			}
		}
		oldBytes = int64(len(existing))
	} else if err != btree.ErrNotFound {
		return err
	}
	offsets := make([]int64, len(row.tss))
	for slot, pts := range row.tss {
		if row.present[slot] {
			offsets[slot] = pts - ts
		}
	}
	blob := EncodeMG(row.present, row.values, offsets, len(gb.schema.Tags), s.encodeOptsFor(gb.schema))
	err := s.mg.Put(key, blob)
	// An MG row merge overwrites the record in place during ordinary
	// ingest, not just on maintenance — any cached decode is now stale.
	s.invalidateBlob(cacheTreeMG, gb.group, ts)
	if err != nil {
		return err
	}
	newRecord := int64(1)
	if oldBytes > 0 {
		newRecord = 0
	}
	if err := s.cat.UpdateGroupStats(gb.group, model.SourceStats{
		BatchCount: newRecord,
		PointCount: int64(row.reported) - oldPoints,
		BlobBytes:  int64(len(blob)) - oldBytes,
		FirstTS:    ts,
		LastTS:     ts,
	}); err != nil {
		return err
	}
	delete(gb.rows, ts)
	for i, o := range gb.order {
		if o == ts {
			gb.order = append(gb.order[:i], gb.order[i+1:]...)
			break
		}
	}
	sh.stats.BatchesFlushed++
	sh.stats.BlobBytes += int64(len(blob))
	return nil
}

// Flush persists every open buffer (partially filled batches included) and
// recycles the recovery log if one is attached. It quiesces ingest by
// taking every shard lock in index order for the duration: recycling the
// log is only safe while no writer can slip a point into a buffer after
// its WAL record was appended — that record would be truncated away while
// the point is still volatile. Writers resume as soon as Flush returns.
func (s *Store) Flush() error {
	return s.FlushWith(nil)
}

// FlushWith persists every open buffer like Flush, then runs commit (when
// non-nil) before recycling the recovery log — all while ingest stays
// quiesced. Passing the page store's Flush as commit closes the crash
// window where the log was recycled before the batches it protected were
// durable in the page store: the order becomes drain buffers → sync WAL →
// commit pages → reset WAL, so a crash at any point recovers from either
// the committed pages or the still-intact log.
func (s *Store) FlushWith(commit func() error) error {
	if s.cfg.Log != nil {
		s.logMu.Lock()
		defer s.logMu.Unlock()
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].mu.Unlock()
		}
	}()
	for _, sh := range s.shards {
		for _, buf := range sh.buffers {
			if err := s.flushSourceLocked(sh, buf); err != nil {
				return err
			}
		}
		for _, gb := range sh.groups {
			for len(gb.order) > 0 {
				if err := s.flushMGRowLocked(sh, gb, gb.order[0]); err != nil {
					return err
				}
			}
		}
	}
	if s.cfg.Log != nil {
		if err := s.cfg.Log.Sync(); err != nil {
			return err
		}
	}
	if commit != nil {
		if err := commit(); err != nil {
			return err
		}
	}
	if s.cfg.Log != nil {
		return s.cfg.Log.Reset()
	}
	return nil
}

// RecoverFromLog replays a recovery log into the store (used after a crash
// before buffered points reached a batch). Replay bypasses the attached
// log — the records are already in it.
func (s *Store) RecoverFromLog(l *walog.Log) (int, error) {
	n := 0
	err := l.Replay(func(payload []byte) error {
		p, err := DecodePointWAL(payload)
		if err != nil {
			return err
		}
		n++
		return s.WriteRecovered(p)
	})
	return n, err
}

// RecoverFromLogDedup replays a recovery log, skipping records whose
// point is already visible in the store. FlushWith commits the page store
// before recycling the log, so a crash between commit and reset leaves a
// log whose records are already durable — blind replay would apply them
// twice. Returns the number of points applied and skipped.
func (s *Store) RecoverFromLogDedup(l *walog.Log) (applied, skipped int, err error) {
	err = l.Replay(func(payload []byte) error {
		p, derr := DecodePointWAL(payload)
		if derr != nil {
			return derr
		}
		ok, herr := s.HasPoint(p.Source, p.TS)
		if herr != nil {
			return herr
		}
		if ok {
			skipped++
			return nil
		}
		applied++
		return s.WriteRecovered(p)
	})
	return applied, skipped, err
}

// HasPoint reports whether a point for source at exactly ts is visible to
// scans — buffered or persisted. Replication catch-up uses it to
// deduplicate hinted records that may already have been applied before
// the replica crashed or timed out.
func (s *Store) HasPoint(source, ts int64) (bool, error) {
	it, err := s.HistoricalScan(source, ts, ts+1, nil)
	if err != nil {
		return false, err
	}
	if _, ok := it.Next(); !ok {
		return false, it.Err()
	}
	return true, nil
}

// watermark returns the reorg watermark of a group (math.MinInt64 when
// nothing was reorganized yet).
func (s *Store) watermark(group int64) int64 {
	v, err := s.watermarks.Get(keyenc.AppendInt64(nil, group))
	if err != nil || len(v) != 8 {
		return math.MinInt64
	}
	return int64(binary.LittleEndian.Uint64(v))
}

func (s *Store) setWatermark(group, ts int64) error {
	return s.watermarks.Put(keyenc.AppendInt64(nil, group),
		binary.LittleEndian.AppendUint64(nil, uint64(ts)))
}

// lenient reports whether scans quarantine corrupt blobs.
func (s *Store) lenient() bool { return s.cfg.LenientScan }

// noteCorruptBlob counts one quarantined record.
func (s *Store) noteCorruptBlob() {
	s.corruptBlobs.Add(1)
}

// BlobRef identifies one batch record for integrity reporting.
type BlobRef struct {
	Tree   string // "ts.rts", "ts.irts", or "ts.mg"
	Source int64  // source id (group id for MG records)
	TS     int64  // record base timestamp
}

func (r BlobRef) String() string {
	return fmt.Sprintf("%s source=%d ts=%d", r.Tree, r.Source, r.TS)
}

// VerifyBlobs decodes every persisted batch record in the three trees and
// reports the ones that fail — the blob-level half of fsck (page- and
// tree-level checks live in pagestore.VerifyPages and btree.Check). It
// keeps going past corrupt records; only a broken tree walk aborts.
func (s *Store) VerifyBlobs() (checked int, corrupt []BlobRef, err error) {
	trees := []struct {
		name string
		t    *btree.Tree
	}{{"ts.rts", s.rts}, {"ts.irts", s.irts}, {"ts.mg", s.mg}}
	for _, tr := range trees {
		cur := tr.t.First()
		for cur.Valid() {
			src, ts, kerr := keyenc.DecodeSourceTime(cur.Key())
			checked++
			blob, verr := cur.Value()
			switch {
			case kerr != nil || verr != nil:
				corrupt = append(corrupt, BlobRef{Tree: tr.name, Source: src, TS: ts})
			case IsStubBlob(blob):
				// A stub's remaining contract is its summary header: the
				// payload was dropped by tier policy, so a row decode is
				// expected to fail and fsck only requires the header (and
				// its zone maps — plus the sub-bucket block when the blob
				// claims one) to parse.
				_, sumOK := parseBlobSummary(blob, ts)
				_, zonesOK := blobZoneMaps(blob)
				subOK := true
				if len(blob) > 0 && blob[0]&flagSubBuckets != 0 {
					_, subOK = parseBlobSubSummaries(blob, ts)
				}
				if !sumOK || !zonesOK || !subOK {
					corrupt = append(corrupt, BlobRef{Tree: tr.name, Source: src, TS: ts})
				}
			default:
				batch, derr := DecodeBlob(blob, ts, nil)
				switch {
				case derr != nil:
					corrupt = append(corrupt, BlobRef{Tree: tr.name, Source: src, TS: ts})
				default:
					// A summary that disagrees with its own columns would
					// make pushdown answers drift from decode answers —
					// flag it even though the row data itself is readable.
					sum, sumOK := parseBlobSummary(blob, ts)
					if sumOK && !summaryMatches(sum, batch) {
						corrupt = append(corrupt, BlobRef{Tree: tr.name, Source: src, TS: ts})
						break
					}
					// Same contract one level down: a v3 sub-bucket block
					// must fold bit-identically to decoding the rows it
					// covers.
					if blob[0]&flagSubBuckets != 0 {
						sub, ok := parseBlobSubSummaries(blob, ts)
						if !ok || !subSummariesMatch(sub, batch, len(sub.buckets[0].nonNull)) {
							corrupt = append(corrupt, BlobRef{Tree: tr.name, Source: src, TS: ts})
						}
					}
				}
			}
			cur.Next()
		}
		if cerr := cur.Err(); cerr != nil {
			return checked, corrupt, cerr
		}
	}
	return checked, corrupt, nil
}

// TreeSizes reports entry counts of the three batch trees (for tests and
// the storage-cost experiment).
func (s *Store) TreeSizes() (rts, irts, mg uint64) {
	return s.rts.Count(), s.irts.Count(), s.mg.Count()
}

// BlobBytesTotal reports total persisted ValueBlob bytes across structures.
func (s *Store) BlobBytesTotal() uint64 {
	return s.rts.ValueBytes() + s.irts.ValueBytes() + s.mg.ValueBytes()
}

// --- WAL point codec ---

// EncodePointWAL seals one point into the recovery-log payload format
// (varint source, varint ts, uvarint value count, float64 bits). The
// cluster's replication layer reuses the same encoding for hinted-handoff
// records, so a hint log replays with the same codec as a recovery log.
func EncodePointWAL(p model.Point) []byte {
	b := binary.AppendVarint(nil, p.Source)
	b = binary.AppendVarint(b, p.TS)
	b = binary.AppendUvarint(b, uint64(len(p.Values)))
	for _, v := range p.Values {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// DecodePointWAL is the inverse of EncodePointWAL.
func DecodePointWAL(b []byte) (model.Point, error) {
	var p model.Point
	var n int
	if p.Source, n = binary.Varint(b); n <= 0 {
		return p, fmt.Errorf("tsstore: corrupt WAL point")
	}
	b = b[n:]
	if p.TS, n = binary.Varint(b); n <= 0 {
		return p, fmt.Errorf("tsstore: corrupt WAL point")
	}
	b = b[n:]
	count, n := binary.Uvarint(b)
	// Bound count before the length math: count*8 wraps for adversarial
	// values, which would pass the check and then fail the allocation.
	if n <= 0 || count > 1<<20 || uint64(len(b[n:])) < count*8 {
		return p, fmt.Errorf("tsstore: corrupt WAL point")
	}
	b = b[n:]
	p.Values = make([]float64, count)
	for i := range p.Values {
		p.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return p, nil
}
