package tsstore

import (
	"math"
	"path/filepath"
	"testing"

	"odh/internal/model"
	"odh/internal/walog"
)

// TestRecoveryDoesNotReappend pins the double-replay fix: recovering from
// a log attached to the recovering store must not append the replayed
// records back into it. Before WriteRecovered, each replay doubled the
// log, so a second crash before the next flush replayed every point
// twice.
func TestRecoveryDoesNotReappend(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "ingest.wal")
	l, err := walog.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, Config{BatchSize: 1000, Log: l}, 0)
	s := f.schema(t, "w", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 30; i++ {
		if err := f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	sizeBefore := l.Size()
	l.Close()

	// First crash: the reopened store recovers with the SAME log attached
	// (the production wiring — odh.Open attaches the log it replays).
	l2, err := walog.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	f2 := newFixture(t, Config{BatchSize: 1000, Log: l2}, 0)
	s2 := f2.schema(t, "w", 1)
	ds2 := f2.source(t, s2.ID, true, 10)
	if n, err := f2.store.RecoverFromLog(l2); err != nil || n != 30 {
		t.Fatalf("recover = %d, %v; want 30", n, err)
	}
	if got := l2.Size(); got != sizeBefore {
		t.Fatalf("log grew during recovery: %d -> %d bytes (records re-appended)", sizeBefore, got)
	}
	l2.Close()

	// Second crash before any flush: replaying again must still yield
	// exactly 30 points, not 60.
	l3, err := walog.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	f3 := newFixture(t, Config{BatchSize: 1000, Log: l3}, 0)
	s3 := f3.schema(t, "w", 1)
	f3.source(t, s3.ID, true, 10)
	_ = ds2
	if n, err := f3.store.RecoverFromLog(l3); err != nil || n != 30 {
		t.Fatalf("second recover = %d, %v; want 30", n, err)
	}
	it, _ := f3.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	if got := len(collect(t, it)); got != 30 {
		t.Fatalf("post-second-crash scan = %d points, want 30", got)
	}
}

// TestFlushWithCommitOrdering verifies FlushWith runs the commit callback
// after the WAL sync but before the WAL reset, so a crash during commit
// still replays every drained point.
func TestFlushWithCommitOrdering(t *testing.T) {
	dir := t.TempDir()
	l, err := walog.Open(filepath.Join(dir, "ingest.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f := newFixture(t, Config{BatchSize: 1000, Log: l}, 0)
	s := f.schema(t, "w", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 10; i++ {
		if err := f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	committed := false
	err = f.store.FlushWith(func() error {
		committed = true
		if l.Size() == 0 {
			t.Error("WAL already recycled when commit ran — crash during commit would lose the drained points")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("commit callback never ran")
	}
	if l.Size() != 0 {
		t.Fatalf("WAL not recycled after successful commit: %d bytes", l.Size())
	}
}

func TestHasPointSeesBufferedAndPersisted(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 4}, 0)
	s := f.schema(t, "h", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 6; i++ { // 4 persisted in a batch, 2 buffered
		if err := f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		ok, err := f.store.HasPoint(ds.ID, int64(i*10))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("HasPoint(%d) = false, want true", i*10)
		}
	}
	if ok, _ := f.store.HasPoint(ds.ID, 5); ok {
		t.Fatal("HasPoint(5) = true for a timestamp never written")
	}
}
