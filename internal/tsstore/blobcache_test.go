package tsstore

import (
	"math"
	"reflect"
	"testing"

	"odh/internal/model"
)

// fillSource writes n regular points and flushes, returning the written
// ground truth.
func fillSource(t *testing.T, f *fixture, ds *model.DataSource, n int) []model.Point {
	t.Helper()
	var truth []model.Point
	for i := 0; i < n; i++ {
		p := model.Point{Source: ds.ID, TS: int64(i+1) * ds.IntervalMs, Values: []float64{float64(i % 7), float64(i)}}
		truth = append(truth, p.Clone())
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	return truth
}

func scanAll(t *testing.T, s *Store, source int64, opts ScanOptions, ranges ...TagRange) []model.Point {
	t.Helper()
	it, err := s.HistoricalScanOpts(source, math.MinInt64, math.MaxInt64, nil, opts, ranges...)
	if err != nil {
		t.Fatal(err)
	}
	return collect(t, it)
}

// TestBlobCacheHitsAndEquivalence pins the cache's basic contract: the
// second scan hits, saves bytes, and returns exactly the first scan's
// rows.
func TestBlobCacheHitsAndEquivalence(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, BlobCacheBytes: 1 << 20}, 0)
	s := f.schema(t, "cache", 2)
	ds := f.source(t, s.ID, true, 10)
	truth := fillSource(t, f, ds, 200)

	cold := scanAll(t, f.store, ds.ID, ScanOptions{})
	st := f.store.BlobCacheStats()
	if st.Hits != 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("after cold scan: %+v", st)
	}
	warm := scanAll(t, f.store, ds.ID, ScanOptions{})
	st = f.store.BlobCacheStats()
	if st.Hits == 0 || st.BytesSaved == 0 {
		t.Fatalf("warm scan did not hit: %+v", st)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm scan rows differ from cold scan")
	}
	if !reflect.DeepEqual(cold, truth) {
		t.Fatalf("scan rows differ from written points: got %d want %d", len(cold), len(truth))
	}
	// NoCache bypasses entirely and still returns the same rows.
	raw := scanAll(t, f.store, ds.ID, ScanOptions{NoCache: true})
	if !reflect.DeepEqual(cold, raw) {
		t.Fatal("NoCache scan rows differ")
	}
}

// TestBlobCacheInvalidation covers the write-side invalidation hooks:
// flush-merge (MG), reorganization, retention, and coalescing must all
// drop stale decodes so cached scans equal uncached ones.
func TestBlobCacheInvalidation(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8, MaxOpenMGRows: 2, BlobCacheBytes: 1 << 20}, 4)
	s := f.schema(t, "inv", 2)
	// MG group of 4 low-frequency sources.
	var mgs []*model.DataSource
	for i := 0; i < 4; i++ {
		mgs = append(mgs, f.source(t, s.ID, true, 10_000))
	}
	rts := f.source(t, s.ID, true, 10)

	write := func(ds *model.DataSource, ts int64, v float64) {
		t.Helper()
		if err := f.store.Write(model.Point{Source: ds.ID, TS: ts, Values: []float64{v, -v}}); err != nil {
			t.Fatal(err)
		}
	}
	for w := 1; w <= 6; w++ {
		for _, ds := range mgs {
			write(ds, int64(w)*10_000+int64(ds.GroupSlot), float64(w))
		}
	}
	for i := 0; i < 100; i++ {
		write(rts, int64(i+1)*10, float64(i))
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		for _, ds := range append(append([]*model.DataSource{}, mgs...), rts) {
			cached := scanAll(t, f.store, ds.ID, ScanOptions{})
			raw := scanAll(t, f.store, ds.ID, ScanOptions{NoCache: true})
			if !reflect.DeepEqual(cached, raw) {
				t.Fatalf("%s: source %d cached scan diverged (%d vs %d rows)", stage, ds.ID, len(cached), len(raw))
			}
		}
	}
	check("warmup")

	// Late MG arrival merges into an already-flushed record in place.
	write(mgs[0], 3*10_000+999, 42)
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	check("mg merge")

	// Reorganize moves the MG stripe into per-source batches.
	if _, err := f.store.Reorganize(s.ID, 5*10_000); err != nil {
		t.Fatal(err)
	}
	check("reorganize")

	// Coalesce rewrites fragmented batches.
	if _, err := f.store.Coalesce(s.ID); err != nil {
		t.Fatal(err)
	}
	check("coalesce")

	// Retention drops aged batches.
	if _, err := f.store.DropBefore(s.ID, 400); err != nil {
		t.Fatal(err)
	}
	check("retention")

	if st := f.store.BlobCacheStats(); st.Invalidations == 0 {
		t.Fatal("maintenance passes performed no invalidations")
	}
}

// TestBlobCacheEviction pins the byte budget: a cache far smaller than
// the working set must evict and never exceed its budget.
func TestBlobCacheEviction(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, BlobCacheBytes: 4096}, 0)
	s := f.schema(t, "evict", 4)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 500; i++ {
		p := model.Point{Source: ds.ID, TS: int64(i+1) * 10, Values: []float64{float64(i), 1, 2, 3}}
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	scanAll(t, f.store, ds.ID, ScanOptions{})
	st := f.store.BlobCacheStats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with a 4 KiB budget: %+v", st)
	}
	if st.SizeBytes > 4096 {
		t.Fatalf("cache exceeded its budget: %d > 4096", st.SizeBytes)
	}
}

// TestBlobCacheStaleInsertDropped drives the version-slot protocol
// directly: an insert whose version was snapshotted before an
// invalidation must be dropped.
func TestBlobCacheStaleInsertDropped(t *testing.T) {
	c := newBlobCache(1 << 20)
	bk := blobKey{tree: cacheTreeRTS, source: 7, ts: 100}
	batch := &DecodedBatch{Timestamps: []int64{100}, Rows: [][]float64{{1}}}

	var vers [cacheVerSlots]uint64
	c.snapshotAll(&vers) // leaf-load-time snapshot
	c.invalidateKey(bk)  // writer overwrote the blob between copy and insert
	c.put(bk, "*", vers[bk.slot()], batch, nil, false, 64, nil, nil)
	if _, ok := c.get(bk, "*"); ok {
		t.Fatal("stale insert was served")
	}
	// A fresh snapshot inserts fine.
	c.snapshotAll(&vers)
	c.put(bk, "*", vers[bk.slot()], batch, nil, false, 64, nil, nil)
	if _, ok := c.get(bk, "*"); !ok {
		t.Fatal("fresh insert missing")
	}
	// Invalidation removes the live entry too.
	c.invalidateKey(bk)
	if _, ok := c.get(bk, "*"); ok {
		t.Fatal("entry survived invalidation")
	}
}

// TestBlobCacheLeafCopySnapshotRace replays the stale-cache race the
// leaf-load hook closes: a cursor copies its leaf, a writer then
// overwrites a record on that leaf (an in-place MG row merge during
// ordinary ingest) and invalidates the key, and only then does the
// reader decode its — now stale — leaf copy and offer it to the cache.
// The insert must be dropped: the reader itself may serve the old bytes
// (dirty-read isolation), but later cached scans must see the new ones.
func TestBlobCacheLeafCopySnapshotRace(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8, MaxOpenMGRows: 8, BlobCacheBytes: 1 << 20}, 4)
	s := f.schema(t, "leafrace", 2)
	var mgs []*model.DataSource
	for i := 0; i < 4; i++ {
		mgs = append(mgs, f.source(t, s.ID, true, 10_000))
	}
	// Three complete windows; each flushes an MG record on completion.
	for w := 1; w <= 3; w++ {
		for _, ds := range mgs {
			p := model.Point{Source: ds.ID, TS: int64(w)*10_000 + int64(ds.GroupSlot), Values: []float64{float64(w), -float64(w)}}
			if err := f.store.Write(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	group := mgs[0].Group

	// The reader's cursor copies the leaf (and snapshots cache versions)
	// at Seek, i.e. now — before the overwrite below.
	stale := f.store.newMGIter(nil, group, f.store.cache, math.MinInt64, math.MaxInt64, 0, nil, nil)

	// Overwrite window 2's record in place: a duplicate-timestamp arrival
	// for member 0 replaces the stored value and invalidates the key.
	p := model.Point{Source: mgs[0].ID, TS: 2*10_000 + int64(mgs[0].GroupSlot), Values: []float64{99, -99}}
	if err := f.store.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}

	// Drain the stale reader: it decodes old bytes from its leaf copy and
	// offers them to the cache; the version check must reject the insert.
	for {
		if _, ok := stale.Next(); !ok {
			break
		}
	}
	if err := stale.Err(); err != nil {
		t.Fatal(err)
	}

	for _, ds := range mgs {
		cached := scanAll(t, f.store, ds.ID, ScanOptions{})
		raw := scanAll(t, f.store, ds.ID, ScanOptions{NoCache: true})
		if !reflect.DeepEqual(cached, raw) {
			t.Fatalf("source %d: stale decode was cached (%v vs %v)", ds.ID, cached, raw)
		}
	}
}

// TestBlobCacheBytesSavedExcludesZoneSkips pins the BytesSaved
// accounting: a hit whose entry is zone-skipped saved nothing (the raw
// path would not have read the blob either) and must not be credited.
func TestBlobCacheBytesSavedExcludesZoneSkips(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, BlobCacheBytes: 1 << 20}, 0)
	s := f.schema(t, "saved", 2)
	ds := f.source(t, s.ID, true, 10)
	fillSource(t, f, ds, 200) // tag 0 values in [0, 6]

	scanAll(t, f.store, ds.ID, ScanOptions{}) // warm: all misses
	base := f.store.BlobCacheStats()

	// Every hit is excluded by the pushed tag range, so nothing is saved.
	out := scanAll(t, f.store, ds.ID, ScanOptions{}, TagRange{Tag: 0, Lo: 1000, Hi: 2000})
	st := f.store.BlobCacheStats()
	if len(out) != 0 {
		t.Fatalf("range [1000,2000] matched %d rows", len(out))
	}
	if st.Hits == base.Hits {
		t.Fatal("filtered scan did not hit the cache")
	}
	if st.BytesSaved != base.BytesSaved {
		t.Fatalf("zone-skipped hits credited BytesSaved: %d -> %d", base.BytesSaved, st.BytesSaved)
	}

	// Served hits are credited.
	scanAll(t, f.store, ds.ID, ScanOptions{})
	if st = f.store.BlobCacheStats(); st.BytesSaved <= base.BytesSaved {
		t.Fatalf("served hits not credited: %d -> %d", base.BytesSaved, st.BytesSaved)
	}
}

// TestTagsSig pins the cache variant canonicalization.
func TestTagsSig(t *testing.T) {
	if tagsSig(nil) != "*" {
		t.Fatalf("nil = %q", tagsSig(nil))
	}
	if tagsSig([]int{}) == "*" {
		t.Fatal("empty selection must differ from full decode")
	}
	if tagsSig([]int{2, 0, 1}) != tagsSig([]int{0, 1, 2, 2}) {
		t.Fatal("order/duplicates must not change the signature")
	}
	if tagsSig([]int{0, 1}) == tagsSig([]int{0, 2}) {
		t.Fatal("different selections must differ")
	}
}

// TestBlobCacheWantTagsVariants verifies a partial decode cached under
// one selection is not served to a different selection.
func TestBlobCacheWantTagsVariants(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, BlobCacheBytes: 1 << 20}, 0)
	s := f.schema(t, "variants", 3)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 64; i++ {
		p := model.Point{Source: ds.ID, TS: int64(i+1) * 10, Values: []float64{float64(i), float64(-i), float64(i % 3)}}
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}

	scan := func(wantTags []int) []model.Point {
		t.Helper()
		it, err := f.store.HistoricalScan(ds.ID, math.MinInt64, math.MaxInt64, wantTags)
		if err != nil {
			t.Fatal(err)
		}
		return collect(t, it)
	}
	full := scan(nil)
	only0 := scan([]int{0})
	for i := range only0 {
		if only0[i].Values[0] != full[i].Values[0] {
			t.Fatalf("row %d tag0 mismatch", i)
		}
		if !model.IsNull(only0[i].Values[1]) {
			t.Fatalf("row %d: unselected tag not NULL after variant caching", i)
		}
	}
	// Same selections again — now served from cache — must agree.
	// (NULL-aware comparison: partial decodes carry NaN cells.)
	if !pointsEqual(full, scan(nil)) {
		t.Fatal("cached full decode diverged")
	}
	if !pointsEqual(only0, scan([]int{0})) {
		t.Fatal("cached partial decode diverged")
	}
}
