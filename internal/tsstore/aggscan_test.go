package tsstore

import (
	"math"
	"math/rand"
	"testing"

	"odh/internal/model"
)

// refFold aggregates scan output with the plain decode-and-group
// semantics the executor uses — the reference the summary fold must match
// bit for bit. Values in these tests are multiples of 1/4 with bounded
// magnitude, so float sums are exact and independent of association
// order (a blob fold adds per-blob subtotals, not individual values).
func refFold(points []model.Point, spec AggSpec) map[aggKey]*AggGroup {
	ntags := spec.NTags
	tags := spec.WantTags
	if tags == nil {
		tags = make([]int, ntags)
		for i := range tags {
			tags[i] = i
		}
	}
	out := make(map[aggKey]*AggGroup)
	for _, p := range points {
		if p.TS < spec.T1 || p.TS >= spec.T2 {
			continue
		}
		if !matchPreds(p.Values, spec.Preds) {
			continue
		}
		var k aggKey
		if spec.ByID {
			k.id = p.Source
		}
		if spec.BucketMs > 0 {
			k.bucket = bucketFloor(p.TS, spec.BucketMs)
		}
		g, ok := out[k]
		if !ok {
			g = &AggGroup{ID: k.id, Bucket: k.bucket,
				NonNull: make([]int64, ntags), Sum: make([]float64, ntags),
				Min: make([]float64, ntags), Max: make([]float64, ntags)}
			for i := range g.Min {
				g.Min[i] = math.Inf(1)
				g.Max[i] = math.Inf(-1)
			}
			out[k] = g
		}
		g.Rows++
		for _, tag := range tags {
			if tag < 0 || tag >= len(p.Values) {
				continue
			}
			v := p.Values[tag]
			if model.IsNull(v) {
				continue
			}
			g.NonNull[tag]++
			g.Sum[tag] += v
			if v < g.Min[tag] {
				g.Min[tag] = v
			}
			if v > g.Max[tag] {
				g.Max[tag] = v
			}
		}
	}
	return out
}

// compareAgg checks got against the reference bit for bit.
func compareAgg(t *testing.T, label string, got *AggResult, want map[aggKey]*AggGroup, spec AggSpec) {
	t.Helper()
	if len(got.Groups) != len(want) {
		t.Fatalf("%s: got %d groups, want %d", label, len(got.Groups), len(want))
	}
	for _, g := range got.Groups {
		w, ok := want[aggKey{g.ID, g.Bucket}]
		if !ok {
			t.Fatalf("%s: unexpected group id=%d bucket=%d", label, g.ID, g.Bucket)
		}
		if g.Rows != w.Rows {
			t.Fatalf("%s: group id=%d bucket=%d rows=%d want %d", label, g.ID, g.Bucket, g.Rows, w.Rows)
		}
		for tag := range w.NonNull {
			if g.NonNull[tag] != w.NonNull[tag] {
				t.Fatalf("%s: group id=%d bucket=%d tag %d nonNull=%d want %d",
					label, g.ID, g.Bucket, tag, g.NonNull[tag], w.NonNull[tag])
			}
			if math.Float64bits(g.Sum[tag]) != math.Float64bits(w.Sum[tag]) {
				t.Fatalf("%s: group id=%d bucket=%d tag %d sum=%v want %v (bits differ)",
					label, g.ID, g.Bucket, tag, g.Sum[tag], w.Sum[tag])
			}
			if math.Float64bits(g.Min[tag]) != math.Float64bits(w.Min[tag]) ||
				math.Float64bits(g.Max[tag]) != math.Float64bits(w.Max[tag]) {
				t.Fatalf("%s: group id=%d bucket=%d tag %d min/max=%v/%v want %v/%v",
					label, g.ID, g.Bucket, tag, g.Min[tag], g.Max[tag], w.Min[tag], w.Max[tag])
			}
		}
	}
}

// sameAggResult asserts two results are identical including group order
// (serial and parallel, cached and uncached runs must agree exactly).
func sameAggResult(t *testing.T, label string, a, b *AggResult) {
	t.Helper()
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("%s: group count %d vs %d", label, len(a.Groups), len(b.Groups))
	}
	for i := range a.Groups {
		ga, gb := a.Groups[i], b.Groups[i]
		if ga.ID != gb.ID || ga.Bucket != gb.Bucket || ga.Rows != gb.Rows {
			t.Fatalf("%s: group %d header differs: %+v vs %+v", label, i, ga, gb)
		}
		for tag := range ga.NonNull {
			if ga.NonNull[tag] != gb.NonNull[tag] ||
				math.Float64bits(ga.Sum[tag]) != math.Float64bits(gb.Sum[tag]) ||
				math.Float64bits(ga.Min[tag]) != math.Float64bits(gb.Min[tag]) ||
				math.Float64bits(ga.Max[tag]) != math.Float64bits(gb.Max[tag]) {
				t.Fatalf("%s: group %d tag %d differs", label, i, tag)
			}
		}
	}
}

// TestAggregatePropertyVsDecodeReference drives randomized stores (NaN
// and NULL values, NULL gaps, duplicate timestamps, empty tag columns)
// through flushes and reorganizations and asserts summary-folded
// aggregates match the decode-and-group reference bit for bit, across
// {serial, parallel} x {cache off, cache on} and for the legacy blob
// format (lazy summary upgrade).
func TestAggregatePropertyVsDecodeReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(string(rune('a'+seed)), func(t *testing.T) {
			runAggTrial(t, seed, false)
		})
		t.Run(string(rune('a'+seed))+"-legacy", func(t *testing.T) {
			runAggTrial(t, seed, true)
		})
	}
}

func runAggTrial(t *testing.T, seed int64, legacy bool) {
	rng := rand.New(rand.NewSource(seed))
	// Sub-bucket base varies per trial: disabled, a width no bucket list
	// entry is a multiple of, and two bases that make several widths
	// sub-bucket foldable (with legacy/v2 blobs exercising lazy folds).
	subMs := []int64{-1, 13, 100, 1000}[rng.Intn(4)]
	f := newFixture(t, Config{
		BatchSize:        4 + rng.Intn(12),
		MaxOpenMGRows:    1 + rng.Intn(4),
		BlobCacheBytes:   1 << 20,
		LegacyBlobFormat: legacy,
		SubBucketMs:      subMs,
	}, 2+rng.Intn(3))
	ntags := 1 + rng.Intn(3)
	schema := f.schema(t, "agg", ntags)
	emptyTag := -1
	if ntags > 1 && rng.Intn(2) == 0 {
		emptyTag = rng.Intn(ntags) // this tag stays all-NULL
	}

	type srcState struct {
		ds     *model.DataSource
		nextTS int64
	}
	var sources []*srcState
	var ids []int64
	for i := 0; i < 5; i++ {
		var ds *model.DataSource
		switch i % 3 {
		case 0:
			ds = f.source(t, schema.ID, true, 10) // RTS
		case 1:
			ds = f.source(t, schema.ID, false, 25) // IRTS
		default:
			ds = f.source(t, schema.ID, true, 5000) // MG
		}
		sources = append(sources, &srcState{ds: ds, nextTS: 1_000_000})
		ids = append(ids, ds.ID)
	}

	var maxTS int64 = 1_000_000
	for op := 0; op < 500; op++ {
		switch rng.Intn(25) {
		case 0:
			if err := f.store.Flush(); err != nil {
				t.Fatal(err)
			}
			continue
		case 1:
			cut := 1_000_000 + rng.Int63n(maxTS-1_000_000+1)
			if _, err := f.store.Reorganize(schema.ID, cut); err != nil {
				t.Fatal(err)
			}
			continue
		}
		st := sources[rng.Intn(len(sources))]
		vals := make([]float64, ntags)
		for j := range vals {
			if j == emptyTag || rng.Intn(5) == 0 {
				vals[j] = model.NullValue // NULL gap (stored as NaN)
			} else {
				vals[j] = math.Round(rng.Float64()*1000) / 4 // exact in float64
			}
		}
		ts := st.nextTS
		if st.ds.IngestStructure() == model.IRTS && rng.Intn(10) == 0 {
			// Duplicate timestamp: two points share one instant.
			ts -= st.ds.IntervalMs
			if ts < 1_000_000 {
				ts = 1_000_000
			}
		}
		if err := f.store.Write(model.Point{Source: st.ds.ID, TS: ts, Values: vals}); err != nil {
			t.Fatal(err)
		}
		if ts > maxTS {
			maxTS = ts
		}
		if st.ds.Regular && st.ds.IngestStructure() == model.RTS {
			st.nextTS += st.ds.IntervalMs
		} else {
			st.nextTS += st.ds.IntervalMs/2 + rng.Int63n(st.ds.IntervalMs)
		}
	}

	cfgs := []ScanOptions{
		{Workers: 1},
		{Workers: 1, NoCache: true},
		{Workers: 8},
		{Workers: 8, NoCache: true},
	}
	buckets := []int64{0, 7, 100, 1000, 60_000}
	for trial := 0; trial < 8; trial++ {
		t1 := int64(1_000_000) + rng.Int63n(maxTS-999_999)
		t2 := t1 + rng.Int63n(maxTS-t1+2)
		if trial == 0 {
			t1, t2 = math.MinInt64/2, math.MaxInt64/2
		}
		spec := AggSpec{T1: t1, T2: t2, NTags: ntags,
			BucketMs: buckets[rng.Intn(len(buckets))],
			ByID:     rng.Intn(2) == 0,
		}
		if rng.Intn(2) == 0 {
			tag := rng.Intn(ntags)
			lo := math.Round(rng.Float64()*500) / 4
			hi := lo + math.Round(rng.Float64()*500)/4
			spec.Preds = []TagPred{{Tag: tag, Lo: lo, Hi: hi,
				LoStrict: rng.Intn(2) == 0, HiStrict: rng.Intn(2) == 0}}
		}
		if rng.Intn(3) == 0 {
			// Narrow decode set; must still cover predicate tags.
			want := map[int]bool{rng.Intn(ntags): true}
			for _, p := range spec.Preds {
				want[p.Tag] = true
			}
			for tag := range want {
				spec.WantTags = append(spec.WantTags, tag)
			}
		}

		// Historical per source, multi over all ids, slice over the schema.
		for _, st := range sources {
			it, err := f.store.HistoricalScan(st.ds.ID, spec.T1, spec.T2, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := refFold(collect(t, it), spec)
			var first *AggResult
			for ci, opts := range cfgs {
				s := spec
				s.Opts = opts
				got, err := f.store.AggregateHistorical(st.ds.ID, s)
				if err != nil {
					t.Fatal(err)
				}
				compareAgg(t, "historical", got, want, s)
				if ci == 0 {
					first = got
				} else {
					sameAggResult(t, "historical-configs", first, got)
				}
			}
		}
		{
			var all []model.Point
			for _, st := range sources {
				it, err := f.store.HistoricalScan(st.ds.ID, spec.T1, spec.T2, nil)
				if err != nil {
					t.Fatal(err)
				}
				all = append(all, collect(t, it)...)
			}
			want := refFold(all, spec)
			for _, opts := range cfgs {
				s := spec
				s.Opts = opts
				got, err := f.store.AggregateMulti(ids, s)
				if err != nil {
					t.Fatal(err)
				}
				compareAgg(t, "multi", got, want, s)
			}
		}
		{
			it, err := f.store.SliceScan(schema.ID, spec.T1, spec.T2, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := refFold(collect(t, it), spec)
			for _, opts := range cfgs {
				s := spec
				s.Opts = opts
				got, err := f.store.AggregateSlice(schema.ID, s)
				if err != nil {
					t.Fatal(err)
				}
				compareAgg(t, "slice", got, want, s)
			}
		}
	}
}

// TestAggregateFoldsWithoutDecoding checks the whole point of the
// summary path: a wide-window aggregate over flushed summary-format blobs
// answers from headers, decoding (nearly) nothing.
func TestAggregateFoldsWithoutDecoding(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 32}, 0)
	schema := f.schema(t, "m", 2)
	ds := f.source(t, schema.ID, true, 10)
	for i := 0; i < 32*64; i++ {
		p := model.Point{Source: ds.ID, TS: int64(1000 + i*10), Values: []float64{float64(i % 97), float64(i % 13)}}
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := f.store.AggregateHistorical(ds.ID, AggSpec{
		T1: math.MinInt64 / 2, T2: math.MaxInt64 / 2, NTags: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.Groups[0].Rows != 32*64 {
		t.Fatalf("unexpected result: %+v", res.Groups)
	}
	if res.SummaryHits != 64 {
		t.Fatalf("SummaryHits = %d, want 64", res.SummaryHits)
	}
	if res.BlobBytesRead != 0 {
		t.Fatalf("BlobBytesRead = %d, want 0 (all folds)", res.BlobBytesRead)
	}
	if res.BytesNotDecoded == 0 {
		t.Fatalf("BytesNotDecoded = 0, want > 0")
	}
	st := f.store.Stats()
	if st.SummaryHits != 64 || st.BytesNotDecoded != res.BytesNotDecoded {
		t.Fatalf("store stats not plumbed: %+v", st)
	}

	// A window clipping the first and last point decodes only the two
	// edge blobs; the 62 interior blobs still fold from summaries.
	lastTS := int64(1000 + (32*64-1)*10)
	res, err = f.store.AggregateHistorical(ds.ID, AggSpec{T1: 1000 + 5, T2: lastTS, NTags: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SummaryHits != 62 {
		t.Fatalf("boundary SummaryHits = %d, want 62", res.SummaryHits)
	}
	if res.BlobBytesRead == 0 {
		t.Fatalf("boundary blobs were not decoded")
	}
}

// TestLegacyBlobLazySummaryUpgrade verifies pre-summary blobs aggregate
// correctly (decode path) and that the decode caches a computed summary
// so the next aggregate folds without decoding.
func TestLegacyBlobLazySummaryUpgrade(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, LegacyBlobFormat: true, BlobCacheBytes: 1 << 20}, 0)
	schema := f.schema(t, "old", 1)
	ds := f.source(t, schema.ID, true, 10)
	for i := 0; i < 16*8; i++ {
		p := model.Point{Source: ds.ID, TS: int64(1000 + i*10), Values: []float64{float64(i)}}
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	spec := AggSpec{T1: math.MinInt64 / 2, T2: math.MaxInt64 / 2, NTags: 1}
	first, err := f.store.AggregateHistorical(ds.ID, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.SummaryHits != 0 || first.BlobBytesRead == 0 {
		t.Fatalf("legacy blobs must decode on first aggregate: %+v", first)
	}
	second, err := f.store.AggregateHistorical(ds.ID, spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.SummaryHits != 8 {
		t.Fatalf("second aggregate SummaryHits = %d, want 8 (cached lazy summaries)", second.SummaryHits)
	}
	if second.BlobBytesRead != 0 {
		t.Fatalf("second aggregate decoded %d bytes, want 0", second.BlobBytesRead)
	}
	sameAggResult(t, "legacy-upgrade", first, second)
}

// TestAggregateSubBucketFolds checks the sub-bucket path end to end: a
// TIME_BUCKET aggregate whose width is a multiple of the store's base
// width folds blobs that straddle bucket edges from their per-sub-bucket
// mini-summaries, decoding nothing — the case the whole-blob summary can
// never answer.
func TestAggregateSubBucketFolds(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 32, SubBucketMs: 40}, 0)
	schema := f.schema(t, "sb", 2)
	ds := f.source(t, schema.ID, true, 10)
	for i := 0; i < 32*64; i++ {
		p := model.Point{Source: ds.ID, TS: int64(1000 + i*10), Values: []float64{float64(i % 97), float64(i % 13)}}
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every 320 ms blob straddles several 40 ms buckets, so the whole-blob
	// summary cannot answer; every record must fold from sub-summaries.
	for _, w := range []int64{40, 120} {
		spec := AggSpec{T1: math.MinInt64 / 2, T2: math.MaxInt64 / 2, NTags: 2, BucketMs: w}
		it, err := f.store.HistoricalScan(ds.ID, spec.T1, spec.T2, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := refFold(collect(t, it), spec)
		res, err := f.store.AggregateHistorical(ds.ID, spec)
		if err != nil {
			t.Fatal(err)
		}
		compareAgg(t, "sub-bucket", res, want, spec)
		if res.SubBucketFolds != 64 {
			t.Fatalf("w=%d: SubBucketFolds = %d, want 64", w, res.SubBucketFolds)
		}
		if res.SummaryHits != 0 || res.BytesNotDecoded != 0 {
			t.Fatalf("w=%d: sub-folds leaked into summary counters: %+v", w, res)
		}
		if res.BlobBytesRead != 0 {
			t.Fatalf("w=%d: BlobBytesRead = %d, want 0 (all sub-folds)", w, res.BlobBytesRead)
		}
		if res.SubBucketBytesNotDecoded == 0 {
			t.Fatalf("w=%d: SubBucketBytesNotDecoded = 0, want > 0", w)
		}
	}
	st := f.store.Stats()
	if st.SubBucketFolds != 128 || st.SubBucketBytesNotDecoded == 0 {
		t.Fatalf("store stats not plumbed: %+v", st)
	}

	// A width that is not a multiple of the base cannot use sub-summaries:
	// every straddling blob decodes.
	res, err := f.store.AggregateHistorical(ds.ID, AggSpec{
		T1: math.MinInt64 / 2, T2: math.MaxInt64 / 2, NTags: 2, BucketMs: 70})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubBucketFolds != 0 || res.BlobBytesRead == 0 {
		t.Fatalf("non-multiple width must decode: %+v", res)
	}

	// Unaligned window edges cut the first and last blob mid-sub-bucket:
	// those two decode, the 62 interior blobs still sub-fold.
	lastTS := int64(1000 + (32*64-1)*10)
	res, err = f.store.AggregateHistorical(ds.ID, AggSpec{T1: 1005, T2: lastTS, NTags: 2, BucketMs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubBucketFolds != 62 {
		t.Fatalf("unaligned edges: SubBucketFolds = %d, want 62", res.SubBucketFolds)
	}
	if res.BlobBytesRead == 0 {
		t.Fatalf("unaligned edge blobs were not decoded")
	}

	// Base-aligned window edges keep even the cut blobs folding.
	spec := AggSpec{T1: 1040, T2: 21400, NTags: 2, BucketMs: 40}
	it, err := f.store.HistoricalScan(ds.ID, spec.T1, spec.T2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := refFold(collect(t, it), spec)
	res, err = f.store.AggregateHistorical(ds.ID, spec)
	if err != nil {
		t.Fatal(err)
	}
	compareAgg(t, "aligned-cut", res, want, spec)
	if res.SubBucketFolds != 64 || res.BlobBytesRead != 0 {
		t.Fatalf("aligned cuts should fold every blob: %+v", res)
	}
}

// TestLegacyBlobLazySubBucketUpgrade verifies v1 blobs written before
// sub-bucket summaries existed still ride the sub-bucket path: the first
// bucketed aggregate decodes and caches computed sub-summaries, the
// second folds from them without decoding.
func TestLegacyBlobLazySubBucketUpgrade(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, LegacyBlobFormat: true, BlobCacheBytes: 1 << 20, SubBucketMs: 40}, 0)
	schema := f.schema(t, "oldsb", 1)
	ds := f.source(t, schema.ID, true, 10)
	for i := 0; i < 16*8; i++ {
		p := model.Point{Source: ds.ID, TS: int64(1000 + i*10), Values: []float64{float64(i)}}
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	spec := AggSpec{T1: math.MinInt64 / 2, T2: math.MaxInt64 / 2, NTags: 1, BucketMs: 40}
	first, err := f.store.AggregateHistorical(ds.ID, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.SubBucketFolds != 0 || first.BlobBytesRead == 0 {
		t.Fatalf("legacy blobs must decode on first aggregate: %+v", first)
	}
	second, err := f.store.AggregateHistorical(ds.ID, spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.SubBucketFolds != 8 {
		t.Fatalf("second aggregate SubBucketFolds = %d, want 8 (cached lazy sub-summaries)", second.SubBucketFolds)
	}
	if second.BlobBytesRead != 0 {
		t.Fatalf("second aggregate decoded %d bytes, want 0", second.BlobBytesRead)
	}
	sameAggResult(t, "legacy-sub-upgrade", first, second)
}

// TestSubFoldAligned pins the alignment rules that make a sub-bucket fold
// provably exact: width a multiple of the base, and any window edge that
// cuts the blob landing on the base grid (negatives included).
func TestSubFoldAligned(t *testing.T) {
	sum := &blobSummary{firstTS: 100, lastTS: 199}
	neg := &blobSummary{firstTS: -100, lastTS: -1}
	for _, tc := range []struct {
		name    string
		sum     *blobSummary
		t1, t2  int64
		base, w int64
		want    bool
	}{
		{"disabled-base", sum, 0, 1000, 0, 80, false},
		{"non-multiple-width", sum, 0, 1000, 30, 80, false},
		{"no-cut", sum, 100, 200, 40, 80, true},
		{"no-bucketing", sum, 100, 200, 40, 0, true},
		{"t1-cut-aligned", sum, 120, 1000, 40, 80, true},
		{"t1-cut-unaligned", sum, 130, 1000, 40, 80, false},
		{"t2-cut-aligned", sum, 0, 160, 40, 80, true},
		{"t2-cut-unaligned", sum, 0, 170, 40, 80, false},
		{"negative-aligned", neg, -80, 0, 40, 80, true},
		{"negative-unaligned", neg, -70, 0, 40, 80, false},
	} {
		sp := &aggSpecEx{spec: &AggSpec{BucketMs: tc.w}}
		if got := subFoldAligned(tc.sum, tc.t1, tc.t2, tc.base, sp); got != tc.want {
			t.Fatalf("%s: subFoldAligned = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBucketFloorMatchesTimeBucket pins the fold's bucket arithmetic to
// the executor's TIME_BUCKET semantics, negatives included.
func TestBucketFloorMatchesTimeBucket(t *testing.T) {
	for _, tc := range []struct{ ts, w, want int64 }{
		{0, 10, 0}, {9, 10, 0}, {10, 10, 10}, {-1, 10, -10}, {-10, 10, -10}, {-11, 10, -20},
		{1_000_007, 1000, 1_000_000},
	} {
		if got := bucketFloor(tc.ts, tc.w); got != tc.want {
			t.Fatalf("bucketFloor(%d, %d) = %d, want %d", tc.ts, tc.w, got, tc.want)
		}
	}
}
