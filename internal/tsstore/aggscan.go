package tsstore

import (
	"context"
	"fmt"
	"math"
	"sync"

	"odh/internal/btree"
	"odh/internal/keyenc"
	"odh/internal/model"
)

// The aggregate scan answers COUNT/SUM/AVG/MIN/MAX (optionally grouped by
// source id and/or time bucket) from ValueBlob header summaries instead of
// decoded rows. Each batch record is classified against the query window
// and predicates:
//
//   - excluded: the summary (or zone maps) proves no row can contribute —
//     the blob is skipped without decoding;
//   - fully covered: every row provably lies inside the window, inside one
//     time bucket (when bucketing), and satisfies every predicate — the
//     header summary is folded into the group, zero decode;
//   - sub-bucket foldable: predicates are provable but the blob straddles
//     the bucket grid (or a window edge that lands on the sub-bucket base
//     grid) — when the query grid is a positive integral multiple of the
//     base width, the blob folds from its per-sub-bucket mini-summaries
//     (v3 header block, or lazily computed and cached for v1/v2 blobs),
//     still zero decode;
//   - boundary: anything unprovable — the blob is decoded (through the
//     decoded-blob cache when enabled) and its rows folded one by one.
//
// Summaries are written from the same round-tripped values a decode
// returns, so a fold is bit-identical to decoding and aggregating, except
// that SUM folds add per-blob subtotals rather than individual values
// (floating-point addition is not associative; exact for integral data).
// Legacy pre-summary blobs always take the boundary path, but the decode
// lazily computes their summary and caches it, so repeated aggregate scans
// over old data fold from the cache.

// TagPred is one pushed-down predicate bound on a tag, kept exact
// (strictness preserved) so full coverage can be proven from a summary.
// Rows where the tag is NULL never match. Use ±Inf for open sides.
type TagPred struct {
	Tag                int
	Lo, Hi             float64
	LoStrict, HiStrict bool // true = exclusive bound
}

// AggSpec describes one aggregate scan.
type AggSpec struct {
	// T1, T2 bound the window: rows with T1 <= ts < T2 contribute.
	T1, T2 int64
	// NTags is the schema's tag count (sizes per-group arrays).
	NTags int
	// WantTags selects the tags to aggregate (nil = all). Must include
	// every tag named by Preds, like a scan's wantTags must cover the
	// residual filter.
	WantTags []int
	// Preds are conjunctive tag predicates applied to every row.
	Preds []TagPred
	// BucketMs, when positive, groups rows by bucketFloor(ts, BucketMs)
	// (the executor's TIME_BUCKET grid).
	BucketMs int64
	// ByID groups rows by source id.
	ByID bool
	// Opts carries the scan tuning (parallel workers, cache bypass).
	Opts ScanOptions
}

// AggGroup is one output group. Slices are indexed by tag; tags outside
// WantTags hold zeros/sentinels. Min > Max means no non-NULL value was
// seen (SQL MIN/MAX of nothing is NULL).
type AggGroup struct {
	ID      int64 // source id when AggSpec.ByID, else 0
	Bucket  int64 // bucket base when AggSpec.BucketMs > 0, else 0
	Rows    int64 // rows matching window + predicates (COUNT(*))
	NonNull []int64
	Sum     []float64
	Min     []float64
	Max     []float64
}

// AggResult is the outcome of one aggregate scan. Groups appear in
// first-contribution order (deterministic for a given store state and
// spec, parallel or serial).
type AggResult struct {
	Groups []AggGroup
	// SummaryHits counts records answered from a header summary alone
	// (folded or excluded); BytesNotDecoded totals their encoded bytes —
	// the decode work the pushdown avoided.
	SummaryHits     int64
	BytesNotDecoded int64
	// SubBucketFolds counts records that straddled the bucket grid (or a
	// window edge) and folded from per-sub-bucket mini-summaries instead
	// of a boundary decode; SubBucketBytesNotDecoded totals their encoded
	// bytes. Disjoint from SummaryHits/BytesNotDecoded.
	SubBucketFolds           int64
	SubBucketBytesNotDecoded int64
	// BlobBytesRead totals bytes actually decoded (boundary blobs) plus
	// the estimated bytes of buffered points, matching scan accounting.
	BlobBytesRead int64
	// BlobsSkipped counts zone-map exclusions (same meaning as scans).
	BlobsSkipped int64
}

// bucketFloor floor-aligns ts to the bucket grid. It must match the
// executor's TIME_BUCKET evaluation exactly: both delegate to
// model.BucketFloor, so a summary fold replaces that evaluation for
// whole blobs without any grid drift.
func bucketFloor(ts, width int64) int64 {
	if width <= 0 {
		return ts
	}
	return model.BucketFloor(ts, width)
}

// matchPreds applies the conjunctive predicates to one row's tag values.
func matchPreds(vals []float64, preds []TagPred) bool {
	for _, p := range preds {
		if p.Tag < 0 || p.Tag >= len(vals) {
			return false
		}
		v := vals[p.Tag]
		if model.IsNull(v) {
			return false
		}
		if p.LoStrict {
			if !(v > p.Lo) {
				return false
			}
		} else if !(v >= p.Lo) {
			return false
		}
		if p.HiStrict {
			if !(v < p.Hi) {
				return false
			}
		} else if !(v <= p.Hi) {
			return false
		}
	}
	return true
}

// aggSpecEx is an AggSpec with derived scan state precomputed once.
type aggSpecEx struct {
	spec  *AggSpec
	cache *blobCache
	sig   string
	tags    []int      // tags to fold (sorted, deduped, in [0, NTags))
	zones   []TagRange // inclusive hull of Preds for zone-map skipping
	ntags   int
	subBase int64           // store's sub-bucket base width (0 = disabled)
	ctx     context.Context // from Opts.Ctx; observed between records
}

func (s *Store) prepAggSpec(spec *AggSpec) *aggSpecEx {
	sp := &aggSpecEx{spec: spec, ntags: spec.NTags, subBase: s.cfg.SubBucketMs, ctx: spec.Opts.Ctx}
	sp.cache = s.scanCache(spec.Opts)
	sp.sig = tagsSig(spec.WantTags)
	if spec.WantTags == nil {
		sp.tags = make([]int, spec.NTags)
		for t := range sp.tags {
			sp.tags[t] = t
		}
	} else {
		seen := make(map[int]bool, len(spec.WantTags))
		for _, t := range spec.WantTags {
			if t >= 0 && t < spec.NTags && !seen[t] {
				seen[t] = true
				sp.tags = append(sp.tags, t)
			}
		}
	}
	for _, p := range spec.Preds {
		// Exclusive bounds loosen to inclusive: safe for skipping, never
		// used to prove coverage (classifySummary keeps the strictness).
		sp.zones = append(sp.zones, TagRange{Tag: p.Tag, Lo: p.Lo, Hi: p.Hi})
	}
	return sp
}

// summaryClass is the fold decision for one record.
type summaryClass int

const (
	classBoundary    summaryClass = iota // must decode
	classExcluded                        // contributes nothing, skip decode
	classCovered                         // fold whole summary, skip decode
	classSubFoldable                     // fold per-sub-bucket summaries, skip decode
)

// classifySummary decides how a record folds within one part range
// [t1, t2). foldable gates summary folding entirely (false for MG records
// whose rows need per-member attribution or filtering); allowSub
// additionally gates the sub-bucket outcome (false for MG records, whose
// rows are slot-ordered and never carry sub-summaries).
//
// classSubFoldable means the whole-blob predicate proof held but the blob
// straddles the bucket grid or a window edge: the record can fold from
// per-sub-bucket mini-summaries PROVIDED the caller verifies the base
// width of the summaries it actually has via subFoldAligned (a persisted
// v3 block may carry a different base than the store's current config).
func classifySummary(sum *blobSummary, t1, t2 int64, sp *aggSpecEx, foldable, allowSub bool) summaryClass {
	if sum.rows == 0 || sum.lastTS < t1 || sum.firstTS >= t2 {
		return classExcluded
	}
	if !foldable {
		return classBoundary
	}
	for _, tag := range sp.tags {
		if tag >= len(sum.nonNull) {
			return classBoundary
		}
	}
	// Predicates hold for every row only when the tag is never NULL and
	// the blob's min/max sit strictly inside the (exact) bounds.
	for _, p := range sp.spec.Preds {
		if p.Tag < 0 || p.Tag >= len(sum.nonNull) {
			return classBoundary
		}
		if sum.nonNull[p.Tag] != sum.rows {
			return classBoundary
		}
		mn, mx := sum.min[p.Tag], sum.max[p.Tag]
		if mn > mx {
			return classBoundary
		}
		if p.LoStrict {
			if !(mn > p.Lo) {
				return classBoundary
			}
		} else if !(mn >= p.Lo) {
			return classBoundary
		}
		if p.HiStrict {
			if !(mx < p.Hi) {
				return classBoundary
			}
		} else if !(mx <= p.Hi) {
			return classBoundary
		}
	}
	if sum.firstTS >= t1 && sum.lastTS < t2 {
		if w := sp.spec.BucketMs; w <= 0 || bucketFloor(sum.firstTS, w) == bucketFloor(sum.lastTS, w) {
			return classCovered
		}
	}
	if allowSub {
		return classSubFoldable
	}
	return classBoundary
}

// subFoldAligned reports whether a sub-fold-candidate record may actually
// fold from sub-summaries of the given base width: the query's bucket
// grid (if any) must be a positive integral multiple of the base, and any
// window edge that cuts into the blob's span must land on the base grid —
// then every sub-bucket is provably either entirely inside or entirely
// outside both the window and one query bucket.
func subFoldAligned(sum *blobSummary, t1, t2, base int64, sp *aggSpecEx) bool {
	if base <= 0 {
		return false
	}
	if w := sp.spec.BucketMs; w > 0 && w%base != 0 {
		return false
	}
	if sum.firstTS < t1 && model.BucketFloor(t1, base) != t1 {
		return false
	}
	if sum.lastTS >= t2 && model.BucketFloor(t2, base) != t2 {
		return false
	}
	return true
}

// aggKey identifies one output group.
type aggKey struct{ id, bucket int64 }

// aggPartial is one part's accumulation state; parts never share one.
type aggPartial struct {
	groups map[aggKey]*AggGroup
	order  []aggKey

	summaryHits              int64
	bytesNotDecoded          int64
	subBucketFolds           int64
	subBucketBytesNotDecoded int64
	blobBytesRead            int64
	blobsSkipped             int64
}

func newAggPartial() *aggPartial {
	return &aggPartial{groups: make(map[aggKey]*AggGroup)}
}

func (pt *aggPartial) keyFor(src, ts int64, sp *aggSpecEx) aggKey {
	var k aggKey
	if sp.spec.ByID {
		k.id = src
	}
	if sp.spec.BucketMs > 0 {
		k.bucket = bucketFloor(ts, sp.spec.BucketMs)
	}
	return k
}

func (pt *aggPartial) group(k aggKey, sp *aggSpecEx) *AggGroup {
	if g, ok := pt.groups[k]; ok {
		return g
	}
	g := &AggGroup{
		ID: k.id, Bucket: k.bucket,
		NonNull: make([]int64, sp.ntags),
		Sum:     make([]float64, sp.ntags),
		Min:     make([]float64, sp.ntags),
		Max:     make([]float64, sp.ntags),
	}
	for i := range g.Min {
		g.Min[i] = math.Inf(1)
		g.Max[i] = math.Inf(-1)
	}
	pt.groups[k] = g
	pt.order = append(pt.order, k)
	return g
}

// foldSummary folds a fully-covered record's summary into its group.
func (pt *aggPartial) foldSummary(src int64, sum *blobSummary, sp *aggSpecEx) {
	// classifySummary proved every row shares one bucket, so the first
	// timestamp names it.
	g := pt.group(pt.keyFor(src, sum.firstTS, sp), sp)
	g.Rows += sum.rows
	for _, tag := range sp.tags {
		if tag >= len(sum.nonNull) {
			continue
		}
		g.NonNull[tag] += sum.nonNull[tag]
		g.Sum[tag] += sum.sum[tag]
		if sum.nonNull[tag] > 0 {
			if sum.min[tag] < g.Min[tag] {
				g.Min[tag] = sum.min[tag]
			}
			if sum.max[tag] > g.Max[tag] {
				g.Max[tag] = sum.max[tag]
			}
		}
	}
}

// foldSubSummaries folds the sub-buckets of one record that lie inside
// [t1, t2) into their groups, in ascending bucket order — the same group
// first-contribution order a row-by-row decode of the (time-ordered)
// blob would produce. subFoldAligned proved each bucket lies entirely
// inside or entirely outside the window, and that every bucket maps to a
// single query bucket; classifySummary proved the predicates hold for
// every row of the blob.
func (pt *aggPartial) foldSubSummaries(src int64, sum *blobSummary, sub *subSummaries, t1, t2 int64, sp *aggSpecEx) {
	for i := range sub.buckets {
		b := &sub.buckets[i]
		if b.rows == 0 {
			continue
		}
		start := sub.start + int64(i)*sub.base
		// In-window test per the alignment proof: an edge inside the blob's
		// span sits on the base grid, so a bucket is out iff it starts
		// before an aligned t1 or ends after an aligned t2.
		if sum.firstTS < t1 && start < t1 {
			continue
		}
		if sum.lastTS >= t2 && start+sub.base > t2 {
			continue
		}
		g := pt.group(pt.keyFor(src, start, sp), sp)
		g.Rows += b.rows
		for _, tag := range sp.tags {
			if tag >= len(b.nonNull) {
				continue
			}
			g.NonNull[tag] += b.nonNull[tag]
			g.Sum[tag] += b.sum[tag]
			if b.nonNull[tag] > 0 {
				if b.min[tag] < g.Min[tag] {
					g.Min[tag] = b.min[tag]
				}
				if b.max[tag] > g.Max[tag] {
					g.Max[tag] = b.max[tag]
				}
			}
		}
	}
}

// foldRow folds one decoded (or buffered) row.
func (pt *aggPartial) foldRow(src, ts int64, vals []float64, sp *aggSpecEx) {
	if !matchPreds(vals, sp.spec.Preds) {
		return
	}
	g := pt.group(pt.keyFor(src, ts, sp), sp)
	g.Rows++
	for _, tag := range sp.tags {
		if tag >= len(vals) {
			continue
		}
		v := vals[tag]
		if model.IsNull(v) {
			continue
		}
		g.NonNull[tag]++
		g.Sum[tag] += v
		if v < g.Min[tag] {
			g.Min[tag] = v
		}
		if v > g.Max[tag] {
			g.Max[tag] = v
		}
	}
}

// foldBatchRows folds a decoded RTS/IRTS batch, filtering to the part
// range (a boundary blob's rows may spill outside it).
func (pt *aggPartial) foldBatchRows(src int64, batch *DecodedBatch, r scanRange, sp *aggSpecEx) {
	for i, ts := range batch.Timestamps {
		if ts >= r.t1 && ts < r.t2 {
			pt.foldRow(src, ts, batch.Rows[i], sp)
		}
	}
}

// foldMGRows folds a decoded MG record with per-member attribution,
// mirroring mgIter.fillQueue's slot/source/window filters.
func (pt *aggPartial) foldMGRows(batch *DecodedBatch, members []int64, onlySource int64, r scanRange, sp *aggSpecEx) {
	for i, slot := range batch.Slots {
		if slot >= len(members) {
			continue
		}
		src := members[slot]
		if onlySource != 0 && src != onlySource {
			continue
		}
		ts := batch.Timestamps[i]
		if ts < r.t1 || ts >= r.t2 {
			continue
		}
		pt.foldRow(src, ts, batch.Rows[i], sp)
	}
}

// aggPart is one independently runnable slice of an aggregate scan.
type aggPart func(*aggPartial) error

// aggBufferPart folds a dirty-read buffer snapshot (already range
// filtered). Buffered points carry the same estimated cost as in scans.
func aggBufferPart(points []model.Point, sp *aggSpecEx) aggPart {
	return func(pt *aggPartial) error {
		for _, p := range points {
			pt.blobBytesRead += pointBlobBytes(len(p.Values))
			pt.foldRow(p.Source, p.TS, p.Values, sp)
		}
		return nil
	}
}

// aggBatchPart walks one source's RTS/IRTS records over a part range,
// classifying each against its summary. The cache protocol (version
// snapshot at leaf load, version check at insert) is identical to
// batchIter's; see blobCache.vers.
func (s *Store) aggBatchPart(tree *btree.Tree, source int64, r scanRange, lookback int64, sp *aggSpecEx) aggPart {
	return func(pt *aggPartial) error {
		cache := sp.cache
		loTS := r.t1
		if lookback > 0 {
			if loTS > math.MinInt64+lookback+1 {
				loTS = r.t1 - lookback - 1
			} else {
				loTS = math.MinInt64
			}
		}
		hi := keyenc.SourceTime(source, r.t2)
		treeID := s.treeID(tree)
		var vers [cacheVerSlots]uint64
		var cur *btree.Cursor
		seekKey := keyenc.SourceTime(source, loTS)
		if cache != nil {
			cur = tree.SeekWithLoadHook(seekKey, func() { cache.snapshotAll(&vers) })
		} else {
			cur = tree.Seek(seekKey)
		}
		for cur.Valid() {
			if err := ctxErr(sp.ctx); err != nil {
				return err
			}
			key := cur.Key()
			if keyCompare(key, hi) >= 0 {
				return nil
			}
			src, baseTS, err := keyenc.DecodeSourceTime(key)
			if err != nil {
				return err
			}
			if src != source {
				return nil
			}
			bk := blobKey{tree: treeID, source: source, ts: baseTS}
			if cache != nil {
				if e, ok := cache.get(bk, sp.sig); ok {
					cur.Next()
					if !e.overlaps(sp.zones) {
						pt.blobsSkipped++
						continue
					}
					if e.summary != nil {
						switch classifySummary(e.summary, r.t1, r.t2, sp, true, true) {
						case classExcluded:
							continue
						case classCovered:
							pt.summaryHits++
							pt.bytesNotDecoded += e.blobLen
							pt.foldSummary(source, e.summary, sp)
							continue
						case classSubFoldable:
							if e.sub != nil && subFoldAligned(e.summary, r.t1, r.t2, e.sub.base, sp) {
								pt.subBucketFolds++
								pt.subBucketBytesNotDecoded += e.blobLen
								pt.foldSubSummaries(source, e.summary, e.sub, r.t1, r.t2, sp)
								continue
							}
						}
					}
					cache.noteSaved(e.blobLen)
					pt.foldBatchRows(source, e.batch, r, sp)
					continue
				}
			}
			// Read the insert-guard version before Next() can reload the
			// snapshot; see batchIter.loadOne.
			var ver uint64
			if cache != nil {
				ver = vers[bk.slot()]
			}
			blob, err := cur.Value()
			if err != nil {
				if s.lenient() {
					s.noteCorruptBlob()
					cur.Next()
					continue
				}
				return err
			}
			cur.Next()
			if !BlobOverlaps(blob, sp.zones) {
				pt.blobsSkipped++
				continue
			}
			sum, haveSum := parseBlobSummary(blob, baseTS)
			if haveSum {
				switch classifySummary(sum, r.t1, r.t2, sp, true, true) {
				case classExcluded:
					pt.summaryHits++
					pt.bytesNotDecoded += int64(len(blob))
					continue
				case classCovered:
					pt.summaryHits++
					pt.bytesNotDecoded += int64(len(blob))
					pt.foldSummary(source, sum, sp)
					continue
				case classSubFoldable:
					// A v3 blob folds from its persisted mini-summaries
					// with zero decode (stubs included: the block survives
					// stubbing). v1/v2 blobs fall through to the decode,
					// which computes and caches sub-summaries lazily.
					if blob[0]&flagSubBuckets != 0 {
						if sub, ok := parseBlobSubSummaries(blob, baseTS); ok && subFoldAligned(sum, r.t1, r.t2, sub.base, sp) {
							pt.subBucketFolds++
							pt.subBucketBytesNotDecoded += int64(len(blob))
							pt.foldSubSummaries(source, sum, sub, r.t1, r.t2, sp)
							continue
						}
					}
				}
			}
			if IsStubBlob(blob) {
				if !haveSum {
					if s.lenient() {
						s.noteCorruptBlob()
						continue
					}
					return fmt.Errorf("tsstore: corrupt stub blob source=%d ts=%d", source, baseTS)
				}
				// A boundary-classified stub needs per-row resolution (a
				// window or predicate the summary cannot prove) and its
				// rows are gone: fail loudly, never under-count.
				return &StubbedRangeError{Tree: treeName(treeID), Source: source, TS: baseTS, FirstTS: sum.firstTS, LastTS: sum.lastTS}
			}
			batch, err := DecodeBlob(blob, baseTS, sp.spec.WantTags)
			if err != nil {
				if s.lenient() {
					s.noteCorruptBlob()
					continue
				}
				return err
			}
			pt.blobBytesRead += int64(len(blob))
			if cache != nil {
				es := sum
				if !haveSum {
					// Legacy blob: the decode pays for a summary future
					// aggregate scans fold from the cache (lazy upgrade).
					es = summaryFromBatch(batch, sp.ntags)
				}
				// Sub-summaries ride along the same way: parsed from v3
				// headers, computed from the decoded rows for v1/v2 blobs
				// (at the store's base width), so later aggregate scans
				// sub-fold straddling records straight from the cache.
				var sub *subSummaries
				if blob[0]&flagSubBuckets != 0 {
					sub, _ = parseBlobSubSummaries(blob, baseTS)
				} else if sp.subBase > 0 {
					sub = subSummariesFromBatch(batch, sp.ntags, sp.subBase)
				}
				zones, hasZones := blobZoneMaps(blob)
				cache.put(bk, sp.sig, ver, batch, zones, hasZones, int64(len(blob)), es, sub)
			}
			pt.foldBatchRows(source, batch, r, sp)
		}
		return cur.Err()
	}
}

// aggMGPart walks one group's MG records over a part range. A record may
// fold from its summary only when rows need no per-member attribution:
// no source filter, no GROUP BY id, and every stored slot maps to a known
// member (mgIter drops unknown slots, so a fold must too).
func (s *Store) aggMGPart(group int64, r scanRange, onlySource int64, sp *aggSpecEx) aggPart {
	return func(pt *aggPartial) error {
		cache := sp.cache
		members := s.cat.GroupMembers(group)
		window := s.groupWindow(group)
		lo := r.t1
		if lo > math.MinInt64+window {
			lo = r.t1 - window
		}
		hi := keyenc.SourceTime(group, r.t2)
		var vers [cacheVerSlots]uint64
		var cur *btree.Cursor
		seekKey := keyenc.SourceTime(group, lo)
		if cache != nil {
			cur = s.mg.SeekWithLoadHook(seekKey, func() { cache.snapshotAll(&vers) })
		} else {
			cur = s.mg.Seek(seekKey)
		}
		mgFoldable := onlySource == 0 && !sp.spec.ByID
		for cur.Valid() {
			if err := ctxErr(sp.ctx); err != nil {
				return err
			}
			key := cur.Key()
			if keyCompare(key, hi) >= 0 {
				return nil
			}
			grp, ts, err := keyenc.DecodeSourceTime(key)
			if err != nil || grp != group {
				return nil
			}
			bk := blobKey{tree: cacheTreeMG, source: group, ts: ts}
			if cache != nil {
				if e, ok := cache.get(bk, sp.sig); ok {
					cur.Next()
					if !e.overlaps(sp.zones) {
						pt.blobsSkipped++
						continue
					}
					if e.summary != nil {
						foldable := mgFoldable && e.summary.members <= len(members)
						switch classifySummary(e.summary, r.t1, r.t2, sp, foldable, false) {
						case classExcluded:
							continue
						case classCovered:
							pt.summaryHits++
							pt.bytesNotDecoded += e.blobLen
							pt.foldSummary(0, e.summary, sp)
							continue
						}
					}
					cache.noteSaved(e.blobLen)
					pt.foldMGRows(e.batch, members, onlySource, r, sp)
					continue
				}
			}
			var ver uint64
			if cache != nil {
				ver = vers[bk.slot()]
			}
			blob, err := cur.Value()
			if err != nil {
				if s.lenient() {
					s.noteCorruptBlob()
					cur.Next()
					continue
				}
				return err
			}
			cur.Next()
			if !BlobOverlaps(blob, sp.zones) {
				pt.blobsSkipped++
				continue
			}
			sum, haveSum := parseBlobSummary(blob, ts)
			if haveSum {
				foldable := mgFoldable && sum.members <= len(members)
				switch classifySummary(sum, r.t1, r.t2, sp, foldable, false) {
				case classExcluded:
					pt.summaryHits++
					pt.bytesNotDecoded += int64(len(blob))
					continue
				case classCovered:
					pt.summaryHits++
					pt.bytesNotDecoded += int64(len(blob))
					pt.foldSummary(0, sum, sp)
					continue
				}
			}
			if IsStubBlob(blob) {
				if !haveSum {
					if s.lenient() {
						s.noteCorruptBlob()
						continue
					}
					return fmt.Errorf("tsstore: corrupt stub blob group=%d ts=%d", group, ts)
				}
				return &StubbedRangeError{Tree: "ts.mg", Source: group, TS: ts, FirstTS: sum.firstTS, LastTS: sum.lastTS}
			}
			batch, err := DecodeBlob(blob, ts, sp.spec.WantTags)
			if err != nil {
				if s.lenient() {
					s.noteCorruptBlob()
					continue
				}
				return err
			}
			pt.blobBytesRead += int64(len(blob))
			if cache != nil {
				es := sum
				if !haveSum {
					es = summaryFromBatch(batch, sp.ntags)
				}
				// No sub-summaries for MG: subSummariesFromBatch returns
				// nil for slot-ordered batches, and MG blobs never carry
				// the v3 block.
				zones, hasZones := blobZoneMaps(blob)
				cache.put(bk, sp.sig, ver, batch, zones, hasZones, int64(len(blob)), es, nil)
			}
			pt.foldMGRows(batch, members, onlySource, r, sp)
		}
		return cur.Err()
	}
}

// historicalAggParts decomposes one source's aggregate exactly like
// HistoricalScanOpts decomposes its scan: batch parts per ts-disjoint
// range, MG record parts for group-ingesting sources, and the dirty-read
// buffer snapshot.
func (s *Store) historicalAggParts(source int64, sp *aggSpecEx, workers int) ([]aggPart, error) {
	ds, ok := s.cat.Source(source)
	if !ok {
		return nil, fmt.Errorf("tsstore: unknown data source %d", source)
	}
	spec := sp.spec
	stats := s.cat.Stats(source)
	ranges := splitScanRange(spec.T1, spec.T2, stats, workers)
	var parts []aggPart
	if ds.IngestStructure() == model.MG {
		if stats.BatchCount > 0 {
			tree := s.treeFor(ds.HistoricalStructure())
			for _, r := range ranges {
				parts = append(parts, s.aggBatchPart(tree, source, r, stats.MaxSpanMs, sp))
			}
		}
		for _, r := range ranges {
			parts = append(parts, s.aggMGPart(ds.Group, r, source, sp))
		}
		if buf := s.snapshotGroupBuffer(ds.Group, spec.T1, spec.T2, source); len(buf) > 0 {
			parts = append(parts, aggBufferPart(buf, sp))
		}
	} else {
		tree := s.treeFor(ds.IngestStructure())
		for _, r := range ranges {
			parts = append(parts, s.aggBatchPart(tree, source, r, stats.MaxSpanMs, sp))
		}
		if buf := s.snapshotSourceBuffer(source, spec.T1, spec.T2); len(buf) > 0 {
			parts = append(parts, aggBufferPart(buf, sp))
		}
	}
	return parts, nil
}

// runAggParts executes the parts (on the worker pool when allowed) and
// merges their partials in part order, which keeps group emission order
// identical between serial and parallel runs.
func (s *Store) runAggParts(parts []aggPart, sp *aggSpecEx, workers int) (*AggResult, error) {
	partials := make([]*aggPartial, len(parts))
	for i := range partials {
		partials[i] = newAggPartial()
	}
	if workers > 1 && len(parts) > 1 {
		if workers > len(parts) {
			workers = len(parts)
		}
		sem := make(chan struct{}, workers)
		errs := make([]error, len(parts))
		var wg sync.WaitGroup
		for i, p := range parts {
			wg.Add(1)
			go func(i int, p aggPart) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// Workers observe ctx between parts: a canceled query
				// stops folding instead of racing the pool to completion.
				if err := ctxErr(sp.ctx); err != nil {
					errs[i] = err
					return
				}
				errs[i] = p(partials[i])
			}(i, p)
		}
		wg.Wait()
		s.parallelScans.Add(1)
		s.parallelParts.Add(int64(len(parts)))
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for i, p := range parts {
			if err := ctxErr(sp.ctx); err != nil {
				return nil, err
			}
			if err := p(partials[i]); err != nil {
				return nil, err
			}
		}
	}
	res := &AggResult{}
	idx := make(map[aggKey]int)
	for _, pt := range partials {
		res.SummaryHits += pt.summaryHits
		res.BytesNotDecoded += pt.bytesNotDecoded
		res.SubBucketFolds += pt.subBucketFolds
		res.SubBucketBytesNotDecoded += pt.subBucketBytesNotDecoded
		res.BlobBytesRead += pt.blobBytesRead
		res.BlobsSkipped += pt.blobsSkipped
		for _, k := range pt.order {
			g := pt.groups[k]
			j, ok := idx[k]
			if !ok {
				idx[k] = len(res.Groups)
				res.Groups = append(res.Groups, *g)
				continue
			}
			dst := &res.Groups[j]
			dst.Rows += g.Rows
			for t := range dst.NonNull {
				dst.NonNull[t] += g.NonNull[t]
				dst.Sum[t] += g.Sum[t]
				if g.Min[t] < dst.Min[t] {
					dst.Min[t] = g.Min[t]
				}
				if g.Max[t] > dst.Max[t] {
					dst.Max[t] = g.Max[t]
				}
			}
		}
	}
	s.summaryHits.Add(res.SummaryHits)
	s.bytesNotDecoded.Add(res.BytesNotDecoded)
	s.subBucketFolds.Add(res.SubBucketFolds)
	s.subBucketBytesNotDecoded.Add(res.SubBucketBytesNotDecoded)
	return res, nil
}

// AggregateHistorical computes the aggregates of one source over
// [spec.T1, spec.T2), the pushdown twin of HistoricalScanOpts.
func (s *Store) AggregateHistorical(source int64, spec AggSpec) (*AggResult, error) {
	sp := s.prepAggSpec(&spec)
	workers := clampWorkers(spec.Opts.Workers)
	parts, err := s.historicalAggParts(source, sp, workers)
	if err != nil {
		return nil, err
	}
	return s.runAggParts(parts, sp, workers)
}

// AggregateMulti aggregates an explicit source list (the id IN (...)
// pushdown). Each source stays serial inside; the fan-out is across
// sources, like MultiHistoricalScanOpts. Unknown ids contribute nothing.
func (s *Store) AggregateMulti(sources []int64, spec AggSpec) (*AggResult, error) {
	sp := s.prepAggSpec(&spec)
	workers := clampWorkers(spec.Opts.Workers)
	var parts []aggPart
	for _, src := range sources {
		p, err := s.historicalAggParts(src, sp, 1)
		if err != nil {
			continue
		}
		parts = append(parts, p...)
	}
	return s.runAggParts(parts, sp, workers)
}

// AggregateSlice aggregates every source of a schema over the window, the
// pushdown twin of SliceScanOpts (including its partition elimination).
func (s *Store) AggregateSlice(schemaID int64, spec AggSpec) (*AggResult, error) {
	sp := s.prepAggSpec(&spec)
	workers := clampWorkers(spec.Opts.Workers)
	full := scanRange{spec.T1, spec.T2}
	var parts []aggPart
	for _, g := range s.cat.GroupsBySchema(schemaID) {
		for _, src := range s.cat.GroupMembers(g) {
			ds, ok := s.cat.Source(src)
			if !ok {
				continue
			}
			stats := s.cat.Stats(src)
			if stats.BatchCount == 0 {
				continue
			}
			parts = append(parts, s.aggBatchPart(s.treeFor(ds.HistoricalStructure()), src, full, stats.MaxSpanMs, sp))
		}
		parts = append(parts, s.aggMGPart(g, full, 0, sp))
		if buf := s.snapshotGroupBuffer(g, spec.T1, spec.T2, 0); len(buf) > 0 {
			parts = append(parts, aggBufferPart(buf, sp))
		}
	}
	for _, src := range s.cat.SourcesBySchema(schemaID) {
		ds, ok := s.cat.Source(src)
		if !ok || ds.IngestStructure() == model.MG {
			continue
		}
		stats := s.cat.Stats(src)
		if stats.PointCount > 0 && (stats.LastTS < spec.T1 || stats.FirstTS >= spec.T2) && s.bufferEmpty(src) {
			continue // partition elimination: no data in range
		}
		parts = append(parts, s.aggBatchPart(s.treeFor(ds.IngestStructure()), src, full, stats.MaxSpanMs, sp))
		if buf := s.snapshotSourceBuffer(src, spec.T1, spec.T2); len(buf) > 0 {
			parts = append(parts, aggBufferPart(buf, sp))
		}
	}
	return s.runAggParts(parts, sp, workers)
}
