package tsstore

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"odh/internal/model"
)

// Property tests for the scan pipeline: mergeIter, concatIter, batchIter,
// the parallel scheduler, and the blob-bytes accounting over generated
// inputs. The invariants are ordering, no-dup, no-loss, and that every
// configuration — serial, split, parallel, cached — yields identical
// rows.

// genSortedPoints builds n ts-sorted points for one source.
func genSortedPoints(rng *rand.Rand, source int64, n int) []model.Point {
	pts := make([]model.Point, n)
	ts := int64(rng.Intn(50))
	for i := range pts {
		ts += int64(rng.Intn(20)) // duplicates allowed (step 0)
		pts[i] = model.Point{Source: source, TS: ts, Values: []float64{float64(i), float64(source)}}
	}
	return pts
}

// TestMergeIterProperty merges k generated sorted streams and checks the
// output is the (TS, Source)-ordered union with nothing lost or invented,
// and that BlobBytes aggregates every input's accounting.
func TestMergeIterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		k := 1 + rng.Intn(5)
		var inputs []Iterator
		var all []model.Point
		var wantBytes int64
		for i := 0; i < k; i++ {
			pts := genSortedPoints(rng, int64(i+1), rng.Intn(30))
			all = append(all, pts...)
			it := newSliceIter(pts)
			wantBytes += it.perPoint * int64(len(pts))
			inputs = append(inputs, it)
		}
		m := newMergeIter(inputs)
		got := collect(t, m)
		if len(got) != len(all) {
			t.Fatalf("round %d: merged %d points, want %d", round, len(got), len(all))
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.TS > b.TS || (a.TS == b.TS && a.Source > b.Source) {
				t.Fatalf("round %d: out of order at %d: (%d,%d) then (%d,%d)", round, i, a.TS, a.Source, b.TS, b.Source)
			}
		}
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].TS != all[j].TS {
				return all[i].TS < all[j].TS
			}
			return all[i].Source < all[j].Source
		})
		for i := range got {
			if got[i].TS != all[i].TS || got[i].Source != all[i].Source {
				t.Fatalf("round %d: row %d = (%d,%d), want (%d,%d)", round, i, got[i].TS, got[i].Source, all[i].TS, all[i].Source)
			}
		}
		if m.BlobBytes() != wantBytes {
			t.Fatalf("round %d: BlobBytes = %d, want %d", round, m.BlobBytes(), wantBytes)
		}
	}
}

// TestConcatIterProperty checks concatenation order and byte accounting,
// including that buffered-point adapters now report non-zero estimates
// (the sliceIterAdapter fix) and that an empty scan's cost is truly zero.
func TestConcatIterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 100; round++ {
		k := 1 + rng.Intn(5)
		var inputs []Iterator
		var want []model.Point
		var wantBytes int64
		for i := 0; i < k; i++ {
			pts := genSortedPoints(rng, int64(i+1), rng.Intn(20))
			want = append(want, pts...)
			it := newSliceIter(pts)
			if len(pts) > 0 && it.perPoint == 0 {
				t.Fatal("sliceIterAdapter must carry a non-zero per-point estimate")
			}
			wantBytes += it.perPoint * int64(len(pts))
			inputs = append(inputs, it)
		}
		c := &concatIter{iters: inputs}
		got := collect(t, c)
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("round %d: concat diverged (%d vs %d rows)", round, len(got), len(want))
		}
		if c.BlobBytes() != wantBytes {
			t.Fatalf("round %d: BlobBytes = %d, want %d", round, c.BlobBytes(), wantBytes)
		}
	}
	if (emptyIter{}).BlobBytes() != 0 {
		t.Fatal("emptyIter serves nothing; its cost must be zero")
	}
}

// TestBatchIterProperty writes randomized (partly out-of-order) histories
// and checks every window scan against ground truth, across serial,
// range-split parallel, and cached configurations.
func TestBatchIterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		cfg := Config{BatchSize: 4 + rng.Intn(12), BlobCacheBytes: 1 << 20}
		f := newFixture(t, cfg, 0)
		s := f.schema(t, "prop", 2)
		regular := rng.Intn(2) == 0
		ds := f.source(t, s.ID, regular, 10)

		// Distinct timestamps by construction; irregular sources get a
		// perturbed write order so buffers split on out-of-order arrivals.
		n := 50 + rng.Intn(200)
		stamps := make([]int64, n)
		ts := int64(0)
		for i := range stamps {
			if regular {
				ts += 10
				if rng.Intn(20) == 0 {
					ts += 10 * int64(1+rng.Intn(5)) // gap splits the batch
				}
			} else {
				ts += int64(1 + rng.Intn(25))
			}
			stamps[i] = ts
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		if !regular {
			for i := 0; i < n/10; i++ {
				a, b := rng.Intn(n), rng.Intn(n)
				order[a], order[b] = order[b], order[a]
			}
		}
		var truth []model.Point
		for _, i := range order {
			p := model.Point{Source: ds.ID, TS: stamps[i], Values: []float64{float64(i % 5), float64(i)}}
			truth = append(truth, p.Clone())
			if err := f.store.Write(p); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(40) == 0 {
				if err := f.store.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Leave some points buffered half the time (dirty-read path).
		if rng.Intn(2) == 0 {
			if err := f.store.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		sort.SliceStable(truth, func(i, j int) bool { return truth[i].TS < truth[j].TS })

		for q := 0; q < 10; q++ {
			t1 := int64(rng.Intn(int(ts)+1)) - 10
			t2 := t1 + int64(rng.Intn(int(ts)+100))
			var want []model.Point
			for _, p := range truth {
				if p.TS >= t1 && p.TS < t2 {
					want = append(want, p)
				}
			}
			serial := scanWindow(t, f.store, ds.ID, t1, t2, ScanOptions{NoCache: true})
			if len(serial) != len(want) {
				t.Fatalf("round %d q %d: serial %d rows, want %d", round, q, len(serial), len(want))
			}
			for i := range serial {
				if serial[i].TS != want[i].TS || serial[i].Values[1] != want[i].Values[1] {
					t.Fatalf("round %d q %d: row %d = (%d,%v), want (%d,%v)", round, q, i, serial[i].TS, serial[i].Values, want[i].TS, want[i].Values)
				}
			}
			par := scanWindow(t, f.store, ds.ID, t1, t2, ScanOptions{Workers: 4, NoCache: true})
			if !pointsEqual(serial, par) {
				t.Fatalf("round %d q %d: parallel scan diverged", round, q)
			}
			cached := scanWindow(t, f.store, ds.ID, t1, t2, ScanOptions{})
			if !pointsEqual(serial, cached) {
				t.Fatalf("round %d q %d: cached scan diverged", round, q)
			}
			both := scanWindow(t, f.store, ds.ID, t1, t2, ScanOptions{Workers: 4})
			if !pointsEqual(serial, both) {
				t.Fatalf("round %d q %d: parallel+cached scan diverged", round, q)
			}
		}
	}
}

func scanWindow(t *testing.T, s *Store, source, t1, t2 int64, opts ScanOptions) []model.Point {
	t.Helper()
	it, err := s.HistoricalScanOpts(source, t1, t2, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return collect(t, it)
}

func pointsEqual(a, b []model.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Source != b[i].Source || a[i].TS != b[i].TS || !valuesEqual(a[i].Values, b[i].Values) {
			return false
		}
	}
	return true
}

// valuesEqual compares rows cell-wise with NULL (NaN) equal to NULL —
// unlike reflect.DeepEqual, which only accepts NaN cells when both rows
// alias the same backing array (scans copy rows out of shared cache
// batches, so aliasing never happens).
func valuesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(model.IsNull(a[i]) && model.IsNull(b[i])) {
			return false
		}
	}
	return true
}

// TestSplitScanRangeProperty checks the range splitter partitions any
// window exactly: contiguous, covering, and honoring the k bound.
func TestSplitScanRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 500; round++ {
		t1 := int64(rng.Intn(10_000)) - 5000
		t2 := t1 + int64(rng.Intn(10_000))
		stats := model.SourceStats{
			PointCount: int64(rng.Intn(3)), // sometimes zero: no split
			FirstTS:    t1 + int64(rng.Intn(2000)) - 1000,
			LastTS:     t2 + int64(rng.Intn(2000)) - 1000,
		}
		k := 1 + rng.Intn(8)
		ranges := splitScanRange(t1, t2, stats, k)
		if len(ranges) < 1 || len(ranges) > k {
			t.Fatalf("round %d: %d ranges for k=%d", round, len(ranges), k)
		}
		if ranges[0].t1 != t1 || ranges[len(ranges)-1].t2 != t2 {
			t.Fatalf("round %d: ranges %v do not cover [%d,%d)", round, ranges, t1, t2)
		}
		for i := 1; i < len(ranges); i++ {
			if ranges[i].t1 != ranges[i-1].t2 {
				t.Fatalf("round %d: gap between %v and %v", round, ranges[i-1], ranges[i])
			}
		}
	}
	// Extreme bounds must not overflow.
	full := splitScanRange(math.MinInt64, math.MaxInt64, model.SourceStats{PointCount: 10, FirstTS: 0, LastTS: 1 << 40}, 4)
	if full[0].t1 != math.MinInt64 || full[len(full)-1].t2 != math.MaxInt64 {
		t.Fatalf("extreme split lost coverage: %v", full)
	}
}

// TestMultiAndSliceScanParallelEquivalence checks the multi-source and
// slice paths return identical rows serial vs parallel vs cached,
// including MG groups with a still-unreorganized stripe.
func TestMultiAndSliceScanParallelEquivalence(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8, MaxOpenMGRows: 3, BlobCacheBytes: 1 << 20}, 4)
	s := f.schema(t, "mixed", 2)
	var srcs []*model.DataSource
	for i := 0; i < 2; i++ {
		srcs = append(srcs, f.source(t, s.ID, true, 10)) // RTS
	}
	srcs = append(srcs, f.source(t, s.ID, false, 10)) // IRTS
	for i := 0; i < 4; i++ {
		srcs = append(srcs, f.source(t, s.ID, true, 10_000)) // MG group
	}
	for i := 0; i < 300; i++ {
		for _, ds := range srcs {
			step := ds.IntervalMs
			p := model.Point{Source: ds.ID, TS: int64(i+1)*step + int64(ds.GroupSlot), Values: []float64{float64(i % 9), float64(ds.ID)}}
			if err := f.store.Write(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	// Reorganize part of the MG history so per-source batches and MG
	// records coexist.
	if _, err := f.store.Reorganize(s.ID, 150*10_000); err != nil {
		t.Fatal(err)
	}

	ids := make([]int64, len(srcs))
	for i, ds := range srcs {
		ids[i] = ds.ID
	}
	windows := [][2]int64{
		{math.MinInt64, math.MaxInt64},
		{100 * 10, 2000 * 10},
		{140 * 10_000, 200 * 10_000},
	}
	for _, w := range windows {
		for _, opts := range []ScanOptions{{Workers: 4}, {Workers: 4, NoCache: true}, {NoCache: true}, {}} {
			multiRef, err := f.store.MultiHistoricalScan(ids, w[0], w[1], nil)
			if err != nil {
				t.Fatal(err)
			}
			multiGot, err := f.store.MultiHistoricalScanOpts(ids, w[0], w[1], nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !pointsEqual(collect(t, multiRef), collect(t, multiGot)) {
				t.Fatalf("multi scan diverged for window %v opts %+v", w, opts)
			}
			sliceRef, err := f.store.SliceScan(s.ID, w[0], w[1], nil)
			if err != nil {
				t.Fatal(err)
			}
			sliceGot, err := f.store.SliceScanOpts(s.ID, w[0], w[1], nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !pointsEqual(collect(t, sliceRef), collect(t, sliceGot)) {
				t.Fatalf("slice scan diverged for window %v opts %+v", w, opts)
			}
		}
	}
	if st := f.store.Stats(); st.ParallelScans == 0 || st.ParallelParts == 0 {
		t.Fatalf("parallel counters did not move: %+v", st)
	}
}

// TestZoneSkipParityWithCache verifies zone-map skipping behaves
// identically on cache hits (replayed zones) and raw reads, both in rows
// and in the BlobsSkipped counter.
func TestZoneSkipParityWithCache(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, BlobCacheBytes: 1 << 20}, 0)
	s := f.schema(t, "zones", 2)
	ds := f.source(t, s.ID, true, 10)
	// Two value regimes so some blobs are skippable.
	for i := 0; i < 256; i++ {
		v := float64(i % 8)
		if i >= 128 {
			v += 1000
		}
		if err := f.store.Write(model.Point{Source: ds.ID, TS: int64(i+1) * 10, Values: []float64{v, float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	ranges := []TagRange{{Tag: 0, Lo: 1000, Hi: 2000}}
	scan := func(opts ScanOptions) ([]model.Point, int64) {
		it, err := f.store.HistoricalScanOpts(ds.ID, math.MinInt64, math.MaxInt64, nil, opts, ranges...)
		if err != nil {
			t.Fatal(err)
		}
		pts := collect(t, it)
		return pts, it.BlobsSkipped()
	}
	rawPts, rawSkip := scan(ScanOptions{NoCache: true})
	if rawSkip == 0 {
		t.Fatal("expected zone-map skips")
	}
	scan(ScanOptions{}) // warm the cache
	hitPts, hitSkip := scan(ScanOptions{})
	if !pointsEqual(rawPts, hitPts) {
		t.Fatal("cached zone-filtered scan diverged")
	}
	if hitSkip != rawSkip {
		t.Fatalf("cache-hit skips = %d, raw skips = %d", hitSkip, rawSkip)
	}
	if st := f.store.BlobCacheStats(); st.Hits == 0 {
		t.Fatalf("zone scan did not hit the cache: %+v", st)
	}
}
