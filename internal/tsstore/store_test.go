package tsstore

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"odh/internal/catalog"
	"odh/internal/compress"
	"odh/internal/model"
	"odh/internal/pagestore"
	"odh/internal/walog"
)

type fixture struct {
	store *Store
	cat   *catalog.Catalog
	page  *pagestore.Store
}

func newFixture(t testing.TB, cfg Config, groupSize int) *fixture {
	t.Helper()
	page, err := pagestore.Open(pagestore.NewMemFile(), pagestore.Options{PoolPages: 8192})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { page.Close() })
	cat, err := catalog.Open(page, groupSize)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(page, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{store: st, cat: cat, page: page}
}

func (f *fixture) schema(t testing.TB, name string, ntags int) *model.SchemaType {
	t.Helper()
	tags := make([]model.TagDef, ntags)
	for i := range tags {
		tags[i] = model.TagDef{Name: string(rune('a' + i))}
	}
	s, err := f.cat.CreateSchemaType(name, tags)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (f *fixture) source(t testing.TB, schemaID int64, regular bool, intervalMs int64) *model.DataSource {
	t.Helper()
	ds, err := f.cat.RegisterSource(model.DataSource{SchemaID: schemaID, Regular: regular, IntervalMs: intervalMs})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func collect(t testing.TB, it Iterator) []model.Point {
	t.Helper()
	var out []model.Point
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return out
}

func TestRTSWriteAndHistoricalScan(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	s := f.schema(t, "pmu", 3)
	ds := f.source(t, s.ID, true, 20) // 50 Hz regular -> RTS

	const n = 100
	for i := 0; i < n; i++ {
		p := model.Point{Source: ds.ID, TS: int64(1000 + i*20), Values: []float64{float64(i), 50, float64(-i)}}
		if err := f.store.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	// 100 points / batch 16 -> 6 flushed batches, 4 points buffered.
	rts, irts, mg := f.store.TreeSizes()
	if rts != 6 || irts != 0 || mg != 0 {
		t.Fatalf("tree sizes = %d/%d/%d, want 6/0/0", rts, irts, mg)
	}

	it, err := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := collect(t, it)
	if len(pts) != n {
		t.Fatalf("scan returned %d points (dirty read must include buffered), want %d", len(pts), n)
	}
	for i, p := range pts {
		if p.TS != int64(1000+i*20) {
			t.Fatalf("point %d ts = %d", i, p.TS)
		}
		if p.Values[0] != float64(i) || p.Values[1] != 50 || p.Values[2] != float64(-i) {
			t.Fatalf("point %d values = %v", i, p.Values)
		}
	}
}

func TestRTSGapSplitsBatch(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 100}, 0)
	s := f.schema(t, "pmu", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 10; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{1}})
	}
	// Gap: jump ahead by 5 intervals.
	for i := 0; i < 10; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(1000 + i*10), Values: []float64{2}})
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	rts, _, _ := f.store.TreeSizes()
	if rts != 2 {
		t.Fatalf("gap did not split batch: %d batches", rts)
	}
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	if got := len(collect(t, it)); got != 20 {
		t.Fatalf("scan = %d points, want 20", got)
	}
}

func TestIRTSWriteAndScan(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 32}, 0)
	s := f.schema(t, "vehicle", 2)
	ds := f.source(t, s.ID, false, 100) // irregular 10 Hz -> IRTS

	rng := rand.New(rand.NewSource(4))
	ts := int64(5000)
	var want []int64
	for i := 0; i < 200; i++ {
		ts += int64(50 + rng.Intn(100)) // jittered intervals
		want = append(want, ts)
		if err := f.store.Write(model.Point{Source: ds.ID, TS: ts, Values: []float64{float64(i), 0.5}}); err != nil {
			t.Fatal(err)
		}
	}
	_, irts, _ := f.store.TreeSizes()
	if irts == 0 {
		t.Fatal("no IRTS batches flushed")
	}
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	pts := collect(t, it)
	if len(pts) != 200 {
		t.Fatalf("scan = %d, want 200", len(pts))
	}
	for i, p := range pts {
		if p.TS != want[i] {
			t.Fatalf("ts[%d] = %d, want %d", i, p.TS, want[i])
		}
	}
}

func TestIRTSOutOfOrderSplits(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 100}, 0)
	s := f.schema(t, "v", 1)
	ds := f.source(t, s.ID, false, 100)
	f.store.Write(model.Point{Source: ds.ID, TS: 1000, Values: []float64{1}})
	f.store.Write(model.Point{Source: ds.ID, TS: 2000, Values: []float64{2}})
	f.store.Write(model.Point{Source: ds.ID, TS: 1500, Values: []float64{3}}) // out of order
	f.store.Flush()
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	pts := collect(t, it)
	if len(pts) != 3 {
		t.Fatalf("scan = %d points", len(pts))
	}
	// Merge must deliver them in timestamp order despite the split.
	if pts[0].TS != 1000 || pts[1].TS != 1500 || pts[2].TS != 2000 {
		t.Fatalf("order: %d %d %d", pts[0].TS, pts[1].TS, pts[2].TS)
	}
}

func TestMGWriteAndSliceScan(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8}, 4)
	s := f.schema(t, "meter", 2)
	var sources []*model.DataSource
	for i := 0; i < 8; i++ {
		sources = append(sources, f.source(t, s.ID, true, 900000)) // 15 min -> MG
	}
	// Two complete rounds: every source reports at both timestamps.
	for round := 0; round < 2; round++ {
		ts := int64(1000000 + round*900000)
		for i, ds := range sources {
			err := f.store.Write(model.Point{Source: ds.ID, TS: ts, Values: []float64{float64(i), float64(round)}})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// 8 sources / group size 4 = 2 groups; 2 timestamps each -> 4 MG records.
	_, _, mg := f.store.TreeSizes()
	if mg != 4 {
		t.Fatalf("mg records = %d, want 4", mg)
	}
	it, err := f.store.SliceScan(s.ID, 1000000, 1000000+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := collect(t, it)
	if len(pts) != 8 {
		t.Fatalf("slice = %d points, want 8", len(pts))
	}
	seen := map[int64]bool{}
	for _, p := range pts {
		seen[p.Source] = true
		if p.Values[1] != 0 {
			t.Fatalf("wrong round value: %v", p.Values)
		}
	}
	if len(seen) != 8 {
		t.Fatal("slice missed sources")
	}
}

func TestMGPartialRowFlush(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8, MaxOpenMGRows: 2}, 4)
	s := f.schema(t, "meter", 1)
	var sources []*model.DataSource
	for i := 0; i < 4; i++ {
		sources = append(sources, f.source(t, s.ID, true, 900000))
	}
	// Only source 0 reports across 3 different windows: the open-row cap
	// (2) must force partial flushes rather than unbounded buffering.
	for i := 0; i < 3; i++ {
		f.store.Write(model.Point{Source: sources[0].ID, TS: int64(1000 + i*900000), Values: []float64{float64(i)}})
	}
	if f.store.Stats().MGPartialRows == 0 {
		t.Fatal("no partial rows flushed")
	}
	it, _ := f.store.HistoricalScan(sources[0].ID, 0, math.MaxInt64, nil)
	if got := len(collect(t, it)); got != 3 {
		t.Fatalf("historical scan over partial rows = %d, want 3", got)
	}
}

func TestMGHistoricalScanSingleSource(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8}, 4)
	s := f.schema(t, "meter", 1)
	var sources []*model.DataSource
	for i := 0; i < 4; i++ {
		sources = append(sources, f.source(t, s.ID, true, 900000))
	}
	for round := 0; round < 5; round++ {
		ts := int64(1000000 + round*900000)
		for i, ds := range sources {
			f.store.Write(model.Point{Source: ds.ID, TS: ts, Values: []float64{float64(i*100 + round)}})
		}
	}
	it, _ := f.store.HistoricalScan(sources[2].ID, 0, math.MaxInt64, nil)
	pts := collect(t, it)
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	for round, p := range pts {
		if p.Source != sources[2].ID || p.Values[0] != float64(200+round) {
			t.Fatalf("round %d: %+v", round, p)
		}
	}
}

func TestNullValuesRoundtrip(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 4}, 0)
	s := f.schema(t, "sparse", 3)
	ds := f.source(t, s.ID, false, 100)
	// Sparse records: like the paper's Observation table, most tags NULL.
	for i := 0; i < 8; i++ {
		vals := []float64{model.NullValue, model.NullValue, model.NullValue}
		vals[i%3] = float64(i)
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 100), Values: vals})
	}
	f.store.Flush()
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	pts := collect(t, it)
	if len(pts) != 8 {
		t.Fatalf("got %d", len(pts))
	}
	for i, p := range pts {
		for j, v := range p.Values {
			if j == i%3 {
				if v != float64(i) {
					t.Fatalf("point %d tag %d = %v", i, j, v)
				}
			} else if !model.IsNull(v) {
				t.Fatalf("point %d tag %d should be NULL, got %v", i, j, v)
			}
		}
	}
}

func TestTagProjectionSkipsColumns(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8}, 0)
	s := f.schema(t, "wide", 10)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 16; i++ {
		vals := make([]float64, 10)
		for j := range vals {
			vals[j] = float64(i*10 + j)
		}
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: vals})
	}
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, []int{3})
	pts := collect(t, it)
	if len(pts) != 16 {
		t.Fatalf("got %d", len(pts))
	}
	for i, p := range pts {
		if p.Values[3] != float64(i*10+3) {
			t.Fatalf("selected tag wrong at %d: %v", i, p.Values[3])
		}
		if !model.IsNull(p.Values[0]) || !model.IsNull(p.Values[9]) {
			t.Fatalf("unselected tags decoded: %v", p.Values)
		}
	}
}

func TestTimeRangeFiltering(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 10}, 0)
	s := f.schema(t, "x", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 100; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{float64(i)}})
	}
	// Window [250, 500) cuts across batch boundaries (batches span 100ms).
	it, _ := f.store.HistoricalScan(ds.ID, 250, 500, nil)
	pts := collect(t, it)
	if len(pts) != 25 {
		t.Fatalf("got %d, want 25", len(pts))
	}
	if pts[0].TS != 250 || pts[len(pts)-1].TS != 490 {
		t.Fatalf("range [%d, %d]", pts[0].TS, pts[len(pts)-1].TS)
	}
}

func TestReorganizeMGToRTS(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8}, 4)
	s := f.schema(t, "meter", 2)
	var sources []*model.DataSource
	for i := 0; i < 4; i++ {
		sources = append(sources, f.source(t, s.ID, true, 900000))
	}
	const rounds = 10
	for round := 0; round < rounds; round++ {
		ts := int64(1000000 + round*900000)
		for i, ds := range sources {
			f.store.Write(model.Point{Source: ds.ID, TS: ts, Values: []float64{float64(i), float64(round)}})
		}
	}
	// Reorg works at window (bucket) granularity: round k writes at
	// 1000000+900000k, which buckets to 900000(k+1); a cut at
	// 1000000+6*900000 therefore captures rounds 0..6 (7 records).
	cut := int64(1000000 + 6*900000)
	res, err := f.store.Reorganize(s.ID, cut)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsConverted != 7 {
		t.Fatalf("converted %d records, want 7", res.RecordsConverted)
	}
	if res.PointsMoved != 28 {
		t.Fatalf("moved %d points, want 28", res.PointsMoved)
	}
	rts, _, mg := f.store.TreeSizes()
	if mg != 3 {
		t.Fatalf("mg records after reorg = %d, want 3", mg)
	}
	if rts == 0 {
		t.Fatal("no RTS batches written by reorg")
	}
	// Historical scan must stitch reorged + remaining MG data seamlessly.
	it, _ := f.store.HistoricalScan(sources[1].ID, 0, math.MaxInt64, nil)
	pts := collect(t, it)
	if len(pts) != rounds {
		t.Fatalf("post-reorg scan = %d points, want %d", len(pts), rounds)
	}
	for round, p := range pts {
		if p.Values[1] != float64(round) {
			t.Fatalf("round %d wrong after reorg: %v", round, p.Values)
		}
	}
	// Slice scans must also stitch across the watermark.
	it2, _ := f.store.SliceScan(s.ID, 0, math.MaxInt64, nil)
	if got := len(collect(t, it2)); got != rounds*4 {
		t.Fatalf("slice after reorg = %d, want %d", got, rounds*4)
	}
	// Idempotent: converting the same stripe again is a no-op.
	res2, err := f.store.Reorganize(s.ID, cut)
	if err != nil {
		t.Fatal(err)
	}
	if res2.RecordsConverted != 0 {
		t.Fatalf("double reorg converted %d", res2.RecordsConverted)
	}
}

func TestIrregularLowFrequencyReorgToIRTS(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8}, 2)
	s := f.schema(t, "weather", 1)
	a := f.source(t, s.ID, false, 1380000) // ~23 min irregular -> MG, reorg -> IRTS
	b := f.source(t, s.ID, false, 1380000)
	rng := rand.New(rand.NewSource(8))
	ts := int64(0)
	for i := 0; i < 6; i++ {
		ts += int64(1000000 + rng.Intn(500000))
		f.store.Write(model.Point{Source: a.ID, TS: ts, Values: []float64{1}})
		f.store.Write(model.Point{Source: b.ID, TS: ts, Values: []float64{2}})
	}
	if _, err := f.store.Reorganize(s.ID, ts+1); err != nil {
		t.Fatal(err)
	}
	_, irts, mg := f.store.TreeSizes()
	if mg != 0 || irts == 0 {
		t.Fatalf("after reorg: irts=%d mg=%d", irts, mg)
	}
	it, _ := f.store.HistoricalScan(a.ID, 0, math.MaxInt64, nil)
	if got := len(collect(t, it)); got != 6 {
		t.Fatalf("scan = %d", got)
	}
}

func TestLossyCompressionBound(t *testing.T) {
	page, _ := pagestore.Open(pagestore.NewMemFile(), pagestore.Options{PoolPages: 4096})
	t.Cleanup(func() { page.Close() })
	cat, _ := catalog.Open(page, 0)
	st, _ := Open(page, cat, Config{BatchSize: 64})
	schema, _ := cat.CreateSchemaType("lossy", []model.TagDef{
		{Name: "smooth", Compression: compress.Policy{MaxDev: 0.1}},
	})
	ds, _ := cat.RegisterSource(model.DataSource{SchemaID: schema.ID, Regular: true, IntervalMs: 10})
	want := make([]float64, 256)
	for i := range want {
		want[i] = 100 + 0.01*float64(i) + 0.03*math.Sin(float64(i)/10)
		st.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{want[i]}})
	}
	st.Flush()
	it, _ := st.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	i := 0
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		if math.Abs(p.Values[0]-want[i]) > 0.1+1e-9 {
			t.Fatalf("point %d error %v exceeds bound", i, math.Abs(p.Values[0]-want[i]))
		}
		i++
	}
	if i != 256 {
		t.Fatalf("scanned %d", i)
	}
}

func TestCompressionShrinksBlobBytes(t *testing.T) {
	run := func(cfg Config) int64 {
		f := newFixture(t, cfg, 0)
		s := f.schema(t, "c", 4)
		ds := f.source(t, s.ID, true, 10)
		for i := 0; i < 1024; i++ {
			f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10),
				Values: []float64{100, float64(i) * 0.5, 42, float64(i % 3)}})
		}
		f.store.Flush()
		return int64(f.store.BlobBytesTotal())
	}
	compressed := run(Config{BatchSize: 128})
	raw := run(Config{BatchSize: 128, DisableCompression: true})
	if compressed*3 > raw {
		t.Fatalf("compression too weak: %d vs %d raw", compressed, raw)
	}
}

func TestRowOrientedAblationDecodesAllTags(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8, RowOrientedBlobs: true}, 0)
	s := f.schema(t, "row", 4)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 16; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{1, 2, 3, float64(i)}})
	}
	f.store.Flush()
	// Even with projection, row-oriented blobs return every tag (they
	// cannot skip columns) — verify values are correct.
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, []int{3})
	pts := collect(t, it)
	if len(pts) != 16 {
		t.Fatalf("got %d", len(pts))
	}
	for i, p := range pts {
		if p.Values[3] != float64(i) {
			t.Fatalf("tag 3 at %d = %v", i, p.Values[3])
		}
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "ingest.wal")
	l, err := walog.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, Config{BatchSize: 1000, Log: l}, 0)
	s := f.schema(t, "w", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 50; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{float64(i)}})
	}
	l.Sync()
	// Simulate crash: buffered points never flushed. A new store recovers
	// them from the log.
	l.Close()

	l2, err := walog.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	f2 := newFixture(t, Config{BatchSize: 1000}, 0)
	s2 := f2.schema(t, "w", 1)
	ds2 := f2.source(t, s2.ID, true, 10)
	_ = ds2
	n, err := f2.store.RecoverFromLog(l2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("recovered %d points, want 50", n)
	}
	it, _ := f2.store.HistoricalScan(ds2.ID, 0, math.MaxInt64, nil)
	if got := len(collect(t, it)); got != 50 {
		t.Fatalf("post-recovery scan = %d", got)
	}
}

func TestWriteValidation(t *testing.T) {
	f := newFixture(t, Config{}, 0)
	s := f.schema(t, "v", 2)
	ds := f.source(t, s.ID, true, 10)
	if err := f.store.Write(model.Point{Source: 9999, TS: 1, Values: []float64{1, 2}}); err == nil {
		t.Fatal("unknown source accepted")
	}
	if err := f.store.Write(model.Point{Source: ds.ID, TS: 1, Values: []float64{1}}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	file := pagestore.NewMemFile()
	page, _ := pagestore.Open(file, pagestore.Options{PoolPages: 4096})
	cat, _ := catalog.Open(page, 4)
	st, _ := Open(page, cat, Config{BatchSize: 8})
	schema, _ := cat.CreateSchemaType("p", []model.TagDef{{Name: "v"}})
	ds, _ := cat.RegisterSource(model.DataSource{SchemaID: schema.ID, Regular: true, IntervalMs: 10})
	for i := 0; i < 64; i++ {
		st.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{float64(i)}})
	}
	st.Flush()
	page.Close()

	page2, _ := pagestore.Open(file, pagestore.Options{PoolPages: 4096})
	defer page2.Close()
	cat2, err := catalog.Open(page2, 4)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Open(page2, cat2, Config{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	it, err := st2.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := collect(t, it)
	if len(pts) != 64 {
		t.Fatalf("reopened scan = %d points", len(pts))
	}
	if pts[63].Values[0] != 63 {
		t.Fatalf("values lost: %v", pts[63].Values)
	}
}

func TestBlobBytesReadAccounting(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	s := f.schema(t, "io", 2)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 64; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{1, 2}})
	}
	f.store.Flush()
	st := f.cat.Stats(ds.ID)
	if st.BlobBytes <= 0 || st.BatchCount != 4 {
		t.Fatalf("stats: %+v", st)
	}
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	collect(t, it)
	bi, ok := it.(*batchIter)
	if !ok {
		t.Fatalf("expected single batchIter, got %T", it)
	}
	if bi.BlobBytesRead != st.BlobBytes {
		t.Fatalf("BlobBytesRead %d != stats %d", bi.BlobBytesRead, st.BlobBytes)
	}
}
