package tsstore

import (
	"fmt"
	"sort"

	"odh/internal/btree"
	"odh/internal/keyenc"
	"odh/internal/model"
)

// The tier pass implements the storage lifecycle an operational historian
// runs between ingest and retention. Batch records age through three
// tiers, driven by per-schema age policies:
//
//	hot  — written by ingest/reorganization at BatchSize granularity with
//	       the paper's variability-aware codecs (possibly lossy);
//	cold — aged records coalesced into batches ColdBatchPoints wide and
//	       re-encoded at maximum codec effort, lossless and bit-exact
//	       against what a decode of the hot record returned;
//	stub — the record truncated to its header (zone maps + aggregate
//	       summary); COUNT/SUM/AVG/MIN/MAX and covered TIME_BUCKET
//	       roll-ups keep answering from the summary, raw-row scans over
//	       the stubbed range fail with StubbedRangeError.
//
// Only the per-source RTS/IRTS trees tier: MG records hold interleaved
// member rows whose per-source batches only exist after Reorganize rehomes
// them, so MG history enters the lifecycle through the reorganizer first.
//
// Crash safety: a pass mutates B+tree pages that become durable only at
// the page store's next two-phase checkpoint (Flush). A crash mid-pass
// recovers the previous checkpoint — every original record intact; a
// failed pass surfaces its error and the caller skips the checkpoint the
// same way failed coalescing does. No transition ever overwrites the only
// copy of a record before its replacement is in the same shadow-paged
// tree.

// TierPolicy ages one schema's batch records. Cutoffs are relative to the
// "now" passed to TierSchema; zero disables that transition.
type TierPolicy struct {
	// ColdAfterMs moves records whose last timestamp is older than
	// now-ColdAfterMs to the cold tier (coalesce + max-effort re-encode).
	ColdAfterMs int64
	// StubAfterMs truncates records older than now-StubAfterMs to
	// summary-only stubs. Usually >= ColdAfterMs so records compact
	// before their rows are dropped, but a stub-only policy is valid.
	StubAfterMs int64
	// ColdBatchPoints is the cold-tier batch granularity; <= 0 means
	// ColdBatchFactor * Config.BatchSize.
	ColdBatchPoints int
}

// ColdBatchFactor is the default multiple of the hot batch size used for
// cold-tier batches, amortizing per-record key and header overhead.
const ColdBatchFactor = 8

// TierResult summarizes one TierSchema pass.
type TierResult struct {
	// ColdCompacted counts hot records the cold pass consumed;
	// ColdWritten counts the cold records it produced.
	ColdCompacted int
	ColdWritten   int
	// Stubbed counts records truncated to summary-only stubs.
	Stubbed int
	// BytesBefore and BytesAfter measure the encoded bytes of every
	// record the pass touched, around the pass; BytesReclaimed is their
	// difference.
	BytesBefore    int64
	BytesAfter     int64
	BytesReclaimed int64
}

// TierStats is an on-demand census of the three batch trees by tier.
type TierStats struct {
	HotBlobs, ColdBlobs, StubBlobs int64
	HotBytes, ColdBytes, StubBytes int64
}

// StubbedRangeError reports a raw-row scan that touched a record whose
// rows were dropped by tier policy. It unwraps to ErrStubbedBlob so
// callers match it with errors.Is; the fields identify the record so an
// operator can tell which range degraded. This is explicit degradation,
// not corruption: lenient scans do not quarantine it.
type StubbedRangeError struct {
	Tree            string // "ts.rts", "ts.irts", or "ts.mg"
	Source          int64  // source id (group id for MG records)
	TS              int64  // record base timestamp
	FirstTS, LastTS int64  // the stub's summarized row range
}

func (e *StubbedRangeError) Error() string {
	return fmt.Sprintf("tsstore: rows of %s source=%d ts=%d (span [%d, %d]) were dropped by tier policy; only header aggregates remain",
		e.Tree, e.Source, e.TS, e.FirstTS, e.LastTS)
}

// Unwrap ties the error to ErrStubbedBlob for errors.Is.
func (e *StubbedRangeError) Unwrap() error { return ErrStubbedBlob }

// treeName names a cache tree id like BlobRef.Tree.
func treeName(id uint8) string {
	switch id {
	case cacheTreeRTS:
		return "ts.rts"
	case cacheTreeIRTS:
		return "ts.irts"
	default:
		return "ts.mg"
	}
}

// TierSchema runs one lifecycle pass over every source of a schema: first
// the cold pass (coalesce + re-encode records older than the cold cutoff),
// then the stub pass (truncate records older than the stub cutoff), so a
// record crossing both cutoffs in one call compacts before it stubs.
func (s *Store) TierSchema(schemaID int64, pol TierPolicy, now int64) (TierResult, error) {
	res := TierResult{}
	if pol.ColdAfterMs <= 0 && pol.StubAfterMs <= 0 {
		return res, nil
	}
	batchPoints := pol.ColdBatchPoints
	if batchPoints <= 0 {
		batchPoints = ColdBatchFactor * s.cfg.BatchSize
	}
	for _, src := range s.cat.SourcesBySchema(schemaID) {
		ds, ok := s.cat.Source(src)
		if !ok {
			continue
		}
		schema, ok := s.cat.SchemaByID(ds.SchemaID)
		if !ok {
			continue
		}
		for _, structure := range []model.Structure{model.RTS, model.IRTS} {
			tree := s.treeFor(structure)
			if pol.ColdAfterMs > 0 {
				// Never coalesce across the stub cutoff: a cold blob
				// straddling it would keep its rows forever (stubbing skips
				// straddlers), starving the stub tier whenever the cold
				// granularity exceeds the gap between the two cutoffs.
				splitAt := int64(0)
				if pol.StubAfterMs > 0 {
					splitAt = now - pol.StubAfterMs
				}
				if err := s.coldCompactSource(tree, structure, ds, schema, now-pol.ColdAfterMs, splitAt, batchPoints, &res); err != nil {
					return res, err
				}
			}
			if pol.StubAfterMs > 0 {
				if err := s.stubSource(tree, structure, ds, schema, now-pol.StubAfterMs, &res); err != nil {
					return res, err
				}
			}
		}
	}
	res.BytesReclaimed = res.BytesBefore - res.BytesAfter
	s.tierBytesReclaimed.Add(res.BytesReclaimed)
	return res, nil
}

// coldCompactSource rewrites one source's hot records whose data ends
// before the cutoff into cold batches: decode, merge, re-split at the cold
// granularity, re-encode at maximum effort. Values round-trip bit-exactly
// — the inputs are the already-round-tripped floats a scan of the hot
// record returned, and the cold codecs are verified lossless.
func (s *Store) coldCompactSource(tree *btree.Tree, structure model.Structure, ds *model.DataSource, schema *model.SchemaType, cutoff, splitAt int64, batchPoints int, res *TierResult) error {
	lo := keyenc.SourceTime(ds.ID, -1<<62)
	// A record keyed at or past the cutoff starts there, so its last
	// timestamp cannot be older; the scan stops at the cutoff key.
	hi := keyenc.SourceTime(ds.ID, cutoff)
	type rec struct {
		key    []byte
		bytes  int64
		points []model.Point
	}
	var recs []rec
	survivors := make(map[int64]bool)
	err := tree.Scan(lo, hi, func(k, v []byte) bool {
		_, baseTS, err := keyenc.DecodeSourceTime(k)
		if err != nil {
			return true
		}
		if BlobTier(v) != TierHot {
			return true // already compacted or stubbed
		}
		last, haveLast := blobLastTS(v, baseTS)
		if haveLast && last >= cutoff {
			survivors[baseTS] = true // straddles the cutoff; stays hot
			return true
		}
		batch, err := DecodeBlob(v, baseTS, nil)
		if err != nil {
			return true // unreadable: leave it for fsck, never destroy
		}
		if !haveLast {
			// Legacy pre-summary blob: find the true last timestamp from
			// the decode (MG-origin timestamps are slot-ordered, so take
			// the maximum rather than the tail).
			last = baseTS
			for _, ts := range batch.Timestamps {
				if ts > last {
					last = ts
				}
			}
			if last >= cutoff {
				survivors[baseTS] = true
				return true
			}
		}
		pts := make([]model.Point, len(batch.Timestamps))
		for i := range pts {
			pts[i] = model.Point{Source: ds.ID, TS: batch.Timestamps[i], Values: batch.Rows[i]}
		}
		recs = append(recs, rec{key: append([]byte(nil), k...), bytes: int64(len(v)), points: pts})
		return true
	})
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	var all []model.Point
	var bytesBefore, pointCount int64
	for _, r := range recs {
		all = append(all, r.points...)
		bytesBefore += r.bytes
		pointCount += int64(len(r.points))
	}
	insertionSortPoints(all)
	// Partition at the stub cutoff so no rewritten run straddles it (the
	// stub pass would skip such a run as a straddler forever).
	parts := [][]model.Point{all}
	if splitAt > 0 {
		cut := sort.Search(len(all), func(i int) bool { return all[i].TS >= splitAt })
		if cut > 0 && cut < len(all) {
			parts = [][]model.Point{all[:cut], all[cut:]}
		}
	}
	// A rewritten run must never land on the key of a record the pass
	// keeps: after out-of-order ingest a straddler can share a first
	// timestamp with a re-split run, and Put would overwrite it. The
	// collision is vanishingly rare — skip the source this round; the
	// straddler ages past the cutoff and the next pass retries.
	if len(survivors) > 0 {
		for _, part := range parts {
			for _, run := range splitBatchRuns(part, structure, ds.IntervalMs, batchPoints) {
				if survivors[run[0].TS] {
					return nil
				}
			}
		}
	}
	opts := s.encodeOptsFor(schema)
	opts.cold = true
	opts.legacy = false
	treeID := s.treeID(tree)
	for _, r := range recs {
		err := tree.Delete(r.key)
		if _, ts, derr := keyenc.DecodeSourceTime(r.key); derr == nil {
			s.invalidateBlob(treeID, ds.ID, ts)
		}
		if err != nil {
			return err
		}
	}
	if err := s.cat.UpdateStats(ds.ID, model.SourceStats{
		BatchCount: -int64(len(recs)),
		PointCount: -pointCount,
		BlobBytes:  -bytesBefore,
	}); err != nil {
		return err
	}
	var n int
	var bytesAfter int64
	for _, part := range parts {
		pn, pb, err := s.writeBatchesOpts(ds, schema, part, structure, opts, batchPoints)
		if err != nil {
			return err
		}
		n += pn
		bytesAfter += pb
	}
	res.ColdCompacted += len(recs)
	res.ColdWritten += n
	res.BytesBefore += bytesBefore
	res.BytesAfter += bytesAfter
	s.coldCompactions.Add(int64(len(recs)))
	return nil
}

// stubSource truncates one source's records whose data ends before the
// cutoff to summary-only stubs, in place under the same key. Legacy
// pre-summary blobs are first re-encoded losslessly into the summary
// format (from the decode's round-tripped values, so the summary matches
// what scans were already serving) and the stub is that header.
func (s *Store) stubSource(tree *btree.Tree, structure model.Structure, ds *model.DataSource, schema *model.SchemaType, cutoff int64, res *TierResult) error {
	lo := keyenc.SourceTime(ds.ID, -1<<62)
	hi := keyenc.SourceTime(ds.ID, cutoff)
	type rec struct {
		key  []byte
		ts   int64
		old  int64
		stub []byte
	}
	var recs []rec
	err := tree.Scan(lo, hi, func(k, v []byte) bool {
		_, baseTS, err := keyenc.DecodeSourceTime(k)
		if err != nil {
			return true
		}
		if IsStubBlob(v) {
			return true // already stubbed
		}
		last, haveLast := blobLastTS(v, baseTS)
		if haveLast && last >= cutoff {
			return true // straddles the cutoff; keep rows
		}
		var stub []byte
		if haveLast {
			stub, _ = makeStubBlob(v)
		}
		if stub == nil {
			batch, derr := DecodeBlob(v, baseTS, nil)
			if derr != nil {
				return true // unreadable: leave it for fsck
			}
			last = baseTS
			for _, ts := range batch.Timestamps {
				if ts > last {
					last = ts
				}
			}
			if last >= cutoff {
				return true
			}
			pts := make([]model.Point, len(batch.Timestamps))
			for i := range pts {
				pts[i] = model.Point{Source: ds.ID, TS: batch.Timestamps[i], Values: batch.Rows[i]}
			}
			opts := s.encodeOptsFor(schema)
			opts.cold = true
			opts.legacy = false
			var full []byte
			if structure == model.RTS {
				full = EncodeRTS(pts, len(schema.Tags), ds.IntervalMs, opts)
			} else {
				full = EncodeIRTS(pts, len(schema.Tags), opts)
			}
			stub, _ = makeStubBlob(full)
			if stub == nil {
				return true
			}
		}
		recs = append(recs, rec{key: append([]byte(nil), k...), ts: baseTS, old: int64(len(v)), stub: stub})
		return true
	})
	if err != nil {
		return err
	}
	treeID := s.treeID(tree)
	for _, r := range recs {
		err := tree.Put(r.key, r.stub)
		// The record changed under its key: any cached decode is stale.
		s.invalidateBlob(treeID, ds.ID, r.ts)
		if err != nil {
			return err
		}
		// Row counts stay: the summary still answers COUNT/SUM/AVG and
		// partition elimination still needs the source's time range.
		if err := s.cat.UpdateStats(ds.ID, model.SourceStats{
			BlobBytes: int64(len(r.stub)) - r.old,
		}); err != nil {
			return err
		}
		res.Stubbed++
		res.BytesBefore += r.old
		res.BytesAfter += int64(len(r.stub))
	}
	s.stubTransitions.Add(int64(len(recs)))
	return nil
}

// TierStats walks the three batch trees and counts records per tier from
// their format bytes — the census behind Store/TotalStats tier reporting.
func (s *Store) TierStats() (TierStats, error) {
	var st TierStats
	for _, tr := range []*btree.Tree{s.rts, s.irts, s.mg} {
		cur := tr.First()
		for cur.Valid() {
			v, err := cur.Value()
			if err != nil {
				return st, err
			}
			switch BlobTier(v) {
			case TierStub:
				st.StubBlobs++
				st.StubBytes += int64(len(v))
			case TierCold:
				st.ColdBlobs++
				st.ColdBytes += int64(len(v))
			default:
				st.HotBlobs++
				st.HotBytes += int64(len(v))
			}
			cur.Next()
		}
		if err := cur.Err(); err != nil {
			return st, err
		}
	}
	return st, nil
}
