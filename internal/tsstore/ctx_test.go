package tsstore

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestScanCtxCancelSerial verifies a serial scan observes its context
// between blob loads: a cancellation mid-iteration surfaces as the
// iterator's error and stops further decoding.
func TestScanCtxCancelSerial(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	s := f.schema(t, "ctxserial", 2)
	ds := f.source(t, s.ID, true, 10)
	fillSource(t, f, ds, 2000)

	ctx, cancel := context.WithCancel(context.Background())
	it, err := f.store.HistoricalScanOpts(ds.ID, math.MinInt64, math.MaxInt64, nil, ScanOptions{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatalf("no rows before cancel: %v", it.Err())
	}
	cancel()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if !errors.Is(it.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", it.Err())
	}
	// The iterator may drain its already-decoded queue (up to one blob's
	// worth of points) but must not decode the rest of the 2000.
	if n > 2*16 {
		t.Fatalf("iterator yielded %d rows after cancel", n)
	}
}

// TestScanCtxCancelParallel verifies pool workers observe a pre-canceled
// context: the fanned-out scan returns the ctx error without decoding.
func TestScanCtxCancelParallel(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	s := f.schema(t, "ctxpar", 2)
	ds := f.source(t, s.ID, true, 10)
	fillSource(t, f, ds, 2000)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	it, err := f.store.HistoricalScanOpts(ds.ID, math.MinInt64, math.MaxInt64, nil, ScanOptions{Workers: 8, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if !errors.Is(it.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", it.Err())
	}
}

// TestAggregateCtxCancel verifies aggregate parts observe the context:
// a canceled aggregate returns the ctx error on both serial and pooled
// paths.
func TestAggregateCtxCancel(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	s := f.schema(t, "ctxagg", 2)
	ds := f.source(t, s.ID, true, 10)
	fillSource(t, f, ds, 2000)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		spec := AggSpec{T1: math.MinInt64, T2: math.MaxInt64, NTags: 2, Opts: ScanOptions{Workers: workers, Ctx: ctx}}
		if _, err := f.store.AggregateHistorical(ds.ID, spec); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: AggregateHistorical err = %v, want context.Canceled", workers, err)
		}
	}
}
