package tsstore

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"odh/internal/model"
)

// countPoints drains a historical scan of one source over all time.
func countPoints(t *testing.T, s *Store, source int64) int {
	t.Helper()
	it, err := s.HistoricalScan(source, math.MinInt64, math.MaxInt64, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("scan source %d: %v", source, err)
	}
	return n
}

// TestConcurrentIngestAcrossStructures runs parallel writers over RTS,
// IRTS, and MG sources with a background flush loop — the sharded write
// path's bread and butter — and verifies under -race that no point is
// lost or duplicated and that per-source catalog watermarks only move
// forward.
func TestConcurrentIngestAcrossStructures(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16, MaxOpenMGRows: 4}, 8)
	schema := f.schema(t, "concurrent", 2)

	const (
		nRTS, nIRTS, nMG = 6, 6, 8 // MG sources land in one group of 8
		perSource        = 400
	)
	var rtsSrc, irtsSrc, mgSrc []*model.DataSource
	for i := 0; i < nRTS; i++ {
		rtsSrc = append(rtsSrc, f.source(t, schema.ID, true, 10))
	}
	for i := 0; i < nIRTS; i++ {
		irtsSrc = append(irtsSrc, f.source(t, schema.ID, false, 10))
	}
	for i := 0; i < nMG; i++ {
		mgSrc = append(mgSrc, f.source(t, schema.ID, true, 10_000))
	}

	var wg sync.WaitGroup
	writer := func(ds *model.DataSource, tsFor func(i int) int64) {
		defer wg.Done()
		for i := 0; i < perSource; i++ {
			p := model.Point{Source: ds.ID, TS: tsFor(i), Values: []float64{float64(i), float64(ds.ID)}}
			if err := f.store.Write(p); err != nil {
				t.Errorf("source %d: %v", ds.ID, err)
				return
			}
		}
	}
	for _, ds := range rtsSrc {
		wg.Add(1)
		go writer(ds, func(i int) int64 { return int64(i+1) * 10 })
	}
	for _, ds := range irtsSrc {
		wg.Add(1)
		// Jittered but monotonic timestamps, with an occasional step back
		// to exercise the out-of-order batch split.
		go writer(ds, func(i int) int64 {
			ts := int64(i+1)*10 + int64(i%3)
			if i%97 == 96 {
				ts -= 40
			}
			return ts
		})
	}
	for _, ds := range mgSrc {
		wg.Add(1)
		// One point per 10s window, slight per-member offset inside it.
		off := ds.GroupSlot
		go writer(ds, func(i int) int64 { return int64(i+1)*10_000 + int64(off) })
	}

	// Background flush loop racing the writers.
	done := make(chan struct{})
	var flusherWG sync.WaitGroup
	flusherWG.Add(1)
	go func() {
		defer flusherWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				if err := f.store.Flush(); err != nil {
					t.Errorf("background flush: %v", err)
					return
				}
			}
		}
	}()

	// Watermark monitor: a source's catalog LastTS must never move
	// backwards while writers only append forward in time.
	var monitorWG sync.WaitGroup
	monitorWG.Add(1)
	var monitorStop atomic.Bool
	go func() {
		defer monitorWG.Done()
		last := make(map[int64]int64)
		for !monitorStop.Load() {
			for _, ds := range rtsSrc {
				st := f.cat.Stats(ds.ID)
				if prev, ok := last[ds.ID]; ok && st.PointCount > 0 && st.LastTS < prev {
					t.Errorf("source %d watermark moved back: %d -> %d", ds.ID, prev, st.LastTS)
					return
				}
				if st.PointCount > 0 {
					last[ds.ID] = st.LastTS
				}
			}
		}
	}()

	wg.Wait()
	close(done)
	flusherWG.Wait()
	monitorStop.Store(true)
	monitorWG.Wait()
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}

	total := int64(nRTS+nIRTS+nMG) * perSource
	if st := f.store.Stats(); st.PointsWritten != total {
		t.Fatalf("PointsWritten = %d, want %d", st.PointsWritten, total)
	}
	for _, ds := range append(append(append([]*model.DataSource{}, rtsSrc...), irtsSrc...), mgSrc...) {
		if n := countPoints(t, f.store, ds.ID); n != perSource {
			t.Errorf("source %d: scanned %d points, want %d", ds.ID, n, perSource)
		}
	}
}

// TestWriteBatchParallelMatchesSequential checks the fan-out path writes
// exactly what the sequential path would: same point counts per source,
// same scan results.
func TestWriteBatchParallelMatchesSequential(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 32}, 8)
	schema := f.schema(t, "parbatch", 1)
	const nSources, perSource = 16, 100
	srcs := make([]*model.DataSource, nSources)
	for i := range srcs {
		srcs[i] = f.source(t, schema.ID, true, 10)
	}
	// Interleaved mixed-source batch.
	var batch []model.Point
	for i := 0; i < perSource; i++ {
		for _, ds := range srcs {
			batch = append(batch, model.Point{Source: ds.ID, TS: int64(i+1) * 10, Values: []float64{float64(i)}})
		}
	}
	if err := f.store.WriteBatchParallel(batch, 8); err != nil {
		t.Fatal(err)
	}
	if err := f.store.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, ds := range srcs {
		if n := countPoints(t, f.store, ds.ID); n != perSource {
			t.Errorf("source %d: %d points, want %d", ds.ID, n, perSource)
		}
		st := f.cat.Stats(ds.ID)
		if st.PointCount != perSource {
			t.Errorf("source %d catalog count = %d, want %d", ds.ID, st.PointCount, perSource)
		}
		if st.FirstTS != 10 || st.LastTS != perSource*10 {
			t.Errorf("source %d range [%d,%d], want [10,%d]", ds.ID, st.FirstTS, st.LastTS, perSource*10)
		}
	}
	// Unknown source anywhere in the batch fails the whole batch before
	// any buffering.
	bad := []model.Point{
		{Source: srcs[0].ID, TS: 99_999, Values: []float64{1}},
		{Source: 0xDEAD, TS: 99_999, Values: []float64{1}},
	}
	if err := f.store.WriteBatchParallel(bad, 4); err == nil {
		t.Fatal("batch with unknown source must fail")
	}
	if n := countPoints(t, f.store, srcs[0].ID); n != perSource {
		t.Fatalf("failed batch leaked points: %d", n)
	}
}

// TestShardConfigOverride pins Config.Shards behavior.
func TestShardConfigOverride(t *testing.T) {
	f1 := newFixture(t, Config{Shards: 1}, 8)
	if got := f1.store.Shards(); got != 1 {
		t.Fatalf("Shards=1 gave %d shards", got)
	}
	f8 := newFixture(t, Config{Shards: 7}, 8)
	if got := f8.store.Shards(); got != 8 {
		t.Fatalf("Shards=7 should round up to 8, got %d", got)
	}
}
