package tsstore

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"

	"odh/internal/btree"
	"odh/internal/keyenc"
	"odh/internal/model"
)

// Iterator yields operational points. Implementations are not safe for
// concurrent use; create one per query. The caller owns every Point it
// receives: buffered points are cloned out of the ingest buffers, and
// rows backed by the shared decoded-blob cache are copied on emission,
// so mutating Point.Values never corrupts concurrent or future scans.
type Iterator interface {
	// Next returns the next point; ok is false when exhausted.
	Next() (p model.Point, ok bool)
	// Err returns the first error the iterator hit, if any.
	Err() error
	// BlobBytes returns the total ValueBlob bytes decoded so far — the
	// paper's query cost unit, surfaced to the executor for reporting.
	BlobBytes() int64
	// BlobsSkipped returns the number of batch records whose zone maps
	// excluded every pushed tag range, so they were never decoded.
	BlobsSkipped() int64
}

// pointBlobBytes estimates the ValueBlob bytes one in-memory point stands
// for: an 8-byte timestamp plus one float64 per tag. Buffered points that
// a dirty read serves never touch a blob, but they still carry real cost
// and must feed the blob-bytes accounting (the paper's cost unit), so the
// estimate cannot be zero.
func pointBlobBytes(ntags int) int64 { return 8 + 8*int64(ntags) }

// sliceIterAdapter iterates a materialized point slice, accruing the
// estimated blob bytes of each point it serves.
type sliceIterAdapter struct {
	points   []model.Point
	i        int
	perPoint int64
	accrued  int64
}

// newSliceIter wraps buffered points, sizing the per-point byte estimate
// from the row width.
func newSliceIter(points []model.Point) *sliceIterAdapter {
	it := &sliceIterAdapter{points: points}
	if len(points) > 0 {
		it.perPoint = pointBlobBytes(len(points[0].Values))
	}
	return it
}

func (it *sliceIterAdapter) Next() (model.Point, bool) {
	if it.i >= len(it.points) {
		return model.Point{}, false
	}
	p := it.points[it.i]
	it.i++
	it.accrued += it.perPoint
	return p, true
}

func (it *sliceIterAdapter) Err() error          { return nil }
func (it *sliceIterAdapter) BlobBytes() int64    { return it.accrued }
func (it *sliceIterAdapter) BlobsSkipped() int64 { return 0 }

// emptyIter yields nothing; zero blob bytes is its true cost.
type emptyIter struct{}

func (emptyIter) Next() (model.Point, bool) { return model.Point{}, false }
func (emptyIter) Err() error                { return nil }
func (emptyIter) BlobBytes() int64          { return 0 }
func (emptyIter) BlobsSkipped() int64       { return 0 }

// concatIter drains each input in turn.
type concatIter struct {
	iters []Iterator
	i     int
	err   error
}

func (it *concatIter) Next() (model.Point, bool) {
	for it.i < len(it.iters) {
		p, ok := it.iters[it.i].Next()
		if ok {
			return p, true
		}
		if err := it.iters[it.i].Err(); err != nil && it.err == nil {
			it.err = err
			return model.Point{}, false
		}
		it.i++
	}
	return model.Point{}, false
}

func (it *concatIter) Err() error { return it.err }

func (it *concatIter) BlobBytes() int64 {
	var total int64
	for _, sub := range it.iters {
		total += sub.BlobBytes()
	}
	return total
}

func (it *concatIter) BlobsSkipped() int64 {
	var total int64
	for _, sub := range it.iters {
		total += sub.BlobsSkipped()
	}
	return total
}

// mergeIter k-way merges timestamp-sorted inputs.
type mergeIter struct {
	iters []Iterator
	heads []model.Point
	live  []bool
	err   error
	init  bool
}

func newMergeIter(iters []Iterator) *mergeIter {
	return &mergeIter{
		iters: iters,
		heads: make([]model.Point, len(iters)),
		live:  make([]bool, len(iters)),
	}
}

func (it *mergeIter) prime() {
	for i, sub := range it.iters {
		p, ok := sub.Next()
		it.heads[i], it.live[i] = p, ok
		if !ok && sub.Err() != nil && it.err == nil {
			it.err = sub.Err()
		}
	}
	it.init = true
}

func (it *mergeIter) Next() (model.Point, bool) {
	if !it.init {
		it.prime()
	}
	if it.err != nil {
		return model.Point{}, false
	}
	best := -1
	for i, ok := range it.live {
		if !ok {
			continue
		}
		if best == -1 || it.heads[i].TS < it.heads[best].TS ||
			(it.heads[i].TS == it.heads[best].TS && it.heads[i].Source < it.heads[best].Source) {
			best = i
		}
	}
	if best == -1 {
		return model.Point{}, false
	}
	out := it.heads[best]
	p, ok := it.iters[best].Next()
	it.heads[best], it.live[best] = p, ok
	if !ok && it.iters[best].Err() != nil && it.err == nil {
		it.err = it.iters[best].Err()
	}
	return out, true
}

func (it *mergeIter) Err() error { return it.err }

func (it *mergeIter) BlobBytes() int64 {
	var total int64
	for _, sub := range it.iters {
		total += sub.BlobBytes()
	}
	return total
}

func (it *mergeIter) BlobsSkipped() int64 {
	var total int64
	for _, sub := range it.iters {
		total += sub.BlobsSkipped()
	}
	return total
}

// batchIter decodes RTS/IRTS batch records of one source from a tree range
// and yields the points inside [t1, t2) in timestamp order. Batches are
// keyed by their first timestamp but may overlap (out-of-order ingest
// splits a batch); the iterator merges overlapping batches by holding
// points back until every batch that could precede them has been loaded.
type batchIter struct {
	store     *Store
	cur       *btree.Cursor
	hi        []byte
	source    int64
	t1, t2    int64
	wantTags  []int
	tagRanges []TagRange
	skipped   int64
	queue     []model.Point // pending points, sorted by ts
	qi        int
	nextBase  int64 // first timestamp of the batch under the cursor
	done      bool  // no more batches in range
	err       error
	ctx       context.Context // nil = never canceled
	cache     *blobCache      // nil = bypass
	treeID    uint8
	sig       string // cache variant: canonical wantTags signature
	// vers is the cache version array snapshotted by the cursor's
	// leaf-load hook — pinned no later than the moment the current cell's
	// bytes were copied out of the tree, which is what makes the put-time
	// version check sound (see blobCache.vers).
	vers [cacheVerSlots]uint64
	// BlobBytesRead accumulates decoded blob sizes; the executor reports
	// it as the query's I/O cost, matching the paper's cost unit. Cache
	// hits do not add to it — nothing was read — they count in the
	// cache's BytesSaved instead.
	BlobBytesRead int64
}

// treeID maps a batch tree to its cache namespace.
func (s *Store) treeID(tree *btree.Tree) uint8 {
	switch tree {
	case s.rts:
		return cacheTreeRTS
	case s.irts:
		return cacheTreeIRTS
	default:
		return cacheTreeMG
	}
}

// newBatchIter scans tree for source's batches overlapping [t1, t2).
// lookback widens the scan start so a batch beginning before t1 but
// spilling into the window is found. A non-nil ctx is observed before
// every blob load, so canceling it stops the walk mid-scan.
func (s *Store) newBatchIter(ctx context.Context, tree *btree.Tree, cache *blobCache, source, t1, t2, lookback int64, wantTags []int, tagRanges []TagRange) *batchIter {
	loTS := t1
	if lookback > 0 {
		if loTS > math.MinInt64+lookback+1 {
			loTS = t1 - lookback - 1
		} else {
			loTS = math.MinInt64
		}
	}
	it := &batchIter{
		store:     s,
		source:    source,
		t1:        t1,
		t2:        t2,
		wantTags:  wantTags,
		tagRanges: tagRanges,
		hi:        keyenc.SourceTime(source, t2),
		ctx:       ctx,
		cache:     cache,
		treeID:    s.treeID(tree),
	}
	seekKey := keyenc.SourceTime(source, loTS)
	if cache != nil {
		it.sig = tagsSig(wantTags)
		it.cur = tree.SeekWithLoadHook(seekKey, func() { cache.snapshotAll(&it.vers) })
	} else {
		it.cur = tree.Seek(seekKey)
	}
	it.peek()
	return it
}

// peek records the base timestamp of the batch under the cursor, or marks
// the iterator done when the cursor left the (source, [lo, t2)) range.
func (it *batchIter) peek() {
	if !it.cur.Valid() {
		it.err = it.cur.Err()
		it.done = true
		return
	}
	key := it.cur.Key()
	if keyCompare(key, it.hi) >= 0 {
		it.done = true
		return
	}
	src, baseTS, err := keyenc.DecodeSourceTime(key)
	if err != nil {
		it.err = err
		it.done = true
		return
	}
	if src != it.source {
		it.done = true
		return
	}
	it.nextBase = baseTS
}

// loadOne decodes the batch under the cursor into the queue and advances.
// In lenient mode an unreadable or undecodable record is quarantined
// (skipped and counted) instead of failing the scan; a broken tree walk
// still aborts either way, since the cursor cannot advance past it.
func (it *batchIter) loadOne() {
	if err := ctxErr(it.ctx); err != nil {
		it.err = err
		it.done = true
		return
	}
	baseTS := it.nextBase
	bk := blobKey{tree: it.treeID, source: it.source, ts: baseTS}
	if it.cache != nil {
		if e, ok := it.cache.get(bk, it.sig); ok {
			it.cur.Next()
			it.peek()
			// The skip decision replays against the zone maps captured at
			// decode time, so hits behave exactly like the raw-blob path.
			if !e.overlaps(it.tagRanges) {
				it.skipped++
				return
			}
			it.cache.noteSaved(e.blobLen)
			it.enqueue(e.batch)
			return
		}
	}
	// The version guarding the cache insert was snapshotted when the
	// cursor copied this cell's leaf (the load hook), so it predates the
	// bytes Value() returns; read it before Next() can reload it.
	var ver uint64
	if it.cache != nil {
		ver = it.vers[bk.slot()]
	}
	blob, err := it.cur.Value()
	if err != nil {
		if it.store.lenient() {
			it.store.noteCorruptBlob()
			it.cur.Next()
			it.peek()
			return
		}
		it.err = err
		it.done = true
		return
	}
	it.cur.Next()
	it.peek()
	if !BlobOverlaps(blob, it.tagRanges) {
		it.skipped++
		return
	}
	if IsStubBlob(blob) {
		sum, ok := parseBlobSummary(blob, baseTS)
		if !ok {
			// A stub without a readable summary is corruption, not policy.
			if it.store.lenient() {
				it.store.noteCorruptBlob()
				return
			}
			it.err = fmt.Errorf("tsstore: corrupt stub blob source=%d ts=%d", it.source, baseTS)
			it.done = true
			return
		}
		if sum.rows == 0 || sum.lastTS < it.t1 || sum.firstTS >= it.t2 {
			return // every stubbed row falls outside the window: nothing lost
		}
		// Rows inside the window were dropped by tier policy: degrade
		// loudly rather than silently return fewer rows. Lenient mode
		// never swallows this — a stub is not a corrupt record.
		it.err = &StubbedRangeError{Tree: treeName(it.treeID), Source: it.source, TS: baseTS, FirstTS: sum.firstTS, LastTS: sum.lastTS}
		it.done = true
		return
	}
	batch, err := DecodeBlob(blob, baseTS, it.wantTags)
	if err != nil {
		if it.store.lenient() {
			it.store.noteCorruptBlob()
			return
		}
		it.err = err
		it.done = true
		return
	}
	it.BlobBytesRead += int64(len(blob))
	if it.cache != nil {
		zones, hasZones := blobZoneMaps(blob)
		it.cache.put(bk, it.sig, ver, batch, zones, hasZones, int64(len(blob)), cacheSummary(blob, baseTS, batch), nil)
	}
	it.enqueue(batch)
}

// enqueue appends the batch's in-range rows to the pending queue. When a
// cache is attached the batch is (or may become) shared across readers,
// so row values are copied on emission — callers own the Points an
// Iterator yields and may mutate them.
func (it *batchIter) enqueue(batch *DecodedBatch) {
	// Compact the emitted prefix before appending.
	if it.qi > 0 {
		it.queue = append(it.queue[:0], it.queue[it.qi:]...)
		it.qi = 0
	}
	shared := it.cache != nil
	before := len(it.queue)
	for i, ts := range batch.Timestamps {
		if ts >= it.t1 && ts < it.t2 {
			vals := batch.Rows[i]
			if shared {
				vals = append([]float64(nil), vals...)
			}
			it.queue = append(it.queue, model.Point{Source: it.source, TS: ts, Values: vals})
		}
	}
	// Batches rarely overlap; only re-sort when they do.
	if before > 0 && len(it.queue) > before && it.queue[before].TS < it.queue[before-1].TS {
		sort.SliceStable(it.queue, func(a, b int) bool { return it.queue[a].TS < it.queue[b].TS })
	}
}

func (it *batchIter) Next() (model.Point, bool) {
	for {
		if it.err != nil {
			return model.Point{}, false
		}
		if it.qi < len(it.queue) {
			// Safe to emit only when no unloaded batch could still start
			// before this point.
			if it.done || it.queue[it.qi].TS < it.nextBase {
				p := it.queue[it.qi]
				it.qi++
				return p, true
			}
		} else if it.done {
			return model.Point{}, false
		}
		it.loadOne()
	}
}

func (it *batchIter) Err() error          { return it.err }
func (it *batchIter) BlobBytes() int64    { return it.BlobBytesRead }
func (it *batchIter) BlobsSkipped() int64 { return it.skipped }

func keyCompare(a, b []byte) int { return bytes.Compare(a, b) }

// mgIter decodes MG records of one group in [t1, t2), yielding points for
// every reported member, or only onlySource when it is non-zero.
type mgIter struct {
	store         *Store
	cur           *btree.Cursor
	hi            []byte
	group         int64
	members       []int64
	onlySource    int64
	wantTags      []int
	tagRanges     []TagRange
	skipped       int64
	t1, t2        int64
	queue         []model.Point
	qi            int
	err           error
	ctx           context.Context // nil = never canceled
	cache         *blobCache      // nil = bypass
	sig           string
	vers          [cacheVerSlots]uint64 // see batchIter.vers
	BlobBytesRead int64
}

// groupWindow returns the bucketing window of an MG group (its first
// member's sampling interval).
func (s *Store) groupWindow(group int64) int64 {
	members := s.cat.GroupMembers(group)
	if len(members) == 0 {
		return 1
	}
	ds, ok := s.cat.Source(members[0])
	if !ok || ds.IntervalMs <= 0 {
		return 1
	}
	return ds.IntervalMs
}

// newMGIter scans group records whose window overlaps [t1, t2); the scan
// starts one window early because a record's members may carry offsets up
// to the window size. Emitted points are filtered to the exact range.
func (s *Store) newMGIter(ctx context.Context, group int64, cache *blobCache, t1, t2 int64, onlySource int64, wantTags []int, tagRanges []TagRange) *mgIter {
	window := s.groupWindow(group)
	lo := t1
	if lo > math.MinInt64+window {
		lo = t1 - window
	}
	it := &mgIter{
		store:      s,
		group:      group,
		members:    s.cat.GroupMembers(group),
		onlySource: onlySource,
		wantTags:   wantTags,
		tagRanges:  tagRanges,
		t1:         t1,
		t2:         t2,
		hi:         keyenc.SourceTime(group, t2),
		ctx:        ctx,
		cache:      cache,
	}
	seekKey := keyenc.SourceTime(group, lo)
	if cache != nil {
		it.sig = tagsSig(wantTags)
		it.cur = s.mg.SeekWithLoadHook(seekKey, func() { cache.snapshotAll(&it.vers) })
	} else {
		it.cur = s.mg.Seek(seekKey)
	}
	return it
}

func (it *mgIter) Next() (model.Point, bool) {
	for {
		if it.qi < len(it.queue) {
			p := it.queue[it.qi]
			it.qi++
			return p, true
		}
		if it.err != nil || !it.cur.Valid() {
			if it.err == nil {
				it.err = it.cur.Err()
			}
			return model.Point{}, false
		}
		if err := ctxErr(it.ctx); err != nil {
			it.err = err
			return model.Point{}, false
		}
		key := it.cur.Key()
		if keyCompare(key, it.hi) >= 0 {
			return model.Point{}, false
		}
		grp, ts, err := keyenc.DecodeSourceTime(key)
		if err != nil || grp != it.group {
			return model.Point{}, false
		}
		bk := blobKey{tree: cacheTreeMG, source: it.group, ts: ts}
		if it.cache != nil {
			if e, ok := it.cache.get(bk, it.sig); ok {
				it.cur.Next()
				if !e.overlaps(it.tagRanges) {
					it.skipped++
					continue
				}
				it.cache.noteSaved(e.blobLen)
				it.fillQueue(e.batch)
				continue
			}
		}
		// Read before Next() can reload the snapshot; see batchIter.
		var ver uint64
		if it.cache != nil {
			ver = it.vers[bk.slot()]
		}
		blob, err := it.cur.Value()
		if err != nil {
			if it.store.lenient() {
				it.store.noteCorruptBlob()
				it.cur.Next()
				continue
			}
			it.err = err
			return model.Point{}, false
		}
		it.cur.Next()
		if !BlobOverlaps(blob, it.tagRanges) {
			it.skipped++
			continue
		}
		if IsStubBlob(blob) {
			// MG records never tier today, but the read path stays honest
			// if one ever does: same contract as batchIter.
			sum, ok := parseBlobSummary(blob, ts)
			if !ok {
				if it.store.lenient() {
					it.store.noteCorruptBlob()
					continue
				}
				it.err = fmt.Errorf("tsstore: corrupt stub blob group=%d ts=%d", it.group, ts)
				return model.Point{}, false
			}
			if sum.rows == 0 || sum.lastTS < it.t1 || sum.firstTS >= it.t2 {
				continue
			}
			it.err = &StubbedRangeError{Tree: "ts.mg", Source: it.group, TS: ts, FirstTS: sum.firstTS, LastTS: sum.lastTS}
			return model.Point{}, false
		}
		batch, err := DecodeBlob(blob, ts, it.wantTags)
		if err != nil {
			if it.store.lenient() {
				it.store.noteCorruptBlob()
				continue
			}
			it.err = err
			return model.Point{}, false
		}
		it.BlobBytesRead += int64(len(blob))
		if it.cache != nil {
			zones, hasZones := blobZoneMaps(blob)
			it.cache.put(bk, it.sig, ver, batch, zones, hasZones, int64(len(blob)), cacheSummary(blob, ts, batch), nil)
		}
		it.fillQueue(batch)
	}
}

// fillQueue replaces the pending queue with the record's in-range member
// points. When a cache is attached the batch is (or may become) shared,
// so row values are copied on emission — callers own emitted Points.
func (it *mgIter) fillQueue(batch *DecodedBatch) {
	it.queue = it.queue[:0]
	it.qi = 0
	shared := it.cache != nil
	for i, slot := range batch.Slots {
		if slot >= len(it.members) {
			continue
		}
		src := it.members[slot]
		if it.onlySource != 0 && src != it.onlySource {
			continue
		}
		pts := batch.Timestamps[i]
		if pts < it.t1 || pts >= it.t2 {
			continue
		}
		vals := batch.Rows[i]
		if shared {
			vals = append([]float64(nil), vals...)
		}
		it.queue = append(it.queue, model.Point{Source: src, TS: pts, Values: vals})
	}
}

func (it *mgIter) Err() error          { return it.err }
func (it *mgIter) BlobBytes() int64    { return it.BlobBytesRead }
func (it *mgIter) BlobsSkipped() int64 { return it.skipped }

// snapshotSourceBuffer copies the buffered points of one source that fall
// in [t1, t2) — the dirty-read path ("the query component adopts a 'dirty
// read' isolation level to access uncommitted rows from concurrent
// insertions").
func (s *Store) snapshotSourceBuffer(source, t1, t2 int64) []model.Point {
	sh := s.shardFor(source)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	buf, ok := sh.buffers[source]
	if !ok {
		return nil
	}
	var out []model.Point
	for _, p := range buf.points {
		if p.TS >= t1 && p.TS < t2 {
			out = append(out, p.Clone())
		}
	}
	return out
}

// snapshotGroupBuffer copies buffered MG rows of a group in [t1, t2),
// optionally restricted to one source.
func (s *Store) snapshotGroupBuffer(group, t1, t2, onlySource int64) []model.Point {
	sh := s.shardFor(group)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	gb, ok := sh.groups[group]
	if !ok {
		return nil
	}
	var out []model.Point
	for _, row := range gb.rows {
		for slot, present := range row.present {
			if !present {
				continue
			}
			pts := row.tss[slot]
			if pts < t1 || pts >= t2 {
				continue
			}
			src := gb.members[slot]
			if onlySource != 0 && src != onlySource {
				continue
			}
			vals := make([]float64, len(row.values[slot]))
			copy(vals, row.values[slot])
			out = append(out, model.Point{Source: src, TS: pts, Values: vals})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// HistoricalScan returns the points of one source with t1 <= ts < t2, in
// timestamp order, decoding only wantTags (nil = all). It merges persisted
// batches, still-unreorganized MG records, and the in-memory ingest buffer
// (dirty read).
func (s *Store) HistoricalScan(source, t1, t2 int64, wantTags []int, tagRanges ...TagRange) (Iterator, error) {
	return s.HistoricalScanOpts(source, t1, t2, wantTags, ScanOptions{}, tagRanges...)
}

// HistoricalScanOpts is HistoricalScan with scan tuning. With Workers > 1
// the batch walk (and the MG record walk, for group-ingesting sources) is
// split into ts-disjoint sub-ranges drained on the worker pool; because
// the sub-ranges partition the window by timestamp and the merge is
// stable, the output is identical to the serial scan.
func (s *Store) HistoricalScanOpts(source, t1, t2 int64, wantTags []int, opts ScanOptions, tagRanges ...TagRange) (Iterator, error) {
	ds, ok := s.cat.Source(source)
	if !ok {
		return nil, fmt.Errorf("tsstore: unknown data source %d", source)
	}
	cache := s.scanCache(opts)
	workers := clampWorkers(opts.Workers)
	stats := s.cat.Stats(source)
	ranges := splitScanRange(t1, t2, stats, workers)
	var parts []Iterator
	if ds.IngestStructure() == model.MG {
		// Reorganized history lives per-source in RTS/IRTS; the remainder
		// is still in the group's MG records and buffer. Every point lives
		// in exactly one structure, so scanning all three over the full
		// range is exact; the watermark only gates whether the per-source
		// tree can contain anything.
		if stats.BatchCount > 0 {
			tree := s.treeFor(ds.HistoricalStructure())
			for _, r := range ranges {
				parts = append(parts, s.newBatchIter(opts.Ctx, tree, cache, source, r.t1, r.t2, stats.MaxSpanMs, wantTags, tagRanges))
			}
		}
		for _, r := range ranges {
			parts = append(parts, s.newMGIter(opts.Ctx, ds.Group, cache, r.t1, r.t2, source, wantTags, tagRanges))
		}
		if buf := s.snapshotGroupBuffer(ds.Group, t1, t2, source); len(buf) > 0 {
			parts = append(parts, newSliceIter(buf))
		}
	} else {
		tree := s.treeFor(ds.IngestStructure())
		for _, r := range ranges {
			parts = append(parts, s.newBatchIter(opts.Ctx, tree, cache, source, r.t1, r.t2, stats.MaxSpanMs, wantTags, tagRanges))
		}
		if buf := s.snapshotSourceBuffer(source, t1, t2); len(buf) > 0 {
			parts = append(parts, newSliceIter(buf))
		}
	}
	if workers > 1 && len(parts) > 1 {
		parts = s.drainParts(opts.Ctx, parts, workers)
	}
	if len(parts) == 0 {
		return emptyIter{}, nil
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return newMergeIter(parts), nil
}

// SliceScan returns points of every source of a schema in [t1, t2) —
// the paper's slice query ("data generated by multiple data sources for a
// short time window"). MG groups serve slices directly from their
// time-keyed records; RTS/IRTS sources are visited per source. Output is
// grouped per source/group, not globally time-sorted.
func (s *Store) SliceScan(schemaID int64, t1, t2 int64, wantTags []int, tagRanges ...TagRange) (Iterator, error) {
	return s.SliceScanOpts(schemaID, t1, t2, wantTags, ScanOptions{}, tagRanges...)
}

// SliceScanOpts is SliceScan with scan tuning. With Workers > 1 the
// per-source and per-group parts are drained concurrently on the worker
// pool and concatenated in their original order, so the output matches
// the serial scan exactly.
func (s *Store) SliceScanOpts(schemaID int64, t1, t2 int64, wantTags []int, opts ScanOptions, tagRanges ...TagRange) (Iterator, error) {
	cache := s.scanCache(opts)
	workers := clampWorkers(opts.Workers)
	var parts []Iterator
	// MG groups first: each group covers groupSize sources per record.
	for _, g := range s.cat.GroupsBySchema(schemaID) {
		// Reorganized stripes and duplicate-sample overflow points live in
		// the members' per-source trees.
		for _, src := range s.cat.GroupMembers(g) {
			ds, ok := s.cat.Source(src)
			if !ok {
				continue
			}
			stats := s.cat.Stats(src)
			if stats.BatchCount == 0 {
				continue
			}
			parts = append(parts, s.newBatchIter(opts.Ctx, s.treeFor(ds.HistoricalStructure()), cache, src, t1, t2, stats.MaxSpanMs, wantTags, tagRanges))
		}
		parts = append(parts, s.newMGIter(opts.Ctx, g, cache, t1, t2, 0, wantTags, tagRanges))
		if buf := s.snapshotGroupBuffer(g, t1, t2, 0); len(buf) > 0 {
			parts = append(parts, newSliceIter(buf))
		}
	}
	// RTS/IRTS sources: per-source seeks.
	for _, src := range s.cat.SourcesBySchema(schemaID) {
		ds, ok := s.cat.Source(src)
		if !ok || ds.IngestStructure() == model.MG {
			continue
		}
		stats := s.cat.Stats(src)
		if stats.PointCount > 0 && (stats.LastTS < t1 || stats.FirstTS >= t2) && s.bufferEmpty(src) {
			continue // partition elimination: source has no data in range
		}
		parts = append(parts, s.newBatchIter(opts.Ctx, s.treeFor(ds.IngestStructure()), cache, src, t1, t2, stats.MaxSpanMs, wantTags, tagRanges))
		if buf := s.snapshotSourceBuffer(src, t1, t2); len(buf) > 0 {
			parts = append(parts, newSliceIter(buf))
		}
	}
	if workers > 1 && len(parts) > 1 {
		parts = s.drainParts(opts.Ctx, parts, workers)
	}
	if len(parts) == 0 {
		return emptyIter{}, nil
	}
	return &concatIter{iters: parts}, nil
}

// MultiHistoricalScan concatenates historical scans for an explicit list
// of sources (the id IN (...) pushdown). Output is grouped per source.
func (s *Store) MultiHistoricalScan(sources []int64, t1, t2 int64, wantTags []int, tagRanges ...TagRange) (Iterator, error) {
	return s.MultiHistoricalScanOpts(sources, t1, t2, wantTags, ScanOptions{}, tagRanges...)
}

// MultiHistoricalScanOpts is MultiHistoricalScan with scan tuning. With
// Workers > 1 each source's (serial) historical scan becomes one part on
// the worker pool; parts are concatenated in list order.
func (s *Store) MultiHistoricalScanOpts(sources []int64, t1, t2 int64, wantTags []int, opts ScanOptions, tagRanges ...TagRange) (Iterator, error) {
	workers := clampWorkers(opts.Workers)
	parts := make([]Iterator, 0, len(sources))
	for _, src := range sources {
		// Each part stays serial inside; the fan-out is across sources.
		it, err := s.HistoricalScanOpts(src, t1, t2, wantTags, ScanOptions{NoCache: opts.NoCache, Ctx: opts.Ctx}, tagRanges...)
		if err != nil {
			// Unknown ids in the IN list simply contribute no rows.
			continue
		}
		parts = append(parts, it)
	}
	if workers > 1 && len(parts) > 1 {
		parts = s.drainParts(opts.Ctx, parts, workers)
	}
	if len(parts) == 0 {
		return emptyIter{}, nil
	}
	return &concatIter{iters: parts}, nil
}

// bufferEmpty reports whether a source has no buffered points.
func (s *Store) bufferEmpty(source int64) bool {
	sh := s.shardFor(source)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	buf, ok := sh.buffers[source]
	return !ok || len(buf.points) == 0
}

func (s *Store) treeFor(st model.Structure) *btree.Tree {
	switch st {
	case model.RTS:
		return s.rts
	case model.IRTS:
		return s.irts
	default:
		return s.mg
	}
}
