package tsstore

import (
	"math"
	"testing"
	"testing/quick"

	"odh/internal/compress"
	"odh/internal/model"
)

func mkPoints(source int64, baseTS, interval int64, vals [][]float64) []model.Point {
	pts := make([]model.Point, len(vals))
	for i, v := range vals {
		pts[i] = model.Point{Source: source, TS: baseTS + int64(i)*interval, Values: v}
	}
	return pts
}

func TestEncodeDecodeRTS(t *testing.T) {
	vals := [][]float64{{1, 10}, {2, 20}, {3, model.NullValue}, {4, 40}}
	pts := mkPoints(7, 1000, 50, vals)
	blob := EncodeRTS(pts, 2, 50, encodeOpts{})
	dec, err := DecodeBlob(blob, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Structure != model.RTS || len(dec.Rows) != 4 {
		t.Fatalf("decoded %+v", dec)
	}
	for i, ts := range dec.Timestamps {
		if ts != 1000+int64(i)*50 {
			t.Fatalf("ts[%d] = %d", i, ts)
		}
	}
	if dec.Rows[0][0] != 1 || dec.Rows[3][1] != 40 {
		t.Fatalf("rows: %v", dec.Rows)
	}
	if !model.IsNull(dec.Rows[2][1]) {
		t.Fatal("NULL lost")
	}
}

func TestEncodeDecodeIRTS(t *testing.T) {
	pts := []model.Point{
		{Source: 1, TS: 100, Values: []float64{1}},
		{Source: 1, TS: 137, Values: []float64{2}},
		{Source: 1, TS: 512, Values: []float64{3}},
	}
	blob := EncodeIRTS(pts, 1, encodeOpts{})
	dec, err := DecodeBlob(blob, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 137, 512}
	for i, ts := range dec.Timestamps {
		if ts != want[i] {
			t.Fatalf("ts[%d] = %d", i, ts)
		}
	}
}

func TestEncodeDecodeMGWithOffsets(t *testing.T) {
	present := []bool{true, false, true, true}
	rows := [][]float64{{1, 2}, nil, {3, model.NullValue}, {5, 6}}
	offsets := []int64{0, 0, 120, 7450}
	blob := EncodeMG(present, rows, offsets, 2, encodeOpts{})
	dec, err := DecodeBlob(blob, 900000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Slots) != 3 || dec.Slots[0] != 0 || dec.Slots[1] != 2 || dec.Slots[2] != 3 {
		t.Fatalf("slots: %v", dec.Slots)
	}
	if dec.Timestamps[0] != 900000 || dec.Timestamps[1] != 900120 || dec.Timestamps[2] != 907450 {
		t.Fatalf("timestamps: %v", dec.Timestamps)
	}
	if dec.Rows[2][1] != 6 {
		t.Fatalf("rows: %v", dec.Rows)
	}
	if !model.IsNull(dec.Rows[1][1]) {
		t.Fatal("NULL lost in MG")
	}
}

func TestDecodeBlobCorruption(t *testing.T) {
	pts := mkPoints(1, 0, 10, [][]float64{{1}, {2}})
	blob := EncodeRTS(pts, 1, 10, encodeOpts{})
	if _, err := DecodeBlob(nil, 0, nil); err == nil {
		t.Fatal("empty blob accepted")
	}
	if _, err := DecodeBlob([]byte{99}, 0, nil); err == nil {
		t.Fatal("unknown format accepted")
	}
	for cut := 1; cut < len(blob); cut += 3 {
		if _, err := DecodeBlob(blob[:cut], 0, nil); err == nil {
			t.Fatalf("truncated blob (%d bytes) accepted", cut)
		}
	}
}

func TestBlobRoundtripQuick(t *testing.T) {
	check := func(seedVals []float64, ntagsRaw uint8) bool {
		ntags := int(ntagsRaw%4) + 1
		if len(seedVals) == 0 {
			return true
		}
		n := len(seedVals)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, ntags)
			for j := range rows[i] {
				v := seedVals[(i+j)%n]
				if math.IsNaN(v) {
					v = model.NullValue
				}
				rows[i][j] = v
			}
		}
		pts := mkPoints(3, 500, 25, rows)
		blob := EncodeRTS(pts, ntags, 25, encodeOpts{})
		dec, err := DecodeBlob(blob, 500, nil)
		if err != nil || len(dec.Rows) != n {
			return false
		}
		for i := range rows {
			for j := range rows[i] {
				a, b := rows[i][j], dec.Rows[i][j]
				if model.IsNull(a) != model.IsNull(b) {
					return false
				}
				if !model.IsNull(a) && math.Float64bits(a) != math.Float64bits(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlobOverlapsZoneMaps(t *testing.T) {
	// Tag 0 in [1, 4], tag 1 all NULL.
	vals := [][]float64{{1, model.NullValue}, {4, model.NullValue}}
	blob := EncodeRTS(mkPoints(1, 0, 10, vals), 2, 10, encodeOpts{})

	cases := []struct {
		ranges []TagRange
		want   bool
	}{
		{nil, true},
		{[]TagRange{{Tag: 0, Lo: 2, Hi: 3}}, true},    // inside
		{[]TagRange{{Tag: 0, Lo: 5, Hi: 9}}, false},   // above max
		{[]TagRange{{Tag: 0, Lo: -9, Hi: 0}}, false},  // below min
		{[]TagRange{{Tag: 0, Lo: 4, Hi: 99}}, true},   // touches max
		{[]TagRange{{Tag: 1, Lo: 0, Hi: 100}}, false}, // all-NULL column never matches
		{[]TagRange{{Tag: 9, Lo: 0, Hi: 1}}, true},    // out-of-range tag: no skip
	}
	for i, c := range cases {
		if got := BlobOverlaps(blob, c.ranges); got != c.want {
			t.Fatalf("case %d: BlobOverlaps = %v, want %v", i, got, c.want)
		}
	}
	// IRTS and MG headers must be peekable too.
	irts := EncodeIRTS(mkPoints(1, 0, 10, vals), 2, encodeOpts{})
	if BlobOverlaps(irts, []TagRange{{Tag: 0, Lo: 50, Hi: 60}}) {
		t.Fatal("IRTS zone map not consulted")
	}
	mg := EncodeMG([]bool{true, true}, vals, []int64{0, 5}, 2, encodeOpts{})
	if BlobOverlaps(mg, []TagRange{{Tag: 0, Lo: 50, Hi: 60}}) {
		t.Fatal("MG zone map not consulted")
	}
}

func TestZoneMapSkipInScan(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 10}, 0)
	s := f.schema(t, "zones", 1)
	ds := f.source(t, s.ID, true, 10)
	// 10 batches: batch k holds values [k*100, k*100+9].
	for i := 0; i < 100; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{float64(i/10*100 + i%10)}})
	}
	f.store.Flush()
	// A range matching only batch 7's values must skip the other 9 blobs.
	it, err := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil, TagRange{Tag: 0, Lo: 700, Hi: 709})
	if err != nil {
		t.Fatal(err)
	}
	pts := collect(t, it)
	if len(pts) != 10 {
		t.Fatalf("scan returned %d points, want 10 (zone maps must not drop matches)", len(pts))
	}
	if it.BlobsSkipped() != 9 {
		t.Fatalf("skipped %d blobs, want 9", it.BlobsSkipped())
	}
}

func TestZoneMapLossyBoundsStillSafe(t *testing.T) {
	// With lossy compression the decoded values can deviate from the
	// originals by maxDev; zone maps are computed on the originals, so a
	// range query needs its bounds widened by maxDev if it wants decoded
	// values near the boundary. This test pins the documented behaviour:
	// exact-original bounds never skip blobs containing original matches.
	page := newFixture(t, Config{BatchSize: 16}, 0)
	schema, err := page.cat.CreateSchemaType("lossy", []model.TagDef{
		{Name: "v", Compression: compress.Policy{MaxDev: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := page.cat.RegisterSource(model.DataSource{SchemaID: schema.ID, Regular: true, IntervalMs: 10})
	for i := 0; i < 32; i++ {
		page.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{float64(i)}})
	}
	page.store.Flush()
	it, err := page.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil, TagRange{Tag: 0, Lo: 10, Hi: 20})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("zone maps dropped all rows under lossy compression")
	}
}

func BenchmarkZoneMapSkip(b *testing.B) {
	for _, withRanges := range []bool{true, false} {
		name := "with-zonemap-pushdown"
		if !withRanges {
			name = "full-decode"
		}
		b.Run(name, func(b *testing.B) {
			f := newFixture(b, Config{BatchSize: 100}, 0)
			s := f.schema(b, "zb", 4)
			ds := f.source(b, s.ID, true, 10)
			for i := 0; i < 20000; i++ {
				f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10),
					Values: []float64{float64(i), 1, 2, 3}})
			}
			f.store.Flush()
			var ranges []TagRange
			if withRanges {
				ranges = []TagRange{{Tag: 0, Lo: 10000, Hi: 10050}}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it, err := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil, ranges...)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					p, ok := it.Next()
					if !ok {
						break
					}
					if !withRanges || (p.Values[0] >= 10000 && p.Values[0] <= 10050) {
						n++
					}
				}
				if withRanges && n != 51 {
					b.Fatalf("matches = %d", n)
				}
			}
		})
	}
}
