package tsstore

import (
	"odh/internal/keyenc"
	"odh/internal/model"
)

// The reorganizer implements the third and fourth rows of the paper's
// Table 1: low-frequency data ingests through MG (one record per
// timestamp per group) but historical queries over a single source want
// per-source sequential batches, so older MG records are converted into
// RTS (regular sources) or IRTS (irregular sources) batches. Slice
// queries keep using MG for the unconverted recent stripe; the per-group
// watermark separates the two regimes.

// ReorgResult summarizes one reorganization pass.
type ReorgResult struct {
	// Groups is the number of groups touched.
	Groups int
	// RecordsConverted is the number of MG records consumed.
	RecordsConverted int
	// BatchesWritten is the number of RTS/IRTS batches produced.
	BatchesWritten int
	// PointsMoved is the number of operational points rehomed.
	PointsMoved int
}

// ReorganizeGroup converts the MG records of one group with ts < upTo into
// per-source RTS/IRTS batches, deletes them from the MG tree, and advances
// the group's watermark. It is safe to run while ingest continues; the
// affected stripe is strictly below any timestamps still being written
// when upTo is chosen below the oldest open buffer row.
func (s *Store) ReorganizeGroup(group int64, upTo int64) (ReorgResult, error) {
	res := ReorgResult{}
	members := s.cat.GroupMembers(group)
	if len(members) == 0 {
		return res, nil
	}
	wm := s.watermark(group)
	if upTo <= wm {
		return res, nil // stripe already converted
	}
	ds0, ok := s.cat.Source(members[0])
	if !ok {
		return res, nil
	}
	schema, ok := s.cat.SchemaByID(ds0.SchemaID)
	if !ok {
		return res, nil
	}

	// Gather the stripe per member.
	perSource := make(map[int64][]model.Point, len(members))
	var keys [][]byte
	var reclaimedBlobBytes, reclaimedPoints int64
	lo := keyenc.SourceTime(group, wm)
	hi := keyenc.SourceTime(group, upTo)
	err := s.mg.Scan(lo, hi, func(k, v []byte) bool {
		_, ts, err := keyenc.DecodeSourceTime(k)
		if err != nil {
			return true
		}
		batch, err := DecodeBlob(v, ts, nil)
		if err != nil {
			return true
		}
		for i, slot := range batch.Slots {
			if slot >= len(members) {
				continue
			}
			src := members[slot]
			// Each member's exact timestamp is the window base plus its
			// stored offset, carried in the decoded batch.
			perSource[src] = append(perSource[src], model.Point{Source: src, TS: batch.Timestamps[i], Values: batch.Rows[i]})
			reclaimedPoints++
		}
		reclaimedBlobBytes += int64(len(v))
		keys = append(keys, append([]byte(nil), k...))
		res.RecordsConverted++
		return true
	})
	if err != nil {
		return res, err
	}
	if res.RecordsConverted == 0 {
		return res, s.setWatermark(group, upTo)
	}

	// Write per-source batches. MG scans are time-ordered, so each
	// member's points arrive sorted.
	for _, src := range members {
		pts := perSource[src]
		if len(pts) == 0 {
			continue
		}
		ds, ok := s.cat.Source(src)
		if !ok {
			continue
		}
		n, err := s.writeHistoricalBatches(ds, schema, pts)
		if err != nil {
			return res, err
		}
		res.BatchesWritten += n
		res.PointsMoved += len(pts)
	}

	// Remove the converted MG records and advance the watermark.
	for _, k := range keys {
		err := s.mg.Delete(k)
		if _, ts, derr := keyenc.DecodeSourceTime(k); derr == nil {
			s.invalidateBlob(cacheTreeMG, group, ts)
		}
		if err != nil {
			return res, err
		}
	}
	if err := s.cat.UpdateGroupStats(group, model.SourceStats{
		BatchCount: -int64(res.RecordsConverted),
		PointCount: -reclaimedPoints,
		BlobBytes:  -reclaimedBlobBytes,
	}); err != nil {
		return res, err
	}
	res.Groups = 1
	return res, s.setWatermark(group, upTo)
}

// writeHistoricalBatches packs a sorted per-source point run into RTS or
// IRTS batches of at most batchSize points, splitting RTS runs at gaps.
func (s *Store) writeHistoricalBatches(ds *model.DataSource, schema *model.SchemaType, pts []model.Point) (int, error) {
	n, _, err := s.writeBatchesOpts(ds, schema, pts, ds.HistoricalStructure(), s.encodeOptsFor(schema), s.cfg.BatchSize)
	return n, err
}

// writeBatchesOpts is the parameterized batch writer behind both the
// reorganizer (store defaults) and the cold compaction pass, which rewrites
// aged history at a larger batch granularity with max-effort encoding. It
// returns the batch count and the blob bytes written.
func (s *Store) writeBatchesOpts(ds *model.DataSource, schema *model.SchemaType, pts []model.Point, structure model.Structure, opts encodeOpts, batchSize int) (int, int64, error) {
	ntags := len(schema.Tags)
	tree := s.treeFor(structure)
	batches := 0
	var blobBytes int64
	flush := func(run []model.Point) error {
		if len(run) == 0 {
			return nil
		}
		var blob []byte
		if structure == model.RTS {
			blob = EncodeRTS(run, ntags, ds.IntervalMs, opts)
		} else {
			blob = EncodeIRTS(run, ntags, opts)
		}
		err := tree.Put(keyenc.SourceTime(ds.ID, run[0].TS), blob)
		s.invalidateBlob(s.treeID(tree), ds.ID, run[0].TS)
		if err != nil {
			return err
		}
		first, last := run[0].TS, run[len(run)-1].TS
		if err := s.cat.UpdateStats(ds.ID, model.SourceStats{
			BatchCount: 1,
			PointCount: int64(len(run)),
			BlobBytes:  int64(len(blob)),
			FirstTS:    first,
			LastTS:     last,
			MaxSpanMs:  last - first,
		}); err != nil {
			return err
		}
		batches++
		blobBytes += int64(len(blob))
		return nil
	}
	for _, run := range splitBatchRuns(pts, structure, ds.IntervalMs, batchSize) {
		if err := flush(run); err != nil {
			return batches, blobBytes, err
		}
	}
	return batches, blobBytes, nil
}

// splitBatchRuns partitions a sorted point slice into batch runs of at
// most batchSize points, splitting RTS runs at sampling gaps and capping
// each run's time span at batchSize sampling intervals so batches stay
// aligned with the data's natural cadence; retention (which drops whole
// batches) then keeps working after reorganization, coalescing, and cold
// compaction. The returned runs alias pts. The split is deterministic:
// the cold pass dry-runs it for key-collision checks before the writer
// replays it.
func splitBatchRuns(pts []model.Point, structure model.Structure, intervalMs int64, batchSize int) [][]model.Point {
	maxSpan := int64(0)
	if intervalMs > 0 {
		maxSpan = int64(batchSize) * intervalMs
	}
	var runs [][]model.Point
	start := 0
	for i := 1; i < len(pts); i++ {
		gap := structure == model.RTS && pts[i].TS != pts[i-1].TS+intervalMs
		tooWide := maxSpan > 0 && pts[i].TS-pts[start].TS >= maxSpan
		if gap || tooWide || i-start >= batchSize {
			runs = append(runs, pts[start:i])
			start = i
		}
	}
	if start < len(pts) {
		runs = append(runs, pts[start:])
	}
	return runs
}

// writeHistoricalPoint stores a single point directly in the source's
// historical structure (the MG duplicate-sample overflow path).
func (s *Store) writeHistoricalPoint(ds *model.DataSource, schema *model.SchemaType, p model.Point) error {
	_, err := s.writeHistoricalBatches(ds, schema, []model.Point{p.Clone()})
	return err
}

// Reorganize converts every group of a schema up to the given timestamp.
// Historians typically run it periodically with upTo = now - retention of
// the "recent" slice-query window.
func (s *Store) Reorganize(schemaID int64, upTo int64) (ReorgResult, error) {
	total := ReorgResult{}
	for _, g := range s.cat.GroupsBySchema(schemaID) {
		res, err := s.ReorganizeGroup(g, upTo)
		if err != nil {
			return total, err
		}
		total.Groups += res.Groups
		total.RecordsConverted += res.RecordsConverted
		total.BatchesWritten += res.BatchesWritten
		total.PointsMoved += res.PointsMoved
	}
	return total, nil
}
