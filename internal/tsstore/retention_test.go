package tsstore

import (
	"errors"
	"math"
	"testing"

	"odh/internal/model"
)

var errOutOfOrder = errors.New("scan out of order")

func TestDropBeforeRTS(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 10}, 0)
	s := f.schema(t, "ret", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 100; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{float64(i)}})
	}
	f.store.Flush()
	// Drop everything before t=500: batches [0,100)...[400,500) go,
	// [500,...] stay.
	res, err := f.store.DropBefore(s.ID, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsDropped != 5 {
		t.Fatalf("dropped %d records, want 5", res.RecordsDropped)
	}
	if res.BytesReclaimed <= 0 {
		t.Fatal("no bytes reclaimed")
	}
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	pts := collect(t, it)
	if len(pts) != 50 {
		t.Fatalf("%d points survive, want 50", len(pts))
	}
	if pts[0].TS != 500 {
		t.Fatalf("first surviving ts = %d", pts[0].TS)
	}
	// Idempotent.
	res2, err := f.store.DropBefore(s.ID, 500)
	if err != nil || res2.RecordsDropped != 0 {
		t.Fatalf("second drop: %+v %v", res2, err)
	}
}

func TestDropBeforeKeepsStraddlingBatch(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 10}, 0)
	s := f.schema(t, "straddle", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 20; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{1}})
	}
	f.store.Flush()
	// Cutoff 50 lands inside the first batch [0, 100): nothing dropped.
	res, err := f.store.DropBefore(s.ID, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsDropped != 0 {
		t.Fatalf("straddling batch dropped: %+v", res)
	}
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	if got := len(collect(t, it)); got != 20 {
		t.Fatalf("points = %d", got)
	}
}

func TestDropBeforeMG(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8}, 4)
	s := f.schema(t, "mgret", 1)
	var sources []*model.DataSource
	for i := 0; i < 4; i++ {
		sources = append(sources, f.source(t, s.ID, true, 900000))
	}
	for round := 0; round < 8; round++ {
		ts := int64(900000 * (round + 1))
		for _, ds := range sources {
			f.store.Write(model.Point{Source: ds.ID, TS: ts, Values: []float64{float64(round)}})
		}
	}
	f.store.Flush()
	cutoff := int64(900000*4 + 900001) // safely past round 3's window
	res, err := f.store.DropBefore(s.ID, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsDropped == 0 {
		t.Fatal("nothing dropped from MG")
	}
	it, _ := f.store.SliceScan(s.ID, 0, math.MaxInt64, nil)
	pts := collect(t, it)
	for _, p := range pts {
		if p.TS < cutoff-900000 {
			t.Fatalf("point at %d survived cutoff %d", p.TS, cutoff)
		}
	}
	if len(pts) == 0 {
		t.Fatal("everything dropped")
	}
}

func TestDropBeforeThenIngestContinues(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 4}, 0)
	s := f.schema(t, "cont", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 40; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{1}})
	}
	f.store.Flush()
	if _, err := f.store.DropBefore(s.ID, 200); err != nil {
		t.Fatal(err)
	}
	// New data lands and reads fine after retention.
	for i := 40; i < 48; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{2}})
	}
	f.store.Flush()
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	pts := collect(t, it)
	if len(pts) != 28 { // 20 surviving + 8 new
		t.Fatalf("points = %d, want 28", len(pts))
	}
}

// TestConcurrentIngestAndQuery exercises the dirty-read path under
// concurrency: writers stream points while readers continuously scan.
// The race detector validates synchronization; the assertions validate
// that readers only ever see monotonically complete prefixes.
func TestConcurrentIngestAndQuery(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 32}, 0)
	s := f.schema(t, "conc", 2)
	var ids []int64
	for i := 0; i < 4; i++ {
		ds := f.source(t, s.ID, true, 10)
		ids = append(ids, ds.ID)
	}
	const perSource = 2000
	done := make(chan error, len(ids)+2)
	for _, id := range ids {
		go func(id int64) {
			for i := 0; i < perSource; i++ {
				if err := f.store.Write(model.Point{Source: id, TS: int64(i * 10), Values: []float64{float64(i), 1}}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(id)
	}
	for r := 0; r < 2; r++ {
		go func() {
			for scan := 0; scan < 50; scan++ {
				it, err := f.store.HistoricalScan(ids[scan%len(ids)], 0, math.MaxInt64, nil)
				if err != nil {
					done <- err
					return
				}
				prev := int64(-1)
				for {
					p, ok := it.Next()
					if !ok {
						break
					}
					if p.TS <= prev {
						done <- errOutOfOrder
						return
					}
					prev = p.TS
				}
				if err := it.Err(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < len(ids)+2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	f.store.Flush()
	for _, id := range ids {
		it, _ := f.store.HistoricalScan(id, 0, math.MaxInt64, nil)
		if got := len(collect(t, it)); got != perSource {
			t.Fatalf("source %d: %d points, want %d", id, got, perSource)
		}
	}
}

func TestCoalesceMergesSmallBatches(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 16}, 0)
	s := f.schema(t, "co", 1)
	ds := f.source(t, s.ID, false, 100) // IRTS
	// Interleave two time ranges so out-of-order flushes create many
	// small batches.
	for i := 0; i < 40; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i*200 + 100), Values: []float64{float64(i)}})
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 200), Values: []float64{float64(i) + 0.5}})
	}
	f.store.Flush()
	res, err := f.store.CoalesceSource(ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchesAfter >= res.BatchesBefore {
		t.Fatalf("coalesce did not shrink: %d -> %d", res.BatchesBefore, res.BatchesAfter)
	}
	if res.BatchesAfter > 6 { // 80 points / 16 per batch = 5
		t.Fatalf("batches after = %d", res.BatchesAfter)
	}
	// Data integrity: full ordered history survives.
	it, _ := f.store.HistoricalScan(ds.ID, 0, math.MaxInt64, nil)
	pts := collect(t, it)
	if len(pts) != 80 {
		t.Fatalf("points = %d, want 80", len(pts))
	}
	prev := int64(-1)
	for _, p := range pts {
		if p.TS <= prev {
			t.Fatalf("order broken at %d", p.TS)
		}
		prev = p.TS
	}
	// Stats stay consistent.
	st := f.cat.Stats(ds.ID)
	if st.PointCount != 80 || st.BatchCount != int64(res.BatchesAfter) {
		t.Fatalf("stats after coalesce: %+v", st)
	}
}

func TestCoalesceNoOpOnHealthyHistory(t *testing.T) {
	f := newFixture(t, Config{BatchSize: 8}, 0)
	s := f.schema(t, "healthy", 1)
	ds := f.source(t, s.ID, true, 10)
	for i := 0; i < 64; i++ {
		f.store.Write(model.Point{Source: ds.ID, TS: int64(i * 10), Values: []float64{1}})
	}
	f.store.Flush()
	res, err := f.store.CoalesceSource(ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchesAfter != res.BatchesBefore {
		t.Fatalf("healthy history rewritten: %d -> %d", res.BatchesBefore, res.BatchesAfter)
	}
}

func TestCoalesceAfterMGOverflow(t *testing.T) {
	// Duplicate same-window samples create single-point overflow batches;
	// coalesce folds them into proper IRTS batches.
	f := newFixture(t, Config{BatchSize: 8}, 2)
	s := f.schema(t, "ovco", 1)
	a := f.source(t, s.ID, false, 10000)
	b := f.source(t, s.ID, false, 10000)
	for i := 0; i < 30; i++ {
		ts := int64(i * 10000)
		f.store.Write(model.Point{Source: a.ID, TS: ts, Values: []float64{1}})
		f.store.Write(model.Point{Source: b.ID, TS: ts, Values: []float64{2}})
		// Duplicate window sample for a -> overflow path.
		f.store.Write(model.Point{Source: a.ID, TS: ts + 3, Values: []float64{3}})
	}
	f.store.Flush()
	before := f.cat.Stats(a.ID)
	if before.BatchCount == 0 {
		t.Fatal("no overflow batches created")
	}
	res, err := f.store.Coalesce(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchesAfter >= res.BatchesBefore {
		t.Fatalf("no shrink: %+v", res)
	}
	it, _ := f.store.HistoricalScan(a.ID, 0, math.MaxInt64, nil)
	if got := len(collect(t, it)); got != 60 {
		t.Fatalf("a's points = %d, want 60", got)
	}
}
