// Package tsstore implements the ODH storage component: the three batch
// structures of the paper's hybrid data model (Figure 1) — Regular Time
// Series (RTS), Irregular Time Series (IRTS), and Mixed Grouping (MG) —
// together with the ingest buffers, the flush path that packs b
// operational points into one indexed ValueBlob record, dirty-read scans,
// and the MG→RTS/IRTS reorganizer that Table 1 prescribes for historical
// queries over low-frequency sources.
package tsstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"odh/internal/compress"
	"odh/internal/model"
)

// ErrCorruptBlob reports an undecodable ValueBlob.
var ErrCorruptBlob = errors.New("tsstore: corrupt value blob")

// Blob format bytes. The tag-oriented flag is set when values are stored
// as per-tag columns (the paper's "tag-oriented approach"); without it the
// blob holds one row-major column (the layout ablation).
const (
	blobRTS  = 1
	blobIRTS = 2
	blobMG   = 3

	flagRowOriented = 0x80
	flagZoneMaps    = 0x40
	flagSummaries   = 0x20
	// The tier bits live in the low-5 format field: the three structures
	// only ever used values 1-3, so 0x10 and 0x08 were always zero, and
	// pre-tier readers (whose structure switch covers the whole 0x1F
	// field) reject tiered blobs as unknown formats instead of silently
	// misreading them.
	flagStub = 0x10 // summary-only stub: header kept, payload dropped
	flagCold = 0x08 // cold tier: recompacted at maximum codec effort
	// flagSubBuckets reuses the same carve-out trick: the structure values
	// never exceeded 3, so bit 0x04 was always zero and pre-v3 readers
	// (whose structure switch still covers it) reject sub-bucketed blobs
	// as unknown formats rather than misparsing the extra block.
	flagSubBuckets = 0x04 // v3: per-sub-bucket mini-summaries follow the summary block
	structMask     = 0x03
	formatMask     = 0x1F // the full pre-tier field (error reporting only)
)

// ErrStubbedBlob reports a payload decode attempted against a summary-only
// stub: the rows were dropped by the tier policy, so raw scans over the
// range fail explicitly — degradation is never a silent wrong answer.
// Aggregates keep folding from the surviving header summary.
var ErrStubbedBlob = errors.New("tsstore: blob aged to summary-only stub (raw rows dropped by tier policy)")

// Tier classifies a blob's storage lifecycle stage.
type Tier uint8

// Blob lifecycle tiers, in aging order.
const (
	TierHot  Tier = iota // as flushed by ingest or maintenance
	TierCold             // recompacted at maximum codec effort
	TierStub             // summary-only; payload dropped
)

// String names the tier for stats and CLI output.
func (t Tier) String() string {
	switch t {
	case TierHot:
		return "hot"
	case TierCold:
		return "cold"
	case TierStub:
		return "stub"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// BlobTier reports which lifecycle tier a stored blob is in. A stub that
// was made from a cold blob reports TierStub (stub is the later stage).
func BlobTier(b []byte) Tier {
	if len(b) == 0 {
		return TierHot
	}
	switch {
	case b[0]&flagStub != 0:
		return TierStub
	case b[0]&flagCold != 0:
		return TierCold
	}
	return TierHot
}

// IsStubBlob reports whether b is a summary-only stub.
func IsStubBlob(b []byte) bool { return len(b) > 0 && b[0]&flagStub != 0 }

// TagRange is a pushed-down predicate bound on one tag: rows outside
// [Lo, Hi] cannot match. Zone maps let scans skip whole blobs whose
// per-tag min/max ranges do not overlap — the paper's future-work item
// "adding proper indexing to reduce BLOB scanning for queries on
// attribute values".
type TagRange struct {
	Tag    int
	Lo, Hi float64
}

// zoneMap holds one tag's min/max over a blob's present values. A column
// with no present values stores the empty sentinel (min > max).
type zoneMap struct {
	min, max float64
}

// tagStat accumulates one tag's statistics over the values a decode of
// the blob will return. For lossy compression policies the stored column
// deviates from the originals, so stats are computed from round-tripped
// values — folding a summary must be bit-identical to decoding and
// aggregating the rows.
type tagStat struct {
	nonNull  int64
	sum      float64
	min, max float64
}

func newTagStats(ntags int) []tagStat {
	stats := make([]tagStat, ntags)
	for i := range stats {
		stats[i].min = math.Inf(1)
		stats[i].max = math.Inf(-1)
	}
	return stats
}

// note folds one present value into the stat in row order (sum order must
// match the order a decode-then-aggregate pass would use).
func (s *tagStat) note(v float64) {
	s.nonNull++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// appendZoneMapsFromStats writes per-tag min/max. Empty columns keep the
// sentinel (min > max) that zonesOverlap treats as never matching.
func appendZoneMapsFromStats(dst []byte, stats []tagStat) []byte {
	for i := range stats {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(stats[i].min))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(stats[i].max))
	}
	return dst
}

// readZoneMaps parses ntags zone maps and returns the remaining bytes.
func readZoneMaps(b []byte, ntags int) ([]zoneMap, []byte, error) {
	if len(b) < ntags*16 {
		return nil, nil, ErrCorruptBlob
	}
	zones := make([]zoneMap, ntags)
	for i := range zones {
		zones[i].min = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16:]))
		zones[i].max = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16+8:]))
	}
	return zones, b[ntags*16:], nil
}

// zonesOverlap reports whether a blob with the given zone maps could
// contain a row satisfying every range. An empty-column sentinel never
// overlaps (all values are NULL, and NULL fails any comparison).
func zonesOverlap(zones []zoneMap, ranges []TagRange) bool {
	for _, r := range ranges {
		if r.Tag < 0 || r.Tag >= len(zones) {
			continue
		}
		z := zones[r.Tag]
		if z.min > z.max || z.max < r.Lo || z.min > r.Hi {
			return false
		}
	}
	return true
}

// blobZoneMaps parses the header zone maps of a blob without decoding its
// columns. It returns (nil, false) when the blob carries no zone maps or
// its header is unparseable — callers must then treat every tag range as
// potentially overlapping. The blob cache stores the result so hits keep
// exactly the skip behavior of the raw-blob path.
func blobZoneMaps(b []byte) ([]zoneMap, bool) {
	if len(b) < 1 || b[0]&flagZoneMaps == 0 {
		return nil, false
	}
	format := b[0] & structMask
	rest := b[1:]
	ntagsU, n := binary.Uvarint(rest)
	if n <= 0 || ntagsU > 1<<16 {
		return nil, false
	}
	rest = rest[n:]
	// Skip the structure-specific fields that precede the zone maps.
	switch format {
	case blobRTS:
		if _, n := binary.Uvarint(rest); n > 0 { // count
			rest = rest[n:]
		} else {
			return nil, false
		}
		if _, n := binary.Varint(rest); n > 0 { // interval
			rest = rest[n:]
		} else {
			return nil, false
		}
	case blobIRTS, blobMG:
		if _, n := binary.Uvarint(rest); n > 0 { // count / memberCount
			rest = rest[n:]
		} else {
			return nil, false
		}
	default:
		return nil, false
	}
	zones, _, err := readZoneMaps(rest, int(ntagsU))
	if err != nil {
		return nil, false
	}
	return zones, true
}

// BlobOverlaps reports whether a blob could contain rows satisfying every
// tag range, by peeking only at the header's zone maps — no column
// decode. It returns true (cannot skip) for blobs without zone maps or
// with unparseable headers.
func BlobOverlaps(b []byte, ranges []TagRange) bool {
	if len(ranges) == 0 {
		return true
	}
	zones, ok := blobZoneMaps(b)
	if !ok {
		return true
	}
	return zonesOverlap(zones, ranges)
}

// blobLayout controls how tag values are arranged inside a blob.
type blobLayout uint8

const (
	layoutTagOriented blobLayout = iota // per-tag columns, skippable
	layoutRowOriented                   // single interleaved column (ablation)
)

// encodeOpts carries per-store encoding configuration into the blob codec.
type encodeOpts struct {
	layout      blobLayout
	policies    []compress.Policy // per tag; nil means lossless for all
	disable     bool              // raw storage (compression ablation)
	legacy      bool              // write the pre-summary format (compat tests)
	cold        bool              // cold tier: max-effort lossless columns
	subBucketMs int64             // v3 sub-bucket base width; <=0 writes v2
}

func (o encodeOpts) policy(tag int) compress.Policy {
	p := compress.Policy{}
	if tag < len(o.policies) {
		p = o.policies[tag]
	}
	if o.disable {
		p.Disable = true
	}
	return p
}

// --- bitmaps ---

func bitmapLen(bits int) int { return (bits + 7) / 8 }

func setBit(bm []byte, i int)      { bm[i/8] |= 1 << (i % 8) }
func getBit(bm []byte, i int) bool { return bm[i/8]&(1<<(i%8)) != 0 }

// encodeColumns encodes the tag values of rows (each row has ntags values,
// NaN = NULL) with a presence bitmap and either tag-oriented columns or a
// single row-major column. It also returns per-tag statistics over the
// values a later decode will yield: for a lossy policy the freshly encoded
// column is round-tripped so the stats (and the zone maps and summary
// built from them) agree bit-for-bit with the decode path.
//
// When opts.subBucketMs > 0 the third return value holds the effective
// per-row values a decode will produce (the originals unless a lossy
// policy adjusted a column) so the sub-bucket block is built from the same
// values as the whole-blob summary; it is nil otherwise.
func encodeColumns(rows [][]float64, ntags int, opts encodeOpts) ([]byte, []tagStat, [][]float64) {
	count := len(rows)
	bm := make([]byte, bitmapLen(count*ntags))
	// Tag-major bit order so per-tag decode only needs its own stripe.
	for tag := 0; tag < ntags; tag++ {
		for row := 0; row < count; row++ {
			if !model.IsNull(rows[row][tag]) {
				setBit(bm, tag*count+row)
			}
		}
	}
	stats := newTagStats(ntags)
	var effRows [][]float64
	if opts.subBucketMs > 0 {
		effRows = rows // replaced lazily if a lossy policy adjusts values
	}
	dst := append([]byte(nil), bm...)
	if opts.layout == layoutRowOriented {
		// One interleaved column of all present values in row-major order.
		// The interleaved column is always lossless (or raw), so the
		// original values are exactly what decodes back.
		var vals []float64
		for row := 0; row < count; row++ {
			for tag := 0; tag < ntags; tag++ {
				if !model.IsNull(rows[row][tag]) {
					vals = append(vals, rows[row][tag])
				}
			}
		}
		var col []byte
		if opts.cold && !opts.disable {
			col = compress.EncodeColumnMaxEffort(nil, vals)
		} else {
			col = compress.EncodeColumn(nil, vals, compress.Policy{Disable: opts.disable})
		}
		dst = binary.AppendUvarint(dst, uint64(len(col)))
		dst = append(dst, col...)
		for tag := 0; tag < ntags; tag++ {
			for row := 0; row < count; row++ {
				if !model.IsNull(rows[row][tag]) {
					stats[tag].note(rows[row][tag])
				}
			}
		}
		// The interleaved column is lossless, so effRows stays the input.
		return dst, stats, effRows
	}
	for tag := 0; tag < ntags; tag++ {
		var vals []float64
		for row := 0; row < count; row++ {
			if getBit(bm, tag*count+row) {
				vals = append(vals, rows[row][tag])
			}
		}
		pol := opts.policy(tag)
		var col []byte
		eff := vals
		adjusted := false
		if opts.cold && !pol.Disable {
			// Cold recompaction is always lossless at maximum effort; the
			// inputs are already the round-tripped values earlier lossy
			// encodes produced, so decoded rows — and the stats below —
			// stay bit-identical across the tier transition.
			col = compress.EncodeColumnMaxEffort(nil, vals)
		} else {
			col = compress.EncodeColumn(nil, vals, pol)
			if !pol.Lossless() && !pol.Disable {
				if dec, err := compress.DecodeColumn(col); err == nil && len(dec) == len(vals) {
					eff = dec
					adjusted = true
				}
			}
		}
		for _, v := range eff {
			stats[tag].note(v)
		}
		if adjusted && effRows != nil {
			// Scatter the round-tripped column back into a private copy of
			// the rows so sub-bucket stats see decode-identical values.
			if sameRows(effRows, rows) {
				backing := make([]float64, count*ntags)
				cp := make([][]float64, count)
				for i := 0; i < count; i++ {
					cp[i] = backing[i*ntags : (i+1)*ntags]
					copy(cp[i], rows[i][:ntags])
				}
				effRows = cp
			}
			vi := 0
			for row := 0; row < count; row++ {
				if getBit(bm, tag*count+row) {
					effRows[row][tag] = eff[vi]
					vi++
				}
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(col)))
		dst = append(dst, col...)
	}
	return dst, stats, effRows
}

// sameRows reports whether a is still the identical slice header as b
// (used to detect whether effRows has already been copied).
func sameRows(a, b [][]float64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// --- summary block ---

// The summary block sits between the zone maps and the structure extras
// when flagSummaries is set: uvarint row count, varint(firstTS-baseTS),
// varint(lastTS-firstTS), then per tag a uvarint non-NULL count and the
// float64 sum (little-endian bits). Together with the zone-map min/max it
// answers COUNT/SUM/AVG/MIN/MAX over the whole blob without touching the
// columns.

// appendSummaryBlock writes the summary for rows/stats computed by
// encodeColumns. baseTS is the record-key timestamp the reader will pass
// to parseBlobSummary; first/last bound the rows' decoded timestamps.
func appendSummaryBlock(dst []byte, stats []tagStat, rows, baseTS, firstTS, lastTS int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(rows))
	dst = binary.AppendVarint(dst, firstTS-baseTS)
	dst = binary.AppendVarint(dst, lastTS-firstTS)
	for i := range stats {
		dst = binary.AppendUvarint(dst, uint64(stats[i].nonNull))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(stats[i].sum))
	}
	return dst
}

// skipSummaryBlock advances past a summary block (used by DecodeBlob,
// which reconstructs everything the summary holds anyway).
func skipSummaryBlock(b []byte, ntags int) ([]byte, error) {
	for i := 0; i < 3; i++ {
		_, n := binary.Varint(b) // same wire length as Uvarint for field 0
		if n <= 0 {
			return nil, ErrCorruptBlob
		}
		b = b[n:]
	}
	for tag := 0; tag < ntags; tag++ {
		_, n := binary.Uvarint(b)
		if n <= 0 || len(b) < n+8 {
			return nil, ErrCorruptBlob
		}
		b = b[n+8:]
	}
	return b, nil
}

// blobSummary is the decoded summary of one ValueBlob: everything needed
// to fold the blob into COUNT/SUM/AVG/MIN/MAX aggregates without decoding
// its columns. min/max come from the zone maps (computed from the same
// round-tripped values as the sums), so every field is bit-identical to
// what a decode-and-aggregate pass over the blob would produce.
type blobSummary struct {
	rows     int64
	firstTS  int64 // earliest decoded timestamp
	lastTS   int64 // latest decoded timestamp
	members  int   // MG header member count; 0 for RTS/IRTS
	nonNull  []int64
	sum      []float64
	min, max []float64 // empty-column sentinel: min > max
}

// parseBlobSummary peeks a blob's header summary without decoding columns.
// It returns (nil, false) for legacy blobs (no flagSummaries) or damaged
// headers — callers then fall back to decoding.
func parseBlobSummary(b []byte, baseTS int64) (*blobSummary, bool) {
	s, _, ok := parseBlobSummaryRest(b, baseTS)
	return s, ok
}

// parseBlobSummaryRest parses the header summary and additionally returns
// the bytes that follow the summary block (the sub-bucket block for v3
// blobs, the payload otherwise).
func parseBlobSummaryRest(b []byte, baseTS int64) (*blobSummary, []byte, bool) {
	if len(b) < 1 || b[0]&flagSummaries == 0 || b[0]&flagZoneMaps == 0 {
		return nil, nil, false
	}
	format := b[0] & structMask
	rest := b[1:]
	ntagsU, n := binary.Uvarint(rest)
	if n <= 0 || ntagsU > 1<<16 {
		return nil, nil, false
	}
	ntags := int(ntagsU)
	rest = rest[n:]
	members := 0
	switch format {
	case blobRTS:
		if _, n := binary.Uvarint(rest); n > 0 { // count
			rest = rest[n:]
		} else {
			return nil, nil, false
		}
		if _, n := binary.Varint(rest); n > 0 { // interval
			rest = rest[n:]
		} else {
			return nil, nil, false
		}
	case blobIRTS:
		if _, n := binary.Uvarint(rest); n > 0 { // count
			rest = rest[n:]
		} else {
			return nil, nil, false
		}
	case blobMG:
		m, n := binary.Uvarint(rest)
		if n <= 0 || m > 1<<20 {
			return nil, nil, false
		}
		members = int(m)
		rest = rest[n:]
	default:
		return nil, nil, false
	}
	zones, rest, err := readZoneMaps(rest, ntags)
	if err != nil {
		return nil, nil, false
	}
	rowsU, n := binary.Uvarint(rest)
	if n <= 0 || rowsU > 1<<24 {
		return nil, nil, false
	}
	rest = rest[n:]
	firstDelta, n := binary.Varint(rest)
	if n <= 0 {
		return nil, nil, false
	}
	rest = rest[n:]
	span, n := binary.Varint(rest)
	if n <= 0 {
		return nil, nil, false
	}
	rest = rest[n:]
	s := &blobSummary{
		rows:    int64(rowsU),
		firstTS: baseTS + firstDelta,
		members: members,
		nonNull: make([]int64, ntags),
		sum:     make([]float64, ntags),
		min:     make([]float64, ntags),
		max:     make([]float64, ntags),
	}
	s.lastTS = s.firstTS + span
	for tag := 0; tag < ntags; tag++ {
		nn, n := binary.Uvarint(rest)
		if n <= 0 || len(rest) < n+8 {
			return nil, nil, false
		}
		s.nonNull[tag] = int64(nn)
		s.sum[tag] = math.Float64frombits(binary.LittleEndian.Uint64(rest[n:]))
		rest = rest[n+8:]
		s.min[tag] = zones[tag].min
		s.max[tag] = zones[tag].max
	}
	return s, rest, true
}

// summaryFromBatch rebuilds a summary from an already-decoded batch — the
// lazy upgrade path for legacy (pre-summary) blobs: the first decode pays
// full cost, the result is cached alongside the batch, and later aggregate
// scans fold it without decoding again. Only the tags that were actually
// decoded carry valid stats, which is safe because cache entries are keyed
// by the decode's tag signature.
func summaryFromBatch(batch *DecodedBatch, ntags int) *blobSummary {
	s := &blobSummary{
		rows:    int64(len(batch.Timestamps)),
		nonNull: make([]int64, ntags),
		sum:     make([]float64, ntags),
		min:     make([]float64, ntags),
		max:     make([]float64, ntags),
	}
	for tag := 0; tag < ntags; tag++ {
		s.min[tag] = math.Inf(1)
		s.max[tag] = math.Inf(-1)
	}
	for i, ts := range batch.Timestamps {
		if i == 0 || ts < s.firstTS {
			s.firstTS = ts
		}
		if i == 0 || ts > s.lastTS {
			s.lastTS = ts
		}
	}
	for _, row := range batch.Rows {
		for tag := 0; tag < ntags && tag < len(row); tag++ {
			v := row[tag]
			if model.IsNull(v) {
				continue
			}
			s.nonNull[tag]++
			s.sum[tag] += v
			if v < s.min[tag] {
				s.min[tag] = v
			}
			if v > s.max[tag] {
				s.max[tag] = v
			}
		}
	}
	if batch.Structure == model.MG {
		for _, slot := range batch.Slots {
			if slot >= s.members {
				s.members = slot + 1
			}
		}
	}
	return s
}

// cacheSummary resolves the summary a cache insert should carry: the
// header block for summary-format blobs, else one computed from the
// decoded batch (valid only for the tags that decode materialized, which
// matches the cache entry's tag signature).
func cacheSummary(blob []byte, baseTS int64, batch *DecodedBatch) *blobSummary {
	if sum, ok := parseBlobSummary(blob, baseTS); ok {
		return sum
	}
	ntags := 0
	if len(batch.Rows) > 0 {
		ntags = len(batch.Rows[0])
	}
	return summaryFromBatch(batch, ntags)
}

// summaryMatches reports whether a parsed header summary agrees with a
// full decode of the same blob (the fsck cross-check). Float fields
// compare by bit pattern: summaries must be exact, not approximately
// right, or aggregate pushdown would silently change query results.
func summaryMatches(s *blobSummary, batch *DecodedBatch) bool {
	ntags := len(s.nonNull)
	ref := summaryFromBatch(batch, ntags)
	if s.rows != ref.rows {
		return false
	}
	if s.rows > 0 && (s.firstTS != ref.firstTS || s.lastTS != ref.lastTS) {
		return false
	}
	for tag := 0; tag < ntags; tag++ {
		if s.nonNull[tag] != ref.nonNull[tag] ||
			math.Float64bits(s.sum[tag]) != math.Float64bits(ref.sum[tag]) ||
			math.Float64bits(s.min[tag]) != math.Float64bits(ref.min[tag]) ||
			math.Float64bits(s.max[tag]) != math.Float64bits(ref.max[tag]) {
			return false
		}
	}
	return true
}

// --- sub-bucket block (format v3) ---

// The sub-bucket block sits between the summary block and the payload when
// flagSubBuckets is set (which requires flagSummaries): varint base width
// (ms), uvarint bucket count K, then for each of the K consecutive base
// buckets starting at BucketFloor(firstTS, base): uvarint row count, and
// per tag a uvarint non-NULL count followed — only when non-zero — by the
// raw float64 bits of sum, min, max. Aggregate scans whose bucket grid is
// a positive integral multiple of the base width fold blobs that straddle
// bucket edges from these mini-summaries with zero payload decode.
//
// Sub-bucket stats are accumulated in row order, so for the time-ordered
// structures (RTS, and IRTS whose persisted blobs are non-decreasing) a
// fold is bit-identical to decoding and aggregating the rows. MG blobs
// store rows in slot order, not time order, so they never carry the block.

const (
	// maxSubBucketsWrite caps how many sub-buckets a writer will emit: a
	// blob whose span crosses more base buckets than this (sparse IRTS
	// data against a narrow base width) skips the block and relies on the
	// lazy decode-time path, keeping the header overhead bounded.
	maxSubBucketsWrite = 512
	// maxSubBucketsRead bounds what a parser will accept before declaring
	// the header corrupt.
	maxSubBucketsRead = 4096
)

// subBucketStat holds one base bucket's mini-summary.
type subBucketStat struct {
	rows     int64
	nonNull  []int64
	sum      []float64
	min, max []float64 // empty sentinel (min > max) when nonNull == 0
}

// subSummaries is the decoded sub-bucket block of one blob: K consecutive
// base buckets covering [start, start+K*base).
type subSummaries struct {
	base    int64 // base bucket width in ms
	start   int64 // grid start of buckets[0]: BucketFloor(firstTS, base)
	buckets []subBucketStat
}

// end returns the exclusive grid end of the last bucket.
func (s *subSummaries) end() int64 { return s.start + int64(len(s.buckets))*s.base }

// subSummariesFromRows builds per-sub-bucket stats from row-ordered
// timestamps and (round-tripped) values. It returns nil when base is not
// positive, there are no rows, or the span crosses more than max buckets.
func subSummariesFromRows(ts []int64, rows [][]float64, ntags int, base int64, max int) *subSummaries {
	if base <= 0 || len(ts) == 0 || len(ts) != len(rows) {
		return nil
	}
	first, last := ts[0], ts[0]
	for _, t := range ts[1:] {
		if t < first {
			first = t
		}
		if t > last {
			last = t
		}
	}
	start := model.BucketFloor(first, base)
	k64 := (model.BucketFloor(last, base)-start)/base + 1
	if k64 < 1 || k64 > int64(max) {
		return nil
	}
	k := int(k64)
	sub := &subSummaries{base: base, start: start, buckets: make([]subBucketStat, k)}
	nn := make([]int64, k*ntags)
	fl := make([]float64, 3*k*ntags)
	for i := range sub.buckets {
		b := &sub.buckets[i]
		b.nonNull = nn[i*ntags : (i+1)*ntags]
		b.sum = fl[i*3*ntags : i*3*ntags+ntags]
		b.min = fl[i*3*ntags+ntags : i*3*ntags+2*ntags]
		b.max = fl[i*3*ntags+2*ntags : i*3*ntags+3*ntags]
		for tag := 0; tag < ntags; tag++ {
			b.min[tag] = math.Inf(1)
			b.max[tag] = math.Inf(-1)
		}
	}
	for i, t := range ts {
		b := &sub.buckets[(model.BucketFloor(t, base)-start)/base]
		b.rows++
		row := rows[i]
		for tag := 0; tag < ntags && tag < len(row); tag++ {
			v := row[tag]
			if model.IsNull(v) {
				continue
			}
			b.nonNull[tag]++
			b.sum[tag] += v
			if v < b.min[tag] {
				b.min[tag] = v
			}
			if v > b.max[tag] {
				b.max[tag] = v
			}
		}
	}
	return sub
}

// subSummariesFromBatch lazily rebuilds sub-bucket stats from a decoded
// batch — the upgrade path for v1/v2 blobs: the first decode pays full
// cost and the result rides in the blob cache next to the parsed zone
// maps. MG batches return nil (slot order is not time order, so a fold
// would emit groups in a different order than a row-by-row decode).
func subSummariesFromBatch(batch *DecodedBatch, ntags int, base int64) *subSummaries {
	if batch == nil || batch.Structure == model.MG {
		return nil
	}
	return subSummariesFromRows(batch.Timestamps, batch.Rows, ntags, base, maxSubBucketsRead)
}

// appendSubBucketBlock writes the block for a non-nil subSummaries.
func appendSubBucketBlock(dst []byte, sub *subSummaries) []byte {
	dst = binary.AppendVarint(dst, sub.base)
	dst = binary.AppendUvarint(dst, uint64(len(sub.buckets)))
	for i := range sub.buckets {
		b := &sub.buckets[i]
		dst = binary.AppendUvarint(dst, uint64(b.rows))
		for tag := range b.nonNull {
			dst = binary.AppendUvarint(dst, uint64(b.nonNull[tag]))
			if b.nonNull[tag] > 0 {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.sum[tag]))
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.min[tag]))
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.max[tag]))
			}
		}
	}
	return dst
}

// skipSubBucketBlock advances past a sub-bucket block (DecodeBlob and
// stubHeaderLen reconstruct or preserve it without interpreting it). A
// truncated or over-long block is a typed ErrCorruptBlob, never a panic.
func skipSubBucketBlock(b []byte, ntags int) ([]byte, error) {
	base, n := binary.Varint(b)
	if n <= 0 || base <= 0 {
		return nil, ErrCorruptBlob
	}
	b = b[n:]
	kU, n := binary.Uvarint(b)
	if n <= 0 || kU < 1 || kU > maxSubBucketsRead {
		return nil, ErrCorruptBlob
	}
	b = b[n:]
	for k := uint64(0); k < kU; k++ {
		rows, n := binary.Uvarint(b)
		if n <= 0 || rows > 1<<24 {
			return nil, ErrCorruptBlob
		}
		b = b[n:]
		for tag := 0; tag < ntags; tag++ {
			nn, n := binary.Uvarint(b)
			if n <= 0 || nn > rows {
				return nil, ErrCorruptBlob
			}
			b = b[n:]
			if nn > 0 {
				if len(b) < 24 {
					return nil, ErrCorruptBlob
				}
				b = b[24:]
			}
		}
	}
	return b, nil
}

// parseBlobSubSummaries peeks a v3 blob's sub-bucket block without
// decoding columns. It returns (nil, false) for blobs without the flag or
// with damaged headers — callers then fall back to the whole-blob summary
// or a payload decode. The block is cross-validated against the summary
// (bucket range covers [firstTS, lastTS]; row and non-NULL totals agree),
// so a corrupt block can never mis-fold: it fails parse instead.
func parseBlobSubSummaries(b []byte, baseTS int64) (*subSummaries, bool) {
	if len(b) < 1 || b[0]&flagSubBuckets == 0 {
		return nil, false
	}
	sum, rest, ok := parseBlobSummaryRest(b, baseTS)
	if !ok {
		return nil, false
	}
	ntags := len(sum.nonNull)
	base, n := binary.Varint(rest)
	if n <= 0 || base <= 0 {
		return nil, false
	}
	rest = rest[n:]
	kU, n := binary.Uvarint(rest)
	if n <= 0 || kU < 1 || kU > maxSubBucketsRead {
		return nil, false
	}
	rest = rest[n:]
	start := model.BucketFloor(sum.firstTS, base)
	if wantK := (model.BucketFloor(sum.lastTS, base)-start)/base + 1; sum.rows == 0 || wantK != int64(kU) {
		return nil, false
	}
	k := int(kU)
	sub := &subSummaries{base: base, start: start, buckets: make([]subBucketStat, k)}
	var totalRows int64
	totalNN := make([]int64, ntags)
	for i := range sub.buckets {
		bk := &sub.buckets[i]
		rowsU, n := binary.Uvarint(rest)
		if n <= 0 || rowsU > 1<<24 {
			return nil, false
		}
		rest = rest[n:]
		bk.rows = int64(rowsU)
		totalRows += bk.rows
		bk.nonNull = make([]int64, ntags)
		bk.sum = make([]float64, ntags)
		bk.min = make([]float64, ntags)
		bk.max = make([]float64, ntags)
		for tag := 0; tag < ntags; tag++ {
			nn, n := binary.Uvarint(rest)
			if n <= 0 || int64(nn) > bk.rows {
				return nil, false
			}
			rest = rest[n:]
			bk.nonNull[tag] = int64(nn)
			totalNN[tag] += int64(nn)
			if nn > 0 {
				if len(rest) < 24 {
					return nil, false
				}
				bk.sum[tag] = math.Float64frombits(binary.LittleEndian.Uint64(rest))
				bk.min[tag] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
				bk.max[tag] = math.Float64frombits(binary.LittleEndian.Uint64(rest[16:]))
				rest = rest[24:]
			} else {
				bk.min[tag] = math.Inf(1)
				bk.max[tag] = math.Inf(-1)
			}
		}
	}
	if totalRows != sum.rows {
		return nil, false
	}
	for tag := 0; tag < ntags; tag++ {
		if totalNN[tag] != sum.nonNull[tag] {
			return nil, false
		}
	}
	return sub, true
}

// subSummariesMatch reports whether a parsed sub-bucket block agrees with
// a full decode of the same blob (the fsck cross-check). Like
// summaryMatches, float fields compare by bit pattern.
func subSummariesMatch(sub *subSummaries, batch *DecodedBatch, ntags int) bool {
	ref := subSummariesFromBatch(batch, ntags, sub.base)
	if ref == nil || ref.start != sub.start || len(ref.buckets) != len(sub.buckets) {
		return false
	}
	for i := range sub.buckets {
		a, b := &sub.buckets[i], &ref.buckets[i]
		if a.rows != b.rows {
			return false
		}
		for tag := 0; tag < ntags; tag++ {
			if a.nonNull[tag] != b.nonNull[tag] ||
				math.Float64bits(a.sum[tag]) != math.Float64bits(b.sum[tag]) ||
				math.Float64bits(a.min[tag]) != math.Float64bits(b.min[tag]) ||
				math.Float64bits(a.max[tag]) != math.Float64bits(b.max[tag]) {
				return false
			}
		}
	}
	return true
}

// decodeColumns reconstructs rows from the layout written by encodeColumns.
// wantTags selects which tag indexes to decode (nil = all); unselected tags
// come back NULL. Row-oriented blobs always decode every tag (that is the
// cost the tag-oriented layout avoids).
func decodeColumns(b []byte, count, ntags int, rowOriented bool, wantTags []int) ([][]float64, error) {
	bmLen := bitmapLen(count * ntags)
	if len(b) < bmLen {
		return nil, ErrCorruptBlob
	}
	bm := b[:bmLen]
	b = b[bmLen:]
	rows := make([][]float64, count)
	backing := make([]float64, count*ntags)
	for i := range rows {
		rows[i] = backing[i*ntags : (i+1)*ntags]
		for j := range rows[i] {
			rows[i][j] = model.NullValue
		}
	}
	if rowOriented {
		colLen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < colLen {
			return nil, ErrCorruptBlob
		}
		vals, err := compress.DecodeColumn(b[n : n+int(colLen)])
		if err != nil {
			return nil, err
		}
		vi := 0
		for row := 0; row < count; row++ {
			for tag := 0; tag < ntags; tag++ {
				if getBit(bm, tag*count+row) {
					if vi >= len(vals) {
						return nil, ErrCorruptBlob
					}
					rows[row][tag] = vals[vi]
					vi++
				}
			}
		}
		return rows, nil
	}
	want := make([]bool, ntags)
	if wantTags == nil {
		for i := range want {
			want[i] = true
		}
	} else {
		for _, t := range wantTags {
			if t >= 0 && t < ntags {
				want[t] = true
			}
		}
	}
	for tag := 0; tag < ntags; tag++ {
		colLen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < colLen {
			return nil, ErrCorruptBlob
		}
		col := b[n : n+int(colLen)]
		b = b[n+int(colLen):]
		if !want[tag] {
			continue // the tag-oriented win: skip without decoding
		}
		vals, err := compress.DecodeColumn(col)
		if err != nil {
			return nil, err
		}
		vi := 0
		for row := 0; row < count; row++ {
			if getBit(bm, tag*count+row) {
				if vi >= len(vals) {
					return nil, ErrCorruptBlob
				}
				rows[row][tag] = vals[vi]
				vi++
			}
		}
	}
	return rows, nil
}

// EncodeRTS packs a run of regular points (identical intervals, contiguous
// slots) into an RTS ValueBlob. The record key carries (source, baseTS);
// the blob stores the interval and per-tag columns, so timestamps cost
// zero bytes per point.
func EncodeRTS(points []model.Point, ntags int, intervalMs int64, opts encodeOpts) []byte {
	dst := make([]byte, 0, 64+len(points)*ntags)
	format := byte(blobRTS)
	if opts.layout == layoutRowOriented {
		format |= flagRowOriented
	}
	format |= flagZoneMaps
	if !opts.legacy {
		format |= flagSummaries
	}
	if opts.cold && !opts.legacy {
		format |= flagCold
	}
	dst = append(dst, format)
	dst = binary.AppendUvarint(dst, uint64(ntags))
	dst = binary.AppendUvarint(dst, uint64(len(points)))
	dst = binary.AppendVarint(dst, intervalMs)
	rows := make([][]float64, len(points))
	for i, p := range points {
		rows[i] = p.Values
	}
	cols, stats, effRows := encodeColumns(rows, ntags, opts)
	dst = appendZoneMapsFromStats(dst, stats)
	if !opts.legacy {
		// RTS decode reconstructs timestamps from the record key and the
		// interval; summarize the same arithmetic, not the input points.
		var base, last int64
		if len(points) > 0 {
			base = points[0].TS
			last = base + int64(len(points)-1)*intervalMs
		}
		dst = appendSummaryBlock(dst, stats, int64(len(points)), base, base, last)
		if opts.subBucketMs > 0 && len(points) > 0 {
			ts := make([]int64, len(points))
			for i := range ts {
				ts[i] = base + int64(i)*intervalMs
			}
			if sub := subSummariesFromRows(ts, effRows, ntags, opts.subBucketMs, maxSubBucketsWrite); sub != nil {
				dst[0] |= flagSubBuckets
				dst = appendSubBucketBlock(dst, sub)
			}
		}
	}
	return append(dst, cols...)
}

// EncodeIRTS packs irregular points into an IRTS ValueBlob; timestamps are
// delta-of-delta encoded.
func EncodeIRTS(points []model.Point, ntags int, opts encodeOpts) []byte {
	dst := make([]byte, 0, 64+len(points)*ntags)
	format := byte(blobIRTS)
	if opts.layout == layoutRowOriented {
		format |= flagRowOriented
	}
	format |= flagZoneMaps
	if !opts.legacy {
		format |= flagSummaries
	}
	if opts.cold && !opts.legacy {
		format |= flagCold
	}
	dst = append(dst, format)
	dst = binary.AppendUvarint(dst, uint64(ntags))
	dst = binary.AppendUvarint(dst, uint64(len(points)))
	rows := make([][]float64, len(points))
	for i, p := range points {
		rows[i] = p.Values
	}
	cols, stats, effRows := encodeColumns(rows, ntags, opts)
	dst = appendZoneMapsFromStats(dst, stats)
	if !opts.legacy {
		// IRTS timestamps ride inline and need not be sorted; bound them.
		var base, first, last int64
		if len(points) > 0 {
			base, first, last = points[0].TS, points[0].TS, points[0].TS
			for _, p := range points[1:] {
				if p.TS < first {
					first = p.TS
				}
				if p.TS > last {
					last = p.TS
				}
			}
		}
		dst = appendSummaryBlock(dst, stats, int64(len(points)), base, first, last)
		if opts.subBucketMs > 0 && len(points) > 0 {
			pts := make([]int64, len(points))
			for i, p := range points {
				pts[i] = p.TS
			}
			if sub := subSummariesFromRows(pts, effRows, ntags, opts.subBucketMs, maxSubBucketsWrite); sub != nil {
				dst[0] |= flagSubBuckets
				dst = appendSubBucketBlock(dst, sub)
			}
		}
	}
	ts := make([]int64, len(points))
	for i, p := range points {
		ts[i] = p.TS
	}
	dst = compress.AppendDeltaOfDeltas(dst, ts)
	return append(dst, cols...)
}

// EncodeMG packs one time window's values from an MG group into an MG
// ValueBlob. present[slot] reports which members delivered a record;
// rows[slot] holds each member's tag values and tsOffsets[slot] the
// member's timestamp offset from the record's window base (low-frequency
// sources rarely sample at exactly the same instant, so MG records bucket
// a window and keep per-member offsets).
func EncodeMG(present []bool, rows [][]float64, tsOffsets []int64, ntags int, opts encodeOpts) []byte {
	memberCount := len(present)
	dst := make([]byte, 0, 64+memberCount*ntags)
	format := byte(blobMG)
	if opts.layout == layoutRowOriented {
		format |= flagRowOriented
	}
	format |= flagZoneMaps
	if !opts.legacy {
		format |= flagSummaries
	}
	dst = append(dst, format)
	dst = binary.AppendUvarint(dst, uint64(ntags))
	dst = binary.AppendUvarint(dst, uint64(memberCount))
	memberBM := make([]byte, bitmapLen(memberCount))
	var reported [][]float64
	var offsets []int64
	for slot, ok := range present {
		if ok {
			setBit(memberBM, slot)
			reported = append(reported, rows[slot])
			if slot < len(tsOffsets) {
				offsets = append(offsets, tsOffsets[slot])
			} else {
				offsets = append(offsets, 0)
			}
		}
	}
	// MG rows are stored in slot order, not time order, so the blob never
	// carries a sub-bucket block (a sub-fold would emit groups in a
	// different order than a row-by-row decode).
	opts.subBucketMs = 0
	cols, stats, _ := encodeColumns(reported, ntags, opts)
	dst = appendZoneMapsFromStats(dst, stats)
	if !opts.legacy {
		// MG timestamps are offsets from the record's window base, which is
		// the key timestamp the reader passes as baseTS — summarize offsets
		// against base 0 so the parse reconstructs absolute bounds.
		var first, last int64
		for i, off := range offsets {
			if i == 0 || off < first {
				first = off
			}
			if i == 0 || off > last {
				last = off
			}
		}
		dst = appendSummaryBlock(dst, stats, int64(len(reported)), 0, first, last)
	}
	dst = append(dst, memberBM...)
	dst = binary.AppendUvarint(dst, uint64(len(reported)))
	dst = compress.AppendDeltas(dst, offsets)
	return append(dst, cols...)
}

// DecodedBatch is the result of decoding any ValueBlob.
type DecodedBatch struct {
	// Structure reports which batch structure the blob used.
	Structure model.Structure
	// Timestamps holds one entry per row. RTS rows reconstruct them from
	// the base and interval; IRTS rows carry them inline; MG rows are the
	// record's window base plus each member's stored offset.
	Timestamps []int64
	// Rows holds decoded tag values (selected tags only; others NULL).
	Rows [][]float64
	// Slots maps MG rows to group member slots; nil for RTS/IRTS.
	Slots []int
}

// DecodeBlob decodes a ValueBlob of any structure. baseTS is the timestamp
// from the record key (the batch's first timestamp for RTS, unused for
// IRTS which carries timestamps inline, the record timestamp for MG).
// wantTags selects tag columns (nil = all).
func DecodeBlob(b []byte, baseTS int64, wantTags []int) (*DecodedBatch, error) {
	if len(b) < 1 {
		return nil, ErrCorruptBlob
	}
	if b[0]&flagStub != 0 {
		// The payload is gone by design, not by damage: surface the typed
		// error so scans can distinguish tier degradation from corruption
		// (lenient recovery must never quarantine a stub).
		return nil, ErrStubbedBlob
	}
	format := b[0] & structMask
	rowOriented := b[0]&flagRowOriented != 0
	hasZones := b[0]&flagZoneMaps != 0
	hasSummary := b[0]&flagSummaries != 0
	hasSub := b[0]&flagSubBuckets != 0
	if hasSub && !hasSummary {
		// The sub-bucket block rides behind the summary block; a blob
		// claiming one without the other was never written by any encoder.
		return nil, ErrCorruptBlob
	}
	b = b[1:]
	ntagsU, n := binary.Uvarint(b)
	if n <= 0 || ntagsU > 1<<16 {
		return nil, ErrCorruptBlob
	}
	ntags := int(ntagsU)
	b = b[n:]
	switch format {
	case blobRTS:
		countU, n := binary.Uvarint(b)
		if n <= 0 || countU > 1<<24 {
			return nil, ErrCorruptBlob
		}
		count := int(countU)
		b = b[n:]
		interval, n := binary.Varint(b)
		if n <= 0 {
			return nil, ErrCorruptBlob
		}
		b = b[n:]
		if hasZones {
			var err error
			if _, b, err = readZoneMaps(b, ntags); err != nil {
				return nil, err
			}
		}
		if hasSummary {
			var err error
			if b, err = skipSummaryBlock(b, ntags); err != nil {
				return nil, err
			}
			if hasSub {
				if b, err = skipSubBucketBlock(b, ntags); err != nil {
					return nil, err
				}
			}
		}
		rows, err := decodeColumns(b, count, ntags, rowOriented, wantTags)
		if err != nil {
			return nil, err
		}
		ts := make([]int64, count)
		for i := range ts {
			ts[i] = baseTS + int64(i)*interval
		}
		return &DecodedBatch{Structure: model.RTS, Timestamps: ts, Rows: rows}, nil
	case blobIRTS:
		countU, n := binary.Uvarint(b)
		if n <= 0 || countU > 1<<24 {
			return nil, ErrCorruptBlob
		}
		count := int(countU)
		b = b[n:]
		if hasZones {
			var err error
			if _, b, err = readZoneMaps(b, ntags); err != nil {
				return nil, err
			}
		}
		if hasSummary {
			var err error
			if b, err = skipSummaryBlock(b, ntags); err != nil {
				return nil, err
			}
			if hasSub {
				if b, err = skipSubBucketBlock(b, ntags); err != nil {
					return nil, err
				}
			}
		}
		ts, rest, err := compress.DeltaOfDeltas(b)
		if err != nil || len(ts) != count {
			return nil, ErrCorruptBlob
		}
		rows, err := decodeColumns(rest, count, ntags, rowOriented, wantTags)
		if err != nil {
			return nil, err
		}
		return &DecodedBatch{Structure: model.IRTS, Timestamps: ts, Rows: rows}, nil
	case blobMG:
		memberU, n := binary.Uvarint(b)
		if n <= 0 || memberU > 1<<20 {
			return nil, ErrCorruptBlob
		}
		memberCount := int(memberU)
		b = b[n:]
		if hasZones {
			var err error
			if _, b, err = readZoneMaps(b, ntags); err != nil {
				return nil, err
			}
		}
		if hasSummary {
			var err error
			if b, err = skipSummaryBlock(b, ntags); err != nil {
				return nil, err
			}
			if hasSub {
				if b, err = skipSubBucketBlock(b, ntags); err != nil {
					return nil, err
				}
			}
		}
		bmLen := bitmapLen(memberCount)
		if len(b) < bmLen {
			return nil, ErrCorruptBlob
		}
		memberBM := b[:bmLen]
		b = b[bmLen:]
		reportedU, n := binary.Uvarint(b)
		if n <= 0 || reportedU > uint64(memberCount) {
			return nil, ErrCorruptBlob
		}
		reported := int(reportedU)
		b = b[n:]
		offsets, rest, err := compress.Deltas(b)
		if err != nil || len(offsets) != reported {
			return nil, ErrCorruptBlob
		}
		rows, err := decodeColumns(rest, reported, ntags, rowOriented, wantTags)
		if err != nil {
			return nil, err
		}
		slots := make([]int, 0, reported)
		for slot := 0; slot < memberCount; slot++ {
			if getBit(memberBM, slot) {
				slots = append(slots, slot)
			}
		}
		if len(slots) != reported {
			return nil, ErrCorruptBlob
		}
		ts := make([]int64, reported)
		for i, off := range offsets {
			ts[i] = baseTS + off
		}
		return &DecodedBatch{Structure: model.MG, Timestamps: ts, Rows: rows, Slots: slots}, nil
	}
	return nil, fmt.Errorf("%w: unknown format %d", ErrCorruptBlob, format)
}

// blobSpan returns the timestamp span covered by a decoded RTS/IRTS batch.
func (d *DecodedBatch) blobSpan() int64 {
	if len(d.Timestamps) == 0 {
		return 0
	}
	return d.Timestamps[len(d.Timestamps)-1] - d.Timestamps[0]
}

// stubHeaderLen returns the length of a v2/v3 blob's header through the
// end of the summary block — and, for v3, the sub-bucket block — the
// prefix a stub keeps. It requires zone maps and a summary (every
// non-legacy blob carries both); sub-summaries survive stubbing, so stubs
// keep folding at sub-bucket granularity after the payload is gone.
func stubHeaderLen(b []byte) (int, bool) {
	if len(b) < 1 || b[0]&flagZoneMaps == 0 || b[0]&flagSummaries == 0 {
		return 0, false
	}
	off := 1
	ntagsU, n := binary.Uvarint(b[off:])
	if n <= 0 || ntagsU > 1<<16 {
		return 0, false
	}
	ntags := int(ntagsU)
	off += n
	extras := 1 // IRTS count / MG memberCount
	switch b[0] & structMask {
	case blobRTS:
		extras = 2 // count, interval
	case blobIRTS, blobMG:
	default:
		return 0, false
	}
	for i := 0; i < extras; i++ {
		// Varint and Uvarint share continuation bits, so the skip length
		// is the same whichever wrote the field.
		if _, n := binary.Varint(b[off:]); n > 0 {
			off += n
		} else {
			return 0, false
		}
	}
	if len(b) < off+ntags*16 {
		return 0, false
	}
	off += ntags * 16 // zone maps
	rest, err := skipSummaryBlock(b[off:], ntags)
	if err != nil {
		return 0, false
	}
	if b[0]&flagSubBuckets != 0 {
		if rest, err = skipSubBucketBlock(rest, ntags); err != nil {
			return 0, false
		}
	}
	return len(b) - len(rest), true
}

// makeStubBlob returns the summary-only stub of a v2 blob: the header is
// preserved byte for byte — zone maps and summary survive, so aggregate
// folds over the stub stay bit-identical to decoding the payload — and
// everything after it is dropped. ok is false for blobs that are already
// stubs and for legacy blobs (nothing to keep): callers re-encode those
// with the summary format first.
func makeStubBlob(b []byte) ([]byte, bool) {
	if IsStubBlob(b) {
		return nil, false
	}
	n, ok := stubHeaderLen(b)
	if !ok {
		return nil, false
	}
	stub := make([]byte, n)
	copy(stub, b)
	stub[0] |= flagStub
	return stub, true
}

// blobLastTS reads a blob's newest row timestamp from its summary header
// without decoding the payload; ok is false for legacy (pre-summary)
// blobs. Unlike a payload decode's Timestamps[len-1], the summary lastTS
// is the true maximum even for MG blobs, whose member offsets are stored
// in slot order, not time order.
func blobLastTS(b []byte, baseTS int64) (int64, bool) {
	sum, ok := parseBlobSummary(b, baseTS)
	if !ok {
		return 0, false
	}
	return sum.lastTS, true
}
