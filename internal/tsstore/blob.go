// Package tsstore implements the ODH storage component: the three batch
// structures of the paper's hybrid data model (Figure 1) — Regular Time
// Series (RTS), Irregular Time Series (IRTS), and Mixed Grouping (MG) —
// together with the ingest buffers, the flush path that packs b
// operational points into one indexed ValueBlob record, dirty-read scans,
// and the MG→RTS/IRTS reorganizer that Table 1 prescribes for historical
// queries over low-frequency sources.
package tsstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"odh/internal/compress"
	"odh/internal/model"
)

// ErrCorruptBlob reports an undecodable ValueBlob.
var ErrCorruptBlob = errors.New("tsstore: corrupt value blob")

// Blob format bytes. The tag-oriented flag is set when values are stored
// as per-tag columns (the paper's "tag-oriented approach"); without it the
// blob holds one row-major column (the layout ablation).
const (
	blobRTS  = 1
	blobIRTS = 2
	blobMG   = 3

	flagRowOriented = 0x80
	flagZoneMaps    = 0x40
	flagSummaries   = 0x20
	// The tier bits live in the low-5 format field: the three structures
	// only ever used values 1-3, so 0x10 and 0x08 were always zero, and
	// pre-tier readers (whose structure switch covers the whole 0x1F
	// field) reject tiered blobs as unknown formats instead of silently
	// misreading them.
	flagStub   = 0x10 // summary-only stub: header kept, payload dropped
	flagCold   = 0x08 // cold tier: recompacted at maximum codec effort
	structMask = 0x07
	formatMask = 0x1F // the full pre-tier field (error reporting only)
)

// ErrStubbedBlob reports a payload decode attempted against a summary-only
// stub: the rows were dropped by the tier policy, so raw scans over the
// range fail explicitly — degradation is never a silent wrong answer.
// Aggregates keep folding from the surviving header summary.
var ErrStubbedBlob = errors.New("tsstore: blob aged to summary-only stub (raw rows dropped by tier policy)")

// Tier classifies a blob's storage lifecycle stage.
type Tier uint8

// Blob lifecycle tiers, in aging order.
const (
	TierHot  Tier = iota // as flushed by ingest or maintenance
	TierCold             // recompacted at maximum codec effort
	TierStub             // summary-only; payload dropped
)

// String names the tier for stats and CLI output.
func (t Tier) String() string {
	switch t {
	case TierHot:
		return "hot"
	case TierCold:
		return "cold"
	case TierStub:
		return "stub"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// BlobTier reports which lifecycle tier a stored blob is in. A stub that
// was made from a cold blob reports TierStub (stub is the later stage).
func BlobTier(b []byte) Tier {
	if len(b) == 0 {
		return TierHot
	}
	switch {
	case b[0]&flagStub != 0:
		return TierStub
	case b[0]&flagCold != 0:
		return TierCold
	}
	return TierHot
}

// IsStubBlob reports whether b is a summary-only stub.
func IsStubBlob(b []byte) bool { return len(b) > 0 && b[0]&flagStub != 0 }

// TagRange is a pushed-down predicate bound on one tag: rows outside
// [Lo, Hi] cannot match. Zone maps let scans skip whole blobs whose
// per-tag min/max ranges do not overlap — the paper's future-work item
// "adding proper indexing to reduce BLOB scanning for queries on
// attribute values".
type TagRange struct {
	Tag    int
	Lo, Hi float64
}

// zoneMap holds one tag's min/max over a blob's present values. A column
// with no present values stores the empty sentinel (min > max).
type zoneMap struct {
	min, max float64
}

// tagStat accumulates one tag's statistics over the values a decode of
// the blob will return. For lossy compression policies the stored column
// deviates from the originals, so stats are computed from round-tripped
// values — folding a summary must be bit-identical to decoding and
// aggregating the rows.
type tagStat struct {
	nonNull  int64
	sum      float64
	min, max float64
}

func newTagStats(ntags int) []tagStat {
	stats := make([]tagStat, ntags)
	for i := range stats {
		stats[i].min = math.Inf(1)
		stats[i].max = math.Inf(-1)
	}
	return stats
}

// note folds one present value into the stat in row order (sum order must
// match the order a decode-then-aggregate pass would use).
func (s *tagStat) note(v float64) {
	s.nonNull++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// appendZoneMapsFromStats writes per-tag min/max. Empty columns keep the
// sentinel (min > max) that zonesOverlap treats as never matching.
func appendZoneMapsFromStats(dst []byte, stats []tagStat) []byte {
	for i := range stats {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(stats[i].min))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(stats[i].max))
	}
	return dst
}

// readZoneMaps parses ntags zone maps and returns the remaining bytes.
func readZoneMaps(b []byte, ntags int) ([]zoneMap, []byte, error) {
	if len(b) < ntags*16 {
		return nil, nil, ErrCorruptBlob
	}
	zones := make([]zoneMap, ntags)
	for i := range zones {
		zones[i].min = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16:]))
		zones[i].max = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16+8:]))
	}
	return zones, b[ntags*16:], nil
}

// zonesOverlap reports whether a blob with the given zone maps could
// contain a row satisfying every range. An empty-column sentinel never
// overlaps (all values are NULL, and NULL fails any comparison).
func zonesOverlap(zones []zoneMap, ranges []TagRange) bool {
	for _, r := range ranges {
		if r.Tag < 0 || r.Tag >= len(zones) {
			continue
		}
		z := zones[r.Tag]
		if z.min > z.max || z.max < r.Lo || z.min > r.Hi {
			return false
		}
	}
	return true
}

// blobZoneMaps parses the header zone maps of a blob without decoding its
// columns. It returns (nil, false) when the blob carries no zone maps or
// its header is unparseable — callers must then treat every tag range as
// potentially overlapping. The blob cache stores the result so hits keep
// exactly the skip behavior of the raw-blob path.
func blobZoneMaps(b []byte) ([]zoneMap, bool) {
	if len(b) < 1 || b[0]&flagZoneMaps == 0 {
		return nil, false
	}
	format := b[0] & structMask
	rest := b[1:]
	ntagsU, n := binary.Uvarint(rest)
	if n <= 0 || ntagsU > 1<<16 {
		return nil, false
	}
	rest = rest[n:]
	// Skip the structure-specific fields that precede the zone maps.
	switch format {
	case blobRTS:
		if _, n := binary.Uvarint(rest); n > 0 { // count
			rest = rest[n:]
		} else {
			return nil, false
		}
		if _, n := binary.Varint(rest); n > 0 { // interval
			rest = rest[n:]
		} else {
			return nil, false
		}
	case blobIRTS, blobMG:
		if _, n := binary.Uvarint(rest); n > 0 { // count / memberCount
			rest = rest[n:]
		} else {
			return nil, false
		}
	default:
		return nil, false
	}
	zones, _, err := readZoneMaps(rest, int(ntagsU))
	if err != nil {
		return nil, false
	}
	return zones, true
}

// BlobOverlaps reports whether a blob could contain rows satisfying every
// tag range, by peeking only at the header's zone maps — no column
// decode. It returns true (cannot skip) for blobs without zone maps or
// with unparseable headers.
func BlobOverlaps(b []byte, ranges []TagRange) bool {
	if len(ranges) == 0 {
		return true
	}
	zones, ok := blobZoneMaps(b)
	if !ok {
		return true
	}
	return zonesOverlap(zones, ranges)
}

// blobLayout controls how tag values are arranged inside a blob.
type blobLayout uint8

const (
	layoutTagOriented blobLayout = iota // per-tag columns, skippable
	layoutRowOriented                   // single interleaved column (ablation)
)

// encodeOpts carries per-store encoding configuration into the blob codec.
type encodeOpts struct {
	layout   blobLayout
	policies []compress.Policy // per tag; nil means lossless for all
	disable  bool              // raw storage (compression ablation)
	legacy   bool              // write the pre-summary format (compat tests)
	cold     bool              // cold tier: max-effort lossless columns
}

func (o encodeOpts) policy(tag int) compress.Policy {
	p := compress.Policy{}
	if tag < len(o.policies) {
		p = o.policies[tag]
	}
	if o.disable {
		p.Disable = true
	}
	return p
}

// --- bitmaps ---

func bitmapLen(bits int) int { return (bits + 7) / 8 }

func setBit(bm []byte, i int)      { bm[i/8] |= 1 << (i % 8) }
func getBit(bm []byte, i int) bool { return bm[i/8]&(1<<(i%8)) != 0 }

// encodeColumns encodes the tag values of rows (each row has ntags values,
// NaN = NULL) with a presence bitmap and either tag-oriented columns or a
// single row-major column. It also returns per-tag statistics over the
// values a later decode will yield: for a lossy policy the freshly encoded
// column is round-tripped so the stats (and the zone maps and summary
// built from them) agree bit-for-bit with the decode path.
func encodeColumns(rows [][]float64, ntags int, opts encodeOpts) ([]byte, []tagStat) {
	count := len(rows)
	bm := make([]byte, bitmapLen(count*ntags))
	// Tag-major bit order so per-tag decode only needs its own stripe.
	for tag := 0; tag < ntags; tag++ {
		for row := 0; row < count; row++ {
			if !model.IsNull(rows[row][tag]) {
				setBit(bm, tag*count+row)
			}
		}
	}
	stats := newTagStats(ntags)
	dst := append([]byte(nil), bm...)
	if opts.layout == layoutRowOriented {
		// One interleaved column of all present values in row-major order.
		// The interleaved column is always lossless (or raw), so the
		// original values are exactly what decodes back.
		var vals []float64
		for row := 0; row < count; row++ {
			for tag := 0; tag < ntags; tag++ {
				if !model.IsNull(rows[row][tag]) {
					vals = append(vals, rows[row][tag])
				}
			}
		}
		var col []byte
		if opts.cold && !opts.disable {
			col = compress.EncodeColumnMaxEffort(nil, vals)
		} else {
			col = compress.EncodeColumn(nil, vals, compress.Policy{Disable: opts.disable})
		}
		dst = binary.AppendUvarint(dst, uint64(len(col)))
		dst = append(dst, col...)
		for tag := 0; tag < ntags; tag++ {
			for row := 0; row < count; row++ {
				if !model.IsNull(rows[row][tag]) {
					stats[tag].note(rows[row][tag])
				}
			}
		}
		return dst, stats
	}
	for tag := 0; tag < ntags; tag++ {
		var vals []float64
		for row := 0; row < count; row++ {
			if getBit(bm, tag*count+row) {
				vals = append(vals, rows[row][tag])
			}
		}
		pol := opts.policy(tag)
		var col []byte
		eff := vals
		if opts.cold && !pol.Disable {
			// Cold recompaction is always lossless at maximum effort; the
			// inputs are already the round-tripped values earlier lossy
			// encodes produced, so decoded rows — and the stats below —
			// stay bit-identical across the tier transition.
			col = compress.EncodeColumnMaxEffort(nil, vals)
		} else {
			col = compress.EncodeColumn(nil, vals, pol)
			if !pol.Lossless() && !pol.Disable {
				if dec, err := compress.DecodeColumn(col); err == nil && len(dec) == len(vals) {
					eff = dec
				}
			}
		}
		for _, v := range eff {
			stats[tag].note(v)
		}
		dst = binary.AppendUvarint(dst, uint64(len(col)))
		dst = append(dst, col...)
	}
	return dst, stats
}

// --- summary block ---

// The summary block sits between the zone maps and the structure extras
// when flagSummaries is set: uvarint row count, varint(firstTS-baseTS),
// varint(lastTS-firstTS), then per tag a uvarint non-NULL count and the
// float64 sum (little-endian bits). Together with the zone-map min/max it
// answers COUNT/SUM/AVG/MIN/MAX over the whole blob without touching the
// columns.

// appendSummaryBlock writes the summary for rows/stats computed by
// encodeColumns. baseTS is the record-key timestamp the reader will pass
// to parseBlobSummary; first/last bound the rows' decoded timestamps.
func appendSummaryBlock(dst []byte, stats []tagStat, rows, baseTS, firstTS, lastTS int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(rows))
	dst = binary.AppendVarint(dst, firstTS-baseTS)
	dst = binary.AppendVarint(dst, lastTS-firstTS)
	for i := range stats {
		dst = binary.AppendUvarint(dst, uint64(stats[i].nonNull))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(stats[i].sum))
	}
	return dst
}

// skipSummaryBlock advances past a summary block (used by DecodeBlob,
// which reconstructs everything the summary holds anyway).
func skipSummaryBlock(b []byte, ntags int) ([]byte, error) {
	for i := 0; i < 3; i++ {
		_, n := binary.Varint(b) // same wire length as Uvarint for field 0
		if n <= 0 {
			return nil, ErrCorruptBlob
		}
		b = b[n:]
	}
	for tag := 0; tag < ntags; tag++ {
		_, n := binary.Uvarint(b)
		if n <= 0 || len(b) < n+8 {
			return nil, ErrCorruptBlob
		}
		b = b[n+8:]
	}
	return b, nil
}

// blobSummary is the decoded summary of one ValueBlob: everything needed
// to fold the blob into COUNT/SUM/AVG/MIN/MAX aggregates without decoding
// its columns. min/max come from the zone maps (computed from the same
// round-tripped values as the sums), so every field is bit-identical to
// what a decode-and-aggregate pass over the blob would produce.
type blobSummary struct {
	rows     int64
	firstTS  int64 // earliest decoded timestamp
	lastTS   int64 // latest decoded timestamp
	members  int   // MG header member count; 0 for RTS/IRTS
	nonNull  []int64
	sum      []float64
	min, max []float64 // empty-column sentinel: min > max
}

// parseBlobSummary peeks a blob's header summary without decoding columns.
// It returns (nil, false) for legacy blobs (no flagSummaries) or damaged
// headers — callers then fall back to decoding.
func parseBlobSummary(b []byte, baseTS int64) (*blobSummary, bool) {
	if len(b) < 1 || b[0]&flagSummaries == 0 || b[0]&flagZoneMaps == 0 {
		return nil, false
	}
	format := b[0] & structMask
	rest := b[1:]
	ntagsU, n := binary.Uvarint(rest)
	if n <= 0 || ntagsU > 1<<16 {
		return nil, false
	}
	ntags := int(ntagsU)
	rest = rest[n:]
	members := 0
	switch format {
	case blobRTS:
		if _, n := binary.Uvarint(rest); n > 0 { // count
			rest = rest[n:]
		} else {
			return nil, false
		}
		if _, n := binary.Varint(rest); n > 0 { // interval
			rest = rest[n:]
		} else {
			return nil, false
		}
	case blobIRTS:
		if _, n := binary.Uvarint(rest); n > 0 { // count
			rest = rest[n:]
		} else {
			return nil, false
		}
	case blobMG:
		m, n := binary.Uvarint(rest)
		if n <= 0 || m > 1<<20 {
			return nil, false
		}
		members = int(m)
		rest = rest[n:]
	default:
		return nil, false
	}
	zones, rest, err := readZoneMaps(rest, ntags)
	if err != nil {
		return nil, false
	}
	rowsU, n := binary.Uvarint(rest)
	if n <= 0 || rowsU > 1<<24 {
		return nil, false
	}
	rest = rest[n:]
	firstDelta, n := binary.Varint(rest)
	if n <= 0 {
		return nil, false
	}
	rest = rest[n:]
	span, n := binary.Varint(rest)
	if n <= 0 {
		return nil, false
	}
	rest = rest[n:]
	s := &blobSummary{
		rows:    int64(rowsU),
		firstTS: baseTS + firstDelta,
		members: members,
		nonNull: make([]int64, ntags),
		sum:     make([]float64, ntags),
		min:     make([]float64, ntags),
		max:     make([]float64, ntags),
	}
	s.lastTS = s.firstTS + span
	for tag := 0; tag < ntags; tag++ {
		nn, n := binary.Uvarint(rest)
		if n <= 0 || len(rest) < n+8 {
			return nil, false
		}
		s.nonNull[tag] = int64(nn)
		s.sum[tag] = math.Float64frombits(binary.LittleEndian.Uint64(rest[n:]))
		rest = rest[n+8:]
		s.min[tag] = zones[tag].min
		s.max[tag] = zones[tag].max
	}
	return s, true
}

// summaryFromBatch rebuilds a summary from an already-decoded batch — the
// lazy upgrade path for legacy (pre-summary) blobs: the first decode pays
// full cost, the result is cached alongside the batch, and later aggregate
// scans fold it without decoding again. Only the tags that were actually
// decoded carry valid stats, which is safe because cache entries are keyed
// by the decode's tag signature.
func summaryFromBatch(batch *DecodedBatch, ntags int) *blobSummary {
	s := &blobSummary{
		rows:    int64(len(batch.Timestamps)),
		nonNull: make([]int64, ntags),
		sum:     make([]float64, ntags),
		min:     make([]float64, ntags),
		max:     make([]float64, ntags),
	}
	for tag := 0; tag < ntags; tag++ {
		s.min[tag] = math.Inf(1)
		s.max[tag] = math.Inf(-1)
	}
	for i, ts := range batch.Timestamps {
		if i == 0 || ts < s.firstTS {
			s.firstTS = ts
		}
		if i == 0 || ts > s.lastTS {
			s.lastTS = ts
		}
	}
	for _, row := range batch.Rows {
		for tag := 0; tag < ntags && tag < len(row); tag++ {
			v := row[tag]
			if model.IsNull(v) {
				continue
			}
			s.nonNull[tag]++
			s.sum[tag] += v
			if v < s.min[tag] {
				s.min[tag] = v
			}
			if v > s.max[tag] {
				s.max[tag] = v
			}
		}
	}
	if batch.Structure == model.MG {
		for _, slot := range batch.Slots {
			if slot >= s.members {
				s.members = slot + 1
			}
		}
	}
	return s
}

// cacheSummary resolves the summary a cache insert should carry: the
// header block for summary-format blobs, else one computed from the
// decoded batch (valid only for the tags that decode materialized, which
// matches the cache entry's tag signature).
func cacheSummary(blob []byte, baseTS int64, batch *DecodedBatch) *blobSummary {
	if sum, ok := parseBlobSummary(blob, baseTS); ok {
		return sum
	}
	ntags := 0
	if len(batch.Rows) > 0 {
		ntags = len(batch.Rows[0])
	}
	return summaryFromBatch(batch, ntags)
}

// summaryMatches reports whether a parsed header summary agrees with a
// full decode of the same blob (the fsck cross-check). Float fields
// compare by bit pattern: summaries must be exact, not approximately
// right, or aggregate pushdown would silently change query results.
func summaryMatches(s *blobSummary, batch *DecodedBatch) bool {
	ntags := len(s.nonNull)
	ref := summaryFromBatch(batch, ntags)
	if s.rows != ref.rows {
		return false
	}
	if s.rows > 0 && (s.firstTS != ref.firstTS || s.lastTS != ref.lastTS) {
		return false
	}
	for tag := 0; tag < ntags; tag++ {
		if s.nonNull[tag] != ref.nonNull[tag] ||
			math.Float64bits(s.sum[tag]) != math.Float64bits(ref.sum[tag]) ||
			math.Float64bits(s.min[tag]) != math.Float64bits(ref.min[tag]) ||
			math.Float64bits(s.max[tag]) != math.Float64bits(ref.max[tag]) {
			return false
		}
	}
	return true
}

// decodeColumns reconstructs rows from the layout written by encodeColumns.
// wantTags selects which tag indexes to decode (nil = all); unselected tags
// come back NULL. Row-oriented blobs always decode every tag (that is the
// cost the tag-oriented layout avoids).
func decodeColumns(b []byte, count, ntags int, rowOriented bool, wantTags []int) ([][]float64, error) {
	bmLen := bitmapLen(count * ntags)
	if len(b) < bmLen {
		return nil, ErrCorruptBlob
	}
	bm := b[:bmLen]
	b = b[bmLen:]
	rows := make([][]float64, count)
	backing := make([]float64, count*ntags)
	for i := range rows {
		rows[i] = backing[i*ntags : (i+1)*ntags]
		for j := range rows[i] {
			rows[i][j] = model.NullValue
		}
	}
	if rowOriented {
		colLen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < colLen {
			return nil, ErrCorruptBlob
		}
		vals, err := compress.DecodeColumn(b[n : n+int(colLen)])
		if err != nil {
			return nil, err
		}
		vi := 0
		for row := 0; row < count; row++ {
			for tag := 0; tag < ntags; tag++ {
				if getBit(bm, tag*count+row) {
					if vi >= len(vals) {
						return nil, ErrCorruptBlob
					}
					rows[row][tag] = vals[vi]
					vi++
				}
			}
		}
		return rows, nil
	}
	want := make([]bool, ntags)
	if wantTags == nil {
		for i := range want {
			want[i] = true
		}
	} else {
		for _, t := range wantTags {
			if t >= 0 && t < ntags {
				want[t] = true
			}
		}
	}
	for tag := 0; tag < ntags; tag++ {
		colLen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < colLen {
			return nil, ErrCorruptBlob
		}
		col := b[n : n+int(colLen)]
		b = b[n+int(colLen):]
		if !want[tag] {
			continue // the tag-oriented win: skip without decoding
		}
		vals, err := compress.DecodeColumn(col)
		if err != nil {
			return nil, err
		}
		vi := 0
		for row := 0; row < count; row++ {
			if getBit(bm, tag*count+row) {
				if vi >= len(vals) {
					return nil, ErrCorruptBlob
				}
				rows[row][tag] = vals[vi]
				vi++
			}
		}
	}
	return rows, nil
}

// EncodeRTS packs a run of regular points (identical intervals, contiguous
// slots) into an RTS ValueBlob. The record key carries (source, baseTS);
// the blob stores the interval and per-tag columns, so timestamps cost
// zero bytes per point.
func EncodeRTS(points []model.Point, ntags int, intervalMs int64, opts encodeOpts) []byte {
	dst := make([]byte, 0, 64+len(points)*ntags)
	format := byte(blobRTS)
	if opts.layout == layoutRowOriented {
		format |= flagRowOriented
	}
	format |= flagZoneMaps
	if !opts.legacy {
		format |= flagSummaries
	}
	if opts.cold && !opts.legacy {
		format |= flagCold
	}
	dst = append(dst, format)
	dst = binary.AppendUvarint(dst, uint64(ntags))
	dst = binary.AppendUvarint(dst, uint64(len(points)))
	dst = binary.AppendVarint(dst, intervalMs)
	rows := make([][]float64, len(points))
	for i, p := range points {
		rows[i] = p.Values
	}
	cols, stats := encodeColumns(rows, ntags, opts)
	dst = appendZoneMapsFromStats(dst, stats)
	if !opts.legacy {
		// RTS decode reconstructs timestamps from the record key and the
		// interval; summarize the same arithmetic, not the input points.
		var base, last int64
		if len(points) > 0 {
			base = points[0].TS
			last = base + int64(len(points)-1)*intervalMs
		}
		dst = appendSummaryBlock(dst, stats, int64(len(points)), base, base, last)
	}
	return append(dst, cols...)
}

// EncodeIRTS packs irregular points into an IRTS ValueBlob; timestamps are
// delta-of-delta encoded.
func EncodeIRTS(points []model.Point, ntags int, opts encodeOpts) []byte {
	dst := make([]byte, 0, 64+len(points)*ntags)
	format := byte(blobIRTS)
	if opts.layout == layoutRowOriented {
		format |= flagRowOriented
	}
	format |= flagZoneMaps
	if !opts.legacy {
		format |= flagSummaries
	}
	if opts.cold && !opts.legacy {
		format |= flagCold
	}
	dst = append(dst, format)
	dst = binary.AppendUvarint(dst, uint64(ntags))
	dst = binary.AppendUvarint(dst, uint64(len(points)))
	rows := make([][]float64, len(points))
	for i, p := range points {
		rows[i] = p.Values
	}
	cols, stats := encodeColumns(rows, ntags, opts)
	dst = appendZoneMapsFromStats(dst, stats)
	if !opts.legacy {
		// IRTS timestamps ride inline and need not be sorted; bound them.
		var base, first, last int64
		if len(points) > 0 {
			base, first, last = points[0].TS, points[0].TS, points[0].TS
			for _, p := range points[1:] {
				if p.TS < first {
					first = p.TS
				}
				if p.TS > last {
					last = p.TS
				}
			}
		}
		dst = appendSummaryBlock(dst, stats, int64(len(points)), base, first, last)
	}
	ts := make([]int64, len(points))
	for i, p := range points {
		ts[i] = p.TS
	}
	dst = compress.AppendDeltaOfDeltas(dst, ts)
	return append(dst, cols...)
}

// EncodeMG packs one time window's values from an MG group into an MG
// ValueBlob. present[slot] reports which members delivered a record;
// rows[slot] holds each member's tag values and tsOffsets[slot] the
// member's timestamp offset from the record's window base (low-frequency
// sources rarely sample at exactly the same instant, so MG records bucket
// a window and keep per-member offsets).
func EncodeMG(present []bool, rows [][]float64, tsOffsets []int64, ntags int, opts encodeOpts) []byte {
	memberCount := len(present)
	dst := make([]byte, 0, 64+memberCount*ntags)
	format := byte(blobMG)
	if opts.layout == layoutRowOriented {
		format |= flagRowOriented
	}
	format |= flagZoneMaps
	if !opts.legacy {
		format |= flagSummaries
	}
	dst = append(dst, format)
	dst = binary.AppendUvarint(dst, uint64(ntags))
	dst = binary.AppendUvarint(dst, uint64(memberCount))
	memberBM := make([]byte, bitmapLen(memberCount))
	var reported [][]float64
	var offsets []int64
	for slot, ok := range present {
		if ok {
			setBit(memberBM, slot)
			reported = append(reported, rows[slot])
			if slot < len(tsOffsets) {
				offsets = append(offsets, tsOffsets[slot])
			} else {
				offsets = append(offsets, 0)
			}
		}
	}
	cols, stats := encodeColumns(reported, ntags, opts)
	dst = appendZoneMapsFromStats(dst, stats)
	if !opts.legacy {
		// MG timestamps are offsets from the record's window base, which is
		// the key timestamp the reader passes as baseTS — summarize offsets
		// against base 0 so the parse reconstructs absolute bounds.
		var first, last int64
		for i, off := range offsets {
			if i == 0 || off < first {
				first = off
			}
			if i == 0 || off > last {
				last = off
			}
		}
		dst = appendSummaryBlock(dst, stats, int64(len(reported)), 0, first, last)
	}
	dst = append(dst, memberBM...)
	dst = binary.AppendUvarint(dst, uint64(len(reported)))
	dst = compress.AppendDeltas(dst, offsets)
	return append(dst, cols...)
}

// DecodedBatch is the result of decoding any ValueBlob.
type DecodedBatch struct {
	// Structure reports which batch structure the blob used.
	Structure model.Structure
	// Timestamps holds one entry per row. RTS rows reconstruct them from
	// the base and interval; IRTS rows carry them inline; MG rows are the
	// record's window base plus each member's stored offset.
	Timestamps []int64
	// Rows holds decoded tag values (selected tags only; others NULL).
	Rows [][]float64
	// Slots maps MG rows to group member slots; nil for RTS/IRTS.
	Slots []int
}

// DecodeBlob decodes a ValueBlob of any structure. baseTS is the timestamp
// from the record key (the batch's first timestamp for RTS, unused for
// IRTS which carries timestamps inline, the record timestamp for MG).
// wantTags selects tag columns (nil = all).
func DecodeBlob(b []byte, baseTS int64, wantTags []int) (*DecodedBatch, error) {
	if len(b) < 1 {
		return nil, ErrCorruptBlob
	}
	if b[0]&flagStub != 0 {
		// The payload is gone by design, not by damage: surface the typed
		// error so scans can distinguish tier degradation from corruption
		// (lenient recovery must never quarantine a stub).
		return nil, ErrStubbedBlob
	}
	format := b[0] & structMask
	rowOriented := b[0]&flagRowOriented != 0
	hasZones := b[0]&flagZoneMaps != 0
	hasSummary := b[0]&flagSummaries != 0
	b = b[1:]
	ntagsU, n := binary.Uvarint(b)
	if n <= 0 || ntagsU > 1<<16 {
		return nil, ErrCorruptBlob
	}
	ntags := int(ntagsU)
	b = b[n:]
	switch format {
	case blobRTS:
		countU, n := binary.Uvarint(b)
		if n <= 0 || countU > 1<<24 {
			return nil, ErrCorruptBlob
		}
		count := int(countU)
		b = b[n:]
		interval, n := binary.Varint(b)
		if n <= 0 {
			return nil, ErrCorruptBlob
		}
		b = b[n:]
		if hasZones {
			var err error
			if _, b, err = readZoneMaps(b, ntags); err != nil {
				return nil, err
			}
		}
		if hasSummary {
			var err error
			if b, err = skipSummaryBlock(b, ntags); err != nil {
				return nil, err
			}
		}
		rows, err := decodeColumns(b, count, ntags, rowOriented, wantTags)
		if err != nil {
			return nil, err
		}
		ts := make([]int64, count)
		for i := range ts {
			ts[i] = baseTS + int64(i)*interval
		}
		return &DecodedBatch{Structure: model.RTS, Timestamps: ts, Rows: rows}, nil
	case blobIRTS:
		countU, n := binary.Uvarint(b)
		if n <= 0 || countU > 1<<24 {
			return nil, ErrCorruptBlob
		}
		count := int(countU)
		b = b[n:]
		if hasZones {
			var err error
			if _, b, err = readZoneMaps(b, ntags); err != nil {
				return nil, err
			}
		}
		if hasSummary {
			var err error
			if b, err = skipSummaryBlock(b, ntags); err != nil {
				return nil, err
			}
		}
		ts, rest, err := compress.DeltaOfDeltas(b)
		if err != nil || len(ts) != count {
			return nil, ErrCorruptBlob
		}
		rows, err := decodeColumns(rest, count, ntags, rowOriented, wantTags)
		if err != nil {
			return nil, err
		}
		return &DecodedBatch{Structure: model.IRTS, Timestamps: ts, Rows: rows}, nil
	case blobMG:
		memberU, n := binary.Uvarint(b)
		if n <= 0 || memberU > 1<<20 {
			return nil, ErrCorruptBlob
		}
		memberCount := int(memberU)
		b = b[n:]
		if hasZones {
			var err error
			if _, b, err = readZoneMaps(b, ntags); err != nil {
				return nil, err
			}
		}
		if hasSummary {
			var err error
			if b, err = skipSummaryBlock(b, ntags); err != nil {
				return nil, err
			}
		}
		bmLen := bitmapLen(memberCount)
		if len(b) < bmLen {
			return nil, ErrCorruptBlob
		}
		memberBM := b[:bmLen]
		b = b[bmLen:]
		reportedU, n := binary.Uvarint(b)
		if n <= 0 || reportedU > uint64(memberCount) {
			return nil, ErrCorruptBlob
		}
		reported := int(reportedU)
		b = b[n:]
		offsets, rest, err := compress.Deltas(b)
		if err != nil || len(offsets) != reported {
			return nil, ErrCorruptBlob
		}
		rows, err := decodeColumns(rest, reported, ntags, rowOriented, wantTags)
		if err != nil {
			return nil, err
		}
		slots := make([]int, 0, reported)
		for slot := 0; slot < memberCount; slot++ {
			if getBit(memberBM, slot) {
				slots = append(slots, slot)
			}
		}
		if len(slots) != reported {
			return nil, ErrCorruptBlob
		}
		ts := make([]int64, reported)
		for i, off := range offsets {
			ts[i] = baseTS + off
		}
		return &DecodedBatch{Structure: model.MG, Timestamps: ts, Rows: rows, Slots: slots}, nil
	}
	return nil, fmt.Errorf("%w: unknown format %d", ErrCorruptBlob, format)
}

// blobSpan returns the timestamp span covered by a decoded RTS/IRTS batch.
func (d *DecodedBatch) blobSpan() int64 {
	if len(d.Timestamps) == 0 {
		return 0
	}
	return d.Timestamps[len(d.Timestamps)-1] - d.Timestamps[0]
}

// stubHeaderLen returns the length of a v2 blob's header through the end
// of the summary block — the prefix a stub keeps. It requires zone maps
// and a summary (every non-legacy blob carries both).
func stubHeaderLen(b []byte) (int, bool) {
	if len(b) < 1 || b[0]&flagZoneMaps == 0 || b[0]&flagSummaries == 0 {
		return 0, false
	}
	off := 1
	ntagsU, n := binary.Uvarint(b[off:])
	if n <= 0 || ntagsU > 1<<16 {
		return 0, false
	}
	ntags := int(ntagsU)
	off += n
	extras := 1 // IRTS count / MG memberCount
	switch b[0] & structMask {
	case blobRTS:
		extras = 2 // count, interval
	case blobIRTS, blobMG:
	default:
		return 0, false
	}
	for i := 0; i < extras; i++ {
		// Varint and Uvarint share continuation bits, so the skip length
		// is the same whichever wrote the field.
		if _, n := binary.Varint(b[off:]); n > 0 {
			off += n
		} else {
			return 0, false
		}
	}
	if len(b) < off+ntags*16 {
		return 0, false
	}
	off += ntags * 16 // zone maps
	rest, err := skipSummaryBlock(b[off:], ntags)
	if err != nil {
		return 0, false
	}
	return len(b) - len(rest), true
}

// makeStubBlob returns the summary-only stub of a v2 blob: the header is
// preserved byte for byte — zone maps and summary survive, so aggregate
// folds over the stub stay bit-identical to decoding the payload — and
// everything after it is dropped. ok is false for blobs that are already
// stubs and for legacy blobs (nothing to keep): callers re-encode those
// with the summary format first.
func makeStubBlob(b []byte) ([]byte, bool) {
	if IsStubBlob(b) {
		return nil, false
	}
	n, ok := stubHeaderLen(b)
	if !ok {
		return nil, false
	}
	stub := make([]byte, n)
	copy(stub, b)
	stub[0] |= flagStub
	return stub, true
}

// blobLastTS reads a blob's newest row timestamp from its summary header
// without decoding the payload; ok is false for legacy (pre-summary)
// blobs. Unlike a payload decode's Timestamps[len-1], the summary lastTS
// is the true maximum even for MG blobs, whose member offsets are stored
// in slot order, not time order.
func blobLastTS(b []byte, baseTS int64) (int64, bool) {
	sum, ok := parseBlobSummary(b, baseTS)
	if !ok {
		return 0, false
	}
	return sum.lastTS, true
}
