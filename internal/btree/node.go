// Package btree implements a disk-backed B+tree over the pagestore. It is
// the index structure used everywhere the paper uses Informix B-trees: the
// primary key of the three batch stores (RTS, IRTS, MG) and the secondary
// indexes of the relational baseline engine. Keys and values are opaque
// byte strings; keys compare with bytes.Compare (see keyenc for
// order-preserving encodings). Values larger than maxInlineValue spill to
// overflow page chains, which is how multi-kilobyte ValueBlobs are stored.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"odh/internal/pagestore"
)

// Node page layout:
//
//	[0]     type: 1 = leaf, 2 = internal
//	[1]     reserved
//	[2:4]   ncells
//	[4:6]   cellStart: lowest offset of cell content (cells fill toward PageSize)
//	[6:8]   fragBytes: dead bytes inside the cell area from removals
//	[8:12]  leaf: right-sibling page; internal: rightmost child page
//	[12:]   slot directory (ncells * uint16 cell offsets), then free space,
//	        then cell content.
//
// Leaf cell:     keyLen u16, valLen u16 (high bit = overflow), key, value.
// Overflow ref:  totalLen u32, firstPage u32 (in place of the value).
// Internal cell: keyLen u16, child u32, key. Child i holds keys < key i;
// the header's rightmost child holds keys >= the last separator.
const (
	nodeHeaderSize = 12
	slotSize       = 2

	typeLeaf     = 1
	typeInternal = 2

	// MaxKeyLen bounds key size so every node fits several cells.
	MaxKeyLen = 512
	// maxInlineValue is the largest value stored inside a leaf cell; larger
	// values go to overflow chains.
	maxInlineValue = 1024

	ovfHeaderSize = 6 // next page u32 + chunk len u16
	ovfChunkSize  = pagestore.PageSize - ovfHeaderSize

	overflowBit = 0x8000
)

// Errors returned by tree operations.
var (
	ErrKeyTooLong = fmt.Errorf("btree: key exceeds %d bytes", MaxKeyLen)
	ErrNotFound   = errors.New("btree: key not found")
	errCorrupt    = errors.New("btree: corrupt node")
)

// node wraps a page's bytes with B+tree accessors. It does not own the
// frame; the caller manages pinning.
type node struct {
	data []byte
}

func (n node) typ() byte      { return n.data[0] }
func (n node) isLeaf() bool   { return n.data[0] == typeLeaf }
func (n node) ncells() int    { return int(binary.LittleEndian.Uint16(n.data[2:])) }
func (n node) cellStart() int { return int(binary.LittleEndian.Uint16(n.data[4:])) }
func (n node) fragBytes() int { return int(binary.LittleEndian.Uint16(n.data[6:])) }
func (n node) next() pagestore.PageID {
	return pagestore.PageID(binary.LittleEndian.Uint32(n.data[8:]))
}

func (n node) setType(t byte)     { n.data[0] = t }
func (n node) setNcells(c int)    { binary.LittleEndian.PutUint16(n.data[2:], uint16(c)) }
func (n node) setCellStart(o int) { binary.LittleEndian.PutUint16(n.data[4:], uint16(o)) }
func (n node) setFragBytes(b int) { binary.LittleEndian.PutUint16(n.data[6:], uint16(b)) }
func (n node) setNext(p pagestore.PageID) {
	binary.LittleEndian.PutUint32(n.data[8:], uint32(p))
}

// initNode formats a fresh page as an empty node of the given type.
func initNode(data []byte, typ byte) node {
	n := node{data}
	n.setType(typ)
	n.setNcells(0)
	n.setCellStart(pagestore.PageSize)
	n.setFragBytes(0)
	n.setNext(pagestore.InvalidPage)
	return n
}

func (n node) slotOffset(i int) int {
	return int(binary.LittleEndian.Uint16(n.data[nodeHeaderSize+i*slotSize:]))
}

func (n node) setSlotOffset(i, off int) {
	binary.LittleEndian.PutUint16(n.data[nodeHeaderSize+i*slotSize:], uint16(off))
}

// cellKey returns the key of cell i (both node types share the layout
// prefix keyLen u16 at the cell head; leaf key starts at +4, internal at +6).
func (n node) cellKey(i int) []byte {
	off := n.slotOffset(i)
	keyLen := int(binary.LittleEndian.Uint16(n.data[off:]))
	if n.isLeaf() {
		return n.data[off+4 : off+4+keyLen]
	}
	return n.data[off+6 : off+6+keyLen]
}

// leafCell returns the key, inline value bytes, and overflow flag of leaf
// cell i. When ovf is true, val holds the 8-byte overflow reference.
func (n node) leafCell(i int) (key, val []byte, ovf bool) {
	off := n.slotOffset(i)
	keyLen := int(binary.LittleEndian.Uint16(n.data[off:]))
	rawLen := binary.LittleEndian.Uint16(n.data[off+2:])
	ovf = rawLen&overflowBit != 0
	valLen := int(rawLen &^ overflowBit)
	key = n.data[off+4 : off+4+keyLen]
	val = n.data[off+4+keyLen : off+4+keyLen+valLen]
	return key, val, ovf
}

// child returns the child pointer of internal cell i.
func (n node) child(i int) pagestore.PageID {
	off := n.slotOffset(i)
	return pagestore.PageID(binary.LittleEndian.Uint32(n.data[off+2:]))
}

func (n node) setChild(i int, p pagestore.PageID) {
	off := n.slotOffset(i)
	binary.LittleEndian.PutUint32(n.data[off+2:], uint32(p))
}

// cellSize returns the stored size of cell i.
func (n node) cellSize(i int) int {
	off := n.slotOffset(i)
	keyLen := int(binary.LittleEndian.Uint16(n.data[off:]))
	if n.isLeaf() {
		valLen := int(binary.LittleEndian.Uint16(n.data[off+2:]) &^ overflowBit)
		return 4 + keyLen + valLen
	}
	return 6 + keyLen
}

// freeContiguous returns the bytes available between the slot directory and
// the cell content area.
func (n node) freeContiguous() int {
	return n.cellStart() - nodeHeaderSize - n.ncells()*slotSize
}

// freeTotal includes fragmented space reclaimable by compaction.
func (n node) freeTotal() int { return n.freeContiguous() + n.fragBytes() }

// search finds the first cell whose key is >= key. found reports an exact
// match.
func (n node) search(key []byte) (idx int, found bool) {
	lo, hi := 0, n.ncells()
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(n.cellKey(mid), key) {
		case 0:
			return mid, true
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// descend returns the child slot to follow for key: the first cell whose
// separator is strictly greater than key (child i holds keys < separator i,
// so an exact separator match belongs to the right-hand child).
func (n node) descend(key []byte) int {
	idx, found := n.search(key)
	if found {
		idx++
	}
	return idx
}

// insertCellAt writes raw cell bytes and a slot at index i. Caller must
// ensure freeTotal() >= len(cell)+slotSize; insertCellAt compacts if the
// contiguous region is too small.
func (n node) insertCellAt(i int, cell []byte) error {
	need := len(cell) + slotSize
	if n.freeTotal() < need {
		return errCorrupt // caller should have split first
	}
	if n.freeContiguous() < need {
		n.compact()
	}
	off := n.cellStart() - len(cell)
	copy(n.data[off:], cell)
	n.setCellStart(off)
	// Shift slots i.. right by one.
	nc := n.ncells()
	start := nodeHeaderSize + i*slotSize
	end := nodeHeaderSize + nc*slotSize
	copy(n.data[start+slotSize:end+slotSize], n.data[start:end])
	n.setSlotOffset(i, off)
	n.setNcells(nc + 1)
	return nil
}

// removeCellAt deletes the slot at i; the cell bytes become fragmentation.
func (n node) removeCellAt(i int) {
	n.setFragBytes(n.fragBytes() + n.cellSize(i))
	nc := n.ncells()
	start := nodeHeaderSize + i*slotSize
	end := nodeHeaderSize + nc*slotSize
	copy(n.data[start:], n.data[start+slotSize:end])
	n.setNcells(nc - 1)
}

// compact rewrites all cells contiguously at the page tail, clearing
// fragmentation.
func (n node) compact() {
	nc := n.ncells()
	type cellRef struct {
		slot int
		body []byte
	}
	cells := make([]cellRef, nc)
	for i := 0; i < nc; i++ {
		off := n.slotOffset(i)
		size := n.cellSize(i)
		body := make([]byte, size)
		copy(body, n.data[off:off+size])
		cells[i] = cellRef{i, body}
	}
	pos := pagestore.PageSize
	for _, c := range cells {
		pos -= len(c.body)
		copy(n.data[pos:], c.body)
		n.setSlotOffset(c.slot, pos)
	}
	n.setCellStart(pos)
	n.setFragBytes(0)
}

// makeLeafCell builds the raw bytes of a leaf cell. val is either the inline
// value or an 8-byte overflow reference when ovf is set.
func makeLeafCell(key, val []byte, ovf bool) []byte {
	cell := make([]byte, 4+len(key)+len(val))
	binary.LittleEndian.PutUint16(cell, uint16(len(key)))
	raw := uint16(len(val))
	if ovf {
		raw |= overflowBit
	}
	binary.LittleEndian.PutUint16(cell[2:], raw)
	copy(cell[4:], key)
	copy(cell[4+len(key):], val)
	return cell
}

// makeInternalCell builds the raw bytes of an internal cell.
func makeInternalCell(key []byte, child pagestore.PageID) []byte {
	cell := make([]byte, 6+len(key))
	binary.LittleEndian.PutUint16(cell, uint16(len(key)))
	binary.LittleEndian.PutUint32(cell[2:], uint32(child))
	copy(cell[6:], key)
	return cell
}
