package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"odh/internal/keyenc"
	"odh/internal/pagestore"
)

func newTree(t testing.TB, name string) *Tree {
	t.Helper()
	store, err := pagestore.Open(pagestore.NewMemFile(), pagestore.Options{PoolPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(store, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return tr
}

func TestPutGetSmall(t *testing.T) {
	tr := newTree(t, "small")
	if err := tr.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get([]byte("k1"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := tr.Get([]byte("missing")); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if tr.Count() != 1 {
		t.Fatalf("Count = %d, want 1", tr.Count())
	}
}

func TestPutReplace(t *testing.T) {
	tr := newTree(t, "replace")
	key := []byte("k")
	for i := 0; i < 10; i++ {
		if err := tr.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Get(key)
	if err != nil || string(got) != "v9" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if tr.Count() != 1 {
		t.Fatalf("Count = %d after replaces, want 1", tr.Count())
	}
}

func TestManyKeysOrdered(t *testing.T) {
	tr := newTree(t, "many")
	const n = 5000
	for i := 0; i < n; i++ {
		key := keyenc.AppendInt64(nil, int64(i))
		val := binary.LittleEndian.AppendUint32(nil, uint32(i*7))
		if err := tr.Put(key, val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d, want %d", tr.Count(), n)
	}
	if tr.Height() < 2 {
		t.Fatalf("tree never split: height %d", tr.Height())
	}
	for i := 0; i < n; i += 37 {
		key := keyenc.AppendInt64(nil, int64(i))
		val, err := tr.Get(key)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if binary.LittleEndian.Uint32(val) != uint32(i*7) {
			t.Fatalf("wrong value for %d", i)
		}
	}
}

func TestManyKeysRandomOrder(t *testing.T) {
	tr := newTree(t, "random")
	const n = 5000
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(n)
	for _, i := range perm {
		key := keyenc.AppendInt64(nil, int64(i))
		if err := tr.Put(key, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	// Full scan must be in key order and complete.
	var prev []byte
	count := 0
	err := tr.Scan(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order at %d", count)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
}

// TestSeekWithLoadHook pins the hook contract the tsstore blob cache
// relies on: the callback fires before every leaf snapshot — the initial
// seek's and each advance across a leaf boundary — so a version recorded
// in the hook is never newer than any cell bytes later read from that
// leaf copy.
func TestSeekWithLoadHook(t *testing.T) {
	tr := newTree(t, "loadhook")
	const n = 2000
	val := bytes.Repeat([]byte("v"), 32)
	for i := 0; i < n; i++ {
		if err := tr.Put(keyenc.SourceTime(1, int64(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	loads := 0
	seen := 0
	c := tr.SeekWithLoadHook(nil, func() { loads++ })
	if loads == 0 {
		t.Fatal("hook did not fire for the initial seek")
	}
	lastLoads := loads
	for c.Valid() {
		if loads > lastLoads {
			// New leaf: its cells were copied after (not before) the hook.
			lastLoads = loads
		}
		if _, err := c.Value(); err != nil {
			t.Fatal(err)
		}
		seen++
		c.Next()
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("walked %d entries, want %d", seen, n)
	}
	if loads < 2 {
		t.Fatalf("expected a multi-leaf walk, got %d leaf loads", loads)
	}
	// Plain Seek still works with no hook.
	if c := tr.Seek(nil); !c.Valid() {
		t.Fatal("plain Seek broken")
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr := newTree(t, "range")
	for i := 0; i < 100; i++ {
		tr.Put(keyenc.AppendInt64(nil, int64(i)), []byte{byte(i)})
	}
	lo := keyenc.AppendInt64(nil, 10)
	hi := keyenc.AppendInt64(nil, 20)
	var seen []int64
	if err := tr.Scan(lo, hi, func(k, v []byte) bool {
		id, _, _ := keyenc.Int64(k)
		seen = append(seen, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 || seen[0] != 10 || seen[9] != 19 {
		t.Fatalf("range [10,20) = %v", seen)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newTree(t, "stop")
	for i := 0; i < 100; i++ {
		tr.Put(keyenc.AppendInt64(nil, int64(i)), []byte{1})
	}
	n := 0
	tr.Scan(nil, nil, func(k, v []byte) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestOverflowValues(t *testing.T) {
	tr := newTree(t, "ovf")
	big := make([]byte, 3*pagestore.PageSize+123)
	for i := range big {
		big[i] = byte(i % 251)
	}
	if err := tr.Put([]byte("blob"), big); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get([]byte("blob"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("overflow value corrupted")
	}
	if tr.ValueBytes() != uint64(len(big)) {
		t.Fatalf("ValueBytes = %d, want %d", tr.ValueBytes(), len(big))
	}
	// Replace with a small value: chain must be freed and reused.
	store := tr.store
	pagesBefore := store.NumPages()
	if err := tr.Put([]byte("blob"), []byte("small")); err != nil {
		t.Fatal(err)
	}
	got, err = tr.Get([]byte("blob"))
	if err != nil || string(got) != "small" {
		t.Fatalf("Get after replace: %q %v", got, err)
	}
	// Inserting another big value should reuse freed pages, not extend much.
	if err := tr.Put([]byte("blob2"), big); err != nil {
		t.Fatal(err)
	}
	if store.NumPages() > pagesBefore+1 {
		t.Fatalf("freed overflow pages not reused: %d -> %d", pagesBefore, store.NumPages())
	}
}

func TestOverflowValueViaCursor(t *testing.T) {
	tr := newTree(t, "ovfcur")
	big := make([]byte, 2*pagestore.PageSize)
	for i := range big {
		big[i] = byte(i)
	}
	tr.Put([]byte("a"), []byte("small"))
	tr.Put([]byte("b"), big)
	c := tr.Seek([]byte("b"))
	if !c.Valid() {
		t.Fatal("cursor invalid")
	}
	if c.ValueSize() != len(big) {
		t.Fatalf("ValueSize = %d, want %d", c.ValueSize(), len(big))
	}
	v, err := c.Value()
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("cursor overflow value wrong: %v", err)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, "del")
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(keyenc.AppendInt64(nil, int64(i)), []byte{byte(i)})
	}
	for i := 0; i < n; i += 2 {
		if err := tr.Delete(keyenc.AppendInt64(nil, int64(i))); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	if tr.Count() != n/2 {
		t.Fatalf("Count = %d, want %d", tr.Count(), n/2)
	}
	for i := 0; i < n; i++ {
		_, err := tr.Get(keyenc.AppendInt64(nil, int64(i)))
		if i%2 == 0 && err != ErrNotFound {
			t.Fatalf("deleted key %d still present (%v)", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving key %d lost: %v", i, err)
		}
	}
	if err := tr.Delete([]byte("never")); err != ErrNotFound {
		t.Fatalf("Delete missing = %v", err)
	}
}

func TestScanSkipsEmptiedLeaves(t *testing.T) {
	tr := newTree(t, "empty-leaves")
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Put(keyenc.AppendInt64(nil, int64(i)), bytes.Repeat([]byte{1}, 64))
	}
	// Empty out a middle stripe entirely.
	for i := 1000; i < 2000; i++ {
		tr.Delete(keyenc.AppendInt64(nil, int64(i)))
	}
	count := 0
	tr.Scan(nil, nil, func(k, v []byte) bool { count++; return true })
	if count != 2000 {
		t.Fatalf("scan over emptied leaves visited %d, want 2000", count)
	}
	// Seek into the emptied stripe lands on the next live key.
	c := tr.Seek(keyenc.AppendInt64(nil, 1500))
	if !c.Valid() {
		t.Fatal("seek into gap invalid")
	}
	id, _, _ := keyenc.Int64(c.Key())
	if id != 2000 {
		t.Fatalf("seek into gap = %d, want 2000", id)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	f := pagestore.NewMemFile()
	store, err := pagestore.Open(f, pagestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(store, "persist")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Put(keyenc.AppendInt64(nil, int64(i)), binary.LittleEndian.AppendUint64(nil, uint64(i)))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := pagestore.Open(f, pagestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	tr2, err := Open(store2, "persist")
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != 500 {
		t.Fatalf("Count after reopen = %d", tr2.Count())
	}
	for i := 0; i < 500; i += 11 {
		v, err := tr2.Get(keyenc.AppendInt64(nil, int64(i)))
		if err != nil || binary.LittleEndian.Uint64(v) != uint64(i) {
			t.Fatalf("Get %d after reopen: %v", i, err)
		}
	}
}

func TestMultipleTreesShareStore(t *testing.T) {
	store, err := pagestore.Open(pagestore.NewMemFile(), pagestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	a, err := Open(store, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(store, "b")
	if err != nil {
		t.Fatal(err)
	}
	a.Put([]byte("k"), []byte("from-a"))
	b.Put([]byte("k"), []byte("from-b"))
	va, _ := a.Get([]byte("k"))
	vb, _ := b.Get([]byte("k"))
	if string(va) != "from-a" || string(vb) != "from-b" {
		t.Fatalf("trees interfered: %q %q", va, vb)
	}
}

func TestKeyTooLong(t *testing.T) {
	tr := newTree(t, "long")
	if err := tr.Put(make([]byte, MaxKeyLen+1), []byte("v")); err != ErrKeyTooLong {
		t.Fatalf("err = %v, want ErrKeyTooLong", err)
	}
	if err := tr.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := newTree(t, "varkeys")
	rng := rand.New(rand.NewSource(7))
	ref := map[string]string{}
	for i := 0; i < 2000; i++ {
		klen := 1 + rng.Intn(60)
		k := make([]byte, klen)
		rng.Read(k)
		v := fmt.Sprintf("val-%d", i)
		ref[string(k)] = v
		if err := tr.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != uint64(len(ref)) {
		t.Fatalf("Count = %d, want %d", tr.Count(), len(ref))
	}
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := tr.Scan(nil, nil, func(k, v []byte) bool {
		if string(k) != keys[i] || string(v) != ref[keys[i]] {
			t.Fatalf("mismatch at %d", i)
		}
		i++
		return true
	})
	if err != nil || i != len(keys) {
		t.Fatalf("scan: %v, visited %d/%d", err, i, len(keys))
	}
}

// TestQuickAgainstMap drives random Put/Delete/Get mixes against a Go map
// as the reference model.
func TestQuickAgainstMap(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	check := func(seed int64) bool {
		tr := newTree(t, fmt.Sprintf("quick-%d", seed))
		rng := rand.New(rand.NewSource(seed))
		ref := map[string][]byte{}
		for op := 0; op < 800; op++ {
			k := keyenc.AppendInt64(nil, int64(rng.Intn(200)))
			switch rng.Intn(3) {
			case 0, 1:
				v := make([]byte, rng.Intn(100))
				rng.Read(v)
				if err := tr.Put(k, v); err != nil {
					return false
				}
				ref[string(k)] = v
			case 2:
				err := tr.Delete(k)
				_, existed := ref[string(k)]
				if existed != (err == nil) {
					return false
				}
				delete(ref, string(k))
			}
		}
		if tr.Count() != uint64(len(ref)) {
			return false
		}
		for k, want := range ref {
			got, err := tr.Get([]byte(k))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCountRange(t *testing.T) {
	tr := newTree(t, "countrange")
	for i := 0; i < 100; i++ {
		tr.Put(keyenc.AppendInt64(nil, int64(i)), bytes.Repeat([]byte{7}, 10))
	}
	n, total, err := tr.CountRange(keyenc.AppendInt64(nil, 25), keyenc.AppendInt64(nil, 75))
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || total != 500 {
		t.Fatalf("CountRange = %d entries, %d bytes; want 50, 500", n, total)
	}
}

// benchKeySpace bounds benchmark trees so b.N escalation cannot grow the
// tree (and the run time) without limit; past the key space, puts become
// replacements, which is the same code path.
const benchKeySpace = 200_000

func BenchmarkPutSequential(b *testing.B) {
	tr := newTree(b, "bench-seq")
	val := bytes.Repeat([]byte{1}, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keyenc.AppendInt64(nil, int64(i%benchKeySpace)), val)
	}
}

func BenchmarkPutRandom(b *testing.B) {
	tr := newTree(b, "bench-rand")
	val := bytes.Repeat([]byte{1}, 64)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keyenc.AppendInt64(nil, rng.Int63n(benchKeySpace)), val)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := newTree(b, "bench-get")
	val := bytes.Repeat([]byte{1}, 64)
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Put(keyenc.AppendInt64(nil, int64(i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keyenc.AppendInt64(nil, int64(i%n)))
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	tr := newTree(t, "rw")
	const writers = 2
	const readers = 4
	const perWriter = 3000
	done := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				key := keyenc.AppendInt64(nil, int64(w*perWriter+i))
				if err := tr.Put(key, []byte{byte(i)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for r := 0; r < readers; r++ {
		go func() {
			for round := 0; round < 40; round++ {
				// Scans must see an ordered, non-torn view.
				var prev []byte
				err := tr.Scan(nil, nil, func(k, v []byte) bool {
					if prev != nil && bytes.Compare(prev, k) >= 0 {
						return false
					}
					prev = append(prev[:0], k...)
					return true
				})
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < writers+readers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != writers*perWriter {
		t.Fatalf("Count = %d, want %d", tr.Count(), writers*perWriter)
	}
}
