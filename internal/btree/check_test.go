package btree

import (
	"errors"
	"fmt"
	"testing"

	"odh/internal/pagestore"
)

// buildCheckedTree populates a multi-level tree with a mix of inline and
// overflow values.
func buildCheckedTree(t *testing.T, n int) *Tree {
	t.Helper()
	tr := newTree(t, "chk")
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		var val []byte
		if i%37 == 0 {
			val = make([]byte, maxInlineValue+3000) // overflow chain
			for j := range val {
				val[j] = byte(i)
			}
		} else {
			val = []byte(fmt.Sprintf("val-%d", i))
		}
		if err := tr.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestCheckCleanTree(t *testing.T) {
	tr := buildCheckedTree(t, 2000)
	if tr.Height() < 2 {
		t.Fatalf("tree too shallow (%d) to exercise internal nodes", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check on clean tree: %v", err)
	}
	// Deletions (including ones that free overflow chains) must keep the
	// descriptor counts consistent with the pages.
	for i := 0; i < 2000; i += 3 {
		if err := tr.Delete([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check after deletes: %v", err)
	}
}

func TestCheckEmptyTree(t *testing.T) {
	tr := newTree(t, "empty")
	if err := tr.Check(); err != nil {
		t.Fatalf("Check on empty tree: %v", err)
	}
}

func TestCheckDetectsKeyDisorder(t *testing.T) {
	tr := buildCheckedTree(t, 500)
	// Swap the first two slots of the root-path leftmost leaf: keys go out
	// of order, everything else stays structurally valid.
	pid := tr.root
	for {
		fr, err := tr.store.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		n := node{fr.Data()}
		if n.isLeaf() {
			s0, s1 := n.slotOffset(0), n.slotOffset(1)
			n.setSlotOffset(0, s1)
			n.setSlotOffset(1, s0)
			fr.MarkDirty()
			fr.Unpin()
			break
		}
		next := n.child(0)
		fr.Unpin()
		pid = next
	}
	err := tr.Check()
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("Check = %v, want key-order corruption", err)
	}
}

func TestCheckDetectsCountDrift(t *testing.T) {
	tr := buildCheckedTree(t, 200)
	tr.mu.Lock()
	tr.count += 5
	tr.mu.Unlock()
	if err := tr.Check(); !errors.Is(err, errCorrupt) {
		t.Fatalf("Check = %v, want count mismatch", err)
	}
}

func TestCheckDetectsBrokenOverflowChain(t *testing.T) {
	tr := newTree(t, "ovf")
	big := make([]byte, maxInlineValue+5000)
	if err := tr.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	// Find the overflow reference in the root leaf and truncate the chain
	// by clearing the first page's next pointer mid-chain.
	fr, err := tr.store.Get(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	n := node{fr.Data()}
	_, ref, ovf := n.leafCell(0)
	if !ovf {
		t.Fatal("expected overflow value")
	}
	first := pagestore.PageID(ref[4]) | pagestore.PageID(ref[5])<<8 | pagestore.PageID(ref[6])<<16 | pagestore.PageID(ref[7])<<24
	fr.Unpin()
	ofr, err := tr.store.Get(first)
	if err != nil {
		t.Fatal(err)
	}
	copy(ofr.Data()[:4], []byte{0, 0, 0, 0}) // next = InvalidPage
	ofr.MarkDirty()
	ofr.Unpin()
	if err := tr.Check(); !errors.Is(err, errCorrupt) {
		t.Fatalf("Check = %v, want overflow-length corruption", err)
	}
}

func TestCheckSurfacesChecksumFailure(t *testing.T) {
	// A bit flip under a tree page must surface through Check as the
	// pagestore's corruption error.
	file := pagestore.NewMemFile()
	store, err := pagestore.Open(file, pagestore.Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(store, "flip")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the root node's payload on disk, then reopen so the page
	// must be fetched from the file.
	rootBlock := (int64(tr.root) + 1) * pagestore.DiskPageSize
	var b [1]byte
	if _, err := file.ReadAt(b[:], rootBlock+pagestore.PageHeaderSize+20); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := file.WriteAt(b[:], rootBlock+pagestore.PageHeaderSize+20); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := pagestore.Open(file, pagestore.Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	tr2, err := Open(store2, "flip")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Check(); !errors.Is(err, pagestore.ErrCorrupt) {
		t.Fatalf("Check = %v, want pagestore corruption", err)
	}
}
