package btree

import (
	"encoding/binary"
	"fmt"
	"sync"

	"odh/internal/pagestore"
)

// Tree descriptor page layout (anchored by a pagestore named root):
//
//	[0:4]  root node page
//	[4:12] entry count
//	[12:14] height (1 = root is a leaf)
//	[14:22] total value bytes stored (inline + overflow payload)
type Tree struct {
	mu    sync.RWMutex
	store *pagestore.Store
	name  string
	desc  pagestore.PageID // descriptor page

	root      pagestore.PageID
	count     uint64
	height    uint16
	valueByte uint64
}

// splitResult carries a completed child split up the insert recursion.
type splitResult struct {
	sep   []byte
	right pagestore.PageID
}

// Open opens (creating if necessary) the B+tree named name inside store.
func Open(store *pagestore.Store, name string) (*Tree, error) {
	t := &Tree{store: store, name: name}
	desc, err := store.Root("btree:" + name)
	if err == nil {
		t.desc = desc
		fr, err := store.Get(desc)
		if err != nil {
			return nil, err
		}
		d := fr.Data()
		t.root = pagestore.PageID(binary.LittleEndian.Uint32(d))
		t.count = binary.LittleEndian.Uint64(d[4:])
		t.height = binary.LittleEndian.Uint16(d[12:])
		t.valueByte = binary.LittleEndian.Uint64(d[14:])
		fr.Unpin()
		return t, nil
	}
	// Create descriptor + empty leaf root.
	descID, descFr, err := store.Allocate()
	if err != nil {
		return nil, err
	}
	rootID, rootFr, err := store.Allocate()
	if err != nil {
		descFr.Unpin()
		return nil, err
	}
	initNode(rootFr.Data(), typeLeaf)
	rootFr.MarkDirty()
	rootFr.Unpin()
	t.desc, t.root, t.height = descID, rootID, 1
	binary.LittleEndian.PutUint32(descFr.Data(), uint32(rootID))
	binary.LittleEndian.PutUint16(descFr.Data()[12:], 1)
	descFr.MarkDirty()
	descFr.Unpin()
	if err := store.SetRoot("btree:"+name, descID); err != nil {
		return nil, err
	}
	return t, nil
}

// saveDesc persists the descriptor page. Caller holds t.mu for writing.
func (t *Tree) saveDesc() error {
	fr, err := t.store.Get(t.desc)
	if err != nil {
		return err
	}
	d := fr.Data()
	binary.LittleEndian.PutUint32(d, uint32(t.root))
	binary.LittleEndian.PutUint64(d[4:], t.count)
	binary.LittleEndian.PutUint16(d[12:], t.height)
	binary.LittleEndian.PutUint64(d[14:], t.valueByte)
	fr.MarkDirty()
	fr.Unpin()
	return nil
}

// Name returns the tree's name.
func (t *Tree) Name() string { return t.name }

// Count returns the number of entries.
func (t *Tree) Count() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int(t.height)
}

// ValueBytes returns the total payload bytes stored, the quantity the
// paper's cost model estimates (expected ValueBlob bytes touched).
func (t *Tree) ValueBytes() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.valueByte
}

// Put inserts or replaces the value for key.
func (t *Tree) Put(key, val []byte) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	split, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if split != nil {
		// Grow a new root above the old one.
		newRootID, fr, err := t.store.Allocate()
		if err != nil {
			return err
		}
		n := initNode(fr.Data(), typeInternal)
		if err := n.insertCellAt(0, makeInternalCell(split.sep, t.root)); err != nil {
			fr.Unpin()
			return err
		}
		n.setNext(split.right)
		fr.MarkDirty()
		fr.Unpin()
		t.root = newRootID
		t.height++
	}
	return t.saveDesc()
}

// insert descends from page pid; returns a non-nil splitResult when pid was
// split and the parent must add a separator.
func (t *Tree) insert(pid pagestore.PageID, key, val []byte) (*splitResult, error) {
	fr, err := t.store.Get(pid)
	if err != nil {
		return nil, err
	}
	n := node{fr.Data()}
	if n.isLeaf() {
		res, err := t.insertLeaf(fr, n, key, val)
		fr.Unpin()
		return res, err
	}
	// Internal: pick the child to descend into.
	idx := n.descend(key)
	var childID pagestore.PageID
	if idx < n.ncells() {
		childID = n.child(idx)
	} else {
		childID = n.next()
	}
	// Drop the pin during recursion; the single-writer lock makes this safe
	// and keeps pin pressure bounded by one frame per level at most.
	fr.Unpin()
	split, err := t.insert(childID, key, val)
	if err != nil || split == nil {
		return nil, err
	}
	fr, err = t.store.Get(pid)
	if err != nil {
		return nil, err
	}
	defer fr.Unpin()
	n = node{fr.Data()}
	res, err := t.insertSeparator(fr, n, idx, split)
	return res, err
}

// insertSeparator adds (split.sep -> old child stays left, split.right goes
// right) into internal node n at the descent position idx, splitting n
// itself if needed.
func (t *Tree) insertSeparator(fr *pagestore.Frame, n node, idx int, split *splitResult) (*splitResult, error) {
	// The child that split is at position idx (or the rightmost pointer).
	// Cell (sep, leftChild) goes at idx; the pointer that followed moves right.
	var leftChild pagestore.PageID
	if idx < n.ncells() {
		leftChild = n.child(idx)
		n.setChild(idx, split.right)
	} else {
		leftChild = n.next()
		n.setNext(split.right)
	}
	cell := makeInternalCell(split.sep, leftChild)
	if n.freeTotal() >= len(cell)+slotSize {
		if err := n.insertCellAt(idx, cell); err != nil {
			return nil, err
		}
		fr.MarkDirty()
		return nil, nil
	}
	// Split this internal node, then insert the cell into the proper half.
	res, err := t.splitInternal(fr, n, idx, cell)
	return res, err
}

// splitInternal splits internal node n, inserting pending cell at logical
// index idx as part of the split. Returns the separator for the parent.
func (t *Tree) splitInternal(fr *pagestore.Frame, n node, idx int, pending []byte) (*splitResult, error) {
	nc := n.ncells()
	// Gather all cells (with the pending one spliced in) as raw bytes.
	cells := make([][]byte, 0, nc+1)
	for i := 0; i < nc; i++ {
		off := n.slotOffset(i)
		size := n.cellSize(i)
		body := make([]byte, size)
		copy(body, n.data[off:off+size])
		cells = append(cells, body)
	}
	cells = append(cells[:idx], append([][]byte{pending}, cells[idx:]...)...)
	rightmost := n.next()

	mid := len(cells) / 2
	// The middle cell's key is promoted; its child becomes the left node's
	// rightmost pointer.
	midKeyLen := int(binary.LittleEndian.Uint16(cells[mid]))
	sep := make([]byte, midKeyLen)
	copy(sep, cells[mid][6:6+midKeyLen])
	midChild := pagestore.PageID(binary.LittleEndian.Uint32(cells[mid][2:]))

	rightID, rightFr, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	defer rightFr.Unpin()
	rn := initNode(rightFr.Data(), typeInternal)
	for i, c := range cells[mid+1:] {
		if err := rn.insertCellAt(i, c); err != nil {
			return nil, err
		}
	}
	rn.setNext(rightmost)
	rightFr.MarkDirty()

	// Rebuild the left node in place.
	ln := initNode(n.data, typeInternal)
	for i, c := range cells[:mid] {
		if err := ln.insertCellAt(i, c); err != nil {
			return nil, err
		}
	}
	ln.setNext(midChild)
	fr.MarkDirty()
	return &splitResult{sep: sep, right: rightID}, nil
}

// insertLeaf performs the leaf-level upsert, splitting when full.
func (t *Tree) insertLeaf(fr *pagestore.Frame, n node, key, val []byte) (*splitResult, error) {
	inline := val
	ovf := false
	if len(val) > maxInlineValue {
		ref, err := t.writeOverflow(val)
		if err != nil {
			return nil, err
		}
		inline, ovf = ref, true
	}
	cell := makeLeafCell(key, inline, ovf)

	idx, found := n.search(key)
	if found {
		// Replace: free any old overflow chain first.
		_, oldVal, oldOvf := n.leafCell(idx)
		if oldOvf {
			if err := t.freeOverflow(oldVal); err != nil {
				return nil, err
			}
			t.valueByte -= uint64(binary.LittleEndian.Uint32(oldVal))
		} else {
			t.valueByte -= uint64(len(oldVal))
		}
		// Fast path: overwrite in place when the new cell fits the old
		// cell's footprint (replace-heavy workloads would otherwise pay a
		// page compaction per update).
		if oldSize := n.cellSize(idx); len(cell) <= oldSize {
			off := n.slotOffset(idx)
			copy(n.data[off:], cell)
			n.setFragBytes(n.fragBytes() + oldSize - len(cell))
			t.valueByte += uint64(len(val))
			fr.MarkDirty()
			return nil, nil
		}
		n.removeCellAt(idx)
		t.count--
	}
	t.count++
	t.valueByte += uint64(len(val))
	if n.freeTotal() >= len(cell)+slotSize {
		if err := n.insertCellAt(idx, cell); err != nil {
			return nil, err
		}
		fr.MarkDirty()
		return nil, nil
	}
	return t.splitLeaf(fr, n, idx, cell)
}

// splitLeaf splits leaf n, inserting pending cell at logical index idx.
func (t *Tree) splitLeaf(fr *pagestore.Frame, n node, idx int, pending []byte) (*splitResult, error) {
	nc := n.ncells()
	cells := make([][]byte, 0, nc+1)
	for i := 0; i < nc; i++ {
		off := n.slotOffset(i)
		size := n.cellSize(i)
		body := make([]byte, size)
		copy(body, n.data[off:off+size])
		cells = append(cells, body)
	}
	cells = append(cells[:idx], append([][]byte{pending}, cells[idx:]...)...)

	// Split by cumulative bytes so unevenly sized cells balance.
	total := 0
	for _, c := range cells {
		total += len(c) + slotSize
	}
	mid, acc := 0, 0
	for mid = 0; mid < len(cells)-1; mid++ {
		acc += len(cells[mid]) + slotSize
		if acc >= total/2 {
			mid++
			break
		}
	}
	if mid == 0 {
		mid = 1
	}

	rightID, rightFr, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	defer rightFr.Unpin()
	rn := initNode(rightFr.Data(), typeLeaf)
	for i, c := range cells[mid:] {
		if err := rn.insertCellAt(i, c); err != nil {
			return nil, err
		}
	}
	rn.setNext(n.next())
	rightFr.MarkDirty()

	ln := initNode(n.data, typeLeaf)
	for i, c := range cells[:mid] {
		if err := ln.insertCellAt(i, c); err != nil {
			return nil, err
		}
	}
	ln.setNext(rightID)
	fr.MarkDirty()

	sepLen := int(binary.LittleEndian.Uint16(cells[mid]))
	sep := make([]byte, sepLen)
	copy(sep, cells[mid][4:4+sepLen])
	return &splitResult{sep: sep, right: rightID}, nil
}

// Get returns the value stored for key, or ErrNotFound.
func (t *Tree) Get(key []byte) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leafID, err := t.findLeaf(key)
	if err != nil {
		return nil, err
	}
	fr, err := t.store.Get(leafID)
	if err != nil {
		return nil, err
	}
	defer fr.Unpin()
	n := node{fr.Data()}
	idx, found := n.search(key)
	if !found {
		return nil, ErrNotFound
	}
	_, val, ovf := n.leafCell(idx)
	if ovf {
		return t.readOverflow(val)
	}
	out := make([]byte, len(val))
	copy(out, val)
	return out, nil
}

// Has reports whether key exists.
func (t *Tree) Has(key []byte) (bool, error) {
	_, err := t.Get(key)
	if err == nil {
		return true, nil
	}
	if err == ErrNotFound {
		return false, nil
	}
	return false, err
}

// Delete removes key. Empty leaves are left in place (the historian
// workload is append-dominated; space is reclaimed when overflow chains are
// freed and on page reuse).
func (t *Tree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	leafID, err := t.findLeaf(key)
	if err != nil {
		return err
	}
	fr, err := t.store.Get(leafID)
	if err != nil {
		return err
	}
	defer fr.Unpin()
	n := node{fr.Data()}
	idx, found := n.search(key)
	if !found {
		return ErrNotFound
	}
	_, val, ovf := n.leafCell(idx)
	if ovf {
		if err := t.freeOverflow(val); err != nil {
			return err
		}
		t.valueByte -= uint64(binary.LittleEndian.Uint32(val))
	} else {
		t.valueByte -= uint64(len(val))
	}
	n.removeCellAt(idx)
	fr.MarkDirty()
	t.count--
	return t.saveDesc()
}

// findLeaf descends to the leaf that would contain key. Caller holds t.mu.
func (t *Tree) findLeaf(key []byte) (pagestore.PageID, error) {
	pid := t.root
	for {
		fr, err := t.store.Get(pid)
		if err != nil {
			return pagestore.InvalidPage, err
		}
		n := node{fr.Data()}
		if n.isLeaf() {
			fr.Unpin()
			return pid, nil
		}
		idx := n.descend(key)
		if idx < n.ncells() {
			pid = n.child(idx)
		} else {
			pid = n.next()
		}
		fr.Unpin()
	}
}

// MaxKey returns a copy of the largest key in the tree, or nil when the
// tree is empty. It walks the rightmost path; when deletions emptied the
// rightmost leaf it falls back to a full scan.
func (t *Tree) MaxKey() ([]byte, error) {
	t.mu.RLock()
	pid := t.root
	for {
		fr, err := t.store.Get(pid)
		if err != nil {
			t.mu.RUnlock()
			return nil, err
		}
		n := node{fr.Data()}
		if !n.isLeaf() {
			next := n.next()
			fr.Unpin()
			pid = next
			continue
		}
		if nc := n.ncells(); nc > 0 {
			key := append([]byte(nil), n.cellKey(nc-1)...)
			fr.Unpin()
			t.mu.RUnlock()
			return key, nil
		}
		fr.Unpin()
		break
	}
	t.mu.RUnlock()
	// Fallback: the rightmost leaf was emptied by deletions.
	var last []byte
	err := t.Scan(nil, nil, func(k, _ []byte) bool {
		last = append(last[:0], k...)
		return true
	})
	if err != nil || last == nil {
		return nil, err
	}
	return last, nil
}

// writeOverflow stores val in a chain of overflow pages and returns the
// 8-byte reference (totalLen u32, firstPage u32).
func (t *Tree) writeOverflow(val []byte) ([]byte, error) {
	var first, prev pagestore.PageID
	var prevFr *pagestore.Frame
	for off := 0; off < len(val); off += ovfChunkSize {
		end := off + ovfChunkSize
		if end > len(val) {
			end = len(val)
		}
		id, fr, err := t.store.Allocate()
		if err != nil {
			if prevFr != nil {
				prevFr.Unpin()
			}
			return nil, err
		}
		d := fr.Data()
		binary.LittleEndian.PutUint32(d, uint32(pagestore.InvalidPage))
		binary.LittleEndian.PutUint16(d[4:], uint16(end-off))
		copy(d[ovfHeaderSize:], val[off:end])
		fr.MarkDirty()
		if first == pagestore.InvalidPage {
			first = id
		}
		if prevFr != nil {
			binary.LittleEndian.PutUint32(prevFr.Data(), uint32(id))
			prevFr.MarkDirty()
			prevFr.Unpin()
		}
		prev, prevFr = id, fr
	}
	_ = prev
	if prevFr != nil {
		prevFr.Unpin()
	}
	ref := make([]byte, 8)
	binary.LittleEndian.PutUint32(ref, uint32(len(val)))
	binary.LittleEndian.PutUint32(ref[4:], uint32(first))
	return ref, nil
}

// readOverflow reassembles a value from its overflow chain.
func (t *Tree) readOverflow(ref []byte) ([]byte, error) {
	if len(ref) < 8 {
		return nil, errCorrupt
	}
	total := int(binary.LittleEndian.Uint32(ref))
	pid := pagestore.PageID(binary.LittleEndian.Uint32(ref[4:]))
	out := make([]byte, 0, total)
	for pid != pagestore.InvalidPage {
		fr, err := t.store.Get(pid)
		if err != nil {
			return nil, err
		}
		d := fr.Data()
		next := pagestore.PageID(binary.LittleEndian.Uint32(d))
		chunk := int(binary.LittleEndian.Uint16(d[4:]))
		out = append(out, d[ovfHeaderSize:ovfHeaderSize+chunk]...)
		fr.Unpin()
		pid = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("%w: overflow chain length %d != %d", errCorrupt, len(out), total)
	}
	return out, nil
}

// freeOverflow releases the chain referenced by ref.
func (t *Tree) freeOverflow(ref []byte) error {
	if len(ref) < 8 {
		return errCorrupt
	}
	pid := pagestore.PageID(binary.LittleEndian.Uint32(ref[4:]))
	for pid != pagestore.InvalidPage {
		fr, err := t.store.Get(pid)
		if err != nil {
			return err
		}
		next := pagestore.PageID(binary.LittleEndian.Uint32(fr.Data()))
		fr.Unpin()
		if err := t.store.Free(pid); err != nil {
			return err
		}
		pid = next
	}
	return nil
}
