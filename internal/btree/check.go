package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"odh/internal/pagestore"
)

// Check walks the entire tree and validates its structural invariants:
// node types match their depth, cell offsets stay inside the page, keys
// are strictly increasing and respect separator bounds, child links are
// acyclic, leaf sibling links thread the leaves in order, overflow chains
// are intact, and the descriptor's entry/byte counts match what the pages
// actually hold. It reads every page of the tree, so checksum failures in
// the pagestore surface here too. Check takes the tree's read lock; it
// returns the first problem found, wrapping btree's corruption sentinel
// (or the pagestore's, for checksum failures).
func (t *Tree) Check() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := &checkState{visited: make(map[pagestore.PageID]struct{})}
	entries, vbytes, err := t.checkNode(st, t.root, int(t.height), nil, nil)
	if err != nil {
		return err
	}
	if st.sawLeaf && st.expectNext != pagestore.InvalidPage {
		return fmt.Errorf("%w: tree %q: last leaf links to page %d, want end of chain", errCorrupt, t.name, st.expectNext)
	}
	if entries != t.count {
		return fmt.Errorf("%w: tree %q holds %d entries, descriptor says %d", errCorrupt, t.name, entries, t.count)
	}
	if vbytes != t.valueByte {
		return fmt.Errorf("%w: tree %q holds %d value bytes, descriptor says %d", errCorrupt, t.name, vbytes, t.valueByte)
	}
	return nil
}

type checkState struct {
	visited    map[pagestore.PageID]struct{}
	sawLeaf    bool
	expectNext pagestore.PageID // previous leaf's sibling pointer
}

// parsedNode is a validated, copied-out snapshot of one node, so the frame
// can be unpinned before recursing (keeps pin pressure at one frame total
// and the copied slices safe from eviction reuse).
type parsedNode struct {
	leaf     bool
	keys     [][]byte
	children []pagestore.PageID // internal: len(keys) entries; rightmost in next
	next     pagestore.PageID
	inline   uint64   // leaf: total inline value bytes
	ovfRefs  [][]byte // leaf: 8-byte overflow references
}

// parseNode bounds-checks every offset before dereferencing it, so a
// corrupted page yields an error rather than a panic.
func parseNode(pid pagestore.PageID, d []byte) (*parsedNode, error) {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: page %d: %s", errCorrupt, pid, fmt.Sprintf(format, args...))
	}
	n := node{d}
	if n.typ() != typeLeaf && n.typ() != typeInternal {
		return nil, bad("unknown node type %d", n.typ())
	}
	p := &parsedNode{leaf: n.isLeaf(), next: n.next()}
	nc := n.ncells()
	slotEnd := nodeHeaderSize + nc*slotSize
	cs := n.cellStart()
	if slotEnd > cs || cs > pagestore.PageSize {
		return nil, bad("slot directory (%d cells) overlaps cell area [%d:%d)", nc, cs, pagestore.PageSize)
	}
	for i := 0; i < nc; i++ {
		off := n.slotOffset(i)
		hdr := 4
		if !p.leaf {
			hdr = 6
		}
		if off < slotEnd || off+hdr > pagestore.PageSize {
			return nil, bad("cell %d offset %d outside page", i, off)
		}
		keyLen := int(binary.LittleEndian.Uint16(d[off:]))
		if keyLen == 0 || keyLen > MaxKeyLen {
			return nil, bad("cell %d key length %d", i, keyLen)
		}
		if p.leaf {
			rawLen := binary.LittleEndian.Uint16(d[off+2:])
			ovf := rawLen&overflowBit != 0
			valLen := int(rawLen &^ overflowBit)
			if off+4+keyLen+valLen > pagestore.PageSize {
				return nil, bad("cell %d spills past page end", i)
			}
			val := d[off+4+keyLen : off+4+keyLen+valLen]
			if ovf {
				if valLen != 8 {
					return nil, bad("cell %d overflow reference is %d bytes, want 8", i, valLen)
				}
				p.ovfRefs = append(p.ovfRefs, append([]byte(nil), val...))
			} else {
				p.inline += uint64(valLen)
			}
			p.keys = append(p.keys, append([]byte(nil), d[off+4:off+4+keyLen]...))
		} else {
			if off+6+keyLen > pagestore.PageSize {
				return nil, bad("cell %d spills past page end", i)
			}
			p.children = append(p.children, pagestore.PageID(binary.LittleEndian.Uint32(d[off+2:])))
			p.keys = append(p.keys, append([]byte(nil), d[off+6:off+6+keyLen]...))
		}
	}
	return p, nil
}

// checkNode validates the subtree rooted at pid. Every key in the subtree
// must satisfy lo <= key < hi (nil bound = unbounded). Returns the entry
// and value-byte totals of the subtree.
func (t *Tree) checkNode(st *checkState, pid pagestore.PageID, depth int, lo, hi []byte) (entries, vbytes uint64, err error) {
	if pid == pagestore.InvalidPage {
		return 0, 0, fmt.Errorf("%w: nil page link at depth %d", errCorrupt, depth)
	}
	if _, dup := st.visited[pid]; dup {
		return 0, 0, fmt.Errorf("%w: page %d reached twice (cycle or cross-link)", errCorrupt, pid)
	}
	st.visited[pid] = struct{}{}
	fr, err := t.store.Get(pid)
	if err != nil {
		return 0, 0, err
	}
	p, err := parseNode(pid, fr.Data())
	fr.Unpin()
	if err != nil {
		return 0, 0, err
	}
	if p.leaf != (depth == 1) {
		return 0, 0, fmt.Errorf("%w: page %d: leaf=%v at depth %d of height-%d tree", errCorrupt, pid, p.leaf, depth, t.height)
	}
	// Key order within the node and against the subtree bounds. Separator
	// keys obey the same bounds as the keys below them.
	prev := lo
	for i, key := range p.keys {
		if prev != nil && ((i == 0 && bytes.Compare(key, prev) < 0) || (i > 0 && bytes.Compare(key, prev) <= 0)) {
			return 0, 0, fmt.Errorf("%w: page %d: cell %d key out of order", errCorrupt, pid, i)
		}
		if hi != nil && bytes.Compare(key, hi) >= 0 {
			return 0, 0, fmt.Errorf("%w: page %d: cell %d key above separator bound", errCorrupt, pid, i)
		}
		prev = key
	}
	if p.leaf {
		// Sibling chain must thread the leaves in key order.
		if st.sawLeaf && st.expectNext != pid {
			return 0, 0, fmt.Errorf("%w: leaf chain skips to page %d, want %d", errCorrupt, st.expectNext, pid)
		}
		st.sawLeaf, st.expectNext = true, p.next
		vbytes = p.inline
		for _, ref := range p.ovfRefs {
			total := uint64(binary.LittleEndian.Uint32(ref))
			got, err := t.checkOverflow(st, pagestore.PageID(binary.LittleEndian.Uint32(ref[4:])))
			if err != nil {
				return 0, 0, err
			}
			if got != total {
				return 0, 0, fmt.Errorf("%w: page %d: overflow chain holds %d bytes, reference says %d", errCorrupt, pid, got, total)
			}
			vbytes += total
		}
		return uint64(len(p.keys)), vbytes, nil
	}
	// Internal: child i holds keys in [prev separator, separator i); the
	// rightmost pointer holds keys >= the last separator.
	if len(p.keys) == 0 {
		return 0, 0, fmt.Errorf("%w: page %d: internal node with no separators", errCorrupt, pid)
	}
	childLo := lo
	for i, sep := range p.keys {
		e, v, err := t.checkNode(st, p.children[i], depth-1, childLo, sep)
		if err != nil {
			return 0, 0, err
		}
		entries += e
		vbytes += v
		childLo = sep
	}
	e, v, err := t.checkNode(st, p.next, depth-1, childLo, hi)
	if err != nil {
		return 0, 0, err
	}
	return entries + e, vbytes + v, nil
}

// checkOverflow walks one overflow chain, validating chunk sizes and
// guarding against cycles and cross-linked chains.
func (t *Tree) checkOverflow(st *checkState, pid pagestore.PageID) (uint64, error) {
	var total uint64
	for pid != pagestore.InvalidPage {
		if _, dup := st.visited[pid]; dup {
			return 0, fmt.Errorf("%w: overflow page %d reached twice (cycle or cross-link)", errCorrupt, pid)
		}
		st.visited[pid] = struct{}{}
		fr, err := t.store.Get(pid)
		if err != nil {
			return 0, err
		}
		d := fr.Data()
		next := pagestore.PageID(binary.LittleEndian.Uint32(d))
		chunk := int(binary.LittleEndian.Uint16(d[4:]))
		fr.Unpin()
		if chunk == 0 || chunk > ovfChunkSize {
			return 0, fmt.Errorf("%w: overflow page %d: chunk length %d", errCorrupt, pid, chunk)
		}
		total += uint64(chunk)
		pid = next
	}
	return total, nil
}
