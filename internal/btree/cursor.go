package btree

import (
	"bytes"

	"odh/internal/pagestore"
)

// Cursor iterates leaf entries in ascending key order. A cursor takes a
// read snapshot of each leaf it visits (the copy keeps pin lifetimes short
// and makes iteration safe while other goroutines read). Writers must not
// run concurrently with an open cursor unless the caller coordinates; the
// historian's scan paths hold the tree read lock per leaf, which matches
// the paper's dirty-read isolation (readers may see a mix of old and new
// batches but never a torn page).
type Cursor struct {
	t     *Tree
	leaf  pagestore.PageID
	cells []cursorCell
	pos   int
	err   error
	// onLoadLeaf, when set, runs immediately before each leaf snapshot is
	// taken (including the initial seek's). The tsstore blob cache uses it
	// to record invalidation versions no later than the moment the value
	// bytes are captured; anything observed through Key/Value afterwards
	// is at least as old as what the hook saw. It is called without the
	// tree lock held.
	onLoadLeaf func()
}

type cursorCell struct {
	key []byte
	val []byte
	ovf bool
}

// Seek positions the cursor at the first entry with key >= target.
func (t *Tree) Seek(target []byte) *Cursor {
	return t.SeekWithLoadHook(target, nil)
}

// SeekWithLoadHook is Seek with a callback fired before every leaf
// snapshot the cursor takes, the initial one included. See
// Cursor.onLoadLeaf.
func (t *Tree) SeekWithLoadHook(target []byte, onLoadLeaf func()) *Cursor {
	c := &Cursor{t: t, onLoadLeaf: onLoadLeaf}
	t.mu.RLock()
	leafID, err := t.findLeaf(target)
	t.mu.RUnlock()
	if err != nil {
		c.err = err
		return c
	}
	if err := c.loadLeaf(leafID); err != nil {
		c.err = err
		return c
	}
	// Position within the leaf; key may belong to the next leaf if the
	// target is past this leaf's last entry.
	for c.pos = 0; c.pos < len(c.cells); c.pos++ {
		if bytes.Compare(c.cells[c.pos].key, target) >= 0 {
			return c
		}
	}
	c.advanceLeaf()
	return c
}

// First positions the cursor at the smallest entry.
func (t *Tree) First() *Cursor {
	return t.Seek(nil)
}

// loadLeaf snapshots the cells of leaf pid.
func (c *Cursor) loadLeaf(pid pagestore.PageID) error {
	if c.onLoadLeaf != nil {
		// Fire before taking the tree lock: the hook must run no later
		// than the cell copy, and must not nest under t.mu (it may take
		// its own locks).
		c.onLoadLeaf()
	}
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	fr, err := c.t.store.Get(pid)
	if err != nil {
		return err
	}
	defer fr.Unpin()
	n := node{fr.Data()}
	c.leaf = pid
	c.cells = c.cells[:0]
	for i := 0; i < n.ncells(); i++ {
		key, val, ovf := n.leafCell(i)
		c.cells = append(c.cells, cursorCell{
			key: append([]byte(nil), key...),
			val: append([]byte(nil), val...),
			ovf: ovf,
		})
	}
	c.pos = 0
	return nil
}

// advanceLeaf moves to the next non-empty leaf (skipping empty leaves left
// by deletions); the cursor becomes invalid at the end of the tree.
func (c *Cursor) advanceLeaf() {
	for {
		c.t.mu.RLock()
		fr, err := c.t.store.Get(c.leaf)
		if err != nil {
			c.t.mu.RUnlock()
			c.err = err
			c.cells = nil
			return
		}
		next := node{fr.Data()}.next()
		fr.Unpin()
		c.t.mu.RUnlock()
		if next == pagestore.InvalidPage {
			c.cells = nil
			c.pos = 0
			return
		}
		if err := c.loadLeaf(next); err != nil {
			c.err = err
			c.cells = nil
			return
		}
		if len(c.cells) > 0 {
			return
		}
	}
}

// Valid reports whether the cursor is positioned at an entry.
func (c *Cursor) Valid() bool { return c.err == nil && c.pos < len(c.cells) }

// Err returns the first error the cursor encountered, if any.
func (c *Cursor) Err() error { return c.err }

// Key returns the current entry's key. Valid only while Valid() is true.
func (c *Cursor) Key() []byte { return c.cells[c.pos].key }

// Value returns the current entry's value, fetching overflow chains as
// needed.
func (c *Cursor) Value() ([]byte, error) {
	cell := c.cells[c.pos]
	if !cell.ovf {
		return cell.val, nil
	}
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	return c.t.readOverflow(cell.val)
}

// ValueSize returns the stored size of the current value without fetching
// overflow pages; the query planner uses it to account blob bytes.
func (c *Cursor) ValueSize() int {
	cell := c.cells[c.pos]
	if !cell.ovf {
		return len(cell.val)
	}
	if len(cell.val) < 8 {
		return 0
	}
	return int(uint32(cell.val[0]) | uint32(cell.val[1])<<8 | uint32(cell.val[2])<<16 | uint32(cell.val[3])<<24)
}

// Next advances to the following entry.
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	c.pos++
	if c.pos >= len(c.cells) {
		c.advanceLeaf()
	}
}

// Scan invokes fn for every entry with lo <= key < hi (hi nil = unbounded).
// Iteration stops early when fn returns false.
func (t *Tree) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	c := t.Seek(lo)
	for c.Valid() {
		if hi != nil && bytes.Compare(c.Key(), hi) >= 0 {
			break
		}
		val, err := c.Value()
		if err != nil {
			return err
		}
		if !fn(c.Key(), val) {
			break
		}
		c.Next()
	}
	return c.Err()
}

// CountRange returns the number of entries and total value bytes in
// [lo, hi). The planner uses it for cost estimation on small ranges.
func (t *Tree) CountRange(lo, hi []byte) (n int, bytesTotal int64, err error) {
	c := t.Seek(lo)
	for c.Valid() {
		if hi != nil && bytes.Compare(c.Key(), hi) >= 0 {
			break
		}
		n++
		bytesTotal += int64(c.ValueSize())
		c.Next()
	}
	return n, bytesTotal, c.Err()
}
