package walog

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"odh/internal/fault"
	"odh/internal/pagestore"
)

// TestConcurrentAppendsAllReplayed hammers the group-commit writer from
// many goroutines and checks that every record survives, intact and
// exactly once.
func TestConcurrentAppendsAllReplayed(t *testing.T) {
	l, _ := openLog(t)
	const writers, perWriter = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.Append(fmt.Appendf(nil, "w%02d-%04d", w, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[string]bool, writers*perWriter)
	if err := l.Replay(func(p []byte) error {
		if seen[string(p)] {
			return fmt.Errorf("duplicate record %q", p)
		}
		seen[string(p)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), writers*perWriter)
	}
	st := l.Stats()
	if st.Records != writers*perWriter {
		t.Fatalf("Stats.Records = %d, want %d", st.Records, writers*perWriter)
	}
	if st.GroupCommits <= 0 || st.GroupCommits > st.Records {
		t.Fatalf("GroupCommits = %d out of range (records %d)", st.GroupCommits, st.Records)
	}
}

// slowFile delays every write so that appends pile up behind an
// in-flight commit; without it a single-core scheduler can drain the
// request channel one append at a time and no group ever forms.
type slowFile struct {
	File
	delay time.Duration
}

func (f *slowFile) WriteAt(p []byte, off int64) (int, error) {
	time.Sleep(f.delay)
	return f.File.WriteAt(p, off)
}

// TestGroupCommitCoalesces verifies that simultaneous appenders actually
// share write syscalls: with N goroutines blocked behind one slow commit,
// the commit count must come out below the record count.
func TestGroupCommitCoalesces(t *testing.T) {
	l, err := OpenFile(&slowFile{File: pagestore.NewMemFile(), delay: 200 * time.Microsecond}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, perWriter = 32, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := fmt.Appendf(nil, "writer-%02d", w)
			for i := 0; i < perWriter; i++ {
				if err := l.Append(payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != writers*perWriter {
		t.Fatalf("Records = %d, want %d", st.Records, writers*perWriter)
	}
	if st.GroupCommits >= st.Records {
		t.Fatalf("no coalescing: %d commits for %d records", st.GroupCommits, st.Records)
	}
	t.Logf("coalescing factor: %.1f records/commit", float64(st.Records)/float64(st.GroupCommits))
}

// TestAppendBatchSingleCommit checks that a batch lands in one group
// commit and replays in order.
func TestAppendBatchSingleCommit(t *testing.T) {
	l, _ := openLog(t)
	batch := make([][]byte, 100)
	for i := range batch {
		batch[i] = fmt.Appendf(nil, "batch-%03d", i)
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records != 100 || st.GroupCommits != 1 {
		t.Fatalf("Records=%d GroupCommits=%d, want 100/1", st.Records, st.GroupCommits)
	}
	i := 0
	if err := l.Replay(func(p []byte) error {
		if string(p) != fmt.Sprintf("batch-%03d", i) {
			return fmt.Errorf("record %d = %q out of order", i, p)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != 100 {
		t.Fatalf("replayed %d records, want 100", i)
	}
}

// TestAppendBatchEmptyAndOversized covers the degenerate inputs.
func TestAppendBatchEmptyAndOversized(t *testing.T) {
	l, _ := openLog(t)
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.AppendBatch([][]byte{make([]byte, maxRecord+1)}); err != ErrTooLarge {
		t.Fatalf("oversized batch record: %v, want ErrTooLarge", err)
	}
	if l.Size() != 0 {
		t.Fatalf("rejected batches must not grow the log (size %d)", l.Size())
	}
}

// TestAppendAfterClose verifies appends fail cleanly once the log is
// closed, including appends racing Close.
func TestAppendAfterClose(t *testing.T) {
	l, _ := openLog(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := l.Append([]byte("racing")); err != nil {
					if err != ErrClosed {
						t.Errorf("append during close: %v", err)
					}
					return
				}
			}
		}()
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := l.Append([]byte("late")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.AppendBatch([][]byte{[]byte("late")}); err != ErrClosed {
		t.Fatalf("batch append after close: %v, want ErrClosed", err)
	}
}

// TestTornGroupCommitRecovered kills the backing file mid group-commit
// write: concurrent appenders see the shared error, and reopening the
// log replays exactly the records committed before the tear.
func TestTornGroupCommitRecovered(t *testing.T) {
	mem := pagestore.NewMemFile()
	ff := fault.Wrap(mem)
	l, err := OpenFile(ff, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(fmt.Appendf(nil, "pre-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the next write 5 bytes in (mid record header): nothing of the
	// doomed group survives as a valid record.
	ff.FailWritesAfter(0)
	ff.SetTornWrite(5)
	batch := make([][]byte, 50)
	for i := range batch {
		batch[i] = fmt.Appendf(nil, "doomed-%02d", i)
	}
	if err := l.AppendBatch(batch); err == nil {
		t.Fatal("append through failing file must error")
	}
	// The in-process Log is now abandoned (crash). Reopen on the same
	// bytes: replay must yield the 10 durable records and stop at the tear.
	l2, err := OpenFile(mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	if err := l2.Replay(func(p []byte) error {
		if string(p) != fmt.Sprintf("pre-%02d", n) {
			return fmt.Errorf("record %d = %q", n, p)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("recovered %d records, want the 10 pre-tear ones", n)
	}
}
