// Package walog provides a checksummed append-only log. The ODH ingest
// path is non-transactional (per §3 of the paper, "the insertion process
// does not support transactions ... reasonable data loss is acceptable"),
// but deployments that want bounded loss can attach a log to the ingest
// buffers: appended points survive a crash between buffer fill and batch
// flush. Records that fail their checksum (a torn final write) terminate
// replay silently, matching the bounded-loss contract.
package walog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// record framing: length u32, crc32(payload) u32, payload.
const recordHeader = 8

// maxRecord bounds a single record so replay cannot allocate absurd sizes
// from a corrupt length field.
const maxRecord = 16 << 20

// ErrTooLarge reports an oversized append.
var ErrTooLarge = fmt.Errorf("walog: record exceeds %d bytes", maxRecord)

// File is the backing storage a Log runs on — satisfied by *os.File and by
// fault-injection wrappers in crash tests.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Options selects the log's durability policy. The zero value is the
// paper's bounded-loss default: appends are buffered by the OS and only
// forced to stable storage by explicit Sync calls (the historian syncs at
// batch-flush boundaries), so a crash loses at most the tail written since
// the last sync.
type Options struct {
	// SyncOnAppend forces every append to stable storage before Append
	// returns — zero loss, at the cost of one fsync per record.
	SyncOnAppend bool
	// SyncEvery, when > 0, syncs after every Nth append — an intermediate
	// point on the durability/throughput curve. Ignored if SyncOnAppend.
	SyncEvery int
}

// Log is an append-only record log. It is safe for concurrent appends.
type Log struct {
	mu       sync.Mutex
	f        File
	off      int64
	opts     Options
	unsynced int // appends since the last sync
}

// Open opens or creates the log at path with the default (bounded-loss)
// durability policy.
func Open(path string) (*Log, error) {
	return OpenPath(path, Options{})
}

// OpenPath opens or creates the log at path with the given policy.
func OpenPath(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("walog: open: %w", err)
	}
	return OpenFile(f, opts)
}

// OpenFile opens a log over an already-open backing file and positions
// appends after the last valid record (a torn tail is truncated away).
func OpenFile(f File, opts Options) (*Log, error) {
	l := &Log{f: f, opts: opts}
	end, err := l.scanEnd()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("walog: truncate torn tail: %w", err)
	}
	l.off = end
	return l, nil
}

// scanEnd walks the records and returns the offset just past the last
// valid one.
func (l *Log) scanEnd() (int64, error) {
	var off int64
	hdr := make([]byte, recordHeader)
	for {
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			return off, nil // EOF or short read: stop at last good record
		}
		length := binary.LittleEndian.Uint32(hdr)
		want := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecord {
			return off, nil
		}
		payload := make([]byte, length)
		if _, err := l.f.ReadAt(payload, off+recordHeader); err != nil {
			return off, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			return off, nil
		}
		off += recordHeader + int64(length)
	}
}

// Append writes one record and applies the configured sync policy. Under
// the default policy it does not sync; call Sync for durability points.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return ErrTooLarge
	}
	buf := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeader:], payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.WriteAt(buf, l.off); err != nil {
		return fmt.Errorf("walog: append: %w", err)
	}
	l.off += int64(len(buf))
	l.unsynced++
	if l.opts.SyncOnAppend || (l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery) {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("walog: sync: %w", err)
		}
		l.unsynced = 0
	}
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.unsynced = 0
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Replay invokes fn for every valid record in order. A corrupt record ends
// replay without error (bounded-loss semantics); other I/O failures are
// reported.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	end := l.off
	l.mu.Unlock()
	var off int64
	hdr := make([]byte, recordHeader)
	for off < end {
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("walog: replay: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr)
		want := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecord {
			return nil
		}
		payload := make([]byte, length)
		if _, err := l.f.ReadAt(payload, off+recordHeader); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			return nil
		}
		if err := fn(payload); err != nil {
			return err
		}
		off += recordHeader + int64(length)
	}
	return nil
}

// Reset truncates the log to empty (after a successful batch flush the
// buffered points are durable in the page store and the log can recycle).
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("walog: reset: %w", err)
	}
	l.off = 0
	l.unsynced = 0
	return nil
}

// Close closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
