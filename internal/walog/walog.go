// Package walog provides a checksummed append-only log. The ODH ingest
// path is non-transactional (per §3 of the paper, "the insertion process
// does not support transactions ... reasonable data loss is acceptable"),
// but deployments that want bounded loss can attach a log to the ingest
// buffers: appended points survive a crash between buffer fill and batch
// flush. Records that fail their checksum (a torn final write) terminate
// replay silently, matching the bounded-loss contract.
//
// Appends are group-committed: a single writer goroutine drains every
// Append/AppendBatch waiting at that moment, seals all their records into
// one scratch buffer, issues one write syscall (and, under SyncOnAppend /
// SyncEvery, one fsync for the whole group), and wakes all waiters with
// the shared result. Under concurrent ingest this turns N writes + N
// fsyncs into 1 + 1 — the classic group-commit trade of a little latency
// for a lot of throughput — while a lone appender still commits
// immediately.
package walog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// record framing: length u32, crc32(payload) u32, payload.
const recordHeader = 8

// maxRecord bounds a single record so replay cannot allocate absurd sizes
// from a corrupt length field.
const maxRecord = 16 << 20

// maxGroupReqs bounds how many waiting requests one group commit absorbs,
// keeping worst-case commit latency and scratch growth bounded.
const maxGroupReqs = 1024

// maxScratch is the retained capacity of the group-commit scratch buffer;
// a larger one-off batch is served but the buffer is released afterwards.
const maxScratch = 4 << 20

// ErrTooLarge reports an oversized append.
var ErrTooLarge = fmt.Errorf("walog: record exceeds %d bytes", maxRecord)

// ErrClosed reports an append to a closed log.
var ErrClosed = errors.New("walog: log is closed")

// File is the backing storage a Log runs on — satisfied by *os.File and by
// fault-injection wrappers in crash tests.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Options selects the log's durability policy. The zero value is the
// paper's bounded-loss default: appends are buffered by the OS and only
// forced to stable storage by explicit Sync calls (the historian syncs at
// batch-flush boundaries), so a crash loses at most the tail written since
// the last sync.
type Options struct {
	// SyncOnAppend forces every append to stable storage before Append
	// returns — zero loss. Group commit amortizes the fsync across every
	// append coalesced into the same batch.
	SyncOnAppend bool
	// SyncEvery, when > 0, syncs after every Nth record — an intermediate
	// point on the durability/throughput curve. Ignored if SyncOnAppend.
	SyncEvery int
}

// Stats counts group-commit activity.
type Stats struct {
	// Records is the number of records appended.
	Records int64
	// GroupCommits is the number of write syscalls issued; Records /
	// GroupCommits is the achieved coalescing factor.
	GroupCommits int64
	// Syncs is the number of fsyncs issued by the append path.
	Syncs int64
}

// appendReq is one waiting Append/AppendBatch call.
type appendReq struct {
	single []byte   // one-record fast path (avoids a slice header alloc)
	batch  [][]byte // multi-record path; nil when single is set
	done   chan error
}

var reqPool = sync.Pool{
	New: func() any { return &appendReq{done: make(chan error, 1)} },
}

// Log is an append-only record log. It is safe for concurrent appends.
type Log struct {
	mu       sync.Mutex // guards f, off, unsynced, scratch, stats
	f        File
	off      int64
	opts     Options
	unsynced int    // records since the last sync
	scratch  []byte // group-commit build buffer, owned by the writer

	stats Stats

	sendMu  sync.RWMutex // guards reqs against send-after-close
	reqs    chan *appendReq
	closed  atomic.Bool
	stopped chan struct{} // closed when the writer goroutine exits
}

// Open opens or creates the log at path with the default (bounded-loss)
// durability policy.
func Open(path string) (*Log, error) {
	return OpenPath(path, Options{})
}

// OpenPath opens or creates the log at path with the given policy.
func OpenPath(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("walog: open: %w", err)
	}
	return OpenFile(f, opts)
}

// OpenFile opens a log over an already-open backing file and positions
// appends after the last valid record (a torn tail is truncated away).
func OpenFile(f File, opts Options) (*Log, error) {
	l := &Log{f: f, opts: opts}
	end, err := l.scanEnd()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("walog: truncate torn tail: %w", err)
	}
	l.off = end
	l.reqs = make(chan *appendReq, maxGroupReqs)
	l.stopped = make(chan struct{})
	go l.writerLoop()
	return l, nil
}

// scanEnd walks the records and returns the offset just past the last
// valid one.
func (l *Log) scanEnd() (int64, error) {
	var off int64
	hdr := make([]byte, recordHeader)
	for {
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			return off, nil // EOF or short read: stop at last good record
		}
		length := binary.LittleEndian.Uint32(hdr)
		want := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecord {
			return off, nil
		}
		payload := make([]byte, length)
		if _, err := l.f.ReadAt(payload, off+recordHeader); err != nil {
			return off, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			return off, nil
		}
		off += recordHeader + int64(length)
	}
}

// writerLoop is the single group-commit writer: it blocks for one request,
// drains every other request already waiting, and commits them as one
// batch.
func (l *Log) writerLoop() {
	defer close(l.stopped)
	group := make([]*appendReq, 0, 64)
	for req := range l.reqs {
		group = append(group[:0], req)
	drain:
		for len(group) < maxGroupReqs {
			select {
			case r, ok := <-l.reqs:
				if !ok {
					break drain
				}
				group = append(group, r)
			default:
				break drain
			}
		}
		l.commitGroup(group)
	}
}

// commitGroup seals every record of the group into the scratch buffer,
// writes it with one syscall, applies the sync policy once, and wakes all
// waiters with the shared result.
func (l *Log) commitGroup(group []*appendReq) {
	l.mu.Lock()
	buf := l.scratch[:0]
	records := 0
	for _, r := range group {
		if r.single != nil {
			buf = appendRecord(buf, r.single)
			records++
			continue
		}
		for _, p := range r.batch {
			buf = appendRecord(buf, p)
			records++
		}
	}
	l.scratch = buf
	var err error
	if len(buf) > 0 {
		if _, werr := l.f.WriteAt(buf, l.off); werr != nil {
			err = fmt.Errorf("walog: append: %w", werr)
		} else {
			l.off += int64(len(buf))
			l.unsynced += records
			l.stats.Records += int64(records)
			l.stats.GroupCommits++
			if l.opts.SyncOnAppend || (l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery) {
				if serr := l.f.Sync(); serr != nil {
					err = fmt.Errorf("walog: sync: %w", serr)
				} else {
					l.unsynced = 0
					l.stats.Syncs++
				}
			}
		}
	}
	if cap(l.scratch) > maxScratch {
		l.scratch = nil
	}
	l.mu.Unlock()
	for _, r := range group {
		r.done <- err
	}
}

// appendRecord seals one payload (header + body) onto buf.
func appendRecord(buf, payload []byte) []byte {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// submit enqueues a request and waits for its group to commit.
func (l *Log) submit(req *appendReq) error {
	l.sendMu.RLock()
	if l.closed.Load() {
		l.sendMu.RUnlock()
		return ErrClosed
	}
	l.reqs <- req
	l.sendMu.RUnlock()
	err := <-req.done
	req.single, req.batch = nil, nil
	reqPool.Put(req)
	return err
}

// Append writes one record and applies the configured sync policy. Under
// the default policy it does not sync; call Sync for durability points.
// Concurrent appends are coalesced into one group commit.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return ErrTooLarge
	}
	req := reqPool.Get().(*appendReq)
	req.single = payload
	return l.submit(req)
}

// AppendBatch writes every payload as its own record through a single
// group commit (one write, at most one fsync). It returns when all of
// them are committed; records from concurrent appenders may interleave
// between batches but each batch's records stay in order.
func (l *Log) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	for _, p := range payloads {
		if len(p) > maxRecord {
			return ErrTooLarge
		}
	}
	req := reqPool.Get().(*appendReq)
	req.batch = payloads
	return l.submit(req)
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.unsynced = 0
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Stats returns a snapshot of group-commit counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Replay invokes fn for every valid record in order. A corrupt record ends
// replay without error (bounded-loss semantics); other I/O failures are
// reported.
func (l *Log) Replay(fn func(payload []byte) error) error {
	return l.Records(func(_ int64, payload []byte) error { return fn(payload) })
}

// Records invokes fn for every valid record in order, passing the byte
// offset the record starts at — the exported record iteration used for
// replication shipping and hinted-handoff replay, where a consumer resumes
// from the offset it last acknowledged. Like Replay, a corrupt record ends
// iteration without error; other I/O failures are reported.
func (l *Log) Records(fn func(off int64, payload []byte) error) error {
	l.mu.Lock()
	end := l.off
	l.mu.Unlock()
	var off int64
	hdr := make([]byte, recordHeader)
	for off < end {
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("walog: replay: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr)
		want := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecord {
			return nil
		}
		payload := make([]byte, length)
		if _, err := l.f.ReadAt(payload, off+recordHeader); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			return nil
		}
		if err := fn(off, payload); err != nil {
			return err
		}
		off += recordHeader + int64(length)
	}
	return nil
}

// Reset truncates the log to empty (after a successful batch flush the
// buffered points are durable in the page store and the log can recycle).
// Requests already queued behind the reset commit after it, at the start
// of the recycled log.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("walog: reset: %w", err)
	}
	l.off = 0
	l.unsynced = 0
	return nil
}

// Close stops the writer goroutine, fails subsequent appends with
// ErrClosed, and closes the log file. Appends already queued commit first.
func (l *Log) Close() error {
	l.sendMu.Lock()
	if l.closed.Swap(true) {
		l.sendMu.Unlock()
		return nil
	}
	close(l.reqs)
	l.sendMu.Unlock()
	<-l.stopped
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
