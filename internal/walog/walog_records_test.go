package walog

import (
	"fmt"
	"path/filepath"
	"testing"
)

func newMemLog(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := OpenPath(filepath.Join(t.TempDir(), "records.wal"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestRecordsOffsets verifies the exported record iteration reports each
// record's starting byte offset — the contract replication shipping and
// hinted-handoff replay resume from.
func TestRecordsOffsets(t *testing.T) {
	l := newMemLog(t, Options{})
	payloads := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	var gotOffs []int64
	var gotPayloads []string
	if err := l.Records(func(off int64, p []byte) error {
		gotOffs = append(gotOffs, off)
		gotPayloads = append(gotPayloads, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wantOffs := []int64{0, recordHeader + 1, 2*recordHeader + 3}
	if fmt.Sprint(gotOffs) != fmt.Sprint(wantOffs) {
		t.Fatalf("offsets = %v, want %v", gotOffs, wantOffs)
	}
	if fmt.Sprint(gotPayloads) != fmt.Sprint([]string{"a", "bb", "ccc"}) {
		t.Fatalf("payloads = %v", gotPayloads)
	}
	// Resuming from a reported offset must see exactly the later records.
	var resumed []string
	if err := l.Records(func(off int64, p []byte) error {
		if off >= wantOffs[1] {
			resumed = append(resumed, string(p))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resumed) != fmt.Sprint([]string{"bb", "ccc"}) {
		t.Fatalf("resumed = %v", resumed)
	}
}
