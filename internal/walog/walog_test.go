package walog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func TestAppendReplay(t *testing.T) {
	l, _ := openLog(t)
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReplayAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append([]byte{byte(i)})
	}
	l.Sync()
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Replay(func(p []byte) error { n++; return nil })
	if n != 10 {
		t.Fatalf("replayed %d, want 10", n)
	}
	// New appends land after the old ones.
	l2.Append([]byte{99})
	n = 0
	var last byte
	l2.Replay(func(p []byte) error { n++; last = p[0]; return nil })
	if n != 11 || last != 99 {
		t.Fatalf("after reopen append: %d records, last %d", n, last)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("good-1"))
	l.Append([]byte("good-2"))
	size := l.Size()
	l.Close()

	// Simulate a torn final write: append garbage bytes.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Size() != size {
		t.Fatalf("torn tail not truncated: size %d, want %d", l2.Size(), size)
	}
	n := 0
	l2.Replay(func(p []byte) error { n++; return nil })
	if n != 2 {
		t.Fatalf("replayed %d, want 2", n)
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("aaaa"))
	l.Append([]byte("bbbb"))
	l.Close()

	// Flip a payload byte of the second record.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Replay(func(p []byte) error { n++; return nil })
	if n != 1 {
		t.Fatalf("replay past corruption: %d records", n)
	}
}

func TestReset(t *testing.T) {
	l, _ := openLog(t)
	l.Append([]byte("x"))
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after reset = %d", l.Size())
	}
	n := 0
	l.Replay(func(p []byte) error { n++; return nil })
	if n != 0 {
		t.Fatal("records survived reset")
	}
}

func TestTooLarge(t *testing.T) {
	l, _ := openLog(t)
	if err := l.Append(make([]byte, maxRecord+1)); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	l, _ := openLog(t)
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	wantErr := fmt.Errorf("stop")
	err := l.Replay(func(p []byte) error { return wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}
