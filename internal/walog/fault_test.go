package walog

import (
	"errors"
	"fmt"
	"testing"

	"odh/internal/fault"
	"odh/internal/pagestore"
)

func newFaultLog(t *testing.T, opts Options) (*Log, *fault.File) {
	t.Helper()
	ff := fault.Wrap(pagestore.NewMemFile())
	l, err := OpenFile(ff, opts)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return l, ff
}

func TestDefaultPolicyNeverSyncsOnAppend(t *testing.T) {
	l, ff := newFaultLog(t, Options{})
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if c := ff.Counters(); c.Syncs != 0 {
		t.Fatalf("default policy synced %d times during appends, want 0", c.Syncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if c := ff.Counters(); c.Syncs != 1 {
		t.Fatalf("Syncs = %d after explicit Sync, want 1", c.Syncs)
	}
}

func TestSyncOnAppendPolicy(t *testing.T) {
	l, ff := newFaultLog(t, Options{SyncOnAppend: true})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if c := ff.Counters(); c.Syncs != 5 {
		t.Fatalf("Syncs = %d with SyncOnAppend, want 5", c.Syncs)
	}
	// A failing fsync must surface from Append, not be swallowed.
	ff.FailSyncsAfter(0)
	if err := l.Append([]byte("p")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Append with failing sync = %v, want injected fault", err)
	}
}

func TestSyncEveryPolicy(t *testing.T) {
	l, ff := newFaultLog(t, Options{SyncEvery: 4})
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if c := ff.Counters(); c.Syncs != 2 {
		t.Fatalf("Syncs = %d with SyncEvery=4 over 10 appends, want 2", c.Syncs)
	}
	// An explicit Sync resets the cadence counter.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("p")); err != nil {
		t.Fatal(err)
	}
	if c := ff.Counters(); c.Syncs != 3 {
		t.Fatalf("Syncs = %d after explicit sync + 1 append, want 3", c.Syncs)
	}
}

func TestTornAppendTruncatedOnReopen(t *testing.T) {
	l, ff := newFaultLog(t, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// The fourth append tears partway through its record.
	ff.FailWritesAfter(0)
	ff.SetTornWrite(10)
	if err := l.Append([]byte("record-3-lost")); err == nil {
		t.Fatal("expected torn append to fail")
	}
	// "Crash" and reopen on the raw bytes: the torn tail must be trimmed
	// and exactly the synced records replayed.
	l2, err := OpenFile(ff.Inner(), Options{})
	if err != nil {
		t.Fatalf("reopen after torn append: %v", err)
	}
	var got []string
	if err := l2.Replay(func(p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records %v, want 3", len(got), got)
	}
	for i, rec := range got {
		if rec != fmt.Sprintf("record-%d", i) {
			t.Fatalf("record %d = %q", i, rec)
		}
	}
	// The log must accept fresh appends after recovery.
	if err := l2.Append([]byte("record-3-retry")); err != nil {
		t.Fatal(err)
	}
}
