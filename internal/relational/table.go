package relational

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"odh/internal/btree"
	"odh/internal/keyenc"
	"odh/internal/pagestore"
)

// Column describes one table column.
type Column struct {
	Name string
	Type Kind
}

// Profile tunes the engine to emulate a specific relational product in the
// IoT-X comparisons. The knobs change write amplification and per-row
// overhead, reproducing the relative ordering the paper measured.
type Profile struct {
	// Name labels benchmark output ("RDB", "MySQL").
	Name string
	// RowOverhead is padding added to every stored row, modelling the
	// product's record header (tuple header, transaction metadata, ...).
	RowOverhead int
	// IndexRowTax stores this many extra bytes per secondary-index entry
	// (InnoDB-style secondary indexes carry the full PK).
	IndexRowTax int
}

// Predefined profiles for the benchmark candidates.
var (
	ProfileRDB   = Profile{Name: "RDB", RowOverhead: 16, IndexRowTax: 0}
	ProfileMySQL = Profile{Name: "MySQL", RowOverhead: 18, IndexRowTax: 8}
)

// tableMeta is the persisted descriptor of a table.
type tableMeta struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
	Indexes []indexMeta
}

type indexMeta struct {
	Name    string `json:"name"`
	Columns []int  `json:"columns"` // column ordinals
}

// DB is a relational database over one page store.
type DB struct {
	mu      sync.RWMutex
	store   *pagestore.Store
	meta    *btree.Tree
	tables  map[string]*Table
	profile Profile
}

// Open opens (or initializes) a relational DB in store.
func Open(store *pagestore.Store, profile Profile) (*DB, error) {
	meta, err := btree.Open(store, "rel.meta")
	if err != nil {
		return nil, err
	}
	db := &DB{store: store, meta: meta, tables: make(map[string]*Table), profile: profile}
	err = meta.Scan(nil, nil, func(k, v []byte) bool {
		var tm tableMeta
		if json.Unmarshal(v, &tm) != nil {
			return true
		}
		t, err := db.openTable(tm)
		if err == nil {
			db.tables[tm.Name] = t
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Profile returns the active product profile.
func (db *DB) Profile() Profile { return db.profile }

func (db *DB) openTable(tm tableMeta) (*Table, error) {
	rows, err := btree.Open(db.store, "rel.t."+tm.Name)
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, name: tm.Name, columns: tm.Columns, rows: rows}
	if maxKey, err := rows.MaxKey(); err != nil {
		return nil, err
	} else if maxKey != nil {
		id, _, err := keyenc.Int64(maxKey)
		if err != nil {
			return nil, err
		}
		t.nextRowID = id + 1
	} else {
		t.nextRowID = 1
	}
	for _, im := range tm.Indexes {
		tree, err := btree.Open(db.store, "rel.i."+tm.Name+"."+im.Name)
		if err != nil {
			return nil, err
		}
		t.indexes = append(t.indexes, &Index{table: t, name: im.Name, columns: im.Columns, tree: tree})
	}
	return t, nil
}

// CreateTable creates a table with the given columns.
func (db *DB) CreateTable(name string, columns []Column) (*Table, error) {
	if name == "" || len(columns) == 0 {
		return nil, fmt.Errorf("relational: invalid table definition %q", name)
	}
	seen := map[string]bool{}
	for _, c := range columns {
		if c.Name == "" || seen[c.Name] {
			return nil, fmt.Errorf("relational: table %q: empty or duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("relational: table %q already exists", name)
	}
	tm := tableMeta{Name: name, Columns: columns}
	t, err := db.openTable(tm)
	if err != nil {
		return nil, err
	}
	if err := db.saveMeta(tm); err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

func (db *DB) saveMeta(tm tableMeta) error {
	buf, err := json.Marshal(tm)
	if err != nil {
		return err
	}
	return db.meta.Put(keyenc.AppendString(nil, tm.Name), buf)
}

// Table looks up a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Tables returns all table names.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Table is a heap of rows in a clustered rowid B-tree plus secondary
// indexes.
type Table struct {
	db        *DB
	name      string
	columns   []Column
	rows      *btree.Tree
	indexes   []*Index
	mu        sync.Mutex
	nextRowID int64
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the table schema.
func (t *Table) Columns() []Column { return t.columns }

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RowCount returns the number of rows.
func (t *Table) RowCount() uint64 { return t.rows.Count() }

// CreateIndex builds a secondary index over the named columns. Existing
// rows are indexed immediately.
func (t *Table) CreateIndex(name string, columnNames ...string) (*Index, error) {
	ords := make([]int, len(columnNames))
	for i, cn := range columnNames {
		ord := t.ColumnIndex(cn)
		if ord < 0 {
			return nil, fmt.Errorf("relational: index %q: unknown column %q", name, cn)
		}
		ords[i] = ord
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, idx := range t.indexes {
		if idx.name == name {
			return nil, fmt.Errorf("relational: index %q already exists on %q", name, t.name)
		}
	}
	tree, err := btree.Open(t.db.store, "rel.i."+t.name+"."+name)
	if err != nil {
		return nil, err
	}
	idx := &Index{table: t, name: name, columns: ords, tree: tree}
	// Backfill.
	err = t.scanRaw(func(rowid int64, vals []Value) bool {
		err = idx.insert(rowid, vals)
		return err == nil
	})
	if err != nil {
		return nil, err
	}
	t.indexes = append(t.indexes, idx)
	return idx, t.persistMeta()
}

func (t *Table) persistMeta() error {
	tm := tableMeta{Name: t.name, Columns: t.columns}
	for _, idx := range t.indexes {
		tm.Indexes = append(tm.Indexes, indexMeta{Name: idx.name, Columns: idx.columns})
	}
	return t.db.saveMeta(tm)
}

// Index returns the named index.
func (t *Table) Index(name string) (*Index, bool) {
	for _, idx := range t.indexes {
		if idx.name == name {
			return idx, true
		}
	}
	return nil, false
}

// Indexes returns all indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// Insert adds one row, updating every secondary index (the per-record
// B-tree maintenance the paper identifies as the relational bottleneck).
func (t *Table) Insert(vals []Value) (int64, error) {
	if len(vals) != len(t.columns) {
		return 0, fmt.Errorf("relational: %q: %d values for %d columns", t.name, len(vals), len(t.columns))
	}
	t.mu.Lock()
	rowid := t.nextRowID
	t.nextRowID++
	t.mu.Unlock()
	row := encodeRow(vals, t.db.profile.RowOverhead)
	if err := t.rows.Put(keyenc.AppendInt64(nil, rowid), row); err != nil {
		return 0, err
	}
	for _, idx := range t.indexes {
		if err := idx.insert(rowid, vals); err != nil {
			return 0, err
		}
	}
	return rowid, nil
}

// InsertBatch inserts rows one by one; the batch entry point models the
// JDBC executeBatch path the benchmark grants the relational candidates.
func (t *Table) InsertBatch(rows [][]Value) error {
	for _, vals := range rows {
		if _, err := t.Insert(vals); err != nil {
			return err
		}
	}
	return nil
}

// Get fetches a row by rowid.
func (t *Table) Get(rowid int64) ([]Value, error) {
	raw, err := t.rows.Get(keyenc.AppendInt64(nil, rowid))
	if err != nil {
		return nil, err
	}
	return decodeRow(raw, len(t.columns))
}

// Scan iterates every row in rowid order.
func (t *Table) Scan(fn func(rowid int64, vals []Value) bool) error {
	return t.scanRaw(fn)
}

func (t *Table) scanRaw(fn func(rowid int64, vals []Value) bool) error {
	var decodeErr error
	err := t.rows.Scan(nil, nil, func(k, v []byte) bool {
		rowid, _, err := keyenc.Int64(k)
		if err != nil {
			decodeErr = err
			return false
		}
		vals, err := decodeRow(v, len(t.columns))
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(rowid, vals)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}

// StorageBytes reports the payload bytes of the table and its indexes.
func (t *Table) StorageBytes() int64 {
	total := int64(t.rows.ValueBytes())
	// Index keys are not counted by ValueBytes; approximate with entry
	// count times average key width per index.
	for _, idx := range t.indexes {
		total += int64(idx.tree.Count()) * int64(16+t.db.profile.IndexRowTax)
	}
	return total
}

// Index is a secondary index mapping encoded column values to rowids.
type Index struct {
	table   *Table
	name    string
	columns []int
	tree    *btree.Tree
}

// Name returns the index name.
func (i *Index) Name() string { return i.name }

// ColumnOrdinals returns the indexed column positions.
func (i *Index) ColumnOrdinals() []int { return i.columns }

// EntryCount returns the number of index entries.
func (i *Index) EntryCount() uint64 { return i.tree.Count() }

// insert adds an index entry for a row.
func (i *Index) insert(rowid int64, vals []Value) error {
	key := i.keyFor(vals)
	key = keyenc.AppendInt64(key, rowid) // uniquify duplicates
	var tax []byte
	if n := i.table.db.profile.IndexRowTax; n > 0 {
		tax = make([]byte, n)
	}
	return i.tree.Put(key, tax)
}

// keyFor builds the column-value prefix of an index key.
func (i *Index) keyFor(vals []Value) []byte {
	var key []byte
	for _, ord := range i.columns {
		key = appendIndexKey(key, vals[ord])
	}
	return key
}

// ScanPrefix iterates rows whose indexed columns equal the given prefix
// values.
func (i *Index) ScanPrefix(prefix []Value, fn func(rowid int64, vals []Value) bool) error {
	var lo []byte
	for _, v := range prefix {
		lo = appendIndexKey(lo, v)
	}
	hi := keyenc.PrefixSuccessor(lo)
	return i.scanKeys(lo, hi, fn)
}

// ScanRange iterates rows whose first indexed column lies in [lo, hi]
// (inclusive bounds, matching SQL BETWEEN). Pass Null for an open bound.
func (i *Index) ScanRange(lo, hi Value, fn func(rowid int64, vals []Value) bool) error {
	var loKey, hiKey []byte
	if !lo.IsNull() {
		loKey = appendIndexKey(nil, lo)
	}
	if !hi.IsNull() {
		hiKey = keyenc.PrefixSuccessor(appendIndexKey(nil, hi))
	}
	return i.scanKeys(loKey, hiKey, fn)
}

func (i *Index) scanKeys(lo, hi []byte, fn func(rowid int64, vals []Value) bool) error {
	var innerErr error
	err := i.tree.Scan(lo, hi, func(k, _ []byte) bool {
		if len(k) < 8 {
			return true
		}
		rowid, _, err := keyenc.Int64(k[len(k)-8:])
		if err != nil {
			innerErr = err
			return false
		}
		vals, err := i.table.Get(rowid)
		if err != nil {
			innerErr = err
			return false
		}
		return fn(rowid, vals)
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}

// CountRange estimates selectivity for the planner: entries with first
// column in [lo, hi].
func (i *Index) CountRange(lo, hi Value) (int, error) {
	var loKey, hiKey []byte
	if !lo.IsNull() {
		loKey = appendIndexKey(nil, lo)
	}
	if !hi.IsNull() {
		hiKey = keyenc.PrefixSuccessor(appendIndexKey(nil, hi))
	}
	n, _, err := i.tree.CountRange(loKey, hiKey)
	return n, err
}

// --- row codec ---

// encodeRow serializes values with a null bitmap, then pads with the
// profile's per-row overhead.
func encodeRow(vals []Value, overhead int) []byte {
	bm := make([]byte, (len(vals)+7)/8)
	for i, v := range vals {
		if !v.IsNull() {
			bm[i/8] |= 1 << (i % 8)
		}
	}
	buf := append([]byte(nil), bm...)
	for _, v := range vals {
		switch v.Kind {
		case KindNull:
		case KindInt:
			buf = append(buf, byte(KindInt))
			buf = binary.AppendVarint(buf, v.I)
		case KindTime:
			buf = append(buf, byte(KindTime))
			buf = binary.AppendVarint(buf, v.I)
		case KindFloat:
			buf = append(buf, byte(KindFloat))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case KindString:
			buf = append(buf, byte(KindString))
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		}
	}
	if overhead > 0 {
		buf = append(buf, make([]byte, overhead)...)
	}
	return buf
}

// decodeRow deserializes a row of ncols values.
func decodeRow(b []byte, ncols int) ([]Value, error) {
	bmLen := (ncols + 7) / 8
	if len(b) < bmLen {
		return nil, fmt.Errorf("relational: corrupt row")
	}
	bm := b[:bmLen]
	b = b[bmLen:]
	vals := make([]Value, ncols)
	for i := 0; i < ncols; i++ {
		if bm[i/8]&(1<<(i%8)) == 0 {
			vals[i] = Null
			continue
		}
		if len(b) < 1 {
			return nil, fmt.Errorf("relational: corrupt row")
		}
		kind := Kind(b[0])
		b = b[1:]
		switch kind {
		case KindInt, KindTime:
			v, n := binary.Varint(b)
			if n <= 0 {
				return nil, fmt.Errorf("relational: corrupt row")
			}
			vals[i] = Value{Kind: kind, I: v}
			b = b[n:]
		case KindFloat:
			if len(b) < 8 {
				return nil, fmt.Errorf("relational: corrupt row")
			}
			vals[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case KindString:
			l, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b[n:])) < l {
				return nil, fmt.Errorf("relational: corrupt row")
			}
			vals[i] = Str(string(b[n : n+int(l)]))
			b = b[n+int(l):]
		default:
			return nil, fmt.Errorf("relational: corrupt row kind %d", kind)
		}
	}
	return vals, nil
}
