package relational

import (
	"math"
	"testing"
	"testing/quick"

	"odh/internal/pagestore"
)

func newDB(t testing.TB, p Profile) *DB {
	t.Helper()
	store, err := pagestore.Open(pagestore.NewMemFile(), pagestore.Options{PoolPages: 8192})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	db, err := Open(store, p)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func tradeTable(t testing.TB, db *DB) *Table {
	t.Helper()
	tbl, err := db.CreateTable("TRADE", []Column{
		{Name: "T_DTS", Type: KindTime},
		{Name: "T_CA_ID", Type: KindInt},
		{Name: "T_TRADE_PRICE", Type: KindFloat},
		{Name: "T_CHRG", Type: KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCreateInsertGet(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	rowid, err := tbl.Insert([]Value{Time(1000), Int(7), Float(99.5), Null})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := tbl.Get(rowid)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].I != 1000 || vals[1].I != 7 || vals[2].F != 99.5 || !vals[3].IsNull() {
		t.Fatalf("roundtrip: %v", vals)
	}
	if tbl.RowCount() != 1 {
		t.Fatalf("RowCount = %d", tbl.RowCount())
	}
	if _, err := tbl.Insert([]Value{Int(1)}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := newDB(t, ProfileRDB)
	if _, err := db.CreateTable("", nil); err == nil {
		t.Fatal("empty definition accepted")
	}
	if _, err := db.CreateTable("x", []Column{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	db.CreateTable("dup", []Column{{Name: "a", Type: KindInt}})
	if _, err := db.CreateTable("dup", []Column{{Name: "a", Type: KindInt}}); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestIndexScanPrefix(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	idx, err := tbl.CreateIndex("by_ca", "T_CA_ID")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tbl.Insert([]Value{Time(int64(i)), Int(int64(i % 10)), Float(float64(i)), Float(0.1)})
	}
	var got []float64
	err = idx.ScanPrefix([]Value{Int(3)}, func(rowid int64, vals []Value) bool {
		got = append(got, vals[2].F)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("prefix scan hit %d rows, want 10", len(got))
	}
	for _, f := range got {
		if int(f)%10 != 3 {
			t.Fatalf("wrong row: %v", f)
		}
	}
}

func TestIndexScanRange(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	idx, _ := tbl.CreateIndex("by_dts", "T_DTS")
	for i := 0; i < 100; i++ {
		tbl.Insert([]Value{Time(int64(i * 10)), Int(1), Float(0), Float(0)})
	}
	n := 0
	idx.ScanRange(Time(200), Time(400), func(rowid int64, vals []Value) bool {
		if vals[0].I < 200 || vals[0].I > 400 {
			t.Fatalf("out of range: %d", vals[0].I)
		}
		n++
		return true
	})
	if n != 21 { // BETWEEN is inclusive: 200..400 step 10
		t.Fatalf("range scan hit %d, want 21", n)
	}
	// Open bounds.
	n = 0
	idx.ScanRange(Null, Time(50), func(int64, []Value) bool { n++; return true })
	if n != 6 {
		t.Fatalf("open-low range = %d, want 6", n)
	}
	cnt, err := idx.CountRange(Time(200), Time(400))
	if err != nil || cnt != 21 {
		t.Fatalf("CountRange = %d, %v", cnt, err)
	}
}

func TestIndexBackfill(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	for i := 0; i < 50; i++ {
		tbl.Insert([]Value{Time(int64(i)), Int(int64(i)), Float(0), Float(0)})
	}
	idx, err := tbl.CreateIndex("late", "T_CA_ID")
	if err != nil {
		t.Fatal(err)
	}
	if idx.EntryCount() != 50 {
		t.Fatalf("backfill indexed %d rows", idx.EntryCount())
	}
	found := false
	idx.ScanPrefix([]Value{Int(25)}, func(rowid int64, vals []Value) bool {
		found = true
		return true
	})
	if !found {
		t.Fatal("backfilled entry not found")
	}
}

func TestDuplicateKeysInIndex(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	idx, _ := tbl.CreateIndex("by_ca", "T_CA_ID")
	for i := 0; i < 20; i++ {
		tbl.Insert([]Value{Time(int64(i)), Int(5), Float(float64(i)), Float(0)})
	}
	n := 0
	idx.ScanPrefix([]Value{Int(5)}, func(int64, []Value) bool { n++; return true })
	if n != 20 {
		t.Fatalf("duplicates collapsed: %d entries", n)
	}
}

func TestScanAll(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	for i := 0; i < 30; i++ {
		tbl.Insert([]Value{Time(int64(i)), Int(int64(i)), Float(0), Float(0)})
	}
	prev := int64(-1)
	n := 0
	tbl.Scan(func(rowid int64, vals []Value) bool {
		if rowid <= prev {
			t.Fatal("scan not in rowid order")
		}
		prev = rowid
		n++
		return true
	})
	if n != 30 {
		t.Fatalf("scanned %d", n)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	f := pagestore.NewMemFile()
	store, _ := pagestore.Open(f, pagestore.Options{PoolPages: 4096})
	db, _ := Open(store, ProfileRDB)
	tbl, _ := db.CreateTable("ACCOUNT", []Column{
		{Name: "CA_ID", Type: KindInt},
		{Name: "CA_NAME", Type: KindString},
	})
	tbl.CreateIndex("by_name", "CA_NAME")
	for i := 0; i < 20; i++ {
		tbl.Insert([]Value{Int(int64(i)), Str("acct")})
	}
	store.Close()

	store2, _ := pagestore.Open(f, pagestore.Options{PoolPages: 4096})
	defer store2.Close()
	db2, err := Open(store2, ProfileRDB)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, ok := db2.Table("ACCOUNT")
	if !ok {
		t.Fatal("table lost")
	}
	if tbl2.RowCount() != 20 {
		t.Fatalf("rows lost: %d", tbl2.RowCount())
	}
	idx, ok := tbl2.Index("by_name")
	if !ok || idx.EntryCount() != 20 {
		t.Fatal("index lost")
	}
	// New inserts must not collide with old rowids.
	rid, err := tbl2.Insert([]Value{Int(99), Str("new")})
	if err != nil {
		t.Fatal(err)
	}
	if rid != 21 {
		t.Fatalf("rowid after reopen = %d, want 21", rid)
	}
}

func TestMySQLProfileLargerStorage(t *testing.T) {
	sizeFor := func(p Profile) int64 {
		db := newDB(t, p)
		tbl := tradeTable(t, db)
		tbl.CreateIndex("by_dts", "T_DTS")
		tbl.CreateIndex("by_ca", "T_CA_ID")
		for i := 0; i < 500; i++ {
			tbl.Insert([]Value{Time(int64(i)), Int(int64(i % 7)), Float(1.5), Float(0.25)})
		}
		return tbl.StorageBytes()
	}
	rdb := sizeFor(ProfileRDB)
	mysql := sizeFor(ProfileMySQL)
	if mysql <= rdb {
		t.Fatalf("MySQL profile (%d) not larger than RDB (%d)", mysql, rdb)
	}
	if float64(mysql) > float64(rdb)*1.4 {
		t.Fatalf("profile gap implausible: %d vs %d", mysql, rdb)
	}
}

func TestRowCodecQuick(t *testing.T) {
	if err := quick.Check(func(i int64, f float64, s string, nullMask uint8) bool {
		if math.IsNaN(f) {
			f = 0
		}
		vals := []Value{Int(i), Float(f), Str(s), Time(i)}
		for bit := 0; bit < 4; bit++ {
			if nullMask&(1<<bit) != 0 {
				vals[bit] = Null
			}
		}
		dec, err := decodeRow(encodeRow(vals, 16), 4)
		if err != nil {
			return false
		}
		for j := range vals {
			if vals[j].IsNull() != dec[j].IsNull() {
				return false
			}
			if !vals[j].IsNull() && Compare(vals[j], dec[j]) != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Time(100), Int(100), 0},
		{Null, Int(0), -1},
		{Str("a"), Str("b"), -1},
		{Int(5), Str("a"), -1}, // numbers rank before strings
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Fatalf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if Equal(Null, Null) {
		t.Fatal("NULL = NULL must be false")
	}
	if !Equal(Int(3), Float(3)) {
		t.Fatal("3 = 3.0 must hold")
	}
}

func BenchmarkInsertWithTwoIndexes(b *testing.B) {
	db := newDB(b, ProfileRDB)
	tbl := tradeTable(b, db)
	tbl.CreateIndex("by_dts", "T_DTS")
	tbl.CreateIndex("by_ca", "T_CA_ID")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert([]Value{Time(int64(i)), Int(int64(i % 1000)), Float(1), Float(2)})
	}
}
