package relational

import (
	"strings"
	"testing"
)

func TestValueRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Int(-42), "-42"},
		{Float(1.5), "1.5"},
		{Str("hello"), "hello"},
		{Time(1000), "1000"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Fatalf("%v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindNames(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "STRING", KindTime: "TIMESTAMP",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d) = %q", k, k.String())
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Fatal("unknown kind rendering")
	}
}

func TestValueConversions(t *testing.T) {
	if Int(7).AsFloat() != 7 || Float(2.5).AsInt() != 2 || Time(9).AsInt() != 9 {
		t.Fatal("numeric conversions")
	}
	if Str("x").AsInt() != 0 {
		t.Fatal("string AsInt should be 0")
	}
	if f := Str("x").AsFloat(); f == f { // NaN check
		t.Fatal("string AsFloat should be NaN")
	}
	if Null.IsNull() != true || Int(0).IsNull() != false {
		t.Fatal("IsNull")
	}
}

func TestDBTablesAndProfile(t *testing.T) {
	db := newDB(t, ProfileMySQL)
	if db.Profile().Name != "MySQL" {
		t.Fatalf("profile: %+v", db.Profile())
	}
	db.CreateTable("b_table", []Column{{Name: "x", Type: KindInt}})
	db.CreateTable("a_table", []Column{{Name: "x", Type: KindInt}})
	names := db.Tables()
	if len(names) != 2 || names[0] != "a_table" || names[1] != "b_table" {
		t.Fatalf("Tables() = %v", names)
	}
	if _, ok := db.Table("missing"); ok {
		t.Fatal("missing table found")
	}
}

func TestIndexMetadata(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	idx, _ := tbl.CreateIndex("by_ca", "T_CA_ID")
	if idx.Name() != "by_ca" {
		t.Fatalf("Name = %q", idx.Name())
	}
	if ords := idx.ColumnOrdinals(); len(ords) != 1 || ords[0] != 1 {
		t.Fatalf("ordinals: %v", ords)
	}
	if _, err := tbl.CreateIndex("by_ca", "T_CA_ID"); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := tbl.CreateIndex("bad", "nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, ok := tbl.Index("missing"); ok {
		t.Fatal("missing index found")
	}
	if got := len(tbl.Indexes()); got != 1 {
		t.Fatalf("Indexes = %d", got)
	}
}

func TestCursorIteratesAll(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	for i := 0; i < 25; i++ {
		tbl.Insert([]Value{Time(int64(i)), Int(int64(i)), Float(0), Float(0)})
	}
	cur := tbl.Cursor()
	n := 0
	prev := int64(0)
	for {
		rowid, vals, ok := cur.Next()
		if !ok {
			break
		}
		if rowid <= prev {
			t.Fatal("rowid order")
		}
		prev = rowid
		if len(vals) != 4 {
			t.Fatalf("arity %d", len(vals))
		}
		n++
	}
	if cur.Err() != nil || n != 25 {
		t.Fatalf("cursor: n=%d err=%v", n, cur.Err())
	}
}

func TestIndexCursorOpenBounds(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	idx, _ := tbl.CreateIndex("by_dts", "T_DTS")
	for i := 0; i < 10; i++ {
		tbl.Insert([]Value{Time(int64(i * 10)), Int(1), Float(0), Float(0)})
	}
	count := func(lo, hi Value) int {
		cur := idx.Cursor(lo, hi)
		n := 0
		for {
			if _, _, ok := cur.Next(); !ok {
				break
			}
			n++
		}
		if cur.Err() != nil {
			t.Fatal(cur.Err())
		}
		return n
	}
	if got := count(Null, Null); got != 10 {
		t.Fatalf("open-open = %d", got)
	}
	if got := count(Time(50), Null); got != 5 {
		t.Fatalf("lo-open = %d", got)
	}
	if got := count(Null, Time(30)); got != 4 {
		t.Fatalf("open-hi = %d", got)
	}
}

func TestStorageBytesGrows(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	before := tbl.StorageBytes()
	for i := 0; i < 100; i++ {
		tbl.Insert([]Value{Time(int64(i)), Int(1), Float(2), Float(3)})
	}
	if tbl.StorageBytes() <= before {
		t.Fatal("storage did not grow")
	}
}

func TestDecodeRowCorruption(t *testing.T) {
	good := encodeRow([]Value{Int(1), Str("abc")}, 0)
	if _, err := decodeRow(good[:1], 2); err == nil {
		t.Fatal("truncated row accepted")
	}
	bad := append([]byte(nil), good...)
	bad[1] = 99 // invalid kind byte
	if _, err := decodeRow(bad, 2); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if _, err := decodeRow(nil, 1); err == nil {
		t.Fatal("nil row accepted")
	}
}

func TestGetMissingRow(t *testing.T) {
	db := newDB(t, ProfileRDB)
	tbl := tradeTable(t, db)
	if _, err := tbl.Get(12345); err == nil {
		t.Fatal("missing rowid found")
	}
}
