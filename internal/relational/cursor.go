package relational

import (
	"odh/internal/btree"
	"odh/internal/keyenc"
)

// RowCursor pulls table rows one at a time, in rowid order. The SQL
// executor's sequential-scan operator wraps one.
type RowCursor struct {
	t   *Table
	cur *btree.Cursor
	err error
}

// Cursor returns a RowCursor positioned at the first row.
func (t *Table) Cursor() *RowCursor {
	return &RowCursor{t: t, cur: t.rows.First()}
}

// Next returns the next row; ok is false at the end.
func (c *RowCursor) Next() (rowid int64, vals []Value, ok bool) {
	if c.err != nil || !c.cur.Valid() {
		if c.err == nil {
			c.err = c.cur.Err()
		}
		return 0, nil, false
	}
	rowid, _, err := keyenc.Int64(c.cur.Key())
	if err != nil {
		c.err = err
		return 0, nil, false
	}
	raw, err := c.cur.Value()
	if err != nil {
		c.err = err
		return 0, nil, false
	}
	vals, err = decodeRow(raw, len(c.t.columns))
	if err != nil {
		c.err = err
		return 0, nil, false
	}
	c.cur.Next()
	return rowid, vals, true
}

// Err returns the first error the cursor hit.
func (c *RowCursor) Err() error { return c.err }

// IndexCursor pulls rows via a secondary-index range, fetching each row
// from the clustered tree (the index-scan random-read pattern the paper's
// relational baselines pay on every lookup).
type IndexCursor struct {
	idx *Index
	cur *btree.Cursor
	hi  []byte
	err error
}

// Cursor returns an IndexCursor over entries with first indexed column in
// [lo, hi] (inclusive; pass Null for open bounds).
func (i *Index) Cursor(lo, hi Value) *IndexCursor {
	var loKey, hiKey []byte
	if !lo.IsNull() {
		loKey = appendIndexKey(nil, lo)
	}
	if !hi.IsNull() {
		hiKey = keyenc.PrefixSuccessor(appendIndexKey(nil, hi))
	}
	return &IndexCursor{idx: i, cur: i.tree.Seek(loKey), hi: hiKey}
}

// CursorPrefix returns an IndexCursor over entries whose indexed columns
// equal prefix exactly.
func (i *Index) CursorPrefix(prefix []Value) *IndexCursor {
	var lo []byte
	for _, v := range prefix {
		lo = appendIndexKey(lo, v)
	}
	return &IndexCursor{idx: i, cur: i.tree.Seek(lo), hi: keyenc.PrefixSuccessor(lo)}
}

// Next returns the next matching row.
func (c *IndexCursor) Next() (rowid int64, vals []Value, ok bool) {
	for {
		if c.err != nil || !c.cur.Valid() {
			if c.err == nil {
				c.err = c.cur.Err()
			}
			return 0, nil, false
		}
		key := c.cur.Key()
		if c.hi != nil && string(key) >= string(c.hi) {
			return 0, nil, false
		}
		if len(key) < 8 {
			c.cur.Next()
			continue
		}
		rowid, _, err := keyenc.Int64(key[len(key)-8:])
		if err != nil {
			c.err = err
			return 0, nil, false
		}
		vals, err := c.idx.table.Get(rowid)
		if err != nil {
			c.err = err
			return 0, nil, false
		}
		c.cur.Next()
		return rowid, vals, true
	}
}

// Err returns the first error the cursor hit.
func (c *IndexCursor) Err() error { return c.err }
