// Package relational implements the row-store baseline engine the IoT-X
// benchmark compares ODH against (the paper's "RDB" and "MySQL"
// candidates). Tables are clustered B-trees keyed by rowid; secondary
// indexes are B-trees from encoded column values to rowids. The defining
// performance property — one B-tree maintenance operation per index per
// inserted record — is exactly the bottleneck the paper identifies in its
// relational baselines ("relational databases require a B-Tree update for
// each record insert").
package relational

import (
	"fmt"
	"math"
	"strconv"

	"odh/internal/keyenc"
)

// Kind is a SQL value type.
type Kind uint8

// Value kinds. Timestamps are int64 Unix milliseconds with their own kind
// so formatters can render them as datetimes.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindTime
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindTime:
		return "TIMESTAMP"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is one SQL value. The zero value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null is the NULL value.
var Null = Value{}

// Int builds an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float builds a float value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Str builds a string value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Time builds a timestamp value from Unix milliseconds.
func Time(ms int64) Value { return Value{Kind: KindTime, I: ms} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts numeric values to float64 (NULL and strings are NaN).
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt, KindTime:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return math.NaN()
}

// AsInt converts numeric values to int64.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt, KindTime:
		return v.I
	case KindFloat:
		return int64(v.F)
	}
	return 0
}

// String renders the value for result display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt, KindTime:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	}
	return "?"
}

// Compare orders two values: NULL < numbers < strings; numeric kinds
// compare by numeric value (int/float/time interoperate, as SQL expects of
// a timestamp BETWEEN over integer literals).
func Compare(a, b Value) int {
	ra, rb := rank(a.Kind), rank(b.Kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both null
		return 0
	case 1: // numeric
		fa, fb := a.AsFloat(), b.AsFloat()
		// Compare ints exactly when both sides are integral kinds.
		if a.Kind != KindFloat && b.Kind != KindFloat {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	default: // strings
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	}
}

func rank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindFloat, KindTime:
		return 1
	default:
		return 2
	}
}

// Equal reports SQL equality (NULL never equals anything, including NULL).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// appendIndexKey appends an order-preserving encoding of v for index keys.
// A leading kind byte keeps NULLs first and types separated.
func appendIndexKey(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, 0x00)
	case KindInt, KindTime:
		dst = append(dst, 0x01)
		return keyenc.AppendInt64(dst, v.I)
	case KindFloat:
		dst = append(dst, 0x01)
		return keyenc.AppendInt64(dst, floatAsOrderedInt(v.F))
	case KindString:
		dst = append(dst, 0x02)
		return keyenc.AppendString(dst, v.S)
	}
	return dst
}

// floatAsOrderedInt maps a float to an int64 with the same ordering as
// Compare's numeric rank, so int and float index entries interleave
// correctly for integral floats.
func floatAsOrderedInt(f float64) int64 {
	// Integral floats index identically to ints of the same value; others
	// land between neighbours. This matches Compare's mixed numeric
	// semantics closely enough for range scans, which re-check bounds.
	if f >= math.MinInt64 && f <= math.MaxInt64 && f == math.Trunc(f) {
		return int64(f)
	}
	return int64(math.Floor(f))
}
