// Package model defines the operational data model of §2 of the paper:
// schema types, data sources, operational records (points), and the
// mapping from data-source characteristics to the batch structure that
// stores them (the paper's Table 1).
package model

import (
	"fmt"
	"math"

	"odh/internal/compress"
)

// NullValue is the in-memory representation of a NULL tag value (sparse
// operational records are common; see the paper's Observation table where
// most measurements are NULL for any given sensor).
var NullValue = math.NaN()

// IsNull reports whether a tag value is NULL.
func IsNull(v float64) bool { return math.IsNaN(v) }

// TagDef describes one measurement attribute of a schema type.
type TagDef struct {
	// Name is the tag (column) name exposed through the virtual table.
	Name string
	// Compression configures the variability-aware compressor for this
	// tag. The zero value requests lossless storage.
	Compression compress.Policy
}

// SchemaType groups data sources that produce records with the same data
// schema. Each schema type is exposed as one virtual table
// (id, timestamp, tags...).
type SchemaType struct {
	// ID is the catalog-assigned identifier.
	ID int64
	// Name is the schema type name; the virtual table is named
	// "<name>_v" by convention, but any name can be registered.
	Name string
	// Tags are the measurement attributes, in column order.
	Tags []TagDef
	// IDName and TSName override the virtual table's id and timestamp
	// column names (e.g. the TD schema's T_CA_ID and T_DTS). Empty means
	// "id" and "timestamp".
	IDName string
	TSName string
}

// IDColumn returns the virtual table's data-source id column name.
func (s *SchemaType) IDColumn() string {
	if s.IDName != "" {
		return s.IDName
	}
	return "id"
}

// TSColumn returns the virtual table's timestamp column name.
func (s *SchemaType) TSColumn() string {
	if s.TSName != "" {
		return s.TSName
	}
	return "timestamp"
}

// TagIndex returns the position of the named tag, or -1.
func (s *SchemaType) TagIndex(name string) int {
	for i, t := range s.Tags {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Structure identifies one of the three batch structures of the data model.
type Structure uint8

// The three batch structures (paper Figure 1).
const (
	RTS  Structure = iota // Regular Time Series: implicit timestamps
	IRTS                  // Irregular Time Series: delta-encoded timestamps
	MG                    // Mixed Grouping: one timestamp, many sources
)

// String names the structure.
func (s Structure) String() string {
	switch s {
	case RTS:
		return "RTS"
	case IRTS:
		return "IRTS"
	case MG:
		return "MG"
	}
	return fmt.Sprintf("Structure(%d)", uint8(s))
}

// HighFrequencyHz is the sampling-rate boundary between the paper's
// high-frequency (>1 Hz) and low-frequency (<1 Hz) scenarios.
const HighFrequencyHz = 1.0

// DataSource describes one sensor or device.
type DataSource struct {
	// ID identifies the source; it is the `id` column of the virtual table.
	ID int64
	// SchemaID is the schema type this source produces.
	SchemaID int64
	// Name is an optional human-readable label.
	Name string
	// Regular reports whether the source samples at identical intervals.
	Regular bool
	// IntervalMs is the sampling interval for regular sources and the
	// expected mean interval for irregular ones (used for frequency
	// classification and RTS slot computation).
	IntervalMs int64
	// Group is the MG group this source belongs to; zero when the source
	// ingests through RTS or IRTS.
	Group int64
	// GroupSlot is the source's position within its MG group.
	GroupSlot int
}

// SampleHz returns the source's (approximate) sampling frequency.
func (d *DataSource) SampleHz() float64 {
	if d.IntervalMs <= 0 {
		return 0
	}
	return 1000 / float64(d.IntervalMs)
}

// HighFrequency reports whether the source samples at more than 1 Hz.
func (d *DataSource) HighFrequency() bool { return d.SampleHz() > HighFrequencyHz }

// IngestStructure returns the batch structure used when ingesting this
// source's data, per the paper's Table 1: high-frequency sources batch
// per-source (RTS when regular, IRTS when irregular); low-frequency
// sources batch per-timestamp across a group (MG), because a single
// low-frequency source would take too long to fill a per-source batch.
func (d *DataSource) IngestStructure() Structure {
	if d.HighFrequency() {
		if d.Regular {
			return RTS
		}
		return IRTS
	}
	return MG
}

// HistoricalStructure returns the structure Table 1 prescribes for
// historical queries: low-frequency sources are reorganized from MG into
// RTS (regular) or IRTS (irregular) so per-source history reads stay
// sequential.
func (d *DataSource) HistoricalStructure() Structure {
	if d.Regular {
		return RTS
	}
	return IRTS
}

// Point is one operational record: (timestamp, id, tag values...).
type Point struct {
	// Source is the producing data source's ID.
	Source int64
	// TS is the sample timestamp in Unix milliseconds.
	TS int64
	// Values holds one entry per schema tag; NULL is represented by NaN.
	Values []float64
}

// Clone deep-copies the point.
func (p Point) Clone() Point {
	vals := make([]float64, len(p.Values))
	copy(vals, p.Values)
	return Point{Source: p.Source, TS: p.TS, Values: vals}
}

// SourceStats are the per-source statistics the catalog maintains for the
// cost model and for bounding historical scans.
type SourceStats struct {
	// BatchCount is the number of persisted batch records.
	BatchCount int64
	// PointCount is the number of persisted operational points.
	PointCount int64
	// BlobBytes is the total persisted ValueBlob size, the paper's cost
	// unit ("the expected size, in bytes, of the ValueBlobs that need to
	// be accessed").
	BlobBytes int64
	// FirstTS and LastTS bound the persisted data.
	FirstTS, LastTS int64
	// MaxSpanMs is the widest timestamp span of any single batch; scans
	// starting at t may need to look back this far for an overlapping
	// batch.
	MaxSpanMs int64
}

// BucketFloor floor-aligns ts to the bucket grid of the given width: the
// result is the largest multiple of width that is <= ts, correct for
// negative timestamps (Go's % truncates toward zero, so -1 % 10 == -1,
// not 9). Both TIME_BUCKET evaluation in sqlexec and summary-fold
// classification in tsstore call this; they must agree bit-for-bit or a
// folded aggregate lands in a different bucket than a decoded one.
// width must be positive.
func BucketFloor(ts, width int64) int64 {
	r := ts % width
	if r < 0 {
		r += width
	}
	return ts - r
}

// Merge folds other into s.
func (s *SourceStats) Merge(other SourceStats) {
	if s.PointCount == 0 {
		s.FirstTS, s.LastTS = other.FirstTS, other.LastTS
	} else if other.PointCount > 0 {
		if other.FirstTS < s.FirstTS {
			s.FirstTS = other.FirstTS
		}
		if other.LastTS > s.LastTS {
			s.LastTS = other.LastTS
		}
	}
	s.BatchCount += other.BatchCount
	s.PointCount += other.PointCount
	s.BlobBytes += other.BlobBytes
	if other.MaxSpanMs > s.MaxSpanMs {
		s.MaxSpanMs = other.MaxSpanMs
	}
}
