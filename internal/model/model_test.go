package model

import (
	"math"
	"testing"
)

func TestNullConvention(t *testing.T) {
	if !IsNull(NullValue) {
		t.Fatal("NullValue must be NULL")
	}
	if IsNull(0) || IsNull(math.Inf(1)) {
		t.Fatal("finite and infinite values are not NULL")
	}
}

func TestSchemaTypeColumns(t *testing.T) {
	s := SchemaType{Name: "t", Tags: []TagDef{{Name: "a"}, {Name: "b"}}}
	if s.IDColumn() != "id" || s.TSColumn() != "timestamp" {
		t.Fatalf("defaults: %q %q", s.IDColumn(), s.TSColumn())
	}
	s.IDName, s.TSName = "T_CA_ID", "T_DTS"
	if s.IDColumn() != "T_CA_ID" || s.TSColumn() != "T_DTS" {
		t.Fatalf("overrides: %q %q", s.IDColumn(), s.TSColumn())
	}
	if s.TagIndex("b") != 1 || s.TagIndex("nope") != -1 {
		t.Fatal("TagIndex")
	}
}

func TestTable1StructureMapping(t *testing.T) {
	cases := []struct {
		regular    bool
		intervalMs int64
		ingest     Structure
		historical Structure
	}{
		{true, 20, RTS, RTS},       // regular 50 Hz
		{false, 100, IRTS, IRTS},   // irregular 10 Hz
		{true, 900000, MG, RTS},    // regular 15 min (smart meter)
		{false, 1380000, MG, IRTS}, // irregular 23 min (weather station)
	}
	for i, c := range cases {
		ds := DataSource{Regular: c.regular, IntervalMs: c.intervalMs}
		if got := ds.IngestStructure(); got != c.ingest {
			t.Fatalf("case %d ingest = %v, want %v", i, got, c.ingest)
		}
		if got := ds.HistoricalStructure(); got != c.historical {
			t.Fatalf("case %d historical = %v, want %v", i, got, c.historical)
		}
	}
}

func TestFrequencyBoundary(t *testing.T) {
	// Exactly 1 Hz is "low frequency" per the paper's >1 Hz definition.
	at1Hz := DataSource{Regular: true, IntervalMs: 1000}
	if at1Hz.HighFrequency() {
		t.Fatal("1 Hz must not be high frequency")
	}
	above := DataSource{Regular: true, IntervalMs: 999}
	if !above.HighFrequency() {
		t.Fatal(">1 Hz must be high frequency")
	}
	zero := DataSource{Regular: true, IntervalMs: 0}
	if zero.SampleHz() != 0 || zero.HighFrequency() {
		t.Fatal("unset interval must not classify as high frequency")
	}
}

func TestStructureNames(t *testing.T) {
	if RTS.String() != "RTS" || IRTS.String() != "IRTS" || MG.String() != "MG" {
		t.Fatal("structure names")
	}
	if Structure(9).String() == "" {
		t.Fatal("unknown structure must render something")
	}
}

func TestPointClone(t *testing.T) {
	p := Point{Source: 1, TS: 2, Values: []float64{3, 4}}
	c := p.Clone()
	c.Values[0] = 99
	if p.Values[0] != 3 {
		t.Fatal("Clone shares backing array")
	}
}

func TestSourceStatsMerge(t *testing.T) {
	var s SourceStats
	s.Merge(SourceStats{BatchCount: 1, PointCount: 10, BlobBytes: 100, FirstTS: 50, LastTS: 90, MaxSpanMs: 40})
	if s.FirstTS != 50 || s.LastTS != 90 {
		t.Fatalf("first merge bounds: %+v", s)
	}
	s.Merge(SourceStats{BatchCount: 1, PointCount: 5, BlobBytes: 60, FirstTS: 10, LastTS: 70, MaxSpanMs: 60})
	if s.BatchCount != 2 || s.PointCount != 15 || s.BlobBytes != 160 {
		t.Fatalf("counts: %+v", s)
	}
	if s.FirstTS != 10 || s.LastTS != 90 || s.MaxSpanMs != 60 {
		t.Fatalf("bounds: %+v", s)
	}
	// Merging a zero-point delta must not clobber bounds.
	s.Merge(SourceStats{BlobBytes: -20})
	if s.FirstTS != 10 || s.LastTS != 90 {
		t.Fatalf("zero-point merge moved bounds: %+v", s)
	}
}
