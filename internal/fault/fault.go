// Package fault provides an injectable random-access file wrapper for
// crash- and corruption-simulation tests across the storage stack. A
// fault.File wraps any backing file and can be armed to fail after a
// countdown of writes, reads, or syncs; to tear a write (persist only a
// prefix of the buffer before reporting failure, simulating a power cut
// mid-sector); and to flip bits in already-persisted data (silent media
// corruption). Failures are sticky: once a countdown fires, every later
// operation of that kind keeps failing, which models a dead device or a
// killed process whose file descriptor went away.
//
// The interface is structural so the package depends on nothing:
// *pagestore.MemFile, pagestore.OSFile, and anything else exposing the
// same methods can be wrapped, and the wrapper itself satisfies both
// pagestore.File and walog.File.
package fault

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error every armed fault reports. Tests assert on it
// with errors.Is.
var ErrInjected = errors.New("fault: injected I/O error")

// Unlimited disarms a countdown: the operation never fails.
const Unlimited = -1

// Backing is the minimal random-access file a fault.File wraps. It is
// structurally identical to pagestore.File.
type Backing interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
	// Truncate changes the file length.
	Truncate(size int64) error
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases the file.
	Close() error
}

// Counters is a snapshot of operations the wrapper has passed through
// (failed operations are not counted).
type Counters struct {
	Reads, Writes, Syncs int64
}

// File wraps a Backing with fault injection. The zero countdowns mean
// "fail immediately"; use Unlimited (the Wrap default) to disarm. All
// methods are safe for concurrent use.
type File struct {
	mu         sync.Mutex
	inner      Backing
	writesLeft int // Unlimited = disarmed
	readsLeft  int
	syncsLeft  int
	tornBytes  int // on the failing write, persist this prefix first
	tearArmed  bool
	tearOff    int64 // tear every write whose range covers this offset
	tearKeep   int   // ...persisting only this many leading bytes
	counters   Counters

	latencyNs atomic.Int64 // injected delay before each read/write/sync
}

// Wrap returns a File over inner with every fault disarmed.
func Wrap(inner Backing) *File {
	return &File{
		inner:      inner,
		writesLeft: Unlimited,
		readsLeft:  Unlimited,
		syncsLeft:  Unlimited,
	}
}

// FailWritesAfter arms the write countdown: the next n WriteAt calls
// succeed and every one after that fails. n = Unlimited disarms.
func (f *File) FailWritesAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writesLeft = n
}

// FailReadsAfter arms the read countdown.
func (f *File) FailReadsAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readsLeft = n
}

// FailSyncsAfter arms the sync countdown.
func (f *File) FailSyncsAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncsLeft = n
}

// SetTornWrite makes the failing write persist its first n bytes before
// reporting ErrInjected — a torn write. Zero restores fail-clean behavior
// (nothing of the failing write reaches the file).
func (f *File) SetTornWrite(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornBytes = n
}

// TearWriteAt arms an offset-targeted torn write: every WriteAt whose
// range covers off persists only its first keep bytes and reports
// ErrInjected, while writes elsewhere pass through untouched. It pins
// the "power died while this block was mid-write" scenario to a known
// page even when the caller's flush order is opaque. Disarm with
// ClearTearWriteAt.
func (f *File) TearWriteAt(off int64, keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearArmed, f.tearOff, f.tearKeep = true, off, keep
}

// ClearTearWriteAt disarms the offset-targeted torn write.
func (f *File) ClearTearWriteAt() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearArmed = false
}

// SetLatency injects a fixed delay before every ReadAt, WriteAt, and Sync
// — a hung or degraded device. Zero disarms. The delay applies whether or
// not the operation then fails, so a stalled node stays stalled even when
// its faults are armed.
func (f *File) SetLatency(d time.Duration) {
	f.latencyNs.Store(int64(d))
}

func (f *File) sleep() {
	if ns := f.latencyNs.Load(); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
}

// Counters returns a snapshot of successful operation counts.
func (f *File) Counters() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counters
}

// Inner returns the wrapped backing file, for reopening "after the crash".
func (f *File) Inner() Backing { return f.inner }

// CorruptAt XORs mask into the byte at off in the backing file, bypassing
// the fault countdowns — silent media corruption for checksum tests.
func (f *File) CorruptAt(off int64, mask byte) error {
	var b [1]byte
	if _, err := f.inner.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= mask
	_, err := f.inner.WriteAt(b[:], off)
	return err
}

// WriteAt implements io.WriterAt with the write countdown and torn-write
// behavior.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.sleep()
	f.mu.Lock()
	if f.tearArmed && off <= f.tearOff && f.tearOff < off+int64(len(p)) {
		keep := f.tearKeep
		f.mu.Unlock()
		if keep > len(p) {
			keep = len(p)
		}
		n, _ := f.inner.WriteAt(p[:keep], off)
		return n, ErrInjected
	}
	if f.writesLeft == 0 {
		torn := f.tornBytes
		f.mu.Unlock()
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			n, _ := f.inner.WriteAt(p[:torn], off)
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	if f.writesLeft > 0 {
		f.writesLeft--
	}
	f.counters.Writes++
	f.mu.Unlock()
	return f.inner.WriteAt(p, off)
}

// ReadAt implements io.ReaderAt with the read countdown.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.sleep()
	f.mu.Lock()
	if f.readsLeft == 0 {
		f.mu.Unlock()
		return 0, ErrInjected
	}
	if f.readsLeft > 0 {
		f.readsLeft--
	}
	f.counters.Reads++
	f.mu.Unlock()
	return f.inner.ReadAt(p, off)
}

// Size returns the backing file's length.
func (f *File) Size() (int64, error) { return f.inner.Size() }

// Truncate resizes the backing file.
func (f *File) Truncate(size int64) error { return f.inner.Truncate(size) }

// Sync applies the sync countdown, then syncs the backing file.
func (f *File) Sync() error {
	f.sleep()
	f.mu.Lock()
	if f.syncsLeft == 0 {
		f.mu.Unlock()
		return ErrInjected
	}
	if f.syncsLeft > 0 {
		f.syncsLeft--
	}
	f.counters.Syncs++
	f.mu.Unlock()
	return f.inner.Sync()
}

// Close closes the backing file.
func (f *File) Close() error { return f.inner.Close() }

// Conn wraps a bidirectional stream (a net.Conn, one end of a net.Pipe)
// with fault injection, extending the crash-simulation vocabulary to the
// serving layer: a Conn armed with FailReadsAfter models a client whose
// link died mid-command, and SetTornRead makes the failing read deliver a
// prefix of the available bytes first — a torn read, the stream analogue
// of a torn write. FailWritesAfter and SetTornWrite mirror the same modes
// on the write side (a peer that stops draining, a segment cut mid-send),
// and SetLatency injects a per-operation delay — a hung link. Failures
// are sticky. Close passes through untouched so teardown still works.
type Conn struct {
	mu         sync.Mutex
	inner      io.ReadWriteCloser
	readsLeft  int // Unlimited = disarmed
	tornBytes  int // on the failing read, deliver this prefix first
	writesLeft int // Unlimited = disarmed
	tornWrite  int // on the failing write, send this prefix first
	reads      int64
	writes     int64

	latencyNs atomic.Int64 // injected delay before each read/write
}

// WrapConn returns a Conn over inner with every fault disarmed.
func WrapConn(inner io.ReadWriteCloser) *Conn {
	return &Conn{inner: inner, readsLeft: Unlimited, writesLeft: Unlimited}
}

// FailReadsAfter arms the read countdown: the next n Read calls succeed
// and every one after that fails. n = Unlimited disarms.
func (c *Conn) FailReadsAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readsLeft = n
}

// SetTornRead makes the failing read return up to n bytes of real data
// alongside ErrInjected. Zero restores fail-clean behavior.
func (c *Conn) SetTornRead(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tornBytes = n
}

// FailWritesAfter arms the write countdown: the next n Write calls
// succeed and every one after that fails. n = Unlimited disarms.
func (c *Conn) FailWritesAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writesLeft = n
}

// SetTornWrite makes the failing write deliver up to n bytes of the
// buffer to the peer alongside ErrInjected — a partial write, as when a
// connection is cut mid-segment. Zero restores fail-clean behavior.
func (c *Conn) SetTornWrite(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tornWrite = n
}

// SetLatency injects a fixed delay before every Read and Write — a hung
// or congested link. Zero disarms.
func (c *Conn) SetLatency(d time.Duration) {
	c.latencyNs.Store(int64(d))
}

func (c *Conn) sleep() {
	if ns := c.latencyNs.Load(); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
}

// Reads returns the number of successful Read calls.
func (c *Conn) Reads() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads
}

// Writes returns the number of successful Write calls.
func (c *Conn) Writes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// Read implements io.Reader with the read countdown and torn-read
// behavior.
func (c *Conn) Read(p []byte) (int, error) {
	c.sleep()
	c.mu.Lock()
	if c.readsLeft == 0 {
		torn := c.tornBytes
		c.mu.Unlock()
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			n, err := c.inner.Read(p[:torn])
			if err != nil {
				return n, err
			}
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	if c.readsLeft > 0 {
		c.readsLeft--
	}
	c.reads++
	c.mu.Unlock()
	return c.inner.Read(p)
}

// Write implements io.Writer with the write countdown and torn-write
// behavior.
func (c *Conn) Write(p []byte) (int, error) {
	c.sleep()
	c.mu.Lock()
	if c.writesLeft == 0 {
		torn := c.tornWrite
		c.mu.Unlock()
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			n, err := c.inner.Write(p[:torn])
			if err != nil {
				return n, err
			}
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	if c.writesLeft > 0 {
		c.writesLeft--
	}
	c.writes++
	c.mu.Unlock()
	return c.inner.Write(p)
}

// Close closes the wrapped stream.
func (c *Conn) Close() error { return c.inner.Close() }
