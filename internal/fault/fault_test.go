package fault

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// memBacking is a tiny in-memory Backing for the package's own tests
// (mirrors pagestore.MemFile without importing it).
type memBacking struct {
	mu   sync.Mutex
	data []byte
}

func (m *memBacking) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memBacking) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(m.data)) {
		grown := make([]byte, end)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:], p)
	return len(p), nil
}

func (m *memBacking) Size() (int64, error) { return int64(len(m.data)), nil }
func (m *memBacking) Truncate(size int64) error {
	if size <= int64(len(m.data)) {
		m.data = m.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, m.data)
	m.data = grown
	return nil
}
func (m *memBacking) Sync() error  { return nil }
func (m *memBacking) Close() error { return nil }

func TestWriteCountdownSticky(t *testing.T) {
	f := Wrap(&memBacking{})
	f.FailWritesAfter(2)
	for i := 0; i < 2; i++ {
		if _, err := f.WriteAt([]byte("ok"), int64(i*2)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := f.WriteAt([]byte("no"), 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("write after countdown = %v, want ErrInjected (sticky)", err)
		}
	}
	if c := f.Counters(); c.Writes != 2 {
		t.Fatalf("Writes = %d, want 2", c.Writes)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	inner := &memBacking{}
	f := Wrap(inner)
	if _, err := f.WriteAt([]byte("aaaaaaaa"), 0); err != nil {
		t.Fatal(err)
	}
	f.FailWritesAfter(0)
	f.SetTornWrite(3)
	n, err := f.WriteAt([]byte("bbbbbbbb"), 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if n != 3 {
		t.Fatalf("torn write n = %d, want 3", n)
	}
	got := make([]byte, 8)
	if _, err := inner.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if want := []byte("bbbaaaaa"); !bytes.Equal(got, want) {
		t.Fatalf("file = %q, want %q", got, want)
	}
}

func TestReadAndSyncCountdowns(t *testing.T) {
	f := Wrap(&memBacking{})
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	f.FailReadsAfter(1)
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read = %v, want ErrInjected", err)
	}
	f.FailSyncsAfter(0)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
}

func TestCorruptAtFlipsBit(t *testing.T) {
	inner := &memBacking{}
	f := Wrap(inner)
	if _, err := f.WriteAt([]byte{0b0000_1111}, 5); err != nil {
		t.Fatal(err)
	}
	// CorruptAt bypasses countdowns entirely.
	f.FailWritesAfter(0)
	f.FailReadsAfter(0)
	if err := f.CorruptAt(5, 0b1000_0000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if _, err := inner.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0b1000_1111 {
		t.Fatalf("byte = %08b, want 10001111", got[0])
	}
}

func TestUnlimitedDisarms(t *testing.T) {
	f := Wrap(&memBacking{})
	f.FailWritesAfter(0)
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatal("expected armed fault")
	}
	f.FailWritesAfter(Unlimited)
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("disarmed write failed: %v", err)
	}
}

func TestTearWriteAtTargetsOffset(t *testing.T) {
	m := &memBacking{}
	f := Wrap(m)
	f.TearWriteAt(100, 3)
	if _, err := f.WriteAt([]byte("safe"), 0); err != nil {
		t.Fatalf("write outside target failed: %v", err)
	}
	n, err := f.WriteAt([]byte("ABCDEFGH"), 96)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("covering write err = %v, want ErrInjected", err)
	}
	if n != 3 || string(m.data[96:99]) != "ABC" {
		t.Fatalf("torn prefix = %d bytes %q, want 3 bytes ABC", n, m.data[96:96+n])
	}
	if int64(len(m.data)) != 99 {
		t.Fatalf("file grew to %d, want 99", len(m.data))
	}
	// Sticky until cleared; then the same write passes.
	if _, err := f.WriteAt([]byte("ABCDEFGH"), 96); !errors.Is(err, ErrInjected) {
		t.Fatal("second covering write passed while armed")
	}
	f.ClearTearWriteAt()
	if _, err := f.WriteAt([]byte("ABCDEFGH"), 96); err != nil {
		t.Fatalf("write after disarm failed: %v", err)
	}
}

// pipeConn is a loopback stream for Conn tests: writes land in a buffer
// that reads drain.
type pipeConn struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (p *pipeConn) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.buf.Len() == 0 {
		return 0, io.EOF
	}
	return p.buf.Read(b)
}

func (p *pipeConn) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.Write(b)
}

func (p *pipeConn) Close() error { return nil }

func TestConnWriteCountdownSticky(t *testing.T) {
	inner := &pipeConn{}
	c := WrapConn(inner)
	c.FailWritesAfter(1)
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Write([]byte("no")); !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d after countdown = %v, want ErrInjected (sticky)", i, err)
		}
	}
	if c.Writes() != 1 {
		t.Fatalf("Writes = %d, want 1", c.Writes())
	}
	if got := inner.buf.String(); got != "ok" {
		t.Fatalf("peer received %q, want %q", got, "ok")
	}
	c.FailWritesAfter(Unlimited)
	if _, err := c.Write([]byte("again")); err != nil {
		t.Fatalf("disarmed write failed: %v", err)
	}
}

func TestConnTornWriteDeliversPrefix(t *testing.T) {
	inner := &pipeConn{}
	c := WrapConn(inner)
	c.FailWritesAfter(0)
	c.SetTornWrite(4)
	n, err := c.Write([]byte("ABCDEFGH"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", err)
	}
	if n != 4 || inner.buf.String() != "ABCD" {
		t.Fatalf("peer received %d bytes %q, want 4 bytes ABCD", n, inner.buf.String())
	}
}

func TestConnLatencyDelaysOps(t *testing.T) {
	c := WrapConn(&pipeConn{})
	const d = 30 * time.Millisecond
	c.SetLatency(d)
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*d {
		t.Fatalf("two ops took %v, want >= %v of injected latency", elapsed, 2*d)
	}
	c.SetLatency(0)
	start = time.Now()
	if _, err := c.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > d {
		t.Fatalf("disarmed write took %v, want fast", elapsed)
	}
}

func TestFileLatencyDelaysOps(t *testing.T) {
	f := Wrap(&memBacking{})
	const d = 30 * time.Millisecond
	f.SetLatency(d)
	start := time.Now()
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("write took %v, want >= %v of injected latency", elapsed, d)
	}
	// Latency applies even to failing operations: a stalled node that is
	// also dead still hangs callers for the injected delay.
	f.FailReadsAfter(0)
	start = time.Now()
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatal("expected armed read fault")
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("failing read took %v, want >= %v of injected latency", elapsed, d)
	}
}
