package pagestore

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// Magic bytes identifying a pagestore file (format 2: checksummed pages,
// dual-slot meta).
var magic = [8]byte{'O', 'D', 'H', 'P', 'A', 'G', 'E', '2'}

// Meta page payload layout (page 0):
//
//	[0:8]   magic
//	[8:12]  format version
//	[12:16] number of pages (including meta)
//	[16:20] free list head PageID
//	[20:24] number of named roots
//	[24:]   named roots: {nameLen uint16, name bytes, page uint32}*
//
// On disk every page occupies one DiskPageSize slot: an 8-byte header
// (CRC32-C over aux word + payload + page number, then the aux word)
// followed by the PageSize payload. The meta page is double-written: it
// owns physical slots 0 and 1 and alternates between them with a
// monotonically increasing epoch in the aux word, so a torn meta write
// loses at most the newest epoch, never the store's roots. Data page id
// (>= 1) lives in physical slot id+1.
const (
	metaVersion     = 2
	offNumPages     = 12
	offFreeHead     = 16
	offNumRoots     = 20
	offRoots        = 24
	maxRootNameLen  = 64
	defaultPoolSize = 1024

	// maxPartitions caps the buffer-pool latch partitioning; minPartPages
	// is the smallest per-partition pool worth splitting into (tiny pools
	// collapse to one partition, preserving exact LRU/eviction behavior).
	maxPartitions = 16
	minPartPages  = 64
)

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// most CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by Store operations.
var (
	ErrBadMagic    = errors.New("pagestore: bad magic (not a pagestore file)")
	ErrBadVersion  = errors.New("pagestore: unsupported format version")
	ErrPageRange   = errors.New("pagestore: page id out of range")
	ErrClosed      = errors.New("pagestore: store is closed")
	ErrRootMissing = errors.New("pagestore: named root not found")
	ErrPoolFull    = errors.New("pagestore: buffer pool exhausted (all frames pinned)")
	// ErrCorrupt is the sentinel wrapped by every checksum failure;
	// errors.Is(err, ErrCorrupt) matches any ErrCorruptPage.
	ErrCorrupt = errors.New("pagestore: page corrupt")
)

// ErrCorruptPage reports a page whose on-disk checksum did not match its
// contents (bit rot, a torn write, or a page that was never written).
type ErrCorruptPage struct {
	PageNo PageID
}

func (e *ErrCorruptPage) Error() string {
	return fmt.Sprintf("pagestore: page %d corrupt (checksum mismatch)", e.PageNo)
}

// Unwrap lets errors.Is(err, ErrCorrupt) match.
func (e *ErrCorruptPage) Unwrap() error { return ErrCorrupt }

// Stats counts buffer-pool and I/O activity. The IoT-X metrics layer reads
// these to report I/O throughput and storage size.
type Stats struct {
	Hits         int64 // buffer pool hits
	Misses       int64 // buffer pool misses (page read from file)
	Evictions    int64 // unpinned frames written back / dropped for space
	PageReads    int64 // pages read from the backing file
	PageWrites   int64 // pages written to the backing file
	BytesRead    int64
	BytesWritten int64
	Allocs       int64 // pages allocated
	Frees        int64 // pages freed
}

// HitRate returns the buffer-pool hit fraction in [0, 1] (0 when the pool
// was never touched).
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// add accumulates other into st.
func (st *Stats) add(other Stats) {
	st.Hits += other.Hits
	st.Misses += other.Misses
	st.Evictions += other.Evictions
	st.PageReads += other.PageReads
	st.PageWrites += other.PageWrites
	st.BytesRead += other.BytesRead
	st.BytesWritten += other.BytesWritten
	st.Allocs += other.Allocs
	st.Frees += other.Frees
}

// Options configures a Store.
type Options struct {
	// PoolPages is the buffer pool capacity in pages. Zero means a default
	// of 1024 pages (4 MiB).
	PoolPages int
	// PoolPartitions overrides the buffer pool's latch partition count
	// (rounded to a power of two, capped at 16). Zero picks a default from
	// GOMAXPROCS and the pool size; 1 gives a single global pool latch.
	PoolPartitions int
}

// frame is one buffer-pool slot.
type frame struct {
	id    PageID
	data  [PageSize]byte
	pins  int
	dirty bool
	lru   *list.Element // position in lru list when unpinned; nil while pinned
}

// blockIO is a per-lock-domain I/O scratch: a block buffer plus the stats
// it accounts to. Each pool partition owns one (guarded by the partition
// latch), and the store's meta domain owns one (guarded by metaMu), so
// block reads and writes in different domains never share a buffer.
type blockIO struct {
	iobuf [DiskPageSize]byte
	stats Stats
}

// partition is one latch-partitioned segment of the buffer pool. Pages
// hash to exactly one partition by PageID, so readers and writers of
// pages in different partitions proceed in parallel.
type partition struct {
	mu     sync.Mutex
	cap    int
	frames map[PageID]*frame
	lru    *list.List // of PageID, front = most recently used
	io     blockIO
}

// Store manages fixed-size pages in a File behind a latch-partitioned LRU
// buffer pool. All methods are safe for concurrent use. Page contents
// handed out by Get are owned by the pool; callers must hold the pin while
// reading or writing the data and call MarkDirty before Unpin after
// mutation.
//
// Lock order: metaMu before any partition latch, partitions in index
// order. numPages and closed are atomics so the hot Get path takes only
// its page's partition latch.
type Store struct {
	file   File
	closed atomic.Bool

	numPages atomic.Uint32

	metaMu    sync.Mutex // guards freeHead, metaEpoch, roots, metaIO
	freeHead  PageID
	metaEpoch uint32 // epoch of the newest valid meta slot
	roots     map[string]PageID
	metaIO    blockIO // meta page + alloc/free + verify accounting

	parts    []*partition
	partMask uint32
}

// partitionCount picks the pool's latch partition count: a power of two
// sized from GOMAXPROCS, but never so many that a partition drops below
// minPartPages frames (tiny pools collapse to one partition).
func partitionCount(poolPages, override int) int {
	n := override
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxPartitions {
		n = maxPartitions
	}
	for n > 1 && poolPages/n < minPartPages {
		n /= 2
	}
	// Round down to a power of two so partition selection is a mask.
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// Open initializes a Store on f. An empty file is formatted; an existing
// file has its meta page validated and loaded.
func Open(f File, opts Options) (*Store, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = defaultPoolSize
	}
	nparts := partitionCount(opts.PoolPages, opts.PoolPartitions)
	s := &Store{
		file:     f,
		roots:    make(map[string]PageID),
		parts:    make([]*partition, nparts),
		partMask: uint32(nparts - 1),
	}
	perCap := opts.PoolPages / nparts
	if perCap < 1 {
		perCap = 1
	}
	for i := range s.parts {
		s.parts[i] = &partition{
			cap:    perCap,
			frames: make(map[PageID]*frame, perCap),
			lru:    list.New(),
		}
	}
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("pagestore: size: %w", err)
	}
	if size == 0 {
		if err := s.format(); err != nil {
			return nil, err
		}
		return s, nil
	}
	if err := s.loadMeta(); err != nil {
		return nil, err
	}
	return s, nil
}

// part returns the partition owning page id. The multiplicative hash
// spreads both sequential B-tree pages and strided access patterns.
func (s *Store) part(id PageID) *partition {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return s.parts[uint32(h>>32)&s.partMask]
}

// Partitions returns the buffer pool's latch partition count.
func (s *Store) Partitions() int { return len(s.parts) }

// pageChecksum computes the CRC32-C of a page slot: aux word, payload,
// then the page number, so a valid page replayed at the wrong slot still
// fails verification.
func pageChecksum(aux uint32, payload []byte, pageNo PageID) uint32 {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], aux)
	crc := crc32.Update(0, crcTable, w[:])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(w[:], uint32(pageNo))
	return crc32.Update(crc, crcTable, w[:])
}

// blockFor maps a logical page to its physical slot: the meta page owns
// slots 0 and 1 (double write), data page id lives at slot id+1.
func blockFor(id PageID) int64 { return int64(id) + 1 }

// writeBlock seals payload with its checksum header and writes the slot.
// Caller holds the lock guarding bio.
func (s *Store) writeBlock(bio *blockIO, block int64, pageNo PageID, aux uint32, payload []byte) error {
	binary.LittleEndian.PutUint32(bio.iobuf[0:4], pageChecksum(aux, payload, pageNo))
	binary.LittleEndian.PutUint32(bio.iobuf[4:8], aux)
	copy(bio.iobuf[PageHeaderSize:], payload[:PageSize])
	n, err := s.file.WriteAt(bio.iobuf[:], block*DiskPageSize)
	bio.stats.PageWrites++
	bio.stats.BytesWritten += int64(n)
	if err != nil {
		return fmt.Errorf("pagestore: write page %d: %w", pageNo, err)
	}
	return nil
}

// readBlock reads one slot, verifies its checksum, and copies the payload
// out. A checksum mismatch or a slot that was never written reports
// ErrCorruptPage. Caller holds the lock guarding bio.
func (s *Store) readBlock(bio *blockIO, block int64, pageNo PageID, payload []byte) (aux uint32, err error) {
	n, rerr := s.file.ReadAt(bio.iobuf[:], block*DiskPageSize)
	bio.stats.PageReads++
	bio.stats.BytesRead += int64(n)
	if rerr != nil {
		if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
			// Short read / EOF: the slot does not exist on disk (truncated
			// file). Report it as corruption so callers can quarantine
			// rather than crash; real device errors pass through as-is.
			return 0, &ErrCorruptPage{PageNo: pageNo}
		}
		return 0, fmt.Errorf("pagestore: read page %d: %w", pageNo, rerr)
	}
	want := binary.LittleEndian.Uint32(bio.iobuf[0:4])
	aux = binary.LittleEndian.Uint32(bio.iobuf[4:8])
	if pageChecksum(aux, bio.iobuf[PageHeaderSize:], pageNo) != want {
		return 0, &ErrCorruptPage{PageNo: pageNo}
	}
	copy(payload[:PageSize], bio.iobuf[PageHeaderSize:])
	return aux, nil
}

// buildMeta serializes the meta payload from the store's state.
// Caller holds s.metaMu.
func (s *Store) buildMeta(page []byte) error {
	copy(page[:8], magic[:])
	binary.LittleEndian.PutUint32(page[8:12], metaVersion)
	binary.LittleEndian.PutUint32(page[offNumPages:], s.numPages.Load())
	binary.LittleEndian.PutUint32(page[offFreeHead:], uint32(s.freeHead))
	binary.LittleEndian.PutUint32(page[offNumRoots:], uint32(len(s.roots)))
	off := offRoots
	for name, id := range s.roots {
		need := 2 + len(name) + 4
		if off+need > PageSize {
			return errors.New("pagestore: root directory overflow")
		}
		binary.LittleEndian.PutUint16(page[off:], uint16(len(name)))
		off += 2
		copy(page[off:], name)
		off += len(name)
		binary.LittleEndian.PutUint32(page[off:], uint32(id))
		off += 4
	}
	return nil
}

// format writes a fresh meta page into slot 0.
func (s *Store) format() error {
	s.numPages.Store(1)
	s.freeHead = InvalidPage
	s.metaEpoch = 0
	var page [PageSize]byte
	if err := s.buildMeta(page[:]); err != nil {
		return err
	}
	return s.writeBlock(&s.metaIO, 0, 0, 0, page[:])
}

// loadMeta reads both meta slots and loads the newest valid one. A torn
// write in one slot falls back to the other (older but consistent) epoch.
func (s *Store) loadMeta() error {
	var best [PageSize]byte
	bestEpoch, found := uint32(0), false
	sawMagic := false
	var page [PageSize]byte
	for slot := int64(0); slot < 2; slot++ {
		epoch, err := s.readBlock(&s.metaIO, slot, 0, page[:])
		if err != nil {
			continue // torn, missing, or rotted slot: try the other
		}
		if [8]byte(page[:8]) != magic {
			continue
		}
		sawMagic = true
		if v := binary.LittleEndian.Uint32(page[8:12]); v != metaVersion {
			return fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
		if !found || epoch > bestEpoch {
			best, bestEpoch, found = page, epoch, true
		}
	}
	if !found {
		if sawMagic {
			return &ErrCorruptPage{PageNo: 0}
		}
		return ErrBadMagic
	}
	s.metaEpoch = bestEpoch
	s.numPages.Store(binary.LittleEndian.Uint32(best[offNumPages:]))
	s.freeHead = PageID(binary.LittleEndian.Uint32(best[offFreeHead:]))
	n := int(binary.LittleEndian.Uint32(best[offNumRoots:]))
	off := offRoots
	for i := 0; i < n; i++ {
		if off+2 > PageSize {
			return errors.New("pagestore: corrupt root directory")
		}
		nameLen := int(binary.LittleEndian.Uint16(best[off:]))
		off += 2
		if nameLen > maxRootNameLen || off+nameLen+4 > PageSize {
			return errors.New("pagestore: corrupt root directory")
		}
		name := string(best[off : off+nameLen])
		off += nameLen
		s.roots[name] = PageID(binary.LittleEndian.Uint32(best[off:]))
		off += 4
	}
	return nil
}

// flushMeta persists the meta page (counts, free list head, root
// directory) into the slot the current epoch does NOT occupy, so the
// previous meta stays intact until the new one is fully on disk.
// Caller holds s.metaMu.
func (s *Store) flushMeta() error {
	var page [PageSize]byte
	if err := s.buildMeta(page[:]); err != nil {
		return err
	}
	epoch := s.metaEpoch + 1
	if err := s.writeBlock(&s.metaIO, int64(epoch%2), 0, epoch, page[:]); err != nil {
		return err
	}
	s.metaEpoch = epoch
	return nil
}

// Allocate returns a fresh page, either reusing a freed page or extending
// the file. The page's contents are zeroed. The returned page is pinned;
// call Unpin when done.
func (s *Store) Allocate() (PageID, *Frame, error) {
	if s.closed.Load() {
		return InvalidPage, nil, ErrClosed
	}
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if s.freeHead != InvalidPage {
		// Pop the free list: the first 4 bytes of a free page hold the next
		// free page id.
		id := s.freeHead
		p := s.part(id)
		p.mu.Lock()
		fr, err := p.pin(s, id)
		if err != nil {
			p.mu.Unlock()
			return InvalidPage, nil, err
		}
		s.freeHead = PageID(binary.LittleEndian.Uint32(fr.data[:4]))
		clear(fr.data[:])
		fr.dirty = true
		p.mu.Unlock()
		s.metaIO.stats.Allocs++
		return id, &Frame{s: s, f: fr}, nil
	}
	id := PageID(s.numPages.Load())
	p := s.part(id)
	p.mu.Lock()
	fr, err := p.pinFresh(s, id)
	if err != nil {
		p.mu.Unlock()
		return InvalidPage, nil, err
	}
	s.numPages.Add(1)
	fr.dirty = true
	p.mu.Unlock()
	s.metaIO.stats.Allocs++
	return id, &Frame{s: s, f: fr}, nil
}

// Free returns a page to the free list. The caller must not hold a pin on it.
func (s *Store) Free(id PageID) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if id == InvalidPage || uint32(id) >= s.numPages.Load() {
		return ErrPageRange
	}
	p := s.part(id)
	p.mu.Lock()
	fr, err := p.pin(s, id)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	clear(fr.data[:])
	binary.LittleEndian.PutUint32(fr.data[:4], uint32(s.freeHead))
	fr.dirty = true
	s.freeHead = id
	s.metaIO.stats.Frees++
	p.unpin(fr)
	p.mu.Unlock()
	return nil
}

// Get pins page id into the buffer pool and returns a Frame handle.
func (s *Store) Get(id PageID) (*Frame, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if id == InvalidPage || uint32(id) >= s.numPages.Load() {
		// A reference to a page this epoch never allocated is a dangling
		// pointer — after a crash it means the referencing page was flushed
		// but its target was not, so scans treat it as corruption.
		return nil, fmt.Errorf("%w: %d (have %d): %w", ErrPageRange, id, s.numPages.Load(), ErrCorrupt)
	}
	p := s.part(id)
	p.mu.Lock()
	fr, err := p.pin(s, id)
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &Frame{s: s, f: fr}, nil
}

// pin brings page id into the partition (reading it if absent) and pins
// it. Caller holds p.mu.
func (p *partition) pin(s *Store, id PageID) (*frame, error) {
	if fr, ok := p.frames[id]; ok {
		p.io.stats.Hits++
		if fr.pins == 0 && fr.lru != nil {
			p.lru.Remove(fr.lru)
			fr.lru = nil
		}
		fr.pins++
		return fr, nil
	}
	p.io.stats.Misses++
	fr, err := p.newFrame(s, id)
	if err != nil {
		return nil, err
	}
	if _, err := s.readBlock(&p.io, blockFor(id), id, fr.data[:]); err != nil {
		delete(p.frames, id)
		return nil, err
	}
	fr.pins = 1
	return fr, nil
}

// pinFresh pins a newly allocated page without reading the file.
// Caller holds p.mu.
func (p *partition) pinFresh(s *Store, id PageID) (*frame, error) {
	fr, err := p.newFrame(s, id)
	if err != nil {
		return nil, err
	}
	fr.pins = 1
	return fr, nil
}

// newFrame finds a slot for page id, evicting the least recently used
// unpinned frame if the partition is full. Caller holds p.mu.
func (p *partition) newFrame(s *Store, id PageID) (*frame, error) {
	if len(p.frames) >= p.cap {
		if err := p.evictOne(s); err != nil {
			return nil, err
		}
	}
	fr := &frame{id: id}
	p.frames[id] = fr
	return fr, nil
}

// evictOne writes back and drops the LRU unpinned frame. Caller holds p.mu.
func (p *partition) evictOne(s *Store) error {
	back := p.lru.Back()
	if back == nil {
		return ErrPoolFull
	}
	id := back.Value.(PageID)
	fr := p.frames[id]
	if fr.dirty {
		if err := s.writeBlock(&p.io, blockFor(id), id, 0, fr.data[:]); err != nil {
			return err
		}
		fr.dirty = false
	}
	p.lru.Remove(back)
	delete(p.frames, id)
	p.io.stats.Evictions++
	return nil
}

// unpin releases one pin. Caller holds p.mu.
func (p *partition) unpin(fr *frame) {
	fr.pins--
	if fr.pins == 0 {
		fr.lru = p.lru.PushFront(fr.id)
	}
}

// SetRoot records a named root page in the meta page. Higher layers use
// this to anchor B-trees and heap tables. It runs the full two-phase
// checkpoint, not just a meta write: the new root's content pages may
// still be dirty in the pool, and committing a meta that references a
// page the file does not yet hold would leave a crash-corrupt store.
// Roots are created rarely, so the extra flush is cheap.
func (s *Store) SetRoot(name string, id PageID) error {
	if len(name) == 0 || len(name) > maxRootNameLen {
		return fmt.Errorf("pagestore: invalid root name %q", name)
	}
	if s.closed.Load() {
		return ErrClosed
	}
	s.lockAll()
	defer s.unlockAll()
	s.roots[name] = id
	return s.flushLocked()
}

// Root looks up a named root page.
func (s *Store) Root(name string) (PageID, error) {
	if s.closed.Load() {
		return InvalidPage, ErrClosed
	}
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	id, ok := s.roots[name]
	if !ok {
		return InvalidPage, fmt.Errorf("%w: %q", ErrRootMissing, name)
	}
	return id, nil
}

// Roots returns the names of all registered roots.
func (s *Store) Roots() []string {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	names := make([]string, 0, len(s.roots))
	for name := range s.roots {
		names = append(names, name)
	}
	return names
}

// lockAll acquires the meta lock and every partition latch in fixed
// (index) order — the flush/close path's global quiesce. unlockAll
// releases them in reverse.
func (s *Store) lockAll() {
	s.metaMu.Lock()
	for _, p := range s.parts {
		p.mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for i := len(s.parts) - 1; i >= 0; i-- {
		s.parts[i].mu.Unlock()
	}
	s.metaMu.Unlock()
}

// Flush writes all dirty frames and the meta page to the file and syncs it.
func (s *Store) Flush() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.lockAll()
	defer s.unlockAll()
	return s.flushLocked()
}

// flushLocked runs the two-phase flush protocol. Caller holds the meta
// lock and every partition latch (lockAll), so no new dirty pages can
// slip in between the data sync and the meta write.
func (s *Store) flushLocked() error {
	// Write dirty pages in ascending id order: the I/O is sequential on
	// disk, and a crash mid-flush tears a deterministic prefix of the
	// dirty set rather than a random map-order subset.
	type dirtyPage struct {
		fr *frame
		p  *partition
	}
	var dirty []dirtyPage
	for _, p := range s.parts {
		for _, fr := range p.frames {
			if fr.dirty {
				dirty = append(dirty, dirtyPage{fr: fr, p: p})
			}
		}
	}
	slices.SortFunc(dirty, func(a, b dirtyPage) int {
		return int(int64(a.fr.id) - int64(b.fr.id))
	})
	for _, d := range dirty {
		if err := s.writeBlock(&d.p.io, blockFor(d.fr.id), d.fr.id, 0, d.fr.data[:]); err != nil {
			return err
		}
		d.fr.dirty = false
	}
	// Sync data pages before the meta page points at them: a crash between
	// the two syncs leaves the previous meta epoch valid and every page it
	// references fully on disk.
	if len(dirty) > 0 {
		if err := s.file.Sync(); err != nil {
			return err
		}
	}
	if err := s.flushMeta(); err != nil {
		return err
	}
	return s.file.Sync()
}

// Close flushes and closes the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	if s.closed.Load() {
		return nil
	}
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		return nil
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	s.closed.Store(true)
	return s.file.Close()
}

// NumPages returns the total number of pages (including meta and free pages).
func (s *Store) NumPages() uint32 {
	return s.numPages.Load()
}

// SizeBytes returns the on-disk size of the store in bytes (the meta
// page's second slot included).
func (s *Store) SizeBytes() int64 {
	return (int64(s.NumPages()) + 1) * DiskPageSize
}

// VerifyPages scrubs the on-disk image, verifying every page checksum
// without disturbing the buffer pool. Dirty frames not yet flushed make
// the on-disk copy stale but still checksum-valid, so callers wanting an
// exact picture should Flush first. The meta page (id 0) is reported
// corrupt only when neither of its slots is valid. The scrub runs on its
// own scratch buffer, so concurrent page access keeps flowing.
func (s *Store) VerifyPages() (checked int, corrupt []PageID, err error) {
	if s.closed.Load() {
		return 0, nil, ErrClosed
	}
	scratch := &blockIO{}
	var page [PageSize]byte
	metaOK := false
	for slot := int64(0); slot < 2; slot++ {
		if _, err := s.readBlock(scratch, slot, 0, page[:]); err == nil {
			metaOK = true
			break
		}
	}
	checked++
	if !metaOK {
		corrupt = append(corrupt, 0)
	}
	// Scrub to the physical end of the file, not just this epoch's page
	// count: a crash mid-flush can leave torn pages past the recovered
	// meta's extent, and fsck should surface them.
	last := s.numPages.Load()
	if size, err := s.file.Size(); err == nil {
		if blocks := (size + DiskPageSize - 1) / DiskPageSize; blocks > int64(last)+1 {
			last = uint32(blocks - 1)
		}
	}
	for id := PageID(1); uint32(id) < last; id++ {
		checked++
		if _, err := s.readBlock(scratch, blockFor(id), id, page[:]); err != nil {
			corrupt = append(corrupt, id)
		}
	}
	s.metaMu.Lock()
	s.metaIO.stats.add(scratch.stats)
	s.metaMu.Unlock()
	return checked, corrupt, nil
}

// Stats returns a snapshot of I/O counters aggregated across the meta
// domain and every pool partition.
func (s *Store) Stats() Stats {
	s.metaMu.Lock()
	st := s.metaIO.stats
	s.metaMu.Unlock()
	for _, p := range s.parts {
		p.mu.Lock()
		st.add(p.io.stats)
		p.mu.Unlock()
	}
	return st
}

// PartitionStats returns a per-partition snapshot of pool counters (hits,
// misses, evictions, partition-local I/O). Meta-page and alloc/free
// accounting is not included; Stats aggregates everything.
func (s *Store) PartitionStats() []Stats {
	out := make([]Stats, len(s.parts))
	for i, p := range s.parts {
		p.mu.Lock()
		out[i] = p.io.stats
		p.mu.Unlock()
	}
	return out
}

// Frame is a pinned page handle. Data returns the page contents; the slice
// is valid until Unpin. Frames are not safe for concurrent use; concurrent
// access to the same page must be coordinated by the caller (the B-tree and
// heap layers serialize structurally).
type Frame struct {
	s        *Store
	f        *frame
	released bool
}

// ID returns the page id this frame holds.
func (fr *Frame) ID() PageID { return fr.f.id }

// Data returns the page bytes. Mutations must be followed by MarkDirty.
func (fr *Frame) Data() []byte { return fr.f.data[:] }

// MarkDirty records that the page was modified and must be written back.
func (fr *Frame) MarkDirty() { fr.f.dirty = true }

// Unpin releases the frame. It is idempotent.
func (fr *Frame) Unpin() {
	if fr.released {
		return
	}
	fr.released = true
	p := fr.s.part(fr.f.id)
	p.mu.Lock()
	p.unpin(fr.f)
	p.mu.Unlock()
}
