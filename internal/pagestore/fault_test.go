package pagestore

import (
	"errors"
	"testing"

	"odh/internal/fault"
)

// The store must surface injected I/O faults loudly (never return zeroed
// or stale data), keep its pool consistent across a fault, detect silent
// corruption via page checksums, and survive torn meta writes through the
// dual-slot protocol.

func newFaultStore(t *testing.T, pool int) (*Store, *fault.File) {
	t.Helper()
	ff := fault.Wrap(NewMemFile())
	s, err := Open(ff, Options{PoolPages: pool})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, ff
}

func TestWriteFaultSurfacesOnFlush(t *testing.T) {
	s, ff := newFaultStore(t, 4)
	_, fr, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0xAB
	fr.MarkDirty()
	fr.Unpin()
	ff.FailWritesAfter(0)
	if err := s.Flush(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Flush error = %v, want injected fault", err)
	}
}

func TestWriteFaultSurfacesOnEviction(t *testing.T) {
	s, ff := newFaultStore(t, 2)
	// Fill the pool with dirty pages, then force an eviction.
	for i := 0; i < 2; i++ {
		_, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		fr.Unpin()
	}
	ff.FailWritesAfter(0)
	_, _, err := s.Allocate() // must evict a dirty frame -> write -> fault
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Allocate error = %v, want injected fault", err)
	}
}

func TestReadFaultSurfacesOnGet(t *testing.T) {
	s, ff := newFaultStore(t, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		fr.Unpin()
		ids = append(ids, id)
	}
	// Stop reads: fetching an evicted page must fail loudly, not return
	// zeroed data.
	ff.FailReadsAfter(0)
	if _, err := s.Get(ids[0]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Get error = %v, want injected fault", err)
	}
}

func TestFaultDoesNotCorruptPool(t *testing.T) {
	s, ff := newFaultStore(t, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		fr.Unpin()
		ids = append(ids, id)
	}
	// One failed read must not poison subsequent operations.
	ff.FailReadsAfter(0)
	if _, err := s.Get(ids[0]); err == nil {
		t.Fatal("expected fault")
	}
	ff.FailReadsAfter(fault.Unlimited)
	fr, err := s.Get(ids[0])
	if err != nil {
		t.Fatalf("recovery Get: %v", err)
	}
	if fr.Data()[0] != 1 {
		t.Fatalf("data corrupted after fault: %d", fr.Data()[0])
	}
	fr.Unpin()
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	s, ff := newFaultStore(t, 4)
	id, fr, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(fr.Data(), "precious data")
	fr.MarkDirty()
	fr.Unpin()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit on disk, then force the page out of the pool so
	// the next Get reads from the file.
	if err := ff.CorruptAt(blockFor(id)*DiskPageSize+PageHeaderSize+3, 0x01); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(ff.Inner(), Options{PoolPages: 4})
	if err != nil {
		t.Fatalf("reopen after bit flip: %v", err)
	}
	defer s2.Close()
	_, err = s2.Get(id)
	var cp *ErrCorruptPage
	if !errors.As(err, &cp) || cp.PageNo != id {
		t.Fatalf("Get = %v, want ErrCorruptPage{%d}", err, id)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("errors.Is(err, ErrCorrupt) = false for %v", err)
	}
	checked, corrupt, err := s2.VerifyPages()
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 || len(corrupt) != 1 || corrupt[0] != id {
		t.Fatalf("VerifyPages = (%d, %v), want exactly page %d corrupt", checked, corrupt, id)
	}
}

func TestTornMetaWriteFallsBackToPreviousEpoch(t *testing.T) {
	s, ff := newFaultStore(t, 8)
	id1, fr1, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(fr1.Data(), "epoch one")
	fr1.MarkDirty()
	fr1.Unpin()
	if err := s.SetRoot("anchor", id1); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Next flush: dirty the page again, then tear the flush partway
	// through the meta write (the data page write is allowed through).
	fr1b, err := s.Get(id1)
	if err != nil {
		t.Fatal(err)
	}
	copy(fr1b.Data(), "epoch two")
	fr1b.MarkDirty()
	fr1b.Unpin()
	ff.FailWritesAfter(1) // one data page write, then tear the meta write
	ff.SetTornWrite(100)
	if err := s.Flush(); err == nil {
		t.Fatal("expected torn meta write to surface")
	}
	// "Crash": reopen on the underlying bytes.
	s2, err := Open(ff.Inner(), Options{PoolPages: 8})
	if err != nil {
		t.Fatalf("reopen after torn meta write: %v", err)
	}
	defer s2.Close()
	got, err := s2.Root("anchor")
	if err != nil {
		t.Fatalf("root lost after torn meta write: %v", err)
	}
	if got != id1 {
		t.Fatalf("root = %d, want previous epoch's %d", got, id1)
	}
	fr, err := s2.Get(got)
	if err != nil {
		t.Fatalf("root page unreadable after torn meta write: %v", err)
	}
	defer fr.Unpin()
	if string(fr.Data()[:6]) != "epoch " {
		t.Fatalf("root page lost: %q", fr.Data()[:9])
	}
}

func TestMetaAlternatesSlots(t *testing.T) {
	s, _ := newFaultStore(t, 8)
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.SetRoot("r", PageID(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Both slots must now hold a valid meta page (epochs alternate).
	var page [PageSize]byte
	scratch := &blockIO{}
	for slot := int64(0); slot < 2; slot++ {
		if _, err := s.readBlock(scratch, slot, 0, page[:]); err != nil {
			t.Fatalf("meta slot %d invalid after alternating writes: %v", slot, err)
		}
	}
}

func TestVerifyPagesCleanStore(t *testing.T) {
	s, _ := newFaultStore(t, 8)
	defer s.Close()
	for i := 0; i < 10; i++ {
		_, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i)
		fr.MarkDirty()
		fr.Unpin()
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	checked, corrupt, err := s.VerifyPages()
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 0 {
		t.Fatalf("clean store reports corrupt pages %v", corrupt)
	}
	if checked != 11 { // meta + 10 data pages
		t.Fatalf("checked = %d, want 11", checked)
	}
}
