package pagestore

import (
	"errors"
	"sync"
	"testing"
)

// faultFile wraps a MemFile and starts failing writes (or reads) after a
// countdown, simulating a device error mid-workload.
type faultFile struct {
	inner      *MemFile
	mu         sync.Mutex
	writesLeft int // -1 = unlimited
	readsLeft  int
}

var errInjected = errors.New("injected I/O fault")

func newFaultFile(writesLeft, readsLeft int) *faultFile {
	return &faultFile{inner: NewMemFile(), writesLeft: writesLeft, readsLeft: readsLeft}
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.writesLeft == 0 {
		f.mu.Unlock()
		return 0, errInjected
	}
	if f.writesLeft > 0 {
		f.writesLeft--
	}
	f.mu.Unlock()
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.readsLeft == 0 {
		f.mu.Unlock()
		return 0, errInjected
	}
	if f.readsLeft > 0 {
		f.readsLeft--
	}
	f.mu.Unlock()
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Size() (int64, error)      { return f.inner.Size() }
func (f *faultFile) Truncate(size int64) error { return f.inner.Truncate(size) }
func (f *faultFile) Sync() error               { return f.inner.Sync() }
func (f *faultFile) Close() error              { return f.inner.Close() }

func TestWriteFaultSurfacesOnFlush(t *testing.T) {
	ff := newFaultFile(1, -1) // allow only the initial format write
	s, err := Open(ff, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, fr, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0xAB
	fr.MarkDirty()
	fr.Unpin()
	if err := s.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("Flush error = %v, want injected fault", err)
	}
}

func TestWriteFaultSurfacesOnEviction(t *testing.T) {
	ff := newFaultFile(1, -1)
	s, err := Open(ff, Options{PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the pool with dirty pages, then force an eviction.
	for i := 0; i < 2; i++ {
		_, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		fr.Unpin()
	}
	_, _, err = s.Allocate() // must evict a dirty frame -> write -> fault
	if !errors.Is(err, errInjected) {
		t.Fatalf("Allocate error = %v, want injected fault", err)
	}
}

func TestReadFaultSurfacesOnGet(t *testing.T) {
	ff := newFaultFile(-1, -1)
	s, err := Open(ff, Options{PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		fr.Unpin()
		ids = append(ids, id)
	}
	// Stop reads: fetching an evicted page must fail loudly, not return
	// zeroed data.
	ff.mu.Lock()
	ff.readsLeft = 0
	ff.mu.Unlock()
	if _, err := s.Get(ids[0]); !errors.Is(err, errInjected) {
		t.Fatalf("Get error = %v, want injected fault", err)
	}
}

func TestFaultDoesNotCorruptPool(t *testing.T) {
	ff := newFaultFile(-1, -1)
	s, err := Open(ff, Options{PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		fr.Unpin()
		ids = append(ids, id)
	}
	// One failed read must not poison subsequent operations.
	ff.mu.Lock()
	ff.readsLeft = 0
	ff.mu.Unlock()
	if _, err := s.Get(ids[0]); err == nil {
		t.Fatal("expected fault")
	}
	ff.mu.Lock()
	ff.readsLeft = -1
	ff.mu.Unlock()
	fr, err := s.Get(ids[0])
	if err != nil {
		t.Fatalf("recovery Get: %v", err)
	}
	if fr.Data()[0] != 1 {
		t.Fatalf("data corrupted after fault: %d", fr.Data()[0])
	}
	fr.Unpin()
}
