package pagestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newMemStore(t *testing.T, pool int) *Store {
	t.Helper()
	s, err := Open(NewMemFile(), Options{PoolPages: pool})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFormatAndReopen(t *testing.T) {
	f := NewMemFile()
	s, err := Open(f, Options{})
	if err != nil {
		t.Fatalf("Open empty: %v", err)
	}
	id, fr, err := s.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	copy(fr.Data(), "hello world")
	fr.MarkDirty()
	fr.Unpin()
	if err := s.SetRoot("anchor", id); err != nil {
		t.Fatalf("SetRoot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(f, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, err := s2.Root("anchor")
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if got != id {
		t.Fatalf("root = %d, want %d", got, id)
	}
	fr2, err := s2.Get(got)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer fr2.Unpin()
	if !bytes.HasPrefix(fr2.Data(), []byte("hello world")) {
		t.Fatalf("page contents lost: %q", fr2.Data()[:16])
	}
}

func TestBadMagic(t *testing.T) {
	f := NewMemFile()
	junk := make([]byte, PageSize)
	copy(junk, "NOTAPAGESTORE")
	if _, err := f.WriteAt(junk, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f, Options{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestAllocateFreeReuse(t *testing.T) {
	s := newMemStore(t, 16)
	id1, fr1, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fr1.Unpin()
	id2, fr2, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fr2.Unpin()
	if id1 == id2 {
		t.Fatalf("two live allocations share id %d", id1)
	}
	if err := s.Free(id1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	id3, fr3, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	defer fr3.Unpin()
	if id3 != id1 {
		t.Fatalf("freed page not reused: got %d, want %d", id3, id1)
	}
	for _, b := range fr3.Data() {
		if b != 0 {
			t.Fatal("reused page not zeroed")
		}
	}
}

func TestFreeListSurvivesReopen(t *testing.T) {
	f := NewMemFile()
	s, err := Open(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Unpin()
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := s.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	before := s2.NumPages()
	for i := 0; i < 5; i++ {
		_, fr, err := s2.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Unpin()
	}
	if s2.NumPages() != before {
		t.Fatalf("allocations extended the file instead of reusing the free list: %d -> %d", before, s2.NumPages())
	}
}

func TestEvictionWritesBack(t *testing.T) {
	// Pool of 4 frames, touch 32 pages: evictions must persist content.
	s := newMemStore(t, 4)
	const n = 32
	ids := make([]PageID, n)
	for i := 0; i < n; i++ {
		id, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		fr.Unpin()
		ids[i] = id
	}
	for i, id := range ids {
		fr, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get %d: %v", id, err)
		}
		if fr.Data()[0] != byte(i+1) {
			t.Fatalf("page %d lost across eviction: got %d want %d", id, fr.Data()[0], i+1)
		}
		fr.Unpin()
	}
	st := s.Stats()
	if st.PageWrites == 0 {
		t.Fatal("expected eviction write-back, saw none")
	}
}

func TestPoolFullWhenAllPinned(t *testing.T) {
	s := newMemStore(t, 2)
	_, f1, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Unpin()
	_, f2, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Unpin()
	_, _, err = s.Allocate()
	if !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
}

func TestGetOutOfRange(t *testing.T) {
	s := newMemStore(t, 8)
	if _, err := s.Get(999); !errors.Is(err, ErrPageRange) {
		t.Fatalf("err = %v, want ErrPageRange", err)
	}
	if _, err := s.Get(InvalidPage); !errors.Is(err, ErrPageRange) {
		t.Fatalf("meta page handed out: %v", err)
	}
}

func TestClosedStore(t *testing.T) {
	s := newMemStore(t, 8)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Allocate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Allocate after close: %v", err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestUnpinIdempotent(t *testing.T) {
	s := newMemStore(t, 8)
	_, fr, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fr.Unpin()
	fr.Unpin() // must not panic or double-release
	if _, _, err := s.Allocate(); err != nil {
		t.Fatalf("pool corrupted by double unpin: %v", err)
	}
}

func TestRootNameValidation(t *testing.T) {
	s := newMemStore(t, 8)
	if err := s.SetRoot("", 1); err == nil {
		t.Fatal("empty root name accepted")
	}
	long := make([]byte, maxRootNameLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if err := s.SetRoot(string(long), 1); err == nil {
		t.Fatal("over-long root name accepted")
	}
	if _, err := s.Root("nope"); !errors.Is(err, ErrRootMissing) {
		t.Fatalf("err = %v, want ErrRootMissing", err)
	}
}

func TestManyRoots(t *testing.T) {
	s := newMemStore(t, 8)
	for i := 0; i < 20; i++ {
		name := string(rune('a' + i))
		if err := s.SetRoot(name, PageID(i+1)); err != nil {
			t.Fatalf("SetRoot %q: %v", name, err)
		}
	}
	names := s.Roots()
	if len(names) != 20 {
		t.Fatalf("Roots() = %d names, want 20", len(names))
	}
}

func TestOSFileBacking(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.odh")
	f, err := OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(f, Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	id, fr, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(fr.Data(), "persisted")
	fr.MarkDirty()
	fr.Unpin()
	if err := s.SetRoot("r", id); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size()%DiskPageSize != 0 {
		t.Fatalf("file size %d not page aligned", st.Size())
	}

	f2, err := OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(f2, Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rid, err := s2.Root("r")
	if err != nil {
		t.Fatal(err)
	}
	fr2, err := s2.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	defer fr2.Unpin()
	if !bytes.HasPrefix(fr2.Data(), []byte("persisted")) {
		t.Fatal("data not persisted to OS file")
	}
}

func TestMemFileReadWrite(t *testing.T) {
	if err := quick.Check(func(off uint16, payload []byte) bool {
		m := NewMemFile()
		if _, err := m.WriteAt(payload, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if len(payload) == 0 {
			return true
		}
		if _, err := m.ReadAt(got, int64(off)); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemFileTruncate(t *testing.T) {
	m := NewMemFile()
	if _, err := m.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate(3); err != nil {
		t.Fatal(err)
	}
	sz, _ := m.Size()
	if sz != 3 {
		t.Fatalf("size = %d, want 3", sz)
	}
	if err := m.Truncate(10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := m.ReadAt(buf, 3); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("grown region not zeroed")
		}
	}
	if err := m.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newMemStore(t, 2)
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		fr.Unpin()
		ids = append(ids, id)
	}
	for _, id := range ids {
		fr, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Unpin()
	}
	st := s.Stats()
	if st.Allocs != 6 {
		t.Fatalf("Allocs = %d, want 6", st.Allocs)
	}
	if st.Misses == 0 || st.PageReads == 0 {
		t.Fatalf("expected misses/reads after eviction churn: %+v", st)
	}
	if st.BytesWritten == 0 || st.BytesWritten%DiskPageSize != 0 {
		t.Fatalf("BytesWritten = %d, want positive page multiple", st.BytesWritten)
	}
}

func TestConcurrentGets(t *testing.T) {
	s := newMemStore(t, 64)
	var ids []PageID
	for i := 0; i < 16; i++ {
		id, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i)
		fr.MarkDirty()
		fr.Unpin()
		ids = append(ids, id)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for round := 0; round < 200; round++ {
				for i, id := range ids {
					fr, err := s.Get(id)
					if err != nil {
						done <- err
						return
					}
					if fr.Data()[0] != byte(i) {
						fr.Unpin()
						done <- errors.New("content race")
						return
					}
					fr.Unpin()
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemFileShrinkRegrowZeroed(t *testing.T) {
	m := NewMemFile()
	m.WriteAt([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 0)
	m.Truncate(2)
	// Regrow by writing past the old end: the gap must read as zeros,
	// not the pre-truncate bytes.
	m.WriteAt([]byte{9}, 7)
	buf := make([]byte, 8)
	m.ReadAt(buf, 0)
	want := []byte{1, 2, 0, 0, 0, 0, 0, 9}
	if !bytes.Equal(buf, want) {
		t.Fatalf("regrown file = %v, want %v", buf, want)
	}
}

func TestMemFileAppendGrowth(t *testing.T) {
	// Page-by-page extension must stay fast (amortized growth); this is a
	// smoke test that a large append-only workload completes promptly.
	m := NewMemFile()
	page := make([]byte, PageSize)
	for i := 0; i < 8192; i++ { // 32 MiB of appends
		if _, err := m.WriteAt(page, int64(i)*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	sz, _ := m.Size()
	if sz != 8192*PageSize {
		t.Fatalf("size = %d", sz)
	}
}
