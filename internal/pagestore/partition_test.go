package pagestore

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// TestPartitionCountPolicy pins the partition sizing rules: tiny pools
// collapse to one partition (preserving exact LRU/eviction semantics the
// legacy tests rely on), large pools split, and counts are powers of two.
func TestPartitionCountPolicy(t *testing.T) {
	cases := []struct {
		pool, override, want int
	}{
		{8, 0, 1},         // tiny pool: never split
		{64, 0, 1},        // one partition's worth of frames
		{1024, 1, 1},      // explicit single-latch override
		{1024, 4, 4},      // explicit override honored
		{1024, 3, 2},      // rounded down to a power of two
		{1 << 20, 64, 16}, // capped at maxPartitions
	}
	for _, c := range cases {
		if got := partitionCount(c.pool, c.override); got != c.want {
			t.Errorf("partitionCount(%d, %d) = %d, want %d", c.pool, c.override, got, c.want)
		}
	}
}

// TestConcurrentGetAcrossPartitions exercises parallel readers and
// writers over a partitioned pool under -race: every page keeps its own
// contents, and aggregated stats balance.
func TestConcurrentGetAcrossPartitions(t *testing.T) {
	s, err := Open(NewMemFile(), Options{PoolPages: 512, PoolPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Partitions() != 8 {
		t.Fatalf("Partitions() = %d, want 8", s.Partitions())
	}
	const nPages = 256
	ids := make([]PageID, nPages)
	for i := range ids {
		id, fr, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(fr.Data(), uint32(id)^0xABCD1234)
		fr.MarkDirty()
		fr.Unpin()
		ids[i] = id
	}
	const workers, rounds = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := ids[(w*rounds+i*7)%nPages]
				fr, err := s.Get(id)
				if err != nil {
					t.Errorf("get %d: %v", id, err)
					return
				}
				if got := binary.LittleEndian.Uint32(fr.Data()); got != uint32(id)^0xABCD1234 {
					t.Errorf("page %d holds %#x", id, got)
				}
				fr.Unpin()
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits+st.Misses < workers*rounds {
		t.Fatalf("hits+misses = %d, want >= %d", st.Hits+st.Misses, workers*rounds)
	}
	if hr := st.HitRate(); hr <= 0 || hr > 1 {
		t.Fatalf("HitRate() = %v out of range", hr)
	}
	var perPart Stats
	for _, ps := range s.PartitionStats() {
		perPart.add(ps)
	}
	if perPart.Hits != st.Hits || perPart.Misses != st.Misses {
		t.Fatalf("partition stats (%d/%d) disagree with aggregate (%d/%d)",
			perPart.Hits, perPart.Misses, st.Hits, st.Misses)
	}
}

// TestConcurrentAllocateAndFlush interleaves allocation, mutation, and
// full flushes, then verifies the on-disk image end to end.
func TestConcurrentAllocateAndFlush(t *testing.T) {
	s, err := Open(NewMemFile(), Options{PoolPages: 256, PoolPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const workers, perWorker = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id, fr, err := s.Allocate()
				if err != nil {
					t.Error(err)
					return
				}
				copy(fr.Data(), fmt.Sprintf("w%d-i%d-p%d", w, i, id))
				fr.MarkDirty()
				fr.Unpin()
				if i%10 == 0 {
					if err := s.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	checked, corrupt, err := s.VerifyPages()
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 0 {
		t.Fatalf("corrupt pages after concurrent churn: %v", corrupt)
	}
	if want := workers*perWorker + 1; checked != want {
		t.Fatalf("checked %d pages, want %d", checked, want)
	}
}

// TestHitRateZeroPool covers the divide-by-zero guard.
func TestHitRateZeroPool(t *testing.T) {
	if hr := (Stats{}).HitRate(); hr != 0 {
		t.Fatalf("HitRate on empty stats = %v, want 0", hr)
	}
}
