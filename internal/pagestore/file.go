// Package pagestore implements a page-oriented storage layer with a buffer
// pool, the substrate on which both the ODH batch stores and the relational
// baseline engine are built. It plays the role that the Informix page/buffer
// manager plays in the paper: fixed-size pages addressed by PageID, cached in
// an LRU buffer pool, with a persistent free list and a small directory of
// named root pages so higher layers (B-trees, heap tables) can find their
// anchors after reopen.
package pagestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// DiskPageSize is the physical size of one page slot on disk: an 8-byte
// integrity header followed by the page payload.
const DiskPageSize = 4096

// PageHeaderSize is the per-page on-disk header: a CRC32-C checksum over
// the payload plus the page number (so a page written to the wrong offset
// is detected too), and a 4-byte auxiliary word (the meta page's epoch;
// zero for data pages).
const PageHeaderSize = 8

// PageSize is the usable payload size in bytes of every page managed by a
// Store — what Frame.Data exposes to higher layers.
const PageSize = DiskPageSize - PageHeaderSize

// PageID identifies a page within a Store. Page 0 is the store's meta page
// and is never handed out by Allocate.
type PageID uint32

// InvalidPage is the zero PageID; it never refers to an allocatable page.
const InvalidPage PageID = 0

// File is the random-access backing storage a Store runs on. *os.File
// satisfies it via OSFile; MemFile provides an in-memory implementation for
// tests and benchmarks that must not touch disk.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
	// Truncate changes the file length.
	Truncate(size int64) error
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases the file.
	Close() error
}

// OSFile adapts *os.File to the File interface.
type OSFile struct {
	*os.File
}

// Size returns the length of the underlying file.
func (f OSFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// OpenOSFile opens (creating if necessary) a file on disk for use as store
// backing.
func OpenOSFile(path string) (OSFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return OSFile{}, fmt.Errorf("pagestore: open %s: %w", path, err)
	}
	return OSFile{f}, nil
}

// MemFile is an in-memory File. The zero value is an empty file ready to use.
// It is safe for concurrent use.
type MemFile struct {
	mu   sync.RWMutex
	data []byte
}

// NewMemFile returns an empty in-memory file.
func NewMemFile() *MemFile { return &MemFile{} }

// ReadAt implements io.ReaderAt.
func (m *MemFile) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the file as needed. Growth
// doubles the backing capacity so steady page-by-page extension stays
// amortized O(1) instead of copying the whole file per append.
func (m *MemFile) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pagestore: negative offset")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(m.data)) {
		if end > int64(cap(m.data)) {
			newCap := 2 * cap(m.data)
			if int64(newCap) < end {
				newCap = int(end)
			}
			grown := make([]byte, end, newCap)
			copy(grown, m.data)
			m.data = grown
		} else {
			// Reslicing within capacity can expose bytes left behind by a
			// Truncate shrink; a file must read as zeros there.
			old := len(m.data)
			m.data = m.data[:end]
			clear(m.data[old:])
		}
	}
	copy(m.data[off:], p)
	return len(p), nil
}

// Size returns the current file length.
func (m *MemFile) Size() (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.data)), nil
}

// Truncate resizes the file.
func (m *MemFile) Truncate(size int64) error {
	if size < 0 {
		return errors.New("pagestore: negative size")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if size <= int64(len(m.data)) {
		m.data = m.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, m.data)
	m.data = grown
	return nil
}

// Sync is a no-op for memory files.
func (m *MemFile) Sync() error { return nil }

// Close is a no-op for memory files.
func (m *MemFile) Close() error { return nil }
