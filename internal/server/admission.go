package server

// Admission control bounds the memory held by ingest frames that have
// been read off the wire but not yet applied. Each BATCH frame reserves
// its payload size against two budgets — the connection's and the
// server's — before the payload is read; a frame that cannot reserve is
// discarded (the length prefix keeps the stream in sync) and answered
// with "ERR busy" in command order, so a loaded server sheds work instead
// of growing its heap. The reservation is released after the frame is
// applied (or dropped).

// reserve attempts to admit n payload bytes for sc. Both budgets must
// admit; a partial reservation is rolled back.
func (s *Server) reserve(sc *serverConn, n int64) bool {
	if sc.queued.Add(n) > s.connBudget {
		sc.queued.Add(-n)
		return false
	}
	if s.queuedBytes.Add(n) > s.globalBudget {
		s.queuedBytes.Add(-n)
		sc.queued.Add(-n)
		return false
	}
	return true
}

// release returns n reserved bytes to both budgets.
func (s *Server) release(sc *serverConn, n int64) {
	if n <= 0 {
		return
	}
	s.queuedBytes.Add(-n)
	sc.queued.Add(-n)
}

// shed records one rejected frame of n payload bytes.
func (s *Server) shed(n int64) {
	s.batchesShed.Add(1)
	s.shedBytes.Add(n)
}
