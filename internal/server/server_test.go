package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"odh"
)

// startServer spins up a historian with the quickstart schema and a
// server on an ephemeral port.
func startServer(t *testing.T) (addr string) {
	t.Helper()
	h, err := odh.Open("", odh.Options{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := h.CreateSchema(odh.SchemaType{
		Name: "environ",
		Tags: []odh.TagDef{{Name: "temperature"}, {Name: "wind"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CreateVirtualTable("environ_data_v", "environ"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RegisterSource(odh.DataSource{ID: 1, SchemaID: schema.ID, Regular: true, IntervalMs: 1000}); err != nil {
		t.Fatal(err)
	}
	srv := New(h)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return a.String()
}

// client is a line-oriented test client.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) send(t *testing.T, line string) {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
}

func (c *client) read(t *testing.T) string {
	t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(line, "\n")
}

func TestPingWriteFlushQuery(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)

	c.send(t, "PING")
	if got := c.read(t); got != "PONG" {
		t.Fatalf("PING -> %q", got)
	}

	for i := 0; i < 10; i++ {
		c.send(t, fmt.Sprintf("WRITE 1 %d %g %g", 1000+i*1000, 20.0+float64(i), 3.5))
		if got := c.read(t); got != "OK" {
			t.Fatalf("WRITE -> %q", got)
		}
	}
	c.send(t, "FLUSH")
	if got := c.read(t); got != "OK" {
		t.Fatalf("FLUSH -> %q", got)
	}

	c.send(t, "SQL SELECT COUNT(*), MAX(temperature) FROM environ_data_v WHERE id = 1")
	header := c.read(t)
	if !strings.Contains(header, "COUNT") {
		t.Fatalf("header = %q", header)
	}
	row := c.read(t)
	if !strings.HasPrefix(row, "10\t29") {
		t.Fatalf("row = %q", row)
	}
	if got := c.read(t); got != "OK 1" {
		t.Fatalf("trailer = %q", got)
	}
}

func TestWriteNullValues(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.send(t, "WRITE 1 5000 null 7.5")
	if got := c.read(t); got != "OK" {
		t.Fatalf("WRITE null -> %q", got)
	}
	c.send(t, "FLUSH")
	c.read(t)
	c.send(t, "SQL SELECT temperature, wind FROM environ_data_v WHERE id = 1")
	c.read(t) // header
	row := c.read(t)
	if row != "NULL\t7.5" {
		t.Fatalf("row = %q", row)
	}
}

func TestProtocolErrors(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	cases := []string{
		"WRITE",                  // missing args
		"WRITE x 1 2",            // bad source
		"WRITE 1 y 2",            // bad ts
		"WRITE 1 1 z",            // bad value
		"WRITE 999 1 2 3",        // unknown source
		"SQL SELECT * FROM nope", // bad table
		"BOGUS",                  // unknown command
	}
	for _, line := range cases {
		c.send(t, line)
		if got := c.read(t); !strings.HasPrefix(got, "ERR") {
			t.Fatalf("%q -> %q, want ERR", line, got)
		}
	}
	// The connection survives errors.
	c.send(t, "PING")
	if got := c.read(t); got != "PONG" {
		t.Fatalf("PING after errors -> %q", got)
	}
}

func TestQuit(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.send(t, "QUIT")
	if got := c.read(t); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after QUIT")
	}
}

func TestExplainOverWire(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.send(t, "SQL EXPLAIN SELECT * FROM environ_data_v WHERE id = 1")
	sawPlan := false
	for {
		line := c.read(t)
		if strings.HasPrefix(line, "OK") {
			break
		}
		if strings.Contains(line, "VirtualHistoricalScan") {
			sawPlan = true
		}
	}
	if !sawPlan {
		t.Fatal("no plan lines returned")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startServer(t)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < 50; i++ {
				ts := 100_000*g + i*1000
				fmt.Fprintf(conn, "WRITE 1 %d 1 2\n", ts)
				if line, err := r.ReadString('\n'); err != nil || strings.TrimSpace(line) != "OK" {
					done <- fmt.Errorf("client %d: %q %v", g, line, err)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
