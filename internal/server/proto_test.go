package server

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"

	"odh"
)

func TestBatchFrameRoundtrip(t *testing.T) {
	points := []odh.Point{
		{Source: 1, TS: 1000, Values: []float64{21.5, 3.25}},
		{Source: 7, TS: 2000, Values: []float64{odh.NullValue}},
		{Source: -3, TS: -5, Values: nil},
	}
	payload, err := EncodeBatchFrame(points)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(points) {
		t.Fatalf("decoded %d points, want %d", len(got), len(points))
	}
	for i := range points {
		if got[i].Source != points[i].Source || got[i].TS != points[i].TS {
			t.Fatalf("point %d = %+v, want %+v", i, got[i], points[i])
		}
		for j := range points[i].Values {
			w, g := points[i].Values[j], got[i].Values[j]
			if odh.IsNull(w) != odh.IsNull(g) || (!odh.IsNull(w) && w != g) {
				t.Fatalf("point %d value %d = %v, want %v", i, j, g, w)
			}
		}
	}
}

func TestBatchFrameRejectsCorruption(t *testing.T) {
	payload, err := EncodeBatchFrame([]odh.Point{{Source: 1, TS: 1, Values: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(p []byte) []byte
		want   string
	}{
		{"flipped bit", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			q[len(q)-1] ^= 0x40
			return q
		}, "crc mismatch"},
		{"truncated payload", func(p []byte) []byte { return p[:len(p)-4] }, "crc mismatch"},
		{"short header", func(p []byte) []byte { return p[:6] }, "shorter than"},
		{"trailing garbage", func(p []byte) []byte {
			q := append(append([]byte(nil), p...), 0xAB, 0xCD)
			binary.LittleEndian.PutUint32(q[0:4], crc32.Checksum(q[4:], castagnoli))
			return q
		}, "trailing bytes"},
		{"count past end", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			binary.LittleEndian.PutUint32(q[4:8], 99)
			binary.LittleEndian.PutUint32(q[0:4], crc32.Checksum(q[4:], castagnoli))
			return q
		}, "cannot fit"},
		{"count truncated mid-values", func(p []byte) []byte {
			// Two declared points where the payload holds one wide point:
			// the count passes the fit bound but the decode runs out.
			q := mustEncode(t, []odh.Point{{Source: 1, TS: 1, Values: []float64{1, 2, 3}}})
			binary.LittleEndian.PutUint32(q[4:8], 2)
			binary.LittleEndian.PutUint32(q[0:4], crc32.Checksum(q[4:], castagnoli))
			return q
		}, "truncated at point"},
	}
	for _, tc := range cases {
		if _, err := DecodeBatchFrame(tc.mutate(payload)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestBatchFrameHugeCountRejected: a valid-CRC 8-byte frame declaring
// 2^32-1 points must fail the fit check before any allocation is sized
// from the attacker-controlled count (a ~170 GB make() would OOM the
// server).
func TestBatchFrameHugeCountRejected(t *testing.T) {
	frame := make([]byte, batchHeaderBytes)
	binary.LittleEndian.PutUint32(frame[4:8], math.MaxUint32)
	binary.LittleEndian.PutUint32(frame[0:4], crc32.Checksum(frame[4:], castagnoli))
	if _, err := DecodeBatchFrame(frame); err == nil || !strings.Contains(err.Error(), "cannot fit") {
		t.Fatalf("err = %v, want cannot-fit rejection", err)
	}
}

// TestBatchAbsurdLengthClosesConn: a declared payload length no
// protocol-legal frame could have is a fatal protocol error; the server
// must close the session rather than block discarding exabytes to keep
// the stream in sync.
func TestBatchAbsurdLengthClosesConn(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.send(t, "HELLO 2")
	if got := c.read(t); got != "HELLO 2" {
		t.Fatalf("HELLO -> %q", got)
	}
	c.send(t, "BATCH 9223372036854775807")
	if got := c.read(t); !strings.HasPrefix(got, "ERR connection:") {
		t.Fatalf("absurd BATCH length -> %q, want ERR connection", got)
	}
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after absurd BATCH length")
	}
}

func TestBatchFrameRejectsNonFinite(t *testing.T) {
	if _, err := EncodeBatchFrame([]odh.Point{{Source: 1, TS: 1, Values: []float64{math.Inf(1)}}}); err == nil {
		t.Fatal("encode accepted +Inf")
	}
	// A hostile client can still put Inf on the wire; decode must catch it.
	payload, err := EncodeBatchFrame([]odh.Point{{Source: 1, TS: 1, Values: []float64{1.0}}})
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(payload[batchHeaderBytes+pointHeaderBytes:], math.Float64bits(math.Inf(-1)))
	binary.LittleEndian.PutUint32(payload[0:4], crc32.Checksum(payload[4:], castagnoli))
	if _, err := DecodeBatchFrame(payload); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("decode of Inf payload: err = %v, want non-finite rejection", err)
	}
	// NaN is the NULL encoding and must survive.
	pts, err := DecodeBatchFrame(mustEncode(t, []odh.Point{{Source: 1, TS: 1, Values: []float64{odh.NullValue}}}))
	if err != nil {
		t.Fatal(err)
	}
	if !odh.IsNull(pts[0].Values[0]) {
		t.Fatal("NaN did not decode as NULL")
	}
}

func mustEncode(t *testing.T, points []odh.Point) []byte {
	t.Helper()
	p, err := EncodeBatchFrame(points)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWriteBatchFrameWire(t *testing.T) {
	var buf bytes.Buffer
	points := []odh.Point{{Source: 4, TS: 9, Values: []float64{1, 2}}}
	if err := WriteBatchFrame(&buf, points); err != nil {
		t.Fatal(err)
	}
	line, err := buf.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "BATCH ") {
		t.Fatalf("line = %q", line)
	}
	got, err := DecodeBatchFrame(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, points) {
		t.Fatalf("roundtrip = %+v, want %+v", got, points)
	}
}

func TestHelloNegotiation(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	cases := []struct{ send, want string }{
		{"HELLO 1", "HELLO 1"},
		{"HELLO 2", "HELLO 2"},
		{"HELLO 9", "HELLO 2"}, // server caps at its max
	}
	for _, tc := range cases {
		c.send(t, tc.send)
		if got := c.read(t); got != tc.want {
			t.Fatalf("%q -> %q, want %q", tc.send, got, tc.want)
		}
	}
	c.send(t, "HELLO x")
	if got := c.read(t); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("HELLO x -> %q, want ERR", got)
	}
}

func TestBatchRequiresHello(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	// BATCH before HELLO 2: the payload must be consumed so the stream
	// stays in sync, and the reply must say what is missing.
	junk := make([]byte, 34)
	if _, err := c.conn.Write(append([]byte("BATCH 34\n"), junk...)); err != nil {
		t.Fatal(err)
	}
	if got := c.read(t); !strings.Contains(got, "HELLO 2") {
		t.Fatalf("BATCH without HELLO -> %q", got)
	}
	c.send(t, "PING")
	if got := c.read(t); got != "PONG" {
		t.Fatalf("stream desynchronized after rejected frame: %q", got)
	}
}

func TestBatchIngestOverWire(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.send(t, "HELLO 2")
	if got := c.read(t); got != "HELLO 2" {
		t.Fatalf("HELLO -> %q", got)
	}
	var points []odh.Point
	for i := 0; i < 20; i++ {
		points = append(points, odh.Point{Source: 1, TS: int64(1000 + i*1000), Values: []float64{20 + float64(i), 1.5}})
	}
	if err := WriteBatchFrame(c.conn, points); err != nil {
		t.Fatal(err)
	}
	if got := c.read(t); got != "OK 20" {
		t.Fatalf("BATCH -> %q", got)
	}
	c.send(t, "FLUSH")
	if got := c.read(t); got != "OK" {
		t.Fatalf("FLUSH -> %q", got)
	}
	c.send(t, "SQL SELECT COUNT(*), MAX(temperature) FROM environ_data_v WHERE id = 1")
	c.read(t) // header
	if row := c.read(t); !strings.HasPrefix(row, "20\t39") {
		t.Fatalf("row = %q", row)
	}
	c.read(t) // trailer
}

func TestPipelinedCommandsOneSegment(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	// Several commands in one TCP segment, including two back-to-back
	// binary frames; replies must come back one per command, in order.
	var seg bytes.Buffer
	seg.WriteString("HELLO 2\nPING\n")
	mustWriteFrame(t, &seg, []odh.Point{{Source: 1, TS: 1000, Values: []float64{1, 2}}})
	mustWriteFrame(t, &seg, []odh.Point{{Source: 1, TS: 2000, Values: []float64{3, 4}}})
	seg.WriteString("FLUSH\nQUIT\n")
	if _, err := c.conn.Write(seg.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"HELLO 2", "PONG", "OK 1", "OK 1", "OK", "BYE"} {
		if got := c.read(t); got != want {
			t.Fatalf("reply %d = %q, want %q", i, got, want)
		}
	}
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after pipelined QUIT")
	}
}

func mustWriteFrame(t *testing.T, w *bytes.Buffer, points []odh.Point) {
	t.Helper()
	if err := WriteBatchFrame(w, points); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRejectsNonFinite(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	cases := []struct {
		line string
		ok   bool
	}{
		{"WRITE 1 1000 nan", false},
		{"WRITE 1 1000 NaN 2.0", false},
		{"WRITE 1 1000 inf", false},
		{"WRITE 1 1000 -inf", false},
		{"WRITE 1 1000 +Infinity", false},
		{"WRITE 1 1000 2 Infinity", false},
		{"WRITE 1 1000 null 2.0", true}, // NULL has its own spelling
		{"WRITE 1 2000 21.5 3.5", true},
	}
	for _, tc := range cases {
		c.send(t, tc.line)
		got := c.read(t)
		if tc.ok && got != "OK" {
			t.Errorf("%q -> %q, want OK", tc.line, got)
		}
		if !tc.ok && !strings.HasPrefix(got, "ERR") {
			t.Errorf("%q -> %q, want ERR", tc.line, got)
		}
	}
}

func TestStatsCommand(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	c.send(t, "PING")
	c.read(t)
	c.send(t, "STATS")
	seen := map[string]bool{}
	for {
		line := c.read(t)
		if line == "OK" {
			break
		}
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed stats line %q", line)
		}
		seen[name] = true
	}
	for _, want := range []string{"conns_accepted", "conns_active", "points_ingested", "queued_bytes", "queries_timed_out", "forced_closes"} {
		if !seen[want] {
			t.Errorf("STATS missing %q (got %v)", want, seen)
		}
	}
}
