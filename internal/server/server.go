// Package server implements the historian's network endpoint: the role
// of the paper's data servers in Figure 2, accepting operational writes
// and SQL over a minimal TCP line protocol.
//
//	WRITE <source> <ts-ms> <v1> [v2 ...]   -> "OK" | "ERR <msg>"
//	SQL <statement>                        -> header, rows, "OK <n>" | "ERR <msg>"
//	FLUSH                                  -> "OK"
//	PING                                   -> "PONG"
//	QUIT                                   -> "BYE" and closes the connection
//
// NULL tag values are spelled "null" in WRITE. Responses to SQL are
// tab-separated; EXPLAIN output is returned verbatim followed by "OK 0".
package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"odh"
)

// Options tunes server behavior. The zero value keeps the defaults.
type Options struct {
	// IdleTimeout, when > 0, disconnects a connection that sends no
	// complete line for this long (applied as a per-read deadline on
	// connections that support deadlines; others are unaffected).
	IdleTimeout time.Duration
	// OnError, when non-nil, is invoked with every connection-level
	// failure the protocol loop hits: scanner errors (oversized lines,
	// read failures) and idle-timeout disconnects. Command errors are
	// reported to the client as ERR replies, not here.
	OnError func(err error)
}

// Server accepts connections and serves the protocol over a historian.
type Server struct {
	h    *odh.Historian
	opts Options
	ln   net.Listener
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// New wraps a historian with default options.
func New(h *odh.Historian) *Server { return NewWith(h, Options{}) }

// NewWith wraps a historian with explicit options.
func NewWith(h *odh.Historian, opts Options) *Server { return &Server{h: h, opts: opts} }

// deadlineConn is the subset of net.Conn the idle timeout needs;
// net.Pipe ends satisfy it too.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

// reportError invokes the error hook, if any.
func (s *Server) reportError(err error) {
	if s.opts.OnError != nil && err != nil {
		s.opts.OnError(err)
	}
}

// Listen starts accepting on addr and returns the bound address (useful
// with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish
// their current command loop (connections end when clients close or send
// QUIT).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// ServeConn runs the protocol on one connection until EOF, QUIT, a read
// failure, or an idle timeout. Read failures (an oversized line, a torn
// connection, an expired idle deadline) are answered with a final ERR
// line so the client sees why the session ended, and handed to the
// OnError hook; the old behavior was to drop the connection silently.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	defer conn.Close()
	w := s.h.Writer()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := bufio.NewWriter(conn)
	dc, hasDeadline := conn.(deadlineConn)
	for {
		if s.opts.IdleTimeout > 0 && hasDeadline {
			_ = dc.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				s.reportError(err)
				fmt.Fprintf(out, "ERR connection: %v\n", err)
				out.Flush()
			}
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "PING":
			fmt.Fprintln(out, "PONG")
		case "FLUSH":
			if err := w.Flush(); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case "WRITE":
			if err := s.handleWrite(w, rest); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case "SQL":
			s.handleSQL(out, rest)
		case "QUIT":
			fmt.Fprintln(out, "BYE")
			out.Flush()
			return
		default:
			fmt.Fprintf(out, "ERR unknown command %q\n", cmd)
		}
		out.Flush()
	}
}

func (s *Server) handleWrite(w *odh.Writer, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return fmt.Errorf("WRITE needs source, ts, and at least one value")
	}
	source, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad source: %w", err)
	}
	ts, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad timestamp: %w", err)
	}
	values := make([]float64, len(fields)-2)
	for i, f := range fields[2:] {
		if strings.EqualFold(f, "null") {
			values[i] = odh.NullValue
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", f, err)
		}
		values[i] = v
	}
	return w.WritePoint(source, ts, values...)
}

func (s *Server) handleSQL(out *bufio.Writer, sql string) {
	res, err := s.h.Query(sql)
	if err != nil {
		fmt.Fprintf(out, "ERR %v\n", err)
		return
	}
	if res.PlanText != "" {
		for _, line := range strings.Split(strings.TrimRight(res.PlanText, "\n"), "\n") {
			fmt.Fprintln(out, line)
		}
		fmt.Fprintln(out, "OK 0")
		return
	}
	if res.Columns == nil {
		fmt.Fprintf(out, "OK %d\n", res.RowsAffected)
		return
	}
	fmt.Fprintln(out, strings.Join(res.Columns, "\t"))
	n := 0
	for {
		row, ok, err := res.Next()
		if err != nil {
			fmt.Fprintf(out, "ERR %v\n", err)
			return
		}
		if !ok {
			break
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(cells, "\t"))
		n++
	}
	fmt.Fprintf(out, "OK %d\n", n)
}
