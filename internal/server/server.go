// Package server implements the historian's network endpoint: the role
// of the paper's data servers in Figure 2, accepting operational writes
// and SQL over a minimal TCP protocol.
//
// Text commands (protocol version 1, the default):
//
//	HELLO <version>                        -> "HELLO <negotiated>"
//	WRITE <source> <ts-ms> <v1> [v2 ...]   -> "OK" | "ERR <msg>"
//	SQL <statement>                        -> header, rows, "OK <n>" | "ERR <msg>"
//	FLUSH                                  -> "OK"
//	PING                                   -> "PONG"
//	STATS                                  -> "<name> <value>" lines, "OK"
//	QUIT                                   -> "BYE" and closes the connection
//
// NULL tag values are spelled "null" in WRITE; non-finite values (nan,
// inf) are rejected because NaN is the storage engine's NULL sentinel.
// Responses to SQL are tab-separated; EXPLAIN output is returned verbatim
// followed by "OK 0".
//
// After "HELLO 2" the connection may also send binary batch frames
// (layout in proto.go):
//
//	BATCH <payloadLen>\n<payload>          -> "OK <npoints>" | "ERR busy" | "ERR <msg>"
//
// Each connection runs a reader goroutine (parse + admission) and an
// applier goroutine (execute + reply) joined by a bounded queue, so a
// client can pipeline frames while earlier ones are applied, replies stay
// in command order, and the memory held per connection stays bounded.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"odh"
)

// Default budgets and timeouts (see Options).
const (
	DefaultMaxInflightBytes = 64 << 20
	DefaultDrainTimeout     = 5 * time.Second
)

// Options tunes server behavior. The zero value keeps the defaults.
type Options struct {
	// IdleTimeout, when > 0, disconnects a connection that sends no
	// complete command for this long (applied as a per-read deadline on
	// connections that support deadlines; others are unaffected).
	IdleTimeout time.Duration
	// WriteTimeout, when > 0, bounds how long a reply flush may block on
	// a client that stopped reading; on expiry the session is dropped
	// (slow-client backpressure). Transports without write deadlines are
	// unaffected.
	WriteTimeout time.Duration
	// QueryTimeout, when > 0, bounds each SQL command; an expired query
	// is answered with ERR and counted in Stats.QueriesTimedOut.
	QueryTimeout time.Duration
	// DrainTimeout bounds Close's graceful drain: connections that have
	// not finished their in-flight commands by then are force-closed
	// (default DefaultDrainTimeout).
	DrainTimeout time.Duration
	// MaxInflightBytes budgets BATCH payload bytes admitted but not yet
	// applied, across all connections (default DefaultMaxInflightBytes).
	// Frames that would exceed it are discarded and answered "ERR busy".
	// A frame larger than the budget itself could never be admitted even
	// on an idle server, so it gets a deterministic too-large ERR instead
	// of the retryable-looking busy reply.
	MaxInflightBytes int64
	// ConnInflightBytes is the per-connection share of the admission
	// budget (default MaxInflightBytes/4, floored at one max-size frame).
	// Like MaxInflightBytes, frames that can never fit it are answered
	// with a deterministic too-large ERR, not "ERR busy".
	ConnInflightBytes int64
	// OnError, when non-nil, is invoked with every connection-level
	// failure the protocol loop hits: read failures (oversized lines,
	// torn connections), idle-timeout disconnects, and drain cutoffs.
	// Command errors are reported to the client as ERR replies, not here.
	OnError func(err error)
}

// Server accepts connections and serves the protocol over a historian.
type Server struct {
	h    *odh.Historian
	opts Options
	ln   net.Listener
	wg   sync.WaitGroup

	globalBudget int64
	connBudget   int64

	mu     sync.Mutex
	conns  map[*serverConn]struct{}
	closed bool

	drainCh chan struct{} // closed when Close begins draining

	// Counters behind Stats; all atomics so the hot paths stay lock-free.
	queuedBytes     atomic.Int64
	connsAccepted   atomic.Int64
	connsActive     atomic.Int64
	framesIngested  atomic.Int64
	pointsIngested  atomic.Int64
	batchesShed     atomic.Int64
	shedBytes       atomic.Int64
	queriesTimedOut atomic.Int64
	forcedCloses    atomic.Int64
}

// Stats is a snapshot of the serving layer's counters, surfaced by the
// STATS command and the CLI's .stats view.
type Stats struct {
	// ConnsAccepted counts sessions ever started; ConnsActive counts
	// sessions currently open.
	ConnsAccepted int64
	ConnsActive   int64
	// FramesIngested / PointsIngested count applied BATCH frames and the
	// points they carried plus per-line WRITEs.
	FramesIngested int64
	PointsIngested int64
	// BatchesShed / ShedBytes count frames rejected by admission control.
	BatchesShed int64
	ShedBytes   int64
	// QueuedBytes is the admission budget currently held by frames
	// admitted but not yet applied.
	QueuedBytes int64
	// QueriesTimedOut counts SQL commands that hit the query timeout.
	QueriesTimedOut int64
	// ForcedCloses counts connections cut off by the drain timeout.
	ForcedCloses int64
}

// New wraps a historian with default options.
func New(h *odh.Historian) *Server { return NewWith(h, Options{}) }

// NewWith wraps a historian with explicit options.
func NewWith(h *odh.Historian, opts Options) *Server {
	if opts.MaxInflightBytes <= 0 {
		opts.MaxInflightBytes = DefaultMaxInflightBytes
	}
	if opts.ConnInflightBytes <= 0 {
		opts.ConnInflightBytes = opts.MaxInflightBytes / 4
		if opts.ConnInflightBytes < MaxBatchFrameBytes {
			opts.ConnInflightBytes = opts.MaxInflightBytes
		}
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = DefaultDrainTimeout
	}
	return &Server{
		h:            h,
		opts:         opts,
		globalBudget: opts.MaxInflightBytes,
		connBudget:   opts.ConnInflightBytes,
		conns:        make(map[*serverConn]struct{}),
		drainCh:      make(chan struct{}),
	}
}

// Stats snapshots the serving-layer counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsAccepted:   s.connsAccepted.Load(),
		ConnsActive:     s.connsActive.Load(),
		FramesIngested:  s.framesIngested.Load(),
		PointsIngested:  s.pointsIngested.Load(),
		BatchesShed:     s.batchesShed.Load(),
		ShedBytes:       s.shedBytes.Load(),
		QueuedBytes:     s.queuedBytes.Load(),
		QueriesTimedOut: s.queriesTimedOut.Load(),
		ForcedCloses:    s.forcedCloses.Load(),
	}
}

// writeStats renders the STATS reply.
func (s *Server) writeStats(out io.Writer) {
	st := s.Stats()
	fmt.Fprintf(out, "conns_accepted %d\n", st.ConnsAccepted)
	fmt.Fprintf(out, "conns_active %d\n", st.ConnsActive)
	fmt.Fprintf(out, "frames_ingested %d\n", st.FramesIngested)
	fmt.Fprintf(out, "points_ingested %d\n", st.PointsIngested)
	fmt.Fprintf(out, "batches_shed %d\n", st.BatchesShed)
	fmt.Fprintf(out, "shed_bytes %d\n", st.ShedBytes)
	fmt.Fprintf(out, "queued_bytes %d\n", st.QueuedBytes)
	fmt.Fprintf(out, "queries_timed_out %d\n", st.QueriesTimedOut)
	fmt.Fprintf(out, "forced_closes %d\n", st.ForcedCloses)
	fmt.Fprintln(out, "OK")
}

// reportError invokes the error hook, if any.
func (s *Server) reportError(err error) {
	if s.opts.OnError != nil && err != nil {
		s.opts.OnError(err)
	}
}

// draining reports whether Close has begun.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// track registers a live session; it fails once draining began.
func (s *Server) track(sc *serverConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[sc] = struct{}{}
	return true
}

func (s *Server) untrack(sc *serverConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

// Listen starts accepting on addr and returns the bound address (useful
// with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close drains the server: it stops accepting, stops reading new
// commands, lets in-flight commands finish, and after DrainTimeout
// force-closes whatever is left (counted in Stats.ForcedCloses). It
// always returns — an idle client that never sends QUIT cannot wedge
// shutdown. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.drainCh)
	// Poke blocked readers: an expired read deadline turns the blocking
	// read into an error, which the reader reports as a drain cutoff.
	for sc := range s.conns {
		if sc.dc != nil {
			_ = sc.dc.SetReadDeadline(time.Now())
		}
	}
	s.mu.Unlock()

	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.opts.DrainTimeout):
		s.mu.Lock()
		for sc := range s.conns {
			s.forcedCloses.Add(1)
			sc.forceClose()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// handleWrite parses and applies one WRITE command.
func (s *Server) handleWrite(w *odh.Writer, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return fmt.Errorf("WRITE needs source, ts, and at least one value")
	}
	source, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad source: %w", err)
	}
	ts, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad timestamp: %w", err)
	}
	values := make([]float64, len(fields)-2)
	for i, f := range fields[2:] {
		if strings.EqualFold(f, "null") {
			values[i] = odh.NullValue
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", f, err)
		}
		// ParseFloat accepts "nan" and "inf", but NaN is the storage
		// engine's NULL sentinel and Inf breaks summary arithmetic;
		// neither may enter through the wire as a plain value.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite value %q (spell NULL as null)", f)
		}
		values[i] = v
	}
	return w.WritePoint(source, ts, values...)
}

// handleSQL executes one SQL command under the server's query timeout and
// streams the result.
func (s *Server) handleSQL(out io.Writer, sql string) {
	ctx := context.Background()
	if s.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
		defer cancel()
	}
	res, err := s.h.QueryContext(ctx, sql)
	if err != nil {
		s.noteQueryErr(err)
		fmt.Fprintf(out, "ERR %v\n", err)
		return
	}
	defer res.Close()
	if res.PlanText != "" {
		for _, line := range strings.Split(strings.TrimRight(res.PlanText, "\n"), "\n") {
			fmt.Fprintln(out, line)
		}
		fmt.Fprintln(out, "OK 0")
		return
	}
	if res.Columns == nil {
		fmt.Fprintf(out, "OK %d\n", res.RowsAffected)
		return
	}
	fmt.Fprintln(out, strings.Join(res.Columns, "\t"))
	n := 0
	for {
		row, ok, err := res.Next()
		if err != nil {
			s.noteQueryErr(err)
			fmt.Fprintf(out, "ERR %v\n", err)
			return
		}
		if !ok {
			break
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(cells, "\t"))
		n++
	}
	fmt.Fprintf(out, "OK %d\n", n)
}

// noteQueryErr counts timeout-caused query failures.
func (s *Server) noteQueryErr(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.queriesTimedOut.Add(1)
	}
}
