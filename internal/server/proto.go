package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"odh"
)

// Protocol versions negotiated by HELLO. Version 1 is the original text
// protocol; version 2 adds the binary BATCH frame. A connection that never
// sends HELLO speaks version 1, so existing clients work verbatim.
const (
	ProtoVersionText   = 1
	ProtoVersionBinary = 2
	// ProtoVersionMax is the highest version this server speaks; HELLO
	// negotiates min(client proposal, ProtoVersionMax).
	ProtoVersionMax = ProtoVersionBinary
)

// MaxBatchFrameBytes caps one BATCH frame's payload. Larger frames are
// discarded and answered with ERR without desynchronizing the stream
// (the length prefix still tells the server how much to skip).
const MaxBatchFrameBytes = 8 << 20

// Batch frame layout (after the text line "BATCH <payloadLen>\n"):
//
//	[0:4)  crc32c (Castagnoli) of payload[4:], uint32 LE
//	[4:8)  npoints, uint32 LE
//	per point:
//	  [8]  source, int64 LE
//	  [8]  timestamp (ms), int64 LE
//	  [2]  nvals, uint16 LE
//	  [8×nvals] tag values, float64 LE (NaN encodes NULL; ±Inf rejected)
const (
	batchHeaderBytes = 8
	pointHeaderBytes = 8 + 8 + 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeBatchFrame serializes points into one BATCH payload (CRC header
// included). NaN values pass through as NULL; ±Inf is rejected because the
// store's NULL sentinel arithmetic assumes finite-or-NaN values.
func EncodeBatchFrame(points []odh.Point) ([]byte, error) {
	size := batchHeaderBytes
	for _, p := range points {
		if len(p.Values) > math.MaxUint16 {
			return nil, fmt.Errorf("batch frame: point has %d values (max %d)", len(p.Values), math.MaxUint16)
		}
		for _, v := range p.Values {
			if math.IsInf(v, 0) {
				return nil, fmt.Errorf("batch frame: non-finite value %v (use NaN for NULL)", v)
			}
		}
		size += pointHeaderBytes + 8*len(p.Values)
	}
	if size > MaxBatchFrameBytes {
		return nil, fmt.Errorf("batch frame: %d bytes exceeds the %d-byte frame cap", size, MaxBatchFrameBytes)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(points)))
	off := batchHeaderBytes
	for _, p := range points {
		binary.LittleEndian.PutUint64(buf[off:], uint64(p.Source))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(p.TS))
		binary.LittleEndian.PutUint16(buf[off+16:], uint16(len(p.Values)))
		off += pointHeaderBytes
		for _, v := range p.Values {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	binary.LittleEndian.PutUint32(buf[0:4], crc32.Checksum(buf[4:], castagnoli))
	return buf, nil
}

// DecodeBatchFrame parses and validates one BATCH payload.
func DecodeBatchFrame(payload []byte) ([]odh.Point, error) {
	if len(payload) < batchHeaderBytes {
		return nil, fmt.Errorf("batch frame: %d-byte payload is shorter than the %d-byte header", len(payload), batchHeaderBytes)
	}
	want := binary.LittleEndian.Uint32(payload[0:4])
	if got := crc32.Checksum(payload[4:], castagnoli); got != want {
		return nil, fmt.Errorf("batch frame: crc mismatch (got %08x, want %08x)", got, want)
	}
	n := int(binary.LittleEndian.Uint32(payload[4:8]))
	// npoints is client-controlled and the CRC only proves the frame was
	// sent as-is, not that it is sane: bound the count by what the payload
	// could possibly hold before sizing any allocation by it.
	if maxPoints := (len(payload) - batchHeaderBytes) / pointHeaderBytes; n > maxPoints {
		return nil, fmt.Errorf("batch frame: %d points cannot fit in %d payload bytes", n, len(payload))
	}
	points := make([]odh.Point, 0, n)
	off := batchHeaderBytes
	for i := 0; i < n; i++ {
		if off+pointHeaderBytes > len(payload) {
			return nil, fmt.Errorf("batch frame: truncated at point %d of %d", i, n)
		}
		p := odh.Point{
			Source: int64(binary.LittleEndian.Uint64(payload[off:])),
			TS:     int64(binary.LittleEndian.Uint64(payload[off+8:])),
		}
		nvals := int(binary.LittleEndian.Uint16(payload[off+16:]))
		off += pointHeaderBytes
		if off+8*nvals > len(payload) {
			return nil, fmt.Errorf("batch frame: point %d declares %d values past the payload end", i, nvals)
		}
		p.Values = make([]float64, nvals)
		for j := 0; j < nvals; j++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			if math.IsInf(v, 0) {
				return nil, fmt.Errorf("batch frame: non-finite value at point %d (use NaN for NULL)", i)
			}
			p.Values[j] = v
			off += 8
		}
		points = append(points, p)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("batch frame: %d trailing bytes after %d points", len(payload)-off, n)
	}
	return points, nil
}

// WriteBatchFrame writes the "BATCH <len>" line plus payload — the client
// side of the binary ingest path (the CLI and benchmarks use it; any client
// can reimplement it from the layout comment above).
func WriteBatchFrame(w io.Writer, points []odh.Point) error {
	payload, err := EncodeBatchFrame(points)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "BATCH %d\n", len(payload)); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}
