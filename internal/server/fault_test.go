package server

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"odh"
)

// newPipeServer runs ServeConn on one end of a net.Pipe and returns the
// client end plus a channel of errors the OnError hook received.
func newPipeServer(t *testing.T, opts Options) (net.Conn, <-chan error) {
	t.Helper()
	h, err := odh.Open("", odh.Options{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	hooked := make(chan error, 4)
	opts.OnError = func(err error) { hooked <- err }
	srv := NewWith(h, opts)
	clientEnd, serverEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(serverEnd)
		close(done)
	}()
	t.Cleanup(func() {
		clientEnd.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("ServeConn did not return after client close")
		}
	})
	return clientEnd, hooked
}

func readLine(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading reply: %v (got %q)", err, line)
	}
	return strings.TrimRight(line, "\n")
}

func TestOversizedLineReportedAsERR(t *testing.T) {
	conn, hooked := newPipeServer(t, Options{})
	r := bufio.NewReader(conn)
	// A line larger than the scanner's 1 MiB cap. net.Pipe writes are
	// synchronous, and the scanner stops reading once its buffer fills,
	// so the write must not block the assertion path.
	go func() {
		big := make([]byte, 1<<20+512)
		for i := range big {
			big[i] = 'a'
		}
		conn.Write(big) // never completes; unblocked by conn close
	}()
	reply := readLine(t, r)
	if !strings.HasPrefix(reply, "ERR connection:") {
		t.Fatalf("reply = %q, want ERR connection prefix", reply)
	}
	select {
	case err := <-hooked:
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("hook got %v, want bufio.ErrTooLong", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnError hook never fired")
	}
}

func TestIdleTimeoutDisconnects(t *testing.T) {
	conn, hooked := newPipeServer(t, Options{IdleTimeout: 50 * time.Millisecond})
	r := bufio.NewReader(conn)
	// A live exchange first: the deadline must not clip active clients.
	if _, err := conn.Write([]byte("PING\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, r); got != "PONG" {
		t.Fatalf("PING reply = %q", got)
	}
	// Now go idle and wait for the server to hang up on us.
	reply := readLine(t, r)
	if !strings.HasPrefix(reply, "ERR connection:") {
		t.Fatalf("reply = %q, want ERR connection prefix", reply)
	}
	select {
	case err := <-hooked:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("hook got %v, want a timeout error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnError hook never fired")
	}
}
