package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"odh"
)

// maxLineBytes caps one text protocol line, matching the historical
// scanner limit; longer lines end the session with bufio.ErrTooLong.
const maxLineBytes = 1 << 20

// workQueueDepth bounds the number of parsed-but-unapplied commands per
// connection. The byte budget (admission.go) bounds their memory; this
// bounds their count so a flood of tiny commands cannot queue unbounded
// work either. A full queue blocks the reader, which stops draining the
// socket — backpressure via TCP flow control.
const workQueueDepth = 32

// maxDiscardBytes bounds how many declared-but-rejected payload bytes
// the server will skip to keep a stream in sync. A BATCH length beyond
// this is not a client staying in protocol — it is garbage or an attempt
// to tarpit the reader in a near-endless discard — so it ends the
// session instead.
const maxDiscardBytes = 4 * MaxBatchFrameBytes

// errServerClosing ends sessions cut off by a drain.
var errServerClosing = errors.New("server shutting down")

// errLineTooLong wraps bufio.ErrTooLong so hooks can errors.Is on it.
var errLineTooLong = fmt.Errorf("line exceeds %d bytes: %w", maxLineBytes, bufio.ErrTooLong)

// Work item kinds. The reader parses and admits; the applier executes and
// replies. Because items flow through one ordered queue, every reply —
// including sheds and the final connection error — lands in command order.
const (
	itemLine  = iota // text command to execute
	itemReply        // precomputed reply line (HELLO)
	itemBatch        // decoded binary batch holding an admission reservation
	itemShed         // frame rejected by admission: reply "ERR busy"
	itemErr          // frame rejected for cause: reply "ERR <err>"
	itemFatal        // read side failed: reply "ERR connection: <err>", close
)

type workItem struct {
	kind     int
	line     string
	points   []odh.Point
	reserved int64 // admission bytes released after apply
	err      error
}

// deadlineConn is the subset of net.Conn the idle timeout needs;
// net.Pipe ends satisfy it too.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

// writeDeadlineConn is the subset slow-client backpressure needs.
type writeDeadlineConn interface {
	SetWriteDeadline(t time.Time) error
}

// serverConn is one client session: a reader goroutine (readLoop) that
// parses commands and admits ingest frames, and an applier goroutine
// (ServeConn's body) that executes them and writes ordered replies.
type serverConn struct {
	s   *Server
	c   io.ReadWriteCloser
	dc  deadlineConn      // nil: transport has no read deadlines
	wdc writeDeadlineConn // nil: transport has no write deadlines
	r   *bufio.Reader
	out *bufio.Writer

	work    chan workItem
	queued  atomic.Int64 // admitted payload bytes held by this conn
	version int          // negotiated protocol version

	closeOnce sync.Once
}

// forceClose tears the transport down (drain timeout expiry).
func (sc *serverConn) forceClose() {
	sc.closeOnce.Do(func() { sc.c.Close() })
}

// ServeConn runs the protocol on one connection until EOF, QUIT, a read
// failure, an idle timeout, or a server drain. Read failures (an
// oversized line, a torn connection, an expired idle deadline) are
// answered with a final ERR line so the client sees why the session
// ended, and handed to the OnError hook.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	s.wg.Add(1)
	defer s.wg.Done()
	sc := &serverConn{
		s:       s,
		c:       conn,
		r:       bufio.NewReaderSize(conn, 64*1024),
		out:     bufio.NewWriterSize(conn, 64*1024),
		work:    make(chan workItem, workQueueDepth),
		version: ProtoVersionText,
	}
	sc.dc, _ = conn.(deadlineConn)
	sc.wdc, _ = conn.(writeDeadlineConn)
	if !s.track(sc) {
		sc.forceClose()
		return
	}
	defer s.untrack(sc)
	defer sc.forceClose()
	s.connsAccepted.Add(1)
	s.connsActive.Add(1)
	defer s.connsActive.Add(-1)

	go sc.readLoop()
	sc.applyLoop()
	// The applier is done replying; unblock and drain a reader that may
	// still be parsing (e.g. the applier hit a write failure mid-queue).
	sc.forceClose()
	for item := range sc.work {
		s.release(sc, item.reserved)
	}
}

// armReadDeadline applies the idle timeout before a blocking read.
func (sc *serverConn) armReadDeadline() {
	if sc.dc != nil && sc.s.opts.IdleTimeout > 0 {
		_ = sc.dc.SetReadDeadline(time.Now().Add(sc.s.opts.IdleTimeout))
	}
}

// readLine reads one \n-terminated line, enforcing maxLineBytes. Unlike
// bufio.Scanner it keeps the underlying reader usable afterwards, which
// the binary payload reads require.
func (sc *serverConn) readLine() (string, error) {
	var buf []byte
	for {
		frag, err := sc.r.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(buf) >= maxLineBytes {
				return "", errLineTooLong
			}
			continue
		}
		return "", err
	}
	return strings.TrimRight(string(buf), "\r\n"), nil
}

// readLoop parses the inbound stream into work items. It owns the read
// half of the connection and the protocol version state; it never writes.
func (sc *serverConn) readLoop() {
	defer close(sc.work)
	for {
		if sc.s.draining() {
			sc.work <- workItem{kind: itemFatal, err: errServerClosing}
			return
		}
		sc.armReadDeadline()
		line, err := sc.readLine()
		if err != nil {
			if err == io.EOF {
				return // client hung up cleanly
			}
			if sc.s.draining() {
				err = errServerClosing
			}
			sc.work <- workItem{kind: itemFatal, err: err}
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "HELLO":
			sc.work <- sc.negotiate(rest)
		case "BATCH":
			item, fatal := sc.readBatch(rest)
			sc.work <- item
			if fatal {
				return
			}
		case "QUIT":
			sc.work <- workItem{kind: itemLine, line: line}
			return // the applier replies BYE and closes
		default:
			sc.work <- workItem{kind: itemLine, line: line}
		}
	}
}

// negotiate handles HELLO <version>: the session speaks
// min(proposal, ProtoVersionMax), echoed back as "HELLO <version>".
func (sc *serverConn) negotiate(rest string) workItem {
	v, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || v < ProtoVersionText {
		return workItem{kind: itemErr, err: fmt.Errorf("HELLO needs a version >= %d", ProtoVersionText)}
	}
	if v > ProtoVersionMax {
		v = ProtoVersionMax
	}
	sc.version = v // reader-owned: affects only later parsing
	return workItem{kind: itemReply, line: fmt.Sprintf("HELLO %d", v)}
}

// readBatch consumes one BATCH frame: header validation, admission, then
// payload read + decode. Whenever the header parsed, the payload is
// consumed (applied, or discarded on shed/reject) so the stream stays in
// sync; fatal is true only when the read side itself failed.
func (sc *serverConn) readBatch(rest string) (workItem, bool) {
	n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
	if err != nil || n < 0 {
		return workItem{kind: itemErr, err: fmt.Errorf("bad BATCH length %q", rest)}, false
	}
	if n > maxDiscardBytes {
		return workItem{kind: itemFatal, err: fmt.Errorf("BATCH length %d exceeds any protocol limit (frame cap %d)", n, MaxBatchFrameBytes)}, true
	}
	if sc.version < ProtoVersionBinary {
		if err := sc.discard(n); err != nil {
			return workItem{kind: itemFatal, err: err}, true
		}
		return workItem{kind: itemErr, err: fmt.Errorf("BATCH requires HELLO %d", ProtoVersionBinary)}, false
	}
	if n > MaxBatchFrameBytes {
		if err := sc.discard(n); err != nil {
			return workItem{kind: itemFatal, err: err}, true
		}
		return workItem{kind: itemErr, err: fmt.Errorf("frame of %d bytes exceeds the %d-byte cap", n, MaxBatchFrameBytes)}, false
	}
	// A frame larger than a budget will *never* be admitted, no matter how
	// idle the server is; answering "ERR busy" would invite retries that
	// can't succeed. Tell the client to shrink the frame instead.
	if n > sc.s.connBudget || n > sc.s.globalBudget {
		if err := sc.discard(n); err != nil {
			return workItem{kind: itemFatal, err: err}, true
		}
		return workItem{kind: itemErr, err: fmt.Errorf("frame of %d bytes can never fit the %d-byte admission budget; send smaller frames", n, min(sc.s.connBudget, sc.s.globalBudget))}, false
	}
	if !sc.s.reserve(sc, n) {
		sc.s.shed(n)
		if err := sc.discard(n); err != nil {
			return workItem{kind: itemFatal, err: err}, true
		}
		return workItem{kind: itemShed}, false
	}
	payload := make([]byte, n)
	sc.armReadDeadline()
	if _, err := io.ReadFull(sc.r, payload); err != nil {
		sc.s.release(sc, n)
		return workItem{kind: itemFatal, err: fmt.Errorf("reading %d-byte frame: %w", n, err)}, true
	}
	points, err := DecodeBatchFrame(payload)
	if err != nil {
		sc.s.release(sc, n)
		return workItem{kind: itemErr, err: err}, false
	}
	return workItem{kind: itemBatch, points: points, reserved: n}, false
}

// discard consumes n payload bytes without keeping them.
func (sc *serverConn) discard(n int64) error {
	sc.armReadDeadline()
	_, err := io.CopyN(io.Discard, sc.r, n)
	return err
}

// flush pushes buffered replies with slow-client backpressure: when the
// transport supports write deadlines and WriteTimeout is set, a client
// that stops reading for that long fails the flush and loses the session
// instead of pinning server memory.
func (sc *serverConn) flush() error {
	if sc.wdc != nil && sc.s.opts.WriteTimeout > 0 {
		_ = sc.wdc.SetWriteDeadline(time.Now().Add(sc.s.opts.WriteTimeout))
	}
	return sc.out.Flush()
}

// applyLoop executes work items in order and writes every reply. It is
// the connection's only writer, so no reply interleaving is possible.
func (sc *serverConn) applyLoop() {
	w := sc.s.h.Writer()
	for item := range sc.work {
		var failed bool
		switch item.kind {
		case itemFatal:
			sc.s.reportError(item.err)
			fmt.Fprintf(sc.out, "ERR connection: %v\n", item.err)
			sc.flush()
			return
		case itemReply:
			fmt.Fprintln(sc.out, item.line)
		case itemShed:
			fmt.Fprintln(sc.out, "ERR busy")
		case itemErr:
			fmt.Fprintf(sc.out, "ERR %v\n", item.err)
		case itemBatch:
			err := w.WriteBatchParallel(item.points)
			sc.s.release(sc, item.reserved)
			if err != nil {
				fmt.Fprintf(sc.out, "ERR %v\n", err)
			} else {
				sc.s.framesIngested.Add(1)
				sc.s.pointsIngested.Add(int64(len(item.points)))
				fmt.Fprintf(sc.out, "OK %d\n", len(item.points))
			}
		case itemLine:
			failed = sc.applyLine(w, item.line)
		}
		if failed || sc.flush() != nil {
			return // ServeConn drains remaining reservations
		}
	}
}

// applyLine executes one text command; it returns true when the session
// should end (QUIT).
func (sc *serverConn) applyLine(w *odh.Writer, line string) (quit bool) {
	cmd, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "PING":
		fmt.Fprintln(sc.out, "PONG")
	case "FLUSH":
		if err := w.Flush(); err != nil {
			fmt.Fprintf(sc.out, "ERR %v\n", err)
		} else {
			fmt.Fprintln(sc.out, "OK")
		}
	case "WRITE":
		if err := sc.s.handleWrite(w, rest); err != nil {
			fmt.Fprintf(sc.out, "ERR %v\n", err)
		} else {
			sc.s.pointsIngested.Add(1)
			fmt.Fprintln(sc.out, "OK")
		}
	case "SQL":
		sc.s.handleSQL(sc.out, rest)
	case "STATS":
		sc.s.writeStats(sc.out)
	case "QUIT":
		fmt.Fprintln(sc.out, "BYE")
		sc.flush()
		return true
	default:
		fmt.Fprintf(sc.out, "ERR unknown command %q\n", cmd)
	}
	return false
}
