package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"odh"
	"odh/internal/fault"
)

// startServerWith spins up a historian with nSources registered sources
// of the quickstart schema and a server with explicit options.
func startServerWith(t testing.TB, nSources int, sopts Options) (addr string, srv *Server, h *odh.Historian) {
	t.Helper()
	h, err := odh.Open("", odh.Options{BatchSize: 64, QueryWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := h.CreateSchema(odh.SchemaType{
		Name: "environ",
		Tags: []odh.TagDef{{Name: "temperature"}, {Name: "wind"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CreateVirtualTable("environ_data_v", "environ"); err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= int64(nSources); id++ {
		if _, err := h.RegisterSource(odh.DataSource{ID: id, SchemaID: schema.ID, Regular: true, IntervalMs: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	srv = NewWith(h, sopts)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return a.String(), srv, h
}

// TestCloseWithIdleClient is the drain regression: an idle client that
// never sends QUIT must not wedge Close (the old implementation waited
// forever for its command loop to exit).
func TestCloseWithIdleClient(t *testing.T) {
	addr, srv, _ := startServerWith(t, 1, Options{DrainTimeout: 10 * time.Second})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprintln(conn, "PING")
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "PONG" {
		t.Fatalf("PING -> %q", line)
	}
	// Now idle. Close must return via the read-deadline poke, well before
	// the 10s drain timeout and without force-closing anything.
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close took %v with an idle client", d)
	}
	if fc := srv.Stats().ForcedCloses; fc != 0 {
		t.Fatalf("ForcedCloses = %d, want 0 (graceful drain)", fc)
	}
	// The client was told why.
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "ERR connection:") {
		t.Fatalf("drain notice = %q", line)
	}
}

// noDeadline hides the deadline methods of a transport, modeling one the
// drain poke cannot reach.
type noDeadline struct{ io.ReadWriteCloser }

// TestCloseForceClosesStuckConn: a transport without read deadlines keeps
// its reader blocked through the drain; Close must cut it off after
// DrainTimeout and count it.
func TestCloseForceClosesStuckConn(t *testing.T) {
	h, err := odh.Open("", odh.Options{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	srv := NewWith(h, Options{DrainTimeout: 100 * time.Millisecond})
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(noDeadline{serverEnd})
		close(done)
	}()
	// Let the session register before draining.
	r := bufio.NewReader(clientEnd)
	fmt.Fprintln(clientEnd, "PING")
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "PONG" {
		t.Fatalf("PING -> %q", line)
	}
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close took %v", d)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return after force-close")
	}
	if fc := srv.Stats().ForcedCloses; fc != 1 {
		t.Fatalf("ForcedCloses = %d, want 1", fc)
	}
}

// TestIdleTimeoutMidCommand: the idle deadline covers a client that
// stalls in the middle of a line, not just between commands.
func TestIdleTimeoutMidCommand(t *testing.T) {
	conn, hooked := newPipeServer(t, Options{IdleTimeout: 50 * time.Millisecond})
	r := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("WRITE 1 10")); err != nil { // no newline
		t.Fatal(err)
	}
	reply := readLine(t, r)
	if !strings.HasPrefix(reply, "ERR connection:") {
		t.Fatalf("reply = %q, want ERR connection prefix", reply)
	}
	select {
	case err := <-hooked:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("hook got %v, want a timeout error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnError hook never fired")
	}
}

// TestTornReadReportedAsERR injects a mid-stream read failure via
// fault.Conn: the session must end with an ordered ERR reply and the
// hook must see the injected error.
func TestTornReadReportedAsERR(t *testing.T) {
	h, err := odh.Open("", odh.Options{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	hooked := make(chan error, 4)
	srv := NewWith(h, Options{OnError: func(err error) { hooked <- err }})
	t.Cleanup(func() { srv.Close() })
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	fc := fault.WrapConn(serverEnd)
	fc.FailReadsAfter(1)
	fc.SetTornRead(3) // the dying read delivers a 3-byte prefix first
	done := make(chan struct{})
	go func() {
		srv.ServeConn(noDeadline{fc})
		close(done)
	}()
	r := bufio.NewReader(clientEnd)
	if _, err := clientEnd.Write([]byte("PING\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, r); got != "PONG" {
		t.Fatalf("PING -> %q", got)
	}
	// The torn read consumes only a prefix of this command, so with a
	// synchronous net.Pipe the Write cannot complete; it unblocks when
	// the server tears the connection down.
	go clientEnd.Write([]byte("FLUSH\n"))
	reply := readLine(t, r)
	if !strings.HasPrefix(reply, "ERR connection:") {
		t.Fatalf("reply = %q, want ERR connection prefix", reply)
	}
	select {
	case err := <-hooked:
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("hook got %v, want fault.ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnError hook never fired")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return after injected read failure")
	}
}

// TestAdmissionShedsAndRecovers: a frame that can never fit the byte
// budget gets a deterministic too-large ERR (retrying it is pointless);
// a frame that only fails because the budget is currently held gets
// "ERR busy" and is counted as shed; in both cases the bytes are never
// held and the connection keeps working.
func TestAdmissionShedsAndRecovers(t *testing.T) {
	addr, srv, _ := startServerWith(t, 1, Options{MaxInflightBytes: 64, ConnInflightBytes: 64})
	c := dial(t, addr)
	c.send(t, "HELLO 2")
	if got := c.read(t); got != "HELLO 2" {
		t.Fatalf("HELLO -> %q", got)
	}
	// A 100-byte frame can never fit the 64-byte budget: deterministic
	// rejection, not the retryable-looking busy. The payload is garbage
	// on purpose — admission rejects before decoding.
	junk := make([]byte, 100)
	if _, err := c.conn.Write(append([]byte("BATCH 100\n"), junk...)); err != nil {
		t.Fatal(err)
	}
	if got := c.read(t); !strings.Contains(got, "never fit") {
		t.Fatalf("never-fitting frame -> %q, want a deterministic too-large ERR", got)
	}
	if shed := srv.Stats().BatchesShed; shed != 0 {
		t.Fatalf("BatchesShed = %d after a never-fitting frame, want 0", shed)
	}
	// Occupy most of the global budget so a one-point frame (42 bytes)
	// that *could* fit is transiently rejected: that is a shed.
	holder := &serverConn{}
	if !srv.reserve(holder, 40) {
		t.Fatal("could not stage the budget holder")
	}
	onePoint := []odh.Point{{Source: 1, TS: 1000, Values: []float64{1, 2}}}
	if err := WriteBatchFrame(c.conn, onePoint); err != nil {
		t.Fatal(err)
	}
	if got := c.read(t); got != "ERR busy" {
		t.Fatalf("frame under held budget -> %q, want ERR busy", got)
	}
	// Budget released: the same frame is admitted and applied.
	srv.release(holder, 40)
	if err := WriteBatchFrame(c.conn, onePoint); err != nil {
		t.Fatal(err)
	}
	if got := c.read(t); got != "OK 1" {
		t.Fatalf("same frame after release -> %q", got)
	}
	st := srv.Stats()
	if st.BatchesShed != 1 || st.ShedBytes != 42 {
		t.Fatalf("shed counters = %d frames / %d bytes, want 1 / 42", st.BatchesShed, st.ShedBytes)
	}
	if st.QueuedBytes != 0 {
		t.Fatalf("QueuedBytes = %d after all frames applied, want 0", st.QueuedBytes)
	}
}

// TestQueryTimeoutOverWire is the acceptance scenario: a 200k-point
// fixture, a 1ms query timeout, a full-scan SQL that must come back ERR
// promptly and count in Stats.QueriesTimedOut — while BATCH ingest on a
// second connection continues un-shed.
func TestQueryTimeoutOverWire(t *testing.T) {
	addr, srv, h := startServerWith(t, 2, Options{QueryTimeout: time.Millisecond})
	w := h.Writer()
	points := make([]odh.Point, 0, 200_000)
	for i := 0; i < 200_000; i++ {
		points = append(points, odh.Point{Source: 1, TS: int64(i) * 1000, Values: []float64{float64(i % 100), 1.5}})
	}
	if err := w.WriteBatch(points); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Concurrent ingest on its own connection and source.
	stop := make(chan struct{})
	ingestErr := make(chan error, 1)
	go func() {
		defer close(ingestErr)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			ingestErr <- err
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		fmt.Fprintln(conn, "HELLO 2")
		if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "HELLO 2" {
			ingestErr <- fmt.Errorf("HELLO -> %q", line)
			return
		}
		ts := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]odh.Point, 100)
			for i := range batch {
				ts += 1000
				batch[i] = odh.Point{Source: 2, TS: ts, Values: []float64{1, 2}}
			}
			if err := WriteBatchFrame(conn, batch); err != nil {
				ingestErr <- err
				return
			}
			line, err := r.ReadString('\n')
			if err != nil {
				ingestErr <- err
				return
			}
			if got := strings.TrimSpace(line); got != "OK 100" {
				ingestErr <- fmt.Errorf("BATCH during query load -> %q", got)
				return
			}
		}
	}()

	c := dial(t, addr)
	deadline := time.Now().Add(30 * time.Second)
	c.conn.SetReadDeadline(deadline)
	c.send(t, "SQL SELECT timestamp, temperature FROM environ_data_v WHERE id = 1")
	sawErr := ""
	for {
		line := c.read(t)
		if strings.HasPrefix(line, "ERR") {
			sawErr = line
			break
		}
		if strings.HasPrefix(line, "OK") {
			break
		}
	}
	if !strings.Contains(sawErr, "deadline exceeded") {
		t.Fatalf("full scan under 1ms timeout finished without a deadline error (last line %q)", sawErr)
	}
	if n := srv.Stats().QueriesTimedOut; n < 1 {
		t.Fatalf("QueriesTimedOut = %d, want >= 1", n)
	}
	close(stop)
	if err := <-ingestErr; err != nil {
		t.Fatalf("concurrent ingest failed: %v", err)
	}
	if shed := srv.Stats().BatchesShed; shed != 0 {
		t.Fatalf("BatchesShed = %d during query load, want 0", shed)
	}
}

// TestManyConnSoak is the CI soak: 50 connections mixing BATCH ingest,
// WRITE lines, and SQL, under the default admission budget; nothing may
// shed, every reply must be well formed, and the final drain must be
// clean. Sized to stay fast under -race.
func TestManyConnSoak(t *testing.T) {
	const conns = 50
	const rounds = 8
	addr, srv, _ := startServerWith(t, conns, Options{IdleTimeout: 30 * time.Second})
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			expect := func(want string, ctx string) bool {
				line, err := r.ReadString('\n')
				if err != nil {
					errs <- fmt.Errorf("conn %d %s: %v", g, ctx, err)
					return false
				}
				if got := strings.TrimSpace(line); got != want {
					errs <- fmt.Errorf("conn %d %s: %q, want %q", g, ctx, got, want)
					return false
				}
				return true
			}
			fmt.Fprintln(conn, "HELLO 2")
			if !expect("HELLO 2", "HELLO") {
				return
			}
			src := int64(g + 1)
			ts := int64(0)
			for round := 0; round < rounds; round++ {
				batch := make([]odh.Point, 50)
				for i := range batch {
					ts += 1000
					batch[i] = odh.Point{Source: src, TS: ts, Values: []float64{float64(round), 2}}
				}
				if err := WriteBatchFrame(conn, batch); err != nil {
					errs <- fmt.Errorf("conn %d frame: %v", g, err)
					return
				}
				if !expect("OK 50", "BATCH") {
					return
				}
				ts += 1000
				fmt.Fprintf(conn, "WRITE %d %d 7 null\n", src, ts)
				if !expect("OK", "WRITE") {
					return
				}
				fmt.Fprintf(conn, "SQL SELECT COUNT(*) FROM environ_data_v WHERE id = %d\n", src)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						errs <- fmt.Errorf("conn %d SQL: %v", g, err)
						return
					}
					got := strings.TrimSpace(line)
					if strings.HasPrefix(got, "ERR") {
						errs <- fmt.Errorf("conn %d SQL: %q", g, got)
						return
					}
					if strings.HasPrefix(got, "OK") {
						break
					}
				}
			}
			fmt.Fprintln(conn, "QUIT")
			expect("BYE", "QUIT")
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.Stats()
	if st.BatchesShed != 0 {
		t.Errorf("BatchesShed = %d under the default budget, want 0", st.BatchesShed)
	}
	wantPoints := int64(conns * rounds * 51)
	if st.PointsIngested != wantPoints {
		t.Errorf("PointsIngested = %d, want %d", st.PointsIngested, wantPoints)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if fc := srv.Stats().ForcedCloses; fc != 0 {
		t.Errorf("ForcedCloses = %d after clean soak, want 0", fc)
	}
}

// BenchmarkServerBatchIngest compares the binary batched path against
// per-line WRITE over a real TCP connection; the points/sec metrics are
// the acceptance numbers (batch must be >= 5x line). Both arms ingest
// the same mixed-source stream — the shape a gateway aggregating a fleet
// produces, which also lets the batch path fan out across ingest shards.
func BenchmarkServerBatchIngest(b *testing.B) {
	const batchPoints = 1000
	const sources = 16
	run := func(b *testing.B, batch bool) {
		addr, _, _ := startServerWith(b, sources, Options{})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		ts := int64(0)
		if batch {
			fmt.Fprintln(conn, "HELLO 2")
			if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "HELLO 2" {
				b.Fatalf("HELLO -> %q", line)
			}
		}
		points := make([]odh.Point, batchPoints)
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			if batch {
				for j := range points {
					if j%sources == 0 {
						ts += 1000
					}
					points[j] = odh.Point{Source: int64(j%sources) + 1, TS: ts, Values: []float64{float64(j), 2}}
				}
				if err := WriteBatchFrame(conn, points); err != nil {
					b.Fatal(err)
				}
				if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "OK") {
					b.Fatalf("BATCH -> %q", line)
				}
				total += batchPoints
			} else {
				if i%sources == 0 {
					ts += 1000
				}
				fmt.Fprintf(conn, "WRITE %d %d %g 2\n", i%sources+1, ts, float64(i%97))
				if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "OK" {
					b.Fatalf("WRITE -> %q", line)
				}
				total++
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "points/sec")
	}
	b.Run("batch-frame", func(b *testing.B) { run(b, true) })
	b.Run("write-line", func(b *testing.B) { run(b, false) })
}
