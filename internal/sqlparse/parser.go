package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"odh/internal/relational"
)

// Parse parses one SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errorf("trailing input after statement")
	}
	return stmt, nil
}

type parser struct {
	toks  []Token
	pos   int
	input string
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(k TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == k && (text == "" || t.Text == text)
}

// accept consumes the token when it matches.
func (p *parser) accept(k TokenKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k TokenKind, text string) (Token, error) {
	if p.at(k, text) {
		t := p.cur()
		p.advance()
		return t, nil
	}
	return Token{}, p.errorf("expected %q, found %q", text, p.cur().Text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (at offset %d near %q)",
		fmt.Sprintf(format, args...), p.cur().Pos, p.cur().Text)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "EXPLAIN"):
		p.advance()
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		sel.Explain = true
		return sel, nil
	case p.at(TokKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(TokKeyword, "CREATE"):
		return p.createStmt()
	case p.at(TokKeyword, "INSERT"):
		return p.insertStmt()
	}
	return nil, p.errorf("expected a statement")
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: ident '.' '*'
	if p.cur().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		table := p.cur().Text
		p.pos += 3
		return SelectItem{Star: true, StarTable: table}, nil
	}
	e, err := p.expression()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.cur().Kind == TokIdent {
		item.Alias = p.cur().Text
		p.advance()
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: t.Text}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.Text
	} else if p.cur().Kind == TokIdent {
		ref.Alias = p.cur().Text
		p.advance()
	}
	return ref, nil
}

// expression parses OR-level precedence.
func (p *parser) expression() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Target: left, Lo: lo, Hi: hi}, nil
	}
	if p.accept(TokKeyword, "IS") {
		negate := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Target: left, Negate: negate}, nil
	}
	if p.accept(TokKeyword, "IN") {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.additive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{Target: left, List: list}, nil
	}
	for _, op := range []string{"<=", ">=", "!=", "<>", "=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			right, err := p.additive()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return &BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) additive() (Expr, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "+"):
			op = "+"
		case p.accept(TokSymbol, "-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "*"):
			op = "*"
		case p.accept(TokSymbol, "/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*Literal); ok {
			v := lit.Val
			switch v.Kind {
			case relational.KindInt, relational.KindTime:
				v.I = -v.I
			case relational.KindFloat:
				v.F = -v.F
			}
			return &Literal{Val: v}, nil
		}
		return &BinaryExpr{Op: "-", L: &Literal{Val: relational.Int(0)}, R: inner}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Literal{Val: relational.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &Literal{Val: relational.Int(i)}, nil
	case TokString:
		p.advance()
		return &Literal{Val: relational.Str(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.advance()
			return &Literal{Val: relational.Null}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: relational.Int(1)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: relational.Int(0)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.advance()
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			fe := &FuncExpr{Name: t.Text}
			if p.accept(TokSymbol, "*") {
				if t.Text != "COUNT" {
					return nil, p.errorf("%s(*) is not valid", t.Text)
				}
				fe.Star = true
			} else {
				arg, err := p.expression()
				if err != nil {
					return nil, err
				}
				fe.Args = []Expr{arg}
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return fe, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		p.advance()
		if p.accept(TokSymbol, ".") {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Name: col.Text}, nil
		}
		// Scalar function call: ident followed by '('.
		if p.accept(TokSymbol, "(") {
			fe := &FuncExpr{Name: strings.ToUpper(t.Text)}
			if !p.accept(TokSymbol, ")") {
				for {
					arg, err := p.expression()
					if err != nil {
						return nil, err
					}
					fe.Args = append(fe.Args, arg)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
			}
			return fe, nil
		}
		return &ColumnRef{Name: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.advance()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

func (p *parser) createStmt() (Statement, error) {
	if _, err := p.expect(TokKeyword, "CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.accept(TokKeyword, "TABLE"):
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		stmt := &CreateTableStmt{Name: name.Text}
		for {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			kind, err := p.columnType()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, ColumnDef{Name: col.Text, Type: kind})
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return stmt, nil
	case p.accept(TokKeyword, "INDEX"):
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		stmt := &CreateIndexStmt{Name: name.Text, Table: table.Text}
		for {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col.Text)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return stmt, nil
	case p.accept(TokKeyword, "VIRTUAL"):
		if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "SCHEMA"); err != nil {
			return nil, err
		}
		schema, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		return &CreateVirtualTableStmt{Name: name.Text, Schema: schema.Text}, nil
	}
	return nil, p.errorf("expected TABLE, INDEX, or VIRTUAL TABLE")
}

func (p *parser) columnType() (relational.Kind, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return relational.KindNull, p.errorf("expected a column type")
	}
	p.advance()
	switch strings.ToUpper(t.Text) {
	case "INT", "BIGINT":
		return relational.KindInt, nil
	case "FLOAT", "DOUBLE":
		return relational.KindFloat, nil
	case "VARCHAR", "STRING":
		// Optional length: VARCHAR(32).
		if p.accept(TokSymbol, "(") {
			if _, err := p.expect(TokNumber, ""); err != nil {
				return relational.KindNull, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return relational.KindNull, err
			}
		}
		return relational.KindString, nil
	case "TIMESTAMP":
		return relational.KindTime, nil
	}
	return relational.KindNull, p.errorf("unknown column type %q", t.Text)
}

func (p *parser) insertStmt() (Statement, error) {
	if _, err := p.expect(TokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table.Text}
	if p.accept(TokSymbol, "(") {
		for {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col.Text)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.additive()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return stmt, nil
}
